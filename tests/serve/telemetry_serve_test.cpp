// ServeEngine + telemetry plane integration (the Issue-9 acceptance
// battery): the JSONL snapshot stream must be byte-identical across worker
// counts under a fault soak, SLO breaches must land in the recorder and
// the drain counters, tail exemplars must be emitted, and the recorder
// must seal cleanly (zero late records).
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "obs/recorder.h"
#include "obs/telemetry.h"
#include "serve/engine.h"
#include "serve/job.h"

namespace malisim::serve {
namespace {

ServeOptions FaultSoakOptions(int workers, int shards) {
  ServeOptions options;
  options.workers_per_shard = workers;
  options.shards = shards;
  options.queue_depth = 4096;
  options.default_deadline_sec = 5.0;
  options.fault.rate = 0.25;
  options.fault.seed = 20260809;
  options.fault.watchdog_sec = 1.0;
  // Breakers are load-dependent by design; disable them so every job's
  // path — and therefore the telemetry stream — is a pure function of
  // the job set (the same arrangement the CI smoke uses).
  options.breaker.failure_threshold = 1 << 20;
  return options;
}

obs::TelemetryOptions PlaneOptions() {
  obs::TelemetryOptions options;
  options.window_sec = 1.0;
  options.arrival_interval_sec = 0.02;  // 50 jobs per window
  options.exemplars_per_window = 2;
  return options;
}

struct SoakRun {
  std::string jsonl;
  std::size_t exemplars = 0;
  obs::TelemetryTotals totals;
  ServeReport report;
};

SoakRun RunSoak(int count, int workers, int shards,
                const obs::TelemetryOptions& plane_options,
                obs::Recorder* recorder = nullptr) {
  obs::StringTelemetrySink sink;
  obs::TelemetryOptions topts = plane_options;
  topts.recorder = recorder;
  obs::TelemetryPlane plane(topts, &sink);
  ServeOptions options = FaultSoakOptions(workers, shards);
  options.telemetry = &plane;

  SoakRun run;
  {
    ServeEngine engine(options);
    for (const JobSpec& job : GenerateLoad(count, 7)) {
      EXPECT_TRUE(engine.Submit(job).ok());
    }
    run.report = engine.Drain();
  }
  run.jsonl = sink.jsonl();
  run.exemplars = sink.exemplars().size();
  run.totals = plane.Totals();
  return run;
}

TEST(ServeTelemetryTest, SnapshotStreamIsByteIdenticalAcrossWorkerCounts) {
  const SoakRun serial = RunSoak(200, 1, 1, PlaneOptions());
  const SoakRun parallel = RunSoak(200, 4, 2, PlaneOptions());

  ASSERT_TRUE(serial.report.Consistent());
  ASSERT_TRUE(parallel.report.Consistent());
  EXPECT_FALSE(serial.jsonl.empty());
  EXPECT_EQ(serial.jsonl, parallel.jsonl)
      << "worker/shard count leaked into the modelled-time stream";
  EXPECT_EQ(serial.totals.windows, 4u) << "200 jobs / 50 per window";
  EXPECT_EQ(serial.totals.jobs, 200u);
  EXPECT_GT(serial.exemplars, 0u);
  EXPECT_EQ(serial.exemplars, parallel.exemplars);
}

TEST(ServeTelemetryTest, DrainSurfacesTelemetryAndLateRecordCounters) {
  obs::Recorder recorder;
  const SoakRun run = RunSoak(100, 4, 2, PlaneOptions(), &recorder);
  ASSERT_TRUE(run.report.Consistent());

  const auto windows = run.report.metrics.counters.find(
      "serve/telemetry/windows");
  ASSERT_NE(windows, run.report.metrics.counters.end());
  EXPECT_DOUBLE_EQ(windows->second, 2.0);
  const auto exemplars = run.report.metrics.counters.find(
      "serve/telemetry/exemplars");
  ASSERT_NE(exemplars, run.report.metrics.counters.end());
  EXPECT_GT(exemplars->second, 0.0);

  // The engine sealed the recorder after the final flush; every record
  // beat the seal, so the surfaced late-record counter reads zero.
  EXPECT_TRUE(recorder.sealed());
  const auto late = run.report.metrics.counters.find(
      "serve/obs/late_records");
  ASSERT_NE(late, run.report.metrics.counters.end());
  EXPECT_DOUBLE_EQ(late->second, 0.0);
}

TEST(ServeTelemetryTest, ImpossibleDeadlineBreachesSloIntoRecorder) {
  obs::Recorder recorder;
  obs::TelemetryOptions topts = PlaneOptions();
  StatusOr<obs::SloSpec> slo =
      obs::SloSpec::Parse("deadline_miss_ratio<=0.01");
  ASSERT_TRUE(slo.ok());
  topts.slo = *slo;
  topts.recorder = &recorder;
  obs::StringTelemetrySink sink;
  obs::TelemetryPlane plane(topts, &sink);

  ServeOptions options = FaultSoakOptions(2, 1);
  options.fault.rate = 0.0;
  options.default_deadline_sec = 1e-9;  // no rung can finish in this
  options.telemetry = &plane;
  ServeEngine engine(options);
  for (const JobSpec& job : GenerateLoad(60, 2)) {
    ASSERT_TRUE(engine.Submit(job).ok());
  }
  const ServeReport report = engine.Drain();
  ASSERT_TRUE(report.Consistent());
  EXPECT_EQ(report.count(JobState::kDeadlineExceeded), 60u);

  const std::vector<obs::SloRecord> slos = recorder.slos();
  ASSERT_FALSE(slos.empty());
  EXPECT_EQ(slos[0].action, "breach");
  EXPECT_EQ(slos[0].name, "deadline_miss_ratio<=0.01");
  const auto breaches = report.metrics.counters.find(
      "serve/telemetry/slo_breaches");
  ASSERT_NE(breaches, report.metrics.counters.end());
  EXPECT_GE(breaches->second, 1.0);
}

TEST(ServeTelemetryTest, ExemplarSpansCoverTheJobTimeline) {
  obs::StringTelemetrySink sink;
  obs::TelemetryPlane plane(PlaneOptions(), &sink);
  ServeOptions options = FaultSoakOptions(1, 1);
  options.telemetry = &plane;
  ServeEngine engine(options);
  for (const JobSpec& job : GenerateLoad(50, 7)) {
    ASSERT_TRUE(engine.Submit(job).ok());
  }
  const ServeReport report = engine.Drain();
  ASSERT_TRUE(report.Consistent());
  ASSERT_FALSE(sink.exemplars().empty());
  for (const auto& [name, json] : sink.exemplars()) {
    StatusOr<JsonValue> trace = ParseJson(json);
    ASSERT_TRUE(trace.ok()) << name << ": " << trace.status().ToString();
    const JsonValue* events = trace->Find("traceEvents");
    ASSERT_NE(events, nullptr);
    // Two metadata events plus at least one rung span, and spans sit on
    // the consumed-budget timeline (non-negative start, end >= start).
    std::size_t spans = 0;
    for (const JsonValue& event : events->array) {
      if (event.StringOr("ph", "") != "X") continue;
      ++spans;
      const double ts = event.NumberOr("ts", -1.0);
      const double dur = event.NumberOr("dur", -1.0);
      EXPECT_GE(ts, 0.0) << name;
      EXPECT_GE(dur, 0.0) << name;
    }
    EXPECT_GT(spans, 0u) << name;
  }
}

TEST(ServeTelemetryTest, EmptyAndDefaultTenantsShareOneBucket) {
  // Satellite fix: "" and "default" must never split a tenant's stats —
  // at parse time, in drain metrics, and in telemetry snapshots.
  EXPECT_EQ(NormalizeTenant(""), "default");
  EXPECT_EQ(NormalizeTenant("default"), "default");
  EXPECT_EQ(NormalizeTenant("batch-a"), "batch-a");

  obs::StringTelemetrySink sink;
  obs::TelemetryPlane plane(PlaneOptions(), &sink);
  ServeOptions options = FaultSoakOptions(2, 1);
  options.fault.rate = 0.0;
  options.telemetry = &plane;
  ServeEngine engine(options);
  std::vector<JobSpec> jobs = GenerateLoad(50, 3);
  for (JobSpec& job : jobs) {
    job.tenant = job.id % 2 == 0 ? "" : "default";  // one logical tenant
  }
  for (const JobSpec& job : jobs) ASSERT_TRUE(engine.Submit(job).ok());
  const ServeReport report = engine.Drain();
  ASSERT_TRUE(report.Consistent());

  double default_jobs = 0.0;
  for (const auto& [name, value] : report.metrics.counters) {
    if (name.rfind("serve/tenant/default/", 0) == 0) default_jobs += value;
    EXPECT_EQ(name.find("serve/tenant//"), std::string::npos)
        << "empty tenant leaked into metrics: " << name;
  }
  EXPECT_DOUBLE_EQ(default_jobs, 50.0);
  // The snapshot stream sees exactly one tenant bucket too.
  EXPECT_NE(sink.jsonl().find("\"default\":{\"jobs\":"), std::string::npos);
  EXPECT_EQ(sink.jsonl().find("\"\":{"), std::string::npos);
}

}  // namespace
}  // namespace malisim::serve
