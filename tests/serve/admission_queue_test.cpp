// The bounded admission queue: non-blocking typed shed on overflow,
// FIFO drain, close semantics, and conservation under concurrency.
#include "serve/admission_queue.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace malisim::serve {
namespace {

TEST(AdmissionQueueTest, ShedsNewestWithTypedOverloadWhenFull) {
  AdmissionQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1).ok());
  EXPECT_TRUE(queue.TryPush(2).ok());
  const Status shed = queue.TryPush(3);
  EXPECT_EQ(shed.code(), ErrorCode::kOverloaded);
  // The refusal displaced nothing: both admitted items are still there,
  // in order.
  EXPECT_EQ(queue.size(), 2u);
  int out = 0;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
  // Freed capacity re-admits.
  EXPECT_TRUE(queue.TryPush(4).ok());
}

TEST(AdmissionQueueTest, CloseRefusesNewButDrainsQueued) {
  AdmissionQueue<int> queue(8);
  EXPECT_TRUE(queue.TryPush(1).ok());
  EXPECT_TRUE(queue.TryPush(2).ok());
  queue.Close();
  EXPECT_TRUE(queue.closed());
  EXPECT_EQ(queue.TryPush(3).code(), ErrorCode::kFailedPrecondition);
  int out = 0;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
  // Closed and drained: Pop returns false, the worker-exit signal.
  EXPECT_FALSE(queue.Pop(&out));
}

TEST(AdmissionQueueTest, CloseWakesBlockedConsumers) {
  AdmissionQueue<int> queue(4);
  std::atomic<int> exited{0};
  std::vector<std::thread> consumers;
  for (int i = 0; i < 3; ++i) {
    consumers.emplace_back([&] {
      int out;
      while (queue.Pop(&out)) {
      }
      exited.fetch_add(1);
    });
  }
  queue.Close();
  for (std::thread& t : consumers) t.join();
  EXPECT_EQ(exited.load(), 3);
}

TEST(AdmissionQueueTest, ConcurrentPushPopConservesItems) {
  // Producers push as fast as they can against a small queue; consumers
  // drain. accepted + shed == attempted, and consumers see exactly the
  // accepted count — nothing lost, nothing duplicated.
  AdmissionQueue<int> queue(4);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  std::atomic<int> accepted{0};
  std::atomic<int> shed{0};
  std::atomic<int> consumed{0};

  std::vector<std::thread> consumers;
  for (int i = 0; i < 2; ++i) {
    consumers.emplace_back([&] {
      int out;
      while (queue.Pop(&out)) consumed.fetch_add(1);
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const Status s = queue.TryPush(p * kPerProducer + i);
        if (s.ok()) {
          accepted.fetch_add(1);
        } else {
          ASSERT_EQ(s.code(), ErrorCode::kOverloaded);
          shed.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  queue.Close();
  for (std::thread& t : consumers) t.join();

  EXPECT_EQ(accepted.load() + shed.load(), kProducers * kPerProducer);
  EXPECT_EQ(consumed.load(), accepted.load());
  EXPECT_GT(shed.load(), 0) << "a 4-deep queue should shed under this load";
}

}  // namespace
}  // namespace malisim::serve
