// Job model: variant spellings, JSONL parsing and the deterministic
// load driver.
#include "serve/job.h"

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace malisim::serve {
namespace {

TEST(JobVariantTest, CliSpellingsRoundTrip) {
  for (hpc::Variant v : hpc::kAllVariantsWithHetero) {
    hpc::Variant back;
    ASSERT_TRUE(ParseVariant(VariantKey(v), &back)) << VariantKey(v);
    EXPECT_EQ(back, v);
    // Display names ("OpenCL Opt") parse too.
    ASSERT_TRUE(ParseVariant(hpc::VariantName(v), &back));
    EXPECT_EQ(back, v);
  }
  hpc::Variant out;
  EXPECT_FALSE(ParseVariant("cuda", &out));
  EXPECT_FALSE(ParseVariant("", &out));
}

TEST(JobStateTest, EveryStateHasAName) {
  std::set<std::string> names;
  for (int s = 0; s < kNumJobStates; ++s) {
    const std::string name(JobStateName(static_cast<JobState>(s)));
    EXPECT_NE(name, "?");
    EXPECT_TRUE(names.insert(name).second) << "duplicate " << name;
  }
}

TEST(ParseJobLineTest, FullLine) {
  auto job = ParseJobLine(
      R"({"benchmark":"spmv","variant":"opencl","device":"hetero",)"
      R"("fp64":true,"seed":7,"tenant":"batch-a","deadline_sec":2.5,)"
      R"("sizes":"quick","hetero_ratio":0.5})");
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  EXPECT_EQ(job->benchmark, "spmv");
  EXPECT_EQ(job->variant, hpc::Variant::kOpenCL);
  EXPECT_EQ(job->device, sim::BackendKind::kHetero);
  EXPECT_TRUE(job->fp64);
  EXPECT_EQ(job->seed, 7u);
  EXPECT_EQ(job->tenant, "batch-a");
  EXPECT_DOUBLE_EQ(job->deadline_sec, 2.5);
  EXPECT_DOUBLE_EQ(job->hetero_ratio, 0.5);
}

TEST(ParseJobLineTest, DefaultsAndErrors) {
  auto minimal = ParseJobLine(R"({"benchmark":"dmmm"})");
  ASSERT_TRUE(minimal.ok());
  EXPECT_EQ(minimal->variant, hpc::Variant::kOpenCLOpt);
  EXPECT_EQ(minimal->device, sim::BackendKind::kMali);
  EXPECT_FALSE(minimal->fp64);
  EXPECT_DOUBLE_EQ(minimal->deadline_sec, 0.0);

  EXPECT_FALSE(ParseJobLine("not json").ok());
  EXPECT_FALSE(ParseJobLine("[1,2]").ok());
  EXPECT_FALSE(ParseJobLine("{}").ok()) << "benchmark is required";
  EXPECT_FALSE(
      ParseJobLine(R"({"benchmark":"spmv","variant":"cuda"})").ok());
  EXPECT_FALSE(
      ParseJobLine(R"({"benchmark":"spmv","device":"tpu"})").ok());
  EXPECT_FALSE(
      ParseJobLine(R"({"benchmark":"spmv","sizes":"huge"})").ok());
  EXPECT_FALSE(
      ParseJobLine(R"({"benchmark":"spmv","deadline_sec":-1})").ok());
}

TEST(ParseJobFileTest, AssignsDenseIdsSkipsCommentsReportsBadLine) {
  const std::string text =
      "# a comment\n"
      "\n"
      R"({"benchmark":"spmv"})" "\n"
      "  \t\r\n"
      R"({"benchmark":"dmmm","tenant":"t2"})" "\n";
  auto jobs = ParseJobFile(text, /*first_id=*/10);
  ASSERT_TRUE(jobs.ok()) << jobs.status().ToString();
  ASSERT_EQ(jobs->size(), 2u);
  EXPECT_EQ((*jobs)[0].id, 10u);
  EXPECT_EQ((*jobs)[1].id, 11u);
  EXPECT_EQ((*jobs)[1].tenant, "t2");

  auto bad = ParseJobFile("{\"benchmark\":\"spmv\"}\nbroken\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().ToString().find("line 2"), std::string::npos)
      << bad.status().ToString();
}

TEST(GenerateLoadTest, DeterministicDenseAndMixed) {
  const std::vector<JobSpec> a = GenerateLoad(120, 42);
  const std::vector<JobSpec> b = GenerateLoad(120, 42);
  ASSERT_EQ(a.size(), 120u);
  ASSERT_EQ(b.size(), 120u);
  bool any_fp64 = false;
  bool any_hetero = false;
  std::set<std::string> benchmarks;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, i);
    EXPECT_EQ(a[i].benchmark, b[i].benchmark);
    EXPECT_EQ(a[i].variant, b[i].variant);
    EXPECT_EQ(a[i].fp64, b[i].fp64);
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].tenant, b[i].tenant);
    any_fp64 |= a[i].fp64;
    any_hetero |= a[i].variant == hpc::Variant::kHetero;
    benchmarks.insert(a[i].benchmark);
  }
  // The mix must exercise the hard cells: fp64 (the amcd erratum),
  // hetero, and every registered benchmark.
  EXPECT_TRUE(any_fp64);
  EXPECT_TRUE(any_hetero);
  EXPECT_EQ(benchmarks.size(), hpc::RegisteredBenchmarks().size());
  // A different seed changes the per-job seeds, not the shape.
  const std::vector<JobSpec> c = GenerateLoad(120, 43);
  EXPECT_NE(c[0].seed, a[0].seed);
  EXPECT_EQ(c[0].benchmark, a[0].benchmark);
}

}  // namespace
}  // namespace malisim::serve
