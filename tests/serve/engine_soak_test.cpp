// ServeEngine end-to-end battery (the Issue-8 acceptance tests):
//
//  * 1000-job soak at an elevated fault rate — every submission ends in
//    exactly one terminal state, per-state counts sum to submissions,
//    nothing lost or hung (the engine drains, so nothing can hang the
//    test without failing it).
//  * Backpressure: a tiny queue under a fast submitter sheds with typed
//    Overloaded results and still accounts every job.
//  * Mid-soak shutdown (the SIGINT path): BeginShutdown while submitting
//    drains in-flight work, sheds the rest, invariant intact.
//  * Breaker trip -> route-down -> half-open probe -> recover, observed
//    through the engine on a deterministically failing job mix.
//  * Deadlines: a budget too small for any rung terminates jobs as
//    deadline-exceeded, never hangs them.
//  * Determinism and single-job replay: per-job fault schedules depend
//    only on (base seed, job id, rung), so a full soak is reproducible
//    and any non-rerouted job replays bit-identically on its own.
#include "serve/engine.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "serve/job.h"

namespace malisim::serve {
namespace {

ServeOptions SoakOptions() {
  ServeOptions options;
  options.workers_per_shard = 4;
  options.shards = 2;
  options.queue_depth = 4096;  // accept everything: this test is about
                               // execution states, not shedding
  options.default_deadline_sec = 5.0;
  options.fault.rate = 0.25;  // elevated: the soak is a fault soak
  options.fault.seed = 20260809;
  options.fault.watchdog_sec = 1.0;
  return options;
}

std::uint64_t SumStates(const ServeReport& report) {
  std::uint64_t sum = 0;
  for (int s = 0; s < kNumJobStates; ++s) {
    sum += report.count(static_cast<JobState>(s));
  }
  return sum;
}

TEST(ServeEngineSoakTest, ThousandJobFaultSoakLosesNothing) {
  const std::vector<JobSpec> jobs = GenerateLoad(1000, 7);
  ServeEngine engine(SoakOptions());
  for (const JobSpec& job : jobs) {
    ASSERT_TRUE(engine.Submit(job).ok()) << "queue_depth covers the batch";
  }
  const ServeReport report = engine.Drain();

  EXPECT_TRUE(report.Consistent());
  EXPECT_EQ(report.submitted, 1000u);
  ASSERT_EQ(report.results.size(), 1000u);
  EXPECT_EQ(SumStates(report), 1000u);
  EXPECT_EQ(report.count(JobState::kShed), 0u);

  // Exactly one result per job id, ascending.
  std::set<std::uint64_t> ids;
  for (const JobResult& r : report.results) {
    EXPECT_TRUE(ids.insert(r.id).second) << "duplicate id " << r.id;
  }
  EXPECT_EQ(ids.size(), 1000u);
  EXPECT_EQ(*ids.begin(), 0u);
  EXPECT_EQ(*ids.rbegin(), 999u);

  // At this fault rate the ladder (and the breakers riding it) must have
  // been exercised hard — most jobs complete degraded — yet the vast
  // majority still complete successfully SOMEWHERE on the ladder. The
  // exact ok/degraded split is load-dependent (breakers), so only broad
  // bounds are asserted.
  EXPECT_GT(report.count(JobState::kDegraded), 100u);
  EXPECT_GT(report.count(JobState::kOk), 0u);
  EXPECT_GE(report.count(JobState::kOk) + report.count(JobState::kDegraded),
            800u);

  // The deterministic counters agree with the report.
  const auto submitted = report.metrics.counters.find("serve/jobs_submitted");
  ASSERT_NE(submitted, report.metrics.counters.end());
  EXPECT_DOUBLE_EQ(submitted->second, 1000.0);
  const auto ok = report.metrics.counters.find("serve/jobs_ok");
  ASSERT_NE(ok, report.metrics.counters.end());
  EXPECT_DOUBLE_EQ(ok->second,
                   static_cast<double>(report.count(JobState::kOk)));
  // Jobs share one compile cache: far fewer real compiles than runs.
  EXPECT_GT(report.compile_cache_stats.hits,
            report.compile_cache_stats.misses);
}

TEST(ServeEngineSoakTest, TinyQueueShedsWithTypedOverloadAndLosesNothing) {
  ServeOptions options = SoakOptions();
  options.workers_per_shard = 1;
  options.shards = 1;
  options.queue_depth = 2;
  options.fault.rate = 0.0;
  ServeEngine engine(options);

  const std::vector<JobSpec> jobs = GenerateLoad(40, 3);
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;
  for (const JobSpec& job : jobs) {
    const Status s = engine.Submit(job);
    if (s.ok()) {
      ++accepted;
    } else {
      ASSERT_EQ(s.code(), ErrorCode::kOverloaded) << s.ToString();
      ++shed;
    }
  }
  const ServeReport report = engine.Drain();
  EXPECT_TRUE(report.Consistent());
  EXPECT_EQ(report.submitted, 40u);
  EXPECT_EQ(SumStates(report), 40u);
  EXPECT_EQ(report.count(JobState::kShed), shed);
  EXPECT_GT(shed, 0u) << "a 2-deep queue must shed a 40-job burst";
  EXPECT_GT(accepted, 0u);
  for (const JobResult& r : report.results) {
    if (r.state == JobState::kShed) {
      EXPECT_NE(r.error.find("Overloaded"), std::string::npos) << r.error;
    }
  }
}

TEST(ServeEngineSoakTest, MidSoakShutdownDrainsCleanly) {
  ServeOptions options = SoakOptions();
  options.queue_depth = 4096;
  ServeEngine engine(options);
  const std::vector<JobSpec> jobs = GenerateLoad(300, 11);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (i == 100) engine.BeginShutdown();  // SIGINT mid-soak
    engine.Submit(jobs[i]);
  }
  const ServeReport report = engine.Drain();
  EXPECT_TRUE(report.Consistent());
  EXPECT_EQ(report.submitted, 300u);
  EXPECT_EQ(SumStates(report), 300u);
  // Everything after the shutdown shed; everything before it ran.
  EXPECT_EQ(report.count(JobState::kShed), 200u);
  EXPECT_EQ(report.count(JobState::kOk) + report.count(JobState::kDegraded) +
                report.count(JobState::kDeadlineExceeded) +
                report.count(JobState::kFailed),
            100u);
}

TEST(ServeEngineSoakTest, BreakerTripsRoutesDownAndRecovers) {
  // Single worker, deterministic order. amcd fp64 hits the compiler
  // erratum on both OpenCL rungs every time: two such jobs trip the
  // OpenCL Opt and OpenCL breakers (threshold 2). The next job routes
  // straight past the open rungs (cooldown tick), and the one after is
  // admitted as the half-open probe — an fp32 job that succeeds and
  // closes the breaker.
  ServeOptions options;
  options.workers_per_shard = 1;
  options.shards = 1;
  options.queue_depth = 64;
  options.fault.rate = 0.0;  // only the deterministic erratum
  options.breaker.failure_threshold = 2;
  options.breaker.open_cooldown = 1;
  ServeEngine engine(options);

  auto amcd = [](std::uint64_t id) {
    JobSpec job;
    job.id = id;
    job.benchmark = "amcd";
    job.sizes = hpc::ProblemSizes::Quick();
    job.fp64 = true;
    job.variant = hpc::Variant::kOpenCLOpt;
    job.seed = 5;
    return job;
  };
  auto spmv = [](std::uint64_t id) {
    JobSpec job;
    job.id = id;
    job.benchmark = "spmv";
    job.sizes = hpc::ProblemSizes::Quick();
    job.variant = hpc::Variant::kOpenCLOpt;
    job.seed = 5;
    return job;
  };

  ASSERT_TRUE(engine.Submit(amcd(0)).ok());  // fails opt+cl, degrades
  ASSERT_TRUE(engine.Submit(amcd(1)).ok());  // same; trips both breakers
  ASSERT_TRUE(engine.Submit(spmv(2)).ok());  // rerouted past open rungs
  ASSERT_TRUE(engine.Submit(spmv(3)).ok());  // half-open probe, succeeds
  ASSERT_TRUE(engine.Submit(spmv(4)).ok());  // breaker closed again
  const ServeReport report = engine.Drain();

  ASSERT_TRUE(report.Consistent());
  ASSERT_EQ(report.results.size(), 5u);
  const JobResult& first_amcd = report.results[0];
  EXPECT_EQ(first_amcd.state, JobState::kDegraded);
  EXPECT_EQ(first_amcd.ran, hpc::Variant::kOpenMP);
  EXPECT_FALSE(first_amcd.breaker_rerouted);

  const JobResult& rerouted = report.results[2];
  EXPECT_EQ(rerouted.state, JobState::kDegraded);
  EXPECT_TRUE(rerouted.breaker_rerouted);
  EXPECT_EQ(rerouted.ran, hpc::Variant::kOpenMP)
      << "both OpenCL rungs were open";

  const JobResult& probe = report.results[3];
  EXPECT_EQ(probe.state, JobState::kOk) << probe.error;
  EXPECT_EQ(probe.ran, hpc::Variant::kOpenCLOpt);

  const JobResult& after = report.results[4];
  EXPECT_EQ(after.state, JobState::kOk) << after.error;
  EXPECT_FALSE(after.breaker_rerouted) << "OpenCL Opt recovered";

  for (const ServeReport::BreakerRow& row : report.breakers) {
    if (row.rung == hpc::Variant::kOpenCLOpt) {
      EXPECT_GE(row.trips, 1u);
      EXPECT_EQ(row.state, BreakerState::kClosed) << "recovered by probe";
    }
  }
}

TEST(ServeEngineSoakTest, ImpossibleDeadlineTerminatesNotHangs) {
  ServeOptions options = SoakOptions();
  options.fault.rate = 0.0;
  options.default_deadline_sec = 1e-9;  // no rung can finish in this
  ServeEngine engine(options);
  const std::vector<JobSpec> jobs = GenerateLoad(12, 2);
  for (const JobSpec& job : jobs) ASSERT_TRUE(engine.Submit(job).ok());
  const ServeReport report = engine.Drain();
  EXPECT_TRUE(report.Consistent());
  EXPECT_EQ(report.count(JobState::kDeadlineExceeded), 12u);
  for (const JobResult& r : report.results) {
    EXPECT_GT(r.consumed_sec, 0.0) << "the first rung did run";
    EXPECT_FALSE(r.error.empty());
  }
}

// ---------------------------------------------------------------------------
// Determinism and replay.
// ---------------------------------------------------------------------------

ServeOptions ReplayOptions() {
  ServeOptions options = SoakOptions();
  options.fault.rate = 0.3;
  // Breakers are load-dependent by design; disable them (threshold far
  // above any streak) so every job's path is a pure function of its spec.
  options.breaker.failure_threshold = 1 << 20;
  return options;
}

void ExpectSameResult(const JobResult& a, const JobResult& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.state, b.state);
  EXPECT_EQ(a.requested, b.requested);
  EXPECT_EQ(a.ran, b.ran);
  EXPECT_EQ(a.seconds, b.seconds) << "bit-identical, not approximately";
  EXPECT_EQ(a.consumed_sec, b.consumed_sec);
  EXPECT_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.backoff_sec, b.backoff_sec);
  EXPECT_EQ(a.error, b.error);
}

TEST(ServeEngineSoakTest, ConcurrentSoakIsDeterministic) {
  const std::vector<JobSpec> jobs = GenerateLoad(60, 9);
  ServeEngine first(ReplayOptions());
  for (const JobSpec& job : jobs) ASSERT_TRUE(first.Submit(job).ok());
  const ServeReport a = first.Drain();
  ServeEngine second(ReplayOptions());
  for (const JobSpec& job : jobs) ASSERT_TRUE(second.Submit(job).ok());
  const ServeReport b = second.Drain();

  ASSERT_TRUE(a.Consistent());
  ASSERT_TRUE(b.Consistent());
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    SCOPED_TRACE(a.results[i].id);
    ExpectSameResult(a.results[i], b.results[i]);
  }
}

TEST(ServeEngineSoakTest, SingleJobReplayIsBitIdentical) {
  // Run a faulty soak, then replay individual jobs alone in a fresh
  // engine: the per-job fault seed depends only on (base seed, job id,
  // rung), so each replay reproduces its soak result exactly even though
  // the soak ran under concurrency and the replay does not.
  const std::vector<JobSpec> jobs = GenerateLoad(30, 13);
  ServeEngine soak(ReplayOptions());
  for (const JobSpec& job : jobs) ASSERT_TRUE(soak.Submit(job).ok());
  const ServeReport full = soak.Drain();
  ASSERT_TRUE(full.Consistent());
  ASSERT_EQ(full.results.size(), 30u);

  int replayed = 0;
  for (const std::size_t index : {0u, 7u, 13u, 23u, 29u}) {
    const JobResult& original = full.results[index];
    ASSERT_FALSE(original.breaker_rerouted)
        << "breakers disabled: replay must be exact";
    ServeEngine replay(ReplayOptions());
    ASSERT_TRUE(replay.Submit(jobs[index]).ok());
    const ServeReport one = replay.Drain();
    ASSERT_EQ(one.results.size(), 1u);
    SCOPED_TRACE(original.id);
    ExpectSameResult(original, one.results[0]);
    ++replayed;
  }
  EXPECT_EQ(replayed, 5);
}

}  // namespace
}  // namespace malisim::serve
