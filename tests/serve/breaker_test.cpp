// Circuit-breaker state machine: trip on consecutive degradable
// failures, count-based cooldown, single half-open probe, recover or
// re-open on the probe's outcome.
#include "serve/breaker.h"

#include <gtest/gtest.h>

namespace malisim::serve {
namespace {

BreakerConfig Config(int threshold, int cooldown) {
  BreakerConfig config;
  config.failure_threshold = threshold;
  config.open_cooldown = cooldown;
  return config;
}

TEST(BreakerTest, TripsAfterConsecutiveFailuresOnly) {
  CircuitBreaker breaker(Config(3, 4));
  for (int round = 0; round < 5; ++round) {
    // failure, failure, success: never three in a row, never trips.
    ASSERT_TRUE(breaker.Allow());
    breaker.RecordFailure();
    ASSERT_TRUE(breaker.Allow());
    breaker.RecordFailure();
    ASSERT_TRUE(breaker.Allow());
    breaker.RecordSuccess();
  }
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.trips(), 0u);

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(breaker.Allow());
    breaker.RecordFailure();
  }
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);
}

TEST(BreakerTest, OpenRefusesForCooldownThenAdmitsOneProbe) {
  CircuitBreaker breaker(Config(1, 3));
  ASSERT_TRUE(breaker.Allow());
  breaker.RecordFailure();
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);

  // Exactly `open_cooldown` refusals...
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(breaker.Allow()) << "refusal " << i;
  }
  // ...then one caller is admitted as the half-open probe, and while the
  // probe is in flight everyone else keeps getting refused.
  EXPECT_TRUE(breaker.Allow());
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_FALSE(breaker.Allow());
  EXPECT_FALSE(breaker.Allow());
}

TEST(BreakerTest, ProbeSuccessCloses) {
  CircuitBreaker breaker(Config(1, 1));
  ASSERT_TRUE(breaker.Allow());
  breaker.RecordFailure();       // trip
  EXPECT_FALSE(breaker.Allow()); // cooldown tick
  ASSERT_TRUE(breaker.Allow());  // probe
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.trips(), 1u);
  // Fully recovered: traffic flows and the failure streak restarted.
  EXPECT_TRUE(breaker.Allow());
  breaker.RecordSuccess();
}

TEST(BreakerTest, ProbeFailureReopensAndCooldownRestarts) {
  CircuitBreaker breaker(Config(1, 2));
  ASSERT_TRUE(breaker.Allow());
  breaker.RecordFailure();       // trip #1
  EXPECT_FALSE(breaker.Allow());
  EXPECT_FALSE(breaker.Allow());
  ASSERT_TRUE(breaker.Allow());  // probe
  breaker.RecordFailure();       // probe fails -> open again
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 2u);
  // The cooldown starts over from the failed probe.
  EXPECT_FALSE(breaker.Allow());
  EXPECT_FALSE(breaker.Allow());
  EXPECT_TRUE(breaker.Allow());
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(BreakerTest, StateNamesAreDistinct) {
  EXPECT_NE(BreakerStateName(BreakerState::kClosed),
            BreakerStateName(BreakerState::kOpen));
  EXPECT_NE(BreakerStateName(BreakerState::kOpen),
            BreakerStateName(BreakerState::kHalfOpen));
}

TEST(BreakerBoardTest, RungsAreIndependent) {
  BreakerBoard board(Config(1, 1));
  board.ForVariant(hpc::Variant::kOpenCLOpt).Allow();
  board.ForVariant(hpc::Variant::kOpenCLOpt).RecordFailure();
  EXPECT_EQ(board.ForVariant(hpc::Variant::kOpenCLOpt).state(),
            BreakerState::kOpen);
  for (hpc::Variant v : {hpc::Variant::kSerial, hpc::Variant::kOpenMP,
                         hpc::Variant::kOpenCL, hpc::Variant::kHetero}) {
    EXPECT_EQ(board.ForVariant(v).state(), BreakerState::kClosed)
        << hpc::VariantName(v);
  }
}

}  // namespace
}  // namespace malisim::serve
