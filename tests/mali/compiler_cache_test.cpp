// The content-addressed compile cache behind ocl::Program::Build and the
// serve engine: key sensitivity, hit/miss accounting, first-writer-wins
// publication, and — the property the serve replay contract rests on —
// fault schedules that are bit-identical on a cache hit and a cache miss.
#include "mali/compiler_cache.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fault/injector.h"
#include "kir/builder.h"
#include "ocl/runtime.h"

namespace malisim::mali {
namespace {

using kir::ArgKind;
using kir::KernelBuilder;
using kir::ScalarType;
using kir::Val;

kir::Program MakeKernel(const std::string& name, int loads) {
  KernelBuilder kb(name);
  auto in = kb.ArgBuffer("in", ScalarType::kF32, ArgKind::kBufferRO);
  auto out = kb.ArgBuffer("out", ScalarType::kF32, ArgKind::kBufferWO);
  Val gid = kb.GlobalId(0);
  Val sum = kb.Load(in, gid);
  for (int i = 1; i < loads; ++i) sum = sum + kb.Load(in, gid, i);
  kb.Store(out, gid, sum);
  return *kb.Build();
}

TEST(CompileCacheTest, KeyIsContentAddressed) {
  const MaliTimingParams timing;
  const kir::Program a = MakeKernel("k", 2);
  const kir::Program a_again = MakeKernel("k", 2);
  const kir::Program b = MakeKernel("k", 3);
  // Same content -> same key, regardless of object identity.
  EXPECT_EQ(CompileCache::Key(a, timing), CompileCache::Key(a_again, timing));
  EXPECT_NE(CompileCache::Key(a, timing), CompileCache::Key(b, timing));
  // Every compile-relevant timing parameter enters the address.
  MaliTimingParams squeezed = timing;
  squeezed.max_thread_reg_bytes /= 2;
  EXPECT_NE(CompileCache::Key(a, timing), CompileCache::Key(a, squeezed));
  MaliTimingParams sched = timing;
  sched.restrict_sched_factor *= 0.5;
  EXPECT_NE(CompileCache::Key(a, timing), CompileCache::Key(a, sched));
}

TEST(CompileCacheTest, LookupInsertAndStats) {
  CompileCache cache;
  const MaliTimingParams timing;
  const kir::Program p = MakeKernel("k", 2);
  const std::uint64_t key = CompileCache::Key(p, timing);

  EXPECT_EQ(cache.Lookup(key), nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);

  CompileCache::Entry entry;
  entry.transformed = p;
  StatusOr<CompiledKernel> analyzed = AnalyzeForMali(p, timing);
  ASSERT_TRUE(analyzed.ok());
  entry.analyzed = *analyzed;
  entry.analyzed.program = nullptr;
  cache.Insert(key, entry);
  EXPECT_EQ(cache.size(), 1u);

  const auto hit = cache.Lookup(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->analyzed.live_reg_bytes, analyzed->live_reg_bytes);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(CompileCacheTest, ConcurrentInsertFirstWriterWins) {
  CompileCache cache;
  const MaliTimingParams timing;
  const kir::Program p = MakeKernel("k", 2);
  const std::uint64_t key = CompileCache::Key(p, timing);
  StatusOr<CompiledKernel> analyzed = AnalyzeForMali(p, timing);
  ASSERT_TRUE(analyzed.ok());

  std::vector<std::thread> writers;
  std::vector<std::shared_ptr<const CompileCache::Entry>> published(8);
  for (int i = 0; i < 8; ++i) {
    writers.emplace_back([&, i] {
      CompileCache::Entry entry;
      entry.transformed = p;
      entry.analyzed = *analyzed;
      entry.analyzed.program = nullptr;
      published[static_cast<std::size_t>(i)] = cache.Insert(key, entry);
    });
  }
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(cache.size(), 1u);
  // Every racer got handed the same published entry.
  for (int i = 1; i < 8; ++i) {
    EXPECT_EQ(published[static_cast<std::size_t>(i)], published[0]);
  }
}

// The serve replay contract: the injector decisions a build consumes must
// not depend on cache warmth. Run the same faulty build sequence twice —
// once against a cold cache, once warm — and require the injector event
// logs to match exactly.
TEST(CompileCacheTest, FaultScheduleIsIdenticalOnHitAndMiss) {
  auto run_builds = [](CompileCache* cache,
                       std::vector<std::string>* events) {
    FaultOptions fault;
    fault.rate = 0.5;  // plenty of build trips
    fault.seed = 99;
    auto plan = fault::FaultPlan::FromOptions(fault);
    ASSERT_TRUE(plan.ok());
    fault::FaultInjector injector(*plan);

    ocl::Context context(sim::BackendKind::kMali);
    context.set_fault_injector(&injector);
    context.set_compile_cache(cache);
    for (int i = 0; i < 6; ++i) {
      std::shared_ptr<ocl::Program> program =
          context.CreateProgram({MakeKernel("k", 2)});
      (void)program->Build();  // faulty builds may fail; that's the point
    }
    for (const auto& event : injector.events()) {
      events->push_back(event.site + ":" + event.action);
    }
  };

  // Cold: every build misses (first) then hits (rest) one shared cache.
  CompileCache shared;
  std::vector<std::string> cold_events;
  run_builds(&shared, &cold_events);
  ASSERT_GT(shared.stats().hits, 0u);

  // Warm: same sequence against the now-warm cache. And a cacheless run:
  // every build pays the full compile.
  std::vector<std::string> warm_events;
  run_builds(&shared, &warm_events);
  std::vector<std::string> uncached_events;
  run_builds(nullptr, &uncached_events);

  EXPECT_EQ(cold_events, warm_events);
  EXPECT_EQ(cold_events, uncached_events);
  EXPECT_FALSE(cold_events.empty()) << "rate 0.5 must trip something";
}

}  // namespace
}  // namespace malisim::mali
