// Model-invariant property tests: the timing model must respond sanely to
// its parameters — more hardware never hurts, less never helps. These are
// the regression guards for the cost model itself.
#include <vector>

#include <gtest/gtest.h>

#include "kir/builder.h"
#include "mali/compiler.h"
#include "mali/t604_device.h"

namespace malisim::mali {
namespace {

using kir::ArgKind;
using kir::KernelBuilder;
using kir::ScalarType;
using kir::Val;

/// A mixed kernel: per-item short loop of fma + loads.
kir::Program MixedKernel() {
  KernelBuilder kb("mixed");
  auto in = kb.ArgBuffer("in", ScalarType::kF32, ArgKind::kBufferRO);
  auto out = kb.ArgBuffer("out", ScalarType::kF32, ArgKind::kBufferWO);
  Val gid = kb.GlobalId(0);
  Val acc = kb.Var(kir::F32(), "acc");
  kb.Assign(acc, kb.ConstF(kir::F32(), 0.0));
  kb.For("i", kb.ConstI(kir::I32(), 0), kb.ConstI(kir::I32(), 8), 1,
         [&](Val i) {
           Val idx = kb.Binary(kir::Opcode::kAdd, gid, i);
           kb.Assign(acc, kb.Fma(kb.Load(in, idx), acc, acc + 1.0));
         });
  kb.Store(out, gid, acc);
  return *kb.Build();
}

double TimeWith(const MaliTimingParams& timing, const MaliMemoryConfig& memory) {
  const kir::Program p = MixedKernel();
  auto compiled = CompileForMali(p, timing, MaliCompilerParams());
  EXPECT_TRUE(compiled.ok());
  const std::uint64_t n = 1 << 15;
  std::vector<float> in(n + 16, 1.0f), out(n, 0.0f);
  MaliT604Device device(timing, memory);
  kir::LaunchConfig config;
  config.global_size = {n, 1, 1};
  config.local_size = {128, 1, 1};
  kir::Bindings b;
  b.buffers = {
      {reinterpret_cast<std::byte*>(in.data()), 0x100000, in.size() * 4},
      {reinterpret_cast<std::byte*>(out.data()), 0x900000, out.size() * 4}};
  auto run = device.Run(*compiled, config, std::move(b));
  EXPECT_TRUE(run.ok());
  return run->seconds;
}

TEST(ModelInvariantTest, HigherClockIsFaster) {
  MaliTimingParams slow, fast;
  fast.clock_hz = slow.clock_hz * 2;
  EXPECT_LT(TimeWith(fast, MaliMemoryConfig()), TimeWith(slow, MaliMemoryConfig()));
}

TEST(ModelInvariantTest, MoreCoresNeverSlower) {
  MaliTimingParams one, four;
  one.num_cores = 1;
  four.num_cores = 4;
  EXPECT_LE(TimeWith(four, MaliMemoryConfig()), TimeWith(one, MaliMemoryConfig()));
}

TEST(ModelInvariantTest, MoreBandwidthNeverSlower) {
  MaliMemoryConfig narrow, wide;
  narrow.dram.peak_bandwidth_bytes_per_sec = 2e9;
  wide.dram.peak_bandwidth_bytes_per_sec = 20e9;
  EXPECT_LE(TimeWith(MaliTimingParams(), wide),
            TimeWith(MaliTimingParams(), narrow));
}

TEST(ModelInvariantTest, BiggerL1NotMeaningfullySlower) {
  // Near-monotone rather than strictly monotone: a larger L1 changes the
  // L2 fill stream, and the DRAM sequentiality heuristic can reclassify a
  // few fills, moving the bandwidth floor by a fraction of a percent. Any
  // meaningful regression (>1%) is a genuine model bug.
  MaliMemoryConfig small, big;
  small.l1.size_bytes = 1024;
  big.l1.size_bytes = 64 * 1024;
  EXPECT_LE(TimeWith(MaliTimingParams(), big),
            TimeWith(MaliTimingParams(), small) * 1.01);
}

TEST(ModelInvariantTest, CheaperDispatchNeverSlower) {
  MaliTimingParams cheap, expensive;
  cheap.wg_dispatch_cycles = 50;
  expensive.wg_dispatch_cycles = 2000;
  EXPECT_LE(TimeWith(cheap, MaliMemoryConfig()),
            TimeWith(expensive, MaliMemoryConfig()));
}

TEST(ModelInvariantTest, LowerSlotCostsNeverSlower) {
  MaliTimingParams cheap, expensive;
  cheap.slots_arith = 0.25;
  cheap.slots_control = 0.5;
  expensive.slots_arith = 2.0;
  expensive.slots_control = 4.0;
  EXPECT_LE(TimeWith(cheap, MaliMemoryConfig()),
            TimeWith(expensive, MaliMemoryConfig()));
}

class ClockSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(ClockSweepTest, TimeMonotoneInClock) {
  MaliTimingParams base;
  MaliTimingParams scaled;
  scaled.clock_hz = base.clock_hz * GetParam();
  if (GetParam() > 1.0) {
    EXPECT_LE(TimeWith(scaled, MaliMemoryConfig()),
              TimeWith(base, MaliMemoryConfig()) * 1.0001);
  } else {
    EXPECT_GE(TimeWith(scaled, MaliMemoryConfig()),
              TimeWith(base, MaliMemoryConfig()) * 0.9999);
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, ClockSweepTest,
                         ::testing::Values(0.25, 0.5, 2.0, 4.0));

TEST(ModelInvariantTest, TimeScalesLinearlyWithWorkAtScale) {
  // Doubling the NDRange on a compute-bound kernel roughly doubles time.
  const kir::Program p = MixedKernel();
  auto compiled = CompileForMali(p, MaliTimingParams(), MaliCompilerParams());
  ASSERT_TRUE(compiled.ok());
  auto time_for = [&](std::uint64_t n) {
    std::vector<float> in(2 * n + 16, 1.0f), out(2 * n, 0.0f);
    MaliT604Device device;
    kir::LaunchConfig config;
    config.global_size = {n, 1, 1};
    config.local_size = {128, 1, 1};
    kir::Bindings b;
    b.buffers = {
        {reinterpret_cast<std::byte*>(in.data()), 0x100000, in.size() * 4},
        {reinterpret_cast<std::byte*>(out.data()), 0x900000, out.size() * 4}};
    auto run = device.Run(*compiled, config, std::move(b));
    EXPECT_TRUE(run.ok());
    return run->seconds;
  };
  const double t1 = time_for(1 << 16);
  const double t2 = time_for(1 << 17);
  EXPECT_NEAR(t2 / t1, 2.0, 0.3);
}

}  // namespace
}  // namespace malisim::mali
