#include "mali/t604_device.h"

#include <vector>

#include <gtest/gtest.h>

#include "kir/builder.h"
#include "mali/compiler.h"

namespace malisim::mali {
namespace {

using kir::ArgKind;
using kir::KernelBuilder;
using kir::ScalarType;
using kir::Val;

kir::Program ScaleKernel(std::uint8_t lanes) {
  KernelBuilder kb(lanes > 1 ? "scale_vec" : "scale");
  auto in = kb.ArgBuffer("in", ScalarType::kF32, ArgKind::kBufferRO);
  auto out = kb.ArgBuffer("out", ScalarType::kF32, ArgKind::kBufferWO);
  Val gid = kb.GlobalId(0);
  if (lanes > 1) {
    Val base = kb.Binary(kir::Opcode::kMul, gid, kb.ConstI(kir::I32(), lanes));
    kb.Store(out, base, kb.Load(in, base, 0, lanes) * 3.0);
  } else {
    kb.Store(out, gid, kb.Load(in, gid) * 3.0);
  }
  return *kb.Build();
}

kir::Bindings Bind(std::vector<float>& in, std::vector<float>& out) {
  kir::Bindings b;
  b.buffers = {{reinterpret_cast<std::byte*>(in.data()), 0x100000, in.size() * 4},
               {reinterpret_cast<std::byte*>(out.data()), 0x200000, out.size() * 4}};
  return b;
}

CompiledKernel Compile(const kir::Program& p) {
  auto compiled = CompileForMali(p, MaliTimingParams(), MaliCompilerParams());
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  return *compiled;
}

TEST(MaliDeviceTest, ExecutesKernelCorrectly) {
  const std::size_t n = 4096;
  std::vector<float> in(n, 2.0f), out(n, 0.0f);
  kir::Program p = ScaleKernel(1);
  CompiledKernel kernel = Compile(p);
  MaliT604Device device;
  kir::LaunchConfig config;
  config.global_size = {n, 1, 1};
  config.local_size = {64, 1, 1};
  auto result = device.Run(kernel, config, Bind(in, out));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (float v : out) EXPECT_FLOAT_EQ(v, 6.0f);
  EXPECT_GT(result->seconds, 0.0);
  EXPECT_TRUE(result->profile.gpu_on);
}

TEST(MaliDeviceTest, VectorizedKernelIsFaster) {
  // The core §III-B claim: the same work in float4 beats scalar.
  const std::size_t n = 1 << 16;
  std::vector<float> in(n, 1.0f), out(n, 0.0f);
  kir::Program scalar = ScaleKernel(1);
  kir::Program vec = ScaleKernel(4);
  MaliT604Device device;

  kir::LaunchConfig scalar_cfg;
  scalar_cfg.global_size = {n, 1, 1};
  scalar_cfg.local_size = {128, 1, 1};
  device.FlushCaches();
  auto scalar_run = device.Run(Compile(scalar), scalar_cfg, Bind(in, out));
  ASSERT_TRUE(scalar_run.ok());

  kir::LaunchConfig vec_cfg;
  vec_cfg.global_size = {n / 4, 1, 1};
  vec_cfg.local_size = {128, 1, 1};
  device.FlushCaches();
  auto vec_run = device.Run(Compile(vec), vec_cfg, Bind(in, out));
  ASSERT_TRUE(vec_run.ok());

  EXPECT_LT(vec_run->seconds, scalar_run->seconds);
}

TEST(MaliDeviceTest, FewerLargerGroupsAmortizeDispatch) {
  // §III-A: tiny work-groups over-fragment the Job Manager.
  const std::size_t n = 1 << 16;
  std::vector<float> in(n, 1.0f), out(n, 0.0f);
  kir::Program p = ScaleKernel(1);
  CompiledKernel kernel = Compile(p);
  MaliT604Device device;

  kir::LaunchConfig small_cfg;
  small_cfg.global_size = {n, 1, 1};
  small_cfg.local_size = {4, 1, 1};
  device.FlushCaches();
  auto small_groups = device.Run(kernel, small_cfg, Bind(in, out));
  ASSERT_TRUE(small_groups.ok());

  kir::LaunchConfig big_cfg;
  big_cfg.global_size = {n, 1, 1};
  big_cfg.local_size = {256, 1, 1};
  device.FlushCaches();
  auto big_groups = device.Run(kernel, big_cfg, Bind(in, out));
  ASSERT_TRUE(big_groups.ok());

  EXPECT_LT(big_groups->seconds, small_groups->seconds);
}

TEST(MaliDeviceTest, OutOfResourcesKernelRefusesToLaunch) {
  KernelBuilder kb("hog");
  auto in = kb.ArgBuffer("in", ScalarType::kF64, ArgKind::kBufferRO);
  auto out = kb.ArgBuffer("out", ScalarType::kF64, ArgKind::kBufferWO);
  Val zero = kb.ConstI(kir::I32(), 0);
  std::vector<Val> live;
  for (int i = 0; i < 12; ++i) live.push_back(kb.Load(in, zero, i * 8, 8));
  Val sum = live[0];
  for (int i = 1; i < 12; ++i) sum = sum + live[i];
  kb.Store(out, zero, sum);
  kir::Program p = *kb.Build();
  CompiledKernel kernel = Compile(p);
  ASSERT_TRUE(kernel.exceeds_resources);

  std::vector<float> dummy_in(256), dummy_out(256);
  MaliT604Device device;
  kir::LaunchConfig config;
  auto result = device.Run(kernel, config, Bind(dummy_in, dummy_out));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kResourceExhausted);
}

TEST(MaliDeviceTest, AtomicContentionSerializes) {
  // All work-items hammer one counter vs spread counters.
  auto make = [](bool spread) {
    KernelBuilder kb(spread ? "spread" : "hot");
    auto counters = kb.ArgBuffer("counters", ScalarType::kI32, ArgKind::kBufferRW);
    Val gid = kb.GlobalId(0);
    Val idx = spread
                  ? kb.Binary(kir::Opcode::kMul, gid, kb.ConstI(kir::I32(), 16))
                  : kb.ConstI(kir::I32(), 0);
    kb.AtomicAdd(counters, idx, kb.ConstI(kir::I32(), 1));
    return *kb.Build();
  };
  const std::size_t n = 1 << 14;
  std::vector<std::int32_t> counters(n * 16, 0);
  kir::Bindings bindings;
  bindings.buffers = {{reinterpret_cast<std::byte*>(counters.data()), 0x100000,
                       counters.size() * 4}};
  MaliT604Device device;
  kir::LaunchConfig config;
  config.global_size = {n, 1, 1};
  config.local_size = {64, 1, 1};

  kir::Program hot = make(false);
  device.FlushCaches();
  auto hot_run = device.Run(Compile(hot), config, bindings);
  ASSERT_TRUE(hot_run.ok());
  EXPECT_EQ(counters[0], static_cast<std::int32_t>(n));

  std::fill(counters.begin(), counters.end(), 0);
  kir::Program spread = make(true);
  device.FlushCaches();
  auto spread_run = device.Run(Compile(spread), config, bindings);
  ASSERT_TRUE(spread_run.ok());

  EXPECT_GT(hot_run->seconds, 1.5 * spread_run->seconds);
}

TEST(MaliDeviceTest, DriverLocalSizeHeuristic) {
  EXPECT_EQ(MaliT604Device::DriverPickLocalSize(1024), 64u);
  EXPECT_EQ(MaliT604Device::DriverPickLocalSize(1024, 16), 16u);
  EXPECT_EQ(MaliT604Device::DriverPickLocalSize(100), 4u);  // 100 = 4 * 25
  EXPECT_EQ(MaliT604Device::DriverPickLocalSize(7), 1u);
  EXPECT_EQ(MaliT604Device::DriverPickLocalSize(62), 2u);
}

TEST(MaliDeviceTest, StatsExposePipeBreakdown) {
  const std::size_t n = 1024;
  std::vector<float> in(n, 1.0f), out(n, 0.0f);
  kir::Program p = ScaleKernel(1);
  MaliT604Device device;
  kir::LaunchConfig config;
  config.global_size = {n, 1, 1};
  config.local_size = {64, 1, 1};
  auto result = device.Run(Compile(p), config, Bind(in, out));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->stats.Has("mali.core0.arith_cycles"));
  EXPECT_TRUE(result->stats.Has("mali.core0.ls_cycles"));
  EXPECT_TRUE(result->stats.Has("mali.dram_bw_floor_sec"));
  EXPECT_GT(result->stats.Get("mali.threads_per_core"), 0.0);
}

TEST(MaliDeviceTest, WorkSpreadsAcrossAllCores) {
  const std::size_t n = 1 << 14;
  std::vector<float> in(n, 1.0f), out(n, 0.0f);
  kir::Program p = ScaleKernel(1);
  MaliT604Device device;
  kir::LaunchConfig config;
  config.global_size = {n, 1, 1};
  config.local_size = {64, 1, 1};
  auto result = device.Run(Compile(p), config, Bind(in, out));
  ASSERT_TRUE(result.ok());
  for (int c = 0; c < 4; ++c) {
    EXPECT_GT(result->profile.gpu_core_busy[static_cast<std::size_t>(c)], 0.0)
        << "core " << c;
  }
}

}  // namespace
}  // namespace malisim::mali
