#include "mali/compiler.h"

#include <gtest/gtest.h>

#include "kir/builder.h"

namespace malisim::mali {
namespace {

using kir::ArgKind;
using kir::KernelBuilder;
using kir::ScalarType;
using kir::Val;

kir::Program SimpleKernel(bool fp64, bool restricted) {
  KernelBuilder kb("simple");
  const ScalarType ft = fp64 ? ScalarType::kF64 : ScalarType::kF32;
  auto in = kb.ArgBuffer("in", ft, ArgKind::kBufferRO, restricted, restricted);
  auto out = kb.ArgBuffer("out", ft, ArgKind::kBufferWO, restricted, false);
  Val gid = kb.GlobalId(0);
  kb.Store(out, gid, kb.Load(in, gid) * 2.0);
  return *kb.Build();
}

TEST(MaliCompilerTest, SimpleKernelCompiles) {
  kir::Program p = SimpleKernel(false, false);
  auto compiled = CompileForMali(p, MaliTimingParams(), MaliCompilerParams());
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_EQ(compiled->program, &p);
  EXPECT_FALSE(compiled->exceeds_resources);
  EXPECT_GE(compiled->threads_per_core, 4u);
  EXPECT_LE(compiled->threads_per_core, 256u);
  EXPECT_DOUBLE_EQ(compiled->sched_factor, 1.0);
}

TEST(MaliCompilerTest, LightKernelReachesFullOccupancy) {
  kir::Program p = SimpleKernel(false, false);
  auto compiled = CompileForMali(p, MaliTimingParams(), MaliCompilerParams());
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(compiled->threads_per_core, MaliTimingParams().max_threads_per_core);
}

TEST(MaliCompilerTest, QualifiersEarnSchedulingBonus) {
  kir::Program p = SimpleKernel(false, true);
  auto compiled = CompileForMali(p, MaliTimingParams(), MaliCompilerParams());
  ASSERT_TRUE(compiled.ok());
  EXPECT_LT(compiled->sched_factor, 1.0);
}

kir::Program RegisterHungryKernel(bool fp64) {
  // Many simultaneously-live wide vectors.
  KernelBuilder kb("hungry");
  const ScalarType ft = fp64 ? ScalarType::kF64 : ScalarType::kF32;
  auto in = kb.ArgBuffer("in", ft, ArgKind::kBufferRO);
  auto out = kb.ArgBuffer("out", ft, ArgKind::kBufferWO);
  Val zero = kb.ConstI(kir::I32(), 0);
  std::vector<Val> live;
  for (int i = 0; i < 16; ++i) {
    live.push_back(kb.Load(in, zero, i * 8, 8));  // 16 x vec8
  }
  Val sum = live[0];
  for (int i = 1; i < 16; ++i) sum = sum + live[i];
  kb.Store(out, zero, sum);
  return *kb.Build();
}

TEST(MaliCompilerTest, RegisterPressureMarksOutOfResources) {
  // FP64: 16 live f64x8 = 1 KiB of registers, over any sane budget.
  kir::Program p = RegisterHungryKernel(true);
  auto compiled = CompileForMali(p, MaliTimingParams(), MaliCompilerParams());
  ASSERT_TRUE(compiled.ok());  // the *build* succeeds, as on the real driver
  EXPECT_TRUE(compiled->exceeds_resources);
}

TEST(MaliCompilerTest, OccupancyDropsWithRegisterPressure) {
  kir::Program light = SimpleKernel(false, false);
  kir::Program heavy = RegisterHungryKernel(false);
  const auto cl = CompileForMali(light, MaliTimingParams(), MaliCompilerParams());
  const auto ch = CompileForMali(heavy, MaliTimingParams(), MaliCompilerParams());
  ASSERT_TRUE(cl.ok());
  ASSERT_TRUE(ch.ok());
  EXPECT_LT(ch->threads_per_core, cl->threads_per_core);
  EXPECT_GT(ch->live_reg_bytes, cl->live_reg_bytes);
}

kir::Program ErratumKernel(bool fp64) {
  KernelBuilder kb("metropolis");
  const ScalarType ft = fp64 ? ScalarType::kF64 : ScalarType::kF32;
  auto buf = kb.ArgBuffer("buf", ft, ArgKind::kBufferRW);
  Val n = kb.ConstI(kir::I32(), 8);
  kb.For("t", kb.ConstI(kir::I32(), 0), n, 1, [&](Val t) {
    Val p = kb.Exp(kb.Load(buf, t));
    Val cond = kb.CmpLt(t, kb.ConstI(kir::I32(), 4));
    kb.If(cond, [&] { kb.Store(buf, t, p); });
  });
  return *kb.Build();
}

TEST(MaliCompilerTest, Fp64ErratumFailsBuild) {
  kir::Program p = ErratumKernel(true);
  auto compiled = CompileForMali(p, MaliTimingParams(), MaliCompilerParams());
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), ErrorCode::kBuildFailure);
}

TEST(MaliCompilerTest, Fp32VersionOfErratumShapeCompiles) {
  kir::Program p = ErratumKernel(false);
  EXPECT_TRUE(CompileForMali(p, MaliTimingParams(), MaliCompilerParams()).ok());
}

TEST(MaliCompilerTest, ErratumEmulationCanBeDisabled) {
  kir::Program p = ErratumKernel(true);
  MaliCompilerParams params;
  params.emulate_fp64_erratum = false;
  EXPECT_TRUE(CompileForMali(p, MaliTimingParams(), params).ok());
}

TEST(MaliCompilerTest, UnfinalizedProgramRejected) {
  kir::Program p;
  p.name = "raw";
  auto compiled = CompileForMali(p, MaliTimingParams(), MaliCompilerParams());
  EXPECT_EQ(compiled.status().code(), ErrorCode::kFailedPrecondition);
}

}  // namespace
}  // namespace malisim::mali
