#include "obs/counters.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace malisim::obs {
namespace {

TEST(CounterRegistryTest, RegisterIsIdempotent) {
  CounterRegistry reg;
  const auto id1 = reg.Register("sim.groups");
  const auto id2 = reg.Register("sim.groups");
  EXPECT_EQ(id1, id2);
  EXPECT_EQ(reg.size(), 1u);
  const auto id3 = reg.Register("sim.kernels");
  EXPECT_NE(id1, id3);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(CounterRegistryTest, AddAccumulates) {
  CounterRegistry reg;
  const auto id = reg.Register("x");
  reg.Add(id, 2.0);
  reg.Add(id, 0.5);
  EXPECT_DOUBLE_EQ(reg.Get("x"), 2.5);
}

TEST(CounterRegistryTest, IncrementRegistersOnFirstUse) {
  CounterRegistry reg;
  reg.Increment("events");          // default delta 1
  reg.Increment("events", 3.0);
  EXPECT_DOUBLE_EQ(reg.Get("events"), 4.0);
  EXPECT_DOUBLE_EQ(reg.Get("absent"), 0.0);
}

TEST(CounterRegistryTest, SnapshotPreservesRegistrationOrder) {
  CounterRegistry reg;
  reg.Increment("b", 1.0);
  reg.Increment("a", 2.0);
  reg.Increment("b", 1.0);
  const auto snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].name, "b");
  EXPECT_DOUBLE_EQ(snap[0].value, 2.0);
  EXPECT_EQ(snap[1].name, "a");
  EXPECT_DOUBLE_EQ(snap[1].value, 2.0);
}

TEST(CounterRegistryTest, ConcurrentAddsDoNotLoseUpdates) {
  CounterRegistry reg;
  const auto id = reg.Register("hits");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) reg.Add(id, 1.0);
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_DOUBLE_EQ(reg.Get("hits"), kThreads * kPerThread);
}

TEST(ScopedSpanTest, AddsElapsedNanoseconds) {
  CounterRegistry reg;
  const auto id = reg.Register("host.span_ns");
  { ScopedSpan span(&reg, id); }
  // Wall-clock: can't assert a value, only that something non-negative
  // landed and the counter exists.
  EXPECT_GE(reg.Get("host.span_ns"), 0.0);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(ScopedSpanTest, NullRegistryIsSafe) {
  { ScopedSpan span(nullptr, 0); }  // must not crash
}

}  // namespace
}  // namespace malisim::obs
