#include "obs/power_sampler.h"

#include <cmath>

#include <gtest/gtest.h>

#include "power/power_model.h"
#include "power/profile.h"

namespace malisim::obs {
namespace {

power::ActivityProfile CpuProfile(double seconds) {
  power::ActivityProfile p;
  p.seconds = seconds;
  p.cpu_busy = {1.0, 0.0};
  return p;
}

power::ActivityProfile GpuProfile(double seconds) {
  power::ActivityProfile p;
  p.seconds = seconds;
  p.gpu_on = true;
  p.gpu_core_busy = {0.8, 0.8, 0.8, 0.8};
  p.dram_bytes = 1u << 30;
  return p;
}

TEST(PowerSamplerTest, RailsSumExactlyToTotal) {
  const power::PowerModel model;
  const PowerSampler sampler(&model);
  for (const auto& profile : {CpuProfile(1.0), GpuProfile(2.0)}) {
    const RailPower rails = sampler.Rails(profile);
    // The power model is a sum of rails, so the decomposition is exact by
    // construction — assert bitwise-equal, not approximately.
    EXPECT_DOUBLE_EQ(rails.total,
                     rails.static_w + rails.cpu + rails.gpu + rails.dram);
    EXPECT_DOUBLE_EQ(rails.total, model.AveragePower(profile));
    EXPECT_DOUBLE_EQ(rails.static_w, model.params().board_static_w);
  }
}

TEST(PowerSamplerTest, RailAttributionMatchesActivity) {
  const power::PowerModel model;
  const PowerSampler sampler(&model);
  const RailPower cpu = sampler.Rails(CpuProfile(1.0));
  EXPECT_GT(cpu.cpu, 0.0);
  EXPECT_DOUBLE_EQ(cpu.gpu, 0.0);  // GPU block powered off
  const RailPower gpu = sampler.Rails(GpuProfile(1.0));
  EXPECT_GT(gpu.gpu, 0.0);
  EXPECT_GT(gpu.dram, 0.0);
}

TEST(PowerSamplerTest, SampleCountIsFloorTimesHzPlusOne) {
  const power::PowerModel model;
  // 10 Hz over 2.0 s -> samples at t = 0, 0.1, ..., 2.0 -> 21 samples.
  const PowerSampler sampler(&model, 10.0);
  const PowerTimeline timeline =
      sampler.Render({{"a", 2.0, CpuProfile(2.0)}});
  EXPECT_DOUBLE_EQ(timeline.sampling_hz, 10.0);
  EXPECT_DOUBLE_EQ(timeline.total_sec, 2.0);
  ASSERT_EQ(timeline.samples.size(), 21u);
  EXPECT_DOUBLE_EQ(timeline.samples.front().t_sec, 0.0);
  EXPECT_DOUBLE_EQ(timeline.samples.back().t_sec, 2.0);
  // Configurable rate: 4 Hz over 2.0 s -> 9 samples.
  const PowerSampler slow(&model, 4.0);
  EXPECT_EQ(slow.Render({{"a", 2.0, CpuProfile(2.0)}}).samples.size(), 9u);
}

TEST(PowerSamplerTest, BoundarySampleBelongsToLaterSegment) {
  const power::PowerModel model;
  const PowerSampler sampler(&model, 10.0);
  const PowerTimeline timeline = sampler.Render(
      {{"cpu", 1.0, CpuProfile(1.0)}, {"gpu", 1.0, GpuProfile(1.0)}});
  ASSERT_EQ(timeline.segments.size(), 2u);
  EXPECT_DOUBLE_EQ(timeline.segments[1].start_sec, 1.0);
  // t = 1.0 lands exactly on the boundary: it must read segment 1.
  bool found = false;
  for (const PowerSample& s : timeline.samples) {
    if (s.t_sec == 1.0) {
      EXPECT_EQ(s.segment, 1);
      EXPECT_DOUBLE_EQ(s.watts.total, timeline.segments[1].watts.total);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  // The final sample (t = 2.0) is past the last segment's interior start
  // but still inside the timeline; it reads the last segment.
  EXPECT_EQ(timeline.samples.back().segment, 1);
}

TEST(PowerSamplerTest, SegmentEnergyIsPowerTimesWindow) {
  const power::PowerModel model;
  const PowerSampler sampler(&model, 10.0);
  const PowerTimeline timeline =
      sampler.Render({{"a", 2.0, CpuProfile(2.0)}, {"b", 0.5, GpuProfile(0.5)}});
  for (const SegmentPower& seg : timeline.segments) {
    EXPECT_DOUBLE_EQ(seg.energy_j.total, seg.watts.total * seg.window_sec);
    EXPECT_DOUBLE_EQ(seg.energy_j.cpu, seg.watts.cpu * seg.window_sec);
  }
  const RailPower total = timeline.TotalEnergy();
  EXPECT_DOUBLE_EQ(total.total, timeline.segments[0].energy_j.total +
                                    timeline.segments[1].energy_j.total);
  EXPECT_NEAR(total.total,
              total.static_w + total.cpu + total.gpu + total.dram, 1e-12);
}

TEST(PowerSamplerTest, EmptySegmentsGiveEmptyTimeline) {
  const power::PowerModel model;
  const PowerSampler sampler(&model, 10.0);
  const PowerTimeline timeline = sampler.Render({});
  EXPECT_DOUBLE_EQ(timeline.total_sec, 0.0);
  EXPECT_TRUE(timeline.segments.empty());
  EXPECT_TRUE(timeline.samples.empty());
  EXPECT_DOUBLE_EQ(timeline.TotalEnergy().total, 0.0);
}

}  // namespace
}  // namespace malisim::obs
