// Exporter robustness under meter-dropout faults: a run whose virtual
// WT230 drops samples (up to every sample of every window) must still
// round-trip through the metrics JSON, the power-timeline CSV and the
// Perfetto trace without NaN/Inf or structural garbage — empty measurement
// windows are a modelled outcome, not an export error.
#include <algorithm>
#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "obs/export.h"
#include "obs/power_sampler.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "power/power_model.h"

namespace malisim::obs {
namespace {

/// No printf-formatted non-finite double anywhere: a NaN/Inf would render
/// as "nan"/"inf" right after a key or separator. Word matches ("info")
/// don't trip this.
void ExpectFinite(const std::string& text, const std::string& label) {
  for (const char* bad : {":nan", ":-nan", ":inf", ":-inf", ",nan", ",-nan",
                          ",inf", ",-inf"}) {
    EXPECT_EQ(text.find(bad), std::string::npos)
        << label << " contains non-finite value near '" << bad << "'";
  }
}

struct FaultRun {
  Recorder recorder;
  bool ok = false;
};

void RunWithMeterDropouts(double dropout_rate, FaultRun* run) {
  harness::ExperimentConfig config;
  config.sizes = hpc::ProblemSizes::Quick();
  config.repetitions = 3;
  config.fault.seed = 7;
  config.fault.spec = "meter=" + std::to_string(dropout_rate);
  config.recorder = &run->recorder;
  harness::ExperimentRunner runner(config);
  auto result = runner.RunBenchmark("vecop");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  run->recorder.Seal();
  run->ok = true;
}

class ExportFaultTest : public ::testing::TestWithParam<double> {};

TEST_P(ExportFaultTest, ExportsStayFiniteUnderMeterDropouts) {
  FaultRun run;
  RunWithMeterDropouts(GetParam(), &run);
  ASSERT_TRUE(run.ok);
  const power::PowerModel model;

  const std::string metrics = MetricsJson(run.recorder, model);
  ExpectFinite(metrics, "metrics JSON");
  EXPECT_EQ(std::count(metrics.begin(), metrics.end(), '{'),
            std::count(metrics.begin(), metrics.end(), '}'));
  EXPECT_EQ(std::count(metrics.begin(), metrics.end(), '['),
            std::count(metrics.begin(), metrics.end(), ']'));

  const PowerSampler sampler(&model, 10.0);
  const PowerTimeline timeline =
      sampler.Render(run.recorder.power_segments());
  const std::string csv = PowerTimelineCsv(timeline);
  ExpectFinite(csv, "power CSV");
  for (const PowerSample& sample : timeline.samples) {
    EXPECT_TRUE(std::isfinite(sample.watts.total));
    EXPECT_TRUE(std::isfinite(sample.watts.cpu));
    EXPECT_TRUE(std::isfinite(sample.watts.gpu));
    EXPECT_TRUE(std::isfinite(sample.watts.dram));
  }

  TraceBuilder trace;
  BuildTrace(run.recorder, model, &trace);
  const std::string trace_json = trace.ToJson();
  ExpectFinite(trace_json, "Perfetto trace");
  EXPECT_EQ(trace_json.front(), '[');
  EXPECT_EQ(std::count(trace_json.begin(), trace_json.end(), '{'),
            std::count(trace_json.begin(), trace_json.end(), '}'));
}

// 0.5 = flaky link (some windows partially sampled); 1.0 = dead link
// (every repetition fails, power means collapse to zero-sample windows).
INSTANTIATE_TEST_SUITE_P(DropoutRates, ExportFaultTest,
                         ::testing::Values(0.5, 1.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return info.param == 1.0 ? "dead_link"
                                                    : "flaky_link";
                         });

}  // namespace
}  // namespace malisim::obs
