// Tests for the BENCH_*.json record layer: serialization byte-identity
// across record order and obs options, parse/flatten round-trips, polarity
// classification, and the regression-comparison engine that gates CI.
#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "obs/bench_report.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "power/power_model.h"

namespace malisim::obs {
namespace {

BenchReportMeta Meta() {
  BenchReportMeta meta;
  meta.name = "fig2_performance";
  meta.git_sha = "abc123def456";
  meta.fault_plan_hash = "00000000deadbeef";
  meta.options = {{"seed", "42"}, {"fault_rate", "0"}};
  return meta;
}

std::vector<BenchCell> Cells() {
  BenchCell serial;
  serial.benchmark = "vecadd";
  serial.variant = "Serial";
  serial.precision = "fp32";
  serial.available = true;
  serial.seconds = 2.0;
  serial.power_mean_w = 3.5;
  serial.power_stddev_w = 0.1;
  serial.energy_j = 7.0;
  serial.edp_js = 14.0;
  serial.speedup_vs_serial = 1.0;
  serial.power_vs_serial = 1.0;
  serial.energy_vs_serial = 1.0;
  serial.validated = true;

  BenchCell missing;
  missing.benchmark = "vecadd";
  missing.variant = "OpenCL";
  missing.precision = "fp32";
  missing.available = false;
  missing.unavailable_reason = "no device";
  return {serial, missing};
}

MetricsSnapshot Snapshot() {
  MetricsAggregator agg;
  agg.SetGauge("fp32/segment/vecadd/Serial/avg_w", 3.5);
  agg.AddCounter("fp32/kernels_launched", 5.0);
  for (int i = 1; i <= 10; ++i) {
    agg.Observe("fp32/kernel_time_sec", 1e-3 * static_cast<double>(i));
  }
  return agg.Finalize();
}

TEST(BenchReportTest, SerializeParseFlattenRoundTrip) {
  const std::string json =
      BenchReportJson(Meta(), Cells(), {{"fig2a/vecadd/opencl/fp32", 4.0, 4.2}},
                      Snapshot());
  // The record itself must be valid JSON.
  ASSERT_TRUE(ParseJson(json).ok());

  StatusOr<ParsedBenchReport> parsed = ParseBenchReport(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->schema, kBenchReportSchema);
  EXPECT_EQ(parsed->name, "fig2_performance");
  EXPECT_EQ(parsed->git_sha, "abc123def456");
  EXPECT_EQ(parsed->fault_plan_hash, "00000000deadbeef");

  const std::map<std::string, double>& m = parsed->metrics;
  EXPECT_EQ(m.at("cell/vecadd/Serial/fp32/available"), 1.0);
  EXPECT_EQ(m.at("cell/vecadd/Serial/fp32/seconds"), 2.0);
  EXPECT_EQ(m.at("cell/vecadd/Serial/fp32/energy_j"), 7.0);
  EXPECT_EQ(m.at("cell/vecadd/Serial/fp32/edp_js"), 14.0);
  // Unavailable cells flatten to available=0 and nothing else.
  EXPECT_EQ(m.at("cell/vecadd/OpenCL/fp32/available"), 0.0);
  EXPECT_EQ(m.count("cell/vecadd/OpenCL/fp32/seconds"), 0u);
  EXPECT_EQ(m.at("gauge/fp32/segment/vecadd/Serial/avg_w"), 3.5);
  EXPECT_EQ(m.at("counter/fp32/kernels_launched"), 5.0);
  EXPECT_EQ(m.at("hist/fp32/kernel_time_sec/count"), 10.0);
  EXPECT_EQ(m.at("hist/fp32/kernel_time_sec/max"), 1e-2);
  EXPECT_EQ(m.count("hist/fp32/kernel_time_sec/p50"), 1u);
  EXPECT_EQ(m.count("hist/fp32/kernel_time_sec/p99"), 1u);
}

KernelRecord Kernel(const std::string& name, double seconds) {
  KernelRecord k;
  k.kernel = name;
  k.device = "mali-t604";
  k.seconds = seconds;
  k.work_items = 1024;
  k.profile.seconds = seconds;
  k.profile.gpu_on = true;
  k.profile.gpu_core_busy = {0.5, 0.5};
  return k;
}

PowerSegment Segment(const std::string& label, double window_sec) {
  PowerSegment seg;
  seg.label = label;
  seg.window_sec = window_sec;
  seg.profile.seconds = window_sec;
  seg.profile.cpu_busy = {1.0, 0.0};
  return seg;
}

TEST(BenchReportTest, ByteIdenticalAcrossRecordOrderAndObsOptions) {
  // The --threads byte-identity contract at unit scale: same record
  // multiset in a different order, recorded with different host-side obs
  // options (trace on vs off), must serialize identically.
  ObsOptions with_trace;
  with_trace.trace = true;
  Recorder fwd(with_trace);
  fwd.AddKernel(Kernel("vecadd", 0.002));
  fwd.AddKernel(Kernel("spmv", 0.004));
  fwd.AddPowerSegment(Segment("demo/Serial", 2.0));
  fwd.AddPowerSegment(Segment("demo/OpenCL", 1.0));

  ObsOptions no_trace;
  no_trace.trace = false;
  Recorder rev(no_trace);
  rev.AddPowerSegment(Segment("demo/OpenCL", 1.0));
  rev.AddKernel(Kernel("spmv", 0.004));
  rev.AddPowerSegment(Segment("demo/Serial", 2.0));
  rev.AddKernel(Kernel("vecadd", 0.002));

  const power::PowerModel model;
  MetricsAggregator agg_fwd;
  agg_fwd.IngestRecorder(fwd, model, "fp32");
  MetricsAggregator agg_rev;
  agg_rev.IngestRecorder(rev, model, "fp32");

  const std::string a = BenchReportJson(Meta(), Cells(), {}, agg_fwd.Finalize());
  const std::string b = BenchReportJson(Meta(), Cells(), {}, agg_rev.Finalize());
  EXPECT_EQ(a, b);
}

TEST(BenchReportTest, OptionsAndPaperDeltasAreEmittedSorted) {
  BenchReportMeta fwd = Meta();
  BenchReportMeta rev = Meta();
  std::reverse(rev.options.begin(), rev.options.end());
  const std::vector<PaperDelta> deltas_fwd = {{"fig2a/a", 1.0, 1.1},
                                              {"fig2a/b", 2.0, 2.2}};
  const std::vector<PaperDelta> deltas_rev = {{"fig2a/b", 2.0, 2.2},
                                              {"fig2a/a", 1.0, 1.1}};
  EXPECT_EQ(BenchReportJson(fwd, {}, deltas_fwd, {}),
            BenchReportJson(rev, {}, deltas_rev, {}));
}

TEST(BenchReportTest, SimThroughputSectionsEmitAndFlatten) {
  SimThroughput t;
  t.sweep = "fp32";
  t.work_items = 16384;
  t.opcodes = 1000000;
  t.launches = 9;
  t.modelled_sec = 0.125;
  t.host_sec = 2.0;
  t.work_items_per_host_sec = 8192.0;
  t.opcodes_per_host_sec = 500000.0;
  t.host_sec_per_modelled_sec = 16.0;

  const std::string json = BenchReportJson(Meta(), Cells(), {}, Snapshot(),
                                           {t});
  ASSERT_TRUE(ParseJson(json).ok());
  // Deterministic totals and measured host rates land in separate
  // sections, so the byte-identity check can mask only the latter.
  EXPECT_NE(json.find("\"sim_throughput\""), std::string::npos);
  EXPECT_NE(json.find("\"sim_throughput_host\""), std::string::npos);

  StatusOr<ParsedBenchReport> parsed = ParseBenchReport(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const std::map<std::string, double>& m = parsed->metrics;
  EXPECT_EQ(m.at("sim_throughput/fp32/work_items"), 16384.0);
  EXPECT_EQ(m.at("sim_throughput/fp32/opcodes"), 1000000.0);
  EXPECT_EQ(m.at("sim_throughput/fp32/launches"), 9.0);
  EXPECT_EQ(m.at("sim_throughput/fp32/modelled_sec"), 0.125);
  EXPECT_EQ(m.at("sim_throughput_host/fp32/host_sec"), 2.0);
  EXPECT_EQ(m.at("sim_throughput_host/fp32/work_items_per_host_sec"), 8192.0);
  EXPECT_EQ(m.at("sim_throughput_host/fp32/opcodes_per_host_sec"), 500000.0);
  EXPECT_EQ(m.at("sim_throughput_host/fp32/host_sec_per_modelled_sec"), 16.0);
}

TEST(BenchReportTest, EmptyThroughputOmitsSectionsForHistoricalIdentity) {
  const std::string with_default = BenchReportJson(Meta(), Cells(), {},
                                                   Snapshot());
  const std::string with_empty = BenchReportJson(Meta(), Cells(), {},
                                                 Snapshot(), {});
  EXPECT_EQ(with_default, with_empty);
  EXPECT_EQ(with_default.find("sim_throughput"), std::string::npos);
}

TEST(BenchReportTest, ParseRejectsWrongSchemaAndGarbage) {
  EXPECT_FALSE(ParseBenchReport("not json").ok());
  EXPECT_FALSE(ParseBenchReport("[]").ok());
  const Status wrong =
      ParseBenchReport(R"({"schema":"malisim-bench-v999"})").status();
  EXPECT_EQ(wrong.code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(wrong.message().find("malisim-bench-v999"), std::string::npos);
}

TEST(BenchReportTest, LoadReportsMissingFileAsNotFound) {
  const Status status =
      LoadBenchReport("/nonexistent/bench.json").status();
  EXPECT_EQ(status.code(), ErrorCode::kNotFound);
  EXPECT_NE(status.message().find("/nonexistent/bench.json"),
            std::string::npos);
}

TEST(MetricPolarityTest, ClassifiesByName) {
  EXPECT_EQ(MetricPolarity("cell/vecadd/Serial/fp32/seconds"),
            Polarity::kLowerBetter);
  EXPECT_EQ(MetricPolarity("cell/vecadd/OpenCL/fp32/energy_j"),
            Polarity::kLowerBetter);
  EXPECT_EQ(MetricPolarity("cell/vecadd/OpenCL/fp32/edp_js"),
            Polarity::kLowerBetter);
  EXPECT_EQ(MetricPolarity("cell/vecadd/OpenCL/fp32/power_mean_w"),
            Polarity::kLowerBetter);
  EXPECT_EQ(MetricPolarity("hist/fp32/kernel_stall_sec/p99"),
            Polarity::kLowerBetter);
  EXPECT_EQ(MetricPolarity("cell/vecadd/OpenCL/fp32/speedup_vs_serial"),
            Polarity::kHigherBetter);
  EXPECT_EQ(MetricPolarity("cell/vecadd/OpenCL/fp32/available"),
            Polarity::kHigherBetter);
  // Counters and counts are signal, never a verdict.
  EXPECT_EQ(MetricPolarity("counter/fp32/faults"), Polarity::kNeutral);
  EXPECT_EQ(MetricPolarity("hist/fp32/kernel_time_sec/count"),
            Polarity::kNeutral);
  EXPECT_EQ(MetricPolarity("gauge/unclassified_thing"), Polarity::kNeutral);
  // Simulator throughput: host rates are higher-better, host-seconds per
  // modelled second is the slowdown factor (lower-better), the modelled
  // totals are deterministic workload descriptors (neutral counts) and the
  // raw times fall through to the generic lower-better _sec rule.
  EXPECT_EQ(MetricPolarity("sim_throughput_host/fp32/work_items_per_host_sec"),
            Polarity::kHigherBetter);
  EXPECT_EQ(MetricPolarity("sim_throughput_host/fp32/opcodes_per_host_sec"),
            Polarity::kHigherBetter);
  EXPECT_EQ(
      MetricPolarity("sim_throughput_host/fp32/host_sec_per_modelled_sec"),
      Polarity::kLowerBetter);
  EXPECT_EQ(MetricPolarity("sim_throughput_host/fp32/host_sec"),
            Polarity::kLowerBetter);
  EXPECT_EQ(MetricPolarity("sim_throughput/fp32/modelled_sec"),
            Polarity::kLowerBetter);
  EXPECT_EQ(MetricPolarity("sim_throughput/fp32/opcodes"), Polarity::kNeutral);
}

ParsedBenchReport Report(std::map<std::string, double> metrics) {
  ParsedBenchReport report;
  report.schema = std::string(kBenchReportSchema);
  report.name = "fig2_performance";
  report.fault_plan_hash = "00000000deadbeef";
  report.metrics = std::move(metrics);
  return report;
}

TEST(CompareBenchReportsTest, SelfCompareHasNoRegressions) {
  StatusOr<ParsedBenchReport> parsed = ParseBenchReport(
      BenchReportJson(Meta(), Cells(), {}, Snapshot()));
  ASSERT_TRUE(parsed.ok());
  const BenchComparison cmp =
      CompareBenchReports(*parsed, *parsed, CompareOptions());
  EXPECT_FALSE(cmp.HasRegressions());
  EXPECT_EQ(cmp.regressions, 0);
  EXPECT_EQ(cmp.improvements, 0);
  EXPECT_TRUE(cmp.only_in_baseline.empty());
  EXPECT_TRUE(cmp.only_in_candidate.empty());
  EXPECT_TRUE(cmp.warnings.empty());
  for (const MetricDelta& d : cmp.deltas) {
    EXPECT_EQ(d.verdict, MetricDelta::Verdict::kUnchanged) << d.name;
  }
}

TEST(CompareBenchReportsTest, TenPercentSlowdownIsARegression) {
  const ParsedBenchReport baseline = Report({
      {"cell/vecadd/OpenCL/fp32/seconds", 1.0},
      {"cell/vecadd/OpenCL/fp32/speedup_vs_serial", 4.0},
      {"counter/fp32/faults", 2.0},
      {"cell/spmv/Serial/fp32/seconds", 3.0},
  });
  const ParsedBenchReport candidate = Report({
      {"cell/vecadd/OpenCL/fp32/seconds", 1.10},       // slower: regression
      {"cell/vecadd/OpenCL/fp32/speedup_vs_serial", 3.0},  // drop: regression
      {"counter/fp32/faults", 10.0},                   // neutral: changed
      {"cell/spmv/Serial/fp32/seconds", 1.5},          // faster: improvement
  });
  const BenchComparison cmp =
      CompareBenchReports(baseline, candidate, CompareOptions());
  EXPECT_TRUE(cmp.HasRegressions());
  EXPECT_EQ(cmp.regressions, 2);
  EXPECT_EQ(cmp.improvements, 1);

  // Ranked: regressions first, largest |rel_delta| first.
  ASSERT_GE(cmp.deltas.size(), 2u);
  EXPECT_EQ(cmp.deltas[0].verdict, MetricDelta::Verdict::kRegression);
  EXPECT_EQ(cmp.deltas[0].name, "cell/vecadd/OpenCL/fp32/speedup_vs_serial");
  EXPECT_EQ(cmp.deltas[1].name, "cell/vecadd/OpenCL/fp32/seconds");
  EXPECT_NEAR(cmp.deltas[1].rel_delta, 0.10, 1e-12);

  const auto changed = std::find_if(
      cmp.deltas.begin(), cmp.deltas.end(),
      [](const MetricDelta& d) { return d.name == "counter/fp32/faults"; });
  ASSERT_NE(changed, cmp.deltas.end());
  EXPECT_EQ(changed->verdict, MetricDelta::Verdict::kChanged);
}

TEST(CompareBenchReportsTest, ChangesWithinThresholdAreUnchanged) {
  const ParsedBenchReport baseline =
      Report({{"cell/vecadd/Serial/fp32/seconds", 1.0}});
  const ParsedBenchReport candidate =
      Report({{"cell/vecadd/Serial/fp32/seconds", 1.04}});
  const BenchComparison cmp =
      CompareBenchReports(baseline, candidate, CompareOptions());
  EXPECT_FALSE(cmp.HasRegressions());
  ASSERT_EQ(cmp.deltas.size(), 1u);
  EXPECT_EQ(cmp.deltas[0].verdict, MetricDelta::Verdict::kUnchanged);
}

TEST(CompareBenchReportsTest, LongestPrefixThresholdWins) {
  const ParsedBenchReport baseline = Report({
      {"cell/vecadd/Serial/fp32/seconds", 1.0},
      {"cell/spmv/Serial/fp32/seconds", 1.0},
  });
  const ParsedBenchReport candidate = Report({
      {"cell/vecadd/Serial/fp32/seconds", 1.10},
      {"cell/spmv/Serial/fp32/seconds", 1.10},
  });
  CompareOptions options;
  options.threshold = 0.05;
  // Broad loosening for all cells, tight override for vecadd only: the
  // longer prefix must win for vecadd.
  options.prefix_thresholds = {{"cell/", 0.5}, {"cell/vecadd/", 0.01}};
  const BenchComparison cmp =
      CompareBenchReports(baseline, candidate, options);
  EXPECT_EQ(cmp.regressions, 1);
  ASSERT_FALSE(cmp.deltas.empty());
  EXPECT_EQ(cmp.deltas[0].name, "cell/vecadd/Serial/fp32/seconds");
  EXPECT_EQ(cmp.deltas[0].threshold, 0.01);
}

TEST(CompareBenchReportsTest, WarnsOnMismatchedProvenance) {
  ParsedBenchReport baseline = Report({{"gauge/x", 1.0}});
  ParsedBenchReport candidate = Report({{"gauge/x", 1.0}});
  candidate.name = "fig3_power";
  candidate.fault_plan_hash = "1111111111111111";
  const BenchComparison cmp =
      CompareBenchReports(baseline, candidate, CompareOptions());
  ASSERT_EQ(cmp.warnings.size(), 2u);
  EXPECT_NE(cmp.warnings[0].find("different benchmarks"), std::string::npos);
  EXPECT_NE(cmp.warnings[1].find("fault plan hash"), std::string::npos);
  EXPECT_FALSE(cmp.HasRegressions());  // warnings alone never fail the run
}

TEST(CompareBenchReportsTest, TracksMetricsPresentOnOneSideOnly) {
  const ParsedBenchReport baseline =
      Report({{"gauge/old", 1.0}, {"gauge/shared", 2.0}});
  const ParsedBenchReport candidate =
      Report({{"gauge/new", 3.0}, {"gauge/shared", 2.0}});
  const BenchComparison cmp =
      CompareBenchReports(baseline, candidate, CompareOptions());
  ASSERT_EQ(cmp.only_in_baseline.size(), 1u);
  EXPECT_EQ(cmp.only_in_baseline[0], "gauge/old");
  ASSERT_EQ(cmp.only_in_candidate.size(), 1u);
  EXPECT_EQ(cmp.only_in_candidate[0], "gauge/new");
  EXPECT_EQ(cmp.deltas.size(), 1u);
}

TEST(ComparisonReportTest, TextNamesVerdictAndTables) {
  const ParsedBenchReport baseline =
      Report({{"cell/vecadd/Serial/fp32/seconds", 1.0}});
  const ParsedBenchReport candidate =
      Report({{"cell/vecadd/Serial/fp32/seconds", 1.25}});
  const BenchComparison cmp =
      CompareBenchReports(baseline, candidate, CompareOptions());
  const std::string text = ComparisonText(cmp);
  EXPECT_NE(text.find("1 regression(s)"), std::string::npos);
  EXPECT_NE(text.find("Regressions (1):"), std::string::npos);
  EXPECT_NE(text.find("+25"), std::string::npos);
  EXPECT_NE(text.find("Verdict: REGRESSION"), std::string::npos);

  const BenchComparison ok = CompareBenchReports(baseline, baseline,
                                                 CompareOptions());
  EXPECT_NE(ComparisonText(ok).find("Verdict: OK"), std::string::npos);
}

TEST(ComparisonReportTest, JsonParsesAndCarriesSchema) {
  const ParsedBenchReport baseline = Report({
      {"cell/vecadd/Serial/fp32/seconds", 1.0},
      {"gauge/steady", 5.0},
  });
  const ParsedBenchReport candidate = Report({
      {"cell/vecadd/Serial/fp32/seconds", 1.25},
      {"gauge/steady", 5.0},
  });
  const std::string json = ComparisonJson(
      CompareBenchReports(baseline, candidate, CompareOptions()));
  StatusOr<JsonValue> parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->StringOr("schema", ""), "malisim-bench-compare-v1");
  EXPECT_EQ(parsed->NumberOr("regressions", -1), 1.0);
  // Unchanged metrics are counted, not listed.
  EXPECT_EQ(parsed->NumberOr("unchanged", -1), 1.0);
  ASSERT_NE(parsed->Find("deltas"), nullptr);
  ASSERT_EQ(parsed->Find("deltas")->array.size(), 1u);
  EXPECT_EQ(parsed->Find("deltas")->array[0].StringOr("verdict", ""),
            "regression");
}

}  // namespace
}  // namespace malisim::obs
