// HostProf contract tests: phase-span self/total accounting, null-safety,
// interpreter host-time attribution through a real harness run, the
// >= 90 % attributed-wall-time acceptance criterion, the <= 3 % sampling
// overhead contract, and the hotspots / collapsed-stack render formats.
#include <chrono>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "obs/host_prof.h"
#include "obs/obs_options.h"
#include "obs/recorder.h"

namespace malisim::obs {
namespace {

int PhaseIdx(HostPhase phase) { return static_cast<int>(phase); }

TEST(HostProfTest, PhaseSpanSplitsSelfFromChildren) {
  HostProf prof;
  {
    HostProf::PhaseSpan outer(&prof, HostPhase::kVariant);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    {
      HostProf::PhaseSpan inner(&prof, HostPhase::kExecute);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  const HostProf::Snapshot s = prof.TakeSnapshot();
  const HostProf::PhaseStat& variant = s.phases[PhaseIdx(HostPhase::kVariant)];
  const HostProf::PhaseStat& execute = s.phases[PhaseIdx(HostPhase::kExecute)];
  EXPECT_EQ(variant.count, 1u);
  EXPECT_EQ(execute.count, 1u);
  // The leaf has no children: self == total. The parent's self excludes
  // exactly the nested span's elapsed time (same clock reads, so exact).
  EXPECT_EQ(execute.self_ns, execute.total_ns);
  EXPECT_GE(variant.total_ns, execute.total_ns);
  EXPECT_EQ(variant.self_ns, variant.total_ns - execute.total_ns);
  // Only the outer span closed at top level, so it alone is root coverage.
  EXPECT_EQ(s.root_total_ns, variant.total_ns);
  EXPECT_GT(prof.AttributedFraction(
                static_cast<double>(variant.total_ns) * 1e-9),
            0.99);
}

TEST(HostProfTest, SiblingSpansBothCountAsRoots) {
  HostProf prof;
  { HostProf::PhaseSpan a(&prof, HostPhase::kSetup); }
  { HostProf::PhaseSpan b(&prof, HostPhase::kMerge); }
  const HostProf::Snapshot s = prof.TakeSnapshot();
  EXPECT_EQ(s.root_total_ns,
            s.phases[PhaseIdx(HostPhase::kSetup)].total_ns +
                s.phases[PhaseIdx(HostPhase::kMerge)].total_ns);
}

TEST(HostProfTest, NullProfilerIsInert) {
  // Instrumentation sites pass a null HostProf when profiling is off; the
  // span and the interp profile must be no-ops, not crashes.
  HostProf::PhaseSpan span(nullptr, HostPhase::kExecute);
  kir::Program program;
  InterpProfile interp(nullptr, program, 4);
  EXPECT_EQ(interp.sink(0), nullptr);
  EXPECT_EQ(interp.sink(3), nullptr);
  interp.Merge("noop");  // must not touch anything
}

TEST(HostProfTest, RecorderBuildsProfilerOnlyWhenRequested) {
  Recorder plain;
  EXPECT_EQ(plain.host_prof(), nullptr);

  ObsOptions sampled;
  sampled.host_prof = true;
  sampled.host_prof_period = 64;
  Recorder sampled_recorder(sampled);
  ASSERT_NE(sampled_recorder.host_prof(), nullptr);
  EXPECT_EQ(sampled_recorder.host_prof()->period(), 64u);

  ObsOptions exact;
  exact.host_prof = true;
  exact.host_prof_exact = true;
  exact.host_prof_period = 256;  // exact mode overrides the period
  Recorder exact_recorder(exact);
  ASSERT_NE(exact_recorder.host_prof(), nullptr);
  EXPECT_EQ(exact_recorder.host_prof()->period(), 1u);
}

/// One quick dmmm run with the self-profiler attached; shared by the
/// attribution / overhead / rendering tests below.
HostProf::Snapshot ProfiledDmmmRun(bool exact, double* wall_sec) {
  ObsOptions options;
  options.host_prof = true;
  options.host_prof_exact = exact;
  Recorder recorder(options);

  harness::ExperimentConfig config;
  config.sizes = hpc::ProblemSizes::Quick();
  config.repetitions = 2;
  config.recorder = &recorder;
  harness::ExperimentRunner runner(config);

  const auto start = std::chrono::steady_clock::now();
  auto result = runner.RunBenchmark("dmmm");
  *wall_sec = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return recorder.host_prof()->TakeSnapshot();
}

TEST(HostProfTest, HarnessRunMeetsAttributionAndOverheadContracts) {
  double wall_sec = 0.0;
  const HostProf::Snapshot s = ProfiledDmmmRun(/*exact=*/false, &wall_sec);

  // The pipeline phases all closed at least once.
  EXPECT_GT(s.phases[PhaseIdx(HostPhase::kSetup)].count, 0u);
  EXPECT_GT(s.phases[PhaseIdx(HostPhase::kCompile)].count, 0u);
  EXPECT_GT(s.phases[PhaseIdx(HostPhase::kEnqueue)].count, 0u);
  EXPECT_GT(s.phases[PhaseIdx(HostPhase::kExecute)].count, 0u);
  EXPECT_GT(s.phases[PhaseIdx(HostPhase::kVariant)].count, 0u);
  EXPECT_GT(s.phases[PhaseIdx(HostPhase::kPowerAccounting)].count, 0u);

  // Interpreter attribution landed: opcode and basic-block tables filled,
  // samples were far sparser than steps (period 256 default).
  EXPECT_GT(s.interp_ns, 0u);
  EXPECT_FALSE(s.opcodes.empty());
  EXPECT_FALSE(s.blocks.empty());
  EXPECT_GT(s.interp_steps, s.interp_samples);

  // Acceptance criterion: >= 90 % of measured host wall time attributed to
  // top-level phase spans.
  const double fraction =
      static_cast<double>(s.root_total_ns) * 1e-9 / wall_sec;
  EXPECT_GE(fraction, 0.90) << "attributed " << s.root_total_ns
                            << " ns of " << wall_sec << " s wall";

  // Overhead contract: the sampled counter path costs <= 3 % of the
  // interpreter time it measures.
  const double overhead = static_cast<double>(s.interp_samples) *
                          s.sample_cost_ns /
                          static_cast<double>(s.interp_ns);
  EXPECT_LE(overhead, 0.03);
}

TEST(HostProfTest, ExactModeSamplesEveryStep) {
  double wall_sec = 0.0;
  const HostProf::Snapshot s = ProfiledDmmmRun(/*exact=*/true, &wall_sec);
  EXPECT_GT(s.interp_ns, 0u);
  EXPECT_GT(s.interp_steps, 0u);
  // Period 1: every attributed step took its own clock sample (the extra
  // samples are the per-launch priming ticks).
  EXPECT_GE(s.interp_samples, s.interp_steps);
}

TEST(HostProfTest, HotspotsTableAndCollapsedFormats) {
  double wall_sec = 0.0;
  const HostProf::Snapshot s = ProfiledDmmmRun(/*exact=*/false, &wall_sec);

  const std::string table = HostProf::HotspotsTable(s, wall_sec);
  EXPECT_NE(table.find("host-side hotspots"), std::string::npos);
  EXPECT_NE(table.find("execute"), std::string::npos);
  EXPECT_NE(table.find("Interpreter opcodes"), std::string::npos);
  EXPECT_NE(table.find("Interpreter basic blocks"), std::string::npos);
  EXPECT_NE(table.find("interp sampling:"), std::string::npos);

  // Collapsed-stack dump: "frame;frame;... <count>" lines under the two
  // roots, with the interp time nested below execute.
  const std::string collapsed = HostProf::Collapsed(s);
  EXPECT_NE(collapsed.find("malisim;execute;interp;"), std::string::npos);
  EXPECT_NE(collapsed.find("malisim-blocks;"), std::string::npos);
  std::size_t pos = 0;
  int lines = 0;
  while (pos < collapsed.size()) {
    const std::size_t eol = collapsed.find('\n', pos);
    ASSERT_NE(eol, std::string::npos) << "unterminated collapsed line";
    const std::string line = collapsed.substr(pos, eol - pos);
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_EQ(line.rfind("malisim", 0), 0u) << line;
    // The trailing token is the sample weight: digits only.
    for (std::size_t i = space + 1; i < line.size(); ++i) {
      EXPECT_TRUE(line[i] >= '0' && line[i] <= '9') << line;
    }
    pos = eol + 1;
    ++lines;
  }
  EXPECT_GT(lines, 2);
}

}  // namespace
}  // namespace malisim::obs
