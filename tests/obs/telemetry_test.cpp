// obs::telemetry unit battery: rolling-window aggregation, the histogram
// quantile edge cases the windows feed on (pinned exact p50/p99 values),
// SLO spec parsing, two-window burn-rate transitions, and the plane's
// determinism contract — the JSONL stream must be byte-identical no matter
// how samples are sharded or what order they arrive in.
#include "obs/telemetry.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"

namespace malisim::obs {
namespace {

// ---------------------------------------------------------------------------
// Histogram quantile edge cases (the rolling windows consume these).
// ---------------------------------------------------------------------------

TEST(TelemetryHistogramTest, EmptyWindowPinsZeroQuantiles) {
  const LogHistogram empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_DOUBLE_EQ(empty.Percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.Percentile(99.0), 0.0);

  RollingWindow ring(4);
  ring.Advance(0);
  EXPECT_DOUBLE_EQ(ring.HistogramOver("latency_sec", 4).Percentile(50.0),
                   0.0);
  EXPECT_DOUBLE_EQ(ring.HistogramOver("latency_sec", 4).Percentile(99.0),
                   0.0);
}

TEST(TelemetryHistogramTest, SingleSamplePinsExactValue) {
  LogHistogram one;
  one.Add(0.5);
  // Nearest-rank always lands in the only bucket, and the bucket's upper
  // edge is clamped to the exact observed max: p50 == p99 == the sample.
  EXPECT_DOUBLE_EQ(one.Percentile(50.0), 0.5);
  EXPECT_DOUBLE_EQ(one.Percentile(99.0), 0.5);
}

TEST(TelemetryHistogramTest, AllSamplesInOneBucketClampToExactMax) {
  // 0.50, 0.51, 0.52 share one log bucket (the [0.4217, 0.5623) bucket of
  // the 8-per-decade layout); both quantiles clamp to the exact max.
  LogHistogram hist;
  hist.Add(0.50);
  hist.Add(0.51);
  hist.Add(0.52);
  EXPECT_DOUBLE_EQ(hist.Percentile(50.0), 0.52);
  EXPECT_DOUBLE_EQ(hist.Percentile(99.0), 0.52);
}

TEST(TelemetryHistogramTest, TailSampleDominatesP99Exactly) {
  LogHistogram hist;
  for (int i = 0; i < 9; ++i) hist.Add(0.001);
  hist.Add(1.0);
  // Nearest-rank p99 of 10 samples is the 10th — the exact max.
  EXPECT_DOUBLE_EQ(hist.Percentile(99.0), 1.0);
  // p50 (5th sample) stays inside the 0.001 bucket: upper edge above the
  // observed min, but never past the next bucket edge.
  EXPECT_GE(hist.Percentile(50.0), 0.001);
  EXPECT_LE(hist.Percentile(50.0), 0.00134);
}

TEST(TelemetryHistogramTest, MergeOfEmptyShardsStaysEmpty) {
  LogHistogram merged;
  for (int i = 0; i < 4; ++i) merged.Merge(LogHistogram());
  EXPECT_EQ(merged.count(), 0u);
  EXPECT_DOUBLE_EQ(merged.Percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(merged.Percentile(99.0), 0.0);

  // Merging empties into a populated histogram changes nothing.
  LogHistogram one;
  one.Add(0.5);
  one.Merge(LogHistogram());
  EXPECT_EQ(one.count(), 1u);
  EXPECT_DOUBLE_EQ(one.Percentile(99.0), 0.5);
}

// ---------------------------------------------------------------------------
// RollingWindow.
// ---------------------------------------------------------------------------

TEST(RollingWindowTest, CountersMergeOverRequestedHorizon) {
  RollingWindow ring(4);
  for (std::uint64_t w = 0; w < 3; ++w) {
    ring.Advance(w);
    ring.AddCounter("jobs", 10.0);
    ring.AddCounter("shed", static_cast<double>(w));
  }
  EXPECT_DOUBLE_EQ(ring.CounterOver("jobs", 1), 10.0);
  EXPECT_DOUBLE_EQ(ring.CounterOver("jobs", 3), 30.0);
  EXPECT_DOUBLE_EQ(ring.CounterOver("shed", 3), 3.0);
  EXPECT_DOUBLE_EQ(ring.CounterOver("missing", 3), 0.0);
  // Horizon clamps to capacity.
  EXPECT_DOUBLE_EQ(ring.CounterOver("jobs", 99), 30.0);
}

TEST(RollingWindowTest, BucketsEvictWhenTheyFallOffTheRing) {
  RollingWindow ring(2);
  ring.Advance(0);
  ring.AddCounter("jobs", 5.0);
  ring.Advance(1);
  ring.AddCounter("jobs", 7.0);
  ring.Advance(2);  // window 0's bucket is reused and cleared
  ring.AddCounter("jobs", 1.0);
  EXPECT_DOUBLE_EQ(ring.CounterOver("jobs", 2), 8.0);
}

TEST(RollingWindowTest, GapsLeaveEmptyWindows) {
  RollingWindow ring(8);
  ring.Advance(0);
  ring.Observe("latency_sec", 0.5);
  ring.Advance(5);  // windows 1..4 had no traffic
  EXPECT_EQ(ring.HistogramOver("latency_sec", 5).count(), 0u);
  EXPECT_EQ(ring.HistogramOver("latency_sec", 6).count(), 1u);
}

// ---------------------------------------------------------------------------
// ExactPercentile (the snapshot-side quantile).
// ---------------------------------------------------------------------------

TEST(ExactPercentileTest, NearestRankOnSortedSamples) {
  EXPECT_DOUBLE_EQ(ExactPercentile({}, 99.0), 0.0);
  EXPECT_DOUBLE_EQ(ExactPercentile({0.5}, 50.0), 0.5);
  EXPECT_DOUBLE_EQ(ExactPercentile({0.5}, 99.0), 0.5);
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(ExactPercentile(v, 50.0), 50.0);
  EXPECT_DOUBLE_EQ(ExactPercentile(v, 99.0), 99.0);
  EXPECT_DOUBLE_EQ(ExactPercentile(v, 100.0), 100.0);
  // n <= 100 means nearest-rank p99 is the max: the slowest job always
  // qualifies as a tail exemplar.
  EXPECT_DOUBLE_EQ(ExactPercentile({1.0, 2.0, 3.0}, 99.0), 3.0);
}

// ---------------------------------------------------------------------------
// SLO spec parsing.
// ---------------------------------------------------------------------------

TEST(SloSpecTest, ParsesTenantsSeparatorsAndSpaces) {
  StatusOr<SloSpec> spec = SloSpec::Parse(
      "p99_latency_sec<=0.5, batch-a:shed_ratio<=0.01; "
      "deadline_miss_ratio <= 0.1");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  ASSERT_EQ(spec->objectives.size(), 3u);
  EXPECT_EQ(spec->objectives[0].tenant, "");
  EXPECT_EQ(spec->objectives[0].metric, "p99_latency_sec");
  EXPECT_DOUBLE_EQ(spec->objectives[0].threshold, 0.5);
  EXPECT_EQ(spec->objectives[0].Name(), "p99_latency_sec<=0.5");
  EXPECT_EQ(spec->objectives[1].tenant, "batch-a");
  EXPECT_EQ(spec->objectives[1].Name(), "batch-a:shed_ratio<=0.01");
  EXPECT_EQ(spec->objectives[2].metric, "deadline_miss_ratio");
}

TEST(SloSpecTest, EmptySpecIsEmpty) {
  StatusOr<SloSpec> spec = SloSpec::Parse("");
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(spec->empty());
}

TEST(SloSpecTest, RejectsMalformedEntries) {
  EXPECT_FALSE(SloSpec::Parse("p99_latency_sec=0.5").ok()) << "no <=";
  EXPECT_FALSE(SloSpec::Parse("bogus_metric<=0.5").ok());
  EXPECT_FALSE(SloSpec::Parse("shed_ratio<=lots").ok());
  EXPECT_FALSE(SloSpec::Parse("shed_ratio<=-1").ok());
}

// ---------------------------------------------------------------------------
// SloTracker: two-window burn rate.
// ---------------------------------------------------------------------------

/// Feeds one window of `jobs` jobs with `shed` of them shed.
void FeedWindow(RollingWindow* ring, std::uint64_t w, int jobs, int shed) {
  ring->Advance(w);
  ring->AddCounter("jobs", static_cast<double>(jobs));
  ring->AddCounter("shed", static_cast<double>(shed));
}

TEST(SloTrackerTest, BreachNeedsBothWindowsAndRecoveryNeedsEither) {
  StatusOr<SloSpec> spec = SloSpec::Parse("shed_ratio<=0.1");
  ASSERT_TRUE(spec.ok());
  RollingWindow ring(8);
  SloTracker tracker(*spec, /*long_windows=*/5);
  std::vector<SloRecord> events;

  // Clean window: no breach.
  FeedWindow(&ring, 0, 10, 0);
  auto status = tracker.Evaluate(0, ring, &events);
  ASSERT_EQ(status.size(), 1u);
  EXPECT_FALSE(status[0].breached);
  EXPECT_TRUE(events.empty());

  // Bad window: short 0.5 and long 5/20 both over threshold -> breach.
  FeedWindow(&ring, 1, 10, 5);
  status = tracker.Evaluate(1, ring, &events);
  EXPECT_TRUE(status[0].breached);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].action, "breach");
  EXPECT_EQ(events[0].name, "shed_ratio<=0.1");
  EXPECT_EQ(events[0].window, 1u);
  EXPECT_DOUBLE_EQ(events[0].short_value, 0.5);

  // Clean short window, but the long horizon still burns: stays breached
  // (no event) — sticky until BOTH clear.
  FeedWindow(&ring, 2, 10, 0);
  status = tracker.Evaluate(2, ring, &events);
  EXPECT_TRUE(status[0].breached);
  EXPECT_EQ(events.size(), 1u);
  FeedWindow(&ring, 3, 10, 0);
  status = tracker.Evaluate(3, ring, &events);
  EXPECT_TRUE(status[0].breached) << "long = 5/40 still over 0.1";

  // Long horizon dilutes to exactly 0.1 (not over): recover.
  FeedWindow(&ring, 4, 10, 0);
  status = tracker.Evaluate(4, ring, &events);
  EXPECT_FALSE(status[0].breached);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].action, "recover");
  EXPECT_EQ(events[1].window, 4u);
}

TEST(SloTrackerTest, OneBadWindowAloneDoesNotPage) {
  StatusOr<SloSpec> spec = SloSpec::Parse("shed_ratio<=0.1");
  ASSERT_TRUE(spec.ok());
  RollingWindow ring(8);
  SloTracker tracker(*spec, /*long_windows=*/5);
  std::vector<SloRecord> events;
  // Four clean windows of history, then one mildly-bad window: the short
  // value burns (0.2 > 0.1) but the long horizon (2/50 = 0.04) does not
  // -> no breach.
  for (std::uint64_t w = 0; w < 4; ++w) {
    FeedWindow(&ring, w, 10, 0);
    tracker.Evaluate(w, ring, &events);
  }
  FeedWindow(&ring, 4, 10, 2);
  const auto status = tracker.Evaluate(4, ring, &events);
  EXPECT_FALSE(status[0].breached);
  EXPECT_TRUE(events.empty());
}

// ---------------------------------------------------------------------------
// TelemetryPlane determinism.
// ---------------------------------------------------------------------------

TelemetrySample MakeSample(std::uint64_t id) {
  TelemetrySample s;
  s.id = id;
  s.tenant = (id % 3 == 0) ? "batch-a" : "adhoc";
  const bool failed = id % 17 == 0 && id > 0;
  s.state = failed ? "failed" : (id % 4 == 0 ? "degraded" : "ok");
  s.completed = !failed;
  s.failed = failed;
  s.rung = failed ? "" : "openclopt";
  s.modelled_sec = 0.001 * static_cast<double>(id % 13 + 1);
  s.consumed_sec = s.modelled_sec + 0.0001 * static_cast<double>(id % 7);
  s.energy_j = 0.5 * s.modelled_sec;
  s.retries = static_cast<int>(id % 3);
  s.attempts = 1 + static_cast<int>(id % 2);
  JobRungSpan span;
  span.rung = "openclopt";
  span.start_sec = 0.0;
  span.end_sec = s.consumed_sec;
  span.outcome = failed ? "fatal" : "ok";
  span.retries = s.retries;
  s.spans.push_back(span);
  return s;
}

TelemetryOptions PlaneOptions(int shards) {
  TelemetryOptions options;
  options.window_sec = 1.0;
  options.arrival_interval_sec = 0.02;  // 50 jobs per window
  options.exemplars_per_window = 2;
  options.collector_shards = shards;
  return options;
}

std::string RunPlane(int count, int shards, bool reverse_order) {
  StringTelemetrySink sink;
  TelemetryOptions options = PlaneOptions(shards);
  StatusOr<SloSpec> slo = SloSpec::Parse("p99_latency_sec<=0.5");
  EXPECT_TRUE(slo.ok());
  options.slo = *slo;
  TelemetryPlane plane(options, &sink);
  EXPECT_EQ(plane.jobs_per_window(), 50u);
  for (int i = 0; i < count; ++i) {
    plane.NoteSubmitted(static_cast<std::uint64_t>(i));
  }
  std::vector<std::uint64_t> order;
  for (int i = 0; i < count; ++i) {
    order.push_back(static_cast<std::uint64_t>(i));
  }
  if (reverse_order) std::reverse(order.begin(), order.end());
  for (const std::uint64_t id : order) plane.Record(MakeSample(id));
  plane.FinalFlush();
  return sink.jsonl();
}

TEST(TelemetryPlaneTest, StreamIsByteIdenticalAcrossShardsAndOrder) {
  const std::string base = RunPlane(120, 1, false);
  EXPECT_FALSE(base.empty());
  EXPECT_EQ(base, RunPlane(120, 4, false)) << "shard count leaked";
  EXPECT_EQ(base, RunPlane(120, 4, true)) << "arrival order leaked";
}

TEST(TelemetryPlaneTest, WindowsFlushInOrderWithPartialFinalWindow) {
  StringTelemetrySink sink;
  TelemetryPlane plane(PlaneOptions(2), &sink);
  for (int i = 0; i < 110; ++i) {
    plane.NoteSubmitted(static_cast<std::uint64_t>(i));
    plane.Record(MakeSample(static_cast<std::uint64_t>(i)));
  }
  // Two full windows flushed live; the 10-sample tail waits for the drain.
  std::size_t live_lines = static_cast<std::size_t>(
      std::count(sink.jsonl().begin(), sink.jsonl().end(), '\n'));
  EXPECT_EQ(live_lines, 2u);
  plane.FinalFlush();
  live_lines = static_cast<std::size_t>(
      std::count(sink.jsonl().begin(), sink.jsonl().end(), '\n'));
  EXPECT_EQ(live_lines, 3u);

  std::uint64_t expected_window = 0;
  std::size_t pos = 0;
  while (pos < sink.jsonl().size()) {
    const std::size_t nl = sink.jsonl().find('\n', pos);
    StatusOr<JsonValue> snap =
        ParseJson(sink.jsonl().substr(pos, nl - pos));
    ASSERT_TRUE(snap.ok()) << snap.status().ToString();
    EXPECT_EQ(snap->StringOr("schema", ""), "malisim-telemetry-v1");
    EXPECT_DOUBLE_EQ(snap->NumberOr("window", -1.0),
                     static_cast<double>(expected_window));
    ++expected_window;
    pos = nl + 1;
  }
  EXPECT_EQ(expected_window, 3u);

  const TelemetryTotals totals = plane.Totals();
  EXPECT_EQ(totals.jobs, 110u);
  EXPECT_EQ(totals.windows, 3u);
}

TEST(TelemetryPlaneTest, TailExemplarsAreValidPerfettoJson) {
  StringTelemetrySink sink;
  TelemetryPlane plane(PlaneOptions(1), &sink);
  for (int i = 0; i < 50; ++i) {
    plane.NoteSubmitted(static_cast<std::uint64_t>(i));
    plane.Record(MakeSample(static_cast<std::uint64_t>(i)));
  }
  plane.FinalFlush();
  ASSERT_FALSE(sink.exemplars().empty()) << "n<=100: the max always "
                                            "qualifies as a tail exemplar";
  for (const auto& [name, json] : sink.exemplars()) {
    EXPECT_EQ(name.rfind("exemplar-w", 0), 0u) << name;
    StatusOr<JsonValue> trace = ParseJson(json);
    ASSERT_TRUE(trace.ok()) << trace.status().ToString();
    const JsonValue* events = trace->Find("traceEvents");
    ASSERT_NE(events, nullptr);
    EXPECT_GT(events->array.size(), 2u) << "metadata + at least one span";
  }
  // The snapshot references exemplars by bare deterministic names.
  EXPECT_NE(sink.jsonl().find("\"exemplars\":[{\"job\":"),
            std::string::npos);
}

TEST(TelemetryPlaneTest, SloTransitionsReachTheRecorder) {
  Recorder recorder;
  StringTelemetrySink sink;
  TelemetryOptions options = PlaneOptions(1);
  StatusOr<SloSpec> slo = SloSpec::Parse("failed_ratio<=0.01");
  ASSERT_TRUE(slo.ok());
  options.slo = *slo;
  options.recorder = &recorder;
  TelemetryPlane plane(options, &sink);
  for (int i = 0; i < 100; ++i) {
    plane.NoteSubmitted(static_cast<std::uint64_t>(i));
    TelemetrySample sample = MakeSample(static_cast<std::uint64_t>(i));
    sample.state = "failed";
    sample.completed = false;
    sample.failed = true;
    sample.rung.clear();
    plane.Record(std::move(sample));
  }
  plane.FinalFlush();
  const std::vector<SloRecord> slos = recorder.slos();
  ASSERT_FALSE(slos.empty());
  EXPECT_EQ(slos[0].action, "breach");
  EXPECT_EQ(slos[0].name, "failed_ratio<=0.01");
  EXPECT_EQ(plane.Totals().slo_breaches, 1u);
  // Snapshot echoes the transition.
  EXPECT_NE(sink.jsonl().find("\"action\":\"breach\""), std::string::npos);
}

TEST(TelemetryPlaneTest, PromExpositionTracksCumulativeTotals) {
  StringTelemetrySink sink;
  TelemetryPlane plane(PlaneOptions(1), &sink);
  for (int i = 0; i < 50; ++i) {
    plane.NoteSubmitted(static_cast<std::uint64_t>(i));
    plane.Record(MakeSample(static_cast<std::uint64_t>(i)));
  }
  plane.FinalFlush();
  EXPECT_NE(sink.prom().find("# TYPE malisim_serve_jobs_total counter"),
            std::string::npos);
  EXPECT_NE(sink.prom().find("malisim_serve_windows_total 1"),
            std::string::npos);
}

}  // namespace
}  // namespace malisim::obs
