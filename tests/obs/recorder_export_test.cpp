// Tests for the Recorder and the export sinks: Perfetto trace schema,
// metrics JSON schema, CSV shapes, and the text report.
#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/power_sampler.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "power/power_model.h"

namespace malisim::obs {
namespace {

KernelRecord MaliKernel() {
  KernelRecord k;
  k.kernel = "vecadd";
  k.device = "mali-t604";
  k.seconds = 0.002;
  k.cores.resize(4);
  for (int c = 0; c < 4; ++c) {
    k.cores[c].groups = 32;
    k.cores[c].l1_misses = 100;
    k.cores[c].l2_misses = 40;
    k.cores[c].arith_cycles = 5000;
    k.cores[c].ls_cycles = 8000;
    k.cores[c].core_sec = 0.002;
    k.cores[c].busy_sec = 0.0015;
  }
  k.opcode_counts[static_cast<std::size_t>(kir::Opcode::kFma)] = 4096;
  k.opcode_counts[static_cast<std::size_t>(kir::Opcode::kLoad)] = 2048;
  k.loads = 2048;
  k.stores = 1024;
  k.atomics = 0;
  k.work_items = 16384;
  k.dram_bytes = 1 << 20;
  k.bottleneck = "ls-pipe";
  k.live_reg_bytes = 64;
  k.threads_per_core = 256;
  k.profile.seconds = 0.002;
  k.profile.gpu_on = true;
  k.profile.gpu_core_busy = {0.75, 0.75, 0.75, 0.75};
  return k;
}

PowerSegment Segment(const std::string& label, double window_sec) {
  PowerSegment seg;
  seg.label = label;
  seg.window_sec = window_sec;
  seg.profile.seconds = window_sec;
  seg.profile.cpu_busy = {1.0, 0.0};
  return seg;
}

// Recorder owns a mutex (not movable), so tests fill one in place.
void Fill(Recorder* recorder) {
  recorder->AddKernel(MaliKernel());
  recorder->AddCommand({"write", "", 1 << 16, 1e-4});
  recorder->AddCommand({"ndrange", "vecadd", 0, 0.002});
  recorder->AddPowerSegment(Segment("demo/Serial", 2.0));
  recorder->AddPowerSegment(Segment("demo/OpenCL Opt", 2.0));
}

TEST(RecorderTest, ConstructionEnablesObservation) {
  Recorder recorder;
  EXPECT_TRUE(recorder.counters_enabled());
  EXPECT_TRUE(recorder.trace_enabled());
  ObsOptions no_trace;
  no_trace.trace = false;
  Recorder counters_only(no_trace);
  EXPECT_TRUE(counters_only.counters_enabled());
  EXPECT_FALSE(counters_only.trace_enabled());
}

TEST(RecorderTest, SnapshotsReturnRecords) {
  Recorder recorder;
  Fill(&recorder);
  EXPECT_EQ(recorder.kernels().size(), 1u);
  EXPECT_EQ(recorder.commands().size(), 2u);
  EXPECT_EQ(recorder.power_segments().size(), 2u);
  EXPECT_EQ(recorder.kernels()[0].kernel, "vecadd");
}

TEST(RecorderTest, SealCountsLateRecordsWithoutDroppingThem) {
  Recorder recorder;
  Fill(&recorder);
  EXPECT_FALSE(recorder.sealed());
  EXPECT_EQ(recorder.late_records(), 0u);

  recorder.Seal();
  EXPECT_TRUE(recorder.sealed());
  EXPECT_EQ(recorder.late_records(), 0u);
  const RecorderSnapshot at_seal = recorder.TakeSnapshot();

  // Late producers (the original fault-retry bug): the records must be
  // counted as late AND still land in any later snapshot — never dropped.
  recorder.AddKernel(MaliKernel());
  recorder.AddCommand({"read", "", 1 << 10, 2e-5});
  recorder.AddFault({"kernel", "demo/vecadd", "retried", ""});
  EXPECT_EQ(recorder.late_records(), 3u);
  const RecorderSnapshot later = recorder.TakeSnapshot();
  EXPECT_EQ(later.kernels.size(), at_seal.kernels.size() + 1);
  EXPECT_EQ(later.commands.size(), at_seal.commands.size() + 1);
  EXPECT_EQ(later.faults.size(), at_seal.faults.size() + 1);

  // Sealing again is idempotent and does not reset the late count.
  recorder.Seal();
  EXPECT_EQ(recorder.late_records(), 3u);
}

TEST(ExportTest, TracePutsKernelsOnPerCoreTracks) {
  Recorder recorder;
  Fill(&recorder);
  const power::PowerModel model;
  TraceBuilder trace;
  BuildTrace(recorder, model, &trace);

  int core_spans = 0;
  int counter_events = 0;
  int metadata = 0;
  for (const TraceEvent& e : trace.events()) {
    if (e.phase == 'M') ++metadata;
    if (e.phase == 'C') {
      ++counter_events;
      EXPECT_EQ(e.pid, kTracePidMeter);
      EXPECT_EQ(e.name, "power_w");
      // Every counter sample carries the four rail series (cpu, gpu, dram,
      // static); the viewer stacks them, so the stack height is the total.
      EXPECT_EQ(e.metrics.size(), 4u);
    }
    if (e.phase == 'X' && e.pid == kTracePidSoc &&
        e.tid >= kTraceTidMaliBase && e.tid < kTraceTidMaliBase + 4 &&
        e.name == "vecadd") {
      ++core_spans;
    }
  }
  EXPECT_EQ(core_spans, 4);  // one span per modelled shader core
  // 10 Hz (default) over 4.0 s of segments -> 41 counter samples.
  EXPECT_EQ(counter_events, 41);
  EXPECT_GT(metadata, 0);  // process/thread names for the viewer
}

TEST(ExportTest, TraceJsonParsesAsEventArray) {
  Recorder recorder;
  Fill(&recorder);
  const power::PowerModel model;
  TraceBuilder trace;
  BuildTrace(recorder, model, &trace);
  const std::string json = trace.ToJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(ExportTest, MetricsJsonCarriesSchemaAndHistogram) {
  Recorder recorder;
  Fill(&recorder);
  const power::PowerModel model;
  const std::string json = MetricsJson(recorder, model);
  EXPECT_NE(json.find("\"schema\":\"malisim-prof-v1\""), std::string::npos);
  // Opcode histogram keyed by name, zero entries omitted.
  EXPECT_NE(json.find("\"fma\":4096"), std::string::npos);
  EXPECT_NE(json.find("\"load\":2048"), std::string::npos);
  EXPECT_EQ(json.find("\"store\":0"), std::string::npos);
  // Cache hit rates: 3072 accesses, 400 L1 misses -> well-defined rates.
  EXPECT_NE(json.find("\"l1_hit_rate\":"), std::string::npos);
  EXPECT_NE(json.find("\"l2_hit_rate\":"), std::string::npos);
  // Per-rail energy breakdown and the power samples array.
  EXPECT_NE(json.find("\"energy_j\""), std::string::npos);
  EXPECT_NE(json.find("\"samples\""), std::string::npos);
  EXPECT_NE(json.find("\"bottleneck\":\"ls-pipe\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(ExportTest, KernelMetricsCsvHasOneRowPerCore) {
  Recorder recorder;
  Fill(&recorder);
  const std::string csv = KernelMetricsCsv(recorder);
  // Two '#' comment lines (schema id + git sha), then the column header.
  EXPECT_EQ(csv.rfind("# schema: malisim-prof-kernels-v1\n# git: ", 0), 0u);
  EXPECT_NE(csv.find("\nkernel,device,seconds,core,"), std::string::npos);
  // 2 comment lines + header + 4 core rows for the single 4-core kernel.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 7);
}

TEST(ExportTest, PowerTimelineCsvMatchesSampleCount) {
  Recorder recorder;
  Fill(&recorder);
  const power::PowerModel model;
  const PowerSampler sampler(&model, 10.0);
  const PowerTimeline timeline = sampler.Render(recorder.power_segments());
  const std::string csv = PowerTimelineCsv(timeline);
  EXPECT_EQ(csv.rfind("# schema: malisim-prof-power-v1\n# git: ", 0), 0u);
  EXPECT_NE(csv.find("\nt_sec,segment,total_w,static_w,cpu_w,gpu_w,dram_w\n"),
            std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'),
            static_cast<long>(timeline.samples.size()) + 3);
}

TEST(ExportTest, TextReportNamesTheBottleneckAndEnergy) {
  Recorder recorder;
  Fill(&recorder);
  const power::PowerModel model;
  const std::string report = TextReport(recorder, model);
  EXPECT_NE(report.find("Hot opcodes"), std::string::npos);
  EXPECT_NE(report.find("fma"), std::string::npos);
  EXPECT_NE(report.find("ls-pipe"), std::string::npos);
  EXPECT_NE(report.find("Energy breakdown"), std::string::npos);
  EXPECT_NE(report.find("demo/Serial"), std::string::npos);
}

}  // namespace
}  // namespace malisim::obs
