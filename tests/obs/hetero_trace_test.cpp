// Perfetto-lane contract for hetero co-execution and the scheduled
// event-graph export: hetero sub-launches land on their own stably-named
// track pair ("hetero/mali" / "hetero/a15"), plain launches stay on the
// per-core tracks, and graph records render as per-lane spans tied by
// causal flow arrows with critical-path membership in the args.
#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "obs/export.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "power/power_model.h"

namespace malisim::obs {
namespace {

KernelRecord Kernel(const std::string& device, const std::string& scope) {
  KernelRecord k;
  k.kernel = "vecadd";
  k.device = device;
  k.scope = scope;
  k.seconds = 0.001;
  k.cores.resize(device == "mali-t604" ? 4 : 2);
  for (auto& c : k.cores) {
    c.groups = 8;
    c.core_sec = 0.001;
    c.busy_sec = 0.0008;
  }
  k.bottleneck = "ls-pipe";
  return k;
}

TEST(HeteroTraceTest, HeteroSubLaunchesGetStableLanePair) {
  Recorder recorder;
  recorder.AddKernel(Kernel("mali-t604", "hetero"));
  recorder.AddKernel(Kernel("cortex-a15", "hetero"));
  recorder.AddKernel(Kernel("mali-t604", ""));  // plain launch
  const power::PowerModel model;
  TraceBuilder trace;
  BuildTrace(recorder, model, &trace);

  int hetero_mali_spans = 0;
  int hetero_a15_spans = 0;
  int plain_core_spans = 0;
  for (const TraceEvent& e : trace.events()) {
    if (e.phase != 'X') continue;
    if (e.tid == kTraceTidHeteroMali) ++hetero_mali_spans;
    if (e.tid == kTraceTidHeteroA15) ++hetero_a15_spans;
    if (e.tid >= kTraceTidMaliBase && e.tid < kTraceTidMaliBase + 4 &&
        e.name == "vecadd") {
      ++plain_core_spans;
    }
  }
  // One aggregated span per hetero sub-range; the plain launch still gets
  // its four per-core spans.
  EXPECT_EQ(hetero_mali_spans, 1);
  EXPECT_EQ(hetero_a15_spans, 1);
  EXPECT_EQ(plain_core_spans, 4);

  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("hetero/mali"), std::string::npos);
  EXPECT_NE(json.find("hetero/a15"), std::string::npos);
}

TEST(HeteroTraceTest, LanePairAbsentWithoutHeteroLaunches) {
  Recorder recorder;
  recorder.AddKernel(Kernel("mali-t604", ""));
  const power::PowerModel model;
  TraceBuilder trace;
  BuildTrace(recorder, model, &trace);
  const std::string json = trace.ToJson();
  // Golden shape: single-device traces are unchanged by the hetero lanes.
  EXPECT_EQ(json.find("hetero/"), std::string::npos);
}

TEST(HeteroTraceTest, HarnessHeteroRunRoutesSubLaunchesOntoLanes) {
  Recorder recorder;
  harness::ExperimentConfig config;
  config.sizes = hpc::ProblemSizes::Quick();
  config.repetitions = 2;
  config.device = sim::BackendKind::kHetero;
  config.recorder = &recorder;
  harness::ExperimentRunner runner(config);
  auto result = runner.RunBenchmark("vecop");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  recorder.Seal();

  // The hetero backend stamped its sub-launches; the scope never leaks
  // onto launches dispatched outside the hetero device (Serial/OpenMP rows
  // have no kernels, but the plain OpenCL columns run on the sub-devices
  // directly in other configs — covered by the RAII scope tag).
  const auto kernels = recorder.kernels();
  ASSERT_FALSE(kernels.empty());
  EXPECT_TRUE(std::any_of(
      kernels.begin(), kernels.end(),
      [](const KernelRecord& k) { return k.scope == "hetero"; }));

  const power::PowerModel model;
  TraceBuilder trace;
  BuildTrace(recorder, model, &trace);
  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("hetero/mali"), std::string::npos);
  EXPECT_NE(json.find("hetero/a15"), std::string::npos);
}

TEST(HeteroTraceTest, GraphRecordsRenderFlowsAndCriticalPath) {
  Recorder recorder;
  GraphRecord g;
  g.label = "mali-t604";
  g.makespan_sec = 3e-3;
  g.serial_sec = 4e-3;
  g.critical_path_sec = 3e-3;
  g.lane_busy_sec = {1e-3, 2e-3};
  GraphNodeRecord write;
  write.label = "write A";
  write.lane = 0;
  write.start_sec = 0.0;
  write.finish_sec = 1e-3;
  write.critical = true;
  GraphNodeRecord run;
  run.label = "ndrange vecadd";
  run.lane = 1;
  run.start_sec = 1e-3;
  run.finish_sec = 3e-3;
  run.deps = {0};
  run.critical = true;
  g.nodes = {write, run};
  recorder.AddGraph(std::move(g));

  const power::PowerModel model;
  TraceBuilder trace;
  BuildTrace(recorder, model, &trace);

  int flow_starts = 0;
  int flow_finishes = 0;
  int sched_spans = 0;
  for (const TraceEvent& e : trace.events()) {
    if (e.phase == 's') ++flow_starts;
    if (e.phase == 'f') ++flow_finishes;
    if (e.phase == 'X' && e.tid >= kTraceTidSchedBase) ++sched_spans;
  }
  EXPECT_EQ(sched_spans, 2);
  EXPECT_EQ(flow_starts, 1);   // one dependency edge -> one flow pair
  EXPECT_EQ(flow_finishes, 1);

  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("sched/host"), std::string::npos);
  EXPECT_NE(json.find("sched/compute"), std::string::npos);
  EXPECT_NE(json.find("sched_lane_utilization"), std::string::npos);
  EXPECT_NE(json.find("\"critical\":\"true\""), std::string::npos);
  // Chrome flow-event grammar: 's' and 'f' share an id; the finish binds
  // to the enclosing slice ("bp":"e").
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

}  // namespace
}  // namespace malisim::obs
