// The observability determinism contract, verified end to end: attaching a
// recorder must not change ANY modelled second, watt or joule, at any host
// thread count. Runs the same reduced sweep as the harness golden test
// (profiling on and off, threads 1 and 4) and byte-compares the
// full-precision CSV against the checked-in goldens — the exact files the
// unprofiled harness must match, so "profiled == unprofiled" is transitive
// through the golden.
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/figures.h"
#include "obs/recorder.h"

#ifndef MALISIM_GOLDEN_DIR
#error "MALISIM_GOLDEN_DIR must point at tests/harness/golden"
#endif

namespace malisim::obs {
namespace {

// Mirrors tests/harness/golden_figures_test.cpp exactly: same sizes, same
// repetitions, same benchmark set, so the goldens are shared.
harness::ExperimentConfig QuickConfig(bool fp64) {
  harness::ExperimentConfig config;
  config.fp64 = fp64;
  config.repetitions = 5;
  config.sizes.vecop_n = 1 << 13;
  config.sizes.hist_n = 1 << 13;
  config.sizes.dmmm_n = 32;
  return config;
}

const std::vector<std::string>& SweepBenchmarks() {
  static const std::vector<std::string> kNames = {"vecop", "hist", "dmmm"};
  return kNames;
}

std::string ReadGolden(bool fp64) {
  const std::string path = std::string(MALISIM_GOLDEN_DIR) +
                           "/reduced_sweep_" + (fp64 ? "fp64" : "fp32") +
                           ".csv";
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden " << path;
  std::ostringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

std::string RunSweep(bool fp64, int threads, Recorder* recorder) {
  harness::ExperimentConfig config = QuickConfig(fp64);
  config.sim_threads = threads;
  config.recorder = recorder;
  harness::ExperimentRunner runner(config);
  std::vector<harness::BenchmarkResults> results;
  for (const std::string& name : SweepBenchmarks()) {
    auto r = runner.RunBenchmark(name);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok()) return {};
    results.push_back(*std::move(r));
  }
  return harness::RenderFullPrecisionCsv(results, fp64);
}

struct Case {
  bool fp64;
  int threads;
  bool profiled;
};

class ObsDeterminismTest : public ::testing::TestWithParam<Case> {};

TEST_P(ObsDeterminismTest, GoldenCsvBitIdenticalWithProfilingAttached) {
  const Case c = GetParam();
  Recorder recorder;
  const std::string csv =
      RunSweep(c.fp64, c.threads, c.profiled ? &recorder : nullptr);
  EXPECT_EQ(ReadGolden(c.fp64), csv)
      << "modelled numbers drifted with profiling="
      << (c.profiled ? "on" : "off") << " threads=" << c.threads
      << " — recording must be read-only w.r.t. the simulation";
  if (c.profiled) {
    // The recorder did observe the run (one kernel per executed variant
    // and one power segment per available variant) — it was not silently
    // detached.
    EXPECT_FALSE(recorder.kernels().empty());
    EXPECT_FALSE(recorder.power_segments().empty());
  }
}

std::string CaseName(const ::testing::TestParamInfo<Case>& info) {
  std::string name = info.param.fp64 ? "fp64" : "fp32";
  name += info.param.profiled ? "_profiled" : "_plain";
  name += "_t" + std::to_string(info.param.threads);
  return name;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ObsDeterminismTest,
                         ::testing::Values(Case{false, 1, true},
                                           Case{false, 4, true},
                                           Case{false, 4, false},
                                           Case{true, 1, true},
                                           Case{true, 4, true}),
                         CaseName);

/// Same run, profiled vs unprofiled, must also produce identical counter
/// *inputs*: the per-opcode tallies are pure functions of the executed
/// program, so two profiled runs at different thread counts agree exactly.
TEST(ObsDeterminismTest, OpcodeTalliesIdenticalAcrossThreadCounts) {
  Recorder serial;
  Recorder parallel;
  ASSERT_FALSE(RunSweep(false, 1, &serial).empty());
  ASSERT_FALSE(RunSweep(false, 4, &parallel).empty());
  const auto lhs = serial.kernels();
  const auto rhs = parallel.kernels();
  ASSERT_EQ(lhs.size(), rhs.size());
  for (std::size_t i = 0; i < lhs.size(); ++i) {
    EXPECT_EQ(lhs[i].kernel, rhs[i].kernel);
    EXPECT_EQ(lhs[i].opcode_counts, rhs[i].opcode_counts) << lhs[i].kernel;
    EXPECT_EQ(lhs[i].loads, rhs[i].loads);
    EXPECT_EQ(lhs[i].dram_bytes, rhs[i].dram_bytes);
    EXPECT_DOUBLE_EQ(lhs[i].seconds, rhs[i].seconds);
  }
}

}  // namespace
}  // namespace malisim::obs
