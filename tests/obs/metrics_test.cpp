// Tests for the metrics-aggregation layer: log-histogram bucket
// boundaries (exact edges, zero, negatives, NaN, overflow), percentile
// clamping, merge semantics, and the aggregator's order-independence
// guarantee that BENCH record byte-identity rests on.
#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/recorder.h"
#include "power/power_model.h"

namespace malisim::obs {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TEST(LogHistogramTest, DefaultLayoutHasUnderflowInnerAndOverflow) {
  const LogHistogram hist;
  // 15 decades x 8 buckets/decade inner, plus the two outer buckets.
  EXPECT_EQ(hist.num_buckets(), 15 * 8 + 2);
  EXPECT_EQ(hist.LowerEdge(0), -kInf);
  EXPECT_EQ(hist.UpperEdge(0), hist.layout().min_edge);
  EXPECT_EQ(hist.UpperEdge(hist.num_buckets() - 1), kInf);
}

TEST(LogHistogramTest, UnderflowBucketTakesZeroNegativeNaNAndBelowMin) {
  const LogHistogram hist;
  EXPECT_EQ(hist.BucketIndex(0.0), 0);
  EXPECT_EQ(hist.BucketIndex(-1.0), 0);
  EXPECT_EQ(hist.BucketIndex(-kInf), 0);
  EXPECT_EQ(hist.BucketIndex(kNaN), 0);
  EXPECT_EQ(hist.BucketIndex(hist.layout().min_edge * 0.999), 0);
}

TEST(LogHistogramTest, ExactEdgesBelongToTheBucketAbove) {
  const LogHistogram hist;
  // Inclusive lower edge: min_edge itself is the first inner bucket.
  EXPECT_EQ(hist.BucketIndex(hist.layout().min_edge), 1);
  // Every inner bucket's inclusive lower edge must file into that bucket,
  // and its exclusive upper edge into the bucket above — including where
  // log10 rounding sits within one ulp of the edge.
  for (int i = 1; i < hist.num_buckets() - 1; ++i) {
    EXPECT_EQ(hist.BucketIndex(hist.LowerEdge(i)), i) << "bucket " << i;
    EXPECT_EQ(hist.BucketIndex(hist.UpperEdge(i)), i + 1) << "bucket " << i;
  }
}

TEST(LogHistogramTest, OverflowBucketTakesTopEdgeAndBeyond) {
  const LogHistogram hist;
  // Default layout: 1e-9 over 15 decades -> top inner edge at 1e6.
  const int overflow = hist.num_buckets() - 1;
  EXPECT_EQ(hist.BucketIndex(hist.LowerEdge(overflow)), overflow);
  EXPECT_EQ(hist.BucketIndex(2e6), overflow);
  EXPECT_EQ(hist.BucketIndex(1e300), overflow);
  EXPECT_EQ(hist.BucketIndex(kInf), overflow);
  // Just below the top edge is still the last inner bucket.
  EXPECT_EQ(hist.BucketIndex(hist.LowerEdge(overflow) * 0.999), overflow - 1);
}

TEST(LogHistogramTest, EdgesAreContiguousAndMonotone) {
  const LogHistogram hist;
  for (int i = 1; i < hist.num_buckets(); ++i) {
    EXPECT_EQ(hist.LowerEdge(i), hist.UpperEdge(i - 1)) << "bucket " << i;
    EXPECT_LT(hist.LowerEdge(i), hist.UpperEdge(i)) << "bucket " << i;
  }
}

TEST(LogHistogramTest, TracksExactExtremesAndKahanSum) {
  LogHistogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.min(), 0.0);
  EXPECT_EQ(hist.max(), 0.0);
  EXPECT_EQ(hist.mean(), 0.0);
  EXPECT_EQ(hist.Percentile(50.0), 0.0);

  hist.Add(2e-3);
  hist.Add(1e-3);
  hist.Add(5e-3);
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_EQ(hist.min(), 1e-3);
  EXPECT_EQ(hist.max(), 5e-3);
  EXPECT_NEAR(hist.sum(), 8e-3, 1e-15);
  EXPECT_NEAR(hist.mean(), 8e-3 / 3.0, 1e-15);
}

TEST(LogHistogramTest, PercentilesClampToObservedExtremes) {
  LogHistogram single;
  single.Add(3.3e-4);
  // One value: every percentile is that value exactly (bucket upper edge
  // clamped to min == max), not a bucket edge.
  EXPECT_EQ(single.Percentile(0.0), 3.3e-4);
  EXPECT_EQ(single.Percentile(50.0), 3.3e-4);
  EXPECT_EQ(single.Percentile(99.0), 3.3e-4);
  EXPECT_EQ(single.Percentile(100.0), 3.3e-4);

  LogHistogram skewed;
  for (int i = 0; i < 99; ++i) skewed.Add(1e-3);
  skewed.Add(1.0);
  // Ranks 1..99 land in the 1e-3 bucket; the estimate is its upper edge,
  // which must stay within one bucket width of the true value.
  const int low_bucket = skewed.BucketIndex(1e-3);
  EXPECT_GE(skewed.Percentile(50.0), 1e-3);
  EXPECT_LE(skewed.Percentile(50.0), skewed.UpperEdge(low_bucket));
  EXPECT_GE(skewed.Percentile(99.0), 1e-3);
  EXPECT_LE(skewed.Percentile(99.0), skewed.UpperEdge(low_bucket));
  // p100 is the exact max, never an edge above it.
  EXPECT_EQ(skewed.Percentile(100.0), 1.0);
  // Out-of-range p is clamped, not UB.
  EXPECT_EQ(skewed.Percentile(-5.0), skewed.Percentile(0.0));
  EXPECT_EQ(skewed.Percentile(250.0), 1.0);
}

TEST(LogHistogramTest, MergeAddsBucketsAndCombinesExtremes) {
  LogHistogram a;
  a.Add(1e-3);
  a.Add(2e-3);
  LogHistogram b;
  b.Add(5e-1);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 1e-3);
  EXPECT_EQ(a.max(), 5e-1);
  EXPECT_NEAR(a.sum(), 0.503, 1e-12);
  EXPECT_EQ(a.bucket_count(a.BucketIndex(5e-1)), 1u);

  // Merging an empty histogram must not disturb the extremes.
  LogHistogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 1e-3);
  EXPECT_EQ(a.max(), 5e-1);
}

TEST(MetricsAggregatorTest, GaugesLastWriteWinCountersAccumulate) {
  MetricsAggregator agg;
  agg.SetGauge("g", 1.0);
  agg.SetGauge("g", 2.5);
  agg.AddCounter("c");
  agg.AddCounter("c", 4.0);
  const MetricsSnapshot snap = agg.Finalize();
  EXPECT_EQ(snap.gauges.at("g"), 2.5);
  EXPECT_EQ(snap.counters.at("c"), 5.0);
}

void ExpectStatsEqual(const HistogramStat& a, const HistogramStat& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.sum, b.sum);  // bitwise: canonical order makes sums identical
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.p50, b.p50);
  EXPECT_EQ(a.p90, b.p90);
  EXPECT_EQ(a.p99, b.p99);
  EXPECT_EQ(a.buckets, b.buckets);
}

TEST(MetricsAggregatorTest, FinalizeIsObservationOrderIndependent) {
  // Same multiset of observations in opposite orders must produce
  // bit-identical snapshots — the sums are computed after sorting.
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) {
    values.push_back(1e-4 * static_cast<double>(i % 17 + 1) + 1e-7 * i);
  }
  MetricsAggregator fwd;
  for (double v : values) fwd.Observe("series", v);
  MetricsAggregator rev;
  std::reverse(values.begin(), values.end());
  for (double v : values) rev.Observe("series", v);

  const MetricsSnapshot a = fwd.Finalize();
  const MetricsSnapshot b = rev.Finalize();
  ASSERT_EQ(a.histograms.count("series"), 1u);
  ASSERT_EQ(b.histograms.count("series"), 1u);
  ExpectStatsEqual(a.histograms.at("series"), b.histograms.at("series"));
}

KernelRecord Kernel(const std::string& name, double seconds) {
  KernelRecord k;
  k.kernel = name;
  k.device = "mali-t604";
  k.seconds = seconds;
  k.cores.resize(2);
  k.cores[0].stall_sec = seconds * 0.1;
  k.cores[1].stall_sec = seconds * 0.2;
  k.work_items = 4096;
  k.dram_bytes = 1 << 18;
  k.bottleneck = "ls-pipe";
  k.profile.seconds = seconds;
  k.profile.gpu_on = true;
  k.profile.gpu_core_busy = {0.5, 0.5};
  return k;
}

PowerSegment Segment(const std::string& label, double window_sec) {
  PowerSegment seg;
  seg.label = label;
  seg.window_sec = window_sec;
  seg.profile.seconds = window_sec;
  seg.profile.cpu_busy = {1.0, 0.0};
  return seg;
}

TEST(MetricsAggregatorTest, IngestRecorderIsRecordOrderIndependent) {
  // Two recorders holding the same records appended in different orders —
  // exactly what the parallel engine produces across --threads values.
  Recorder fwd;
  fwd.AddKernel(Kernel("vecadd", 0.002));
  fwd.AddKernel(Kernel("spmv", 0.004));
  fwd.AddKernel(Kernel("vecadd", 0.003));
  fwd.AddCommand({"write", "", 1 << 16, 1e-4});
  fwd.AddCommand({"ndrange", "vecadd", 0, 0.002});
  fwd.AddPowerSegment(Segment("demo/Serial", 2.0));
  fwd.AddPowerSegment(Segment("demo/OpenCL", 1.0));
  fwd.AddFault({"kernel", "demo/vecadd", "injected", ""});

  Recorder rev;
  rev.AddFault({"kernel", "demo/vecadd", "injected", ""});
  rev.AddPowerSegment(Segment("demo/OpenCL", 1.0));
  rev.AddCommand({"ndrange", "vecadd", 0, 0.002});
  rev.AddKernel(Kernel("vecadd", 0.003));
  rev.AddKernel(Kernel("spmv", 0.004));
  rev.AddPowerSegment(Segment("demo/Serial", 2.0));
  rev.AddKernel(Kernel("vecadd", 0.002));
  rev.AddCommand({"write", "", 1 << 16, 1e-4});

  const power::PowerModel model;
  MetricsAggregator agg_fwd;
  agg_fwd.IngestRecorder(fwd, model, "fp32");
  MetricsAggregator agg_rev;
  agg_rev.IngestRecorder(rev, model, "fp32");

  const MetricsSnapshot a = agg_fwd.Finalize();
  const MetricsSnapshot b = agg_rev.Finalize();
  EXPECT_EQ(a.gauges, b.gauges);
  EXPECT_EQ(a.counters, b.counters);
  ASSERT_EQ(a.histograms.size(), b.histograms.size());
  for (const auto& [name, stat] : a.histograms) {
    ASSERT_EQ(b.histograms.count(name), 1u) << name;
    ExpectStatsEqual(stat, b.histograms.at(name));
  }

  // Spot-check the ingested names and values.
  EXPECT_EQ(a.counters.at("fp32/kernels_launched"), 3.0);
  EXPECT_EQ(a.counters.at("fp32/bottleneck/ls-pipe"), 3.0);
  EXPECT_EQ(a.counters.at("fp32/faults/kernel/injected"), 1.0);
  EXPECT_EQ(a.histograms.at("fp32/kernel_time_sec").count, 3u);
  EXPECT_EQ(a.histograms.at("fp32/kernel_time_sec/mali-t604/vecadd").count,
            2u);
  EXPECT_EQ(a.histograms.at("fp32/queue_cmd_sec/write").count, 1u);
  EXPECT_EQ(a.histograms.at("fp32/segment_power_w/total").count, 2u);
  EXPECT_GT(a.counters.at("fp32/energy_j/total"), 0.0);
  EXPECT_EQ(a.gauges.count("fp32/segment/demo/Serial/avg_w"), 1u);
}

TEST(SummaryReportTest, ListsPerKernelPercentilesAndEnergy) {
  Recorder recorder;
  recorder.AddKernel(Kernel("vecadd", 0.002));
  recorder.AddKernel(Kernel("vecadd", 0.004));
  recorder.AddPowerSegment(Segment("demo/Serial", 2.0));
  const power::PowerModel model;
  const std::string report = SummaryReport(recorder, model);
  EXPECT_NE(report.find("malisim-prof summary"), std::string::npos);
  EXPECT_NE(report.find("2 kernel launch(es)"), std::string::npos);
  EXPECT_NE(report.find("vecadd"), std::string::npos);
  EXPECT_NE(report.find("p50 ms"), std::string::npos);
  EXPECT_NE(report.find("p99 ms"), std::string::npos);
  EXPECT_NE(report.find("Energy (meter windows)"), std::string::npos);
}

}  // namespace
}  // namespace malisim::obs
