// Benchmark-specific property tests: invariants of the computations and
// the performance model that go beyond reference validation.
#include <numeric>
#include <string>

#include <gtest/gtest.h>

#include "hpc/benchmark.h"

namespace malisim::hpc {
namespace {

ProblemSizes QuickSizes() {
  ProblemSizes sizes;
  sizes.spmv_rows = 1024;
  sizes.spmv_avg_nnz_per_row = 12;
  sizes.vecop_n = 1 << 14;
  sizes.hist_n = 1 << 14;
  sizes.hist_bins = 64;
  sizes.stencil_dim = 16;
  sizes.red_n = 1 << 14;
  sizes.amcd_chains = 32;
  sizes.amcd_atoms = 12;
  sizes.amcd_steps = 8;
  sizes.nbody_n = 128;
  sizes.conv_dim = 64;
  sizes.dmmm_n = 32;
  return sizes;
}

struct Board {
  cpu::CortexA15Device cpu;
  ocl::Context gpu;
  Devices devices{&cpu, &gpu};
};

TEST(BenchmarkPropertyTest, SpmvGpuShowsLoadImbalance) {
  // The skewed row lengths must register in the Mali model's per-group
  // imbalance factor (paper §IV-A: spmv measures load imbalance).
  auto bench = CreateBenchmark("spmv", QuickSizes());
  ASSERT_TRUE(bench->Setup(false, 5).ok());
  Board board;
  auto outcome = bench->Run(Variant::kOpenCL, board.devices);
  ASSERT_TRUE(outcome.ok());
  EXPECT_GT(outcome->stats.Get("mali.core0.imbalance"), 1.5);
}

TEST(BenchmarkPropertyTest, VecopGpuIsBalanced) {
  auto bench = CreateBenchmark("vecop", QuickSizes());
  ASSERT_TRUE(bench->Setup(false, 5).ok());
  Board board;
  auto outcome = bench->Run(Variant::kOpenCL, board.devices);
  ASSERT_TRUE(outcome.ok());
  EXPECT_LT(outcome->stats.Get("mali.core0.imbalance"), 1.05);
}

TEST(BenchmarkPropertyTest, HistNaiveHitsAtomicSerialization) {
  auto bench = CreateBenchmark("hist", QuickSizes());
  ASSERT_TRUE(bench->Setup(false, 5).ok());
  Board board;
  auto naive = bench->Run(Variant::kOpenCL, board.devices);
  ASSERT_TRUE(naive.ok());
  auto opt = bench->Run(Variant::kOpenCLOpt, board.devices);
  ASSERT_TRUE(opt.ok());
  // The naive version's atomic floor dominates; privatization removes it.
  EXPECT_GT(naive->stats.Get("mali.atomic_floor_sec"),
            10 * opt->stats.Get("mali.atomic_floor_sec"));
}

TEST(BenchmarkPropertyTest, HistOptUsesBarriers) {
  auto bench = CreateBenchmark("hist", QuickSizes());
  ASSERT_TRUE(bench->Setup(false, 5).ok());
  Board board;
  auto opt = bench->Run(Variant::kOpenCLOpt, board.devices);
  ASSERT_TRUE(opt.ok());
  EXPECT_TRUE(opt->validated);
}

TEST(BenchmarkPropertyTest, VecopOptMovesFewerLsSlotsThanNaive) {
  // The §III-B vector-load claim in its purest form: same traffic, fewer
  // LS issue slots, hence less LS-pipe time.
  auto bench = CreateBenchmark("vecop", QuickSizes());
  ASSERT_TRUE(bench->Setup(false, 5).ok());
  Board board;
  auto naive = bench->Run(Variant::kOpenCL, board.devices);
  auto opt = bench->Run(Variant::kOpenCLOpt, board.devices);
  ASSERT_TRUE(naive.ok() && opt.ok());
  EXPECT_LT(opt->stats.Get("mali.core0.ls_cycles"),
            0.5 * naive->stats.Get("mali.core0.ls_cycles"));
}

TEST(BenchmarkPropertyTest, DmmmOptOccupancyStaysHighSp) {
  auto bench = CreateBenchmark("dmmm", QuickSizes());
  ASSERT_TRUE(bench->Setup(false, 5).ok());
  Board board;
  auto opt = bench->Run(Variant::kOpenCLOpt, board.devices);
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ(opt->stats.Get("mali.threads_per_core"), 256.0);
}

TEST(BenchmarkPropertyTest, EnergyEqualsPowerTimesTimeInProfile) {
  auto bench = CreateBenchmark("red", QuickSizes());
  ASSERT_TRUE(bench->Setup(false, 5).ok());
  Board board;
  for (Variant v : kAllVariants) {
    auto outcome = bench->Run(v, board.devices);
    ASSERT_TRUE(outcome.ok());
    EXPECT_NEAR(outcome->profile.seconds, outcome->seconds,
                outcome->seconds * 1e-9)
        << VariantName(v);
  }
}

TEST(BenchmarkPropertyTest, LargerProblemTakesLonger) {
  // Modelled time must be monotone in problem size for every variant.
  ProblemSizes small = QuickSizes();
  ProblemSizes big = QuickSizes();
  big.vecop_n *= 4;
  for (Variant v : kAllVariants) {
    auto bench_small = CreateBenchmark("vecop", small);
    auto bench_big = CreateBenchmark("vecop", big);
    ASSERT_TRUE(bench_small->Setup(false, 3).ok());
    ASSERT_TRUE(bench_big->Setup(false, 3).ok());
    Board b1, b2;
    auto t_small = bench_small->Run(v, b1.devices);
    auto t_big = bench_big->Run(v, b2.devices);
    ASSERT_TRUE(t_small.ok() && t_big.ok());
    EXPECT_GT(t_big->seconds, t_small->seconds) << VariantName(v);
  }
}

TEST(BenchmarkPropertyTest, DoublePrecisionCostsMoreOnGpu) {
  // FP64 halves the vector width and doubles the traffic: never faster.
  for (const std::string name : {"vecop", "dmmm", "red"}) {
    auto bench = CreateBenchmark(name, QuickSizes());
    ASSERT_TRUE(bench->Setup(false, 3).ok());
    Board b1;
    auto sp = bench->Run(Variant::kOpenCL, b1.devices);
    ASSERT_TRUE(sp.ok());
    ASSERT_TRUE(bench->Setup(true, 3).ok());
    Board b2;
    auto dp = bench->Run(Variant::kOpenCL, b2.devices);
    ASSERT_TRUE(dp.ok());
    EXPECT_GE(dp->seconds, sp->seconds * 0.99) << name;
  }
}

TEST(BenchmarkPropertyTest, StencilBoundaryStaysZero) {
  ProblemSizes sizes = QuickSizes();
  auto bench = CreateBenchmark("3dstc", sizes);
  ASSERT_TRUE(bench->Setup(false, 11).ok());
  Board board;
  // Validation inside Run already compares every element against the
  // reference, whose boundary is zero — a failed boundary write would
  // surface as a validation failure here.
  auto outcome = bench->Run(Variant::kOpenCL, board.devices);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->validated);
}

TEST(BenchmarkPropertyTest, SerialProfileUsesOneCore) {
  auto bench = CreateBenchmark("dmmm", QuickSizes());
  ASSERT_TRUE(bench->Setup(false, 3).ok());
  Board board;
  auto serial = bench->Run(Variant::kSerial, board.devices);
  ASSERT_TRUE(serial.ok());
  EXPECT_GT(serial->profile.cpu_busy[0], 0.3);
  EXPECT_EQ(serial->profile.cpu_busy[1], 0.0);
  auto omp = bench->Run(Variant::kOpenMP, board.devices);
  ASSERT_TRUE(omp.ok());
  EXPECT_GT(omp->profile.cpu_busy[1], 0.3);
}

}  // namespace
}  // namespace malisim::hpc
