#include "hpc/detail.h"

#include <gtest/gtest.h>

namespace malisim::hpc::detail {
namespace {

TEST(FpBufferTest, SinglePrecisionRoundTrip) {
  FpBuffer b(false, 8);
  EXPECT_EQ(b.size(), 8u);
  EXPECT_EQ(b.bytes(), 32u);
  EXPECT_EQ(b.type(), kir::ScalarType::kF32);
  b.Set(3, 1.25);
  EXPECT_DOUBLE_EQ(b.Get(3), 1.25);
  // f32 rounding applies on Set.
  b.Set(0, 0.1);
  EXPECT_DOUBLE_EQ(b.Get(0), static_cast<double>(0.1f));
}

TEST(FpBufferTest, DoublePrecisionRoundTrip) {
  FpBuffer b(true, 4);
  EXPECT_EQ(b.bytes(), 32u);
  EXPECT_EQ(b.type(), kir::ScalarType::kF64);
  b.Set(1, 0.1);
  EXPECT_DOUBLE_EQ(b.Get(1), 0.1);
}

TEST(FpBufferTest, FillFrom) {
  FpBuffer b(true, 3);
  const double src[] = {1.0, 2.0, 3.0};
  b.FillFrom(src);
  EXPECT_DOUBLE_EQ(b.Get(2), 3.0);
}

TEST(MaxRelErrorTest, ExactMatchIsZero) {
  FpBuffer got(true, 3);
  std::vector<double> want = {1.0, -2.0, 3.0};
  got.FillFrom(want);
  EXPECT_EQ(MaxRelError(got, want), 0.0);
}

TEST(MaxRelErrorTest, RelativeToMagnitude) {
  FpBuffer got(true, 2);
  got.Set(0, 101.0);
  got.Set(1, 20.0);
  std::vector<double> want = {100.0, 20.0};  // mean |want| = 60 < |want[0]|
  EXPECT_NEAR(MaxRelError(got, want), 0.01, 1e-12);
}

TEST(MaxRelErrorTest, NearZeroEntriesUseMeanFloor) {
  // A tiny absolute error on a near-zero entry must not explode when the
  // problem scale is O(1).
  FpBuffer got(true, 2);
  got.Set(0, 1e-9);
  got.Set(1, 1.0);
  std::vector<double> want = {0.0, 1.0};
  EXPECT_LT(MaxRelError(got, want), 1e-8);
}

TEST(MergeProfilesTest, TimeWeightedAverage) {
  power::ActivityProfile a;
  a.seconds = 1.0;
  a.cpu_busy[0] = 1.0;
  a.dram_bytes = 100;
  power::ActivityProfile b;
  b.seconds = 3.0;
  b.cpu_busy[0] = 0.0;
  b.gpu_on = true;
  b.gpu_core_busy[2] = 0.8;
  b.dram_bytes = 300;
  const power::ActivityProfile merged = MergeProfiles(std::vector{a, b});
  EXPECT_DOUBLE_EQ(merged.seconds, 4.0);
  EXPECT_NEAR(merged.cpu_busy[0], 0.25, 1e-12);
  EXPECT_NEAR(merged.gpu_core_busy[2], 0.6, 1e-12);
  EXPECT_TRUE(merged.gpu_on);
  EXPECT_EQ(merged.dram_bytes, 400u);
}

TEST(MergeProfilesTest, EmptyIsZero) {
  const power::ActivityProfile merged = MergeProfiles({});
  EXPECT_EQ(merged.seconds, 0.0);
}

TEST(FinishValidationTest, PassAndFail) {
  RunOutcome ok_outcome;
  FinishValidation(&ok_outcome, 1e-6, 1e-5);
  EXPECT_TRUE(ok_outcome.validated);
  EXPECT_TRUE(ok_outcome.note.empty());

  RunOutcome bad_outcome;
  FinishValidation(&bad_outcome, 0.5, 1e-5);
  EXPECT_FALSE(bad_outcome.validated);
  EXPECT_NE(bad_outcome.note.find("VALIDATION FAILED"), std::string::npos);
}

}  // namespace
}  // namespace malisim::hpc::detail
