// Integration tests over the nine benchmarks: every variant of every
// benchmark validates functionally in both precisions (at reduced problem
// sizes), and benchmark-specific behaviours (the amcd FP64 erratum, the
// nbody/2dcon FP64 fallbacks) hold.
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "hpc/benchmark.h"
#include "hpc/kernels.h"

namespace malisim::hpc {
namespace {

ProblemSizes QuickSizes() {
  ProblemSizes sizes;
  sizes.spmv_rows = 512;
  sizes.spmv_avg_nnz_per_row = 12;
  sizes.vecop_n = 1 << 13;
  sizes.hist_n = 1 << 13;
  sizes.hist_bins = 128;
  sizes.stencil_dim = 16;
  sizes.red_n = 1 << 13;
  sizes.amcd_chains = 32;
  sizes.amcd_atoms = 12;
  sizes.amcd_steps = 8;
  sizes.nbody_n = 128;
  sizes.conv_dim = 64;
  sizes.dmmm_n = 32;
  return sizes;
}

struct BoardFixture {
  cpu::CortexA15Device cpu;
  ocl::Context gpu;
  Devices devices{&cpu, &gpu};
};

using VariantCase = std::tuple<std::string, Variant, bool /*fp64*/>;

class BenchmarkVariantTest : public ::testing::TestWithParam<VariantCase> {};

TEST_P(BenchmarkVariantTest, ValidatesFunctionally) {
  const auto& [name, variant, fp64] = GetParam();
  // The paper's documented GPU gaps in double precision.
  const bool expect_build_failure =
      fp64 && name == "amcd" &&
      (variant == Variant::kOpenCL || variant == Variant::kOpenCLOpt);

  std::unique_ptr<Benchmark> bench = CreateBenchmark(name, QuickSizes());
  ASSERT_NE(bench, nullptr);
  ASSERT_TRUE(bench->Setup(fp64, 1234).ok());
  BoardFixture board;
  StatusOr<RunOutcome> outcome = bench->Run(variant, board.devices);
  if (expect_build_failure) {
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.status().code(), ErrorCode::kBuildFailure);
    return;
  }
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->validated)
      << name << "/" << VariantName(variant) << " max rel err "
      << outcome->max_rel_error << " note: " << outcome->note;
  EXPECT_GT(outcome->seconds, 0.0);
  EXPECT_GT(outcome->profile.seconds, 0.0);
}

std::vector<VariantCase> AllCases() {
  std::vector<VariantCase> cases;
  for (const std::string& name : RegisteredBenchmarks()) {
    for (Variant v : kAllVariants) {
      for (bool fp64 : {false, true}) {
        cases.push_back({name, v, fp64});
      }
    }
  }
  return cases;
}

std::string CaseName(const ::testing::TestParamInfo<VariantCase>& info) {
  const auto& [name, variant, fp64] = info.param;
  std::string n = name + "_";
  switch (variant) {
    case Variant::kSerial: n += "serial"; break;
    case Variant::kOpenMP: n += "openmp"; break;
    case Variant::kOpenCL: n += "opencl"; break;
    case Variant::kOpenCLOpt: n += "openclopt"; break;
  }
  n += fp64 ? "_dp" : "_sp";
  // "3dstc" starts with a digit and "2dcon" too; prefix for valid names.
  return "b" + n;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkVariantTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

TEST(BenchmarkRegistryTest, PaperOrderAndFactories) {
  const auto names = RegisteredBenchmarks();
  ASSERT_EQ(names.size(), 9u);
  EXPECT_EQ(names.front(), "spmv");
  EXPECT_EQ(names.back(), "dmmm");
  for (const std::string& name : names) {
    EXPECT_NE(CreateBenchmark(name), nullptr) << name;
  }
  EXPECT_EQ(CreateBenchmark("not_a_benchmark"), nullptr);
}

TEST(BenchmarkTest, DeterministicAcrossRuns) {
  auto bench = CreateBenchmark("vecop", QuickSizes());
  ASSERT_TRUE(bench->Setup(false, 99).ok());
  BoardFixture board;
  auto first = bench->Run(Variant::kOpenCLOpt, board.devices);
  ASSERT_TRUE(first.ok());
  BoardFixture board2;
  auto second = bench->Run(Variant::kOpenCLOpt, board2.devices);
  ASSERT_TRUE(second.ok());
  EXPECT_DOUBLE_EQ(first->seconds, second->seconds);
}

TEST(BenchmarkTest, SeedChangesInputsButStillValidates) {
  auto bench = CreateBenchmark("dmmm", QuickSizes());
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    ASSERT_TRUE(bench->Setup(false, seed).ok());
    BoardFixture board;
    auto outcome = bench->Run(Variant::kOpenCL, board.devices);
    ASSERT_TRUE(outcome.ok());
    EXPECT_TRUE(outcome->validated) << "seed " << seed;
  }
}

TEST(BenchmarkTest, NbodyDpOptFallsBackWithNote) {
  auto bench = CreateBenchmark("nbody", QuickSizes());
  ASSERT_TRUE(bench->Setup(true, 42).ok());
  BoardFixture board;
  auto outcome = bench->Run(Variant::kOpenCLOpt, board.devices);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_NE(outcome->note.find("CL_OUT_OF_RESOURCES"), std::string::npos);
  EXPECT_TRUE(outcome->validated);
}

TEST(BenchmarkTest, NbodySpOptDoesNotFallBack) {
  auto bench = CreateBenchmark("nbody", QuickSizes());
  ASSERT_TRUE(bench->Setup(false, 42).ok());
  BoardFixture board;
  auto outcome = bench->Run(Variant::kOpenCLOpt, board.devices);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->note.find("CL_OUT_OF_RESOURCES"), std::string::npos);
}

TEST(BenchmarkTest, Conv2dDpOptFallsBackWithNote) {
  auto bench = CreateBenchmark("2dcon", QuickSizes());
  ASSERT_TRUE(bench->Setup(true, 42).ok());
  BoardFixture board;
  auto outcome = bench->Run(Variant::kOpenCLOpt, board.devices);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_NE(outcome->note.find("CL_OUT_OF_RESOURCES"), std::string::npos);
  EXPECT_TRUE(outcome->validated);
}

TEST(BenchmarkTest, DmmmDpOptSurvivesRegisterBudget) {
  // The paper's one heavily-optimized FP64 kernel that fits (30x speedup).
  auto bench = CreateBenchmark("dmmm", QuickSizes());
  ASSERT_TRUE(bench->Setup(true, 42).ok());
  BoardFixture board;
  auto outcome = bench->Run(Variant::kOpenCLOpt, board.devices);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->note.empty()) << outcome->note;
  EXPECT_TRUE(outcome->validated);
}

TEST(BenchmarkTest, HistRejectsTooManyBins) {
  ProblemSizes sizes = QuickSizes();
  sizes.hist_bins = 512;
  auto bench = CreateBenchmark("hist", sizes);
  EXPECT_FALSE(bench->Setup(false, 1).ok());
}

TEST(BenchmarkTest, AmcdBitExactAcrossCpuVariants) {
  // Serial and OpenMP replay the same RNG streams: results are identical.
  auto bench = CreateBenchmark("amcd", QuickSizes());
  ASSERT_TRUE(bench->Setup(false, 7).ok());
  BoardFixture board;
  auto serial = bench->Run(Variant::kSerial, board.devices);
  auto openmp = bench->Run(Variant::kOpenMP, board.devices);
  ASSERT_TRUE(serial.ok() && openmp.ok());
  EXPECT_EQ(serial->max_rel_error, 0.0);
  EXPECT_EQ(openmp->max_rel_error, 0.0);
}

}  // namespace
}  // namespace malisim::hpc
