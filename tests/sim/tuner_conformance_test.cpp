// Tuner conformance battery against the nine paper benchmarks: for every
// benchmark, under the time AND the energy objective at the --quick
// problem sizes, the tuner must rediscover-or-beat the paper's
// hand-picked §III configuration, and the winner must match the committed
// golden exactly. All nine spaces are exhaustively searchable, so the
// paper configuration is always evaluated and "winner <= paper" is a
// theorem the test merely re-checks; the goldens pin the concrete
// operating points so a model regression that silently shifts a winner
// fails loudly.
//
// Also the benchmark-facing halves of the determinism and cache
// contracts: TuneBenchmark trajectories are bit-identical across host
// thread counts, and a persisted cache resolves a re-tune with zero
// evaluations and a byte-identical winner.
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/tuning.h"
#include "hpc/benchmark.h"
#include "hpc/problem_sizes.h"
#include "sim/tuner.h"

namespace malisim::harness {
namespace {

TuningRequest QuickRequest(const std::string& benchmark,
                           sim::Objective objective) {
  TuningRequest request;
  request.benchmark = benchmark;
  request.sizes = hpc::ProblemSizes::Quick();
  request.fp64 = false;
  request.tuner.objective = objective;
  request.tuner.threads = 2;
  return request;
}

struct GoldenCase {
  const char* benchmark;
  sim::Objective objective;
  /// Expected winner CanonicalKey at Quick sizes, fp32, seed 42.
  const char* winner;
};

// The committed golden winners. Regenerate with:
//   malisim-tune --quick --objective=time   (and --objective=energy)
// At the Quick sizes several optima legitimately differ from the paper's
// full-size hand-picks (smaller working sets favor smaller groups and
// shallower unrolls); the model's winner at these sizes is still never
// worse than the paper configuration at these sizes, which is the
// conformance claim. Notably nbody's optimum takes the SOA layout the
// paper's §V-A discussion anticipates but never measured.
const GoldenCase kGolden[] = {
    {"spmv", sim::Objective::kTime, "vec=4,wg=32"},
    {"spmv", sim::Objective::kEnergy, "vec=4,wg=32"},
    {"vecop", sim::Objective::kTime, "vec=4,wg=128,copy=0"},
    {"vecop", sim::Objective::kEnergy, "vec=4,wg=128,copy=0"},
    {"hist", sim::Objective::kTime, "wg=256,groups=4"},
    {"hist", sim::Objective::kEnergy, "wg=256,groups=4"},
    {"3dstc", sim::Objective::kTime, "wgx=16,wgy=4,wgz=4"},
    {"3dstc", sim::Objective::kEnergy, "wgx=16,wgy=4,wgz=4"},
    {"red", sim::Objective::kTime, "vec=4,items1=512,wg=128"},
    {"red", sim::Objective::kEnergy, "vec=4,items1=512,wg=128"},
    {"amcd", sim::Objective::kTime, "unroll=1,wg=32"},
    {"amcd", sim::Objective::kEnergy, "unroll=1,wg=32"},
    {"nbody", sim::Objective::kTime, "vecflavor=1,soa=1,wg=128"},
    {"nbody", sim::Objective::kEnergy, "vecflavor=1,soa=1,wg=128"},
    {"2dcon", sim::Objective::kTime, "quad=1,wgx=16,wgy=16"},
    {"2dcon", sim::Objective::kEnergy, "quad=1,wgx=16,wgy=16"},
    {"dmmm", sim::Objective::kTime, "vec=4,unroll=1,tile=8"},
    {"dmmm", sim::Objective::kEnergy, "vec=4,unroll=1,tile=8"},
};

class TunerConformanceTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(TunerConformanceTest, RediscoversOrBeatsPaperConfig) {
  const GoldenCase c = GetParam();
  StatusOr<TuningReport> report =
      TuneBenchmark(QuickRequest(c.benchmark, c.objective));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const sim::TunerResult& r = report->result;

  // Every paper space is small enough to search exhaustively, so the
  // winner is the true optimum of the declared space.
  EXPECT_TRUE(r.exhaustive);
  EXPECT_GT(r.evaluated, 0u);

  // The paper's hand-picked configuration must be in the space, must have
  // been evaluated, and must not beat the winner.
  const std::string paper_key = report->paper_config.CanonicalKey();
  double paper_score = -1.0;
  for (const sim::TuningTrajectoryPoint& p : r.trajectory) {
    if (p.config_key == paper_key && p.ok) {
      paper_score = p.score;
      break;
    }
  }
  ASSERT_GE(paper_score, 0.0)
      << "paper config " << paper_key << " was never evaluated";
  EXPECT_LE(r.best_score, paper_score)
      << "winner " << r.best.CanonicalKey() << " loses to the paper config";

  // The committed golden operating point.
  EXPECT_EQ(r.best.CanonicalKey(), c.winner)
      << "winner drifted (score " << r.best_score << ", paper " << paper_key
      << " score " << paper_score << ")";
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, TunerConformanceTest, ::testing::ValuesIn(kGolden),
    [](const ::testing::TestParamInfo<GoldenCase>& param) {
      std::string name = param.param.benchmark;
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      if (!name.empty() && name[0] >= '0' && name[0] <= '9') {
        name = "b" + name;
      }
      return name + "_" +
             std::string(sim::ObjectiveName(param.param.objective));
    });

TEST(TunerConformanceTest2, EveryRegisteredBenchmarkHasGoldenCoverage) {
  // 9 benchmarks x 2 objectives: adding a benchmark without extending the
  // battery fails here.
  const std::vector<std::string> names = hpc::RegisteredBenchmarks();
  EXPECT_EQ(std::size(kGolden), 2 * names.size());
  for (const std::string& name : names) {
    bool time_covered = false;
    bool energy_covered = false;
    for (const GoldenCase& c : kGolden) {
      if (name != c.benchmark) continue;
      time_covered |= c.objective == sim::Objective::kTime;
      energy_covered |= c.objective == sim::Objective::kEnergy;
    }
    EXPECT_TRUE(time_covered) << name << " lacks a time golden";
    EXPECT_TRUE(energy_covered) << name << " lacks an energy golden";
  }
}

// ---------------------------------------------------------------------------
// Benchmark-facing determinism: identical trajectories across host thread
// counts, through the real per-candidate pipeline (fresh devices, fresh
// Setup, power model).
// ---------------------------------------------------------------------------

TEST(TunerHarnessDeterminismTest, TrajectoriesIdenticalAcrossThreadCounts) {
  for (const char* benchmark : {"vecop", "hist"}) {
    SCOPED_TRACE(benchmark);
    TuningRequest request = QuickRequest(benchmark, sim::Objective::kEnergy);
    request.tuner.threads = 1;
    StatusOr<TuningReport> serial = TuneBenchmark(request);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    request.tuner.threads = 4;
    StatusOr<TuningReport> threaded = TuneBenchmark(request);
    ASSERT_TRUE(threaded.ok()) << threaded.status().ToString();

    EXPECT_EQ(serial->result.best.CanonicalKey(),
              threaded->result.best.CanonicalKey());
    EXPECT_EQ(serial->result.best_score, threaded->result.best_score);
    ASSERT_EQ(serial->result.trajectory.size(),
              threaded->result.trajectory.size());
    for (std::size_t i = 0; i < serial->result.trajectory.size(); ++i) {
      EXPECT_EQ(serial->result.trajectory[i].config_key,
                threaded->result.trajectory[i].config_key);
      EXPECT_EQ(serial->result.trajectory[i].score,
                threaded->result.trajectory[i].score);
      EXPECT_EQ(serial->result.trajectory[i].ok,
                threaded->result.trajectory[i].ok);
    }
  }
}

// ---------------------------------------------------------------------------
// Benchmark-facing cache contract: save -> load -> re-tune resolves every
// benchmark from the cache with zero evaluations and byte-identical
// winners, and the cache file itself is byte-stable.
// ---------------------------------------------------------------------------

TEST(TunerHarnessCacheTest, ReTuneIsAllHitsAndByteIdentical) {
  const std::string path = ::testing::TempDir() + "/tuner_harness_cache.json";
  std::remove(path.c_str());

  sim::TuningCache cache = sim::TuningCache::LoadFileOrEmpty(path);
  TuningRequest request = QuickRequest("spmv", sim::Objective::kEnergy);
  request.cache = &cache;
  StatusOr<TuningReport> first = TuneBenchmark(request);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->result.from_cache);
  EXPECT_GT(first->result.evaluated, 0u);
  ASSERT_TRUE(cache.SaveFile(path).ok());

  // Re-tune against the loaded file: a pure cache hit.
  sim::TuningCache reloaded = sim::TuningCache::LoadFileOrEmpty(path);
  EXPECT_EQ(reloaded.Serialize(), cache.Serialize());
  request.cache = &reloaded;
  StatusOr<TuningReport> second = TuneBenchmark(request);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second->result.from_cache);
  EXPECT_EQ(second->result.evaluated, 0u);
  EXPECT_EQ(second->result.trajectory.size(), 0u);
  EXPECT_EQ(second->result.best.CanonicalKey(),
            first->result.best.CanonicalKey());
  EXPECT_EQ(second->result.best_score, first->result.best_score);
  EXPECT_EQ(second->cache_key, first->cache_key);

  // A hit does not dirty the cache: saving again is byte-identical.
  ASSERT_TRUE(reloaded.SaveFile(path).ok());
  EXPECT_EQ(sim::TuningCache::LoadFileOrEmpty(path).Serialize(),
            cache.Serialize());
  std::remove(path.c_str());
}

TEST(TunerHarnessCacheTest, ObjectivesAddressDistinctEntries) {
  sim::TuningCache cache;
  TuningRequest request = QuickRequest("hist", sim::Objective::kTime);
  request.cache = &cache;
  ASSERT_TRUE(TuneBenchmark(request).ok());
  request.tuner.objective = sim::Objective::kEnergy;
  ASSERT_TRUE(TuneBenchmark(request).ok());
  EXPECT_EQ(cache.size(), 2u);
}

// ---------------------------------------------------------------------------
// Paper-conformance edge: the amcd FP64 compiler erratum fails every
// candidate build, so the search itself reports NotFound — the tuner-level
// analogue of the paper's missing DP bars.
// ---------------------------------------------------------------------------

TEST(TunerConformanceTest2, AmcdFp64HasNoTunableWinner) {
  TuningRequest request = QuickRequest("amcd", sim::Objective::kTime);
  request.fp64 = true;
  StatusOr<TuningReport> report = TuneBenchmark(request);
  EXPECT_FALSE(report.ok());
}

// ---------------------------------------------------------------------------
// Hetero-ratio folding: on the co-execution backend every space gains the
// GPU-share axis, the winner carries a concrete split, and the cache
// addresses hetero winners apart from single-device ones.
// ---------------------------------------------------------------------------

TEST(TunerConformanceTest2, HeteroRatioFoldsIntoTheSearch) {
  TuningRequest request = QuickRequest("vecop", sim::Objective::kTime);
  request.device = sim::BackendKind::kHetero;
  StatusOr<TuningReport> report = TuneBenchmark(request);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->result.best.Has("hetero_permille"));
  const std::int64_t share = report->result.best.Get("hetero_permille", -1);
  EXPECT_GE(share, 0);
  EXPECT_LE(share, 1000);
  // The extra axis multiplies the space: 24 base points x 5 splits.
  EXPECT_EQ(report->result.space_size, 120u);
  // Hetero winners live under a different cache address than Mali ones.
  StatusOr<TuningReport> mali =
      TuneBenchmark(QuickRequest("vecop", sim::Objective::kTime));
  ASSERT_TRUE(mali.ok()) << mali.status().ToString();
  EXPECT_NE(report->cache_key, mali->cache_key);
  EXPECT_FALSE(mali->result.best.Has("hetero_permille"));
}

TEST(TunerConformanceTest2, UnknownBenchmarkIsNotFound) {
  StatusOr<TuningReport> report =
      TuneBenchmark(QuickRequest("nope", sim::Objective::kTime));
  EXPECT_FALSE(report.ok());
}

}  // namespace
}  // namespace malisim::harness
