// Tests for the event-graph scheduler: deterministic list scheduling of
// command DAGs onto modelled lanes (sim/scheduler.h). The chain invariant —
// a fully linearized graph retires to exactly the eager queue's sum — is
// what makes the async command-queue refactor behavior-preserving.
#include "sim/scheduler.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace malisim::sim {
namespace {

EventId Add(EventGraph& g, double seconds, int lane,
            std::vector<EventId> deps = {}) {
  return g.Add(CmdKind::kKernel, "k", seconds, lane,
               std::span<const EventId>(deps));
}

TEST(SchedulerTest, EmptyGraphSchedulesToZero) {
  EventGraph g;
  auto result = ScheduleEvents(g);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->makespan_sec, 0.0);
  EXPECT_EQ(result->serial_sec, 0.0);
  EXPECT_TRUE(result->order.empty());
}

TEST(SchedulerTest, ChainEqualsEagerSumBitForBit) {
  // In-order queue semantics: each node depends on the previous one. The
  // makespan must equal the insertion-order sum with the same accumulation
  // order — bit-identical, not just approximately equal.
  EventGraph g;
  const double durations[] = {1e-3, 3.7e-5, 0.25, 1.0 / 3.0, 5.5e-9};
  EventId prev = kNullEvent;
  double eager = 0.0;
  for (double d : durations) {
    prev = prev == kNullEvent ? Add(g, d, kLaneCompute)
                              : Add(g, d, kLaneCompute, {prev});
    eager += d;
  }
  auto result = ScheduleEvents(g);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->makespan_sec, eager);  // exact FP equality
  EXPECT_EQ(result->serial_sec, eager);
  EXPECT_EQ(result->critical_path_sec, eager);
}

TEST(SchedulerTest, DiamondDependency) {
  //      a(1)
  //     /    \
  //  b(2)    c(3)   (different lanes -> run concurrently)
  //     \    /
  //      d(1)
  EventGraph g;
  const EventId a = Add(g, 1.0, kLaneCompute);
  const EventId b = Add(g, 2.0, kLaneCompute, {a});
  const EventId c = Add(g, 3.0, kLaneTransfer, {a});
  const EventId d = Add(g, 1.0, kLaneCompute, {b, c});
  auto result = ScheduleEvents(g);
  ASSERT_TRUE(result.ok());
  // b and c overlap after a; d starts when the slower branch (c) finishes.
  EXPECT_DOUBLE_EQ(result->makespan_sec, 1.0 + 3.0 + 1.0);
  EXPECT_DOUBLE_EQ(result->serial_sec, 7.0);
  EXPECT_DOUBLE_EQ(result->critical_path_sec, 5.0);
  ASSERT_EQ(result->order.size(), 4u);
  const auto at = [&](EventId id) {
    for (const ScheduledEvent& e : result->order) {
      if (e.id == id) return e;
    }
    ADD_FAILURE() << "node " << id << " missing from order";
    return ScheduledEvent{};
  };
  EXPECT_DOUBLE_EQ(at(b).start_sec, 1.0);
  EXPECT_DOUBLE_EQ(at(c).start_sec, 1.0);
  EXPECT_DOUBLE_EQ(at(d).start_sec, 4.0);
  EXPECT_DOUBLE_EQ(at(d).finish_sec, 5.0);
}

TEST(SchedulerTest, OutOfOrderRetirement) {
  // A transfer gated on a slow kernel is enqueued BEFORE an independent
  // transfer; the independent one retires first despite its higher id, and
  // finishes long before the commands enqueued ahead of it.
  EventGraph g;
  const EventId slow = Add(g, 1.0, kLaneCompute);
  const EventId gated = Add(g, 0.5, kLaneTransfer, {slow});
  const EventId indep = Add(g, 0.1, kLaneTransfer);
  auto result = ScheduleEvents(g);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->order.size(), 3u);
  EXPECT_EQ(result->order[0].id, slow);
  EXPECT_EQ(result->order[1].id, indep);
  EXPECT_EQ(result->order[2].id, gated);
  EXPECT_DOUBLE_EQ(result->order[1].finish_sec, 0.1);
  EXPECT_DOUBLE_EQ(result->makespan_sec, 1.5);
}

TEST(SchedulerTest, SameLaneSerializesIndependentNodes) {
  // Independence in the graph does not mean concurrency on one engine: two
  // kernels share the compute lane and must queue behind each other.
  EventGraph g;
  Add(g, 1.0, kLaneCompute);
  Add(g, 2.0, kLaneCompute);
  auto result = ScheduleEvents(g);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->makespan_sec, 3.0);
  EXPECT_DOUBLE_EQ(result->critical_path_sec, 2.0);
}

TEST(SchedulerTest, TransferKernelOverlapAccounting) {
  // A kernel and an independent device-side copy overlap; lane busy
  // accounting must charge each engine its own seconds.
  EventGraph g;
  g.Add(CmdKind::kKernel, "k", 2.0, kLaneCompute, {});
  g.Add(CmdKind::kCopy, "", 1.5, kLaneTransfer, {});
  g.Add(CmdKind::kWrite, "", 0.25, kLaneHost, {});
  auto result = ScheduleEvents(g);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->makespan_sec, 2.0);
  EXPECT_DOUBLE_EQ(result->serial_sec, 3.75);
  ASSERT_EQ(result->lane_busy_sec.size(), 3u);
  EXPECT_DOUBLE_EQ(result->lane_busy_sec[kLaneHost], 0.25);
  EXPECT_DOUBLE_EQ(result->lane_busy_sec[kLaneCompute], 2.0);
  EXPECT_DOUBLE_EQ(result->lane_busy_sec[kLaneTransfer], 1.5);
}

TEST(SchedulerTest, UnknownDependencyIsInvalidArgument) {
  EventGraph g;
  EventId bogus = 99;
  g.Add(CmdKind::kKernel, "k", 1.0, kLaneCompute,
        std::span<const EventId>(&bogus, 1));
  auto result = ScheduleEvents(g);
  EXPECT_EQ(result.status().code(), ErrorCode::kInvalidArgument);
}

TEST(SchedulerTest, SelfDependencyIsReportedAsCycle) {
  EventGraph g;
  EventId self = 0;
  g.Add(CmdKind::kKernel, "k", 1.0, kLaneCompute,
        std::span<const EventId>(&self, 1));
  auto result = ScheduleEvents(g);
  EXPECT_EQ(result.status().code(), ErrorCode::kInvalidArgument);
}

TEST(SchedulerTest, DeterministicAcrossRepeats) {
  EventGraph g;
  const EventId a = Add(g, 0.125, kLaneCompute);
  const EventId b = Add(g, 0.5, kLaneTransfer, {a});
  Add(g, 0.25, kLaneCompute, {a});
  Add(g, 0.0625, kLaneHost, {b});
  auto first = ScheduleEvents(g);
  ASSERT_TRUE(first.ok());
  for (int i = 0; i < 10; ++i) {
    auto again = ScheduleEvents(g);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->makespan_sec, first->makespan_sec);
    ASSERT_EQ(again->order.size(), first->order.size());
    for (std::size_t j = 0; j < first->order.size(); ++j) {
      EXPECT_EQ(again->order[j].id, first->order[j].id);
      EXPECT_EQ(again->order[j].start_sec, first->order[j].start_sec);
    }
  }
}

}  // namespace
}  // namespace malisim::sim
