#include "sim/memory_system.h"

#include <gtest/gtest.h>

namespace malisim::sim {
namespace {

HierarchyConfig TwoLevelConfig() {
  HierarchyConfig config;
  config.has_l1 = true;
  config.num_cores = 2;
  config.l1 = {/*size_bytes=*/1024, /*line_bytes=*/64, /*associativity=*/2, true};
  config.l2 = {/*size_bytes=*/8192, /*line_bytes=*/64, /*associativity=*/4, true};
  return config;
}

TEST(MemoryHierarchyTest, ColdAccessMissesBothLevels) {
  MemoryHierarchy mem(TwoLevelConfig());
  const AccessOutcome out = mem.Access(0, 0x1000, 4, false);
  EXPECT_EQ(out.l1_misses, 1u);
  EXPECT_EQ(out.l2_misses, 1u);
  EXPECT_EQ(mem.dram_fill_lines(), 1u);
}

TEST(MemoryHierarchyTest, SecondAccessHitsL1) {
  MemoryHierarchy mem(TwoLevelConfig());
  mem.Access(0, 0x1000, 4, false);
  const AccessOutcome out = mem.Access(0, 0x1000, 4, false);
  EXPECT_EQ(out.l1_misses, 0u);
  EXPECT_EQ(out.l2_misses, 0u);
}

TEST(MemoryHierarchyTest, OtherCoreHitsSharedL2) {
  MemoryHierarchy mem(TwoLevelConfig());
  mem.Access(0, 0x1000, 4, false);
  const AccessOutcome out = mem.Access(1, 0x1000, 4, false);
  EXPECT_EQ(out.l1_misses, 1u);   // core 1's private L1 is cold
  EXPECT_EQ(out.l2_misses, 0u);   // shared L2 has the line
}

TEST(MemoryHierarchyTest, NoL1ConfigurationGoesStraightToL2) {
  HierarchyConfig config = TwoLevelConfig();
  config.has_l1 = false;
  MemoryHierarchy mem(config);
  const AccessOutcome out = mem.Access(0, 0x2000, 4, false);
  EXPECT_EQ(out.l1_misses, 1u);  // counted as "reaches L2"
  EXPECT_EQ(out.l2_misses, 1u);
}

TEST(MemoryHierarchyTest, SequentialStreamDetected) {
  MemoryHierarchy mem(TwoLevelConfig());
  for (std::uint64_t addr = 0; addr < 64 * 256; addr += 64) {
    mem.Access(0, addr, 4, false);
  }
  EXPECT_GT(mem.sequential_fraction(), 0.95);
}

TEST(MemoryHierarchyTest, InterleavedStreamsStillDetected) {
  // Three interleaved streams (a[i], b[i], c[i] pattern): the per-core
  // stream history recognizes each as sequential.
  MemoryHierarchy mem(TwoLevelConfig());
  const std::uint64_t base_a = 0, base_b = 1 << 20, base_c = 2 << 20;
  for (std::uint64_t i = 0; i < 256; ++i) {
    mem.Access(0, base_a + i * 64, 4, false);
    mem.Access(0, base_b + i * 64, 4, false);
    mem.Access(0, base_c + i * 64, 4, true);
  }
  EXPECT_GT(mem.sequential_fraction(), 0.9);
}

TEST(MemoryHierarchyTest, RandomAccessesNotSequential) {
  MemoryHierarchy mem(TwoLevelConfig());
  std::uint64_t addr = 12345;
  for (int i = 0; i < 2000; ++i) {
    addr = addr * 6364136223846793005ULL + 1442695040888963407ULL;
    mem.Access(0, (addr >> 16) % (64 << 20), 4, false);
  }
  EXPECT_LT(mem.sequential_fraction(), 0.2);
}

TEST(MemoryHierarchyTest, DirtyL2EvictionCountsWriteback) {
  HierarchyConfig config = TwoLevelConfig();
  config.has_l1 = false;
  config.l2 = {/*size_bytes=*/256, /*line_bytes=*/64, /*associativity=*/1, true};
  MemoryHierarchy mem(config);
  mem.Access(0, 0, 4, true);         // dirty line in set 0
  mem.Access(0, 256, 4, false);      // evicts it (direct-mapped, 4 sets)
  EXPECT_EQ(mem.dram_writeback_lines(), 1u);
}

TEST(MemoryHierarchyTest, DramBytesCoverFillsAndWritebacks) {
  MemoryHierarchy mem(TwoLevelConfig());
  for (std::uint64_t addr = 0; addr < 64 * 64; addr += 64) {
    mem.Access(0, addr, 4, true);
  }
  EXPECT_EQ(mem.dram_bytes(),
            (mem.dram_fill_lines() + mem.dram_writeback_lines()) * 64);
}

TEST(MemoryHierarchyTest, FlushForgetsContents) {
  MemoryHierarchy mem(TwoLevelConfig());
  mem.Access(0, 0x1000, 4, false);
  mem.Flush();
  const AccessOutcome out = mem.Access(0, 0x1000, 4, false);
  EXPECT_EQ(out.l2_misses, 1u);
}

TEST(MemoryHierarchyTest, ResetStatsKeepsContents) {
  MemoryHierarchy mem(TwoLevelConfig());
  mem.Access(0, 0x1000, 4, false);
  mem.ResetStats();
  EXPECT_EQ(mem.dram_fill_lines(), 0u);
  // Line still cached: no new fill.
  mem.Access(0, 0x1000, 4, false);
  EXPECT_EQ(mem.dram_fill_lines(), 0u);
}

TEST(MemoryHierarchyTest, L1WritebackLandsInL2NotDram) {
  HierarchyConfig config = TwoLevelConfig();
  MemoryHierarchy mem(config);
  // Dirty a line in L1, then stream enough lines mapping to its L1 set to
  // evict it; its writeback should be absorbed by the (larger) L2.
  mem.Access(0, 0, 4, true);
  mem.Access(0, 512, 4, false);   // same L1 set (8 sets x 64B)
  mem.Access(0, 1024, 4, false);  // evicts line 0 from L1
  EXPECT_EQ(mem.dram_writeback_lines(), 0u);
}

}  // namespace
}  // namespace malisim::sim
