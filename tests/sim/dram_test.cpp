#include "sim/dram.h"

#include <gtest/gtest.h>

namespace malisim::sim {
namespace {

TEST(DramTest, ZeroLinesIsFree) {
  DramModel dram(DramConfig{});
  EXPECT_EQ(dram.TransferTime(0, 0, 1.0), 0.0);
}

TEST(DramTest, SingleLinePaysLatency) {
  DramConfig config;
  DramModel dram(config);
  EXPECT_DOUBLE_EQ(dram.TransferTime(1, 0, 1.0), config.first_word_latency_sec);
}

TEST(DramTest, LargeStreamingTransferIsBandwidthBound) {
  DramConfig config;
  DramModel dram(config);
  const std::uint64_t lines = 1 << 20;  // 64 MiB
  const double t = dram.TransferTime(lines, 0, 1.0);
  const double expected = static_cast<double>(lines) * config.line_bytes /
                          (config.peak_bandwidth_bytes_per_sec *
                           config.streaming_efficiency);
  EXPECT_NEAR(t, expected, expected * 1e-9);
}

TEST(DramTest, ScatteredSlowerThanStreaming) {
  DramModel dram(DramConfig{});
  const double streaming = dram.TransferTime(10000, 0, 1.0);
  const double scattered = dram.TransferTime(10000, 0, 0.0);
  EXPECT_GT(scattered, streaming);
}

TEST(DramTest, EffectiveBandwidthInterpolatesMonotonically) {
  DramModel dram(DramConfig{});
  double prev = 0.0;
  for (double f = 0.0; f <= 1.0; f += 0.1) {
    const double bw = dram.EffectiveBandwidth(f);
    EXPECT_GE(bw, prev);
    prev = bw;
  }
  EXPECT_DOUBLE_EQ(
      dram.EffectiveBandwidth(1.0),
      DramConfig{}.peak_bandwidth_bytes_per_sec * DramConfig{}.streaming_efficiency);
}

TEST(DramTest, SequentialFractionIsClamped) {
  DramModel dram(DramConfig{});
  EXPECT_DOUBLE_EQ(dram.EffectiveBandwidth(-1.0), dram.EffectiveBandwidth(0.0));
  EXPECT_DOUBLE_EQ(dram.EffectiveBandwidth(2.0), dram.EffectiveBandwidth(1.0));
}

TEST(DramTest, StatsAccumulateTraffic) {
  DramModel dram(DramConfig{});
  dram.TransferTime(10, 5, 1.0);
  dram.TransferTime(2, 0, 1.0);
  EXPECT_EQ(dram.stats().bytes_read, 12u * 64);
  EXPECT_EQ(dram.stats().bytes_written, 5u * 64);
  EXPECT_EQ(dram.stats().bursts, 17u);
  dram.ResetStats();
  EXPECT_EQ(dram.stats().total_bytes(), 0u);
}

TEST(DramTest, TimeScalesLinearlyWithLines) {
  DramModel dram(DramConfig{});
  const double t1 = dram.TransferTime(100000, 0, 1.0);
  const double t2 = dram.TransferTime(200000, 0, 1.0);
  EXPECT_NEAR(t2 / t1, 2.0, 1e-6);
}

}  // namespace
}  // namespace malisim::sim
