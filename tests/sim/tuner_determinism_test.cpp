// Determinism fuzz battery for sim::Tuner: the full search trajectory —
// not just the winner — must be bit-identical for any host thread count
// and across repeated runs, for the exhaustive and the hill-climb regime,
// with and without skipped candidates, over a family of seeded synthetic
// landscapes. This is the engine-level half of the contract; the
// benchmark-facing half (TuneBenchmark across thread counts) lives in
// tuner_conformance_test.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/tuner.h"

namespace malisim::sim {
namespace {

/// Trajectories compare bit-for-bit: the score doubles must be identical,
/// not merely close.
void ExpectIdentical(const TunerResult& a, const TunerResult& b) {
  EXPECT_EQ(a.best.CanonicalKey(), b.best.CanonicalKey());
  EXPECT_EQ(a.best_score, b.best_score);
  EXPECT_EQ(a.best_measurement.seconds, b.best_measurement.seconds);
  EXPECT_EQ(a.best_measurement.energy_j, b.best_measurement.energy_j);
  EXPECT_EQ(a.evaluated, b.evaluated);
  EXPECT_EQ(a.skipped, b.skipped);
  EXPECT_EQ(a.exhaustive, b.exhaustive);
  ASSERT_EQ(a.trajectory.size(), b.trajectory.size());
  for (std::size_t i = 0; i < a.trajectory.size(); ++i) {
    EXPECT_EQ(a.trajectory[i].config_key, b.trajectory[i].config_key)
        << "trajectory diverges at step " << i;
    EXPECT_EQ(a.trajectory[i].score, b.trajectory[i].score) << "step " << i;
    EXPECT_EQ(a.trajectory[i].ok, b.trajectory[i].ok) << "step " << i;
  }
}

/// Seeded rugged landscape: a deterministic pseudo-random score per
/// config, derived from the config key — no global RNG, so the eval is a
/// pure function safe to call from any pool worker.
TuningEvalFn RuggedLandscape(std::uint64_t landscape_seed,
                             int fail_modulus = 0) {
  return [landscape_seed,
          fail_modulus](const TuningConfig& config)
             -> StatusOr<TuningMeasurement> {
    const std::uint64_t h =
        Fnv1a64(std::to_string(landscape_seed) + "|" + config.CanonicalKey());
    if (fail_modulus > 0 &&
        h % static_cast<std::uint64_t>(fail_modulus) == 0) {
      return InternalError("injected deterministic failure");
    }
    TuningMeasurement m;
    m.seconds = 1.0 + static_cast<double>(h % 10007) / 1000.0;
    m.energy_j = 1.0 + static_cast<double>((h >> 17) % 9973) / 1000.0;
    return m;
  };
}

TuningSpace SmallSpace() {
  TuningSpace space;
  space.axes = {{"vec", {1, 2, 4}},
                {"wg", {32, 64, 128, 256}},
                {"copy", {0, 1}}};
  return space;
}

/// 6^5 = 7776 points: far beyond the exhaustive limit, so the hill-climb
/// with restarts runs.
TuningSpace LargeSpace() {
  TuningSpace space;
  for (const char* name : {"a", "b", "c", "d", "e"}) {
    space.axes.push_back({name, {0, 1, 2, 3, 4, 5}});
  }
  return space;
}

TunerOptions Options(Objective objective, std::uint64_t seed, int threads) {
  TunerOptions options;
  options.objective = objective;
  options.seed = seed;
  options.threads = threads;
  return options;
}

TEST(TunerDeterminismTest, ExhaustiveIdenticalAcrossThreadCounts) {
  const TuningSpace space = SmallSpace();
  const TuningEvalFn eval = RuggedLandscape(7);
  auto base = Tuner(Options(Objective::kTime, 42, 1)).Search(space, eval);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  EXPECT_TRUE(base->exhaustive);
  for (int threads : {2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    auto run = Tuner(Options(Objective::kTime, 42, threads))
                   .Search(space, eval);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    ExpectIdentical(*base, *run);
  }
}

TEST(TunerDeterminismTest, HillClimbIdenticalAcrossThreadCounts) {
  const TuningSpace space = LargeSpace();
  const TuningEvalFn eval = RuggedLandscape(11);
  auto base = Tuner(Options(Objective::kEnergy, 42, 1)).Search(space, eval);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  EXPECT_FALSE(base->exhaustive);
  for (int threads : {2, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    auto run = Tuner(Options(Objective::kEnergy, 42, threads))
                   .Search(space, eval);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    ExpectIdentical(*base, *run);
  }
}

TEST(TunerDeterminismTest, RepeatedRunsIdentical) {
  const TuningSpace space = LargeSpace();
  const TuningEvalFn eval = RuggedLandscape(13);
  const TunerOptions options = Options(Objective::kEdp, 99, 4);
  auto first = Tuner(options).Search(space, eval);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  for (int run = 0; run < 3; ++run) {
    SCOPED_TRACE("run " + std::to_string(run));
    auto again = Tuner(options).Search(space, eval);
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    ExpectIdentical(*first, *again);
  }
}

TEST(TunerDeterminismTest, SkipsAreDeterministicAcrossThreadCounts) {
  // Every 3rd config (by hash) fails: the skip pattern, the skip count and
  // the surviving winner must not depend on the thread count.
  const TuningSpace space = SmallSpace();
  const TuningEvalFn eval = RuggedLandscape(17, /*fail_modulus=*/3);
  auto base = Tuner(Options(Objective::kTime, 42, 1)).Search(space, eval);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  EXPECT_GT(base->skipped, 0u);
  for (int threads : {2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    auto run = Tuner(Options(Objective::kTime, 42, threads))
                   .Search(space, eval);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    ExpectIdentical(*base, *run);
  }
}

TEST(TunerDeterminismTest, FuzzManySeedsAndObjectives) {
  // The fuzz sweep: 8 landscapes x 3 search seeds x 3 objectives, each
  // compared threads=1 vs threads=4, hill-climb regime, with failures.
  const TuningSpace space = LargeSpace();
  for (std::uint64_t landscape = 1; landscape <= 8; ++landscape) {
    const TuningEvalFn eval =
        RuggedLandscape(landscape, /*fail_modulus=*/5);
    for (std::uint64_t seed : {1ull, 42ull, 1337ull}) {
      for (Objective objective : kAllObjectives) {
        SCOPED_TRACE("landscape=" + std::to_string(landscape) +
                     " seed=" + std::to_string(seed) + " objective=" +
                     std::string(ObjectiveName(objective)));
        auto serial =
            Tuner(Options(objective, seed, 1)).Search(space, eval);
        auto threaded =
            Tuner(Options(objective, seed, 4)).Search(space, eval);
        ASSERT_TRUE(serial.ok()) << serial.status().ToString();
        ASSERT_TRUE(threaded.ok()) << threaded.status().ToString();
        ExpectIdentical(*serial, *threaded);
      }
    }
  }
}

TEST(TunerDeterminismTest, SeedSelectsRestartStreamButStaysOptimalOnBowl) {
  // On a convex landscape every restart converges: different seeds may
  // walk different trajectories but must agree on the optimum.
  TuningSpace space;
  space.axes = {{"x", {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}},
                {"y", {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}},
                {"z", {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}}};
  ASSERT_GT(space.Size(), TunerOptions().exhaustive_limit);
  const TuningEvalFn bowl =
      [](const TuningConfig& c) -> StatusOr<TuningMeasurement> {
    const double x = static_cast<double>(c.Get("x", 0)) - 6.0;
    const double y = static_cast<double>(c.Get("y", 0)) - 3.0;
    const double z = static_cast<double>(c.Get("z", 0)) - 8.0;
    TuningMeasurement m;
    m.seconds = 1.0 + x * x + y * y + z * z;
    m.energy_j = m.seconds;
    return m;
  };
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    auto run = Tuner(Options(Objective::kTime, seed, 2)).Search(space, bowl);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(run->best.CanonicalKey(), "x=6,y=3,z=8");
  }
}

}  // namespace
}  // namespace malisim::sim
