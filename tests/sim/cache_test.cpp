#include "sim/cache.h"

#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/prng.h"

namespace malisim::sim {
namespace {

CacheConfig SmallCache() {
  return CacheConfig{/*size_bytes=*/1024, /*line_bytes=*/64,
                     /*associativity=*/2, /*write_allocate=*/true};
}

TEST(CacheTest, ColdMissThenHit) {
  CacheModel cache(SmallCache());
  EXPECT_EQ(cache.Access(0x1000, 4, false).misses, 1u);
  EXPECT_EQ(cache.Access(0x1000, 4, false).misses, 0u);
  EXPECT_EQ(cache.Access(0x1020, 4, false).misses, 0u);  // same line
}

TEST(CacheTest, AccessSpanningTwoLines) {
  CacheModel cache(SmallCache());
  const CacheAccessResult r = cache.Access(0x103C, 8, false);
  EXPECT_EQ(r.lines_touched, 2u);
  EXPECT_EQ(r.misses, 2u);
}

TEST(CacheTest, LruEvictsOldest) {
  // 2-way, 8 sets: three lines mapping to the same set evict the LRU one.
  CacheModel cache(SmallCache());
  const std::uint64_t set_stride = 64 * 8;
  cache.Access(0, 4, false);
  cache.Access(set_stride, 4, false);
  cache.Access(0, 4, false);              // touch line 0: line at set_stride is LRU
  cache.Access(2 * set_stride, 4, false);  // evicts set_stride
  EXPECT_EQ(cache.Access(0, 4, false).misses, 0u);
  EXPECT_EQ(cache.Access(set_stride, 4, false).misses, 1u);
}

TEST(CacheTest, DirtyEvictionCountsWriteback) {
  CacheModel cache(SmallCache());
  const std::uint64_t set_stride = 64 * 8;
  cache.Access(0, 4, true);  // dirty
  cache.Access(set_stride, 4, false);
  const CacheAccessResult r = cache.Access(2 * set_stride, 4, false);
  EXPECT_EQ(r.writebacks, 1u);
}

TEST(CacheTest, CleanEvictionNoWriteback) {
  CacheModel cache(SmallCache());
  const std::uint64_t set_stride = 64 * 8;
  cache.Access(0, 4, false);
  cache.Access(set_stride, 4, false);
  EXPECT_EQ(cache.Access(2 * set_stride, 4, false).writebacks, 0u);
}

TEST(CacheTest, NonAllocatingWriteBypasses) {
  CacheConfig config = SmallCache();
  config.write_allocate = false;
  CacheModel cache(config);
  EXPECT_EQ(cache.Access(0x40, 4, true).misses, 1u);
  // Still a miss: the write did not allocate.
  EXPECT_EQ(cache.Access(0x40, 4, false).misses, 1u);
}

TEST(CacheTest, FlushInvalidatesAndCountsDirtyLines) {
  CacheModel cache(SmallCache());
  cache.Access(0, 4, true);
  cache.Access(64, 4, false);
  const std::uint64_t before = cache.stats().writebacks;
  cache.Flush();
  EXPECT_EQ(cache.stats().writebacks, before + 1);
  EXPECT_EQ(cache.Access(0, 4, false).misses, 1u);
}

TEST(CacheTest, ZeroSizeAccessIsNoop) {
  CacheModel cache(SmallCache());
  const CacheAccessResult r = cache.Access(0, 0, false);
  EXPECT_EQ(r.lines_touched, 0u);
  EXPECT_EQ(cache.stats().accesses, 0u);
}

TEST(CacheTest, WorkingSetSmallerThanCacheEventuallyAllHits) {
  CacheModel cache(SmallCache());  // 1 KiB = 16 lines
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t addr = 0; addr < 512; addr += 64) {
      cache.Access(addr, 4, false);
    }
  }
  // Second pass: all 8 lines hit.
  EXPECT_EQ(cache.stats().misses, 8u);
  EXPECT_EQ(cache.stats().hits, 8u);
}

TEST(CacheTest, WorkingSetLargerThanCacheThrashes) {
  CacheModel cache(SmallCache());  // 16 lines
  // 32 lines streamed twice: LRU keeps none across passes.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t addr = 0; addr < 32 * 64; addr += 64) {
      cache.Access(addr, 4, false);
    }
  }
  EXPECT_EQ(cache.stats().misses, 64u);
}

// ---- Parameterized property sweep over cache geometries ----

using CacheGeometry = std::tuple<int /*size_kb*/, int /*ways*/>;

class CachePropertyTest : public ::testing::TestWithParam<CacheGeometry> {};

TEST_P(CachePropertyTest, HitsPlusMissesEqualsAccesses) {
  const auto [size_kb, ways] = GetParam();
  CacheModel cache(CacheConfig{static_cast<std::uint64_t>(size_kb) * 1024, 64,
                               static_cast<std::uint32_t>(ways), true});
  Xoshiro256 rng(size_kb * 31 + ways);
  for (int i = 0; i < 20000; ++i) {
    cache.Access(rng.NextBounded(1u << 20), 4, rng.NextDouble() < 0.3);
  }
  const CacheStats& s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, s.accesses);
  EXPECT_GE(s.hit_rate(), 0.0);
  EXPECT_LE(s.hit_rate(), 1.0);
}

TEST_P(CachePropertyTest, RepeatedSingleLineAlwaysHitsAfterFirst) {
  const auto [size_kb, ways] = GetParam();
  CacheModel cache(CacheConfig{static_cast<std::uint64_t>(size_kb) * 1024, 64,
                               static_cast<std::uint32_t>(ways), true});
  for (int i = 0; i < 100; ++i) cache.Access(0x12340, 4, false);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST_P(CachePropertyTest, LargerCacheNeverMissesMoreOnSameTrace) {
  const auto [size_kb, ways] = GetParam();
  CacheModel small(CacheConfig{static_cast<std::uint64_t>(size_kb) * 1024, 64,
                               static_cast<std::uint32_t>(ways), true});
  CacheModel big(CacheConfig{static_cast<std::uint64_t>(size_kb) * 4096, 64,
                             static_cast<std::uint32_t>(ways), true});
  // Sequential streaming trace: LRU caches obey inclusion on it.
  for (std::uint64_t rep = 0; rep < 3; ++rep) {
    for (std::uint64_t addr = 0; addr < 256 * 1024; addr += 64) {
      small.Access(addr, 4, false);
      big.Access(addr, 4, false);
    }
  }
  EXPECT_LE(big.stats().misses, small.stats().misses);
}

INSTANTIATE_TEST_SUITE_P(Geometries, CachePropertyTest,
                         ::testing::Combine(::testing::Values(1, 8, 32, 1024),
                                            ::testing::Values(1, 2, 4, 16)));

}  // namespace
}  // namespace malisim::sim
