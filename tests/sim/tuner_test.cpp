// Unit tests for the sim::Tuner search engine on synthetic spaces: the
// exhaustive/hill-climb split, objective selection, skip accounting,
// tie-breaking, and the cache-key/config-key plumbing. Thread-count and
// repeated-run determinism has its own battery (tuner_determinism_test);
// the benchmark-facing behavior lives in tuner_conformance_test.
#include "sim/tuner.h"

#include <atomic>
#include <cmath>
#include <mutex>
#include <set>
#include <string>

#include <gtest/gtest.h>

namespace malisim::sim {
namespace {

TuningSpace GridSpace() {
  TuningSpace space;
  space.axes = {{"x", {0, 1, 2, 3, 4, 5, 6, 7}}, {"y", {0, 1, 2, 3, 4, 5}}};
  return space;
}

/// Convex bowl with minimum at (5, 2): hill-climb from any start finds it.
TuningMeasurement Bowl(const TuningConfig& config) {
  const double x = static_cast<double>(config.Get("x", 0));
  const double y = static_cast<double>(config.Get("y", 0));
  TuningMeasurement m;
  m.seconds = 1.0 + (x - 5.0) * (x - 5.0) + (y - 2.0) * (y - 2.0);
  m.energy_j = 2.0 * m.seconds;
  return m;
}

TEST(TuningSpaceTest, SizeAndEnumerationOrder) {
  TuningSpace space = GridSpace();
  EXPECT_EQ(space.Size(), 48u);
  // Axis 0 is the most significant digit: index 0 = (x=0,y=0), 1 = (x=0,y=1).
  EXPECT_EQ(space.At(0).CanonicalKey(), "x=0,y=0");
  EXPECT_EQ(space.At(1).CanonicalKey(), "x=0,y=1");
  EXPECT_EQ(space.At(6).CanonicalKey(), "x=1,y=0");
  EXPECT_EQ(space.At(47).CanonicalKey(), "x=7,y=5");
}

TEST(TuningSpaceTest, ValidityPredicateFilters) {
  TuningSpace space = GridSpace();
  space.valid = [](const TuningConfig& c) {
    return c.Get("x", 0) + c.Get("y", 0) <= 4;
  };
  EXPECT_TRUE(space.IsValid(space.At(0)));
  EXPECT_FALSE(space.IsValid(space.At(47)));
}

TEST(TuningConfigTest, GetSetAndFallback) {
  TuningConfig config;
  config.Set("wg", 128);
  config.Set("vec", 4);
  EXPECT_EQ(config.Get("wg", 0), 128);
  EXPECT_EQ(config.Get("absent", 7), 7);
  config.Set("wg", 64);
  EXPECT_EQ(config.Get("wg", 0), 64);
  EXPECT_EQ(config.CanonicalKey(), "wg=64,vec=4");
}

TEST(TunerTest, ExhaustiveFindsGlobalMinimum) {
  TunerOptions options;
  options.objective = Objective::kTime;
  Tuner tuner(options);
  StatusOr<TunerResult> result =
      tuner.Search(GridSpace(), [](const TuningConfig& c) {
        return StatusOr<TuningMeasurement>(Bowl(c));
      });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->exhaustive);
  EXPECT_EQ(result->best.CanonicalKey(), "x=5,y=2");
  EXPECT_DOUBLE_EQ(result->best_score, 1.0);
  EXPECT_EQ(result->evaluated, 48u);
  EXPECT_EQ(result->skipped, 0u);
  EXPECT_EQ(result->trajectory.size(), 48u);
}

TEST(TunerTest, ObjectiveSelectorChangesWinner) {
  // time favors x=0 (fast, hungry); energy favors x=2 (slow, frugal); EDP
  // picks the middle ground x=1.
  TuningSpace space;
  space.axes = {{"x", {0, 1, 2}}};
  auto eval = [](const TuningConfig& c) -> StatusOr<TuningMeasurement> {
    TuningMeasurement m;
    switch (c.Get("x", 0)) {
      case 0: m.seconds = 1.0; m.energy_j = 9.0; break;
      case 1: m.seconds = 2.0; m.energy_j = 3.0; break;
      default: m.seconds = 8.0; m.energy_j = 1.0; break;
    }
    return m;
  };
  for (const auto& [objective, want] :
       {std::pair{Objective::kTime, std::string("x=0")},
        std::pair{Objective::kEnergy, std::string("x=2")},
        std::pair{Objective::kEdp, std::string("x=1")}}) {
    TunerOptions options;
    options.objective = objective;
    StatusOr<TunerResult> result = Tuner(options).Search(space, eval);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->best.CanonicalKey(), want)
        << "objective " << ObjectiveName(objective);
  }
}

TEST(TunerTest, TieBreakKeepsFirstEnumerated) {
  TuningSpace space;
  space.axes = {{"x", {0, 1, 2, 3}}};
  StatusOr<TunerResult> result =
      Tuner(TunerOptions()).Search(space, [](const TuningConfig&) {
        TuningMeasurement m;
        m.seconds = 5.0;
        m.energy_j = 5.0;
        return StatusOr<TuningMeasurement>(m);
      });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->best.CanonicalKey(), "x=0");
}

TEST(TunerTest, FailedCandidatesAreSkippedNotFatal) {
  TuningSpace space;
  space.axes = {{"x", {0, 1, 2, 3}}};
  StatusOr<TunerResult> result = Tuner(TunerOptions())
      .Search(space, [](const TuningConfig& c) -> StatusOr<TuningMeasurement> {
        if (c.Get("x", 0) % 2 == 0) {
          return BuildFailureError("synthetic compiler fault");
        }
        TuningMeasurement m;
        m.seconds = 10.0 - static_cast<double>(c.Get("x", 0));
        m.energy_j = m.seconds;
        return m;
      });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->best.CanonicalKey(), "x=3");
  EXPECT_EQ(result->evaluated, 2u);
  EXPECT_EQ(result->skipped, 2u);
}

TEST(TunerTest, AllCandidatesFailedIsNotFound) {
  TuningSpace space;
  space.axes = {{"x", {0, 1, 2}}};
  StatusOr<TunerResult> result = Tuner(TunerOptions())
      .Search(space, [](const TuningConfig&) -> StatusOr<TuningMeasurement> {
        return ResourceExhaustedError("CL_OUT_OF_RESOURCES");
      });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kNotFound);
}

TEST(TunerTest, EmptySpaceIsInvalidArgument) {
  StatusOr<TunerResult> result =
      Tuner(TunerOptions()).Search(TuningSpace(), [](const TuningConfig&) {
        return StatusOr<TuningMeasurement>(TuningMeasurement());
      });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kInvalidArgument);
}

TEST(TunerTest, HillClimbFindsBowlMinimumWithoutExhausting) {
  TuningSpace space;
  space.axes = {{"x", {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}},
                {"y", {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}},
                {"z", {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}}};
  TunerOptions options;
  options.exhaustive_limit = 100;  // 1000-point space -> hill-climb
  options.restarts = 4;
  options.max_steps = 40;
  std::atomic<int> evals{0};
  StatusOr<TunerResult> result =
      Tuner(options).Search(space, [&](const TuningConfig& c) {
        ++evals;
        const double x = static_cast<double>(c.Get("x", 0));
        const double y = static_cast<double>(c.Get("y", 0));
        const double z = static_cast<double>(c.Get("z", 0));
        TuningMeasurement m;
        m.seconds = 1.0 + (x - 6) * (x - 6) + (y - 3) * (y - 3) +
                    (z - 8) * (z - 8);
        m.energy_j = m.seconds;
        return StatusOr<TuningMeasurement>(m);
      });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->exhaustive);
  EXPECT_EQ(result->best.CanonicalKey(), "x=6,y=3,z=8");
  // The climb converges without sweeping the space.
  EXPECT_LT(evals.load(), 500);
  EXPECT_EQ(result->evaluated + result->skipped, result->trajectory.size());
}

TEST(TunerTest, ThreadedSearchEvaluatesEachConfigOnce) {
  TuningSpace space = GridSpace();
  TunerOptions options;
  options.threads = 4;
  std::mutex mu;
  std::set<std::string> seen;
  bool duplicate = false;
  StatusOr<TunerResult> result =
      Tuner(options).Search(space, [&](const TuningConfig& c) {
        {
          std::lock_guard<std::mutex> lock(mu);
          duplicate |= !seen.insert(c.CanonicalKey()).second;
        }
        return StatusOr<TuningMeasurement>(Bowl(c));
      });
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(duplicate);
  EXPECT_EQ(seen.size(), 48u);
  EXPECT_EQ(result->best.CanonicalKey(), "x=5,y=2");
}

TEST(ObjectiveTest, ParseRoundTrip) {
  for (const Objective o : kAllObjectives) {
    Objective parsed = Objective::kTime;
    EXPECT_TRUE(ParseObjective(ObjectiveName(o), &parsed));
    EXPECT_EQ(parsed, o);
  }
  Objective parsed = Objective::kTime;
  EXPECT_FALSE(ParseObjective("joules", &parsed));
}

TEST(CacheKeyTest, SensitiveToEveryIngredient) {
  TuningSpace space = GridSpace();
  DeviceCaps caps;
  caps.name = "Mali-T604 (modelled)";
  caps.kind = BackendKind::kMali;
  caps.compute_units = 4;
  caps.max_work_group_size = 256;
  caps.clock_hz = 533e6;
  const std::string base =
      TuningCacheKey("fp:abc", caps, Objective::kTime, space);
  EXPECT_NE(base, TuningCacheKey("fp:def", caps, Objective::kTime, space));
  EXPECT_NE(base, TuningCacheKey("fp:abc", caps, Objective::kEnergy, space));
  DeviceCaps other = caps;
  other.compute_units = 8;
  EXPECT_NE(base, TuningCacheKey("fp:abc", other, Objective::kTime, space));
  TuningSpace smaller = space;
  smaller.axes[0].values.pop_back();
  EXPECT_NE(base, TuningCacheKey("fp:abc", caps, Objective::kTime, smaller));
  // throughput_hint seeds the hetero split heuristic but never a modelled
  // time, so it must NOT invalidate cached winners.
  DeviceCaps hinted = caps;
  hinted.throughput_hint = 1e9;
  EXPECT_EQ(base, TuningCacheKey("fp:abc", hinted, Objective::kTime, space));
}

TEST(ConfigFromKeyTest, ResolvesAgainstSpace) {
  TuningSpace space = GridSpace();
  StatusOr<TuningConfig> config = ConfigFromKey(space, "x=5,y=2");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->CanonicalKey(), "x=5,y=2");
  // Omitted axes resolve to the axis's first value.
  config = ConfigFromKey(space, "y=3");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->CanonicalKey(), "x=0,y=3");
  // Out-of-space values and unknown axes are stale entries, not crashes.
  EXPECT_FALSE(ConfigFromKey(space, "x=99").ok());
  EXPECT_FALSE(ConfigFromKey(space, "q=1").ok());
  EXPECT_FALSE(ConfigFromKey(space, "husk").ok());
}

}  // namespace
}  // namespace malisim::sim
