// Tests for the heterogeneous CPU+GPU co-execution backend: ratio-sweep
// endpoints reproduce the single-backend results bit-for-bit, split runs
// execute every work-group exactly once with busy-second (energy)
// conservation, and self-tuning is deterministic.
#include "sim/hetero_device.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "cpu/a15_device.h"
#include "kir/builder.h"
#include "mali/compiler.h"
#include "mali/t604_device.h"

namespace malisim::sim {
namespace {

using kir::ArgKind;
using kir::KernelBuilder;
using kir::ScalarType;
using kir::Val;

constexpr std::size_t kN = 4096;

kir::Program ScaleKernel() {
  KernelBuilder kb("scale");
  auto in = kb.ArgBuffer("in", ScalarType::kF32, ArgKind::kBufferRO);
  auto out = kb.ArgBuffer("out", ScalarType::kF32, ArgKind::kBufferWO);
  Val gid = kb.GlobalId(0);
  kb.Store(out, gid, kb.Load(in, gid) * 3.0);
  return *kb.Build();
}

kir::Bindings Bind(std::vector<float>& in, std::vector<float>& out) {
  kir::Bindings b;
  b.buffers = {
      {reinterpret_cast<std::byte*>(in.data()), 0x100000, in.size() * 4},
      {reinterpret_cast<std::byte*>(out.data()), 0x200000, out.size() * 4}};
  return b;
}

kir::LaunchConfig Launch() {
  kir::LaunchConfig config;
  config.global_size = {kN, 1, 1};
  config.local_size = {64, 1, 1};
  return config;
}

struct Fixture {
  kir::Program program = ScaleKernel();
  mali::CompiledKernel compiled;
  mali::MaliT604Device gpu;
  cpu::CortexA15Device cpu;

  Fixture() {
    auto c = mali::CompileForMali(program, mali::MaliTimingParams(),
                                  mali::MaliCompilerParams());
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    compiled = *c;
  }
  KernelHandle handle() const { return {&program, &compiled}; }
};

TEST(HeteroDeviceTest, CapsMergeChildren) {
  Fixture f;
  HeteroDevice hetero(&f.gpu, &f.cpu);
  EXPECT_EQ(hetero.caps().kind, BackendKind::kHetero);
  EXPECT_EQ(hetero.caps().compute_units,
            f.gpu.caps().compute_units + f.cpu.caps().compute_units);
  EXPECT_EQ(hetero.caps().throughput_hint,
            f.gpu.caps().throughput_hint + f.cpu.caps().throughput_hint);
}

TEST(HeteroDeviceTest, RatioOneMatchesPureMaliBitForBit) {
  Fixture hetero_f;
  HeteroDevice hetero(&hetero_f.gpu, &hetero_f.cpu, HeteroConfig{1.0});
  std::vector<float> in(kN, 2.0f), out(kN, 0.0f);
  auto split = hetero.RunKernel(hetero_f.handle(), Launch(), Bind(in, out));
  ASSERT_TRUE(split.ok()) << split.status().ToString();

  Fixture mali_f;
  std::vector<float> in2(kN, 2.0f), out2(kN, 0.0f);
  auto pure = mali_f.gpu.RunKernel(mali_f.handle(), Launch(), Bind(in2, out2));
  ASSERT_TRUE(pure.ok()) << pure.status().ToString();

  EXPECT_EQ(split->seconds, pure->seconds);  // bit-identical forwarding
  EXPECT_EQ(split->profile.gpu_on, pure->profile.gpu_on);
  for (int i = 0; i < power::kNumMaliCores; ++i) {
    EXPECT_EQ(split->profile.gpu_core_busy[i], pure->profile.gpu_core_busy[i]);
  }
  EXPECT_EQ(split->profile.dram_bytes, pure->profile.dram_bytes);
  EXPECT_EQ(split->stats.Get("hetero.ratio"), 1.0);
  EXPECT_EQ(out, out2);
}

TEST(HeteroDeviceTest, RatioZeroMatchesPureA15BitForBit) {
  Fixture hetero_f;
  HeteroDevice hetero(&hetero_f.gpu, &hetero_f.cpu, HeteroConfig{0.0});
  std::vector<float> in(kN, 2.0f), out(kN, 0.0f);
  auto split = hetero.RunKernel(hetero_f.handle(), Launch(), Bind(in, out));
  ASSERT_TRUE(split.ok()) << split.status().ToString();

  Fixture cpu_f;
  std::vector<float> in2(kN, 2.0f), out2(kN, 0.0f);
  auto pure = cpu_f.cpu.RunKernel(cpu_f.handle(), Launch(), Bind(in2, out2));
  ASSERT_TRUE(pure.ok()) << pure.status().ToString();

  EXPECT_EQ(split->seconds, pure->seconds);
  EXPECT_FALSE(split->profile.gpu_on);
  for (int i = 0; i < power::kNumA15Cores; ++i) {
    EXPECT_EQ(split->profile.cpu_busy[i], pure->profile.cpu_busy[i]);
  }
  EXPECT_EQ(split->stats.Get("hetero.ratio"), 0.0);
  EXPECT_EQ(out, out2);
}

TEST(HeteroDeviceTest, HalfSplitRunsBothBackendsAndConservesEnergy) {
  Fixture f;
  HeteroDevice hetero(&f.gpu, &f.cpu, HeteroConfig{0.5});
  std::vector<float> in(kN, 2.0f), out(kN, 0.0f);
  auto merged = hetero.RunKernel(f.handle(), Launch(), Bind(in, out));
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();

  // Functional: every work-item executed exactly once across the split.
  for (float v : out) ASSERT_FLOAT_EQ(v, 6.0f);
  EXPECT_EQ(merged->stats.Get("hetero.gpu_groups"), 32.0);
  EXPECT_EQ(merged->stats.Get("hetero.cpu_groups"), 32.0);

  // Reference halves on fresh devices (same cold-cache state as the
  // hetero children had).
  Fixture ref;
  std::vector<float> in_g(kN, 2.0f), out_g(kN, 0.0f);
  kir::LaunchConfig gpu_cfg = Launch();
  gpu_cfg.group_begin = 0;
  gpu_cfg.group_end = 32;
  auto gpu_half = ref.gpu.RunKernel(ref.handle(), gpu_cfg, Bind(in_g, out_g));
  ASSERT_TRUE(gpu_half.ok());
  std::vector<float> in_c(kN, 2.0f), out_c(kN, 0.0f);
  kir::LaunchConfig cpu_cfg = Launch();
  cpu_cfg.group_begin = 32;
  cpu_cfg.group_end = 64;
  auto cpu_half = ref.cpu.RunKernel(ref.handle(), cpu_cfg, Bind(in_c, out_c));
  ASSERT_TRUE(cpu_half.ok());

  // Concurrent-in-modelled-time merge: slower side sets the window.
  EXPECT_EQ(merged->seconds,
            std::max(gpu_half->seconds, cpu_half->seconds));

  // Energy conservation: per-core busy-seconds (what drives rail energy in
  // the linear power model) and DRAM traffic are preserved by the merge,
  // within Kahan-style tolerance of the rescale arithmetic.
  const double tol = 1e-12;
  for (int i = 0; i < power::kNumA15Cores; ++i) {
    const double want = gpu_half->profile.cpu_busy[i] *
                            gpu_half->profile.seconds +
                        cpu_half->profile.cpu_busy[i] *
                            cpu_half->profile.seconds;
    const double got = merged->profile.cpu_busy[i] * merged->profile.seconds;
    EXPECT_NEAR(got, want, tol * std::max(1.0, std::abs(want))) << "cpu " << i;
  }
  for (int i = 0; i < power::kNumMaliCores; ++i) {
    const double want = gpu_half->profile.gpu_core_busy[i] *
                            gpu_half->profile.seconds +
                        cpu_half->profile.gpu_core_busy[i] *
                            cpu_half->profile.seconds;
    const double got =
        merged->profile.gpu_core_busy[i] * merged->profile.seconds;
    EXPECT_NEAR(got, want, tol * std::max(1.0, std::abs(want))) << "gpu " << i;
  }
  EXPECT_EQ(merged->profile.dram_bytes,
            gpu_half->profile.dram_bytes + cpu_half->profile.dram_bytes);
}

TEST(HeteroDeviceTest, RatioSweepIsMonotoneInGroupCounts) {
  for (double ratio : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    Fixture f;
    HeteroDevice hetero(&f.gpu, &f.cpu, HeteroConfig{ratio});
    std::vector<float> in(kN, 2.0f), out(kN, 0.0f);
    auto run = hetero.RunKernel(f.handle(), Launch(), Bind(in, out));
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    for (float v : out) ASSERT_FLOAT_EQ(v, 6.0f);
    EXPECT_EQ(run->stats.Get("hetero.gpu_groups") +
                  run->stats.Get("hetero.cpu_groups"),
              64.0);
    EXPECT_EQ(run->stats.Get("hetero.gpu_groups"),
              std::llround(ratio * 64.0));
  }
}

TEST(HeteroDeviceTest, SelfTuningIsDeterministicAndConverges) {
  const auto run_twice = [](HeteroDevice& hetero, const Fixture& f) {
    std::vector<double> ratios;
    for (int i = 0; i < 4; ++i) {
      ratios.push_back(hetero.CurrentRatio("scale"));
      std::vector<float> in(kN, 2.0f), out(kN, 0.0f);
      auto run = hetero.RunKernel(f.handle(), Launch(), Bind(in, out));
      EXPECT_TRUE(run.ok()) << run.status().ToString();
    }
    return ratios;
  };
  Fixture a;
  HeteroDevice ha(&a.gpu, &a.cpu);  // default: self-tuning
  const std::vector<double> first = run_twice(ha, a);
  Fixture b;
  HeteroDevice hb(&b.gpu, &b.cpu);
  const std::vector<double> second = run_twice(hb, b);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], second[i]) << "launch " << i;  // bit-identical
  }
  // Seeded from throughput hints, then tuned from measured rates.
  const double g = a.gpu.caps().throughput_hint;
  const double c = a.cpu.caps().throughput_hint;
  EXPECT_EQ(first[0], g / (g + c));
  for (double r : first) {
    EXPECT_GT(r, 0.0);
    EXPECT_LT(r, 1.0);
  }
}

}  // namespace
}  // namespace malisim::sim
