// TuningCache battery: JSON round-trip, deterministic byte-identical
// serialization, save/load through the filesystem, 100% cache-hit
// re-tuning with byte-identical winners, and graceful rejection of
// corrupt, truncated and wrong-schema cache files. The harness-level
// round trip (TuneBenchmark against a cache file) lives in
// tuner_conformance_test.
#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sim/tuner.h"

#ifndef _WIN32
#include <sys/stat.h>
#include <unistd.h>
#include <utime.h>
#endif

namespace malisim::sim {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  out << text;
}

TuningCacheEntry Entry(const std::string& config_key, double score) {
  TuningCacheEntry entry;
  entry.config_key = config_key;
  entry.objective = "energy";
  entry.score = score;
  entry.seconds = score / 2.0;
  entry.energy_j = score;
  return entry;
}

TEST(TuningCacheTest, RoundTripPreservesEntries) {
  TuningCache cache;
  cache.Insert("key-a", Entry("vec=4,wg=128", 1.25));
  cache.Insert("key-b", Entry("vec=2,wg=64", 3.5));
  const std::string text = cache.Serialize();

  auto loaded = TuningCache::Deserialize(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 2u);
  TuningCacheEntry out;
  ASSERT_TRUE(loaded->Lookup("key-a", &out));
  EXPECT_EQ(out.config_key, "vec=4,wg=128");
  EXPECT_EQ(out.objective, "energy");
  EXPECT_EQ(out.score, 1.25);
  EXPECT_EQ(out.seconds, 0.625);
  EXPECT_EQ(out.energy_j, 1.25);
  // Round-tripping is byte-stable: serialize(deserialize(x)) == x.
  EXPECT_EQ(loaded->Serialize(), text);
}

TEST(TuningCacheTest, SerializationIsInsertionOrderIndependent) {
  TuningCache forward;
  forward.Insert("aaa", Entry("x=1", 1.0));
  forward.Insert("bbb", Entry("x=2", 2.0));
  forward.Insert("ccc", Entry("x=3", 3.0));
  TuningCache reverse;
  reverse.Insert("ccc", Entry("x=3", 3.0));
  reverse.Insert("aaa", Entry("x=1", 1.0));
  reverse.Insert("bbb", Entry("x=2", 2.0));
  EXPECT_EQ(forward.Serialize(), reverse.Serialize());
}

TEST(TuningCacheTest, SaveLoadFileByteIdentical) {
  TuningCache cache;
  cache.Insert("key", Entry("vec=4,wg=128,copy=0", 0.125));
  const std::string path = TempPath("tuner_cache_roundtrip.json");
  ASSERT_TRUE(cache.SaveFile(path).ok());
  const TuningCache loaded = TuningCache::LoadFileOrEmpty(path);
  EXPECT_EQ(loaded.Serialize(), cache.Serialize());
  std::remove(path.c_str());
}

TEST(TuningCacheTest, SaveFileMergesEntriesAlreadyOnDisk) {
  // Two processes tuning different problems against the same cache file
  // must both survive: SaveFile merges the on-disk entries before the
  // atomic replace instead of clobbering them.
  const std::string path = TempPath("tuner_cache_merge.json");
  std::remove(path.c_str());
  TuningCache first;
  first.Insert("key-first", Entry("vec=1", 1.0));
  ASSERT_TRUE(first.SaveFile(path).ok());
  TuningCache second;
  second.Insert("key-second", Entry("vec=2", 2.0));
  ASSERT_TRUE(second.SaveFile(path).ok());

  const TuningCache merged = TuningCache::LoadFileOrEmpty(path);
  TuningCacheEntry out;
  EXPECT_TRUE(merged.Lookup("key-first", &out));
  EXPECT_TRUE(merged.Lookup("key-second", &out));
  EXPECT_EQ(merged.size(), 2u);
  std::remove(path.c_str());
}

TEST(TuningCacheTest, SaveFileInMemoryEntryWinsOverDisk) {
  // Same key on disk and in memory: the saver's (newer) entry wins.
  const std::string path = TempPath("tuner_cache_conflict.json");
  std::remove(path.c_str());
  TuningCache stale;
  stale.Insert("key", Entry("vec=1", 9.0));
  ASSERT_TRUE(stale.SaveFile(path).ok());
  TuningCache fresh;
  fresh.Insert("key", Entry("vec=4", 1.0));
  ASSERT_TRUE(fresh.SaveFile(path).ok());

  const TuningCache loaded = TuningCache::LoadFileOrEmpty(path);
  TuningCacheEntry out;
  ASSERT_TRUE(loaded.Lookup("key", &out));
  EXPECT_EQ(out.config_key, "vec=4");
  std::remove(path.c_str());
}

TEST(TuningCacheTest, SaveFileLeavesNoTempFileBehind) {
  const std::string path = TempPath("tuner_cache_no_temp.json");
  std::remove(path.c_str());
  TuningCache cache;
  cache.Insert("key", Entry("vec=4", 1.0));
  ASSERT_TRUE(cache.SaveFile(path).ok());
#ifndef _WIN32
  const std::string temp = path + ".tmp." + std::to_string(::getpid());
  std::ifstream probe(temp);
  EXPECT_FALSE(probe.good()) << "temp file left behind: " << temp;
  std::ifstream lock(path + ".lock");
  EXPECT_FALSE(lock.good()) << "lock file left behind";
#endif
  std::remove(path.c_str());
}

#ifndef _WIN32
TEST(TuningCacheTest, StaleLockFileIsStolenNotFatal) {
  // A crashed writer leaves `<path>.lock` behind. SaveFile must treat a
  // sufficiently old lock as abandoned, steal it, and still persist.
  const std::string path = TempPath("tuner_cache_stale_lock.json");
  const std::string lock = path + ".lock";
  std::remove(path.c_str());
  WriteFile(lock, "pid 99999\n");
  struct utimbuf ancient;
  ancient.actime = ancient.modtime = 1;  // 1970: definitely stale
  ASSERT_EQ(::utime(lock.c_str(), &ancient), 0);

  TuningCache cache;
  cache.Insert("key", Entry("vec=4", 1.0));
  ASSERT_TRUE(cache.SaveFile(path).ok());
  const TuningCache loaded = TuningCache::LoadFileOrEmpty(path);
  TuningCacheEntry out;
  EXPECT_TRUE(loaded.Lookup("key", &out));
  // The stolen lock was released on the way out.
  std::ifstream probe(lock);
  EXPECT_FALSE(probe.good());
  std::remove(path.c_str());
}
#endif

TEST(TuningCacheTest, ConcurrentWritersFuzzLosesNothingAndNeverTears) {
  // N writer threads hammer the same cache file with disjoint keys while a
  // reader polls the raw bytes. Locked load-merge-write means every key
  // survives; atomic temp+rename means the reader never observes a torn
  // (unparseable) document.
  const std::string path = TempPath("tuner_cache_fuzz.json");
  std::remove(path.c_str());
  constexpr int kWriters = 4;
  constexpr int kRounds = 6;

  std::atomic<bool> done{false};
  std::atomic<int> torn_reads{0};
  std::thread reader([&] {
    while (!done.load()) {
      std::ifstream in(path, std::ios::binary);
      if (in) {
        std::ostringstream text;
        text << in.rdbuf();
        if (!text.str().empty() &&
            !TuningCache::Deserialize(text.str()).ok()) {
          torn_reads.fetch_add(1);
        }
      }
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int r = 0; r < kRounds; ++r) {
        TuningCache mine;
        const std::string key =
            "w" + std::to_string(w) + "-r" + std::to_string(r);
        mine.Insert(key, Entry("vec=" + std::to_string(w + 1),
                               static_cast<double>(r + 1)));
        EXPECT_TRUE(mine.SaveFile(path).ok()) << key;
      }
    });
  }
  for (std::thread& t : writers) t.join();
  done.store(true);
  reader.join();

  EXPECT_EQ(torn_reads.load(), 0) << "reader saw a partially-written cache";
  const TuningCache merged = TuningCache::LoadFileOrEmpty(path);
  EXPECT_EQ(merged.size(),
            static_cast<std::size_t>(kWriters * kRounds));
  for (int w = 0; w < kWriters; ++w) {
    for (int r = 0; r < kRounds; ++r) {
      TuningCacheEntry out;
      EXPECT_TRUE(merged.Lookup(
          "w" + std::to_string(w) + "-r" + std::to_string(r), &out))
          << "lost w" << w << "-r" << r;
    }
  }
  std::remove(path.c_str());
}

TEST(TuningCacheTest, MissingFileIsSilentlyEmpty) {
  const TuningCache cache =
      TuningCache::LoadFileOrEmpty(TempPath("does_not_exist_cache.json"));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(TuningCacheTest, CorruptFilesRejectedGracefully) {
  TuningCache good;
  good.Insert("key", Entry("vec=4", 1.0));
  const std::string good_text = good.Serialize();

  const std::vector<std::pair<std::string, std::string>> corrupt = {
      {"garbage", "this is not json at all\n"},
      {"empty_object", "{}\n"},
      {"wrong_schema", "{\"schema\":\"malisim-bench-v1\",\"entries\":{}}\n"},
      // A truncated write: a valid prefix of a real cache document.
      {"truncated", good_text.substr(0, good_text.size() / 2)},
      {"zero_bytes", ""},
  };
  for (const auto& [name, text] : corrupt) {
    SCOPED_TRACE(name);
    // Deserialize is strict...
    EXPECT_FALSE(TuningCache::Deserialize(text).ok());
    // ...LoadFileOrEmpty degrades to an empty cache, never an error.
    const std::string path = TempPath("tuner_cache_" + name + ".json");
    WriteFile(path, text);
    const TuningCache cache = TuningCache::LoadFileOrEmpty(path);
    EXPECT_EQ(cache.size(), 0u);
    std::remove(path.c_str());
  }
}

// ---------------------------------------------------------------------------
// Cache-hit re-tuning at the engine level: search once, persist the
// winner, then resolve the same problem from the cache alone — zero
// evaluations, byte-identical winner.
// ---------------------------------------------------------------------------

TuningSpace CacheSpace() {
  TuningSpace space;
  space.axes = {{"vec", {1, 2, 4}}, {"wg", {32, 64, 128}}};
  return space;
}

StatusOr<TuningMeasurement> CacheEval(const TuningConfig& config) {
  const std::uint64_t h = Fnv1a64(config.CanonicalKey());
  TuningMeasurement m;
  m.seconds = 1.0 + static_cast<double>(h % 997) / 100.0;
  m.energy_j = 2.0 * m.seconds;
  return m;
}

TEST(TuningCacheTest, ReTuneFromCacheIsByteIdenticalWithZeroEvals) {
  const TuningSpace space = CacheSpace();
  const DeviceCaps caps;  // defaults are fine: the key only needs stability
  const std::string key =
      TuningCacheKey("fingerprint123", caps, Objective::kEnergy, space);

  TunerOptions options;
  options.objective = Objective::kEnergy;
  Tuner tuner(options);
  auto first = tuner.Search(space, CacheEval);
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  // Persist the winner the way the harness adapter does.
  TuningCache cache;
  TuningCacheEntry entry;
  entry.config_key = first->best.CanonicalKey();
  entry.objective = std::string(ObjectiveName(Objective::kEnergy));
  entry.score = first->best_score;
  entry.seconds = first->best_measurement.seconds;
  entry.energy_j = first->best_measurement.energy_j;
  cache.Insert(key, entry);
  const std::string path = TempPath("tuner_cache_retune.json");
  ASSERT_TRUE(cache.SaveFile(path).ok());

  // "Re-tune": the same problem resolves from the loaded cache with no
  // evaluation at all, and the winner is byte-identical.
  const TuningCache loaded = TuningCache::LoadFileOrEmpty(path);
  TuningCacheEntry hit;
  ASSERT_TRUE(loaded.Lookup(key, &hit));
  auto config = ConfigFromKey(space, hit.config_key);
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ(config->CanonicalKey(), first->best.CanonicalKey());
  EXPECT_EQ(hit.score, first->best_score);
  EXPECT_EQ(hit.seconds, first->best_measurement.seconds);
  EXPECT_EQ(hit.energy_j, first->best_measurement.energy_j);
  std::remove(path.c_str());
}

TEST(TuningCacheTest, KeySensitivity) {
  const TuningSpace space = CacheSpace();
  DeviceCaps caps;
  caps.compute_units = 4;
  caps.clock_hz = 533e6;
  const std::string base =
      TuningCacheKey("fp", caps, Objective::kEnergy, space);
  // Objective, fingerprint, device caps and space all enter the address.
  EXPECT_NE(base, TuningCacheKey("fp", caps, Objective::kTime, space));
  EXPECT_NE(base, TuningCacheKey("fp2", caps, Objective::kEnergy, space));
  DeviceCaps other = caps;
  other.clock_hz = 266e6;
  EXPECT_NE(base, TuningCacheKey("fp", other, Objective::kEnergy, space));
  TuningSpace wider = space;
  wider.axes.push_back({"unroll", {1, 2}});
  EXPECT_NE(base, TuningCacheKey("fp", caps, Objective::kEnergy, wider));
  // The throughput hint is a scheduling seed, not an identity: it must
  // NOT invalidate cached winners.
  DeviceCaps hinted = caps;
  hinted.throughput_hint = 12345.0;
  EXPECT_EQ(base, TuningCacheKey("fp", hinted, Objective::kEnergy, space));
}

TEST(TuningCacheTest, ConfigFromKeyResolvesAgainstSpace) {
  const TuningSpace space = CacheSpace();
  auto full = ConfigFromKey(space, "vec=4,wg=64");
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->CanonicalKey(), "vec=4,wg=64");
  // Omitted axes resolve to the axis's first value.
  auto partial = ConfigFromKey(space, "wg=128");
  ASSERT_TRUE(partial.ok());
  EXPECT_EQ(partial->CanonicalKey(), "vec=1,wg=128");
  // A value outside the space is an error, not a silent winner.
  EXPECT_FALSE(ConfigFromKey(space, "vec=8,wg=64").ok());
  EXPECT_FALSE(ConfigFromKey(space, "bogus=1").ok());
}

}  // namespace
}  // namespace malisim::sim
