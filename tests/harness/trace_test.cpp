#include "harness/trace.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace malisim::harness {
namespace {

BenchmarkResults FakeResults() {
  BenchmarkResults r;
  r.name = "demo";
  for (hpc::Variant v : hpc::kAllVariants) {
    VariantResult& vr = r.variants[static_cast<int>(v)];
    vr.available = true;
    vr.validated = true;
    vr.seconds = 0.001 * (static_cast<int>(v) + 1);
    vr.power_mean_w = 4.0;
    vr.energy_j = vr.power_mean_w * vr.seconds;
  }
  r.variants[static_cast<int>(hpc::Variant::kOpenCL)].available = false;
  r.variants[static_cast<int>(hpc::Variant::kOpenCLOpt)].note = "fell back";
  return r;
}

TEST(TraceTest, SpansAdvanceCursor) {
  TraceBuilder trace;
  trace.AddSpan("a", "cat", 1, 0.5);
  trace.AddSpan("b", "cat", 1, 0.25);
  ASSERT_EQ(trace.events().size(), 2u);
  EXPECT_DOUBLE_EQ(trace.events()[0].timestamp_us, 0.0);
  EXPECT_DOUBLE_EQ(trace.events()[0].duration_us, 5e5);
  EXPECT_DOUBLE_EQ(trace.events()[1].timestamp_us, 5e5);
}

TEST(TraceTest, TracksHaveIndependentCursors) {
  TraceBuilder trace;
  trace.AddSpan("cpu", "cat", 1, 0.5);
  trace.AddSpan("gpu", "cat", 2, 0.25);
  trace.AddSpan("gpu2", "cat", 2, 0.25);
  ASSERT_EQ(trace.events().size(), 3u);
  // tid 2 starts at t = 0 even though tid 1 already holds a span: each
  // (pid, tid) track is an independent timeline, not a slice of one global
  // schedule.
  EXPECT_DOUBLE_EQ(trace.events()[1].timestamp_us, 0.0);
  EXPECT_DOUBLE_EQ(trace.events()[2].timestamp_us, 2.5e5);
  EXPECT_DOUBLE_EQ(trace.cursor_us(1, 1), 5e5);
  EXPECT_DOUBLE_EQ(trace.cursor_us(1, 2), 5e5);
  EXPECT_DOUBLE_EQ(trace.cursor_us(1, 99), 0.0);  // untouched track
}

TEST(TraceTest, BenchmarkLayout) {
  TraceBuilder trace;
  trace.AddBenchmark(FakeResults());
  // 3 available variants (OpenCL missing).
  ASSERT_EQ(trace.events().size(), 3u);
  EXPECT_EQ(trace.events()[0].tid, 1);  // Serial on the CPU track
  EXPECT_EQ(trace.events()[1].tid, 1);  // OpenMP on the CPU track
  EXPECT_EQ(trace.events()[2].tid, 2);  // Opt on the GPU track
  EXPECT_EQ(trace.events()[2].category, "mali-t604");
}

TEST(TraceTest, JsonIsWellFormedish) {
  TraceBuilder trace;
  trace.AddBenchmark(FakeResults());
  const std::string json = trace.ToJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"demo / Serial\""), std::string::npos);
  EXPECT_NE(json.find("\"power_w\":\"4.000\""), std::string::npos);
  EXPECT_NE(json.find("\"note\":\"fell back\""), std::string::npos);
  // Balanced braces (crude structural check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(TraceTest, EscapesSpecialCharacters) {
  TraceBuilder trace;
  trace.AddSpan("with \"quotes\" and \\slash", "c", 1, 0.1);
  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("\\\"quotes\\\""), std::string::npos);
  EXPECT_NE(json.find("\\\\slash"), std::string::npos);
}

TEST(TraceTest, WritesFile) {
  TraceBuilder trace;
  trace.AddSpan("span", "c", 1, 0.1);
  const std::string path = ::testing::TempDir() + "/malisim_trace_test.json";
  ASSERT_TRUE(trace.WriteTo(path).ok());
  std::ifstream file(path);
  std::stringstream ss;
  ss << file.rdbuf();
  EXPECT_EQ(ss.str(), trace.ToJson());
  std::remove(path.c_str());
}

TEST(TraceTest, BadPathFails) {
  TraceBuilder trace;
  EXPECT_FALSE(trace.WriteTo("/nonexistent_dir_xyz/trace.json").ok());
}

}  // namespace
}  // namespace malisim::harness
