// Shape tests: the qualitative findings of the paper's §V must hold in the
// model at reduced problem sizes — who wins, which versions fail, which
// optimizations pay off. These are the invariants the reproduction is
// judged on (absolute numbers live in EXPERIMENTS.md at full sizes).
#include <map>

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/figures.h"

namespace malisim::harness {
namespace {

ExperimentConfig MidConfig(bool fp64) {
  // Sizes between "quick" and the defaults: big enough for the asymptotic
  // behaviours (bandwidth saturation, reuse) to show.
  ExperimentConfig config;
  config.fp64 = fp64;
  config.repetitions = 3;
  config.sizes.spmv_rows = 4096;
  config.sizes.vecop_n = 1 << 18;
  config.sizes.hist_n = 1 << 18;
  config.sizes.stencil_dim = 32;
  config.sizes.red_n = 1 << 18;
  config.sizes.amcd_chains = 128;
  config.sizes.amcd_atoms = 24;
  config.sizes.amcd_steps = 24;
  config.sizes.nbody_n = 512;
  config.sizes.conv_dim = 192;
  config.sizes.dmmm_n = 96;
  return config;
}

class PaperShapesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ExperimentRunner sp_runner(MidConfig(false));
    auto sp = sp_runner.RunAll();
    ASSERT_TRUE(sp.ok()) << sp.status().ToString();
    sp_ = new std::vector<BenchmarkResults>(*std::move(sp));
    ExperimentRunner dp_runner(MidConfig(true));
    auto dp = dp_runner.RunAll();
    ASSERT_TRUE(dp.ok()) << dp.status().ToString();
    dp_ = new std::vector<BenchmarkResults>(*std::move(dp));
  }
  static void TearDownTestSuite() {
    delete sp_;
    delete dp_;
    sp_ = nullptr;
    dp_ = nullptr;
  }

  static const BenchmarkResults& Sp(const std::string& name) {
    return Find(*sp_, name);
  }
  static const BenchmarkResults& Dp(const std::string& name) {
    return Find(*dp_, name);
  }
  static const BenchmarkResults& Find(const std::vector<BenchmarkResults>& all,
                                      const std::string& name) {
    for (const BenchmarkResults& r : all) {
      if (r.name == name) return r;
    }
    ADD_FAILURE() << "missing " << name;
    static BenchmarkResults empty;
    return empty;
  }

  static std::vector<BenchmarkResults>* sp_;
  static std::vector<BenchmarkResults>* dp_;
};

std::vector<BenchmarkResults>* PaperShapesTest::sp_ = nullptr;
std::vector<BenchmarkResults>* PaperShapesTest::dp_ = nullptr;

TEST_F(PaperShapesTest, EverythingAvailableValidates) {
  for (const auto* all : {sp_, dp_}) {
    for (const BenchmarkResults& r : *all) {
      for (hpc::Variant v : hpc::kAllVariants) {
        if (r.Get(v).available) {
          EXPECT_TRUE(r.Get(v).validated)
              << r.name << "/" << hpc::VariantName(v) << ": "
              << r.Get(v).note;
        }
      }
    }
  }
}

TEST_F(PaperShapesTest, OpenMPIsSublinearButHelps) {
  // Paper: 1.2x..1.9x on two cores.
  for (const BenchmarkResults& r : *sp_) {
    const double s = r.SpeedupVsSerial(hpc::Variant::kOpenMP);
    EXPECT_GT(s, 1.0) << r.name;
    EXPECT_LT(s, 2.01) << r.name;
  }
}

TEST_F(PaperShapesTest, OptimizedNeverSlowerThanNaiveGpu) {
  for (const auto* all : {sp_, dp_}) {
    for (const BenchmarkResults& r : *all) {
      if (!r.Get(hpc::Variant::kOpenCL).available ||
          !r.Get(hpc::Variant::kOpenCLOpt).available) {
        continue;
      }
      EXPECT_GE(r.SpeedupVsSerial(hpc::Variant::kOpenCLOpt),
                0.95 * r.SpeedupVsSerial(hpc::Variant::kOpenCL))
          << r.name;
    }
  }
}

TEST_F(PaperShapesTest, NaiveGpuPortsOfStreamingKernelsDisappoint) {
  // Paper §V-A: "porting code to OpenCL and running on the GPU, on its own,
  // does not guarantee significant performance improvement" — spmv and
  // vecop naive ports lose to (or barely beat) the OpenMP CPU version.
  for (const char* name : {"spmv", "vecop"}) {
    const BenchmarkResults& r = Sp(name);
    EXPECT_LT(r.SpeedupVsSerial(hpc::Variant::kOpenCL),
              r.SpeedupVsSerial(hpc::Variant::kOpenMP))
        << name;
  }
}

TEST_F(PaperShapesTest, ComputeBenchmarksGetBigGpuWins) {
  // Paper Fig. 2(a): nbody/2dcon/dmmm optimized reach order-of-magnitude
  // speedups.
  for (const char* name : {"nbody", "2dcon", "dmmm"}) {
    EXPECT_GT(Sp(name).SpeedupVsSerial(hpc::Variant::kOpenCLOpt), 6.0) << name;
  }
  // And spmv stays the laggard (paper: 1.25x).
  EXPECT_LT(Sp("spmv").SpeedupVsSerial(hpc::Variant::kOpenCLOpt), 2.0);
}

TEST_F(PaperShapesTest, VectorizationGapLargestForDmmmAnd2dcon) {
  // Paper §V-A: dmmm and 2dcon benefit most from the optimization stack.
  const double dmmm_gain =
      Sp("dmmm").SpeedupVsSerial(hpc::Variant::kOpenCLOpt) /
      Sp("dmmm").SpeedupVsSerial(hpc::Variant::kOpenCL);
  const double conv_gain =
      Sp("2dcon").SpeedupVsSerial(hpc::Variant::kOpenCLOpt) /
      Sp("2dcon").SpeedupVsSerial(hpc::Variant::kOpenCL);
  const double amcd_gain =
      Sp("amcd").SpeedupVsSerial(hpc::Variant::kOpenCLOpt) /
      Sp("amcd").SpeedupVsSerial(hpc::Variant::kOpenCL);
  EXPECT_GT(dmmm_gain, 2.0);
  EXPECT_GT(conv_gain, 2.0);
  // Paper: "amcd ... OpenCL Opt is only slightly faster".
  EXPECT_LT(amcd_gain, 1.5);
  EXPECT_GT(dmmm_gain, amcd_gain);
  EXPECT_GT(conv_gain, amcd_gain);
}

TEST_F(PaperShapesTest, AmcdGpuMissingInDoublePrecision) {
  const BenchmarkResults& r = Dp("amcd");
  EXPECT_TRUE(r.Get(hpc::Variant::kSerial).available);
  EXPECT_FALSE(r.Get(hpc::Variant::kOpenCL).available);
  EXPECT_FALSE(r.Get(hpc::Variant::kOpenCLOpt).available);
  EXPECT_NE(r.Get(hpc::Variant::kOpenCL).unavailable_reason.find("erratum"),
            std::string::npos);
}

TEST_F(PaperShapesTest, Fp64RegisterPressureNarrowsNbodyAndConvGaps) {
  // Paper Fig. 2(b): the optimized FP64 nbody/2dcon kernels fail with
  // CL_OUT_OF_RESOURCES and fall back, so the Opt/naive ratio shrinks
  // relative to single precision; dmmm keeps its full gap.
  auto gap = [](const BenchmarkResults& r) {
    return r.SpeedupVsSerial(hpc::Variant::kOpenCLOpt) /
           r.SpeedupVsSerial(hpc::Variant::kOpenCL);
  };
  EXPECT_LT(gap(Dp("nbody")), gap(Sp("nbody")));
  EXPECT_LT(gap(Dp("2dcon")), gap(Sp("2dcon")));
  EXPECT_NE(Dp("nbody").Get(hpc::Variant::kOpenCLOpt).note.find(
                "CL_OUT_OF_RESOURCES"),
            std::string::npos);
  EXPECT_GT(gap(Dp("dmmm")), 2.0);
}

TEST_F(PaperShapesTest, PowerVariesLittleBetweenClAndClOpt) {
  // Paper §V-D: "power consumption varies insignificantly between optimized
  // and non-optimized versions of the OpenCL benchmarks" (within ~40%
  // here; the figure shows hist/dmmm as the exceptions).
  for (const BenchmarkResults& r : *sp_) {
    if (!r.Get(hpc::Variant::kOpenCL).available ||
        !r.Get(hpc::Variant::kOpenCLOpt).available) {
      continue;
    }
    const double ratio = r.Get(hpc::Variant::kOpenCLOpt).power_mean_w /
                         r.Get(hpc::Variant::kOpenCL).power_mean_w;
    EXPECT_GT(ratio, 0.7) << r.name;
    EXPECT_LT(ratio, 1.45) << r.name;
  }
}

TEST_F(PaperShapesTest, OpenMPDrawsMorePowerThanSerial) {
  for (const BenchmarkResults& r : *sp_) {
    EXPECT_GT(r.PowerVsSerial(hpc::Variant::kOpenMP), 1.1) << r.name;
    EXPECT_LT(r.PowerVsSerial(hpc::Variant::kOpenMP), 1.6) << r.name;
  }
}

TEST_F(PaperShapesTest, OptimizedEnergyBeatsNaiveOpenCL) {
  // Paper §V-C: OpenCL Opt always beats the corresponding non-optimized
  // OpenCL version on energy. (The paper's stronger claim — Opt beats
  // *every* version for every benchmark — holds at the full problem sizes
  // used by bench/fig4_energy; at these reduced sizes the GPU's fixed
  // launch/dispatch overheads push the smallest memory-bound problems,
  // spmv and 3dstc, above the CPU versions.)
  for (const BenchmarkResults& r : *sp_) {
    const double opt = r.EnergyVsSerial(hpc::Variant::kOpenCLOpt);
    EXPECT_LE(opt, 1.05 * r.EnergyVsSerial(hpc::Variant::kOpenCL)) << r.name;
    if (r.name != "spmv" && r.name != "3dstc") {
      EXPECT_LT(opt, 1.0) << r.name;
      EXPECT_LE(opt, 1.10 * r.EnergyVsSerial(hpc::Variant::kOpenMP)) << r.name;
    }
  }
}

TEST_F(PaperShapesTest, HeadlineIsInPaperBallpark) {
  const Headline h = ComputeHeadline(*sp_, *dp_);
  // Paper: 8.7x at 32% energy. At reduced sizes we accept a wide band; the
  // full-size numbers in EXPERIMENTS.md land much closer.
  EXPECT_GT(h.avg_speedup, 3.0);
  EXPECT_LT(h.avg_speedup, 15.0);
  EXPECT_GT(h.avg_energy, 0.1);
  EXPECT_LT(h.avg_energy, 0.6);
}

}  // namespace
}  // namespace malisim::harness
