#include "harness/experiment.h"

#include <gtest/gtest.h>

namespace malisim::harness {
namespace {

ExperimentConfig QuickConfig(bool fp64) {
  ExperimentConfig config;
  config.fp64 = fp64;
  config.repetitions = 5;
  config.sizes.spmv_rows = 512;
  config.sizes.vecop_n = 1 << 13;
  config.sizes.hist_n = 1 << 13;
  config.sizes.stencil_dim = 16;
  config.sizes.red_n = 1 << 13;
  config.sizes.amcd_chains = 32;
  config.sizes.amcd_atoms = 12;
  config.sizes.amcd_steps = 8;
  config.sizes.nbody_n = 128;
  config.sizes.conv_dim = 64;
  config.sizes.dmmm_n = 32;
  return config;
}

TEST(ExperimentRunnerTest, RunsOneBenchmarkAllVariants) {
  ExperimentRunner runner(QuickConfig(false));
  auto results = runner.RunBenchmark("vecop");
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  EXPECT_EQ(results->name, "vecop");
  for (hpc::Variant v : hpc::kAllVariants) {
    const VariantResult& r = results->Get(v);
    EXPECT_TRUE(r.available) << hpc::VariantName(v);
    EXPECT_TRUE(r.validated) << hpc::VariantName(v);
    EXPECT_GT(r.seconds, 0.0);
    EXPECT_GT(r.power_mean_w, 1.0);
    EXPECT_GT(r.energy_j, 0.0);
  }
}

TEST(ExperimentRunnerTest, UnknownBenchmarkRejected) {
  ExperimentRunner runner(QuickConfig(false));
  EXPECT_FALSE(runner.RunBenchmark("bogus").ok());
}

TEST(ExperimentRunnerTest, NormalizedMetricsDefinedVsSerial) {
  ExperimentRunner runner(QuickConfig(false));
  auto results = runner.RunBenchmark("dmmm");
  ASSERT_TRUE(results.ok());
  EXPECT_DOUBLE_EQ(results->SpeedupVsSerial(hpc::Variant::kSerial), 1.0);
  EXPECT_DOUBLE_EQ(results->PowerVsSerial(hpc::Variant::kSerial), 1.0);
  EXPECT_DOUBLE_EQ(results->EnergyVsSerial(hpc::Variant::kSerial), 1.0);
  EXPECT_GT(results->SpeedupVsSerial(hpc::Variant::kOpenMP), 1.0);
}

TEST(ExperimentRunnerTest, AmcdFp64GpuUnavailableWithBuildFailure) {
  ExperimentRunner runner(QuickConfig(true));
  auto results = runner.RunBenchmark("amcd");
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->Get(hpc::Variant::kSerial).available);
  EXPECT_TRUE(results->Get(hpc::Variant::kOpenMP).available);
  const VariantResult& cl = results->Get(hpc::Variant::kOpenCL);
  EXPECT_FALSE(cl.available);
  EXPECT_NE(cl.unavailable_reason.find("BuildFailure"), std::string::npos);
  // Normalized metrics are 0 for unavailable variants.
  EXPECT_EQ(results->SpeedupVsSerial(hpc::Variant::kOpenCL), 0.0);
}

TEST(ExperimentRunnerTest, PowerDeviationIsNegligibleAsInPaper) {
  ExperimentRunner runner(QuickConfig(false));
  auto results = runner.RunBenchmark("red");
  ASSERT_TRUE(results.ok());
  for (hpc::Variant v : hpc::kAllVariants) {
    const VariantResult& r = results->Get(v);
    ASSERT_TRUE(r.available);
    EXPECT_LT(r.power_stddev_w / r.power_mean_w, 0.01);
  }
}

TEST(ExperimentRunnerTest, SeedReproducibility) {
  ExperimentRunner a(QuickConfig(false));
  ExperimentRunner b(QuickConfig(false));
  auto ra = a.RunBenchmark("hist");
  auto rb = b.RunBenchmark("hist");
  ASSERT_TRUE(ra.ok() && rb.ok());
  for (hpc::Variant v : hpc::kAllVariants) {
    EXPECT_DOUBLE_EQ(ra->Get(v).seconds, rb->Get(v).seconds);
    EXPECT_DOUBLE_EQ(ra->Get(v).power_mean_w, rb->Get(v).power_mean_w);
  }
}

}  // namespace
}  // namespace malisim::harness
