// Compile-and-link check of the public umbrella header: everything a
// downstream user includes through <malisim.h> must be self-consistent.
#include "malisim.h"

#include <gtest/gtest.h>

namespace malisim {
namespace {

TEST(UmbrellaTest, PublicSurfaceIsUsableTogether) {
  // One object from every layer, composed the way a user would.
  kir::KernelBuilder kb("umbrella");
  auto buf = kb.ArgBuffer("buf", kir::ScalarType::kF32, kir::ArgKind::kBufferRW);
  kb.Store(buf, kb.GlobalId(0), kb.ConstF(kir::F32(), 1.0));
  kir::Program program = *kb.Build();
  EXPECT_TRUE(kir::Verify(program).ok());

  ocl::Context context;
  EXPECT_EQ(context.device_info().compute_units, 4u);

  cpu::CortexA15Device cpu_device;
  mali::MaliT604Device gpu_device;
  power::PowerModel power_model;
  power::ActivityProfile idle;
  idle.seconds = 1.0;
  EXPECT_GT(power_model.AveragePower(idle), 0.0);

  hpc::ProblemSizes sizes;
  EXPECT_NE(hpc::CreateBenchmark("dmmm", sizes), nullptr);

  harness::ExperimentConfig config;
  EXPECT_EQ(config.repetitions, 20);

  sim::CacheModel cache(sim::CacheConfig{1024, 64, 2, true});
  EXPECT_EQ(cache.Access(0, 4, false).misses, 1u);

  Xoshiro256 rng(1);
  EXPECT_LT(rng.NextDouble(), 1.0);
}

}  // namespace
}  // namespace malisim
