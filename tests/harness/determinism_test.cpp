// Determinism contract of the parallel simulation engine: for any host
// thread count, output buffers, operation counts, and modelled
// cycles/power/energy are BIT-identical to the serial reference engine
// (sim_threads = 1). Cache timing is order-dependent, so the parallel
// engine executes work-groups concurrently but replays their recorded
// memory-event streams into the cache models in the serial engine's
// canonical order; this suite is the proof.
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/sim_options.h"
#include "cpu/a15_device.h"
#include "harness/experiment.h"
#include "kir/builder.h"
#include "ocl/runtime.h"

namespace malisim::harness {
namespace {

using kir::ArgKind;
using kir::KernelBuilder;
using kir::Opcode;
using kir::ScalarType;
using kir::Val;

ExperimentConfig QuickConfig(bool fp64, int sim_threads) {
  ExperimentConfig config;
  config.fp64 = fp64;
  config.repetitions = 5;
  config.sim_threads = sim_threads;
  config.sizes.spmv_rows = 512;
  config.sizes.vecop_n = 1 << 13;
  config.sizes.hist_n = 1 << 13;
  config.sizes.stencil_dim = 16;
  config.sizes.red_n = 1 << 13;
  config.sizes.amcd_chains = 32;
  config.sizes.amcd_atoms = 12;
  config.sizes.amcd_steps = 8;
  config.sizes.nbody_n = 128;
  config.sizes.conv_dim = 64;
  config.sizes.dmmm_n = 32;
  return config;
}

/// Asserts every per-variant metric of `a` and `b` is bit-identical.
void ExpectBitIdentical(const BenchmarkResults& a, const BenchmarkResults& b) {
  for (hpc::Variant v : hpc::kAllVariants) {
    SCOPED_TRACE(std::string(hpc::VariantName(v)));
    const VariantResult& ra = a.Get(v);
    const VariantResult& rb = b.Get(v);
    ASSERT_EQ(ra.available, rb.available);
    if (!ra.available) {
      EXPECT_EQ(ra.unavailable_reason, rb.unavailable_reason);
      continue;
    }
    // EXPECT_EQ on doubles is exact equality — deliberately no tolerance.
    EXPECT_EQ(ra.seconds, rb.seconds);
    EXPECT_EQ(ra.power_mean_w, rb.power_mean_w);
    EXPECT_EQ(ra.power_stddev_w, rb.power_stddev_w);
    EXPECT_EQ(ra.energy_j, rb.energy_j);
    EXPECT_EQ(ra.validated, rb.validated);
    EXPECT_EQ(ra.max_rel_error, rb.max_rel_error);
    // Every modelled statistic (per-core cycles, miss counts, ...) too.
    const std::vector<StatRegistry::Entry> ea = ra.stats.Entries();
    const std::vector<StatRegistry::Entry> eb = rb.stats.Entries();
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t i = 0; i < ea.size(); ++i) {
      EXPECT_EQ(ea[i].name, eb[i].name);
      EXPECT_EQ(ea[i].value, eb[i].value) << ea[i].name;
    }
  }
}

struct Case {
  const char* benchmark;
  bool fp64;
};

class EngineDeterminismTest : public ::testing::TestWithParam<Case> {};

TEST_P(EngineDeterminismTest, ParallelEngineMatchesSerialBitwise) {
  const Case c = GetParam();
  ExperimentRunner serial(QuickConfig(c.fp64, /*sim_threads=*/1));
  ExperimentRunner parallel(QuickConfig(c.fp64, /*sim_threads=*/4));
  auto rs = serial.RunBenchmark(c.benchmark);
  auto rp = parallel.RunBenchmark(c.benchmark);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_TRUE(rp.ok()) << rp.status().ToString();
  ExpectBitIdentical(*rs, *rp);
}

TEST_P(EngineDeterminismTest, TwoSerialRunsWithSameSeedAreIdentical) {
  const Case c = GetParam();
  ExperimentRunner first(QuickConfig(c.fp64, /*sim_threads=*/1));
  ExperimentRunner second(QuickConfig(c.fp64, /*sim_threads=*/1));
  auto r1 = first.RunBenchmark(c.benchmark);
  auto r2 = second.RunBenchmark(c.benchmark);
  ASSERT_TRUE(r1.ok() && r2.ok());
  ExpectBitIdentical(*r1, *r2);
}

INSTANTIATE_TEST_SUITE_P(
    Benchmarks, EngineDeterminismTest,
    ::testing::Values(Case{"vecop", false}, Case{"vecop", true},
                      Case{"hist", false}, Case{"hist", true},
                      Case{"dmmm", false}, Case{"dmmm", true}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return std::string(info.param.benchmark) +
             (info.param.fp64 ? "_fp64" : "_fp32");
    });

TEST(EngineDeterminismTest, ParallelRunAllMatchesSerialBitwise) {
  // RunAll farms whole benchmarks across workers when sim_threads > 1; the
  // per-(benchmark, variant) meter seeding keeps every cell's numbers
  // independent of scheduling.
  ExperimentConfig serial_config = QuickConfig(false, 1);
  ExperimentConfig parallel_config = QuickConfig(false, 4);
  auto rs = ExperimentRunner(serial_config).RunAll();
  auto rp = ExperimentRunner(parallel_config).RunAll();
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_TRUE(rp.ok()) << rp.status().ToString();
  ASSERT_EQ(rs->size(), rp->size());
  for (std::size_t i = 0; i < rs->size(); ++i) {
    SCOPED_TRACE((*rs)[i].name);
    ASSERT_EQ((*rs)[i].name, (*rp)[i].name);
    ExpectBitIdentical((*rs)[i], (*rp)[i]);
  }
}

// ---------------------------------------------------------------------------
// Direct-runtime cases: element-wise, hist-like (atomics + __local +
// barriers), and dmmm-like (tiled, __local, barriers) kernels on the GPU
// context, plus the CPU device path — comparing raw output buffer bytes and
// modelled event times between thread counts.
// ---------------------------------------------------------------------------

kir::Program ElementwiseKernel() {
  KernelBuilder kb("saxpyish");
  auto x = kb.ArgBuffer("x", ScalarType::kF32, ArgKind::kBufferRO);
  auto y = kb.ArgBuffer("y", ScalarType::kF32, ArgKind::kBufferRW);
  Val gid = kb.GlobalId(0);
  kb.Store(y, gid,
           kb.Fma(kb.Load(x, gid), kb.ConstF(kir::F32(), 1.5),
                  kb.Load(y, gid)));
  return *kb.Build();
}

kir::Program HistLikeKernel() {
  KernelBuilder kb("hist_like");
  auto data = kb.ArgBuffer("data", ScalarType::kI32, ArgKind::kBufferRO);
  auto bins = kb.ArgBuffer("bins", ScalarType::kI32, ArgKind::kBufferRW);
  auto local_bins = kb.LocalArray("local_bins", ScalarType::kI32, 16);
  Val lid = kb.LocalId(0);
  Val zero = kb.ConstI(kir::I32(), 0);
  Val one = kb.ConstI(kir::I32(), 1);
  // Work-group size is 16 == bin count; each item owns one bin.
  kb.Store(local_bins, lid, zero);
  kb.Barrier();
  Val bucket = kb.Binary(Opcode::kAnd, kb.Load(data, kb.GlobalId(0)),
                         kb.ConstI(kir::I32(), 15));
  kb.AtomicAdd(local_bins, bucket, one);
  kb.Barrier();
  kb.AtomicAdd(bins, lid, kb.Load(local_bins, lid));
  return *kb.Build();
}

kir::Program TiledSumKernel() {
  KernelBuilder kb("tile_sum");
  auto in = kb.ArgBuffer("in", ScalarType::kF32, ArgKind::kBufferRO);
  auto out = kb.ArgBuffer("out", ScalarType::kF32, ArgKind::kBufferWO);
  auto tile = kb.LocalArray("tile", ScalarType::kF32, 32);
  Val lid = kb.LocalId(0);
  // Stage through __local with barriers (dmmm-style tiling skeleton):
  // cooperative load, barrier, neighbour read, barrier.
  kb.Store(tile, lid, kb.Load(in, kb.GlobalId(0)));
  kb.Barrier();
  Val neighbour =
      kb.Binary(Opcode::kAnd, kb.Binary(Opcode::kAdd, lid,
                                        kb.ConstI(kir::I32(), 1)),
                kb.ConstI(kir::I32(), 31));
  kb.Store(out, kb.GlobalId(0),
           kb.Load(tile, lid) + kb.Load(tile, neighbour));
  return *kb.Build();
}

struct GpuRun {
  std::vector<std::byte> bytes;  // output buffer contents
  double seconds = 0.0;
};

GpuRun RunOnGpuContext(const kir::Program& program, int threads,
                       std::uint64_t n, std::uint64_t local,
                       std::uint64_t out_bytes) {
  ocl::Context ctx;
  SimOptions options;
  options.threads = threads;
  ctx.set_sim_options(options);

  std::vector<kir::Program> kernels;
  kernels.push_back(program);
  auto prog = ctx.CreateProgram(std::move(kernels));
  EXPECT_TRUE(prog->Build().ok()) << prog->build_log();
  auto kernel = ctx.CreateKernel(prog, program.name);
  EXPECT_TRUE(kernel.ok());

  const std::uint64_t in_bytes = n * 4;
  auto in_buf = ctx.CreateBuffer(ocl::kMemReadWrite | ocl::kMemAllocHostPtr,
                                 in_bytes);
  auto out_buf = ctx.CreateBuffer(ocl::kMemReadWrite | ocl::kMemAllocHostPtr,
                                  out_bytes);
  EXPECT_TRUE(in_buf.ok() && out_buf.ok());
  // Deterministic input pattern; works as both f32 data and i32 buckets.
  auto* in_words = reinterpret_cast<std::uint32_t*>((*in_buf)->device_storage());
  for (std::uint64_t i = 0; i < n; ++i) {
    in_words[i] = static_cast<std::uint32_t>((i * 2654435761u) >> 8) & 0xffff;
  }
  std::memset((*out_buf)->device_storage(), 0, out_bytes);

  EXPECT_TRUE((*kernel)->SetArgBuffer(0, *in_buf).ok());
  EXPECT_TRUE((*kernel)->SetArgBuffer(1, *out_buf).ok());
  const std::uint64_t global[1] = {n};
  const std::uint64_t local_size[1] = {local};
  auto event = ctx.queue().EnqueueNDRange(**kernel, 1, global, local_size);
  EXPECT_TRUE(event.ok()) << event.status().ToString();

  GpuRun result;
  result.seconds = event.ok() ? event->seconds : -1.0;
  const auto* out_ptr =
      reinterpret_cast<const std::byte*>((*out_buf)->device_storage());
  result.bytes.assign(out_ptr, out_ptr + out_bytes);
  return result;
}

struct GpuCase {
  const char* name;
  kir::Program (*build)();
  std::uint64_t n;
  std::uint64_t local;
  std::uint64_t out_bytes;
};

class GpuKernelDeterminismTest : public ::testing::TestWithParam<GpuCase> {};

TEST_P(GpuKernelDeterminismTest, OutputAndTimingBitIdenticalAcrossThreads) {
  const GpuCase c = GetParam();
  const kir::Program program = c.build();
  const GpuRun serial =
      RunOnGpuContext(program, /*threads=*/1, c.n, c.local, c.out_bytes);
  for (const int threads : {2, 4, 7}) {
    SCOPED_TRACE(threads);
    const GpuRun parallel =
        RunOnGpuContext(program, threads, c.n, c.local, c.out_bytes);
    EXPECT_EQ(serial.bytes, parallel.bytes);
    EXPECT_EQ(serial.seconds, parallel.seconds);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, GpuKernelDeterminismTest,
    ::testing::Values(
        GpuCase{"elementwise", &ElementwiseKernel, 1 << 12, 64, (1 << 12) * 4},
        GpuCase{"hist_like", &HistLikeKernel, 1 << 12, 16, 16 * 4},
        GpuCase{"tiled", &TiledSumKernel, 1 << 12, 32, (1 << 12) * 4}),
    [](const ::testing::TestParamInfo<GpuCase>& info) {
      return info.param.name;
    });

TEST(CpuDeviceDeterminismTest, OutputAndTimingBitIdenticalAcrossThreads) {
  const kir::Program program = ElementwiseKernel();
  const std::uint64_t n = 1 << 12;
  kir::LaunchConfig config;
  config.global_size = {n, 1, 1};
  config.local_size = {64, 1, 1};

  std::vector<float> ref_out;
  double ref_seconds = 0.0;
  for (const int threads : {1, 2, 4}) {
    SCOPED_TRACE(threads);
    std::vector<float> x(n), y(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      x[i] = 0.5f + 0.001f * static_cast<float>(i);
      y[i] = 1.0f - 0.002f * static_cast<float>(i);
    }
    cpu::CortexA15Device device;
    SimOptions options;
    options.threads = threads;
    device.set_sim_options(options);
    kir::Bindings b;
    b.buffers = {
        {reinterpret_cast<std::byte*>(x.data()), 0x100000, n * 4},
        {reinterpret_cast<std::byte*>(y.data()), 0x900000, n * 4}};
    auto run =
        device.Run(program, config, std::move(b),
                   cpu::CortexA15Device::kMaxCores);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    if (threads == 1) {
      ref_out = y;
      ref_seconds = run->seconds;
    } else {
      EXPECT_EQ(ref_out, y);
      EXPECT_EQ(ref_seconds, run->seconds);
    }
  }
}

}  // namespace
}  // namespace malisim::harness
