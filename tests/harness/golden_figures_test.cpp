// Golden-file regression test for the figure pipeline: runs a reduced
// Fig. 2/3/4 sweep (three benchmarks at both precisions, quick problem
// sizes) and compares a fully-precise CSV rendering of the results against
// a checked-in golden file with ZERO tolerance. Any change to modelled
// seconds, power, or energy — however small — shows up as a diff.
//
// Regenerating the goldens (after an intentional model change):
//
//   MALISIM_UPDATE_GOLDEN=1 ./build/tests/harness/golden_figures_test
//
// rewrites tests/harness/golden/*.csv in the source tree; re-run the test
// without the variable to confirm, then commit the updated CSVs with the
// change that caused them.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/figures.h"

#ifndef MALISIM_GOLDEN_DIR
#error "MALISIM_GOLDEN_DIR must point at tests/harness/golden"
#endif

namespace malisim::harness {
namespace {

ExperimentConfig QuickConfig(bool fp64) {
  ExperimentConfig config;
  config.fp64 = fp64;
  config.repetitions = 5;
  config.sizes.vecop_n = 1 << 13;
  config.sizes.hist_n = 1 << 13;
  config.sizes.dmmm_n = 32;
  return config;
}

const std::vector<std::string>& SweepBenchmarks() {
  static const std::vector<std::string> kNames = {"vecop", "hist", "dmmm"};
  return kNames;
}

std::string GoldenPath(bool fp64) {
  return std::string(MALISIM_GOLDEN_DIR) + "/reduced_sweep_" +
         (fp64 ? "fp64" : "fp32") + ".csv";
}

class GoldenFiguresTest : public ::testing::TestWithParam<bool> {};

TEST_P(GoldenFiguresTest, ReducedSweepMatchesGoldenExactly) {
  const bool fp64 = GetParam();
  ExperimentRunner runner(QuickConfig(fp64));
  std::vector<BenchmarkResults> results;
  for (const std::string& name : SweepBenchmarks()) {
    auto r = runner.RunBenchmark(name);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    results.push_back(*std::move(r));
  }
  const std::string csv = RenderFullPrecisionCsv(results, fp64);
  const std::string path = GoldenPath(fp64);

  if (std::getenv("MALISIM_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << csv;
    out.close();
    GTEST_SKIP() << "golden regenerated at " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden " << path
      << " — run with MALISIM_UPDATE_GOLDEN=1 to create it";
  std::ostringstream golden;
  golden << in.rdbuf();
  // Exact comparison, zero tolerance: modelled numbers are deterministic,
  // so the strings must match byte for byte.
  EXPECT_EQ(golden.str(), csv)
      << "figure sweep drifted from golden; if the model change is "
         "intentional, regenerate with MALISIM_UPDATE_GOLDEN=1";
}

INSTANTIATE_TEST_SUITE_P(Precisions, GoldenFiguresTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "fp64" : "fp32";
                         });

/// The summary statistics derive purely from the per-variant metrics, so
/// they are covered by the CSV; this guards the derived headline plumbing
/// against NaN/zero regressions without a second golden.
TEST(GoldenFiguresTest, SummaryStaysFinite) {
  ExperimentRunner runner(QuickConfig(false));
  std::vector<BenchmarkResults> results;
  for (const std::string& name : SweepBenchmarks()) {
    auto r = runner.RunBenchmark(name);
    ASSERT_TRUE(r.ok());
    results.push_back(*std::move(r));
  }
  const Summary s = ComputeSummary(results);
  EXPECT_GT(s.openmp_avg_speedup, 0.0);
  EXPECT_GT(s.openclopt_avg_speedup, 0.0);
  EXPECT_GT(s.openclopt_avg_energy, 0.0);
}

}  // namespace
}  // namespace malisim::harness
