#include "harness/figures.h"

#include <gtest/gtest.h>

namespace malisim::harness {
namespace {

/// Synthetic results with known ratios.
std::vector<BenchmarkResults> FakeResults() {
  std::vector<BenchmarkResults> all;
  BenchmarkResults a;
  a.name = "alpha";
  for (hpc::Variant v : hpc::kAllVariants) {
    VariantResult& r = a.variants[static_cast<int>(v)];
    r.available = true;
    r.validated = true;
  }
  a.variants[0].seconds = 8.0;   // Serial
  a.variants[1].seconds = 4.0;   // OpenMP -> 2x
  a.variants[2].seconds = 2.0;   // OpenCL -> 4x
  a.variants[3].seconds = 1.0;   // Opt    -> 8x
  for (int i = 0; i < 4; ++i) {
    a.variants[i].power_mean_w = 4.0;
    a.variants[i].energy_j =
        a.variants[i].power_mean_w * a.variants[i].seconds;
  }

  BenchmarkResults b;
  b.name = "beta";
  for (hpc::Variant v : hpc::kAllVariants) {
    VariantResult& r = b.variants[static_cast<int>(v)];
    r.available = v != hpc::Variant::kOpenCLOpt;  // one missing bar
    r.validated = true;
    r.seconds = 2.0;
    r.power_mean_w = 3.0;
    r.energy_j = 6.0;
  }
  all.push_back(a);
  all.push_back(b);
  return all;
}

TEST(FiguresTest, Fig2SpeedupValues) {
  const auto results = FakeResults();
  const Table t = Fig2Speedup(results);
  ASSERT_EQ(t.num_rows(), 4u);  // 2 benchmarks + average + geomean
  EXPECT_EQ(t.rows()[0][0], "alpha");
  EXPECT_EQ(t.rows()[0][2], "2.00");  // OpenMP
  EXPECT_EQ(t.rows()[0][4], "8.00");  // Opt
  EXPECT_EQ(t.rows()[1][4], "n/a");   // beta's missing Opt
}

TEST(FiguresTest, AverageAndGeomeanRows) {
  const auto results = FakeResults();
  const Table t = Fig2Speedup(results);
  EXPECT_EQ(t.rows()[2][0], "average (paper's)");
  EXPECT_EQ(t.rows()[3][0], "geomean");
  // Opt average over available entries (only alpha): 8.00.
  EXPECT_EQ(t.rows()[2][4], "8.00");
  EXPECT_EQ(t.rows()[3][4], "8.00");
  // OpenMP: mean(2.0, 1.0) = 1.50, geomean = sqrt(2) ~ 1.41.
  EXPECT_EQ(t.rows()[2][2], "1.50");
  EXPECT_EQ(t.rows()[3][2], "1.41");
}

TEST(FiguresTest, Fig4EnergyNormalizesToSerial) {
  const auto results = FakeResults();
  const Table t = Fig4Energy(results);
  // alpha Opt energy: (4*1) / (4*8) = 0.125.
  EXPECT_EQ(t.rows()[0][4], "0.125");
}

TEST(FiguresTest, SummaryUsesArithmeticMeans) {
  const auto results = FakeResults();
  const Summary s = ComputeSummary(results);
  EXPECT_NEAR(s.openmp_avg_speedup, 1.5, 1e-12);
  EXPECT_NEAR(s.openclopt_avg_speedup, 8.0, 1e-12);
}

TEST(FiguresTest, HeadlineCombinesPrecisions) {
  const auto sp = FakeResults();
  const auto dp = FakeResults();
  const Headline h = ComputeHeadline(sp, dp);
  EXPECT_NEAR(h.avg_speedup, 8.0, 1e-12);  // only alpha contributes
  EXPECT_NEAR(h.avg_energy, 0.125, 1e-12);
}

TEST(FiguresTest, RenderAnnotatesUnavailableAndInvalid) {
  auto results = FakeResults();
  results[1].variants[3].unavailable_reason = "BuildFailure: erratum";
  results[0].variants[2].validated = false;
  results[0].variants[2].max_rel_error = 0.5;
  const std::string text =
      RenderFigure("Fig. test", Fig2Speedup(results), results);
  EXPECT_NE(text.find("unavailable"), std::string::npos);
  EXPECT_NE(text.find("erratum"), std::string::npos);
  EXPECT_NE(text.find("WARNING"), std::string::npos);
}

}  // namespace
}  // namespace malisim::harness
