#include "kir/types.h"

#include <gtest/gtest.h>

#include "kir/opcode.h"

namespace malisim::kir {
namespace {

TEST(TypesTest, ScalarBytes) {
  EXPECT_EQ(ScalarBytes(ScalarType::kF32), 4u);
  EXPECT_EQ(ScalarBytes(ScalarType::kF64), 8u);
  EXPECT_EQ(ScalarBytes(ScalarType::kI32), 4u);
  EXPECT_EQ(ScalarBytes(ScalarType::kI64), 8u);
}

TEST(TypesTest, FloatIntClassification) {
  EXPECT_TRUE(IsFloat(ScalarType::kF32));
  EXPECT_TRUE(IsFloat(ScalarType::kF64));
  EXPECT_FALSE(IsFloat(ScalarType::kI32));
  EXPECT_TRUE(IsInt(ScalarType::kI64));
}

TEST(TypesTest, LaneIndexRoundTrip) {
  EXPECT_EQ(LaneIndex(1), 0);
  EXPECT_EQ(LaneIndex(2), 1);
  EXPECT_EQ(LaneIndex(4), 2);
  EXPECT_EQ(LaneIndex(8), 3);
  EXPECT_EQ(LaneIndex(16), 4);
  EXPECT_EQ(LaneIndex(3), -1);
  EXPECT_EQ(LaneIndex(0), -1);
  EXPECT_TRUE(IsValidLanes(4));
  EXPECT_FALSE(IsValidLanes(5));
}

TEST(TypesTest, TypeBytesAndEquality) {
  EXPECT_EQ(F32(4).bytes(), 16u);
  EXPECT_EQ(F64(16).bytes(), 128u);
  EXPECT_EQ(I32().bytes(), 4u);
  EXPECT_TRUE(F32(4) == Type(ScalarType::kF32, 4));
  EXPECT_FALSE(F32(4) == F32(2));
  EXPECT_FALSE(F32(4) == I32(4));
}

TEST(TypesTest, FloatTypeHelper) {
  EXPECT_EQ(FloatType(false).scalar, ScalarType::kF32);
  EXPECT_EQ(FloatType(true).scalar, ScalarType::kF64);
  EXPECT_EQ(FloatType(true, 8).lanes, 8);
}

TEST(TypesTest, ToString) {
  EXPECT_EQ(F32().ToString(), "f32");
  EXPECT_EQ(F64(4).ToString(), "f64x4");
  EXPECT_EQ(I64(16).ToString(), "i64x16");
}

TEST(OpcodeTest, EveryOpcodeHasName) {
  for (int op = 0; op < kNumOpcodeValues; ++op) {
    EXPECT_NE(OpcodeName(static_cast<Opcode>(op)), "<bad>")
        << "opcode " << op;
  }
}

TEST(OpcodeTest, EveryOpcodeHasClass) {
  for (int op = 0; op < kNumOpcodeValues; ++op) {
    const OpClass c = ClassifyOpcode(static_cast<Opcode>(op));
    EXPECT_LT(static_cast<int>(c), kNumOpClasses);
  }
}

TEST(OpcodeTest, ClassificationSpotChecks) {
  EXPECT_EQ(ClassifyOpcode(Opcode::kAdd), OpClass::kArithSimple);
  EXPECT_EQ(ClassifyOpcode(Opcode::kMul), OpClass::kArithMul);
  EXPECT_EQ(ClassifyOpcode(Opcode::kFma), OpClass::kArithMul);
  EXPECT_EQ(ClassifyOpcode(Opcode::kRsqrt), OpClass::kArithSpecial);
  EXPECT_EQ(ClassifyOpcode(Opcode::kIDiv), OpClass::kArithSpecial);
  EXPECT_EQ(ClassifyOpcode(Opcode::kSplat), OpClass::kBroadcast);
  EXPECT_EQ(ClassifyOpcode(Opcode::kLoad), OpClass::kLoad);
  EXPECT_EQ(ClassifyOpcode(Opcode::kStore), OpClass::kStore);
  EXPECT_EQ(ClassifyOpcode(Opcode::kAtomicAddI32), OpClass::kAtomic);
  EXPECT_EQ(ClassifyOpcode(Opcode::kBarrier), OpClass::kBarrier);
  EXPECT_EQ(ClassifyOpcode(Opcode::kLoopBegin), OpClass::kControl);
  EXPECT_EQ(ClassifyOpcode(Opcode::kSlide), OpClass::kArithSimple);
}

TEST(RegValueTest, SizeIs128Bytes) {
  EXPECT_EQ(sizeof(RegValue), 128u);
}

}  // namespace
}  // namespace malisim::kir
