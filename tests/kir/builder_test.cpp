#include "kir/builder.h"

#include <gtest/gtest.h>

#include "kir/program.h"

namespace malisim::kir {
namespace {

TEST(BuilderTest, MinimalKernelBuilds) {
  KernelBuilder kb("copy");
  auto in = kb.ArgBuffer("in", ScalarType::kF32, ArgKind::kBufferRO);
  auto out = kb.ArgBuffer("out", ScalarType::kF32, ArgKind::kBufferWO);
  Val gid = kb.GlobalId(0);
  kb.Store(out, gid, kb.Load(in, gid));
  StatusOr<Program> p = kb.Build();
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->name, "copy");
  EXPECT_EQ(p->num_buffer_args(), 2u);
  EXPECT_TRUE(p->finalized());
  EXPECT_FALSE(p->has_barrier());
}

TEST(BuilderTest, OperatorSugarEmitsArithmetic) {
  KernelBuilder kb("ops");
  auto out = kb.ArgBuffer("out", ScalarType::kF32, ArgKind::kBufferWO);
  Val a = kb.ConstF(F32(), 2.0);
  Val b = kb.ConstF(F32(), 3.0);
  Val c = (a + b) * (a - b) / b + 1.0;
  kb.Store(out, kb.ConstI(I32(), 0), c);
  ASSERT_TRUE(kb.Build().ok());
}

TEST(BuilderTest, ScalarArgsTrackSlots) {
  KernelBuilder kb("args");
  auto out = kb.ArgBuffer("out", ScalarType::kI32, ArgKind::kBufferWO);
  Val n = kb.ArgScalar("n", ScalarType::kI32);
  Val m = kb.ArgScalar("m", ScalarType::kI32);
  kb.Store(out, kb.ConstI(I32(), 0), n + m);
  StatusOr<Program> p = kb.Build();
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->num_args(), 3u);
  EXPECT_EQ(p->num_buffer_args(), 1u);
  // Two kArg instructions with distinct slots.
  int arg_count = 0;
  for (const Instr& in : p->code) {
    if (in.op == Opcode::kArg) {
      EXPECT_EQ(in.imm, arg_count);
      ++arg_count;
    }
  }
  EXPECT_EQ(arg_count, 2);
}

TEST(BuilderTest, ForLoopStructureMatches) {
  KernelBuilder kb("loop");
  auto out = kb.ArgBuffer("out", ScalarType::kI32, ArgKind::kBufferWO);
  Val n = kb.ConstI(I32(), 10);
  kb.For("i", kb.ConstI(I32(), 0), n, 1,
         [&](Val i) { kb.Store(out, i, i); });
  StatusOr<Program> p = kb.Build();
  ASSERT_TRUE(p.ok());
  // Finalize resolved loop matches.
  int begin = -1, end = -1;
  for (std::size_t i = 0; i < p->code.size(); ++i) {
    if (p->code[i].op == Opcode::kLoopBegin) begin = static_cast<int>(i);
    if (p->code[i].op == Opcode::kLoopEnd) end = static_cast<int>(i);
  }
  ASSERT_GE(begin, 0);
  ASSERT_GE(end, 0);
  EXPECT_EQ(p->code[static_cast<std::size_t>(begin)].match,
            static_cast<std::uint32_t>(end));
  EXPECT_EQ(p->code[static_cast<std::size_t>(end)].match,
            static_cast<std::uint32_t>(begin));
}

TEST(BuilderTest, IfElseStructureMatches) {
  KernelBuilder kb("branch");
  auto out = kb.ArgBuffer("out", ScalarType::kI32, ArgKind::kBufferWO);
  Val zero = kb.ConstI(I32(), 0);
  Val one = kb.ConstI(I32(), 1);
  Val cond = kb.CmpLt(zero, one);
  kb.If(cond, [&] { kb.Store(out, zero, one); },
        [&] { kb.Store(out, zero, zero); });
  ASSERT_TRUE(kb.Build().ok());
}

TEST(BuilderTest, BarrierSetsFlag) {
  KernelBuilder kb("sync");
  auto out = kb.ArgBuffer("out", ScalarType::kI32, ArgKind::kBufferWO);
  kb.Store(out, kb.ConstI(I32(), 0), kb.ConstI(I32(), 1));
  kb.Barrier();
  StatusOr<Program> p = kb.Build();
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->has_barrier());
}

TEST(BuilderTest, LocalArrayGetsSlotAfterBuffers) {
  KernelBuilder kb("local");
  auto buf = kb.ArgBuffer("buf", ScalarType::kI32, ArgKind::kBufferRW);
  auto scratch = kb.LocalArray("scratch", ScalarType::kI32, 64);
  EXPECT_EQ(buf.slot, 0);
  EXPECT_EQ(scratch.slot, 1);
  Val zero = kb.ConstI(I32(), 0);
  kb.Store(scratch, zero, kb.Load(buf, zero));
  StatusOr<Program> p = kb.Build();
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->num_slots(), 2u);
}

TEST(BuilderTest, VectorOpsBuild) {
  KernelBuilder kb("vec");
  auto in = kb.ArgBuffer("in", ScalarType::kF32, ArgKind::kBufferRO);
  auto out = kb.ArgBuffer("out", ScalarType::kF32, ArgKind::kBufferWO);
  Val zero = kb.ConstI(I32(), 0);
  Val v = kb.Load(in, zero, 0, 4);
  Val w = kb.Load(in, zero, 4, 4);
  Val slid = kb.Slide(v, w, 2);
  Val s = kb.VSum(kb.Fma(v, w, slid));
  Val sv = kb.Splat(s, 4);
  Val x = kb.Extract(sv, 1);
  Val ins = kb.Insert(sv, 3, x);
  kb.Store(out, zero, ins);
  ASSERT_TRUE(kb.Build().ok());
}

TEST(BuilderTest, ForUnrolledCoversRange) {
  // Structural check: factor-4 unroll of a 10-iteration loop emits a main
  // loop plus a remainder loop.
  KernelBuilder kb("unroll");
  auto out = kb.ArgBuffer("out", ScalarType::kI32, ArgKind::kBufferWO);
  Val n = kb.ConstI(I32(), 10);
  int body_emissions = 0;
  kb.ForUnrolled("i", kb.ConstI(I32(), 0), n, 1, 4, [&](Val i) {
    ++body_emissions;
    kb.Store(out, i, i);
  });
  EXPECT_EQ(body_emissions, 5);  // 4 unrolled copies + 1 remainder body
  StatusOr<Program> p = kb.Build();
  ASSERT_TRUE(p.ok());
  int loops = 0;
  for (const Instr& in : p->code) {
    if (in.op == Opcode::kLoopBegin) ++loops;
  }
  EXPECT_EQ(loops, 2);
}

TEST(BuilderTest, ConvertChangesScalarTypeKeepsLanes) {
  KernelBuilder kb("conv");
  auto out = kb.ArgBuffer("out", ScalarType::kF64, ArgKind::kBufferWO);
  Val v = kb.ConstF(F32(4), 1.5);
  Val d = kb.Convert(v, ScalarType::kF64);
  EXPECT_EQ(d.type(), F64(4));
  kb.Store(out, kb.ConstI(I32(), 0), d);
  ASSERT_TRUE(kb.Build().ok());
}

TEST(BuilderTest, RegisterBytesAccumulate) {
  KernelBuilder kb("regs");
  auto out = kb.ArgBuffer("out", ScalarType::kF32, ArgKind::kBufferWO);
  Val a = kb.ConstF(F32(16), 0.0);  // 64 bytes
  Val b = kb.ConstF(F32(4), 0.0);   // 16 bytes
  kb.Store(out, kb.ConstI(I32(), 0), kb.VSum(a + kb.Splat(kb.VSum(b), 16)));
  StatusOr<Program> p = kb.Build();
  ASSERT_TRUE(p.ok());
  EXPECT_GE(p->register_bytes(), 64u + 16u);
}

TEST(BuilderDeathTest, MixedBuilderValuesAbort) {
  KernelBuilder kb1("a"), kb2("b");
  Val v1 = kb1.ConstF(F32(), 1.0);
  Val v2 = kb2.ConstF(F32(), 2.0);
  EXPECT_DEATH({ auto v = v1 + v2; (void)v; }, "another builder");
}

TEST(BuilderDeathTest, AssignTypeMismatchAborts) {
  KernelBuilder kb("bad");
  Val f = kb.Var(F32(), "f");
  Val i = kb.ConstI(I32(), 1);
  EXPECT_DEATH(kb.Assign(f, i), "type mismatch");
}

}  // namespace
}  // namespace malisim::kir
