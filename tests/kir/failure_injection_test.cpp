// Failure-injection tests: the interpreter and device models must turn
// broken kernels and broken launches into errors, never into silent
// corruption or crashes.
#include <vector>

#include <gtest/gtest.h>

#include "kir/builder.h"
#include "kir/interp.h"

namespace malisim::kir {
namespace {

TEST(FailureInjectionTest, BarrierDivergenceDetected) {
  // Half the work-group skips the barrier: classic undefined behaviour in
  // OpenCL; the interpreter reports it instead of hanging.
  KernelBuilder kb("divergent_barrier");
  auto out = kb.ArgBuffer("out", ScalarType::kI32, ArgKind::kBufferWO);
  Val lid = kb.LocalId(0);
  Val cond = kb.CmpLt(lid, kb.ConstI(I32(), 2));
  kb.If(cond, [&] { kb.Barrier(); });
  kb.Store(out, kb.GlobalId(0), lid);
  Program p = *kb.Build();
  ASSERT_TRUE(p.has_barrier());

  std::vector<std::int32_t> data(4, 0);
  Bindings b;
  b.buffers = {{reinterpret_cast<std::byte*>(data.data()), 0x1000, 16}};
  std::vector<std::byte> scratch(64);
  b.local_scratch = {scratch.data(), 0xF0000, scratch.size()};
  LaunchConfig config;
  config.global_size = {4, 1, 1};
  config.local_size = {4, 1, 1};
  auto run = RunProgram(p, config, std::move(b));
  ASSERT_FALSE(run.ok());
  EXPECT_NE(run.status().message().find("barrier divergence"),
            std::string::npos);
}

TEST(FailureInjectionTest, UniformlyGuardedBarrierIsFine) {
  // All work-items take the same path: legal.
  KernelBuilder kb("uniform_barrier");
  auto out = kb.ArgBuffer("out", ScalarType::kI32, ArgKind::kBufferWO);
  Val size = kb.LocalSize(0);
  Val cond = kb.CmpLt(size, kb.ConstI(I32(), 100));  // uniform across group
  kb.If(cond, [&] { kb.Barrier(); });
  kb.Store(out, kb.GlobalId(0), kb.LocalId(0));
  Program p = *kb.Build();
  std::vector<std::int32_t> data(4, 0);
  Bindings b;
  b.buffers = {{reinterpret_cast<std::byte*>(data.data()), 0x1000, 16}};
  std::vector<std::byte> scratch(64);
  b.local_scratch = {scratch.data(), 0xF0000, scratch.size()};
  LaunchConfig config;
  config.global_size = {4, 1, 1};
  config.local_size = {4, 1, 1};
  EXPECT_TRUE(RunProgram(p, config, std::move(b)).ok());
}

TEST(FailureInjectionTest, ScratchTooSmallRejected) {
  KernelBuilder kb("big_local");
  auto out = kb.ArgBuffer("out", ScalarType::kI32, ArgKind::kBufferWO);
  auto tile = kb.LocalArray("tile", ScalarType::kF32, 1024);  // 4 KiB
  Val zero = kb.ConstI(I32(), 0);
  kb.Store(tile, zero, kb.ConstF(F32(), 1.0));
  kb.Store(out, zero, zero);
  Program p = *kb.Build();
  std::int32_t sink = 0;
  Bindings b;
  b.buffers = {{reinterpret_cast<std::byte*>(&sink), 0x1000, 4}};
  std::vector<std::byte> scratch(64);  // far too small
  b.local_scratch = {scratch.data(), 0xF0000, scratch.size()};
  auto run = RunProgram(p, LaunchConfig{}, std::move(b));
  ASSERT_FALSE(run.ok());
  EXPECT_NE(run.status().message().find("scratch"), std::string::npos);
}

TEST(FailureInjectionTest, NegativeIndexLoadRejected) {
  KernelBuilder kb("negative");
  auto in = kb.ArgBuffer("in", ScalarType::kF32, ArgKind::kBufferRO);
  auto out = kb.ArgBuffer("out", ScalarType::kF32, ArgKind::kBufferWO);
  Val minus = kb.ConstI(I32(), -1);
  kb.Store(out, kb.ConstI(I32(), 0), kb.Load(in, minus));
  Program p = *kb.Build();
  std::vector<float> data(4, 0);
  Bindings b;
  b.buffers = {{reinterpret_cast<std::byte*>(data.data()), 0x1000, 16},
               {reinterpret_cast<std::byte*>(data.data()), 0x2000, 16}};
  EXPECT_FALSE(RunProgram(p, LaunchConfig{}, std::move(b)).ok());
}

TEST(FailureInjectionTest, VectorLoadStraddlingEndRejected) {
  // Scalar index in range, but the vec4 tail runs past the buffer.
  KernelBuilder kb("straddle");
  auto in = kb.ArgBuffer("in", ScalarType::kF32, ArgKind::kBufferRO);
  auto out = kb.ArgBuffer("out", ScalarType::kF32, ArgKind::kBufferWO);
  Val idx = kb.ConstI(I32(), 6);
  kb.Store(out, kb.ConstI(I32(), 0), kb.Load(in, idx, 0, 4));
  Program p = *kb.Build();
  std::vector<float> data(8, 0);
  Bindings b;
  b.buffers = {{reinterpret_cast<std::byte*>(data.data()), 0x1000, 32},
               {reinterpret_cast<std::byte*>(data.data()), 0x2000, 32}};
  EXPECT_FALSE(RunProgram(p, LaunchConfig{}, std::move(b)).ok());
}

TEST(FailureInjectionTest, AtomicOutOfBoundsRejected) {
  KernelBuilder kb("atomic_oob");
  auto counters = kb.ArgBuffer("counters", ScalarType::kI32, ArgKind::kBufferRW);
  kb.AtomicAdd(counters, kb.ConstI(I32(), 100), kb.ConstI(I32(), 1));
  Program p = *kb.Build();
  std::int32_t c = 0;
  Bindings b;
  b.buffers = {{reinterpret_cast<std::byte*>(&c), 0x1000, 4}};
  EXPECT_FALSE(RunProgram(p, LaunchConfig{}, std::move(b)).ok());
}

TEST(FailureInjectionTest, ErrorsDoNotCorruptOtherBuffers) {
  // A kernel that writes out[0] then faults: the error is reported and
  // nothing outside the buffer was touched (the canary survives).
  KernelBuilder kb("partial");
  auto out = kb.ArgBuffer("out", ScalarType::kI32, ArgKind::kBufferWO);
  Val zero = kb.ConstI(I32(), 0);
  kb.Store(out, zero, kb.ConstI(I32(), 42));
  kb.Store(out, kb.ConstI(I32(), 1000), zero);  // fault
  Program p = *kb.Build();
  struct {
    std::int32_t buffer[4] = {0, 0, 0, 0};
    std::int32_t canary = 0x5AFE;
  } mem;
  Bindings b;
  b.buffers = {{reinterpret_cast<std::byte*>(mem.buffer), 0x1000, 16}};
  EXPECT_FALSE(RunProgram(p, LaunchConfig{}, std::move(b)).ok());
  EXPECT_EQ(mem.buffer[0], 42);     // the pre-fault store landed
  EXPECT_EQ(mem.canary, 0x5AFE);    // nothing leaked past the binding
}

}  // namespace
}  // namespace malisim::kir
