// Unit tests for the KIR -> bytecode compiler (kir/vm/compile.cpp): fusion
// rules, side-table (tally / src_pc / weight) integrity, const-pool
// broadcasting, register compaction, and error parity with the reference
// interpreter. The execution-level equivalence lives in vm_diff_fuzz_test.
#include <algorithm>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "kir/builder.h"
#include "kir/interp.h"
#include "kir/vm/bytecode.h"

namespace malisim::kir {
namespace {

using vm::CompiledProgram;
using vm::VOp;

std::shared_ptr<const CompiledProgram> Compile(const Program& p) {
  StatusOr<std::shared_ptr<const CompiledProgram>> compiled =
      vm::CompileProgram(p);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  return compiled.ok() ? *std::move(compiled) : nullptr;
}

std::size_t CountOp(const CompiledProgram& cp, VOp op) {
  return static_cast<std::size_t>(
      std::count_if(cp.code.begin(), cp.code.end(),
                    [op](const vm::VInstr& in) { return in.op == op; }));
}

/// Number of tally slots attached to the vpc-th instruction.
std::size_t TallyCount(const CompiledProgram& cp, std::size_t vpc) {
  return cp.tally_begin[vpc + 1] - cp.tally_begin[vpc];
}

TEST(VmCompileTest, FusesSingleUseScalarCompareIntoBranch) {
  KernelBuilder kb("fused");
  auto buf = kb.ArgBuffer("buf", ScalarType::kF32, ArgKind::kBufferRW);
  Val gid = kb.GlobalId(0);
  Val x = kb.Load(buf, gid);
  kb.If(kb.CmpLt(x, kb.ConstF(F32(), 1.0)),
        [&] { kb.Store(buf, gid, x + x); });
  const Program p = *kb.Build();
  const auto cp = Compile(p);
  ASSERT_NE(cp, nullptr);

  ASSERT_EQ(CountOp(*cp, VOp::kCmpBrLtF32), 1u);
  EXPECT_EQ(CountOp(*cp, VOp::kCmpLtF32), 0u);
  EXPECT_EQ(CountOp(*cp, VOp::kBrZero), 0u);
  // The fused pair collapses two source instructions into one VInstr.
  EXPECT_EQ(cp->code.size(), p.code.size() - 1);

  const auto it = std::find_if(
      cp->code.begin(), cp->code.end(),
      [](const vm::VInstr& in) { return in.op == VOp::kCmpBrLtF32; });
  const std::size_t vpc =
      static_cast<std::size_t>(std::distance(cp->code.begin(), it));
  // Two source instructions' worth of accounting on the fused op: the
  // compare first, then the kIfBegin, and a step weight of 2.
  ASSERT_EQ(TallyCount(*cp, vpc), 2u);
  EXPECT_EQ(cp->tally_slots[cp->tally_begin[vpc]].op, Opcode::kCmpLt);
  EXPECT_EQ(cp->tally_slots[cp->tally_begin[vpc] + 1].op, Opcode::kIfBegin);
  EXPECT_EQ(cp->weight[vpc], 2);
}

TEST(VmCompileTest, NoFusionWhenCompareResultIsReused) {
  KernelBuilder kb("reused");
  auto buf = kb.ArgBuffer("buf", ScalarType::kF32, ArgKind::kBufferRW);
  Val gid = kb.GlobalId(0);
  Val x = kb.Load(buf, gid);
  Val cond = kb.CmpLt(x, kb.ConstF(F32(), 1.0));
  Val y = kb.Select(cond, x, x + x);  // second use keeps the mask alive
  kb.If(cond, [&] { kb.Store(buf, gid, y); });
  const Program p = *kb.Build();
  const auto cp = Compile(p);
  ASSERT_NE(cp, nullptr);

  EXPECT_EQ(CountOp(*cp, VOp::kCmpBrLtF32), 0u);
  EXPECT_EQ(CountOp(*cp, VOp::kCmpLtF32), 1u);
  EXPECT_EQ(CountOp(*cp, VOp::kBrZero), 1u);
  // No fusion: the bytecode is instruction-for-instruction with the source.
  EXPECT_EQ(cp->code.size(), p.code.size());
}

TEST(VmCompileTest, NoFusionForVectorCompares) {
  KernelBuilder kb("vector_cmp");
  auto buf = kb.ArgBuffer("buf", ScalarType::kF32, ArgKind::kBufferRW);
  Val gid = kb.GlobalId(0);
  Val v = kb.Splat(kb.Load(buf, gid), 4);
  Val mask = kb.CmpLt(v, kb.ConstF(F32(4), 1.0));
  kb.Store(buf, gid, kb.Extract(kb.Select(mask, v, v + v), 0));
  const Program p = *kb.Build();
  const auto cp = Compile(p);
  ASSERT_NE(cp, nullptr);
  EXPECT_EQ(CountOp(*cp, VOp::kCmpLtF32), 1u);
  for (const vm::VInstr& in : cp->code) {
    const bool fused =
        static_cast<int>(in.op) >= static_cast<int>(VOp::kCmpBrLtF32) &&
        static_cast<int>(in.op) <= static_cast<int>(VOp::kCmpBrNeI64);
    EXPECT_FALSE(fused) << "fused op " << static_cast<int>(in.op);
  }
}

TEST(VmCompileTest, FusesReductionBodyIntoLoadFmaLoopEnd) {
  // The dmmm shape: the loop body `acc = fma(load a, load b, acc)` ends
  // load / fma / mov / loop-end, which the compiler collapses into one
  // kLoadFmaLoopEndF32 carrying all four source steps.
  KernelBuilder kb("reduction");
  auto a = kb.ArgBuffer("a", ScalarType::kF32, ArgKind::kBufferRO);
  auto b = kb.ArgBuffer("b", ScalarType::kF32, ArgKind::kBufferRO);
  auto c = kb.ArgBuffer("c", ScalarType::kF32, ArgKind::kBufferWO);
  Val gid = kb.GlobalId(0);
  Val acc = kb.Var(F32(4), "acc");
  kb.Assign(acc, kb.ConstF(F32(4), 0.0));
  kb.For("k", kb.ConstI(I32(), 0), kb.ConstI(I32(), 64), 4, [&](Val k) {
    kb.Assign(acc, kb.Fma(kb.Load(a, k, 0, 4), kb.Load(b, k, 0, 4), acc));
  });
  kb.Store(c, gid, kb.VSum(acc));
  const Program p = *kb.Build();
  const auto cp = Compile(p);
  ASSERT_NE(cp, nullptr);

  ASSERT_EQ(CountOp(*cp, VOp::kLoadFmaLoopEndF32), 1u);
  EXPECT_EQ(CountOp(*cp, VOp::kLoopEnd), 0u);
  const auto it = std::find_if(
      cp->code.begin(), cp->code.end(),
      [](const vm::VInstr& in) { return in.op == VOp::kLoadFmaLoopEndF32; });
  const std::size_t vpc =
      static_cast<std::size_t>(std::distance(cp->code.begin(), it));
  EXPECT_EQ(cp->weight[vpc], 4);
  EXPECT_EQ(it->weight, 4);
  ASSERT_EQ(TallyCount(*cp, vpc), 4u);
  EXPECT_EQ(cp->tally_slots[cp->tally_begin[vpc]].op, Opcode::kLoad);
  EXPECT_EQ(cp->tally_slots[cp->tally_begin[vpc] + 1].op, Opcode::kFma);
  EXPECT_EQ(cp->tally_slots[cp->tally_begin[vpc] + 2].op, Opcode::kMov);
  EXPECT_EQ(cp->tally_slots[cp->tally_begin[vpc] + 3].op, Opcode::kLoopEnd);
  // The back-edge (high half of imm) re-enters the loop body at the first
  // unfused load, one instruction past the kLoopBegin.
  const std::size_t branch =
      static_cast<std::size_t>(static_cast<std::uint64_t>(it->imm) >> 32);
  ASSERT_LT(branch, cp->code.size());
  EXPECT_EQ(cp->code[branch].op, VOp::kLoad);
}

TEST(VmCompileTest, FusesLoadIntoSplatConsumer) {
  // The conv tap shape: `splat(load(w, t), 4)` becomes one kLoadSplatF32.
  KernelBuilder kb("tap");
  auto w = kb.ArgBuffer("w", ScalarType::kF32, ArgKind::kBufferRO);
  auto out = kb.ArgBuffer("out", ScalarType::kF32, ArgKind::kBufferWO);
  Val gid = kb.GlobalId(0);
  Val v = kb.Splat(kb.Load(w, gid), 4);
  kb.Store(out, gid, kb.Extract(v, 0));
  const Program p = *kb.Build();
  const auto cp = Compile(p);
  ASSERT_NE(cp, nullptr);

  ASSERT_EQ(CountOp(*cp, VOp::kLoadSplatF32), 1u);
  const auto it = std::find_if(
      cp->code.begin(), cp->code.end(),
      [](const vm::VInstr& in) { return in.op == VOp::kLoadSplatF32; });
  const std::size_t vpc =
      static_cast<std::size_t>(std::distance(cp->code.begin(), it));
  EXPECT_EQ(cp->weight[vpc], 2);
  ASSERT_EQ(TallyCount(*cp, vpc), 2u);
  EXPECT_EQ(cp->tally_slots[cp->tally_begin[vpc]].op, Opcode::kLoad);
  EXPECT_EQ(cp->tally_slots[cp->tally_begin[vpc] + 1].op, Opcode::kSplat);
  // The load half keeps its own byte count: a 1-lane f32 element.
  EXPECT_EQ(it->access_bytes, 4u);
  EXPECT_EQ(it->lanes, 4);  // the splat's width drives the consumer body
}

TEST(VmCompileTest, SideTablesCoverEverySourceInstruction) {
  KernelBuilder kb("tables");
  auto buf = kb.ArgBuffer("buf", ScalarType::kF32, ArgKind::kBufferRW);
  Val gid = kb.GlobalId(0);
  Val acc = kb.Var(F32(), "acc");
  kb.Assign(acc, kb.Load(buf, gid));
  kb.For("i", kb.ConstI(I32(), 0), kb.ConstI(I32(), 4), 1,
         [&](Val) { kb.Assign(acc, acc * acc); });
  kb.If(kb.CmpLt(acc, kb.ConstF(F32(), 10.0)),
        [&] { kb.Assign(acc, acc + kb.ConstF(F32(), 1.0)); },
        [&] { kb.Assign(acc, kb.ConstF(F32(), 0.0)); });
  kb.Store(buf, gid, acc);
  const Program p = *kb.Build();
  const auto cp = Compile(p);
  ASSERT_NE(cp, nullptr);

  EXPECT_EQ(cp->source_len, p.code.size());
  EXPECT_EQ(cp->src_pc.size(), cp->code.size());
  EXPECT_EQ(cp->weight.size(), cp->code.size());
  ASSERT_EQ(cp->tally_begin.size(), cp->code.size() + 1);
  // Every source instruction is accounted for exactly once across the
  // flattened tally spans (that is what keeps opcode tallies and the
  // OpHistogram bit-identical to the interpreter).
  EXPECT_EQ(cp->tally_slots.size(), p.code.size());
  std::vector<bool> seen(p.code.size(), false);
  for (std::size_t vpc = 0; vpc < cp->code.size(); ++vpc) {
    EXPECT_LT(cp->src_pc[vpc], p.code.size());
    for (std::uint32_t s = cp->tally_begin[vpc]; s < cp->tally_begin[vpc + 1];
         ++s) {
      const Opcode op = cp->tally_slots[s].op;
      EXPECT_EQ(std::count_if(p.code.begin(), p.code.end(),
                              [op](const Instr& in) { return in.op == op; }) >
                    0,
                true);
    }
    seen[cp->src_pc[vpc]] = true;
  }
}

TEST(VmCompileTest, ConstPoolHoldsBroadcastValues) {
  KernelBuilder kb("consts");
  auto buf = kb.ArgBuffer("buf", ScalarType::kF32, ArgKind::kBufferRW);
  Val gid = kb.GlobalId(0);
  Val v = kb.ConstF(F32(4), 2.5);
  kb.Store(buf, gid, kb.VSum(v * kb.Splat(kb.Load(buf, gid), 4)));
  const Program p = *kb.Build();
  const auto cp = Compile(p);
  ASSERT_NE(cp, nullptr);

  const auto it = std::find_if(
      cp->code.begin(), cp->code.end(),
      [](const vm::VInstr& in) { return in.op == VOp::kConst; });
  ASSERT_NE(it, cp->code.end());
  ASSERT_LT(it->target, cp->const_pool.size());
  const RegValue& pooled = cp->const_pool[it->target];
  for (int lane = 0; lane < 4; ++lane) {
    EXPECT_EQ(pooled.f32[lane], 2.5f) << "lane " << lane;
  }
}

TEST(VmCompileTest, CompactsRegisterFile) {
  KernelBuilder kb("compact");
  auto buf = kb.ArgBuffer("buf", ScalarType::kF32, ArgKind::kBufferRW);
  Val gid = kb.GlobalId(0);
  Val acc = kb.Load(buf, gid);
  for (int i = 0; i < 10; ++i) acc = acc + kb.ConstF(F32(), 1.0);
  kb.Store(buf, gid, acc);
  const Program p = *kb.Build();
  const auto cp = Compile(p);
  ASSERT_NE(cp, nullptr);
  // The compacted register file never exceeds the source file, and every
  // operand fits inside it (register 0 stays the reserved null slot).
  EXPECT_LE(cp->num_regs, p.regs.size());
  for (const vm::VInstr& in : cp->code) {
    for (const RegId r : {in.dst, in.a, in.b, in.c}) {
      EXPECT_LT(r, cp->num_regs);
    }
  }
}

TEST(VmCompileTest, RejectsUnfinalizedProgramLikeInterp) {
  Program p;
  p.name = "raw";
  const auto compiled = vm::CompileProgram(p);
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(compiled.status().message(), "program not finalized: raw");
}

TEST(VmCompileTest, ExecutorRejectsMismatchedBytecode) {
  KernelBuilder kb1("one");
  auto b1 = kb1.ArgBuffer("buf", ScalarType::kF32, ArgKind::kBufferRW);
  kb1.Store(b1, kb1.GlobalId(0), kb1.Load(b1, kb1.GlobalId(0)));
  const Program p1 = *kb1.Build();

  KernelBuilder kb2("two");
  auto b2 = kb2.ArgBuffer("buf", ScalarType::kF32, ArgKind::kBufferRW);
  Val x = kb2.Load(b2, kb2.GlobalId(0));
  kb2.Store(b2, kb2.GlobalId(0), x + x);
  const Program p2 = *kb2.Build();

  const auto cp1 = Compile(p1);
  ASSERT_NE(cp1, nullptr);
  std::vector<float> data(64, 1.0f);
  Bindings bind;
  bind.buffers = {{reinterpret_cast<std::byte*>(data.data()), 0x1000,
                   data.size() * 4}};
  LaunchConfig config;
  config.global_size = {32, 1, 1};
  config.local_size = {8, 1, 1};
  StatusOr<Executor> executor = Executor::Create(
      &p2, config, std::move(bind), KirExec::kBytecode, cp1);
  ASSERT_FALSE(executor.ok());
  EXPECT_EQ(executor.status().code(), ErrorCode::kInternal);
}

TEST(VmCompileTest, StrengthReducesAddressArithmeticToShifts) {
  KernelBuilder kb("addr");
  auto buf = kb.ArgBuffer("buf", ScalarType::kF64, ArgKind::kBufferRW);
  Val gid = kb.GlobalId(0);
  kb.Store(buf, gid, kb.Load(buf, gid));
  const Program p = *kb.Build();
  const auto cp = Compile(p);
  ASSERT_NE(cp, nullptr);
  for (const vm::VInstr& in : cp->code) {
    if (in.op != VOp::kLoad && in.op != VOp::kStore) continue;
    // f64: 8-byte elements -> shift of 3, and the pre-multiplied access
    // width rides in the instruction.
    EXPECT_EQ(in.aux8, 3);
    EXPECT_EQ(in.access_bytes, 8u);
  }
}

}  // namespace
}  // namespace malisim::kir
