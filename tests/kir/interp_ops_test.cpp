// Parameterized per-operation semantics sweep: every arithmetic opcode is
// executed through a tiny kernel for each (scalar type, lane count)
// combination and compared against the host computing the same expression.
#include <cmath>
#include <cstring>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/prng.h"
#include "kir/builder.h"
#include "kir/interp.h"

namespace malisim::kir {
namespace {

using OpCase = std::tuple<Opcode, ScalarType, int /*lanes*/>;

/// Reference semantics for one lane.
double RefBinary(Opcode op, double a, double b) {
  switch (op) {
    case Opcode::kAdd: return a + b;
    case Opcode::kSub: return a - b;
    case Opcode::kMul: return a * b;
    case Opcode::kDiv: return a / b;
    case Opcode::kMin: return std::fmin(a, b);
    case Opcode::kMax: return std::fmax(a, b);
    default: ADD_FAILURE(); return 0.0;
  }
}

std::int64_t RefBinaryInt(Opcode op, std::int64_t a, std::int64_t b) {
  switch (op) {
    case Opcode::kAdd: return a + b;
    case Opcode::kSub: return a - b;
    case Opcode::kMul: return a * b;
    case Opcode::kDiv:
    case Opcode::kIDiv: return a / b;
    case Opcode::kIRem: return a % b;
    case Opcode::kMin: return std::min(a, b);
    case Opcode::kMax: return std::max(a, b);
    case Opcode::kAnd: return a & b;
    case Opcode::kOr: return a | b;
    case Opcode::kXor: return a ^ b;
    default: ADD_FAILURE(); return 0;
  }
}

class BinaryOpTest : public ::testing::TestWithParam<OpCase> {};

TEST_P(BinaryOpTest, MatchesHostSemantics) {
  const auto [op, scalar, lanes] = GetParam();
  const Type type(scalar, static_cast<std::uint8_t>(lanes));
  const bool is_float = IsFloat(scalar);

  KernelBuilder kb("binop");
  auto a_buf = kb.ArgBuffer("a", scalar, ArgKind::kBufferRO);
  auto b_buf = kb.ArgBuffer("b", scalar, ArgKind::kBufferRO);
  auto out_buf = kb.ArgBuffer("out", scalar, ArgKind::kBufferWO);
  Val zero = kb.ConstI(I32(), 0);
  Val a = kb.Load(a_buf, zero, 0, static_cast<std::uint8_t>(lanes));
  Val b = kb.Load(b_buf, zero, 0, static_cast<std::uint8_t>(lanes));
  kb.Store(out_buf, zero, kb.Binary(op, a, b));
  Program p = *kb.Build();

  // Inputs: positive, mixed-sign, never zero (division cases).
  Xoshiro256 rng(static_cast<std::uint64_t>(op) * 131 +
                 static_cast<std::uint64_t>(scalar) * 17 +
                 static_cast<std::uint64_t>(lanes));
  std::vector<double> av(static_cast<std::size_t>(lanes)),
      bv(static_cast<std::size_t>(lanes));
  for (int l = 0; l < lanes; ++l) {
    av[static_cast<std::size_t>(l)] =
        is_float ? rng.NextDouble(-8, 8)
                 : static_cast<double>(static_cast<std::int64_t>(rng.NextBounded(200)) - 100);
    double b_raw = is_float ? rng.NextDouble(0.5, 9)
                            : static_cast<double>(rng.NextBounded(50) + 1);
    if (rng.NextDouble() < 0.5) b_raw = -b_raw;
    bv[static_cast<std::size_t>(l)] = b_raw;
  }

  // Type-erased storage.
  std::vector<std::byte> a_mem(static_cast<std::size_t>(lanes) * 8),
      b_mem(a_mem.size()), out_mem(a_mem.size());
  auto fill = [&](std::vector<std::byte>& mem, const std::vector<double>& vals) {
    for (int l = 0; l < lanes; ++l) {
      const double v = vals[static_cast<std::size_t>(l)];
      switch (scalar) {
        case ScalarType::kF32: {
          const float f = static_cast<float>(v);
          std::memcpy(mem.data() + l * 4, &f, 4);
          break;
        }
        case ScalarType::kF64:
          std::memcpy(mem.data() + l * 8, &v, 8);
          break;
        case ScalarType::kI32: {
          const std::int32_t i = static_cast<std::int32_t>(v);
          std::memcpy(mem.data() + l * 4, &i, 4);
          break;
        }
        case ScalarType::kI64: {
          const std::int64_t i = static_cast<std::int64_t>(v);
          std::memcpy(mem.data() + l * 8, &i, 8);
          break;
        }
      }
    }
  };
  fill(a_mem, av);
  fill(b_mem, bv);

  Bindings bindings;
  bindings.buffers = {{a_mem.data(), 0x1000, a_mem.size()},
                      {b_mem.data(), 0x2000, b_mem.size()},
                      {out_mem.data(), 0x3000, out_mem.size()}};
  auto run = RunProgram(p, LaunchConfig{}, std::move(bindings));
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  for (int l = 0; l < lanes; ++l) {
    switch (scalar) {
      case ScalarType::kF32: {
        float got;
        std::memcpy(&got, out_mem.data() + l * 4, 4);
        const float want = static_cast<float>(
            RefBinary(op, static_cast<double>(static_cast<float>(av[static_cast<std::size_t>(l)])),
                      static_cast<double>(static_cast<float>(bv[static_cast<std::size_t>(l)]))));
        EXPECT_NEAR(got, want, std::fabs(want) * 1e-6 + 1e-6) << "lane " << l;
        break;
      }
      case ScalarType::kF64: {
        double got;
        std::memcpy(&got, out_mem.data() + l * 8, 8);
        const double want =
            RefBinary(op, av[static_cast<std::size_t>(l)], bv[static_cast<std::size_t>(l)]);
        EXPECT_DOUBLE_EQ(got, want) << "lane " << l;
        break;
      }
      case ScalarType::kI32: {
        std::int32_t got;
        std::memcpy(&got, out_mem.data() + l * 4, 4);
        const std::int64_t want = RefBinaryInt(
            op, static_cast<std::int64_t>(av[static_cast<std::size_t>(l)]),
            static_cast<std::int64_t>(bv[static_cast<std::size_t>(l)]));
        EXPECT_EQ(got, static_cast<std::int32_t>(want)) << "lane " << l;
        break;
      }
      case ScalarType::kI64: {
        std::int64_t got;
        std::memcpy(&got, out_mem.data() + l * 8, 8);
        const std::int64_t want = RefBinaryInt(
            op, static_cast<std::int64_t>(av[static_cast<std::size_t>(l)]),
            static_cast<std::int64_t>(bv[static_cast<std::size_t>(l)]));
        EXPECT_EQ(got, want) << "lane " << l;
        break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    FloatOps, BinaryOpTest,
    ::testing::Combine(::testing::Values(Opcode::kAdd, Opcode::kSub,
                                         Opcode::kMul, Opcode::kDiv,
                                         Opcode::kMin, Opcode::kMax),
                       ::testing::Values(ScalarType::kF32, ScalarType::kF64),
                       ::testing::Values(1, 2, 4, 8, 16)));

INSTANTIATE_TEST_SUITE_P(
    IntOps, BinaryOpTest,
    ::testing::Combine(::testing::Values(Opcode::kAdd, Opcode::kSub,
                                         Opcode::kMul, Opcode::kIDiv,
                                         Opcode::kIRem, Opcode::kMin,
                                         Opcode::kMax, Opcode::kAnd,
                                         Opcode::kOr, Opcode::kXor),
                       ::testing::Values(ScalarType::kI32, ScalarType::kI64),
                       ::testing::Values(1, 4, 16)));

// ---- unary float ops ----

using UnaryCase = std::tuple<Opcode, ScalarType, int>;

class UnaryOpTest : public ::testing::TestWithParam<UnaryCase> {};

TEST_P(UnaryOpTest, MatchesHostSemantics) {
  const auto [op, scalar, lanes] = GetParam();
  KernelBuilder kb("unop");
  auto in_buf = kb.ArgBuffer("in", scalar, ArgKind::kBufferRO);
  auto out_buf = kb.ArgBuffer("out", scalar, ArgKind::kBufferWO);
  Val zero = kb.ConstI(I32(), 0);
  Val v = kb.Load(in_buf, zero, 0, static_cast<std::uint8_t>(lanes));
  kb.Store(out_buf, zero, kb.Unary(op, v));
  Program p = *kb.Build();

  auto ref = [op](double x) {
    switch (op) {
      case Opcode::kSqrt: return std::sqrt(x);
      case Opcode::kRsqrt: return 1.0 / std::sqrt(x);
      case Opcode::kExp: return std::exp(x);
      case Opcode::kLog: return std::log(x);
      case Opcode::kSin: return std::sin(x);
      case Opcode::kCos: return std::cos(x);
      case Opcode::kNeg: return -x;
      case Opcode::kAbs: return std::fabs(x);
      case Opcode::kFloor: return std::floor(x);
      default: ADD_FAILURE(); return 0.0;
    }
  };

  Xoshiro256 rng(static_cast<std::uint64_t>(op) * 7 + lanes);
  const bool fp64 = scalar == ScalarType::kF64;
  std::vector<double> xs(static_cast<std::size_t>(lanes));
  for (auto& x : xs) x = rng.NextDouble(0.1, 4.0);  // positive: sqrt/log safe

  std::vector<std::byte> in_mem(static_cast<std::size_t>(lanes) * 8),
      out_mem(in_mem.size());
  for (int l = 0; l < lanes; ++l) {
    if (fp64) {
      std::memcpy(in_mem.data() + l * 8, &xs[static_cast<std::size_t>(l)], 8);
    } else {
      const float f = static_cast<float>(xs[static_cast<std::size_t>(l)]);
      std::memcpy(in_mem.data() + l * 4, &f, 4);
    }
  }
  Bindings bindings;
  bindings.buffers = {{in_mem.data(), 0x1000, in_mem.size()},
                      {out_mem.data(), 0x2000, out_mem.size()}};
  ASSERT_TRUE(RunProgram(p, LaunchConfig{}, std::move(bindings)).ok());

  for (int l = 0; l < lanes; ++l) {
    if (fp64) {
      double got;
      std::memcpy(&got, out_mem.data() + l * 8, 8);
      EXPECT_NEAR(got, ref(xs[static_cast<std::size_t>(l)]), 1e-12);
    } else {
      float got;
      std::memcpy(&got, out_mem.data() + l * 4, 4);
      const double want =
          ref(static_cast<double>(static_cast<float>(xs[static_cast<std::size_t>(l)])));
      EXPECT_NEAR(got, want, std::fabs(want) * 1e-5 + 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    FloatUnary, UnaryOpTest,
    ::testing::Combine(::testing::Values(Opcode::kSqrt, Opcode::kRsqrt,
                                         Opcode::kExp, Opcode::kLog,
                                         Opcode::kSin, Opcode::kCos,
                                         Opcode::kNeg, Opcode::kAbs,
                                         Opcode::kFloor),
                       ::testing::Values(ScalarType::kF32, ScalarType::kF64),
                       ::testing::Values(1, 4, 16)));

// ---- lane manipulation ----

class LaneOpTest : public ::testing::TestWithParam<int> {};

TEST_P(LaneOpTest, SlideSelectsWindow) {
  const int shift = GetParam();
  KernelBuilder kb("slide");
  auto out_buf = kb.ArgBuffer("out", ScalarType::kI32, ArgKind::kBufferWO);
  Val zero = kb.ConstI(I32(), 0);
  // a = [0,1,2,3], b = [4,5,6,7] built via inserts.
  Val a = kb.ConstI(I32(4), 0);
  Val b = kb.ConstI(I32(4), 0);
  for (int l = 0; l < 4; ++l) {
    a = kb.Insert(a, l, kb.ConstI(I32(), l));
    b = kb.Insert(b, l, kb.ConstI(I32(), 4 + l));
  }
  kb.Store(out_buf, zero, kb.Slide(a, b, shift));
  Program p = *kb.Build();

  std::vector<std::int32_t> out(4, -1);
  Bindings bindings;
  bindings.buffers = {{reinterpret_cast<std::byte*>(out.data()), 0x1000, 16}};
  ASSERT_TRUE(RunProgram(p, LaunchConfig{}, std::move(bindings)).ok());
  for (int l = 0; l < 4; ++l) {
    EXPECT_EQ(out[static_cast<std::size_t>(l)], l + shift);
  }
}

INSTANTIATE_TEST_SUITE_P(Shifts, LaneOpTest, ::testing::Values(0, 1, 2, 3, 4));

TEST(LaneOpsTest, VSumAddsAllLanes) {
  KernelBuilder kb("vsum");
  auto out_buf = kb.ArgBuffer("out", ScalarType::kF32, ArgKind::kBufferWO);
  Val v = kb.ConstF(F32(8), 1.5);
  kb.Store(out_buf, kb.ConstI(I32(), 0), kb.VSum(v));
  Program p = *kb.Build();
  float out = 0;
  Bindings bindings;
  bindings.buffers = {{reinterpret_cast<std::byte*>(&out), 0x1000, 4}};
  ASSERT_TRUE(RunProgram(p, LaunchConfig{}, std::move(bindings)).ok());
  EXPECT_FLOAT_EQ(out, 12.0f);
}

TEST(LaneOpsTest, SplatBroadcasts) {
  KernelBuilder kb("splat");
  auto out_buf = kb.ArgBuffer("out", ScalarType::kF64, ArgKind::kBufferWO);
  Val s = kb.ConstF(F64(), 2.25);
  kb.Store(out_buf, kb.ConstI(I32(), 0), kb.Splat(s, 4));
  Program p = *kb.Build();
  double out[4] = {};
  Bindings bindings;
  bindings.buffers = {{reinterpret_cast<std::byte*>(out), 0x1000, 32}};
  ASSERT_TRUE(RunProgram(p, LaunchConfig{}, std::move(bindings)).ok());
  for (double v : out) EXPECT_DOUBLE_EQ(v, 2.25);
}

TEST(LaneOpsTest, ShiftsAreLogical) {
  KernelBuilder kb("shift");
  auto out_buf = kb.ArgBuffer("out", ScalarType::kI32, ArgKind::kBufferWO);
  Val x = kb.ConstI(I32(), -16);
  kb.Store(out_buf, kb.ConstI(I32(), 0), kb.Shr(x, 1));
  kb.Store(out_buf, kb.ConstI(I32(), 1), kb.Shl(x, 1));
  Program p = *kb.Build();
  std::int32_t out[2] = {};
  Bindings bindings;
  bindings.buffers = {{reinterpret_cast<std::byte*>(out), 0x1000, 8}};
  ASSERT_TRUE(RunProgram(p, LaunchConfig{}, std::move(bindings)).ok());
  EXPECT_EQ(out[0], static_cast<std::int32_t>(static_cast<std::uint32_t>(-16) >> 1));
  EXPECT_EQ(out[1], -32);
}

TEST(LaneOpsTest, SelectPicksPerLane) {
  KernelBuilder kb("select");
  auto out_buf = kb.ArgBuffer("out", ScalarType::kF32, ArgKind::kBufferWO);
  Val a = kb.ConstF(F32(4), 0.0);
  for (int l = 0; l < 4; ++l) {
    a = kb.Insert(a, l, kb.ConstF(F32(), l));
  }
  Val threshold = kb.ConstF(F32(4), 1.5);
  Val mask = kb.CmpLt(a, threshold);
  Val low = kb.ConstF(F32(4), -1.0);
  kb.Store(out_buf, kb.ConstI(I32(), 0), kb.Select(mask, low, a));
  Program p = *kb.Build();
  float out[4] = {};
  Bindings bindings;
  bindings.buffers = {{reinterpret_cast<std::byte*>(out), 0x1000, 16}};
  ASSERT_TRUE(RunProgram(p, LaunchConfig{}, std::move(bindings)).ok());
  EXPECT_FLOAT_EQ(out[0], -1.0f);
  EXPECT_FLOAT_EQ(out[1], -1.0f);
  EXPECT_FLOAT_EQ(out[2], 2.0f);
  EXPECT_FLOAT_EQ(out[3], 3.0f);
}

TEST(LaneOpsTest, ConvertAllPairs) {
  // f64 -> i32 truncation, i32 -> f32, i64 -> f64, f32 -> i64.
  KernelBuilder kb("convert");
  auto out_i32 = kb.ArgBuffer("oi", ScalarType::kI32, ArgKind::kBufferWO);
  auto out_f32 = kb.ArgBuffer("of", ScalarType::kF32, ArgKind::kBufferWO);
  Val zero = kb.ConstI(I32(), 0);
  Val d = kb.ConstF(F64(), -2.75);
  kb.Store(out_i32, zero, kb.Convert(d, ScalarType::kI32));
  Val i = kb.ConstI(I32(), 7);
  kb.Store(out_f32, zero, kb.Convert(i, ScalarType::kF32));
  Program p = *kb.Build();
  std::int32_t oi = 0;
  float of = 0;
  Bindings bindings;
  bindings.buffers = {{reinterpret_cast<std::byte*>(&oi), 0x1000, 4},
                      {reinterpret_cast<std::byte*>(&of), 0x2000, 4}};
  ASSERT_TRUE(RunProgram(p, LaunchConfig{}, std::move(bindings)).ok());
  EXPECT_EQ(oi, -2);  // C truncation toward zero
  EXPECT_FLOAT_EQ(of, 7.0f);
}

}  // namespace
}  // namespace malisim::kir
