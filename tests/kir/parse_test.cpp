#include "kir/parse.h"

#include <vector>

#include <gtest/gtest.h>

#include "kir/builder.h"
#include "kir/interp.h"

namespace malisim::kir {
namespace {

/// A kernel exercising most of the surface: args with qualifiers, scalar
/// args, locals, vectors, control flow, memory ops, atomics, barrier.
Program FullSurfaceKernel() {
  KernelBuilder kb("full_surface");
  auto in = kb.ArgBuffer("src", ScalarType::kF32, ArgKind::kBufferRO,
                         /*is_restrict=*/true, /*is_const=*/true);
  auto out = kb.ArgBuffer("dst", ScalarType::kF32, ArgKind::kBufferWO, true);
  auto counters = kb.ArgBuffer("counters", ScalarType::kI32, ArgKind::kBufferRW);
  Val n = kb.ArgScalar("n", ScalarType::kI32);
  auto tile = kb.LocalArray("tile", ScalarType::kF32, 64);

  Val lid = kb.LocalId(0);
  Val gid = kb.GlobalId(0);
  kb.Store(tile, lid, kb.Load(in, gid));
  kb.Barrier();

  Val acc = kb.Var(F32(4), "acc");
  kb.Assign(acc, kb.ConstF(F32(4), 0.125));
  kb.For("i", kb.ConstI(I32(), 0), n, 4, [&](Val i) {
    Val v = kb.Load(in, i, 0, 4);
    Val w = kb.Load(in, i, 4, 4);
    Val window = kb.Slide(v, w, 2);
    kb.Assign(acc, kb.Fma(window, kb.Splat(kb.Extract(v, 1), 4), acc));
    kb.If(kb.CmpLt(i, kb.ConstI(I32(), 16)),
          [&] { kb.AtomicAdd(counters, kb.ConstI(I32(), 0), kb.ConstI(I32(), 1)); },
          [&] { kb.AtomicAdd(counters, kb.ConstI(I32(), 1), kb.ConstI(I32(), 1)); });
  });
  kb.Store(out, gid, kb.VSum(acc) + kb.Rsqrt(kb.Load(tile, lid) + 2.0));
  return *kb.Build();
}

TEST(ParseTest, RoundTripPreservesStructure) {
  const Program original = FullSurfaceKernel();
  StatusOr<Program> parsed = ParseProgram(ToText(original));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->name, original.name);
  ASSERT_EQ(parsed->code.size(), original.code.size());
  for (std::size_t i = 0; i < original.code.size(); ++i) {
    EXPECT_EQ(parsed->code[i].op, original.code[i].op) << "instr " << i;
    EXPECT_EQ(parsed->code[i].imm, original.code[i].imm) << "instr " << i;
    EXPECT_EQ(parsed->code[i].slot, original.code[i].slot) << "instr " << i;
  }
  ASSERT_EQ(parsed->args.size(), original.args.size());
  for (std::size_t i = 0; i < original.args.size(); ++i) {
    EXPECT_EQ(parsed->args[i].name, original.args[i].name);
    EXPECT_EQ(parsed->args[i].kind, original.args[i].kind);
    EXPECT_EQ(parsed->args[i].elem, original.args[i].elem);
    EXPECT_EQ(parsed->args[i].is_restrict, original.args[i].is_restrict);
    EXPECT_EQ(parsed->args[i].is_const, original.args[i].is_const);
  }
  ASSERT_EQ(parsed->locals.size(), 1u);
  EXPECT_EQ(parsed->locals[0].elems, 64u);
}

TEST(ParseTest, NormalFormIsIdempotent) {
  // Register numbering is normalized on the first parse; after that,
  // text -> parse -> text is a fixed point.
  const Program original = FullSurfaceKernel();
  StatusOr<Program> once = ParseProgram(ToText(original));
  ASSERT_TRUE(once.ok());
  const std::string normal = ToText(*once);
  StatusOr<Program> twice = ParseProgram(normal);
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(ToText(*twice), normal);
}

TEST(ParseTest, ParsedKernelExecutesIdentically) {
  KernelBuilder kb("axpy");
  auto x = kb.ArgBuffer("x", ScalarType::kF32, ArgKind::kBufferRO);
  auto y = kb.ArgBuffer("y", ScalarType::kF32, ArgKind::kBufferRW);
  Val a = kb.ArgScalar("a", ScalarType::kF32);
  Val gid = kb.GlobalId(0);
  kb.Store(y, gid, kb.Fma(a, kb.Load(x, gid), kb.Load(y, gid)));
  const Program original = *kb.Build();
  StatusOr<Program> parsed = ParseProgram(ToText(original));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  auto run = [](const Program& p) {
    std::vector<float> xs(16, 2.0f), ys(16, 1.0f);
    Bindings b;
    b.buffers = {{reinterpret_cast<std::byte*>(xs.data()), 0x1000, 64},
                 {reinterpret_cast<std::byte*>(ys.data()), 0x2000, 64}};
    b.scalars = {ScalarValue::F32V(3.0f)};
    LaunchConfig config;
    config.global_size = {16, 1, 1};
    EXPECT_TRUE(RunProgram(p, config, std::move(b)).ok());
    return ys;
  };
  EXPECT_EQ(run(original), run(*parsed));
}

TEST(ParseTest, LosslessFloatImmediates) {
  KernelBuilder kb("pi");
  auto out = kb.ArgBuffer("out", ScalarType::kF64, ArgKind::kBufferWO);
  kb.Store(out, kb.ConstI(I32(), 0), kb.ConstF(F64(), 3.141592653589793));
  const Program original = *kb.Build();
  StatusOr<Program> parsed = ParseProgram(ToText(original));
  ASSERT_TRUE(parsed.ok());
  double got = 0;
  Bindings b;
  b.buffers = {{reinterpret_cast<std::byte*>(&got), 0x1000, 8}};
  ASSERT_TRUE(RunProgram(*parsed, LaunchConfig{}, std::move(b)).ok());
  EXPECT_EQ(got, 3.141592653589793);
}

TEST(ParseTest, HandWrittenKernelParses) {
  const char* text = R"(
kernel doubler(inout f32* buf)
  0: global_id r1:i32 0
  1: load r2:f32, r1:i32 slot=0 off=0
  2: const.f r3:f32 2
  3: mul r4:f32, r2:f32, r3:f32
  4: store r4:f32, r1:i32 slot=0 off=0
)";
  StatusOr<Program> parsed = ParseProgram(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  std::vector<float> data = {1.5f, -2.0f};
  Bindings b;
  b.buffers = {{reinterpret_cast<std::byte*>(data.data()), 0x1000, 8}};
  LaunchConfig config;
  config.global_size = {2, 1, 1};
  ASSERT_TRUE(RunProgram(*parsed, config, std::move(b)).ok());
  EXPECT_FLOAT_EQ(data[0], 3.0f);
  EXPECT_FLOAT_EQ(data[1], -4.0f);
}

TEST(ParseTest, InstructionIndicesOptional) {
  const char* text =
      "kernel noidx(out i32* buf)\n"
      "const.i r1:i32 7\n"
      "const.i r2:i32 0\n"
      "store r1:i32, r2:i32 slot=0 off=0\n";
  ASSERT_TRUE(ParseProgram(text).ok());
}

TEST(ParseTest, ErrorsAreLineNumbered) {
  const char* text =
      "kernel bad(out i32* buf)\n"
      "  0: frobnicate r1:i32\n";
  StatusOr<Program> parsed = ParseProgram(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(parsed.status().message().find("frobnicate"), std::string::npos);
}

TEST(ParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseProgram("").ok());
  EXPECT_FALSE(ParseProgram("not a kernel").ok());
  EXPECT_FALSE(ParseProgram("kernel broken(\n").ok());
  // Register re-used at a different type.
  EXPECT_FALSE(ParseProgram("kernel k(out f32* b)\n"
                            "const.i r1:i32 0\n"
                            "const.f r1:f32 1\n")
                   .ok());
  // Unbalanced control flow.
  EXPECT_FALSE(ParseProgram("kernel k(out f32* b)\n"
                            "endloop\n")
                   .ok());
  // Verifier catches semantic violations post-parse.
  EXPECT_FALSE(ParseProgram("kernel k(in f32* b)\n"
                            "const.i r1:i32 0\n"
                            "store r1:i32, r1:i32 slot=0 off=0\n")  // RO store
                   .ok());
}

TEST(ParseTest, AllBenchmarkShapesRoundTrip) {
  // Cover every opcode family through a grab-bag of builder kernels.
  std::vector<Program> programs;
  {
    KernelBuilder kb("ints");
    auto buf = kb.ArgBuffer("buf", ScalarType::kI64, ArgKind::kBufferRW);
    Val zero = kb.ConstI(I32(), 0);
    Val v = kb.Load(buf, zero, 0, 2);
    Val q = kb.Binary(Opcode::kIDiv, v, v);
    Val r = kb.Binary(Opcode::kIRem, v, v);
    Val m = kb.Shl(kb.Shr((q ^ r) | (q & r), 3), 1);
    kb.Store(buf, zero, kb.Unary(Opcode::kNot, m));
    programs.push_back(*kb.Build());
  }
  {
    KernelBuilder kb("floats");
    auto buf = kb.ArgBuffer("buf", ScalarType::kF64, ArgKind::kBufferRW);
    Val zero = kb.ConstI(I32(), 0);
    Val v = kb.Load(buf, zero, 0, 8);
    Val w = kb.Min(kb.Max(kb.Abs(-v), v), kb.Floor(v));
    Val s = kb.Sin(kb.Cos(kb.Log(kb.Exp(kb.Sqrt(kb.Abs(w))))));
    Val sel = kb.Select(kb.CmpNe(s, v), s, w);
    kb.Store(buf, zero, kb.Insert(sel, 5, kb.Convert(kb.ConstI(I32(), 3),
                                                     ScalarType::kF64)));
    programs.push_back(*kb.Build());
  }
  for (const Program& p : programs) {
    StatusOr<Program> parsed = ParseProgram(ToText(p));
    ASSERT_TRUE(parsed.ok()) << p.name << ": " << parsed.status().ToString();
    ASSERT_EQ(parsed->code.size(), p.code.size()) << p.name;
    for (std::size_t i = 0; i < p.code.size(); ++i) {
      EXPECT_EQ(parsed->code[i].op, p.code[i].op) << p.name << " instr " << i;
    }
  }
}

}  // namespace
}  // namespace malisim::kir
