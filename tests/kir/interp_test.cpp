// End-to-end interpreter tests: NDRange semantics, control flow, memory,
// barriers, atomics, instrumentation counts, and fault detection.
#include "kir/interp.h"

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "kir/builder.h"

namespace malisim::kir {
namespace {

Bindings BindBuffers(std::initializer_list<std::pair<void*, std::size_t>> bufs,
                     std::vector<ScalarValue> scalars = {}) {
  Bindings b;
  std::uint64_t addr = 0x10000;
  for (const auto& [ptr, bytes] : bufs) {
    b.buffers.push_back({static_cast<std::byte*>(ptr), addr, bytes});
    addr += 0x10000;
  }
  b.scalars = std::move(scalars);
  return b;
}

TEST(InterpTest, GlobalIdIndexesWork) {
  KernelBuilder kb("gid");
  auto out = kb.ArgBuffer("out", ScalarType::kI32, ArgKind::kBufferWO);
  Val gid = kb.GlobalId(0);
  kb.Store(out, gid, gid);
  Program p = *kb.Build();

  std::vector<std::int32_t> data(16, -1);
  LaunchConfig config;
  config.global_size = {16, 1, 1};
  config.local_size = {4, 1, 1};
  auto run = RunProgram(p, config, BindBuffers({{data.data(), 64}}));
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(data[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(run->work_items, 16u);
  EXPECT_EQ(run->stores, 16u);
}

TEST(InterpTest, LocalAndGroupIdsConsistent) {
  // out[gid] = group_id * local_size + local_id must equal gid.
  KernelBuilder kb("ids");
  auto out = kb.ArgBuffer("out", ScalarType::kI32, ArgKind::kBufferWO);
  Val gid = kb.GlobalId(0);
  Val reconstructed = kb.Binary(
      Opcode::kAdd,
      kb.Binary(Opcode::kMul, kb.GroupId(0), kb.LocalSize(0)), kb.LocalId(0));
  kb.Store(out, gid, reconstructed);
  Program p = *kb.Build();

  std::vector<std::int32_t> data(32, -1);
  LaunchConfig config;
  config.global_size = {32, 1, 1};
  config.local_size = {8, 1, 1};
  ASSERT_TRUE(RunProgram(p, config, BindBuffers({{data.data(), 128}})).ok());
  for (int i = 0; i < 32; ++i) EXPECT_EQ(data[static_cast<std::size_t>(i)], i);
}

TEST(InterpTest, ThreeDimensionalIds) {
  KernelBuilder kb("3d");
  auto out = kb.ArgBuffer("out", ScalarType::kI32, ArgKind::kBufferWO);
  Val x = kb.GlobalId(0);
  Val y = kb.GlobalId(1);
  Val z = kb.GlobalId(2);
  Val gsx = kb.GlobalSize(0);
  Val gsy = kb.GlobalSize(1);
  Val idx = kb.Binary(
      Opcode::kAdd,
      kb.Binary(Opcode::kMul, kb.Binary(Opcode::kAdd, kb.Binary(Opcode::kMul, z, gsy), y), gsx),
      x);
  kb.Store(out, idx, idx);
  Program p = *kb.Build();

  std::vector<std::int32_t> data(2 * 3 * 4, -1);
  LaunchConfig config;
  config.work_dim = 3;
  config.global_size = {2, 3, 4};
  config.local_size = {2, 1, 2};
  ASSERT_TRUE(RunProgram(p, config, BindBuffers({{data.data(), data.size() * 4}})).ok());
  for (int i = 0; i < 24; ++i) EXPECT_EQ(data[static_cast<std::size_t>(i)], i);
}

TEST(InterpTest, LoopAccumulates) {
  KernelBuilder kb("sumk");
  auto out = kb.ArgBuffer("out", ScalarType::kI32, ArgKind::kBufferWO);
  Val n = kb.ArgScalar("n", ScalarType::kI32);
  Val acc = kb.Var(I32(), "acc");
  kb.Assign(acc, kb.ConstI(I32(), 0));
  kb.For("i", kb.ConstI(I32(), 0), n, 1,
         [&](Val i) { kb.Assign(acc, acc + i); });
  kb.Store(out, kb.ConstI(I32(), 0), acc);
  Program p = *kb.Build();

  std::int32_t result = -1;
  LaunchConfig config;
  auto run = RunProgram(p, config,
                        BindBuffers({{&result, 4}}, {ScalarValue::I32V(10)}));
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(result, 45);
}

TEST(InterpTest, ZeroTripLoopSkipsBody) {
  KernelBuilder kb("empty");
  auto out = kb.ArgBuffer("out", ScalarType::kI32, ArgKind::kBufferWO);
  Val zero = kb.ConstI(I32(), 0);
  kb.Store(out, zero, kb.ConstI(I32(), 7));
  kb.For("i", kb.ConstI(I32(), 5), kb.ConstI(I32(), 5), 1,
         [&](Val) { kb.Store(out, zero, kb.ConstI(I32(), 99)); });
  Program p = *kb.Build();
  std::int32_t result = 0;
  ASSERT_TRUE(RunProgram(p, LaunchConfig{}, BindBuffers({{&result, 4}})).ok());
  EXPECT_EQ(result, 7);
}

TEST(InterpTest, NestedLoopsAndStep) {
  KernelBuilder kb("nest");
  auto out = kb.ArgBuffer("out", ScalarType::kI32, ArgKind::kBufferWO);
  Val acc = kb.Var(I32(), "acc");
  kb.Assign(acc, kb.ConstI(I32(), 0));
  kb.For("i", kb.ConstI(I32(), 0), kb.ConstI(I32(), 6), 2, [&](Val) {
    kb.For("j", kb.ConstI(I32(), 0), kb.ConstI(I32(), 3), 1,
           [&](Val) { kb.Assign(acc, acc + 1.0); });
  });
  kb.Store(out, kb.ConstI(I32(), 0), acc);
  Program p = *kb.Build();
  std::int32_t result = 0;
  ASSERT_TRUE(RunProgram(p, LaunchConfig{}, BindBuffers({{&result, 4}})).ok());
  EXPECT_EQ(result, 9);  // 3 outer iterations x 3 inner
}

TEST(InterpTest, IfElseBothPaths) {
  KernelBuilder kb("branch");
  auto out = kb.ArgBuffer("out", ScalarType::kI32, ArgKind::kBufferWO);
  Val gid = kb.GlobalId(0);
  Val two = kb.ConstI(I32(), 2);
  Val is_small = kb.CmpLt(gid, two);
  kb.If(is_small, [&] { kb.Store(out, gid, kb.ConstI(I32(), 100)); },
        [&] { kb.Store(out, gid, kb.ConstI(I32(), 200)); });
  Program p = *kb.Build();
  std::vector<std::int32_t> data(4, 0);
  LaunchConfig config;
  config.global_size = {4, 1, 1};
  ASSERT_TRUE(RunProgram(p, config, BindBuffers({{data.data(), 16}})).ok());
  EXPECT_EQ(data[0], 100);
  EXPECT_EQ(data[1], 100);
  EXPECT_EQ(data[2], 200);
  EXPECT_EQ(data[3], 200);
}

TEST(InterpTest, IfWithoutElseFallsThrough) {
  KernelBuilder kb("noelse");
  auto out = kb.ArgBuffer("out", ScalarType::kI32, ArgKind::kBufferRW);
  Val gid = kb.GlobalId(0);
  Val cond = kb.CmpEq(gid, kb.ConstI(I32(), 1));
  kb.If(cond, [&] { kb.Store(out, gid, kb.ConstI(I32(), 5)); });
  Program p = *kb.Build();
  std::vector<std::int32_t> data(2, -3);
  LaunchConfig config;
  config.global_size = {2, 1, 1};
  ASSERT_TRUE(RunProgram(p, config, BindBuffers({{data.data(), 8}})).ok());
  EXPECT_EQ(data[0], -3);
  EXPECT_EQ(data[1], 5);
}

TEST(InterpTest, VectorLoadComputeStore) {
  KernelBuilder kb("vec4");
  auto in = kb.ArgBuffer("in", ScalarType::kF32, ArgKind::kBufferRO);
  auto out = kb.ArgBuffer("out", ScalarType::kF32, ArgKind::kBufferWO);
  Val base = kb.Binary(Opcode::kMul, kb.GlobalId(0), kb.ConstI(I32(), 4));
  Val v = kb.Load(in, base, 0, 4);
  kb.Store(out, base, v * 2.0);
  Program p = *kb.Build();
  std::vector<float> src = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<float> dst(8, 0);
  LaunchConfig config;
  config.global_size = {2, 1, 1};
  ASSERT_TRUE(RunProgram(p, config,
                         BindBuffers({{src.data(), 32}, {dst.data(), 32}}))
                  .ok());
  for (int i = 0; i < 8; ++i) {
    EXPECT_FLOAT_EQ(dst[static_cast<std::size_t>(i)],
                    2.0f * src[static_cast<std::size_t>(i)]);
  }
}

TEST(InterpTest, AtomicAddAccumulatesAcrossWorkItems) {
  KernelBuilder kb("atomic");
  auto counter = kb.ArgBuffer("counter", ScalarType::kI32, ArgKind::kBufferRW);
  kb.AtomicAdd(counter, kb.ConstI(I32(), 0), kb.ConstI(I32(), 1));
  Program p = *kb.Build();
  std::int32_t count = 0;
  LaunchConfig config;
  config.global_size = {100, 1, 1};
  config.local_size = {10, 1, 1};
  auto run = RunProgram(p, config, BindBuffers({{&count, 4}}));
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(count, 100);
  EXPECT_EQ(run->atomics, 100u);
}

TEST(InterpTest, BarrierPhasedExecutionSharesLocalArray) {
  // Work-item i writes local[i]; after the barrier, work-item i reads
  // local[wg-1-i]. Correct only if all writes complete before any read.
  KernelBuilder kb("swap");
  auto out = kb.ArgBuffer("out", ScalarType::kI32, ArgKind::kBufferWO);
  auto local = kb.LocalArray("tmp", ScalarType::kI32, 8);
  Val lid = kb.LocalId(0);
  kb.Store(local, lid, lid);
  kb.Barrier();
  Val mirrored = kb.Binary(Opcode::kSub, kb.ConstI(I32(), 7), lid);
  kb.Store(out, kb.GlobalId(0), kb.Load(local, mirrored));
  Program p = *kb.Build();

  std::vector<std::int32_t> data(8, -1);
  std::vector<std::byte> scratch(64);
  Bindings b = BindBuffers({{data.data(), 32}});
  b.local_scratch = {scratch.data(), 0xF0000, scratch.size()};
  LaunchConfig config;
  config.global_size = {8, 1, 1};
  config.local_size = {8, 1, 1};
  auto run = RunProgram(p, config, std::move(b));
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(data[static_cast<std::size_t>(i)], 7 - i);
  }
  EXPECT_EQ(run->barriers_crossed, 1u);
}

TEST(InterpTest, OutOfBoundsLoadFails) {
  KernelBuilder kb("oob");
  auto in = kb.ArgBuffer("in", ScalarType::kF32, ArgKind::kBufferRO);
  auto out = kb.ArgBuffer("out", ScalarType::kF32, ArgKind::kBufferWO);
  Val idx = kb.ConstI(I32(), 100);
  kb.Store(out, kb.ConstI(I32(), 0), kb.Load(in, idx));
  Program p = *kb.Build();
  std::vector<float> small(4), dst(4);
  auto run = RunProgram(p, LaunchConfig{},
                        BindBuffers({{small.data(), 16}, {dst.data(), 16}}));
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), ErrorCode::kOutOfRange);
}

TEST(InterpTest, IntegerDivisionByZeroFails) {
  KernelBuilder kb("divz");
  auto out = kb.ArgBuffer("out", ScalarType::kI32, ArgKind::kBufferWO);
  Val one = kb.ConstI(I32(), 1);
  Val zero = kb.ConstI(I32(), 0);
  kb.Store(out, zero, kb.Binary(Opcode::kIDiv, one, zero));
  Program p = *kb.Build();
  std::int32_t result = 0;
  auto run = RunProgram(p, LaunchConfig{}, BindBuffers({{&result, 4}}));
  EXPECT_FALSE(run.ok());
}

TEST(InterpTest, MismatchedBindingsRejected) {
  KernelBuilder kb("args");
  auto out = kb.ArgBuffer("out", ScalarType::kI32, ArgKind::kBufferWO);
  kb.Store(out, kb.ConstI(I32(), 0), kb.ConstI(I32(), 1));
  Program p = *kb.Build();
  auto run = RunProgram(p, LaunchConfig{}, Bindings{});  // no buffers
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), ErrorCode::kInvalidArgument);
}

TEST(InterpTest, InvalidNdRangeRejected) {
  KernelBuilder kb("bad");
  auto out = kb.ArgBuffer("out", ScalarType::kI32, ArgKind::kBufferWO);
  kb.Store(out, kb.ConstI(I32(), 0), kb.ConstI(I32(), 1));
  Program p = *kb.Build();
  std::int32_t x = 0;
  LaunchConfig config;
  config.global_size = {10, 1, 1};
  config.local_size = {3, 1, 1};  // does not divide 10
  EXPECT_FALSE(RunProgram(p, config, BindBuffers({{&x, 4}})).ok());
}

TEST(InterpTest, OpHistogramCountsMatch) {
  KernelBuilder kb("hist");
  auto out = kb.ArgBuffer("out", ScalarType::kF32, ArgKind::kBufferWO);
  Val a = kb.ConstF(F32(4), 1.0);
  Val b = kb.ConstF(F32(4), 2.0);
  Val c = a * b;  // one f32x4 mul
  kb.Store(out, kb.ConstI(I32(), 0), c);
  Program p = *kb.Build();
  std::vector<float> data(4);
  auto run = RunProgram(p, LaunchConfig{}, BindBuffers({{data.data(), 16}}));
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->ops.Get(OpClass::kArithMul, ScalarType::kF32, 4), 1u);
  EXPECT_EQ(run->ops.TotalClass(OpClass::kStore), 1u);
  EXPECT_EQ(run->load_bytes, 0u);
  EXPECT_EQ(run->store_bytes, 16u);
}

TEST(InterpTest, ImbalanceFactorOneForUniformWork) {
  KernelBuilder kb("uniform");
  auto out = kb.ArgBuffer("out", ScalarType::kI32, ArgKind::kBufferWO);
  kb.Store(out, kb.GlobalId(0), kb.ConstI(I32(), 1));
  Program p = *kb.Build();
  std::vector<std::int32_t> data(64);
  LaunchConfig config;
  config.global_size = {64, 1, 1};
  config.local_size = {8, 1, 1};
  auto run = RunProgram(p, config, BindBuffers({{data.data(), 256}}));
  ASSERT_TRUE(run.ok());
  EXPECT_DOUBLE_EQ(run->imbalance_factor(), 1.0);
}

TEST(InterpTest, ImbalanceFactorGrowsWithSkewedWork) {
  // Work-item 0 of each group loops 100x, the rest do nothing.
  KernelBuilder kb("skewed");
  auto out = kb.ArgBuffer("out", ScalarType::kI32, ArgKind::kBufferRW);
  Val lid = kb.LocalId(0);
  Val heavy = kb.CmpEq(lid, kb.ConstI(I32(), 0));
  kb.If(heavy, [&] {
    kb.For("i", kb.ConstI(I32(), 0), kb.ConstI(I32(), 100), 1, [&](Val i) {
      kb.Store(out, kb.ConstI(I32(), 0), i);
    });
  });
  Program p = *kb.Build();
  std::int32_t sink = 0;
  LaunchConfig config;
  config.global_size = {64, 1, 1};
  config.local_size = {16, 1, 1};
  auto run = RunProgram(p, config, BindBuffers({{&sink, 4}}));
  ASSERT_TRUE(run.ok());
  EXPECT_GT(run->imbalance_factor(), 5.0);
}

TEST(InterpTest, MemorySinkSeesAddresses) {
  class Recorder final : public MemorySink {
   public:
    void OnAccess(std::uint64_t addr, std::uint32_t bytes, bool is_write) override {
      if (is_write) {
        writes.push_back({addr, bytes});
      } else {
        reads.push_back({addr, bytes});
      }
    }
    std::vector<std::pair<std::uint64_t, std::uint32_t>> reads, writes;
  };

  KernelBuilder kb("addr");
  auto in = kb.ArgBuffer("in", ScalarType::kF32, ArgKind::kBufferRO);
  auto out = kb.ArgBuffer("out", ScalarType::kF32, ArgKind::kBufferWO);
  Val gid = kb.GlobalId(0);
  kb.Store(out, gid, kb.Load(in, gid, 1));
  Program p = *kb.Build();

  std::vector<float> src(8), dst(8);
  Bindings b = BindBuffers({{src.data(), 32}, {dst.data(), 32}});
  const std::uint64_t in_addr = b.buffers[0].sim_addr;
  const std::uint64_t out_addr = b.buffers[1].sim_addr;
  auto executor = Executor::Create(&p, LaunchConfig{}, std::move(b));
  ASSERT_TRUE(executor.ok());
  Recorder sink;
  WorkGroupRun run;
  ASSERT_TRUE(executor->RunGroup({0, 0, 0}, &sink, &run).ok());
  ASSERT_EQ(sink.reads.size(), 1u);
  ASSERT_EQ(sink.writes.size(), 1u);
  EXPECT_EQ(sink.reads[0].first, in_addr + 4);  // offset 1 element
  EXPECT_EQ(sink.writes[0].first, out_addr);
}

}  // namespace
}  // namespace malisim::kir
