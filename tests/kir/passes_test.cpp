#include "kir/passes.h"

#include <gtest/gtest.h>

#include "kir/builder.h"
#include "kir/interp.h"

namespace malisim::kir {
namespace {

TEST(ConstantFoldTest, FoldsConstantArithmetic) {
  KernelBuilder kb("fold");
  auto out = kb.ArgBuffer("out", ScalarType::kF32, ArgKind::kBufferWO);
  Val a = kb.ConstF(F32(), 2.0);
  Val b = kb.ConstF(F32(), 3.0);
  kb.Store(out, kb.ConstI(I32(), 0), (a + b) * b);
  Program p = *kb.Build();

  StatusOr<int> folded = ConstantFold(&p);
  ASSERT_TRUE(folded.ok());
  EXPECT_GE(*folded, 2);  // (a+b) and (..)*b both folded

  // Semantics preserved.
  float result = 0;
  Bindings bindings;
  bindings.buffers = {{reinterpret_cast<std::byte*>(&result), 0x1000, 4}};
  ASSERT_TRUE(RunProgram(p, LaunchConfig{}, std::move(bindings)).ok());
  EXPECT_FLOAT_EQ(result, 15.0f);
}

TEST(ConstantFoldTest, DoesNotFoldRuntimeValues) {
  KernelBuilder kb("nofold");
  auto out = kb.ArgBuffer("out", ScalarType::kI32, ArgKind::kBufferWO);
  Val gid = kb.GlobalId(0);
  Val two = kb.ConstI(I32(), 2);
  kb.Store(out, gid, gid * two);
  Program p = *kb.Build();
  StatusOr<int> folded = ConstantFold(&p);
  ASSERT_TRUE(folded.ok());
  EXPECT_EQ(*folded, 0);
}

TEST(ConstantFoldTest, IntegerFoldIncludesRemainder) {
  KernelBuilder kb("irem");
  auto out = kb.ArgBuffer("out", ScalarType::kI32, ArgKind::kBufferWO);
  Val a = kb.ConstI(I32(), 17);
  Val b = kb.ConstI(I32(), 5);
  kb.Store(out, kb.ConstI(I32(), 0), kb.Binary(Opcode::kIRem, a, b));
  Program p = *kb.Build();
  ASSERT_TRUE(ConstantFold(&p).ok());
  std::int32_t result = 0;
  Bindings bindings;
  bindings.buffers = {{reinterpret_cast<std::byte*>(&result), 0x1000, 4}};
  ASSERT_TRUE(RunProgram(p, LaunchConfig{}, std::move(bindings)).ok());
  EXPECT_EQ(result, 2);
}

TEST(ConstantFoldTest, LeavesDivisionByZeroToRuntime) {
  KernelBuilder kb("divz");
  auto out = kb.ArgBuffer("out", ScalarType::kI32, ArgKind::kBufferWO);
  Val a = kb.ConstI(I32(), 1);
  Val b = kb.ConstI(I32(), 0);
  kb.Store(out, kb.ConstI(I32(), 0), kb.Binary(Opcode::kIDiv, a, b));
  Program p = *kb.Build();
  const std::size_t before = p.code.size();
  ASSERT_TRUE(ConstantFold(&p).ok());
  EXPECT_EQ(p.code.size(), before);  // not folded away
}

TEST(DeadCodeElimTest, RemovesUnusedArithmetic) {
  KernelBuilder kb("dce");
  auto out = kb.ArgBuffer("out", ScalarType::kF32, ArgKind::kBufferWO);
  Val used = kb.ConstF(F32(), 1.0);
  Val dead = kb.ConstF(F32(), 2.0);
  Val dead2 = dead * dead;  // unused chain
  (void)dead2;
  kb.Store(out, kb.ConstI(I32(), 0), used);
  Program p = *kb.Build();
  const std::size_t before = p.code.size();
  StatusOr<int> removed = DeadCodeElim(&p);
  ASSERT_TRUE(removed.ok());
  EXPECT_GE(*removed, 2);  // the mul and at least one dead const
  EXPECT_LT(p.code.size(), before);

  float result = 0;
  Bindings bindings;
  bindings.buffers = {{reinterpret_cast<std::byte*>(&result), 0x1000, 4}};
  ASSERT_TRUE(RunProgram(p, LaunchConfig{}, std::move(bindings)).ok());
  EXPECT_FLOAT_EQ(result, 1.0f);
}

TEST(DeadCodeElimTest, KeepsStoresAndAtomics) {
  KernelBuilder kb("keep");
  auto out = kb.ArgBuffer("out", ScalarType::kI32, ArgKind::kBufferRW);
  kb.Store(out, kb.ConstI(I32(), 0), kb.ConstI(I32(), 1));
  kb.AtomicAdd(out, kb.ConstI(I32(), 1), kb.ConstI(I32(), 2));
  Program p = *kb.Build();
  ASSERT_TRUE(DeadCodeElim(&p).ok());
  int stores = 0, atomics = 0;
  for (const Instr& in : p.code) {
    if (in.op == Opcode::kStore) ++stores;
    if (in.op == Opcode::kAtomicAddI32) ++atomics;
  }
  EXPECT_EQ(stores, 1);
  EXPECT_EQ(atomics, 1);
}

TEST(DeadCodeElimTest, KeepsLoads) {
  // Loads may fault and touch the memory system: never removed.
  KernelBuilder kb("loads");
  auto in = kb.ArgBuffer("in", ScalarType::kF32, ArgKind::kBufferRO);
  auto out = kb.ArgBuffer("out", ScalarType::kF32, ArgKind::kBufferWO);
  Val zero = kb.ConstI(I32(), 0);
  Val unused = kb.Load(in, zero);
  (void)unused;
  kb.Store(out, zero, kb.ConstF(F32(), 1.0));
  Program p = *kb.Build();
  ASSERT_TRUE(DeadCodeElim(&p).ok());
  int loads = 0;
  for (const Instr& in2 : p.code) {
    if (in2.op == Opcode::kLoad) ++loads;
  }
  EXPECT_EQ(loads, 1);
}

TEST(FeaturesTest, DetectsAtomicsBarriersAndDepth) {
  KernelBuilder kb("feat");
  auto buf = kb.ArgBuffer("buf", ScalarType::kI32, ArgKind::kBufferRW);
  kb.Barrier();
  Val n = kb.ConstI(I32(), 4);
  kb.For("i", kb.ConstI(I32(), 0), n, 1, [&](Val i) {
    kb.For("j", kb.ConstI(I32(), 0), n, 1, [&](Val) {
      kb.AtomicAdd(buf, i, kb.ConstI(I32(), 1));
    });
  });
  Program p = *kb.Build();
  const ProgramFeatures f = AnalyzeFeatures(p);
  EXPECT_TRUE(f.has_atomics);
  EXPECT_TRUE(f.has_barrier);
  EXPECT_EQ(f.max_loop_depth, 2u);
  EXPECT_FALSE(f.has_f64);
}

TEST(FeaturesTest, ErratumShapeDetected) {
  // f64 special function inside a loop that also contains an if: the amcd
  // Metropolis shape that kills the 2013 compiler.
  KernelBuilder kb("erratum");
  auto buf = kb.ArgBuffer("buf", ScalarType::kF64, ArgKind::kBufferRW);
  Val n = kb.ConstI(I32(), 4);
  kb.For("i", kb.ConstI(I32(), 0), n, 1, [&](Val i) {
    Val x = kb.Load(buf, i);
    Val e = kb.Exp(x);
    Val cond = kb.CmpLt(i, kb.ConstI(I32(), 2));
    kb.If(cond, [&] { kb.Store(buf, i, e); });
  });
  Program p = *kb.Build();
  const ProgramFeatures f = AnalyzeFeatures(p);
  EXPECT_TRUE(f.has_f64);
  EXPECT_TRUE(f.has_f64_special);
  EXPECT_TRUE(f.has_f64_special_in_divergent_loop);
}

TEST(FeaturesTest, F64SpecialWithoutBranchIsNotErratum) {
  KernelBuilder kb("fine");
  auto buf = kb.ArgBuffer("buf", ScalarType::kF64, ArgKind::kBufferRW);
  Val n = kb.ConstI(I32(), 4);
  kb.For("i", kb.ConstI(I32(), 0), n, 1, [&](Val i) {
    kb.Store(buf, i, kb.Sqrt(kb.Load(buf, i)));
  });
  Program p = *kb.Build();
  EXPECT_FALSE(AnalyzeFeatures(p).has_f64_special_in_divergent_loop);
}

TEST(FeaturesTest, F32SpecialInBranchyLoopIsNotErratum) {
  KernelBuilder kb("sp_ok");
  auto buf = kb.ArgBuffer("buf", ScalarType::kF32, ArgKind::kBufferRW);
  Val n = kb.ConstI(I32(), 4);
  kb.For("i", kb.ConstI(I32(), 0), n, 1, [&](Val i) {
    Val e = kb.Exp(kb.Load(buf, i));
    kb.If(kb.CmpLt(i, kb.ConstI(I32(), 2)), [&] { kb.Store(buf, i, e); });
  });
  Program p = *kb.Build();
  EXPECT_FALSE(AnalyzeFeatures(p).has_f64_special_in_divergent_loop);
}

TEST(FeaturesTest, InnerLoopErratumPropagatesToOuter) {
  KernelBuilder kb("nested_erratum");
  auto buf = kb.ArgBuffer("buf", ScalarType::kF64, ArgKind::kBufferRW);
  Val n = kb.ConstI(I32(), 4);
  kb.For("t", kb.ConstI(I32(), 0), n, 1, [&](Val) {
    kb.For("j", kb.ConstI(I32(), 0), n, 1, [&](Val j) {
      kb.If(kb.CmpNe(j, kb.ConstI(I32(), 0)),
            [&] { kb.Store(buf, j, kb.Rsqrt(kb.Load(buf, j))); });
    });
  });
  Program p = *kb.Build();
  EXPECT_TRUE(AnalyzeFeatures(p).has_f64_special_in_divergent_loop);
}

TEST(LivenessTest, SequentialChainsHaveLowPressure) {
  // r1 = c; r2 = r1+r1; r3 = r2+r2; ... each value dies immediately.
  KernelBuilder kb("chain");
  auto out = kb.ArgBuffer("out", ScalarType::kF32, ArgKind::kBufferWO);
  Val v = kb.ConstF(F32(), 1.0);
  for (int i = 0; i < 20; ++i) v = v + v;
  kb.Store(out, kb.ConstI(I32(), 0), v);
  Program p = *kb.Build();
  // ~2 scalar f32 values live at a time, plus the index.
  EXPECT_LE(MaxLiveRegisterBytes(p), 4u * 8);
  EXPECT_LT(MaxLiveRegisterBytes(p), p.register_bytes());
}

TEST(LivenessTest, WideAccumulatorsStackUp) {
  KernelBuilder kb("wide");
  auto out = kb.ArgBuffer("out", ScalarType::kF64, ArgKind::kBufferWO);
  std::vector<Val> accs;
  for (int i = 0; i < 8; ++i) {
    accs.push_back(kb.ConstF(F64(4), static_cast<double>(i)));
  }
  Val sum = accs[0];
  for (int i = 1; i < 8; ++i) sum = sum + accs[i];
  kb.Store(out, kb.ConstI(I32(), 0), sum);
  Program p = *kb.Build();
  // All 8 f64x4 constants (32 B each) are live until the summation tree
  // consumes them.
  EXPECT_GE(MaxLiveRegisterBytes(p), 8u * 32);
}

TEST(LivenessTest, LoopCarriedValuesLiveAcrossLoop) {
  KernelBuilder kb("carried");
  auto out = kb.ArgBuffer("out", ScalarType::kF32, ArgKind::kBufferWO);
  Val big = kb.ConstF(F32(16), 1.0);  // 64 B, used inside the loop
  Val acc = kb.Var(F32(16), "acc");
  kb.Assign(acc, kb.ConstF(F32(16), 0.0));
  kb.For("i", kb.ConstI(I32(), 0), kb.ConstI(I32(), 10), 1,
         [&](Val) { kb.Assign(acc, acc + big); });
  kb.Store(out, kb.ConstI(I32(), 0), kb.VSum(acc));
  Program p = *kb.Build();
  EXPECT_GE(MaxLiveRegisterBytes(p), 2u * 64);
}

}  // namespace
}  // namespace malisim::kir
