// Verifier tests: hand-constructed Programs with deliberate violations.
#include <gtest/gtest.h>

#include "kir/program.h"

namespace malisim::kir {
namespace {

/// A program skeleton with one f32 buffer arg (slot 0) and helpers for
/// direct instruction construction.
class VerifyTest : public ::testing::Test {
 protected:
  VerifyTest() {
    program_.name = "test";
    program_.args.push_back({"buf", ArgKind::kBufferRW, ScalarType::kF32,
                             false, false});
  }

  RegId AddReg(Type type) {
    program_.regs.push_back({type, ""});
    return static_cast<RegId>(program_.regs.size() - 1);
  }

  Instr& Emit(Opcode op, Type type = F32()) {
    program_.code.emplace_back();
    program_.code.back().op = op;
    program_.code.back().type = type;
    return program_.code.back();
  }

  Status FinalizeAndVerify() {
    MALI_RETURN_IF_ERROR(program_.Finalize());
    return Verify(program_);
  }

  Program program_;
};

TEST_F(VerifyTest, EmptyProgramVerifies) {
  EXPECT_TRUE(FinalizeAndVerify().ok());
}

TEST_F(VerifyTest, UnfinalizedProgramRejected) {
  EXPECT_EQ(Verify(program_).code(), ErrorCode::kFailedPrecondition);
}

TEST_F(VerifyTest, UseBeforeDefRejected) {
  const RegId a = AddReg(F32());
  const RegId b = AddReg(F32());
  Instr& in = Emit(Opcode::kAdd);
  in.dst = b;
  in.a = a;  // never defined
  in.b = a;
  EXPECT_FALSE(FinalizeAndVerify().ok());
}

TEST_F(VerifyTest, TypeMismatchRejected) {
  const RegId f = AddReg(F32());
  const RegId i = AddReg(I32());
  const RegId d = AddReg(F32());
  Emit(Opcode::kConstF).dst = f;
  Emit(Opcode::kConstI, I32()).dst = i;
  Instr& add = Emit(Opcode::kAdd);
  add.dst = d;
  add.a = f;
  add.b = i;  // mixing f32 and i32
  EXPECT_FALSE(FinalizeAndVerify().ok());
}

TEST_F(VerifyTest, FloatOnlyOpOnIntRejected) {
  const RegId i = AddReg(I32());
  const RegId d = AddReg(I32());
  Emit(Opcode::kConstI, I32()).dst = i;
  Instr& s = Emit(Opcode::kSqrt, I32());
  s.dst = d;
  s.a = i;
  EXPECT_FALSE(FinalizeAndVerify().ok());
}

TEST_F(VerifyTest, BitwiseOnFloatRejected) {
  const RegId f = AddReg(F32());
  const RegId d = AddReg(F32());
  Emit(Opcode::kConstF).dst = f;
  Instr& a = Emit(Opcode::kAnd);
  a.dst = d;
  a.a = f;
  a.b = f;
  EXPECT_FALSE(FinalizeAndVerify().ok());
}

TEST_F(VerifyTest, StoreToReadOnlyBufferRejected) {
  program_.args[0].kind = ArgKind::kBufferRO;
  const RegId v = AddReg(F32());
  const RegId idx = AddReg(I32());
  Emit(Opcode::kConstF).dst = v;
  Emit(Opcode::kConstI, I32()).dst = idx;
  Instr& st = Emit(Opcode::kStore);
  st.a = v;
  st.b = idx;
  st.slot = 0;
  EXPECT_FALSE(FinalizeAndVerify().ok());
}

TEST_F(VerifyTest, LoadFromWriteOnlyBufferRejected) {
  program_.args[0].kind = ArgKind::kBufferWO;
  const RegId idx = AddReg(I32());
  const RegId d = AddReg(F32());
  Emit(Opcode::kConstI, I32()).dst = idx;
  Instr& ld = Emit(Opcode::kLoad);
  ld.dst = d;
  ld.a = idx;
  ld.slot = 0;
  EXPECT_FALSE(FinalizeAndVerify().ok());
}

TEST_F(VerifyTest, LoadElementTypeMismatchRejected) {
  const RegId idx = AddReg(I32());
  const RegId d = AddReg(I64());  // buffer is f32
  Emit(Opcode::kConstI, I32()).dst = idx;
  Instr& ld = Emit(Opcode::kLoad, I64());
  ld.dst = d;
  ld.a = idx;
  ld.slot = 0;
  EXPECT_FALSE(FinalizeAndVerify().ok());
}

TEST_F(VerifyTest, SlotOutOfRangeRejected) {
  const RegId idx = AddReg(I32());
  const RegId d = AddReg(F32());
  Emit(Opcode::kConstI, I32()).dst = idx;
  Instr& ld = Emit(Opcode::kLoad);
  ld.dst = d;
  ld.a = idx;
  ld.slot = 3;
  EXPECT_FALSE(FinalizeAndVerify().ok());
}

TEST_F(VerifyTest, MismatchedControlFlowRejectedAtFinalize) {
  Emit(Opcode::kLoopEnd);
  EXPECT_FALSE(program_.Finalize().ok());
}

TEST_F(VerifyTest, UnterminatedLoopRejectedAtFinalize) {
  const RegId bound = AddReg(I32());
  const RegId var = AddReg(I32());
  Emit(Opcode::kConstI, I32()).dst = bound;
  Instr& loop = Emit(Opcode::kLoopBegin, I32());
  loop.dst = var;
  loop.a = bound;
  loop.b = bound;
  loop.imm = 1;
  EXPECT_FALSE(program_.Finalize().ok());
}

TEST_F(VerifyTest, ElseWithoutIfRejectedAtFinalize) {
  Emit(Opcode::kElse);
  EXPECT_FALSE(program_.Finalize().ok());
}

TEST_F(VerifyTest, NonPositiveLoopStepRejected) {
  const RegId bound = AddReg(I32());
  const RegId var = AddReg(I32());
  Emit(Opcode::kConstI, I32()).dst = bound;
  Instr& loop = Emit(Opcode::kLoopBegin, I32());
  loop.dst = var;
  loop.a = bound;
  loop.b = bound;
  loop.imm = 0;
  Emit(Opcode::kLoopEnd);
  EXPECT_FALSE(FinalizeAndVerify().ok());
}

TEST_F(VerifyTest, CompareResultMustBeI32Mask) {
  const RegId f = AddReg(F32(4));
  const RegId bad = AddReg(F32(4));  // should be I32 x4
  Emit(Opcode::kConstF, F32(4)).dst = f;
  Instr& cmp = Emit(Opcode::kCmpLt, F32(4));
  cmp.dst = bad;
  cmp.a = f;
  cmp.b = f;
  EXPECT_FALSE(FinalizeAndVerify().ok());
}

TEST_F(VerifyTest, AtomicOnFloatBufferRejected) {
  const RegId v = AddReg(I32());
  const RegId idx = AddReg(I32());
  Emit(Opcode::kConstI, I32()).dst = v;
  Emit(Opcode::kConstI, I32()).dst = idx;
  Instr& at = Emit(Opcode::kAtomicAddI32, I32());
  at.a = v;
  at.b = idx;
  at.slot = 0;  // f32 buffer
  EXPECT_FALSE(FinalizeAndVerify().ok());
}

TEST_F(VerifyTest, SlideAmountOutOfRangeRejected) {
  const RegId v = AddReg(F32(4));
  const RegId d = AddReg(F32(4));
  Emit(Opcode::kConstF, F32(4)).dst = v;
  Instr& s = Emit(Opcode::kSlide, F32(4));
  s.dst = d;
  s.a = v;
  s.b = v;
  s.imm = 5;  // > lanes
  EXPECT_FALSE(FinalizeAndVerify().ok());
}

TEST_F(VerifyTest, ExtractLaneOutOfRangeRejected) {
  const RegId v = AddReg(F32(4));
  const RegId d = AddReg(F32());
  Emit(Opcode::kConstF, F32(4)).dst = v;
  Instr& e = Emit(Opcode::kExtract, F32());
  e.dst = d;
  e.a = v;
  e.imm = 4;
  EXPECT_FALSE(FinalizeAndVerify().ok());
}

}  // namespace
}  // namespace malisim::kir
