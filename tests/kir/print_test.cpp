// Disassembly golden tests: the printed form is part of the debugging
// surface (the kernel inspector and build logs lean on it).
#include <gtest/gtest.h>

#include "kir/builder.h"
#include "kir/program.h"

namespace malisim::kir {
namespace {

TEST(PrintTest, SignatureListsQualifiedArgs) {
  KernelBuilder kb("sig");
  auto in = kb.ArgBuffer("src", ScalarType::kF32, ArgKind::kBufferRO,
                         /*is_restrict=*/true, /*is_const=*/true);
  auto out = kb.ArgBuffer("dst", ScalarType::kF64, ArgKind::kBufferWO);
  Val n = kb.ArgScalar("n", ScalarType::kI32);
  (void)n;
  kb.Store(out, kb.ConstI(I32(), 0),
           kb.Convert(kb.Load(in, kb.ConstI(I32(), 0)), ScalarType::kF64));
  Program p = *kb.Build();
  const std::string text = ToText(p);
  EXPECT_NE(text.find("kernel sig("), std::string::npos);
  EXPECT_NE(text.find("in const f32* restrict src"), std::string::npos);
  EXPECT_NE(text.find("out f64* dst"), std::string::npos);
  EXPECT_NE(text.find("i32 n"), std::string::npos);
}

TEST(PrintTest, LocalArraysListed) {
  KernelBuilder kb("locals");
  auto buf = kb.ArgBuffer("buf", ScalarType::kI32, ArgKind::kBufferRW);
  auto scratch = kb.LocalArray("bins", ScalarType::kI32, 256);
  Val zero = kb.ConstI(I32(), 0);
  kb.Store(scratch, zero, kb.Load(buf, zero));
  Program p = *kb.Build();
  EXPECT_NE(ToText(p).find("local i32 bins[256]"), std::string::npos);
}

TEST(PrintTest, ControlFlowIndentation) {
  KernelBuilder kb("flow");
  auto buf = kb.ArgBuffer("buf", ScalarType::kI32, ArgKind::kBufferRW);
  kb.For("i", kb.ConstI(I32(), 0), kb.ConstI(I32(), 4), 1, [&](Val i) {
    kb.If(kb.CmpLt(i, kb.ConstI(I32(), 2)), [&] { kb.Store(buf, i, i); });
  });
  Program p = *kb.Build();
  const std::string text = ToText(p);
  EXPECT_NE(text.find("loop"), std::string::npos);
  EXPECT_NE(text.find("endloop"), std::string::npos);
  EXPECT_NE(text.find("if"), std::string::npos);
  EXPECT_NE(text.find("endif"), std::string::npos);
  // The store inside loop+if is indented three levels (6 spaces) deeper
  // than top level.
  EXPECT_NE(text.find("      "), std::string::npos);
}

TEST(PrintTest, MemoryOpsShowSlotAndOffset) {
  KernelBuilder kb("mem");
  auto buf = kb.ArgBuffer("buf", ScalarType::kF32, ArgKind::kBufferRW);
  Val zero = kb.ConstI(I32(), 0);
  kb.Store(buf, zero, kb.Load(buf, zero, 7));
  Program p = *kb.Build();
  const std::string text = ToText(p);
  EXPECT_NE(text.find("slot=0 off=7"), std::string::npos);
}

TEST(PrintTest, VectorTypesRendered) {
  KernelBuilder kb("vec");
  auto buf = kb.ArgBuffer("buf", ScalarType::kF32, ArgKind::kBufferRW);
  Val zero = kb.ConstI(I32(), 0);
  Val v = kb.Load(buf, zero, 0, 8);
  kb.Store(buf, zero, v + v);
  Program p = *kb.Build();
  EXPECT_NE(ToText(p).find("f32x8"), std::string::npos);
}

TEST(PrintTest, NamedRegistersUsePercentPrefix) {
  KernelBuilder kb("named");
  auto buf = kb.ArgBuffer("buf", ScalarType::kF32, ArgKind::kBufferRW);
  Val acc = kb.Var(F32(), "my_acc");
  kb.Assign(acc, kb.ConstF(F32(), 0.0));
  kb.Store(buf, kb.ConstI(I32(), 0), acc);
  Program p = *kb.Build();
  EXPECT_NE(ToText(p).find("%my_acc"), std::string::npos);
}

}  // namespace
}  // namespace malisim::kir
