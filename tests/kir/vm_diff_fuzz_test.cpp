// Differential fuzz battery pinning the bytecode VM to the reference
// interpreter (`ctest -L kirvm`): randomized KIR programs — loops, ifs,
// barriers, __local traffic, atomics, integer division, vectors — must
// produce bit-identical buffers, operation histograms, per-opcode tallies,
// memory-access streams and step weights under both engines, serially and
// across host threads, and must fail identically (same status, same
// partial counts) on runtime faults.
#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/prng.h"
#include "kir/builder.h"
#include "kir/interp.h"
#include "kir/vm/bytecode.h"

namespace malisim::kir {
namespace {

/// Builds a random kernel over one f32 buffer and one i32 histogram
/// buffer, with optional __local staging (through a barrier), optional
/// atomics, data-dependent control flow (the fusion path) and integer
/// div/rem with nonzero divisors.
Program RandomProgram(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  KernelBuilder kb("vmfuzz_" + std::to_string(seed));
  auto fbuf = kb.ArgBuffer("f", ScalarType::kF32, ArgKind::kBufferRW,
                           rng.NextDouble() < 0.5, false);
  auto ibuf = kb.ArgBuffer("h", ScalarType::kI32, ArgKind::kBufferRW);
  const bool use_local = rng.NextDouble() < 0.5;
  BufferRef tile;
  if (use_local) tile = kb.LocalArray("tile", ScalarType::kF32, 8);

  Val gid = kb.GlobalId(0);
  Val lid = kb.LocalId(0);
  const std::uint8_t lane_options[] = {1, 2, 4, 8};
  const std::uint8_t lanes = lane_options[rng.NextBounded(4)];

  std::vector<Val> pool;
  pool.push_back(kb.Splat(kb.Load(fbuf, gid), lanes));
  pool.push_back(kb.ConstF(F32(lanes), rng.NextDouble(0.5, 2.0)));
  pool.push_back(kb.Splat(kb.Convert(gid, ScalarType::kF32), lanes));

  const int ops = 6 + static_cast<int>(rng.NextBounded(14));
  for (int i = 0; i < ops; ++i) {
    Val a = pool[rng.NextBounded(pool.size())];
    Val b = pool[rng.NextBounded(pool.size())];
    switch (rng.NextBounded(9)) {
      case 0:
        pool.push_back(a + b);
        break;
      case 1:
        pool.push_back(a * b);
        break;
      case 2:
        pool.push_back(a - b);
        break;
      case 3:
        pool.push_back(kb.Min(a, b));
        break;
      case 4:
        pool.push_back(kb.Fma(a, b, pool[rng.NextBounded(pool.size())]));
        break;
      case 5:
        pool.push_back(kb.Abs(a));
        break;
      case 6:
        pool.push_back(kb.Sqrt(kb.Abs(a)));
        break;
      case 7:
        pool.push_back(kb.Select(kb.CmpLt(a, b), a, b));
        break;
      case 8:
        pool.push_back(
            kb.Slide(a, b, static_cast<int>(rng.NextBounded(lanes + 1))));
        break;
    }
  }

  // Integer path: div/rem with strictly positive divisors, feeding the
  // histogram index.
  Val divisor = kb.ConstI(I32(), 1 + static_cast<std::int64_t>(rng.NextBounded(7)));
  Val idx = kb.Binary(Opcode::kIDiv, gid + lid, divisor);
  idx = kb.Binary(Opcode::kIRem, idx + gid, kb.ConstI(I32(), 16));

  // A reduction loop over a scalar accumulator.
  Val acc = kb.Var(F32(lanes), "acc");
  kb.Assign(acc, pool.back());
  kb.For("i", kb.ConstI(I32(), 0),
         kb.ConstI(I32(), 1 + static_cast<std::int64_t>(rng.NextBounded(6))),
         1, [&](Val) {
           kb.Assign(acc, acc + pool[rng.NextBounded(pool.size())]);
         });

  // Data-dependent if/else: the scalar compare is single-use, so the
  // bytecode compiler fuses it into a compare-and-branch.
  Val probe = kb.Extract(acc, 0);
  kb.If(
      kb.CmpLt(probe, kb.ConstF(F32(), rng.NextDouble(0.0, 4.0))),
      [&] { kb.Assign(acc, acc + kb.ConstF(F32(lanes), 1.0)); },
      rng.NextDouble() < 0.5
          ? std::function<void()>([&] { kb.Assign(acc, acc * kb.ConstF(F32(lanes), 0.5)); })
          : std::function<void()>(nullptr));

  if (use_local) {
    // Every item writes its slot before the barrier and reads a
    // neighbour's after it, so all slots are defined in every group.
    kb.Store(tile, lid, kb.Extract(acc, 0));
    kb.Barrier();
    Val neighbour = kb.Binary(Opcode::kIRem, lid + kb.ConstI(I32(), 1),
                              kb.LocalSize(0));
    kb.Assign(acc, acc + kb.Splat(kb.Load(tile, neighbour), lanes));
  }

  if (rng.NextDouble() < 0.6) {
    kb.AtomicAdd(ibuf, idx, kb.ConstI(I32(), 1));
  }
  kb.Store(fbuf, gid, kb.VSum(acc));
  return *kb.Build();
}

struct RunOut {
  std::vector<float> f;
  std::vector<std::int32_t> h;
  WorkGroupRun run;
};

RunOut Execute(const Program& p, KirExec engine, int threads) {
  RunOut out;
  out.f.resize(64);
  for (std::size_t i = 0; i < out.f.size(); ++i) {
    out.f[i] = 0.25f + 0.01f * static_cast<float>(i);
  }
  out.h.assign(16, 0);
  std::vector<std::byte> scratch(64, std::byte{0});
  Bindings b;
  b.buffers = {{reinterpret_cast<std::byte*>(out.f.data()), 0x1000,
                out.f.size() * 4},
               {reinterpret_cast<std::byte*>(out.h.data()), 0x2000,
                out.h.size() * 4}};
  if (!p.locals.empty()) {
    b.local_scratch = {scratch.data(), 0x9000, scratch.size()};
  }
  LaunchConfig config;
  config.global_size = {32, 1, 1};
  config.local_size = {8, 1, 1};
  StatusOr<WorkGroupRun> run =
      threads == 1 ? RunProgram(p, config, std::move(b), engine)
                   : RunProgramParallel(p, config, b, threads, engine);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  if (run.ok()) out.run = *std::move(run);
  return out;
}

void ExpectRunsEqual(const WorkGroupRun& a, const WorkGroupRun& b) {
  EXPECT_EQ(a.ops.Total(), b.ops.Total());
  a.ops.ForEach([&](OpClass c, ScalarType t, std::uint8_t lanes,
                    std::uint64_t n) {
    EXPECT_EQ(b.ops.Get(c, t, lanes), n)
        << "class " << static_cast<int>(c) << " type " << static_cast<int>(t)
        << " lanes " << static_cast<int>(lanes);
  });
  EXPECT_EQ(a.loads, b.loads);
  EXPECT_EQ(a.stores, b.stores);
  EXPECT_EQ(a.load_bytes, b.load_bytes);
  EXPECT_EQ(a.store_bytes, b.store_bytes);
  EXPECT_EQ(a.atomics, b.atomics);
  EXPECT_EQ(a.barriers_crossed, b.barriers_crossed);
  EXPECT_EQ(a.work_items, b.work_items);
  EXPECT_EQ(a.item_weight_sum, b.item_weight_sum);
  EXPECT_EQ(a.weighted_group_cost, b.weighted_group_cost);
}

class VmDiffFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VmDiffFuzzTest, BytecodeMatchesInterp) {
  const Program p = RandomProgram(GetParam());
  const RunOut interp = Execute(p, KirExec::kInterp, 1);
  const RunOut bytecode = Execute(p, KirExec::kBytecode, 1);
  EXPECT_EQ(interp.f, bytecode.f);
  EXPECT_EQ(interp.h, bytecode.h);
  ExpectRunsEqual(interp.run, bytecode.run);
}

TEST_P(VmDiffFuzzTest, BytecodeMatchesInterpAcrossThreads) {
  const Program p = RandomProgram(GetParam());
  const RunOut reference = Execute(p, KirExec::kInterp, 1);
  for (const KirExec engine : {KirExec::kInterp, KirExec::kBytecode}) {
    const RunOut threaded = Execute(p, engine, 4);
    EXPECT_EQ(reference.f, threaded.f);
    EXPECT_EQ(reference.h, threaded.h);
    ExpectRunsEqual(reference.run, threaded.run);
  }
}

TEST_P(VmDiffFuzzTest, OpcodeTalliesAndMemoryStreamsMatch) {
  const Program p = RandomProgram(GetParam());
  std::array<std::array<std::uint64_t, kNumOpcodeValues>, 2> tallies{};
  std::array<std::vector<MemEvent>, 2> events;
  std::array<RunOut, 2> outs;
  std::array<WorkGroupRun, 2> runs;
  const KirExec engines[] = {KirExec::kInterp, KirExec::kBytecode};
  for (int e = 0; e < 2; ++e) {
    RunOut& out = outs[static_cast<std::size_t>(e)];
    out.f.assign(64, 1.5f);
    out.h.assign(16, 0);
    std::vector<std::byte> scratch(64, std::byte{0});
    Bindings b;
    b.buffers = {{reinterpret_cast<std::byte*>(out.f.data()), 0x1000,
                  out.f.size() * 4},
                 {reinterpret_cast<std::byte*>(out.h.data()), 0x2000,
                  out.h.size() * 4}};
    if (!p.locals.empty()) {
      b.local_scratch = {scratch.data(), 0x9000, scratch.size()};
    }
    LaunchConfig config;
    config.global_size = {32, 1, 1};
    config.local_size = {8, 1, 1};
    StatusOr<Executor> executor =
        Executor::Create(&p, config, std::move(b), engines[e]);
    ASSERT_TRUE(executor.ok()) << executor.status().ToString();
    executor->set_opcode_tally(tallies[static_cast<std::size_t>(e)].data());
    RecordingMemorySink sink(&events[static_cast<std::size_t>(e)]);
    ASSERT_TRUE(
        executor->RunAllGroups(&sink, &runs[static_cast<std::size_t>(e)])
            .ok());
  }
  EXPECT_EQ(outs[0].f, outs[1].f);
  EXPECT_EQ(outs[0].h, outs[1].h);
  ExpectRunsEqual(runs[0], runs[1]);
  for (int op = 0; op < kNumOpcodeValues; ++op) {
    EXPECT_EQ(tallies[0][static_cast<std::size_t>(op)],
              tallies[1][static_cast<std::size_t>(op)])
        << "opcode " << OpcodeName(static_cast<Opcode>(op));
  }
  ASSERT_EQ(events[0].size(), events[1].size());
  for (std::size_t i = 0; i < events[0].size(); ++i) {
    EXPECT_EQ(events[0][i].addr, events[1][i].addr) << "event " << i;
    EXPECT_EQ(events[0][i].bytes, events[1][i].bytes) << "event " << i;
    EXPECT_EQ(events[0][i].kind, events[1][i].kind) << "event " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VmDiffFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 33));

/// Runs a faulting program under one engine, returning the status plus the
/// partial counts and buffer contents at the fault.
struct FaultOut {
  Status status = Status::Ok();
  WorkGroupRun run;
  std::vector<float> f;
  std::array<std::uint64_t, kNumOpcodeValues> tally{};
};

FaultOut ExecuteFault(const Program& p, KirExec engine,
                      std::uint64_t buffer_elems) {
  FaultOut out;
  out.f.assign(buffer_elems, 2.0f);
  Bindings b;
  b.buffers = {{reinterpret_cast<std::byte*>(out.f.data()), 0x1000,
                buffer_elems * 4}};
  LaunchConfig config;
  config.global_size = {32, 1, 1};
  config.local_size = {8, 1, 1};
  StatusOr<Executor> executor =
      Executor::Create(&p, config, std::move(b), engine);
  EXPECT_TRUE(executor.ok()) << executor.status().ToString();
  if (!executor.ok()) return out;
  executor->set_opcode_tally(out.tally.data());
  NullMemorySink sink;
  out.status = executor->RunAllGroups(&sink, &out.run);
  return out;
}

void ExpectFaultsEqual(const Program& p, std::uint64_t buffer_elems) {
  const FaultOut interp = ExecuteFault(p, KirExec::kInterp, buffer_elems);
  const FaultOut bytecode = ExecuteFault(p, KirExec::kBytecode, buffer_elems);
  EXPECT_FALSE(interp.status.ok());
  EXPECT_EQ(interp.status.code(), bytecode.status.code());
  EXPECT_EQ(interp.status.message(), bytecode.status.message());
  // The fault-injection replay contract: everything already merged into
  // the output when the fault fired must match, so resilience retries see
  // the same world under either engine.
  EXPECT_EQ(interp.f, bytecode.f);
  ExpectRunsEqual(interp.run, bytecode.run);
  for (int op = 0; op < kNumOpcodeValues; ++op) {
    EXPECT_EQ(interp.tally[static_cast<std::size_t>(op)],
              bytecode.tally[static_cast<std::size_t>(op)])
        << "opcode " << OpcodeName(static_cast<Opcode>(op));
  }
}

TEST(VmDiffFaultTest, OutOfBoundsLoadFailsIdentically) {
  KernelBuilder kb("oob_load");
  auto buf = kb.ArgBuffer("buf", ScalarType::kF32, ArgKind::kBufferRW);
  Val gid = kb.GlobalId(0);
  kb.Store(buf, gid, kb.Load(buf, gid + gid));  // faults once 2*gid >= size
  const Program p = *kb.Build();
  ExpectFaultsEqual(p, 16);
}

TEST(VmDiffFaultTest, OutOfBoundsStoreFailsIdentically) {
  KernelBuilder kb("oob_store");
  auto buf = kb.ArgBuffer("buf", ScalarType::kF32, ArgKind::kBufferRW);
  Val gid = kb.GlobalId(0);
  kb.Store(buf, gid + gid, kb.Load(buf, gid));
  const Program p = *kb.Build();
  ExpectFaultsEqual(p, 16);
}

TEST(VmDiffFaultTest, IntegerDivisionByZeroFailsIdentically) {
  KernelBuilder kb("div_zero");
  auto buf = kb.ArgBuffer("buf", ScalarType::kF32, ArgKind::kBufferRW);
  Val gid = kb.GlobalId(0);
  // Divisor hits zero at gid == 8; items 0..7 complete first.
  Val q = kb.Binary(Opcode::kIDiv, kb.ConstI(I32(), 64),
                    gid - kb.ConstI(I32(), 8));
  kb.Store(buf, gid, kb.Convert(q, ScalarType::kF32));
  const Program p = *kb.Build();
  ExpectFaultsEqual(p, 64);
}

}  // namespace
}  // namespace malisim::kir
