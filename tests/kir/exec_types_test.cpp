#include "kir/exec_types.h"

#include <gtest/gtest.h>

namespace malisim::kir {
namespace {

TEST(LaunchConfigTest, DefaultIsValid) {
  LaunchConfig config;
  EXPECT_TRUE(config.IsValid());
  EXPECT_EQ(config.total_work_items(), 1u);
  EXPECT_EQ(config.total_groups(), 1u);
}

TEST(LaunchConfigTest, DerivedQuantities) {
  LaunchConfig config;
  config.work_dim = 2;
  config.global_size = {64, 32, 1};
  config.local_size = {16, 8, 1};
  EXPECT_TRUE(config.IsValid());
  EXPECT_EQ(config.total_work_items(), 2048u);
  EXPECT_EQ(config.work_group_size(), 128u);
  EXPECT_EQ(config.total_groups(), 16u);
  const auto groups = config.num_groups();
  EXPECT_EQ(groups[0], 4u);
  EXPECT_EQ(groups[1], 4u);
}

TEST(LaunchConfigTest, NonDivisibleRejected) {
  LaunchConfig config;
  config.global_size = {10, 1, 1};
  config.local_size = {3, 1, 1};
  EXPECT_FALSE(config.IsValid());
}

TEST(LaunchConfigTest, ZeroSizesRejected) {
  LaunchConfig config;
  config.global_size = {0, 1, 1};
  EXPECT_FALSE(config.IsValid());
}

TEST(LaunchConfigTest, UnusedDimensionsMustBeOne) {
  LaunchConfig config;
  config.work_dim = 1;
  config.global_size = {8, 2, 1};
  config.local_size = {8, 2, 1};
  EXPECT_FALSE(config.IsValid());
}

TEST(LaunchConfigTest, BadWorkDimRejected) {
  LaunchConfig config;
  config.work_dim = 4;
  EXPECT_FALSE(config.IsValid());
}

TEST(OpHistogramTest, AddAndGet) {
  OpHistogram h;
  h.Add(OpClass::kArithMul, ScalarType::kF32, 4, 3);
  EXPECT_EQ(h.Get(OpClass::kArithMul, ScalarType::kF32, 4), 3u);
  EXPECT_EQ(h.Get(OpClass::kArithMul, ScalarType::kF32, 8), 0u);
  EXPECT_EQ(h.TotalClass(OpClass::kArithMul), 3u);
  EXPECT_EQ(h.Total(), 3u);
}

TEST(OpHistogramTest, LaneOpsWeightedByWidth) {
  OpHistogram h;
  h.Add(OpClass::kLoad, ScalarType::kF64, 8, 2);  // 2 vec8 loads
  h.Add(OpClass::kLoad, ScalarType::kF32, 1, 5);  // 5 scalar loads
  EXPECT_EQ(h.TotalLaneOps(OpClass::kLoad), 2u * 8 + 5u);
}

TEST(OpHistogramTest, MergeAndClear) {
  OpHistogram a, b;
  a.Add(OpClass::kStore, ScalarType::kI32, 1, 7);
  b.Add(OpClass::kStore, ScalarType::kI32, 1, 5);
  b.Add(OpClass::kBarrier, ScalarType::kF32, 1);
  a.MergeFrom(b);
  EXPECT_EQ(a.Get(OpClass::kStore, ScalarType::kI32, 1), 12u);
  EXPECT_EQ(a.TotalClass(OpClass::kBarrier), 1u);
  a.Clear();
  EXPECT_EQ(a.Total(), 0u);
}

TEST(OpHistogramTest, ForEachVisitsNonZeroOnly) {
  OpHistogram h;
  h.Add(OpClass::kArithSimple, ScalarType::kF32, 16, 9);
  int visits = 0;
  h.ForEach([&](OpClass c, ScalarType t, std::uint8_t lanes, std::uint64_t n) {
    ++visits;
    EXPECT_EQ(c, OpClass::kArithSimple);
    EXPECT_EQ(t, ScalarType::kF32);
    EXPECT_EQ(lanes, 16);
    EXPECT_EQ(n, 9u);
  });
  EXPECT_EQ(visits, 1);
}

TEST(WorkGroupRunTest, ImbalanceFactorDefinition) {
  WorkGroupRun run;
  EXPECT_DOUBLE_EQ(run.imbalance_factor(), 1.0);  // empty: neutral
  run.item_weight_sum = 100;
  run.weighted_group_cost = 250;
  EXPECT_DOUBLE_EQ(run.imbalance_factor(), 2.5);
}

TEST(WorkGroupRunTest, MergeSums) {
  WorkGroupRun a, b;
  a.loads = 3;
  a.store_bytes = 64;
  a.work_items = 10;
  a.item_weight_sum = 100;
  b.loads = 4;
  b.atomics = 2;
  b.work_items = 6;
  b.weighted_group_cost = 50;
  a.MergeFrom(b);
  EXPECT_EQ(a.loads, 7u);
  EXPECT_EQ(a.atomics, 2u);
  EXPECT_EQ(a.work_items, 16u);
  EXPECT_EQ(a.item_weight_sum, 100u);
  EXPECT_EQ(a.weighted_group_cost, 50u);
}

TEST(ScalarValueTest, Factories) {
  EXPECT_EQ(ScalarValue::I32V(-5).type, ScalarType::kI32);
  EXPECT_EQ(ScalarValue::I32V(-5).i, -5);
  EXPECT_EQ(ScalarValue::I64V(1LL << 40).i, 1LL << 40);
  EXPECT_EQ(ScalarValue::F32V(1.5f).type, ScalarType::kF32);
  EXPECT_DOUBLE_EQ(ScalarValue::F64V(0.25).f, 0.25);
}

TEST(NullMemorySinkTest, AtomicDefaultsToReadPlusWrite) {
  class Counter final : public MemorySink {
   public:
    void OnAccess(std::uint64_t, std::uint32_t, bool is_write) override {
      if (is_write) {
        ++writes;
      } else {
        ++reads;
      }
    }
    int reads = 0, writes = 0;
  };
  Counter sink;
  sink.OnAtomic(0x1000, 4);  // base-class default
  EXPECT_EQ(sink.reads, 1);
  EXPECT_EQ(sink.writes, 1);
}

}  // namespace
}  // namespace malisim::kir
