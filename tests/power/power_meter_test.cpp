#include "power/power_meter.h"

#include <gtest/gtest.h>

namespace malisim::power {
namespace {

TEST(PowerMeterTest, SampleCountMatchesWindow) {
  PowerMeter meter;
  const auto m = meter.Measure(4.0, 2.0);  // 10 Hz x 2 s
  EXPECT_EQ(m.samples, 20u);
  EXPECT_DOUBLE_EQ(m.duration_sec, 2.0);
}

TEST(PowerMeterTest, ShortWindowStillTakesOneSample) {
  PowerMeter meter;
  EXPECT_EQ(meter.Measure(4.0, 0.01).samples, 1u);
}

TEST(PowerMeterTest, MeanTracksTruePowerWithinAccuracy) {
  PowerMeter meter;
  const auto m = meter.Measure(5.0, 100.0);  // 1000 samples
  // 0.1% 1-sigma accuracy: the mean of 1000 samples is well within 0.05%.
  EXPECT_NEAR(m.mean_watts, 5.0, 5.0 * 5e-4);
}

TEST(PowerMeterTest, StdDevReflectsConfiguredAccuracy) {
  PowerMeter meter;
  const auto m = meter.Measure(5.0, 1000.0);
  EXPECT_NEAR(m.stddev_watts, 5.0 * 0.001, 5.0 * 0.001 * 0.2);
}

TEST(PowerMeterTest, NegligibleDeviationAsInPaper) {
  // Paper §IV-D: "In all the presented experiments, the standard deviation
  // is negligible" — relative sigma must be ~0.1%.
  PowerMeter meter;
  const auto m = meter.Measure(3.7, 20.0);
  EXPECT_LT(m.stddev_watts / m.mean_watts, 0.005);
}

TEST(PowerMeterTest, EnergyIsMeanTimesDuration) {
  PowerMeter meter;
  const auto m = meter.Measure(2.0, 4.0);
  EXPECT_NEAR(m.energy_joules, m.mean_watts * 4.0, 1e-12);
}

TEST(PowerMeterTest, DeterministicForSeed) {
  PowerMeter a(PowerMeterParams{}, 99);
  PowerMeter b(PowerMeterParams{}, 99);
  EXPECT_DOUBLE_EQ(a.Measure(4.0, 2.0).mean_watts,
                   b.Measure(4.0, 2.0).mean_watts);
}

TEST(PowerMeterTest, ZeroAccuracyIsExact) {
  PowerMeterParams params;
  params.relative_accuracy = 0.0;
  PowerMeter meter(params);
  const auto m = meter.Measure(6.25, 5.0);
  EXPECT_DOUBLE_EQ(m.mean_watts, 6.25);
  EXPECT_DOUBLE_EQ(m.stddev_watts, 0.0);
}

TEST(PowerMeterTest, CustomSamplingRate) {
  PowerMeterParams params;
  params.sampling_hz = 100.0;
  PowerMeter meter(params);
  EXPECT_EQ(meter.Measure(1.0, 1.0).samples, 100u);
}

}  // namespace
}  // namespace malisim::power
