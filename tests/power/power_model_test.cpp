#include "power/power_model.h"

#include <gtest/gtest.h>

namespace malisim::power {
namespace {

ActivityProfile IdleProfile() {
  ActivityProfile p;
  p.seconds = 1.0;
  return p;
}

TEST(PowerModelTest, IdleBoardDrawsStaticPlusIdleCores) {
  PowerModel model;
  const PowerParams& params = model.params();
  const double watts = model.AveragePower(IdleProfile());
  EXPECT_NEAR(watts,
              params.board_static_w + kNumA15Cores * params.a15_core_idle_w,
              1e-9);
}

TEST(PowerModelTest, BusyCpuCoreAddsActiveDelta) {
  PowerModel model;
  ActivityProfile p = IdleProfile();
  p.cpu_busy[0] = 1.0;
  const double delta = model.AveragePower(p) - model.AveragePower(IdleProfile());
  EXPECT_NEAR(delta,
              model.params().a15_core_active_w - model.params().a15_core_idle_w,
              1e-9);
}

TEST(PowerModelTest, StalledCpuCoreBurnsMostOfActivePower) {
  // The OoO core that is mostly memory-stalled (low issue utilization but
  // continuously busy) draws at least the stall-floor fraction.
  PowerModel model;
  ActivityProfile p = IdleProfile();
  p.cpu_busy[0] = 0.25;
  const double cpu = model.CpuPower(p) - kNumA15Cores * model.params().a15_core_idle_w;
  const double full = model.params().a15_core_active_w - model.params().a15_core_idle_w;
  EXPECT_GT(cpu / full, model.params().a15_stall_floor);
}

TEST(PowerModelTest, PollingCpuCoreIsNotChargedTheStallFloor) {
  PowerModel model;
  ActivityProfile p = IdleProfile();
  p.cpu_busy[0] = 0.02;  // host core waiting in clFinish
  const double cpu = model.CpuPower(p) - kNumA15Cores * model.params().a15_core_idle_w;
  const double full = model.params().a15_core_active_w - model.params().a15_core_idle_w;
  EXPECT_LT(cpu / full, 0.25);
}

TEST(PowerModelTest, GpuOffDrawsNothing) {
  PowerModel model;
  ActivityProfile p = IdleProfile();
  p.gpu_on = false;
  p.gpu_core_busy = {1.0, 1.0, 1.0, 1.0};
  EXPECT_EQ(model.GpuPower(p), 0.0);
}

TEST(PowerModelTest, GpuPowerScalesWithUtilization) {
  PowerModel model;
  ActivityProfile low = IdleProfile();
  low.gpu_on = true;
  low.gpu_core_busy = {0.1, 0.1, 0.1, 0.1};
  ActivityProfile high = low;
  high.gpu_core_busy = {0.95, 0.95, 0.95, 0.95};
  EXPECT_GT(model.GpuPower(high), 1.5 * model.GpuPower(low));
}

TEST(PowerModelTest, DramPowerProportionalToBandwidth) {
  PowerModel model;
  ActivityProfile p = IdleProfile();
  p.dram_bytes = 1'000'000'000;  // 1 GB over 1 s
  EXPECT_NEAR(model.DramPower(p),
              model.params().dram_energy_per_byte * 1e9, 1e-9);
  p.seconds = 0.5;  // same bytes in half the time: double the power
  EXPECT_NEAR(model.DramPower(p),
              2.0 * model.params().dram_energy_per_byte * 1e9, 1e-9);
}

TEST(PowerModelTest, EnergyIsPowerTimesTime) {
  PowerModel model;
  ActivityProfile p = IdleProfile();
  p.cpu_busy[0] = 0.5;
  p.seconds = 3.0;
  EXPECT_NEAR(model.Energy(p), model.AveragePower(p) * 3.0, 1e-12);
}

TEST(PowerModelTest, MonotoneInUtilization) {
  PowerModel model;
  double prev = 0.0;
  for (double u = 0.0; u <= 1.0; u += 0.05) {
    ActivityProfile p = IdleProfile();
    p.cpu_busy[0] = u;
    const double w = model.AveragePower(p);
    EXPECT_GE(w, prev);
    prev = w;
  }
}

TEST(PowerModelTest, PaperCalibrationOpenMPDeltaAboutThirtyPercent) {
  // Sanity anchor on the default constants: two fully busy A15 cores draw
  // ~1.3x one busy core at board level (paper Fig. 3: OpenMP avg +31%).
  PowerModel model;
  ActivityProfile serial = IdleProfile();
  serial.cpu_busy[0] = 0.9;
  serial.dram_bytes = 300'000'000;
  ActivityProfile omp = serial;
  omp.cpu_busy[1] = 0.9;
  const double ratio = model.AveragePower(omp) / model.AveragePower(serial);
  EXPECT_GT(ratio, 1.2);
  EXPECT_LT(ratio, 1.45);
}

}  // namespace
}  // namespace malisim::power
