#include "common/prng.h"

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace malisim {
namespace {

TEST(PrngTest, DeterministicForSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(PrngTest, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(PrngTest, DoubleIsInUnitInterval) {
  Xoshiro256 rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(PrngTest, DoubleRangeRespectsBounds) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble(-3.0, 7.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(PrngTest, BoundedStaysBelowBound) {
  Xoshiro256 rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.NextBounded(13);
    EXPECT_LT(v, 13u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 13u);  // every residue hit over 10k draws
}

TEST(PrngTest, UniformMeanAndVariance) {
  Xoshiro256 rng(31337);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double u = rng.NextDouble();
    sum += u;
    sum2 += u * u;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.01);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.01);
}

TEST(PrngTest, GaussianMomentsAreStandard) {
  Xoshiro256 rng(4242);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(PrngTest, ForkedStreamIsIndependentlySeeded) {
  Xoshiro256 rng(77);
  Xoshiro256 forked = rng.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (rng.NextU64() == forked.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(SplitMix64Test, KnownFirstOutputsDiffer) {
  SplitMix64 sm(0);
  const std::uint64_t a = sm.Next();
  const std::uint64_t b = sm.Next();
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace malisim
