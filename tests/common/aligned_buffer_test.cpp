#include "common/aligned_buffer.h"

#include <cstdint>

#include <gtest/gtest.h>

namespace malisim {
namespace {

TEST(AlignedBufferTest, DefaultIsEmpty) {
  AlignedBuffer b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.data(), nullptr);
}

TEST(AlignedBufferTest, AllocatesAligned) {
  AlignedBuffer b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % kCacheLineBytes, 0u);
}

TEST(AlignedBufferTest, ZeroFillClears) {
  AlignedBuffer b(64);
  b.data()[0] = std::byte{0xFF};
  b.ZeroFill();
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(b.data()[i], std::byte{0});
  }
}

TEST(AlignedBufferTest, TypedView) {
  AlignedBuffer b(16 * sizeof(float));
  auto view = b.as<float>(16);
  view[3] = 2.5f;
  EXPECT_EQ(b.as<float>(16)[3], 2.5f);
}

TEST(AlignedBufferTest, MoveTransfersOwnership) {
  AlignedBuffer a(32);
  a.data()[0] = std::byte{7};
  std::byte* ptr = a.data();
  AlignedBuffer b = std::move(a);
  EXPECT_EQ(b.data(), ptr);
  EXPECT_EQ(b.data()[0], std::byte{7});
  EXPECT_EQ(a.data(), nullptr);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(a.size(), 0u);
}

TEST(AlignedBufferTest, MoveAssignReleasesOld) {
  AlignedBuffer a(32), b(64);
  b = std::move(a);
  EXPECT_EQ(b.size(), 32u);
}

TEST(AlignedBufferTest, SpanViews) {
  AlignedBuffer b(10);
  EXPECT_EQ(b.bytes().size(), 10u);
  const AlignedBuffer& cb = b;
  EXPECT_EQ(cb.bytes().size(), 10u);
}

}  // namespace
}  // namespace malisim
