#include "common/status.h"

#include <gtest/gtest.h>

namespace malisim {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad foo");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad foo");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad foo");
}

TEST(StatusTest, FactoryFunctionsProduceMatchingCodes) {
  EXPECT_EQ(OutOfRangeError("x").code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(FailedPreconditionError("x").code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(NotFoundError("x").code(), ErrorCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(ResourceExhaustedError("x").code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(UnimplementedError("x").code(), ErrorCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), ErrorCode::kInternal);
  EXPECT_EQ(BuildFailureError("x").code(), ErrorCode::kBuildFailure);
  EXPECT_EQ(UnavailableError("x").code(), ErrorCode::kUnavailable);
  EXPECT_EQ(AllocationFailureError("x").code(), ErrorCode::kAllocationFailure);
  EXPECT_EQ(DeadlineExceededError("x").code(), ErrorCode::kDeadlineExceeded);
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kDeadlineExceeded); ++c) {
    EXPECT_NE(ErrorCodeName(static_cast<ErrorCode>(c)), "Unknown");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFoundError("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), ErrorCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = *std::move(v);
  EXPECT_EQ(*owned, 7);
}

TEST(StatusOrTest, OkStatusIsRejected) {
  StatusOr<int> v{Status::Ok()};
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), ErrorCode::kInternal);
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return InvalidArgumentError("inner"); };
  auto outer = [&]() -> Status {
    MALI_RETURN_IF_ERROR(fails());
    return InternalError("unreachable");
  };
  EXPECT_EQ(outer().code(), ErrorCode::kInvalidArgument);
}

TEST(StatusMacroTest, ReturnIfErrorPassesThroughOk) {
  auto succeeds = []() -> Status { return Status::Ok(); };
  auto outer = [&]() -> Status {
    MALI_RETURN_IF_ERROR(succeeds());
    return AlreadyExistsError("after");
  };
  EXPECT_EQ(outer().code(), ErrorCode::kAlreadyExists);
}

// Abort paths must log the underlying error before dying, so a crash in a
// batch run is diagnosable from the log alone. The default log level is
// kWarning, so MALI_LOG_ERROR reaches stderr without any setup.
using StatusDeathTest = ::testing::Test;

TEST(StatusDeathTest, StatusOrValueOnErrorLogsCodeAndMessage) {
  StatusOr<int> v = NotFoundError("missing widget");
  EXPECT_DEATH(v.value(),
               "StatusOr::value\\(\\) on error status: "
               "NotFound: missing widget \\(code 4\\)");
}

TEST(StatusDeathTest, MaliCheckLogsExpressionAndLocation) {
  EXPECT_DEATH(MALI_CHECK(1 == 2),
               "MALI_CHECK failed at .*status_test\\.cpp:[0-9]+: 1 == 2");
}

TEST(StatusDeathTest, MaliCheckMsgLogsMessage) {
  EXPECT_DEATH(MALI_CHECK_MSG(false, "the flux capacitor is missing"),
               "the flux capacitor is missing");
}

}  // namespace
}  // namespace malisim
