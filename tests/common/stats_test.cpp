#include "common/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/prng.h"

namespace malisim {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStatTest, SingleValue) {
  RunningStat s;
  s.Add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStatTest, KnownSample) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.sum(), 40.0, 1e-9);
}

TEST(RunningStatTest, MatchesBatchFormulasOnRandomData) {
  Xoshiro256 rng(7);
  std::vector<double> xs;
  RunningStat s;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble(-5, 5);
    xs.push_back(x);
    s.Add(x);
  }
  EXPECT_NEAR(s.mean(), Mean(xs), 1e-10);
  EXPECT_NEAR(s.stddev(), StdDev(xs), 1e-10);
}

TEST(StatsTest, GeoMeanOfEqualValues) {
  std::vector<double> xs(5, 3.0);
  EXPECT_NEAR(GeoMean(xs), 3.0, 1e-12);
}

TEST(StatsTest, GeoMeanKnown) {
  std::vector<double> xs = {1.0, 4.0, 16.0};
  EXPECT_NEAR(GeoMean(xs), 4.0, 1e-12);
}

TEST(StatsTest, GeoMeanIsBelowArithmeticMean) {
  // AM-GM inequality on a non-constant positive sample.
  std::vector<double> xs = {0.5, 2.0, 8.0, 9.0};
  EXPECT_LT(GeoMean(xs), Mean(xs));
}

TEST(StatsTest, MedianOddEven) {
  std::vector<double> odd = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(Median(odd), 3.0);
  std::vector<double> even = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(Median(even), 2.5);
  EXPECT_EQ(Median({}), 0.0);
}

TEST(StatsTest, RelativeDifference) {
  EXPECT_DOUBLE_EQ(RelativeDifference(10.0, 10.0), 0.0);
  EXPECT_NEAR(RelativeDifference(9.0, 10.0), 0.1, 1e-12);
  EXPECT_NEAR(RelativeDifference(-10.0, 10.0), 2.0, 1e-12);
}

TEST(StatRegistryTest, IncrementAndGet) {
  StatRegistry reg;
  EXPECT_FALSE(reg.Has("a"));
  EXPECT_EQ(reg.Get("a"), 0.0);
  reg.Increment("a");
  reg.Increment("a", 2.5);
  EXPECT_TRUE(reg.Has("a"));
  EXPECT_DOUBLE_EQ(reg.Get("a"), 3.5);
}

TEST(StatRegistryTest, SetOverwrites) {
  StatRegistry reg;
  reg.Increment("x", 10);
  reg.Set("x", 1);
  EXPECT_DOUBLE_EQ(reg.Get("x"), 1.0);
}

TEST(StatRegistryTest, InsertionOrderPreserved) {
  StatRegistry reg;
  reg.Increment("z");
  reg.Increment("a");
  reg.Increment("m");
  const auto entries = reg.Entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].name, "z");
  EXPECT_EQ(entries[1].name, "a");
  EXPECT_EQ(entries[2].name, "m");
}

TEST(StatRegistryTest, MergeSumsSharedCounters) {
  StatRegistry a, b;
  a.Increment("shared", 1);
  a.Increment("only_a", 5);
  b.Increment("shared", 2);
  b.Increment("only_b", 7);
  a.MergeFrom(b);
  EXPECT_DOUBLE_EQ(a.Get("shared"), 3.0);
  EXPECT_DOUBLE_EQ(a.Get("only_a"), 5.0);
  EXPECT_DOUBLE_EQ(a.Get("only_b"), 7.0);
}

}  // namespace
}  // namespace malisim
