// Tests for the thread pool and the ordered replay pipeline that the
// parallel simulation engine is built on.
#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/sim_options.h"

namespace malisim {
namespace {

TEST(SimOptionsTest, DefaultsToSerial) {
  SimOptions options;
  EXPECT_EQ(options.threads, 1);
  EXPECT_EQ(options.ResolvedThreads(), 1);
}

TEST(SimOptionsTest, ZeroThreadsResolvesToHardwareConcurrency) {
  SimOptions options;
  options.threads = 0;
  EXPECT_GE(options.ResolvedThreads(), 1);
}

TEST(SimOptionsTest, WindowDefaultsScaleWithThreads) {
  SimOptions options;
  options.threads = 16;
  EXPECT_EQ(options.ResolvedWindow(), 32);
  options.threads = 1;
  EXPECT_EQ(options.ResolvedWindow(), 8);
  options.replay_window = 3;
  EXPECT_EQ(options.ResolvedWindow(), 3);
}

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        count.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }  // ~ThreadPool must finish everything before joining
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, ClampsWorkerCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 1);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  pool.WaitIdle();
  EXPECT_TRUE(ran.load());
}

TEST(OrderedPipelineTest, ReplaysInStrictlyIncreasingOrder) {
  ThreadPool pool(4);
  const std::size_t n = 64;
  std::vector<int> produced(n, 0);
  std::vector<std::size_t> replay_order;
  const Status status = RunOrderedPipeline(
      &pool, n, /*window=*/8,
      [&](std::size_t i) {
        // Finish out of order on purpose.
        std::this_thread::sleep_for(std::chrono::microseconds((i % 7) * 50));
        produced[i] = static_cast<int>(i) + 1;
        return Status::Ok();
      },
      [&](std::size_t i) {
        replay_order.push_back(i);
        EXPECT_EQ(produced[i], static_cast<int>(i) + 1);  // ran before replay
        return Status::Ok();
      });
  ASSERT_TRUE(status.ok()) << status.ToString();
  ASSERT_EQ(replay_order.size(), n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(replay_order[i], i);
}

TEST(OrderedPipelineTest, NullPoolRunsInline) {
  std::vector<std::size_t> order;
  const Status status = RunOrderedPipeline(
      nullptr, 5, /*window=*/1,
      [&](std::size_t i) {
        order.push_back(i * 2);
        return Status::Ok();
      },
      [&](std::size_t i) {
        order.push_back(i * 2 + 1);
        return Status::Ok();
      });
  ASSERT_TRUE(status.ok());
  // Inline mode interleaves run(i), replay(i), run(i+1), ...
  const std::vector<std::size_t> expected = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_EQ(order, expected);
}

TEST(OrderedPipelineTest, ReturnsLowestIndexFailure) {
  ThreadPool pool(4);
  const Status status = RunOrderedPipeline(
      &pool, 32, /*window=*/32,
      [&](std::size_t i) -> Status {
        if (i == 20) return InternalError("late failure");
        if (i == 3) return InvalidArgumentError("early failure");
        return Status::Ok();
      },
      [&](std::size_t i) {
        EXPECT_LT(i, 3u);  // replay never reaches the failed task
        return Status::Ok();
      });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "early failure");
}

TEST(OrderedPipelineTest, ReplayFailureStopsPipeline) {
  ThreadPool pool(2);
  std::atomic<int> replays{0};
  const Status status = RunOrderedPipeline(
      &pool, 16, /*window=*/4,
      [](std::size_t) { return Status::Ok(); },
      [&](std::size_t i) -> Status {
        ++replays;
        if (i == 5) return InternalError("replay broke");
        return Status::Ok();
      });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kInternal);
  EXPECT_EQ(replays.load(), 6);  // 0..5 inclusive
}

TEST(OrderedPipelineTest, WindowBoundsRunAhead) {
  ThreadPool pool(2);
  const std::size_t n = 40;
  const std::size_t window = 4;
  std::atomic<std::int64_t> replayed{0};
  std::atomic<std::int64_t> max_ahead{0};
  const Status status = RunOrderedPipeline(
      &pool, n, window,
      [&](std::size_t i) {
        const std::int64_t ahead =
            static_cast<std::int64_t>(i) - replayed.load();
        std::int64_t prev = max_ahead.load();
        while (ahead > prev && !max_ahead.compare_exchange_weak(prev, ahead)) {
        }
        return Status::Ok();
      },
      [&](std::size_t) {
        replayed.fetch_add(1);
        return Status::Ok();
      });
  ASSERT_TRUE(status.ok());
  // A task index can run at most `window` past the replay cursor.
  EXPECT_LE(max_ahead.load(), static_cast<std::int64_t>(window));
}

TEST(OrderedPipelineTest, ZeroTasksIsOk) {
  ThreadPool pool(2);
  const Status status = RunOrderedPipeline(
      &pool, 0, 4, [](std::size_t) { return Status::Ok(); },
      [](std::size_t) { return Status::Ok(); });
  EXPECT_TRUE(status.ok());
}

}  // namespace
}  // namespace malisim
