#include "common/table.h"

#include <gtest/gtest.h>

namespace malisim {
namespace {

TEST(TableTest, AsciiContainsHeadersAndCells) {
  Table t({"name", "value"});
  t.BeginRow();
  t.AddCell("alpha");
  t.AddNumber(1.2345, 2);
  const std::string ascii = t.ToAscii();
  EXPECT_NE(ascii.find("name"), std::string::npos);
  EXPECT_NE(ascii.find("alpha"), std::string::npos);
  EXPECT_NE(ascii.find("1.23"), std::string::npos);
}

TEST(TableTest, MissingCellRendersNa) {
  Table t({"a"});
  t.BeginRow();
  t.AddMissing();
  EXPECT_NE(t.ToAscii().find("n/a"), std::string::npos);
}

TEST(TableTest, CsvRoundTrip) {
  Table t({"x", "y"});
  t.AddRow({"1", "2"});
  t.AddRow({"3", "4"});
  EXPECT_EQ(t.ToCsv(), "x,y\n1,2\n3,4\n");
}

TEST(TableTest, CsvEscapesSpecialCharacters) {
  Table t({"c"});
  t.AddRow({"a,b"});
  t.AddRow({"say \"hi\""});
  const std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TableTest, ShortRowsRenderPadded) {
  Table t({"a", "b", "c"});
  t.BeginRow();
  t.AddCell("only");
  // ToAscii must not crash on a partial row.
  EXPECT_NE(t.ToAscii().find("only"), std::string::npos);
}

TEST(TableTest, RowCountAndColumnCount) {
  Table t({"a", "b"});
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_EQ(t.num_rows(), 0u);
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.14159, 0), "3");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace malisim
