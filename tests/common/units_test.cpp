#include "common/units.h"

#include <gtest/gtest.h>

namespace malisim {
namespace {

TEST(UnitsTest, ByteSizes) {
  EXPECT_EQ(KiB(1), 1024u);
  EXPECT_EQ(KiB(32), 32768u);
  EXPECT_EQ(MiB(1), 1048576u);
  EXPECT_EQ(GiB(2), 2147483648u);
}

TEST(UnitsTest, CycleTimeConversionsRoundTrip) {
  const double hz = 533e6;
  const double cycles = 1.0e6;
  const double seconds = CyclesToSeconds(cycles, hz);
  EXPECT_NEAR(SecondsToCycles(seconds, hz), cycles, 1e-6);
  EXPECT_NEAR(seconds, 1.0e6 / 533e6, 1e-15);
}

TEST(UnitsTest, EnergyIsWattSeconds) {
  EXPECT_DOUBLE_EQ(Energy(4.0, 2.5), 10.0);
  EXPECT_DOUBLE_EQ(Energy(0.0, 100.0), 0.0);
}

TEST(UnitsTest, SiPrefixes) {
  EXPECT_DOUBLE_EQ(kKilo, 1e3);
  EXPECT_DOUBLE_EQ(kMega, 1e6);
  EXPECT_DOUBLE_EQ(kGiga, 1e9);
}

}  // namespace
}  // namespace malisim
