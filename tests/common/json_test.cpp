// Tests for common/json: the streaming writer, the locale-independent
// number rendering, and the recursive-descent parser the bench-report
// loader is built on.
#include <string>

#include <gtest/gtest.h>

#include "common/json.h"

namespace malisim {
namespace {

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(JsonNumberTest, RendersLikePrintf17g) {
  EXPECT_EQ(JsonNumber(0.0), "0");
  EXPECT_EQ(JsonNumber(1.0), "1");
  EXPECT_EQ(JsonNumber(-2.5), "-2.5");
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", 0.1);
  EXPECT_EQ(JsonNumber(0.1), buf);
  std::snprintf(buf, sizeof(buf), "%.17g", 1.0 / 3.0);
  EXPECT_EQ(JsonNumber(1.0 / 3.0), buf);
}

TEST(JsonNumberTest, NonFiniteRendersAsZero) {
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "0");
  EXPECT_EQ(JsonNumber(-std::numeric_limits<double>::infinity()), "0");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::quiet_NaN()), "0");
}

TEST(JsonWriterTest, BuildsNestedAggregates) {
  JsonWriter w;
  w.BeginObject();
  w.Key("a");
  w.Number(1.5);
  w.Key("list");
  w.BeginArray();
  w.Number(std::uint64_t{1});
  w.String("two");
  w.Bool(true);
  w.EndArray();
  w.Key("nested");
  w.BeginObject();
  w.Key("empty");
  w.BeginArray();
  w.EndArray();
  w.EndObject();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"a\":1.5,\"list\":[1,\"two\",true],\"nested\":{\"empty\":[]}}");
}

TEST(ParseJsonTest, ParsesScalarsObjectsAndArrays) {
  auto parsed = ParseJson(
      R"({"name":"x","n":2.5,"neg":-3,"flag":true,"none":null,)"
      R"("arr":[1,2,3],"obj":{"k":"v"}})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& v = *parsed;
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.StringOr("name", ""), "x");
  EXPECT_EQ(v.NumberOr("n", 0), 2.5);
  EXPECT_EQ(v.NumberOr("neg", 0), -3.0);
  ASSERT_NE(v.Find("flag"), nullptr);
  EXPECT_TRUE(v.Find("flag")->bool_value);
  EXPECT_EQ(v.Find("none")->kind, JsonValue::Kind::kNull);
  ASSERT_NE(v.Find("arr"), nullptr);
  ASSERT_EQ(v.Find("arr")->array.size(), 3u);
  EXPECT_EQ(v.Find("arr")->array[1].number_value, 2.0);
  ASSERT_NE(v.Find("obj"), nullptr);
  EXPECT_EQ(v.Find("obj")->StringOr("k", ""), "v");
}

TEST(ParseJsonTest, PreservesObjectInsertionOrder) {
  auto parsed = ParseJson(R"({"z":1,"a":2,"m":3})");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->members.size(), 3u);
  EXPECT_EQ(parsed->members[0].first, "z");
  EXPECT_EQ(parsed->members[1].first, "a");
  EXPECT_EQ(parsed->members[2].first, "m");
}

TEST(ParseJsonTest, DecodesStringEscapes) {
  auto parsed = ParseJson(R"({"s":"a\"b\\c\ndAé"})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->StringOr("s", ""), "a\"b\\c\ndA\xc3\xa9");
}

TEST(ParseJsonTest, RoundTripsWriterOutput) {
  JsonWriter w;
  w.BeginObject();
  w.Key("x");
  w.Number(0.1);
  w.Key("names");
  w.BeginArray();
  w.String("a b");
  w.String("c\"d");
  w.EndArray();
  w.EndObject();
  auto parsed = ParseJson(w.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->NumberOr("x", 0), 0.1);
  ASSERT_NE(parsed->Find("names"), nullptr);
  EXPECT_EQ(parsed->Find("names")->array[1].string_value, "c\"d");
}

TEST(ParseJsonTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,2").ok());
  EXPECT_FALSE(ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(ParseJson("{\"a\":1} trailing").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("tru").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
}

TEST(ParseJsonTest, RejectsRunawayNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(JsonValueTest, TypedLookupsFallBackOnMissingOrWrongKind) {
  auto parsed = ParseJson(R"({"s":"text","n":4})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->NumberOr("missing", 7.0), 7.0);
  EXPECT_EQ(parsed->NumberOr("s", 7.0), 7.0);
  EXPECT_EQ(parsed->StringOr("n", "fb"), "fb");
  EXPECT_EQ(parsed->Find("missing"), nullptr);
}

}  // namespace
}  // namespace malisim
