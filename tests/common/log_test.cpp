#include "common/log.h"

#include <cstdlib>

#include <gtest/gtest.h>

namespace malisim {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LogTest, LevelRoundTrips) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST(LogTest, SuppressedLevelsDoNotCrash) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kOff);
  // Nothing should be emitted (and nothing should blow up) at any level.
  MALI_LOG_DEBUG("debug %d", 1);
  MALI_LOG_INFO("info %s", "x");
  MALI_LOG_WARN("warn");
  MALI_LOG_ERROR("error %f", 1.5);
}

TEST(LogTest, EnabledLevelsFormat) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  MALI_LOG_INFO("value=%d", 42);
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[info ]"), std::string::npos);
  EXPECT_NE(out.find("value=42"), std::string::npos);
}

TEST(LogTest, ParseLogLevelAcceptsNamesAndNumbers) {
  LogLevel level = LogLevel::kOff;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("info", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("warning", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(ParseLogLevel("off", &level));
  EXPECT_EQ(level, LogLevel::kOff);
  EXPECT_TRUE(ParseLogLevel("0", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("3", &level));
  EXPECT_EQ(level, LogLevel::kError);
}

TEST(LogTest, ParseLogLevelRejectsGarbage) {
  LogLevel level = LogLevel::kInfo;
  EXPECT_FALSE(ParseLogLevel("loud", &level));
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_FALSE(ParseLogLevel("7", &level));
  EXPECT_EQ(level, LogLevel::kInfo);  // untouched on failure
}

TEST(LogTest, InitLogLevelFromEnvReadsVariable) {
  LogLevelGuard guard;
  ASSERT_EQ(setenv("MALISIM_LOG_LEVEL", "debug", 1), 0);
  InitLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  ASSERT_EQ(setenv("MALISIM_LOG_LEVEL", "error", 1), 0);
  InitLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Invalid values leave the level alone.
  ASSERT_EQ(setenv("MALISIM_LOG_LEVEL", "bogus", 1), 0);
  InitLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  ASSERT_EQ(unsetenv("MALISIM_LOG_LEVEL"), 0);
}

TEST(LogTest, InitLogLevelFromEnvWarnsOnUnrecognizedValue) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kWarning);  // warnings must be visible for the check
  ASSERT_EQ(setenv("MALISIM_LOG_LEVEL", "loud", 1), 0);
  ::testing::internal::CaptureStderr();
  InitLogLevelFromEnv();
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("ignoring invalid MALISIM_LOG_LEVEL='loud'"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("want debug|info|warn|error|off"), std::string::npos);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);  // level untouched
  ASSERT_EQ(unsetenv("MALISIM_LOG_LEVEL"), 0);
}

TEST(LogTest, ApplyLogLevelFlagWinsOverEnv) {
  LogLevelGuard guard;
  // The binaries' order: environment default first, then the flag.
  ASSERT_EQ(setenv("MALISIM_LOG_LEVEL", "error", 1), 0);
  InitLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  EXPECT_TRUE(ApplyLogLevelFlag("debug"));
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  ASSERT_EQ(unsetenv("MALISIM_LOG_LEVEL"), 0);
}

TEST(LogTest, ApplyLogLevelFlagRejectsGarbageUntouched) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kInfo);
  EXPECT_FALSE(ApplyLogLevelFlag("loud"));
  EXPECT_FALSE(ApplyLogLevelFlag(""));
  EXPECT_FALSE(ApplyLogLevelFlag("9"));
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
  EXPECT_TRUE(ApplyLogLevelFlag("off"));
  EXPECT_EQ(GetLogLevel(), LogLevel::kOff);
}

TEST(LogTest, BelowThresholdSuppressed) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kWarning);
  ::testing::internal::CaptureStderr();
  MALI_LOG_DEBUG("hidden");
  MALI_LOG_INFO("hidden too");
  MALI_LOG_WARN("visible");
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_NE(out.find("visible"), std::string::npos);
}

}  // namespace
}  // namespace malisim
