#include "cpu/a15_device.h"

#include <vector>

#include <gtest/gtest.h>

#include "kir/builder.h"

namespace malisim::cpu {
namespace {

using kir::ArgKind;
using kir::KernelBuilder;
using kir::ScalarType;
using kir::Val;

/// A chunked saxpy kernel, the canonical CPU benchmark shape.
kir::Program SaxpyKernel() {
  KernelBuilder kb("saxpy");
  auto x = kb.ArgBuffer("x", ScalarType::kF32, ArgKind::kBufferRO);
  auto y = kb.ArgBuffer("y", ScalarType::kF32, ArgKind::kBufferRW);
  Val n = kb.ArgScalar("n", ScalarType::kI32);
  Val a = kb.ArgScalar("a", ScalarType::kF32);
  Val gid = kb.GlobalId(0);
  Val threads = kb.GlobalSize(0);
  Val chunk = kb.Binary(
      kir::Opcode::kIDiv,
      kb.Binary(kir::Opcode::kSub, kb.Binary(kir::Opcode::kAdd, n, threads),
                kb.ConstI(kir::I32(), 1)),
      threads);
  Val start = kb.Binary(kir::Opcode::kMul, gid, chunk);
  Val end = kb.Min(kb.Binary(kir::Opcode::kAdd, start, chunk), n);
  kb.For("i", start, end, 1, [&](Val i) {
    kb.Store(y, i, kb.Fma(a, kb.Load(x, i), kb.Load(y, i)));
  });
  return *kb.Build();
}

kir::Bindings Bind(std::vector<float>& x, std::vector<float>& y, int n,
                   float a) {
  kir::Bindings b;
  b.buffers = {{reinterpret_cast<std::byte*>(x.data()), 0x100000, x.size() * 4},
               {reinterpret_cast<std::byte*>(y.data()), 0x200000, y.size() * 4}};
  b.scalars = {kir::ScalarValue::I32V(n), kir::ScalarValue::F32V(a)};
  return b;
}

TEST(A15DeviceTest, SerialExecutesCorrectly) {
  const int n = 1000;
  std::vector<float> x(n, 2.0f), y(n, 1.0f);
  kir::Program p = SaxpyKernel();
  CortexA15Device device;
  kir::LaunchConfig config;
  config.global_size = {1, 1, 1};
  auto result = device.Run(p, config, Bind(x, y, n, 3.0f), 1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (float v : y) EXPECT_FLOAT_EQ(v, 7.0f);
  EXPECT_GT(result->seconds, 0.0);
}

TEST(A15DeviceTest, TwoThreadsSameResultFasterTime) {
  const int n = 100000;
  std::vector<float> x1(n, 2.0f), y1(n, 1.0f);
  std::vector<float> x2(n, 2.0f), y2(n, 1.0f);
  kir::Program p = SaxpyKernel();
  CortexA15Device device;

  kir::LaunchConfig serial_cfg;
  serial_cfg.global_size = {1, 1, 1};
  auto serial = device.Run(p, serial_cfg, Bind(x1, y1, n, 3.0f), 1);
  ASSERT_TRUE(serial.ok());

  kir::LaunchConfig omp_cfg;
  omp_cfg.global_size = {2, 1, 1};
  auto omp = device.Run(p, omp_cfg, Bind(x2, y2, n, 3.0f), 2);
  ASSERT_TRUE(omp.ok());

  EXPECT_EQ(y1, y2);
  EXPECT_LT(omp->seconds, serial->seconds);
  // Two cores never exceed 2x.
  EXPECT_GT(omp->seconds, serial->seconds / 2.001);
}

TEST(A15DeviceTest, ProfileShowsBusyCores) {
  const int n = 50000;
  std::vector<float> x(n, 1.0f), y(n, 1.0f);
  kir::Program p = SaxpyKernel();
  CortexA15Device device;
  kir::LaunchConfig config;
  config.global_size = {2, 1, 1};
  auto result = device.Run(p, config, Bind(x, y, n, 2.0f), 2);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->profile.cpu_busy[0], 0.1);
  EXPECT_GT(result->profile.cpu_busy[1], 0.1);
  EXPECT_FALSE(result->profile.gpu_on);
  EXPECT_GT(result->profile.dram_bytes, 0u);
  EXPECT_DOUBLE_EQ(result->profile.seconds, result->seconds);
}

TEST(A15DeviceTest, RejectsBadThreadCount) {
  kir::Program p = SaxpyKernel();
  CortexA15Device device;
  std::vector<float> x(4), y(4);
  kir::LaunchConfig config;
  EXPECT_FALSE(device.Run(p, config, Bind(x, y, 4, 1.0f), 0).ok());
  EXPECT_FALSE(device.Run(p, config, Bind(x, y, 4, 1.0f), 3).ok());
}

TEST(A15DeviceTest, WarmCachesSpeedSecondRun) {
  // Small working set: second run without a flush hits the caches.
  const int n = 2000;  // 8 KB x 2 arrays, fits L1+L2
  std::vector<float> x(n, 1.0f), y(n, 1.0f);
  kir::Program p = SaxpyKernel();
  CortexA15Device device;
  kir::LaunchConfig config;
  auto cold = device.Run(p, config, Bind(x, y, n, 1.0f), 1);
  ASSERT_TRUE(cold.ok());
  auto warm = device.Run(p, config, Bind(x, y, n, 1.0f), 1);
  ASSERT_TRUE(warm.ok());
  EXPECT_LT(warm->seconds, cold->seconds);
  device.FlushCaches();
  auto reflushed = device.Run(p, config, Bind(x, y, n, 1.0f), 1);
  ASSERT_TRUE(reflushed.ok());
  EXPECT_NEAR(reflushed->seconds, cold->seconds, cold->seconds * 0.02);
}

TEST(A15DeviceTest, MemoryBoundKernelIsBandwidthLimited) {
  // A streaming kernel large enough to exceed the caches: modelled time
  // must be at least bytes / per-core streaming bandwidth.
  const int n = 1 << 20;
  std::vector<float> x(n, 1.0f), y(n, 1.0f);
  kir::Program p = SaxpyKernel();
  A15TimingParams timing;
  CortexA15Device device(timing);
  kir::LaunchConfig config;
  auto result = device.Run(p, config, Bind(x, y, n, 1.0f), 1);
  ASSERT_TRUE(result.ok());
  const double bytes = static_cast<double>(result->profile.dram_bytes);
  EXPECT_GE(result->seconds, bytes / timing.per_core_stream_bw * 0.99);
}

TEST(A15DeviceTest, StatsExposeBreakdown) {
  const int n = 10000;
  std::vector<float> x(n, 1.0f), y(n, 1.0f);
  kir::Program p = SaxpyKernel();
  CortexA15Device device;
  kir::LaunchConfig config;
  auto result = device.Run(p, config, Bind(x, y, n, 1.0f), 1);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->stats.Has("cpu.core0.issue_cycles"));
  EXPECT_TRUE(result->stats.Has("cpu.seconds"));
  EXPECT_GT(result->stats.Get("cpu.core0.issue_cycles"), 0.0);
}

}  // namespace
}  // namespace malisim::cpu
