// Cost-model invariants for the Cortex-A15 device, mirroring the Mali set.
#include <vector>

#include <gtest/gtest.h>

#include "cpu/a15_device.h"
#include "kir/builder.h"

namespace malisim::cpu {
namespace {

using kir::ArgKind;
using kir::KernelBuilder;
using kir::ScalarType;
using kir::Val;

kir::Program ChunkedKernel() {
  KernelBuilder kb("work");
  auto in = kb.ArgBuffer("in", ScalarType::kF32, ArgKind::kBufferRO);
  auto out = kb.ArgBuffer("out", ScalarType::kF32, ArgKind::kBufferWO);
  Val n = kb.ArgScalar("n", ScalarType::kI32);
  Val gid = kb.GlobalId(0);
  Val threads = kb.GlobalSize(0);
  Val chunk = kb.Binary(kir::Opcode::kIDiv, n, threads);
  Val start = kb.Binary(kir::Opcode::kMul, gid, chunk);
  Val end = kb.Binary(kir::Opcode::kAdd, start, chunk);
  kb.For("i", start, end, 1, [&](Val i) {
    Val x = kb.Load(in, i);
    kb.Store(out, i, kb.Fma(x, x, kb.Sqrt(kb.Abs(x) + 1.0)));
  });
  return *kb.Build();
}

double TimeWith(const A15TimingParams& timing, int threads,
                std::uint64_t n = 1 << 15) {
  const kir::Program p = ChunkedKernel();
  std::vector<float> in(n, 1.0f), out(n, 0.0f);
  CortexA15Device device(timing);
  kir::LaunchConfig config;
  config.global_size = {static_cast<std::uint64_t>(threads), 1, 1};
  kir::Bindings b;
  b.buffers = {{reinterpret_cast<std::byte*>(in.data()), 0x100000, n * 4},
               {reinterpret_cast<std::byte*>(out.data()), 0x900000, n * 4}};
  b.scalars = {kir::ScalarValue::I32V(static_cast<std::int32_t>(n))};
  auto run = device.Run(p, config, std::move(b), threads);
  EXPECT_TRUE(run.ok());
  return run->seconds;
}

TEST(CpuInvariantTest, HigherClockIsFaster) {
  A15TimingParams slow, fast;
  fast.clock_hz = slow.clock_hz * 2;
  EXPECT_LT(TimeWith(fast, 1), TimeWith(slow, 1));
}

TEST(CpuInvariantTest, TwoThreadsBetweenOneAndTwoTimesFaster) {
  const double serial = TimeWith(A15TimingParams(), 1);
  const double omp = TimeWith(A15TimingParams(), 2);
  EXPECT_LT(omp, serial);
  EXPECT_GT(omp, serial / 2.001);
}

TEST(CpuInvariantTest, CheaperSpecialsFaster) {
  A15TimingParams cheap, expensive;
  cheap.cycles_special_f32 = 4;
  expensive.cycles_special_f32 = 60;
  EXPECT_LT(TimeWith(cheap, 1), TimeWith(expensive, 1));
}

TEST(CpuInvariantTest, MoreStreamBandwidthNeverSlower) {
  A15TimingParams narrow, wide;
  narrow.per_core_stream_bw = 0.5e9;
  wide.per_core_stream_bw = 8e9;
  EXPECT_LE(TimeWith(wide, 1), TimeWith(narrow, 1));
}

TEST(CpuInvariantTest, PerfectOmpEfficiencyBeatsDefault) {
  A15TimingParams perfect;
  perfect.omp_parallel_efficiency = 1.0;
  perfect.omp_region_overhead_sec = 0.0;
  EXPECT_LT(TimeWith(perfect, 2), TimeWith(A15TimingParams(), 2));
}

TEST(CpuInvariantTest, TimeScalesWithWork) {
  const double t1 = TimeWith(A15TimingParams(), 1, 1 << 14);
  const double t2 = TimeWith(A15TimingParams(), 1, 1 << 16);
  EXPECT_NEAR(t2 / t1, 4.0, 1.0);
}

}  // namespace
}  // namespace malisim::cpu
