// Tests for the hetero backend behind the tinycl Context: device info,
// backend-annotated errors, ratio wiring, and functional correctness of
// co-executed kernels through the full runtime path.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "kir/builder.h"
#include "ocl/cl_error.h"
#include "ocl/runtime.h"

namespace malisim::ocl {
namespace {

using kir::ArgKind;
using kir::KernelBuilder;
using kir::ScalarType;
using kir::Val;

kir::Program SquareKernel() {
  KernelBuilder kb("square");
  auto buf = kb.ArgBuffer("buf", ScalarType::kF32, ArgKind::kBufferRW);
  Val gid = kb.GlobalId(0);
  Val v = kb.Load(buf, gid);
  kb.Store(buf, gid, v * v);
  return *kb.Build();
}

std::shared_ptr<Buffer> FilledBuffer(Context& ctx, std::uint64_t n, float v) {
  auto buf = *ctx.CreateBuffer(kMemReadWrite | kMemAllocHostPtr, n * 4);
  void* mapped = *ctx.queue().MapBuffer(*buf);
  for (std::uint64_t i = 0; i < n; ++i) static_cast<float*>(mapped)[i] = v;
  EXPECT_TRUE(ctx.queue().UnmapBuffer(*buf, mapped).ok());
  return buf;
}

StatusOr<Event> RunSquare(Context& ctx, std::shared_ptr<Buffer> buf,
                          std::uint64_t n) {
  std::vector<kir::Program> kernels;
  kernels.push_back(SquareKernel());
  auto prog = ctx.CreateProgram(std::move(kernels));
  EXPECT_TRUE(prog->Build().ok()) << prog->build_log();
  auto kernel = *ctx.CreateKernel(prog, "square");
  EXPECT_TRUE(kernel->SetArgBuffer(0, buf).ok());
  const std::uint64_t global[1] = {n};
  return ctx.queue().EnqueueNDRange(*kernel, 1, global, nullptr);
}

TEST(HeteroContextTest, DeviceInfoMergesBothBackends) {
  Context ctx(DeviceType::kHetero);
  EXPECT_EQ(ctx.device_type(), DeviceType::kHetero);
  // 4 Mali cores + 2 A15 cores.
  EXPECT_EQ(ctx.device_info().compute_units, 6u);
  EXPECT_NE(ctx.device_info().name.find("Hetero"), std::string::npos);
}

TEST(HeteroContextTest, KernelRunsCorrectlyAcrossTheSplit) {
  for (double ratio : {0.0, 0.3, 0.5, 1.0, -1.0}) {
    Context ctx(DeviceType::kHetero);
    ctx.set_hetero_ratio(ratio);
    const std::uint64_t n = 4096;
    auto buf = FilledBuffer(ctx, n, 3.0f);
    auto event = RunSquare(ctx, buf, n);
    ASSERT_TRUE(event.ok()) << event.status().ToString();
    EXPECT_GT(event->seconds, 0.0);
    void* mapped = *ctx.queue().MapBuffer(*buf);
    for (std::uint64_t i = 0; i < n; ++i) {
      ASSERT_FLOAT_EQ(static_cast<float*>(mapped)[i], 9.0f)
          << "ratio " << ratio << " item " << i;
    }
    EXPECT_TRUE(ctx.queue().UnmapBuffer(*buf, mapped).ok());
  }
}

TEST(HeteroContextTest, ReplayIsBitIdentical) {
  const auto run_once = [] {
    Context ctx(DeviceType::kHetero);
    ctx.set_hetero_ratio(0.5);
    const std::uint64_t n = 4096;
    auto buf = FilledBuffer(ctx, n, 3.0f);
    auto event = RunSquare(ctx, buf, n);
    EXPECT_TRUE(event.ok()) << event.status().ToString();
    return event.ok() ? event->seconds : -1.0;
  };
  const double first = run_once();
  for (int i = 0; i < 3; ++i) EXPECT_EQ(run_once(), first);
}

// Many simultaneously-live f64x8 vectors: builds fine (as on the real
// driver) but any Mali enqueue fails with CL_OUT_OF_RESOURCES.
kir::Program RegisterHungryKernel() {
  KernelBuilder kb("hungry");
  auto in = kb.ArgBuffer("in", ScalarType::kF64, ArgKind::kBufferRO);
  auto out = kb.ArgBuffer("out", ScalarType::kF64, ArgKind::kBufferWO);
  Val zero = kb.ConstI(kir::I32(), 0);
  std::vector<Val> live;
  for (int i = 0; i < 16; ++i) {
    live.push_back(kb.Load(in, zero, i * 8, 8));
  }
  Val sum = live[0];
  for (int i = 1; i < 16; ++i) sum = sum + live[i];
  kb.Store(out, zero, sum);
  return *kb.Build();
}

StatusOr<Event> EnqueueHungry(Context& ctx) {
  auto in = *ctx.CreateBuffer(kMemReadWrite, 256 * 8);
  auto out = *ctx.CreateBuffer(kMemReadWrite, 256 * 8);
  std::vector<kir::Program> kernels;
  kernels.push_back(RegisterHungryKernel());
  auto prog = ctx.CreateProgram(std::move(kernels));
  EXPECT_TRUE(prog->Build().ok()) << prog->build_log();
  auto kernel = *ctx.CreateKernel(prog, "hungry");
  EXPECT_TRUE(kernel->SetArgBuffer(0, in).ok());
  EXPECT_TRUE(kernel->SetArgBuffer(1, out).ok());
  const std::uint64_t global[1] = {64};
  const std::uint64_t local[1] = {64};
  return ctx.queue().EnqueueNDRange(*kernel, 1, global, local);
}

TEST(HeteroContextTest, BackendFailuresNameTheBackend) {
  // The register-hungry kernel's GPU half trips CL_OUT_OF_RESOURCES inside
  // the Mali backend; through the hetero context the status must round-trip
  // the hetero backend tag.
  Context ctx(DeviceType::kHetero);
  ctx.set_hetero_ratio(0.5);
  auto event = EnqueueHungry(ctx);
  ASSERT_FALSE(event.ok());
  const auto backend = BackendFromStatus(event.status());
  ASSERT_TRUE(backend.has_value()) << event.status().ToString();
  EXPECT_EQ(*backend, sim::BackendKind::kHetero);
  EXPECT_NE(event.status().message().find("CL_OUT_OF_RESOURCES"),
            std::string_view::npos)
      << event.status().ToString();
}

TEST(HeteroContextTest, DefaultMaliErrorsStayVerbatim) {
  // The default backend's failures must NOT grow a backend prefix — golden
  // CSVs embed those strings verbatim.
  Context ctx;
  auto event = EnqueueHungry(ctx);
  ASSERT_FALSE(event.ok());
  EXPECT_FALSE(BackendFromStatus(event.status()).has_value())
      << event.status().ToString();
  EXPECT_NE(event.status().message().find("CL_OUT_OF_RESOURCES"),
            std::string_view::npos)
      << event.status().ToString();
}

}  // namespace
}  // namespace malisim::ocl
