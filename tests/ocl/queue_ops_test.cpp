// Tests for the device-side queue operations (copy / fill).
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "ocl/runtime.h"

namespace malisim::ocl {
namespace {

TEST(CopyBufferTest, CopiesBytes) {
  Context ctx;
  auto src = *ctx.CreateBuffer(kMemReadWrite, 64);
  auto dst = *ctx.CreateBuffer(kMemReadWrite, 64);
  std::vector<float> data = {1, 2, 3, 4};
  ASSERT_TRUE(ctx.queue().EnqueueWriteBuffer(*src, data.data(), 16).ok());
  auto event = ctx.queue().EnqueueCopyBuffer(*src, *dst, 16);
  ASSERT_TRUE(event.ok());
  EXPECT_GT(event->seconds, 0.0);
  std::vector<float> back(4);
  ASSERT_TRUE(ctx.queue().EnqueueReadBuffer(*dst, back.data(), 16).ok());
  EXPECT_EQ(back, data);
}

TEST(CopyBufferTest, OffsetsRespected) {
  Context ctx;
  auto src = *ctx.CreateBuffer(kMemReadWrite, 64);
  auto dst = *ctx.CreateBuffer(kMemReadWrite, 64);
  const float v = 7.5f;
  ASSERT_TRUE(ctx.queue().EnqueueWriteBuffer(*src, &v, 4, 8).ok());
  ASSERT_TRUE(ctx.queue().EnqueueCopyBuffer(*src, *dst, 4, 8, 32).ok());
  float back = 0;
  ASSERT_TRUE(ctx.queue().EnqueueReadBuffer(*dst, &back, 4, 32).ok());
  EXPECT_EQ(back, 7.5f);
}

TEST(CopyBufferTest, RangeValidation) {
  Context ctx;
  auto src = *ctx.CreateBuffer(kMemReadWrite, 64);
  auto dst = *ctx.CreateBuffer(kMemReadWrite, 32);
  EXPECT_FALSE(ctx.queue().EnqueueCopyBuffer(*src, *dst, 64).ok());
  EXPECT_FALSE(ctx.queue().EnqueueCopyBuffer(*src, *dst, 32, 48, 0).ok());
}

TEST(CopyBufferTest, DeviceCopyCheaperThanHostRoundTrip) {
  Context ctx;
  const std::uint64_t bytes = 1 << 22;
  auto src = *ctx.CreateBuffer(kMemReadWrite, bytes);
  auto dst = *ctx.CreateBuffer(kMemReadWrite, bytes);
  auto device_copy = ctx.queue().EnqueueCopyBuffer(*src, *dst, bytes);
  ASSERT_TRUE(device_copy.ok());
  std::vector<std::byte> staging(bytes);
  auto read = ctx.queue().EnqueueReadBuffer(*src, staging.data(), bytes);
  auto write = ctx.queue().EnqueueWriteBuffer(*dst, staging.data(), bytes);
  ASSERT_TRUE(read.ok() && write.ok());
  EXPECT_LT(device_copy->seconds, read->seconds + write->seconds);
}

TEST(FillBufferTest, FillsPattern) {
  Context ctx;
  auto buf = *ctx.CreateBuffer(kMemReadWrite, 64);
  const float pattern = 2.5f;
  auto event = ctx.queue().EnqueueFillBuffer(*buf, &pattern, 4, 64);
  ASSERT_TRUE(event.ok());
  std::vector<float> back(16);
  ASSERT_TRUE(ctx.queue().EnqueueReadBuffer(*buf, back.data(), 64).ok());
  for (float v : back) EXPECT_EQ(v, 2.5f);
}

TEST(FillBufferTest, MultiBytePatternAndOffset) {
  Context ctx;
  auto buf = *ctx.CreateBuffer(kMemReadWrite, 64);
  const float zero = 0.0f;
  ASSERT_TRUE(ctx.queue().EnqueueFillBuffer(*buf, &zero, 4, 64).ok());
  const double pattern = 1.25;
  ASSERT_TRUE(ctx.queue().EnqueueFillBuffer(*buf, &pattern, 8, 16, 32).ok());
  std::vector<double> back(8);
  ASSERT_TRUE(ctx.queue().EnqueueReadBuffer(*buf, back.data(), 64).ok());
  EXPECT_EQ(back[4], 1.25);
  EXPECT_EQ(back[5], 1.25);
  EXPECT_EQ(back[0], 0.0);
}

TEST(FillBufferTest, Validation) {
  Context ctx;
  auto buf = *ctx.CreateBuffer(kMemReadWrite, 64);
  const float pattern = 1.0f;
  EXPECT_FALSE(ctx.queue().EnqueueFillBuffer(*buf, nullptr, 4, 64).ok());
  EXPECT_FALSE(ctx.queue().EnqueueFillBuffer(*buf, &pattern, 4, 66).ok());
  EXPECT_FALSE(ctx.queue().EnqueueFillBuffer(*buf, &pattern, 3, 64).ok());
  EXPECT_FALSE(ctx.queue().EnqueueFillBuffer(*buf, &pattern, 4, 64, 32).ok());
}

}  // namespace
}  // namespace malisim::ocl
