// Tests for the tinycl CPU device (CL_DEVICE_TYPE_CPU analogue): kernels
// run across both Cortex-A15 cores, without the Mali compiler's erratum or
// register budget.
#include <vector>

#include <gtest/gtest.h>

#include "kir/builder.h"
#include "ocl/runtime.h"

namespace malisim::ocl {
namespace {

using kir::ArgKind;
using kir::KernelBuilder;
using kir::ScalarType;
using kir::Val;

kir::Program SquareKernel(ScalarType ft) {
  KernelBuilder kb("square");
  auto buf = kb.ArgBuffer("buf", ft, ArgKind::kBufferRW);
  Val gid = kb.GlobalId(0);
  Val v = kb.Load(buf, gid);
  kb.Store(buf, gid, v * v);
  return *kb.Build();
}

kir::Program ErratumShape() {
  KernelBuilder kb("metropolis_dp");
  auto buf = kb.ArgBuffer("buf", ScalarType::kF64, ArgKind::kBufferRW);
  Val n = kb.ConstI(kir::I32(), 8);
  kb.For("t", kb.ConstI(kir::I32(), 0), n, 1, [&](Val t) {
    Val p = kb.Exp(kb.Load(buf, t));
    kb.If(kb.CmpLt(t, kb.ConstI(kir::I32(), 4)), [&] { kb.Store(buf, t, p); });
  });
  return *kb.Build();
}

std::shared_ptr<Buffer> FilledBuffer(Context& ctx, std::uint64_t n, float v) {
  auto buf = *ctx.CreateBuffer(kMemReadWrite | kMemAllocHostPtr, n * 4);
  void* mapped = *ctx.queue().MapBuffer(*buf);
  for (std::uint64_t i = 0; i < n; ++i) static_cast<float*>(mapped)[i] = v;
  EXPECT_TRUE(ctx.queue().UnmapBuffer(*buf, mapped).ok());
  return buf;
}

TEST(CpuDeviceContextTest, DeviceInfo) {
  Context gpu;
  EXPECT_EQ(gpu.device_type(), DeviceType::kMali);
  EXPECT_EQ(gpu.device_info().compute_units, 4u);
  EXPECT_TRUE(gpu.device_info().fp64);

  Context cpu(DeviceType::kA15);
  EXPECT_EQ(cpu.device_type(), DeviceType::kA15);
  EXPECT_EQ(cpu.device_info().compute_units, 2u);
  EXPECT_EQ(cpu.device_info().name, Context::kCpuDeviceName);
}

TEST(CpuDeviceContextTest, KernelRunsCorrectlyOnCpu) {
  Context ctx(DeviceType::kA15);
  const std::uint64_t n = 1024;
  auto buf = FilledBuffer(ctx, n, 3.0f);
  std::vector<kir::Program> kernels;
  kernels.push_back(SquareKernel(ScalarType::kF32));
  auto prog = ctx.CreateProgram(std::move(kernels));
  ASSERT_TRUE(prog->Build().ok()) << prog->build_log();
  auto kernel = *ctx.CreateKernel(prog, "square");
  ASSERT_TRUE(kernel->SetArgBuffer(0, buf).ok());
  const std::uint64_t global[1] = {n};
  auto event = ctx.queue().EnqueueNDRange(*kernel, 1, global, nullptr);
  ASSERT_TRUE(event.ok()) << event.status().ToString();
  EXPECT_GT(event->seconds, 0.0);
  EXPECT_FALSE(event->profile.gpu_on);
  EXPECT_GT(event->profile.cpu_busy[0], 0.0);
  EXPECT_GT(event->profile.cpu_busy[1], 0.0);

  void* mapped = *ctx.queue().MapBuffer(*buf);
  for (std::uint64_t i = 0; i < n; ++i) {
    EXPECT_FLOAT_EQ(static_cast<float*>(mapped)[i], 9.0f);
  }
  ASSERT_TRUE(ctx.queue().UnmapBuffer(*buf, mapped).ok());
}

TEST(CpuDeviceContextTest, Fp64ErratumShapeBuildsOnCpu) {
  // The paper's amcd-DP failure is a Mali driver erratum; the same kernel
  // compiles and runs fine on the CPU device.
  Context cpu(DeviceType::kA15);
  std::vector<kir::Program> kernels;
  kernels.push_back(ErratumShape());
  auto prog = cpu.CreateProgram(std::move(kernels));
  EXPECT_TRUE(prog->Build().ok()) << prog->build_log();

  Context gpu;
  std::vector<kir::Program> kernels2;
  kernels2.push_back(ErratumShape());
  auto gpu_prog = gpu.CreateProgram(std::move(kernels2));
  EXPECT_FALSE(gpu_prog->Build().ok());
}

TEST(CpuDeviceContextTest, RegisterHungryKernelRunsOnCpu) {
  // No shader-core register file on the CPU path: heavy kernels launch.
  KernelBuilder kb("hungry");
  auto in = kb.ArgBuffer("in", ScalarType::kF64, ArgKind::kBufferRO);
  auto out = kb.ArgBuffer("out", ScalarType::kF64, ArgKind::kBufferWO);
  Val zero = kb.ConstI(kir::I32(), 0);
  std::vector<Val> live;
  for (int i = 0; i < 16; ++i) live.push_back(kb.Load(in, zero, i * 8, 8));
  Val sum = live[0];
  for (int i = 1; i < 16; ++i) sum = sum + live[static_cast<std::size_t>(i)];
  kb.Store(out, zero, sum);

  Context ctx(DeviceType::kA15);
  auto in_buf = *ctx.CreateBuffer(kMemReadWrite | kMemAllocHostPtr, 1024 * 8);
  auto out_buf = *ctx.CreateBuffer(kMemReadWrite | kMemAllocHostPtr, 64 * 8);
  std::vector<kir::Program> kernels;
  kernels.push_back(*kb.Build());
  auto prog = ctx.CreateProgram(std::move(kernels));
  ASSERT_TRUE(prog->Build().ok());
  auto kernel = *ctx.CreateKernel(prog, "hungry");
  ASSERT_TRUE(kernel->SetArgBuffer(0, in_buf).ok());
  ASSERT_TRUE(kernel->SetArgBuffer(1, out_buf).ok());
  const std::uint64_t global[1] = {1};
  EXPECT_TRUE(ctx.queue().EnqueueNDRange(*kernel, 1, global, nullptr).ok());
}

TEST(CpuDeviceContextTest, GpuBeatsCpuOnParallelComputeKernel) {
  // A compute-dense data-parallel kernel: the 4-core GPU should win over
  // the 2-core CPU — the paper's core premise.
  auto build = [] {
    KernelBuilder kb("poly");
    auto buf = kb.ArgBuffer("buf", ScalarType::kF32, ArgKind::kBufferRW);
    Val gid = kb.GlobalId(0);
    Val x = kb.Load(buf, gid);
    Val acc = kb.Var(kir::F32(), "acc");
    kb.Assign(acc, x);
    kb.For("i", kb.ConstI(kir::I32(), 0), kb.ConstI(kir::I32(), 64), 1,
           [&](Val) { kb.Assign(acc, kb.Fma(acc, x, x)); });
    kb.Store(buf, gid, acc);
    return *kb.Build();
  };

  auto time_on = [&](Context& ctx) {
    const std::uint64_t n = 1 << 16;
    auto buf = FilledBuffer(ctx, n, 0.5f);
    std::vector<kir::Program> kernels;
    kernels.push_back(build());
    auto prog = ctx.CreateProgram(std::move(kernels));
    EXPECT_TRUE(prog->Build().ok());
    auto kernel = *ctx.CreateKernel(prog, "poly");
    EXPECT_TRUE(kernel->SetArgBuffer(0, buf).ok());
    const std::uint64_t global[1] = {n};
    const std::uint64_t local[1] = {128};
    auto event = ctx.queue().EnqueueNDRange(*kernel, 1, global, local);
    EXPECT_TRUE(event.ok());
    return event->seconds;
  };

  Context gpu;
  Context cpu(DeviceType::kA15);
  EXPECT_LT(time_on(gpu), time_on(cpu));
}

}  // namespace
}  // namespace malisim::ocl
