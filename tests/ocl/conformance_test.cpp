// Cross-device conformance: the same kernel, same inputs, run through
// tinycl on the GPU device and on the CPU device, must produce identical
// results — the portability-of-correctness half of OpenCL's promise (the
// paper's §III is about the *performance* half not porting).
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "kir/builder.h"
#include "ocl/runtime.h"

namespace malisim::ocl {
namespace {

using kir::ArgKind;
using kir::KernelBuilder;
using kir::ScalarType;
using kir::Val;

/// Runs `source` with `items` work-items over `elems` f32 elements
/// initialized to i*0.25 and returns the buffer contents afterwards.
std::vector<float> RunOn(DeviceType type, const kir::Program& source,
                         std::uint64_t elems, std::uint64_t items) {
  Context ctx(type);
  auto buf = *ctx.CreateBuffer(kMemReadWrite | kMemAllocHostPtr, elems * 4);
  {
    void* mapped = *ctx.queue().MapBuffer(*buf);
    for (std::uint64_t i = 0; i < elems; ++i) {
      static_cast<float*>(mapped)[i] = 0.25f * static_cast<float>(i);
    }
    EXPECT_TRUE(ctx.queue().UnmapBuffer(*buf, mapped).ok());
  }
  std::vector<kir::Program> kernels;
  kernels.push_back(source);
  auto prog = ctx.CreateProgram(std::move(kernels));
  EXPECT_TRUE(prog->Build().ok()) << prog->build_log();
  auto kernel = *ctx.CreateKernel(prog, source.name);
  EXPECT_TRUE(kernel->SetArgBuffer(0, buf).ok());
  const std::uint64_t global[1] = {items};
  const std::uint64_t local[1] = {16};
  auto event = ctx.queue().EnqueueNDRange(*kernel, 1, global, local);
  EXPECT_TRUE(event.ok()) << event.status().ToString();

  std::vector<float> result(elems);
  void* mapped = *ctx.queue().MapBuffer(*buf);
  std::memcpy(result.data(), mapped, elems * 4);
  EXPECT_TRUE(ctx.queue().UnmapBuffer(*buf, mapped).ok());
  return result;
}

kir::Program ArithmeticKernel() {
  KernelBuilder kb("conf_arith");
  auto buf = kb.ArgBuffer("buf", ScalarType::kF32, ArgKind::kBufferRW);
  Val gid = kb.GlobalId(0);
  Val x = kb.Load(buf, gid);
  Val y = kb.Rsqrt(kb.Abs(x) + 1.0);
  Val z = kb.Fma(x, y, kb.Sin(y));
  kb.Store(buf, gid, kb.Min(z, kb.Exp(-y)));
  return *kb.Build();
}

kir::Program VectorKernel() {
  KernelBuilder kb("conf_vec");
  auto buf = kb.ArgBuffer("buf", ScalarType::kF32, ArgKind::kBufferRW);
  Val base = kb.Binary(kir::Opcode::kMul, kb.GlobalId(0), kb.ConstI(kir::I32(), 4));
  Val v = kb.Load(buf, base, 0, 4);
  Val w = kb.Slide(v, v, 1);
  kb.Store(buf, base, kb.Fma(v, w, kb.Splat(kb.VSum(v), 4)));
  return *kb.Build();
}

kir::Program LoopBranchKernel() {
  KernelBuilder kb("conf_loop");
  auto buf = kb.ArgBuffer("buf", ScalarType::kF32, ArgKind::kBufferRW);
  Val gid = kb.GlobalId(0);
  Val acc = kb.Var(kir::F32(), "acc");
  kb.Assign(acc, kb.Load(buf, gid));
  kb.For("i", kb.ConstI(kir::I32(), 0), kb.ConstI(kir::I32(), 8), 1, [&](Val i) {
    Val even = kb.CmpEq(kb.Binary(kir::Opcode::kIRem, i, kb.ConstI(kir::I32(), 2)),
                        kb.ConstI(kir::I32(), 0));
    kb.If(even, [&] { kb.Assign(acc, acc * 1.5); },
          [&] { kb.Assign(acc, acc - 0.25); });
  });
  kb.Store(buf, gid, acc);
  return *kb.Build();
}

class ConformanceTest : public ::testing::TestWithParam<int> {};

TEST_P(ConformanceTest, CpuAndGpuBitIdentical) {
  kir::Program program = [&] {
    switch (GetParam()) {
      case 0:
        return ArithmeticKernel();
      case 1:
        return VectorKernel();
      default:
        return LoopBranchKernel();
    }
  }();
  // The interpreter is the shared functional substrate, so results must be
  // bit-identical — any divergence is a bindings/launch bug in one device
  // path.
  const bool vector_kernel = GetParam() == 1;
  const std::uint64_t items = 64;
  const std::uint64_t elems = vector_kernel ? items * 4 : items;
  const std::vector<float> gpu = RunOn(DeviceType::kMali, program, elems, items);
  const std::vector<float> cpu = RunOn(DeviceType::kA15, program, elems, items);
  EXPECT_EQ(gpu, cpu);
}

INSTANTIATE_TEST_SUITE_P(Kernels, ConformanceTest, ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace malisim::ocl
