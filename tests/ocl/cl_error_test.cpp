// Exhaustive round-trip of the tinycl error-code naming: every ClError
// maps to a unique, non-empty CL_* string and back.
#include "ocl/cl_error.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

namespace malisim::ocl {
namespace {

TEST(ClErrorTest, EveryErrorHasAUniqueClStyleNameThatRoundTrips) {
  std::set<std::string> names;
  for (const ClError err : kAllClErrors) {
    const std::string name(ClErrorName(err));
    ASSERT_FALSE(name.empty()) << static_cast<int>(err);
    EXPECT_EQ(name.rfind("CL_", 0), 0u)
        << name << " is not an OpenCL-style CL_* name";
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
    ClError back;
    ASSERT_TRUE(ClErrorFromName(name, &back)) << name;
    EXPECT_EQ(back, err) << name;
  }
  EXPECT_EQ(names.size(), std::size(kAllClErrors));
}

TEST(ClErrorTest, FromNameRejectsUnknown) {
  ClError err;
  EXPECT_FALSE(ClErrorFromName("CL_PEBKAC", &err));
  EXPECT_FALSE(ClErrorFromName("", &err));
  EXPECT_FALSE(ClErrorFromName("cl_success", &err));
}

TEST(ClErrorTest, StatusMappingCoversThePaperErrors) {
  EXPECT_EQ(ClErrorFromStatus(ResourceExhaustedError("regs")),
            ClError::kOutOfResources);
  EXPECT_EQ(ClErrorFromStatus(BuildFailureError("ice")),
            ClError::kBuildProgramFailure);
  EXPECT_EQ(ClErrorFromStatus(AllocationFailureError("oom")),
            ClError::kMemObjectAllocationFailure);
  // Transients and the watchdog surface as CL_OUT_OF_RESOURCES, the
  // closest thing a real driver reports for those conditions.
  EXPECT_EQ(ClErrorFromStatus(UnavailableError("hiccup")),
            ClError::kOutOfResources);
  EXPECT_EQ(ClErrorFromStatus(DeadlineExceededError("slow")),
            ClError::kOutOfResources);
  // Admission-control shed (malisim-serve backpressure) is host-side
  // overload; a CL host would see the driver's catch-all resource error.
  EXPECT_EQ(ClErrorFromStatus(OverloadedError("queue full")),
            ClError::kOutOfResources);
  EXPECT_EQ(ClErrorFromStatus(Status::Ok()), ClError::kSuccess);
}

}  // namespace
}  // namespace malisim::ocl
