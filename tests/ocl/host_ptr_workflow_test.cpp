// End-to-end test of the paper's §III-A "bad" host-code style: malloc
// memory wrapped with CL_MEM_USE_HOST_PTR, moved with explicit
// Write/ReadBuffer copies around the kernel — functionally correct but
// paying for every copy (ablation_memory_mapping quantifies the cost; this
// test pins the semantics).
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "kir/builder.h"
#include "ocl/runtime.h"

namespace malisim::ocl {
namespace {

using kir::ArgKind;
using kir::KernelBuilder;
using kir::ScalarType;
using kir::Val;

kir::Program NegateKernel() {
  KernelBuilder kb("negate");
  auto in = kb.ArgBuffer("in", ScalarType::kF32, ArgKind::kBufferRO);
  auto out = kb.ArgBuffer("out", ScalarType::kF32, ArgKind::kBufferWO);
  Val gid = kb.GlobalId(0);
  kb.Store(out, gid, -kb.Load(in, gid));
  return *kb.Build();
}

TEST(HostPtrWorkflowTest, CopyStyleRoundTrip) {
  Context ctx;
  const std::uint64_t n = 256;
  // "Application" allocations, as plain host memory.
  std::vector<float> app_in(n), app_out(n, 0.0f);
  for (std::uint64_t i = 0; i < n; ++i) {
    app_in[i] = static_cast<float>(i) - 100.0f;
  }

  auto in = *ctx.CreateBuffer(kMemReadOnly | kMemUseHostPtr, n * 4,
                              app_in.data());
  auto out = *ctx.CreateBuffer(kMemWriteOnly | kMemUseHostPtr, n * 4,
                               app_out.data());

  // The app mutates its allocation after buffer creation: without an
  // explicit WriteBuffer the device shadow would be stale.
  app_in[0] = 999.0f;
  auto write = ctx.queue().EnqueueWriteBuffer(*in, app_in.data(), n * 4);
  ASSERT_TRUE(write.ok());
  EXPECT_GT(write->profile.dram_bytes, 0u);  // a real copy was paid for

  std::vector<kir::Program> kernels;
  kernels.push_back(NegateKernel());
  auto prog = ctx.CreateProgram(std::move(kernels));
  ASSERT_TRUE(prog->Build().ok());
  auto kernel = *ctx.CreateKernel(prog, "negate");
  ASSERT_TRUE(kernel->SetArgBuffer(0, in).ok());
  ASSERT_TRUE(kernel->SetArgBuffer(1, out).ok());
  const std::uint64_t global[1] = {n};
  ASSERT_TRUE(ctx.queue().EnqueueNDRange(*kernel, 1, global, nullptr).ok());

  // Results are NOT visible in the app allocation until ReadBuffer.
  EXPECT_EQ(app_out[0], 0.0f);
  ASSERT_TRUE(ctx.queue().EnqueueReadBuffer(*out, app_out.data(), n * 4).ok());
  EXPECT_EQ(app_out[0], -999.0f);
  for (std::uint64_t i = 1; i < n; ++i) {
    EXPECT_EQ(app_out[i], -(static_cast<float>(i) - 100.0f)) << i;
  }
}

TEST(HostPtrWorkflowTest, StaleShadowWithoutWrite) {
  // The §III-A pitfall in isolation: skipping the WriteBuffer leaves the
  // kernel reading the creation-time snapshot.
  Context ctx;
  std::vector<float> app(4, 1.0f);
  auto buf = *ctx.CreateBuffer(kMemReadOnly | kMemUseHostPtr, 16, app.data());
  app[0] = 7.0f;  // not propagated
  float shadow0;
  std::memcpy(&shadow0, buf->device_storage(), 4);
  EXPECT_EQ(shadow0, 1.0f);
}

}  // namespace
}  // namespace malisim::ocl
