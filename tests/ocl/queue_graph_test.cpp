// Tests for the command queue's event-graph scheduler: in-order chaining
// reproduces the eager queue's modelled total bit-for-bit, async mode
// overlaps independent commands, barriers join every outstanding node, and
// a randomized fuzz asserts the async scheduler equals the eager queue on
// every dependency-linearizable graph.
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "kir/builder.h"
#include "ocl/runtime.h"

namespace malisim::ocl {
namespace {

using kir::ArgKind;
using kir::KernelBuilder;
using kir::ScalarType;
using kir::Val;

kir::Program SquareKernel() {
  KernelBuilder kb("square");
  auto buf = kb.ArgBuffer("buf", ScalarType::kF32, ArgKind::kBufferRW);
  Val gid = kb.GlobalId(0);
  Val v = kb.Load(buf, gid);
  kb.Store(buf, gid, v * v);
  return *kb.Build();
}

std::shared_ptr<Kernel> BuildSquare(Context& ctx) {
  std::vector<kir::Program> kernels;
  kernels.push_back(SquareKernel());
  auto prog = ctx.CreateProgram(std::move(kernels));
  EXPECT_TRUE(prog->Build().ok()) << prog->build_log();
  return *ctx.CreateKernel(prog, "square");
}

TEST(QueueGraphTest, EveryEnqueueAddsAGraphNode) {
  Context ctx;
  const std::uint64_t n = 1024;
  auto buf = *ctx.CreateBuffer(kMemReadWrite, n * 4);
  std::vector<float> host(n, 2.0f);
  ASSERT_TRUE(ctx.queue().EnqueueWriteBuffer(*buf, host.data(), n * 4).ok());
  auto kernel = BuildSquare(ctx);
  ASSERT_TRUE(kernel->SetArgBuffer(0, buf).ok());
  const std::uint64_t global[1] = {n};
  ASSERT_TRUE(ctx.queue().EnqueueNDRange(*kernel, 1, global, nullptr).ok());
  ASSERT_TRUE(ctx.queue().EnqueueReadBuffer(*buf, host.data(), n * 4).ok());
  ASSERT_EQ(ctx.queue().graph().size(), 3u);
  EXPECT_EQ(ctx.queue().graph().nodes()[0].kind, sim::CmdKind::kWrite);
  EXPECT_EQ(ctx.queue().graph().nodes()[1].kind, sim::CmdKind::kKernel);
  EXPECT_EQ(ctx.queue().graph().nodes()[1].label, "square");
  EXPECT_EQ(ctx.queue().graph().nodes()[2].kind, sim::CmdKind::kRead);
}

TEST(QueueGraphTest, InOrderScheduleMatchesEagerTotalBitForBit) {
  Context ctx;
  const std::uint64_t n = 4096;
  auto a = *ctx.CreateBuffer(kMemReadWrite, n * 4);
  auto b = *ctx.CreateBuffer(kMemReadWrite, n * 4);
  std::vector<float> host(n, 1.5f);
  ASSERT_TRUE(ctx.queue().EnqueueWriteBuffer(*a, host.data(), n * 4).ok());
  const float zero = 0.0f;
  ASSERT_TRUE(ctx.queue().EnqueueFillBuffer(*b, &zero, 4, n * 4).ok());
  ASSERT_TRUE(ctx.queue().EnqueueCopyBuffer(*a, *b, n * 4).ok());
  auto kernel = BuildSquare(ctx);
  ASSERT_TRUE(kernel->SetArgBuffer(0, b).ok());
  const std::uint64_t global[1] = {n};
  ASSERT_TRUE(ctx.queue().EnqueueNDRange(*kernel, 1, global, nullptr).ok());
  ASSERT_TRUE(ctx.queue().EnqueueReadBuffer(*b, host.data(), n * 4).ok());

  auto scheduled = ctx.queue().ScheduledSeconds();
  ASSERT_TRUE(scheduled.ok()) << scheduled.status().ToString();
  EXPECT_EQ(*scheduled, ctx.queue().total_seconds());  // exact FP equality
  EXPECT_GT(*scheduled, 0.0);
}

TEST(QueueGraphTest, AsyncIndependentCommandsOverlap) {
  Context ctx;
  ctx.queue().set_async(true);
  const std::uint64_t n = 1 << 16;
  auto a = *ctx.CreateBuffer(kMemReadWrite, n * 4);
  auto b = *ctx.CreateBuffer(kMemReadWrite, n * 4);
  // Kernel on buffer a and a device-side fill of b: no dependency between
  // them, different lanes -> they overlap in modelled time.
  std::vector<float> host(n, 2.0f);
  auto w = ctx.queue().EnqueueWriteBuffer(*a, host.data(), n * 4);
  ASSERT_TRUE(w.ok());
  auto kernel = BuildSquare(ctx);
  ASSERT_TRUE(kernel->SetArgBuffer(0, a).ok());
  ctx.queue().SetWaitList({w->node});
  const std::uint64_t global[1] = {n};
  auto k = ctx.queue().EnqueueNDRange(*kernel, 1, global, nullptr);
  ASSERT_TRUE(k.ok()) << k.status().ToString();
  const float zero = 0.0f;
  ASSERT_TRUE(ctx.queue().EnqueueFillBuffer(*b, &zero, 4, n * 4).ok());

  auto schedule = ctx.queue().Schedule();
  ASSERT_TRUE(schedule.ok());
  // Some overlap must exist: the makespan beats the eager serial sum but
  // cannot beat the critical path.
  EXPECT_LT(schedule->makespan_sec, schedule->serial_sec);
  EXPECT_GE(schedule->makespan_sec, schedule->critical_path_sec);
  EXPECT_EQ(ctx.queue().total_seconds(), schedule->serial_sec);
}

TEST(QueueGraphTest, BarrierJoinsAllOutstandingCommands) {
  Context ctx;
  ctx.queue().set_async(true);
  const std::uint64_t n = 1024;
  auto a = *ctx.CreateBuffer(kMemReadWrite, n * 4);
  auto b = *ctx.CreateBuffer(kMemReadWrite, n * 4);
  const float zero = 0.0f;
  ASSERT_TRUE(ctx.queue().EnqueueFillBuffer(*a, &zero, 4, n * 4).ok());
  ASSERT_TRUE(ctx.queue().EnqueueFillBuffer(*b, &zero, 4, n * 4).ok());
  const sim::EventId barrier = ctx.queue().EnqueueBarrier();
  const auto& nodes = ctx.queue().graph().nodes();
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_EQ(nodes[barrier].kind, sim::CmdKind::kBarrier);
  EXPECT_EQ(nodes[barrier].deps.size(), 2u);
  // A command after the barrier (no explicit wait list) starts after it.
  std::vector<float> host(n, 0.0f);
  auto r = ctx.queue().EnqueueReadBuffer(*a, host.data(), n * 4);
  ASSERT_TRUE(r.ok());
  auto schedule = ctx.queue().Schedule();
  ASSERT_TRUE(schedule.ok());
}

// Fuzz: random command sequences run through (a) the default in-order
// queue and (b) an async queue whose wait lists explicitly linearize the
// graph (each command depends on the previous one). Both must agree with
// the eager modelled total bit-for-bit — the async refactor is
// behavior-preserving on every dependency-linearizable graph.
TEST(QueueGraphTest, FuzzLinearizedAsyncMatchesEagerTotals) {
  std::mt19937 rng(0xC0FFEEu);
  std::uniform_int_distribution<int> cmd_dist(0, 3);
  std::uniform_int_distribution<int> size_shift(8, 14);

  for (int round = 0; round < 20; ++round) {
    // One command script per round, replayed identically on both queues.
    std::vector<int> script;
    const int len = 3 + static_cast<int>(rng() % 8);
    for (int i = 0; i < len; ++i) script.push_back(cmd_dist(rng));
    const std::uint64_t n = 1ull << size_shift(rng);

    const auto run_script = [&](Context& ctx, bool async) {
      auto& q = ctx.queue();
      q.set_async(async);
      auto a = *ctx.CreateBuffer(kMemReadWrite, n * 4);
      auto b = *ctx.CreateBuffer(kMemReadWrite, n * 4);
      auto kernel = BuildSquare(ctx);
      EXPECT_TRUE(kernel->SetArgBuffer(0, a).ok());
      std::vector<float> host(n, 1.25f);
      const std::uint64_t global[1] = {n};
      const float zero = 0.0f;
      for (int cmd : script) {
        if (async && q.last_event() != sim::kNullEvent) {
          q.SetWaitList({q.last_event()});  // explicit linearization
        }
        switch (cmd) {
          case 0:
            EXPECT_TRUE(
                q.EnqueueWriteBuffer(*a, host.data(), n * 4).ok());
            break;
          case 1:
            EXPECT_TRUE(q.EnqueueFillBuffer(*b, &zero, 4, n * 4).ok());
            break;
          case 2:
            EXPECT_TRUE(q.EnqueueCopyBuffer(*a, *b, n * 4).ok());
            break;
          default:
            EXPECT_TRUE(q.EnqueueNDRange(*kernel, 1, global, nullptr).ok());
            break;
        }
      }
      auto scheduled = q.ScheduledSeconds();
      EXPECT_TRUE(scheduled.ok()) << scheduled.status().ToString();
      return std::pair<double, double>(scheduled.ok() ? *scheduled : -1.0,
                                       q.total_seconds());
    };

    Context eager_ctx;
    const auto [eager_sched, eager_total] = run_script(eager_ctx, false);
    Context async_ctx;
    const auto [async_sched, async_total] = run_script(async_ctx, true);

    SCOPED_TRACE("round " + std::to_string(round));
    // Same script -> same eager totals on both contexts.
    EXPECT_EQ(eager_total, async_total);
    // In-order chaining reproduces the eager sum exactly...
    EXPECT_EQ(eager_sched, eager_total);
    // ...and so does the async scheduler on the linearized graph.
    EXPECT_EQ(async_sched, async_total);
  }
}

}  // namespace
}  // namespace malisim::ocl
