#include "ocl/runtime.h"

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "kir/builder.h"
#include "ocl/cl_error.h"

namespace malisim::ocl {
namespace {

using kir::ArgKind;
using kir::KernelBuilder;
using kir::ScalarType;
using kir::Val;

kir::Program AddOneKernel() {
  KernelBuilder kb("add_one");
  auto buf = kb.ArgBuffer("buf", ScalarType::kF32, ArgKind::kBufferRW);
  Val gid = kb.GlobalId(0);
  kb.Store(buf, gid, kb.Load(buf, gid) + 1.0);
  return *kb.Build();
}

TEST(ClErrorTest, NamesAndMapping) {
  EXPECT_EQ(ClErrorName(ClError::kSuccess), "CL_SUCCESS");
  EXPECT_EQ(ClErrorName(ClError::kOutOfResources), "CL_OUT_OF_RESOURCES");
  EXPECT_EQ(ClErrorFromStatus(Status::Ok()), ClError::kSuccess);
  EXPECT_EQ(ClErrorFromStatus(ResourceExhaustedError("x")),
            ClError::kOutOfResources);
  EXPECT_EQ(ClErrorFromStatus(BuildFailureError("x")),
            ClError::kBuildProgramFailure);
  EXPECT_EQ(ClErrorFromStatus(InvalidArgumentError("x")), ClError::kInvalidValue);
}

TEST(BufferTest, ZeroSizeRejected) {
  Context ctx;
  EXPECT_FALSE(ctx.CreateBuffer(kMemReadWrite, 0).ok());
}

TEST(BufferTest, UseHostPtrRequiresPointer) {
  Context ctx;
  EXPECT_FALSE(ctx.CreateBuffer(kMemReadWrite | kMemUseHostPtr, 64).ok());
}

TEST(BufferTest, UseAndAllocAreExclusive) {
  Context ctx;
  std::vector<float> host(16);
  EXPECT_FALSE(ctx.CreateBuffer(kMemUseHostPtr | kMemAllocHostPtr, 64,
                                host.data())
                   .ok());
}

TEST(BufferTest, CopyHostPtrInitializes) {
  Context ctx;
  std::vector<float> host = {1, 2, 3, 4};
  auto buf = ctx.CreateBuffer(kMemReadWrite | kMemCopyHostPtr, 16, host.data());
  ASSERT_TRUE(buf.ok());
  float back[4];
  std::memcpy(back, (*buf)->device_storage(), 16);
  EXPECT_EQ(back[2], 3.0f);
}

TEST(BufferTest, DistinctSimAddresses) {
  Context ctx;
  auto a = ctx.CreateBuffer(kMemReadWrite | kMemAllocHostPtr, 4096);
  auto b = ctx.CreateBuffer(kMemReadWrite | kMemAllocHostPtr, 4096);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE((*a)->sim_addr(), (*b)->sim_addr());
  EXPECT_GE((*b)->sim_addr(), (*a)->sim_addr() + 4096);
}

TEST(MapTest, AllocHostPtrMapIsZeroCopy) {
  Context ctx;
  auto buf = ctx.CreateBuffer(kMemReadWrite | kMemAllocHostPtr, 64);
  ASSERT_TRUE(buf.ok());
  Event event;
  auto mapped = ctx.queue().MapBuffer(**buf, &event);
  ASSERT_TRUE(mapped.ok());
  // Zero copy: the mapped pointer IS the device storage.
  EXPECT_EQ(*mapped, (*buf)->device_storage());
  EXPECT_EQ(event.profile.dram_bytes, 0u);
  EXPECT_TRUE(ctx.queue().UnmapBuffer(**buf, *mapped).ok());
}

TEST(MapTest, UseHostPtrMapCopies) {
  Context ctx;
  std::vector<float> host(16, 0.0f);
  auto buf = ctx.CreateBuffer(kMemReadWrite | kMemUseHostPtr, 64, host.data());
  ASSERT_TRUE(buf.ok());
  // Mutate device storage behind the app's back, then map: the driver must
  // copy out to the app allocation.
  reinterpret_cast<float*>((*buf)->device_storage())[0] = 42.0f;
  Event event;
  auto mapped = ctx.queue().MapBuffer(**buf, &event);
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ(*mapped, host.data());
  EXPECT_EQ(host[0], 42.0f);
  EXPECT_GT(event.profile.dram_bytes, 0u);  // the copy cost is modelled
  ASSERT_TRUE(ctx.queue().UnmapBuffer(**buf, *mapped).ok());
}

TEST(MapTest, DoubleMapRejected) {
  Context ctx;
  auto buf = ctx.CreateBuffer(kMemReadWrite | kMemAllocHostPtr, 64);
  auto mapped = ctx.queue().MapBuffer(**buf);
  ASSERT_TRUE(mapped.ok());
  EXPECT_FALSE(ctx.queue().MapBuffer(**buf).ok());
  ASSERT_TRUE(ctx.queue().UnmapBuffer(**buf, *mapped).ok());
}

TEST(MapTest, UnmapWrongPointerRejected) {
  Context ctx;
  auto buf = ctx.CreateBuffer(kMemReadWrite | kMemAllocHostPtr, 64);
  auto mapped = ctx.queue().MapBuffer(**buf);
  ASSERT_TRUE(mapped.ok());
  int wrong;
  EXPECT_FALSE(ctx.queue().UnmapBuffer(**buf, &wrong).ok());
  EXPECT_TRUE(ctx.queue().UnmapBuffer(**buf, *mapped).ok());
}

TEST(TransferTest, WriteAndReadBufferRoundTrip) {
  Context ctx;
  auto buf = ctx.CreateBuffer(kMemReadWrite, 64);
  ASSERT_TRUE(buf.ok());
  std::vector<float> src = {1, 2, 3, 4};
  auto write = ctx.queue().EnqueueWriteBuffer(**buf, src.data(), 16);
  ASSERT_TRUE(write.ok());
  EXPECT_GT(write->seconds, 0.0);
  std::vector<float> dst(4, 0.0f);
  ASSERT_TRUE(ctx.queue().EnqueueReadBuffer(**buf, dst.data(), 16).ok());
  EXPECT_EQ(dst, src);
}

TEST(TransferTest, OutOfRangeRejected) {
  Context ctx;
  auto buf = ctx.CreateBuffer(kMemReadWrite, 64);
  float x;
  EXPECT_FALSE(ctx.queue().EnqueueReadBuffer(**buf, &x, 4, 64).ok());
  EXPECT_FALSE(ctx.queue().EnqueueWriteBuffer(**buf, &x, 128).ok());
}

TEST(TransferTest, CopyCostScalesWithSize) {
  Context ctx;
  auto buf = ctx.CreateBuffer(kMemReadWrite, 1 << 22);
  std::vector<std::byte> data(1 << 22);
  auto small = ctx.queue().EnqueueWriteBuffer(**buf, data.data(), 1 << 12);
  auto large = ctx.queue().EnqueueWriteBuffer(**buf, data.data(), 1 << 22);
  ASSERT_TRUE(small.ok() && large.ok());
  EXPECT_GT(large->seconds, 10 * small->seconds);
}

TEST(ProgramTest, BuildAndRunKernel) {
  Context ctx;
  std::vector<kir::Program> kernels;
  kernels.push_back(AddOneKernel());
  auto prog = ctx.CreateProgram(std::move(kernels));
  ASSERT_TRUE(prog->Build().ok()) << prog->build_log();
  EXPECT_TRUE(prog->built());
  EXPECT_NE(prog->build_log().find("add_one"), std::string::npos);

  auto kernel = ctx.CreateKernel(prog, "add_one");
  ASSERT_TRUE(kernel.ok());

  auto buf = ctx.CreateBuffer(kMemReadWrite | kMemAllocHostPtr, 64 * 4);
  ASSERT_TRUE(buf.ok());
  auto mapped = ctx.queue().MapBuffer(**buf);
  ASSERT_TRUE(mapped.ok());
  for (int i = 0; i < 64; ++i) static_cast<float*>(*mapped)[i] = static_cast<float>(i);
  ASSERT_TRUE(ctx.queue().UnmapBuffer(**buf, *mapped).ok());

  ASSERT_TRUE((*kernel)->SetArgBuffer(0, *buf).ok());
  const std::uint64_t global[1] = {64};
  auto event = ctx.queue().EnqueueNDRange(**kernel, 1, global, nullptr);
  ASSERT_TRUE(event.ok()) << event.status().ToString();
  EXPECT_EQ(event->kind, Event::Kind::kKernel);
  EXPECT_GT(event->seconds, 0.0);

  auto mapped2 = ctx.queue().MapBuffer(**buf);
  ASSERT_TRUE(mapped2.ok());
  for (int i = 0; i < 64; ++i) {
    EXPECT_FLOAT_EQ(static_cast<float*>(*mapped2)[i], static_cast<float>(i + 1));
  }
  ASSERT_TRUE(ctx.queue().UnmapBuffer(**buf, *mapped2).ok());
}

TEST(ProgramTest, UnknownKernelNameRejected) {
  Context ctx;
  std::vector<kir::Program> kernels;
  kernels.push_back(AddOneKernel());
  auto prog = ctx.CreateProgram(std::move(kernels));
  ASSERT_TRUE(prog->Build().ok());
  EXPECT_FALSE(ctx.CreateKernel(prog, "missing").ok());
}

TEST(ProgramTest, KernelFromUnbuiltProgramRejected) {
  Context ctx;
  std::vector<kir::Program> kernels;
  kernels.push_back(AddOneKernel());
  auto prog = ctx.CreateProgram(std::move(kernels));
  EXPECT_FALSE(ctx.CreateKernel(prog, "add_one").ok());
}

TEST(KernelTest, UnsetArgRejectedAtEnqueue) {
  Context ctx;
  std::vector<kir::Program> kernels;
  kernels.push_back(AddOneKernel());
  auto prog = ctx.CreateProgram(std::move(kernels));
  ASSERT_TRUE(prog->Build().ok());
  auto kernel = ctx.CreateKernel(prog, "add_one");
  ASSERT_TRUE(kernel.ok());
  const std::uint64_t global[1] = {64};
  auto event = ctx.queue().EnqueueNDRange(**kernel, 1, global, nullptr);
  ASSERT_FALSE(event.ok());
  EXPECT_EQ(ClErrorFromStatus(event.status()), ClError::kInvalidValue);
}

TEST(KernelTest, ArgTypeMismatchesRejected) {
  KernelBuilder kb("scalar_arg");
  auto buf = kb.ArgBuffer("buf", ScalarType::kF32, ArgKind::kBufferRW);
  Val n = kb.ArgScalar("n", ScalarType::kI32);
  kb.Store(buf, kb.ConstI(kir::I32(), 0), kb.Convert(n, ScalarType::kF32));
  Context ctx;
  std::vector<kir::Program> kernels;
  kernels.push_back(*kb.Build());
  auto prog = ctx.CreateProgram(std::move(kernels));
  ASSERT_TRUE(prog->Build().ok());
  auto kernel = ctx.CreateKernel(prog, "scalar_arg");
  ASSERT_TRUE(kernel.ok());
  auto b = ctx.CreateBuffer(kMemReadWrite, 64);
  EXPECT_FALSE((*kernel)->SetArgBuffer(1, *b).ok());   // index 1 is scalar
  EXPECT_FALSE((*kernel)->SetArgScalar(0, kir::ScalarValue::I32V(1)).ok());
  EXPECT_FALSE((*kernel)->SetArgF32(1, 1.0f).ok());     // wrong scalar type
  EXPECT_TRUE((*kernel)->SetArgI32(1, 5).ok());
}

TEST(NDRangeTest, WorkGroupSizeValidation) {
  Context ctx;
  std::vector<kir::Program> kernels;
  kernels.push_back(AddOneKernel());
  auto prog = ctx.CreateProgram(std::move(kernels));
  ASSERT_TRUE(prog->Build().ok());
  auto kernel = ctx.CreateKernel(prog, "add_one");
  auto buf = ctx.CreateBuffer(kMemReadWrite | kMemAllocHostPtr, 4096);
  ASSERT_TRUE((*kernel)->SetArgBuffer(0, *buf).ok());

  const std::uint64_t global[1] = {1024};
  const std::uint64_t too_big[1] = {512};  // > max work-group size (256)
  EXPECT_FALSE(ctx.queue().EnqueueNDRange(**kernel, 1, global, too_big).ok());

  const std::uint64_t non_divisor[1] = {100};
  EXPECT_FALSE(ctx.queue().EnqueueNDRange(**kernel, 1, global, non_divisor).ok());

  const std::uint64_t ok_local[1] = {128};
  EXPECT_TRUE(ctx.queue().EnqueueNDRange(**kernel, 1, global, ok_local).ok());
}

TEST(NDRangeTest, DriverHeuristicRespectsBudgetAcrossDims) {
  // 3D launch with null local size must produce a legal work-group.
  KernelBuilder kb("threed");
  auto buf = kb.ArgBuffer("buf", ScalarType::kI32, ArgKind::kBufferRW);
  Val x = kb.GlobalId(0);
  kb.Store(buf, x, x);
  Context ctx;
  std::vector<kir::Program> kernels;
  kernels.push_back(*kb.Build());
  auto prog = ctx.CreateProgram(std::move(kernels));
  ASSERT_TRUE(prog->Build().ok());
  auto kernel = ctx.CreateKernel(prog, "threed");
  auto buf_obj = ctx.CreateBuffer(kMemReadWrite | kMemAllocHostPtr, 64 * 4);
  ASSERT_TRUE((*kernel)->SetArgBuffer(0, *buf_obj).ok());
  const std::uint64_t global[3] = {64, 64, 64};
  auto event = ctx.queue().EnqueueNDRange(**kernel, 3, global, nullptr);
  ASSERT_TRUE(event.ok()) << event.status().ToString();
}

TEST(QueueTest, TotalSecondsAccumulates) {
  Context ctx;
  auto buf = ctx.CreateBuffer(kMemReadWrite, 4096);
  std::vector<std::byte> data(4096);
  EXPECT_DOUBLE_EQ(ctx.queue().total_seconds(), 0.0);
  ASSERT_TRUE(ctx.queue().EnqueueWriteBuffer(**buf, data.data(), 4096).ok());
  const double after_write = ctx.queue().total_seconds();
  EXPECT_GT(after_write, 0.0);
  ASSERT_TRUE(ctx.queue().EnqueueReadBuffer(**buf, data.data(), 4096).ok());
  EXPECT_GT(ctx.queue().total_seconds(), after_write);
  EXPECT_TRUE(ctx.queue().Finish().ok());
}

TEST(ProgramTest, ErratumKernelFailsBuildWithLog) {
  KernelBuilder kb("metropolis_dp");
  auto buf = kb.ArgBuffer("buf", ScalarType::kF64, ArgKind::kBufferRW);
  Val n = kb.ConstI(kir::I32(), 8);
  kb.For("t", kb.ConstI(kir::I32(), 0), n, 1, [&](Val t) {
    Val p = kb.Exp(kb.Load(buf, t));
    kb.If(kb.CmpLt(t, kb.ConstI(kir::I32(), 4)),
          [&] { kb.Store(buf, t, p); });
  });
  Context ctx;
  std::vector<kir::Program> kernels;
  kernels.push_back(*kb.Build());
  auto prog = ctx.CreateProgram(std::move(kernels));
  const Status status = prog->Build();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(ClErrorFromStatus(status), ClError::kBuildProgramFailure);
  EXPECT_NE(prog->build_log().find("erratum"), std::string::npos);
}

}  // namespace
}  // namespace malisim::ocl
