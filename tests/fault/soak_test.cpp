// Randomized fault soak: every benchmark at both precisions under random
// fault schedules must never crash, must validate whatever completes, and
// must replay bit-identically for identical (sim seed, fault seed,
// threads) triples — including across host thread counts.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/figures.h"
#include "obs/recorder.h"

namespace malisim::harness {
namespace {

ExperimentConfig SoakConfig(bool fp64, int sim_threads) {
  ExperimentConfig config;
  config.fp64 = fp64;
  config.repetitions = 5;
  config.sim_threads = sim_threads;
  config.sizes.spmv_rows = 512;
  config.sizes.vecop_n = 1 << 13;
  config.sizes.hist_n = 1 << 13;
  config.sizes.stencil_dim = 16;
  config.sizes.red_n = 1 << 13;
  config.sizes.amcd_chains = 32;
  config.sizes.amcd_atoms = 12;
  config.sizes.amcd_steps = 8;
  config.sizes.nbody_n = 128;
  config.sizes.conv_dim = 64;
  config.sizes.dmmm_n = 32;
  return config;
}

// ---------------------------------------------------------------------------
// Randomized soak: all nine benchmarks x SP/DP x three random schedules.
// With the Serial rung as the ladder's backstop, every cell must finish
// available and validated — injected faults may change *how* a result was
// produced, never *whether* it is correct.
// ---------------------------------------------------------------------------

struct SoakCase {
  std::uint64_t fault_seed;
  bool fp64;
};

class FaultSoakTest : public ::testing::TestWithParam<SoakCase> {};

TEST_P(FaultSoakTest, SurvivesRandomScheduleValidated) {
  const SoakCase c = GetParam();
  ExperimentConfig config = SoakConfig(c.fp64, /*sim_threads=*/4);
  config.fault.seed = c.fault_seed;
  config.fault.rate = 0.02;
  auto results = ExperimentRunner(config).RunAll();
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  for (const BenchmarkResults& r : *results) {
    for (hpc::Variant v : hpc::kAllVariants) {
      SCOPED_TRACE(r.name + "/" + std::string(hpc::VariantName(v)));
      const VariantResult& vr = r.Get(v);
      EXPECT_TRUE(vr.available) << vr.unavailable_reason;
      if (vr.available) {
        EXPECT_TRUE(vr.validated)
            << "max rel err " << vr.max_rel_error << " note: " << vr.note;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, FaultSoakTest,
    ::testing::Values(SoakCase{101, false}, SoakCase{101, true},
                      SoakCase{202, false}, SoakCase{202, true},
                      SoakCase{303, false}, SoakCase{303, true}),
    [](const ::testing::TestParamInfo<SoakCase>& info) {
      return "seed" + std::to_string(info.param.fault_seed) +
             (info.param.fp64 ? "_fp64" : "_fp32");
    });

// ---------------------------------------------------------------------------
// Replay: identical (sim seed, fault seed) triples are bit-identical for
// any host thread count — the full-precision CSV is the strictest witness
// (any modelled second, watt or joule differing changes the string).
// ---------------------------------------------------------------------------

TEST(FaultReplayTest, IdenticalSeedsReplayBitIdentically) {
  ExperimentConfig config = SoakConfig(false, /*sim_threads=*/1);
  config.fault.seed = 7;
  config.fault.rate = 0.05;
  auto first = ExperimentRunner(config).RunAll();
  auto second = ExperimentRunner(config).RunAll();
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(RenderFullPrecisionCsv(*first, false),
            RenderFullPrecisionCsv(*second, false));
}

TEST(FaultReplayTest, FaultScheduleIndependentOfHostThreads) {
  ExperimentConfig serial = SoakConfig(false, /*sim_threads=*/1);
  serial.fault.seed = 7;
  serial.fault.rate = 0.05;
  ExperimentConfig parallel = serial;
  parallel.sim_threads = 4;
  auto rs = ExperimentRunner(serial).RunAll();
  auto rp = ExperimentRunner(parallel).RunAll();
  ASSERT_TRUE(rs.ok() && rp.ok());
  EXPECT_EQ(RenderFullPrecisionCsv(*rs, false),
            RenderFullPrecisionCsv(*rp, false));
}

TEST(FaultReplayTest, InjectionOffIsByteIdenticalAcrossThreadCounts) {
  // The acceptance bar for the whole subsystem: a default FaultOptions
  // must leave the sweep byte-identical at 1 and 4 host threads (the
  // golden-figure suite separately pins the absolute bytes).
  auto rs = ExperimentRunner(SoakConfig(false, 1)).RunAll();
  auto rp = ExperimentRunner(SoakConfig(false, 4)).RunAll();
  ASSERT_TRUE(rs.ok() && rp.ok());
  EXPECT_EQ(RenderFullPrecisionCsv(*rs, false),
            RenderFullPrecisionCsv(*rp, false));
}

// ---------------------------------------------------------------------------
// Degradation ladder behaviors.
// ---------------------------------------------------------------------------

TEST(DegradationTest, WatchdogDegradesGpuVariantsToOpenMP) {
  ExperimentConfig config = SoakConfig(false, 1);
  config.fault.watchdog_sec = 1e-12;  // every GPU launch exceeds this
  auto result = ExperimentRunner(config).RunBenchmark("vecop");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (hpc::Variant v : {hpc::Variant::kOpenCL, hpc::Variant::kOpenCLOpt}) {
    SCOPED_TRACE(std::string(hpc::VariantName(v)));
    const VariantResult& vr = result->Get(v);
    ASSERT_TRUE(vr.available) << vr.unavailable_reason;
    EXPECT_EQ(vr.degraded_to, "OpenMP");
    EXPECT_NE(vr.note.find("degraded to OpenMP"), std::string::npos)
        << vr.note;
    EXPECT_TRUE(vr.validated);
  }
  // CPU variants never hit the watchdog.
  EXPECT_TRUE(result->Get(hpc::Variant::kSerial).degraded_to.empty());
  EXPECT_TRUE(result->Get(hpc::Variant::kOpenMP).degraded_to.empty());
}

TEST(DegradationTest, AmcdFp64ErratumStaysFatalWithoutResilience) {
  // The paper's missing bars: with no fault config the generalized
  // FaultPlan quirk must reproduce the amcd FP64 build failure exactly as
  // the hard-coded path did — unavailable, not silently degraded.
  ExperimentConfig config = SoakConfig(true, 1);
  auto result = ExperimentRunner(config).RunBenchmark("amcd");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (hpc::Variant v : {hpc::Variant::kOpenCL, hpc::Variant::kOpenCLOpt}) {
    SCOPED_TRACE(std::string(hpc::VariantName(v)));
    const VariantResult& vr = result->Get(v);
    EXPECT_FALSE(vr.available);
    EXPECT_NE(vr.unavailable_reason.find("BuildFailure"), std::string::npos)
        << vr.unavailable_reason;
    EXPECT_NE(vr.unavailable_reason.find("erratum"), std::string::npos)
        << vr.unavailable_reason;
  }
}

TEST(DegradationTest, AmcdFp64DegradesToOpenMPWithResilienceActive) {
  ExperimentConfig config = SoakConfig(true, 1);
  config.fault.watchdog_sec = 1e6;  // resilience on, watchdog never fires
  auto result = ExperimentRunner(config).RunBenchmark("amcd");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (hpc::Variant v : {hpc::Variant::kOpenCL, hpc::Variant::kOpenCLOpt}) {
    SCOPED_TRACE(std::string(hpc::VariantName(v)));
    const VariantResult& vr = result->Get(v);
    ASSERT_TRUE(vr.available) << vr.unavailable_reason;
    EXPECT_EQ(vr.degraded_to, "OpenMP");
    EXPECT_TRUE(vr.validated);
  }
}

TEST(DegradationTest, LegacyKernelFallbackNotesPreserved) {
  // The generalized kernel ladder must render the exact note strings the
  // bespoke nbody/2dcon fallbacks produced (they appear in figure text).
  ExperimentConfig config = SoakConfig(true, 1);
  {
    auto result = ExperimentRunner(config).RunBenchmark("nbody");
    ASSERT_TRUE(result.ok());
    const VariantResult& vr = result->Get(hpc::Variant::kOpenCLOpt);
    ASSERT_TRUE(vr.available) << vr.unavailable_reason;
    EXPECT_NE(vr.note.find("CL_OUT_OF_RESOURCES for vector-gather kernel; "
                           "fell back to scalar rsqrt+unroll kernel"),
              std::string::npos)
        << vr.note;
  }
  {
    auto result = ExperimentRunner(config).RunBenchmark("2dcon");
    ASSERT_TRUE(result.ok());
    const VariantResult& vr = result->Get(hpc::Variant::kOpenCLOpt);
    ASSERT_TRUE(vr.available) << vr.unavailable_reason;
    EXPECT_NE(vr.note.find("CL_OUT_OF_RESOURCES for quad-output kernel; "
                           "fell back to row-dot kernel"),
              std::string::npos)
        << vr.note;
  }
}

// ---------------------------------------------------------------------------
// Repetition hygiene and observability.
// ---------------------------------------------------------------------------

TEST(RepHygieneTest, AllDroppedRepetitionsAreSkippedAndCounted) {
  ExperimentConfig config = SoakConfig(false, 1);
  config.fault.spec = "meter=1.0";  // every WT230 sample is dropped
  auto result = ExperimentRunner(config).RunBenchmark("vecop");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (hpc::Variant v : hpc::kAllVariants) {
    SCOPED_TRACE(std::string(hpc::VariantName(v)));
    const VariantResult& vr = result->Get(v);
    ASSERT_TRUE(vr.available);
    EXPECT_EQ(vr.failed_repetitions, config.repetitions);
    // Failed repetitions never poison the statistics: with zero surviving
    // windows the stats stay at zero instead of NaN.
    EXPECT_EQ(vr.power_mean_w, 0.0);
    EXPECT_EQ(vr.power_stddev_w, 0.0);
    EXPECT_NE(vr.note.find("all power repetitions failed"), std::string::npos)
        << vr.note;
  }
}

TEST(RepHygieneTest, NoFailedRepetitionsWithoutInjection) {
  ExperimentConfig config = SoakConfig(false, 1);
  auto result = ExperimentRunner(config).RunBenchmark("vecop");
  ASSERT_TRUE(result.ok());
  for (hpc::Variant v : hpc::kAllVariants) {
    EXPECT_EQ(result->Get(v).failed_repetitions, 0);
    EXPECT_GT(result->Get(v).power_mean_w, 0.0);
  }
}

TEST(ObservabilityTest, FaultEventsReachRecorder) {
  ExperimentConfig config = SoakConfig(false, 1);
  config.fault.seed = 11;
  config.fault.rate = 0.1;
  obs::Recorder recorder;
  config.recorder = &recorder;
  auto result = ExperimentRunner(config).RunBenchmark("vecop");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const std::vector<obs::FaultRecord> faults = recorder.faults();
  ASSERT_FALSE(faults.empty());
  for (const obs::FaultRecord& f : faults) {
    EXPECT_FALSE(f.site.empty());
    EXPECT_FALSE(f.action.empty());
    EXPECT_EQ(f.key.rfind("vecop/", 0), 0u) << f.key;
  }
}

}  // namespace
}  // namespace malisim::harness
