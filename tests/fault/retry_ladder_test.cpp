// Retry-with-backoff and the graceful-degradation ladder.
#include <string>
#include <vector>

#include "fault/degrade.h"
#include "fault/retry.h"
#include "gtest/gtest.h"

namespace malisim::fault {
namespace {

TEST(TaxonomyTest, TransientAndDegradableSets) {
  EXPECT_TRUE(IsTransient(UnavailableError("x")));
  EXPECT_TRUE(IsTransient(AllocationFailureError("x")));
  EXPECT_FALSE(IsTransient(ResourceExhaustedError("x")));
  EXPECT_FALSE(IsTransient(InvalidArgumentError("x")));

  EXPECT_TRUE(IsDegradable(UnavailableError("x")));
  EXPECT_TRUE(IsDegradable(AllocationFailureError("x")));
  EXPECT_TRUE(IsDegradable(ResourceExhaustedError("x")));
  EXPECT_TRUE(IsDegradable(BuildFailureError("x")));
  EXPECT_TRUE(IsDegradable(DeadlineExceededError("x")));
  EXPECT_FALSE(IsDegradable(InvalidArgumentError("x")));
  EXPECT_FALSE(IsDegradable(NotFoundError("x")));
}

TEST(RetryTest, SucceedsFirstTryNoRetries) {
  RetryPolicy policy;
  RetryStats stats;
  Status result = RetryWithBackoff(
      policy, [] { return Status::Ok(); }, &stats);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_EQ(stats.retries, 0);
  EXPECT_DOUBLE_EQ(stats.backoff_sec, 0.0);
}

TEST(RetryTest, RetriesTransientUntilSuccess) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  RetryStats stats;
  int calls = 0;
  Status result = RetryWithBackoff(
      policy,
      [&calls]() -> Status {
        ++calls;
        return calls < 3 ? UnavailableError("hiccup") : Status::Ok();
      },
      &stats);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.attempts, 3);
  EXPECT_EQ(stats.retries, 2);
  // 1e-3 + 2e-3 of exponential backoff, accounted but never modelled.
  EXPECT_DOUBLE_EQ(stats.backoff_sec, 3e-3);
}

TEST(RetryTest, GivesUpAfterMaxAttempts) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  RetryStats stats;
  int calls = 0;
  Status result = RetryWithBackoff(
      policy,
      [&calls]() -> Status {
        ++calls;
        return UnavailableError("persistent");
      },
      &stats);
  EXPECT_EQ(result.code(), ErrorCode::kUnavailable);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.retries, 2);
}

TEST(RetryTest, NeverRetriesNonTransient) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  int calls = 0;
  Status result = RetryWithBackoff(policy, [&calls]() -> Status {
    ++calls;
    return ResourceExhaustedError("registers");
  });
  EXPECT_EQ(result.code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, TotalBackoffCapStopsRetrying) {
  // base 1e-3, doubling: backoffs 1e-3, 2e-3, 4e-3... A cap of 2.5e-3
  // admits the first retry (1e-3) but not the second (1e-3 + 2e-3 > cap):
  // the retry loop must give up rather than overrun the caller's deadline
  // budget, even with attempts left.
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.max_total_backoff_sec = 2.5e-3;
  RetryStats stats;
  int calls = 0;
  Status result = RetryWithBackoff(
      policy,
      [&calls]() -> Status {
        ++calls;
        return UnavailableError("storm");
      },
      &stats);
  EXPECT_EQ(result.code(), ErrorCode::kUnavailable);
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(stats.retries, 1);
  EXPECT_LE(stats.backoff_sec, policy.max_total_backoff_sec);
}

TEST(RetryTest, TotalBackoffCapZeroMeansUnbounded) {
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.max_total_backoff_sec = 0.0;
  RetryStats stats;
  int calls = 0;
  Status result = RetryWithBackoff(
      policy,
      [&calls]() -> Status {
        ++calls;
        return UnavailableError("storm");
      },
      &stats);
  EXPECT_EQ(result.code(), ErrorCode::kUnavailable);
  EXPECT_EQ(calls, 6);
  EXPECT_EQ(stats.retries, 5);
}

TEST(RetryTest, TotalBackoffCapNeverBlocksTheFirstAttempt) {
  // Even a cap too small for any backoff still runs the operation once —
  // the cap bounds waiting, not work.
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.max_total_backoff_sec = 1e-9;
  RetryStats stats;
  int calls = 0;
  Status result = RetryWithBackoff(
      policy,
      [&calls]() -> Status {
        ++calls;
        return calls == 1 ? UnavailableError("once") : Status::Ok();
      },
      &stats);
  EXPECT_EQ(result.code(), ErrorCode::kUnavailable);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(stats.retries, 0);
  EXPECT_DOUBLE_EQ(stats.backoff_sec, 0.0);
}

TEST(RetryTest, WorksWithStatusOr) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  int calls = 0;
  StatusOr<int> result = RetryWithBackoff(policy, [&calls]() -> StatusOr<int> {
    ++calls;
    if (calls < 2) return UnavailableError("hiccup");
    return 42;
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(calls, 2);
}

std::vector<Rung<int>> MakeRungs(std::vector<Status> outcomes,
                                 std::vector<int>* calls) {
  std::vector<Rung<int>> rungs;
  calls->assign(outcomes.size(), 0);  // size up front: rungs keep pointers in
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    Status status = outcomes[i];
    int* counter = &(*calls)[i];
    rungs.push_back({"rung-" + std::to_string(i),
                     [status, counter, i]() -> StatusOr<int> {
                       ++*counter;
                       if (!status.ok()) return status;
                       return static_cast<int>(i);
                     }});
  }
  return rungs;
}

TEST(LadderTest, FirstRungWins) {
  std::vector<int> calls;
  std::vector<Rung<int>> rungs = MakeRungs({Status::Ok(), Status::Ok()}, &calls);
  LadderReport report;
  RetryPolicy policy;
  StatusOr<int> result = RunLadder<int>(policy, rungs, &report);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 0);
  EXPECT_EQ(report.rung_index, 0);
  EXPECT_TRUE(report.failures.empty());
  EXPECT_EQ(calls[0], 1);
  EXPECT_EQ(calls[1], 0);
}

TEST(LadderTest, DegradableFailuresFallThrough) {
  std::vector<int> calls;
  std::vector<Rung<int>> rungs = MakeRungs(
      {ResourceExhaustedError("regs"), BuildFailureError("ice"), Status::Ok()},
      &calls);
  LadderReport report;
  RetryPolicy policy;
  StatusOr<int> result = RunLadder<int>(policy, rungs, &report);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 2);
  EXPECT_EQ(report.rung_index, 2);
  ASSERT_EQ(report.failures.size(), 2u);
  EXPECT_EQ(report.failures[0].first, "rung-0");
  EXPECT_EQ(report.failures[0].second.code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(report.failures[1].second.code(), ErrorCode::kBuildFailure);
}

TEST(LadderTest, FatalErrorAbortsImmediately) {
  std::vector<int> calls;
  std::vector<Rung<int>> rungs =
      MakeRungs({InvalidArgumentError("bug"), Status::Ok()}, &calls);
  RetryPolicy policy;
  StatusOr<int> result = RunLadder<int>(policy, rungs);
  EXPECT_EQ(result.status().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(calls[1], 0) << "fatal errors must not degrade";
}

TEST(LadderTest, AllRungsFailReturnsLastStatus) {
  std::vector<int> calls;
  std::vector<Rung<int>> rungs = MakeRungs(
      {ResourceExhaustedError("a"), BuildFailureError("b")}, &calls);
  LadderReport report;
  RetryPolicy policy;
  StatusOr<int> result = RunLadder<int>(policy, rungs, &report);
  EXPECT_EQ(result.status().code(), ErrorCode::kBuildFailure);
  EXPECT_EQ(report.rung_index, -1);
  EXPECT_EQ(report.failures.size(), 2u);
}

TEST(LadderTest, TransientsAreRetriedWithinARung) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  int calls = 0;
  std::vector<Rung<int>> rungs;
  rungs.push_back({"flaky", [&calls]() -> StatusOr<int> {
                     ++calls;
                     if (calls < 3) return UnavailableError("hiccup");
                     return 7;
                   }});
  LadderReport report;
  StatusOr<int> result = RunLadder<int>(policy, rungs, &report);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 7);
  EXPECT_EQ(report.rung_index, 0);
  EXPECT_EQ(report.retry.retries, 2);
  EXPECT_GT(report.retry.backoff_sec, 0.0);
}

TEST(LadderTest, RecordsActionsOnInjector) {
  FaultPlan plan;
  FaultInjector injector(plan);
  std::vector<int> calls;
  std::vector<Rung<int>> rungs =
      MakeRungs({ResourceExhaustedError("regs"), Status::Ok()}, &calls);
  RetryPolicy policy;
  StatusOr<int> result = RunLadder<int>(policy, rungs, nullptr, &injector);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(injector.events().size(), 1u);
  EXPECT_EQ(injector.events()[0].site, "degrade");
  EXPECT_EQ(injector.events()[0].action, "fell-back");
}

}  // namespace
}  // namespace malisim::fault
