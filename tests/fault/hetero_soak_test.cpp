// Fault soak for the heterogeneous co-execution backend: randomized fault
// schedules over device=kHetero sweeps must survive validated, and identical
// (sim seed, fault seed) pairs must replay bit-identically across host
// thread counts — the full-precision CSV is the strictest witness.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/figures.h"
#include "hpc/benchmark.h"

namespace malisim::harness {
namespace {

ExperimentConfig HeteroSoakConfig(bool fp64, int sim_threads) {
  ExperimentConfig config;
  config.device = sim::BackendKind::kHetero;
  config.fp64 = fp64;
  config.repetitions = 5;
  config.sim_threads = sim_threads;
  config.sizes.spmv_rows = 512;
  config.sizes.vecop_n = 1 << 13;
  config.sizes.hist_n = 1 << 13;
  config.sizes.stencil_dim = 16;
  config.sizes.red_n = 1 << 13;
  config.sizes.amcd_chains = 32;
  config.sizes.amcd_atoms = 12;
  config.sizes.amcd_steps = 8;
  config.sizes.nbody_n = 128;
  config.sizes.conv_dim = 64;
  config.sizes.dmmm_n = 32;
  return config;
}

TEST(HeteroSoakTest, SurvivesRandomScheduleValidated) {
  for (std::uint64_t fault_seed : {401u, 502u}) {
    ExperimentConfig config = HeteroSoakConfig(false, /*sim_threads=*/4);
    config.fault.seed = fault_seed;
    config.fault.rate = 0.02;
    auto results = ExperimentRunner(config).RunAll();
    ASSERT_TRUE(results.ok()) << results.status().ToString();
    for (const BenchmarkResults& r : *results) {
      for (hpc::Variant v : hpc::kAllVariantsWithHetero) {
        SCOPED_TRACE("seed " + std::to_string(fault_seed) + " " + r.name +
                     "/" + std::string(hpc::VariantName(v)));
        const VariantResult& vr = r.Get(v);
        EXPECT_TRUE(vr.available) << vr.unavailable_reason;
        if (vr.available) {
          EXPECT_TRUE(vr.validated)
              << "max rel err " << vr.max_rel_error << " note: " << vr.note;
        }
      }
    }
  }
}

TEST(HeteroSoakTest, FaultedReplayIsBitIdentical) {
  ExperimentConfig config = HeteroSoakConfig(false, /*sim_threads=*/1);
  config.fault.seed = 7;
  config.fault.rate = 0.05;
  auto first = ExperimentRunner(config).RunAll();
  auto second = ExperimentRunner(config).RunAll();
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(RenderFullPrecisionCsv(*first, false),
            RenderFullPrecisionCsv(*second, false));
}

TEST(HeteroSoakTest, FaultedReplayIndependentOfHostThreads) {
  ExperimentConfig serial = HeteroSoakConfig(false, /*sim_threads=*/1);
  serial.fault.seed = 7;
  serial.fault.rate = 0.05;
  ExperimentConfig parallel = serial;
  parallel.sim_threads = 4;
  auto rs = ExperimentRunner(serial).RunAll();
  auto rp = ExperimentRunner(parallel).RunAll();
  ASSERT_TRUE(rs.ok() && rp.ok());
  EXPECT_EQ(RenderFullPrecisionCsv(*rs, false),
            RenderFullPrecisionCsv(*rp, false));
}

TEST(HeteroSoakTest, WatchdogDegradesTheHeteroColumn) {
  // The co-execution rung sits on top of the degradation ladder: a
  // watchdog that times out every GPU-side launch must walk the kHetero
  // column down the ladder to a CPU rung, still validated.
  ExperimentConfig config = HeteroSoakConfig(false, /*sim_threads=*/1);
  config.fault.watchdog_sec = 1e-12;  // every GPU-side launch exceeds this
  auto result = ExperimentRunner(config).RunBenchmark("vecop");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const VariantResult& vr = result->Get(hpc::Variant::kHetero);
  ASSERT_TRUE(vr.available) << vr.unavailable_reason;
  EXPECT_FALSE(vr.degraded_to.empty());
  EXPECT_TRUE(vr.validated);
}

}  // namespace
}  // namespace malisim::harness
