// Tuner x fault-injection soak (DESIGN.md §8 meets §12): candidate
// evaluations that hit injected faults are skipped-and-counted, never
// winners; the skip schedule is keyed per candidate so searches stay
// bit-identical across host thread counts; and a failed search never
// writes to the tuning cache — faults cannot poison persisted winners.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/tuning.h"
#include "hpc/problem_sizes.h"
#include "sim/tuner.h"

namespace malisim::harness {
namespace {

/// Sub-quick sizes: the soak sweeps several schedules, so each candidate
/// evaluation is kept small.
hpc::ProblemSizes SoakSizes() {
  hpc::ProblemSizes sizes = hpc::ProblemSizes::Quick();
  sizes.vecop_n = 1 << 13;
  sizes.hist_n = 1 << 13;
  sizes.spmv_rows = 512;
  return sizes;
}

TuningRequest SoakRequest(const std::string& benchmark,
                          std::uint64_t fault_seed, double rate) {
  TuningRequest request;
  request.benchmark = benchmark;
  request.sizes = SoakSizes();
  request.tuner.objective = sim::Objective::kEnergy;
  request.fault.seed = fault_seed;
  request.fault.rate = rate;
  return request;
}

TEST(TunerFaultSoakTest, FaultedCandidatesSkippedNeverWinners) {
  bool saw_skips = false;
  for (std::uint64_t fault_seed : {11ull, 22ull, 33ull}) {
    SCOPED_TRACE("fault_seed=" + std::to_string(fault_seed));
    StatusOr<TuningReport> report =
        TuneBenchmark(SoakRequest("vecop", fault_seed, 0.15));
    if (!report.ok()) continue;  // a schedule may fell every candidate
    const sim::TunerResult& r = report->result;
    saw_skips |= r.skipped > 0;
    // The winner is the minimum over the OK trajectory points — skipped
    // candidates never contribute.
    double min_ok = -1.0;
    for (const sim::TuningTrajectoryPoint& p : r.trajectory) {
      if (!p.ok) continue;
      if (min_ok < 0.0 || p.score < min_ok) min_ok = p.score;
    }
    ASSERT_GE(min_ok, 0.0);
    EXPECT_EQ(r.best_score, min_ok);
    EXPECT_EQ(r.evaluated + r.skipped, r.trajectory.size());
  }
  EXPECT_TRUE(saw_skips) << "no schedule ever skipped a candidate; the "
                            "soak is not exercising the fault path";
}

TEST(TunerFaultSoakTest, FaultScheduleIndependentOfThreadCount) {
  TuningRequest request = SoakRequest("hist", 77, 0.2);
  request.tuner.threads = 1;
  StatusOr<TuningReport> serial = TuneBenchmark(request);
  request.tuner.threads = 4;
  StatusOr<TuningReport> threaded = TuneBenchmark(request);
  ASSERT_EQ(serial.ok(), threaded.ok());
  if (!serial.ok()) return;
  EXPECT_EQ(serial->result.best.CanonicalKey(),
            threaded->result.best.CanonicalKey());
  EXPECT_EQ(serial->result.skipped, threaded->result.skipped);
  ASSERT_EQ(serial->result.trajectory.size(),
            threaded->result.trajectory.size());
  for (std::size_t i = 0; i < serial->result.trajectory.size(); ++i) {
    EXPECT_EQ(serial->result.trajectory[i].config_key,
              threaded->result.trajectory[i].config_key);
    EXPECT_EQ(serial->result.trajectory[i].score,
              threaded->result.trajectory[i].score);
    EXPECT_EQ(serial->result.trajectory[i].ok,
              threaded->result.trajectory[i].ok);
  }
}

TEST(TunerFaultSoakTest, AllCandidatesFaultedIsNotFoundAndCacheStaysEmpty) {
  // Every compiler build trips: no candidate can succeed, the search
  // reports failure, and nothing is persisted.
  sim::TuningCache cache;
  TuningRequest request = SoakRequest("vecop", 5, 0.0);
  request.fault.spec = "build=1.0";
  request.cache = &cache;
  StatusOr<TuningReport> report = TuneBenchmark(request);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(TunerFaultSoakTest, WatchdogDegradedCandidatesAreSkipped) {
  // An impossibly tight per-kernel watchdog fails every launch: the
  // search must fail cleanly (NotFound), never crown an unmeasured
  // winner, and never write the cache.
  sim::TuningCache cache;
  TuningRequest request = SoakRequest("hist", 9, 0.0);
  request.fault.watchdog_sec = 1e-12;
  request.cache = &cache;
  StatusOr<TuningReport> report = TuneBenchmark(request);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(TunerFaultSoakTest, SurvivingSearchWritesOnlyTheWinner) {
  // Under a moderate schedule the cache receives exactly one entry — the
  // winner — and that entry resolves inside the declared space.
  sim::TuningCache cache;
  TuningRequest request = SoakRequest("spmv", 123, 0.1);
  request.cache = &cache;
  StatusOr<TuningReport> report = TuneBenchmark(request);
  if (!report.ok()) GTEST_SKIP() << "schedule felled every candidate";
  ASSERT_EQ(cache.size(), 1u);
  sim::TuningCacheEntry entry;
  ASSERT_TRUE(cache.Lookup(report->cache_key, &entry));
  EXPECT_EQ(entry.config_key, report->result.best.CanonicalKey());
  // The persisted winner replays: re-tuning from the cache returns it
  // without evaluating anything, faults or no faults.
  StatusOr<TuningReport> again = TuneBenchmark(request);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_TRUE(again->result.from_cache);
  EXPECT_EQ(again->result.best.CanonicalKey(),
            report->result.best.CanonicalKey());
}

}  // namespace
}  // namespace malisim::harness
