// FaultInjector: deterministic counter-mode decisions, site independence,
// quirk handling, and event recording.
#include "fault/injector.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace malisim::fault {
namespace {

std::vector<bool> TripSchedule(FaultInjector* injector, FaultSite site,
                               int n) {
  std::vector<bool> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(injector->Trip(site, "k"));
  return out;
}

TEST(InjectorTest, ZeroRateNeverTrips) {
  FaultPlan plan;
  plan.seed = 1;
  FaultInjector injector(plan);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(injector.Trip(FaultSite::kWrite, "k"));
  }
  EXPECT_EQ(injector.total_trips(), 0u);
  EXPECT_TRUE(injector.events().empty());
}

TEST(InjectorTest, RateOneAlwaysTrips) {
  FaultPlan plan;
  plan.seed = 1;
  plan.set_rate(FaultSite::kMap, 1.0);
  FaultInjector injector(plan);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(injector.Trip(FaultSite::kMap, "k"));
  }
  EXPECT_EQ(injector.trips(FaultSite::kMap), 10u);
  EXPECT_EQ(injector.events().size(), 10u);
}

TEST(InjectorTest, SameSeedReplaysIdentically) {
  FaultPlan plan;
  plan.seed = 0xabcdef;
  plan.set_rate(FaultSite::kNDRange, 0.3);
  FaultInjector a(plan);
  FaultInjector b(plan);
  EXPECT_EQ(TripSchedule(&a, FaultSite::kNDRange, 200),
            TripSchedule(&b, FaultSite::kNDRange, 200));
}

TEST(InjectorTest, DifferentSeedsGiveDifferentSchedules) {
  FaultPlan plan;
  plan.set_rate(FaultSite::kNDRange, 0.5);
  plan.seed = 1;
  FaultInjector a(plan);
  plan.seed = 2;
  FaultInjector b(plan);
  EXPECT_NE(TripSchedule(&a, FaultSite::kNDRange, 200),
            TripSchedule(&b, FaultSite::kNDRange, 200));
}

TEST(InjectorTest, SitesAreIndependentStreams) {
  // Interleaving decisions at another site must not shift this site's
  // schedule — that is the counter-mode determinism contract.
  FaultPlan plan;
  plan.seed = 42;
  plan.set_rate(FaultSite::kWrite, 0.4);
  plan.set_rate(FaultSite::kRead, 0.4);
  FaultInjector pure(plan);
  const std::vector<bool> reference =
      TripSchedule(&pure, FaultSite::kWrite, 100);

  FaultInjector interleaved(plan);
  std::vector<bool> got;
  for (int i = 0; i < 100; ++i) {
    interleaved.Trip(FaultSite::kRead, "noise");
    interleaved.Trip(FaultSite::kRead, "noise");
    got.push_back(interleaved.Trip(FaultSite::kWrite, "k"));
  }
  EXPECT_EQ(got, reference);
}

TEST(InjectorTest, TripRateIsRoughlyCalibrated) {
  FaultPlan plan;
  plan.seed = 7;
  plan.set_rate(FaultSite::kFill, 0.2);
  FaultInjector injector(plan);
  int trips = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (injector.Trip(FaultSite::kFill, "k")) ++trips;
  }
  EXPECT_GT(trips, n / 10);      // > 10 %
  EXPECT_LT(trips, 3 * n / 10);  // < 30 %
}

TEST(InjectorTest, Fp64ErratumIsStructuralNotProbabilistic) {
  FaultPlan plan;
  FaultInjector on(plan);
  EXPECT_TRUE(on.TripFp64Erratum(true));
  EXPECT_FALSE(on.TripFp64Erratum(false));
  plan.fp64_erratum = false;
  FaultInjector off(plan);
  EXPECT_FALSE(off.TripFp64Erratum(true));
}

TEST(InjectorTest, RegBudgetQuirk) {
  FaultPlan plan;
  FaultInjector injector(plan);
  // Quirk on, no squeeze trip: budget passes through unchanged.
  EXPECT_EQ(injector.EffectiveRegBudget(384, "k"), 384u);
  plan.reg_budget = false;
  FaultInjector unlimited(plan);
  EXPECT_EQ(unlimited.EffectiveRegBudget(384, "k"), 0xFFFFFFFFu);
}

TEST(InjectorTest, RegSqueezeHalvesBudget) {
  FaultPlan plan;
  plan.set_rate(FaultSite::kRegSqueeze, 1.0);
  FaultInjector injector(plan);
  EXPECT_EQ(injector.EffectiveRegBudget(384, "k"), 192u);
  EXPECT_EQ(injector.trips(FaultSite::kRegSqueeze), 1u);
}

TEST(InjectorTest, ThrottleFactor) {
  FaultPlan plan;
  FaultInjector calm(plan);
  EXPECT_DOUBLE_EQ(calm.ThrottleTimeFactor("k"), 1.0);
  plan.set_rate(FaultSite::kThrottle, 1.0);
  plan.throttle_time_factor = 1.5;
  FaultInjector hot(plan);
  EXPECT_DOUBLE_EQ(hot.ThrottleTimeFactor("k"), 1.5);
}

TEST(InjectorTest, MeterDropout) {
  FaultPlan plan;
  plan.set_rate(FaultSite::kMeterDropout, 1.0);
  FaultInjector injector(plan);
  EXPECT_TRUE(injector.DropMeterSample());
  EXPECT_EQ(injector.trips(FaultSite::kMeterDropout), 1u);
}

TEST(InjectorTest, SinkSeesEveryEvent) {
  FaultPlan plan;
  plan.set_rate(FaultSite::kBuild, 1.0);
  FaultInjector injector(plan);
  std::vector<FaultEvent> seen;
  injector.set_sink([&seen](const FaultEvent& e) { seen.push_back(e); });
  injector.Trip(FaultSite::kBuild, "kernel_a");
  injector.RecordAction("ladder", "cell", "fell-back", "detail");
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].site, "build");
  EXPECT_EQ(seen[0].key, "kernel_a");
  EXPECT_EQ(seen[0].action, "injected");
  EXPECT_EQ(seen[1].site, "ladder");
  EXPECT_EQ(seen[1].action, "fell-back");
  EXPECT_EQ(injector.events().size(), 2u);
}

}  // namespace
}  // namespace malisim::fault
