// FaultPlan: site naming, spec parsing, and option validation.
#include "fault/fault_plan.h"

#include <set>
#include <string>

#include "gtest/gtest.h"

namespace malisim::fault {
namespace {

TEST(FaultSiteTest, EverySiteHasAUniqueNameThatRoundTrips) {
  std::set<std::string> names;
  for (int i = 0; i < kNumFaultSites; ++i) {
    const FaultSite site = static_cast<FaultSite>(i);
    const std::string name(FaultSiteName(site));
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "unknown") << "site " << i << " is missing a name";
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
    FaultSite back;
    ASSERT_TRUE(FaultSiteFromName(name, &back)) << name;
    EXPECT_EQ(back, site);
  }
}

TEST(FaultSiteTest, FromNameRejectsUnknown) {
  FaultSite site;
  EXPECT_FALSE(FaultSiteFromName("gamma-ray", &site));
  EXPECT_FALSE(FaultSiteFromName("", &site));
  EXPECT_FALSE(FaultSiteFromName("ALLOC", &site));
}

TEST(FaultPlanTest, DefaultPlanInjectsNothingButKeepsQuirks) {
  FaultPlan plan;
  EXPECT_FALSE(plan.InjectionActive());
  EXPECT_TRUE(plan.fp64_erratum);
  EXPECT_TRUE(plan.reg_budget);
}

TEST(FaultPlanTest, ApplySpecSetsIndividualSites) {
  FaultPlan plan;
  ASSERT_TRUE(plan.ApplySpec("map=0.25,build=1.0").ok());
  EXPECT_DOUBLE_EQ(plan.rate(FaultSite::kMap), 0.25);
  EXPECT_DOUBLE_EQ(plan.rate(FaultSite::kBuild), 1.0);
  EXPECT_DOUBLE_EQ(plan.rate(FaultSite::kAlloc), 0.0);
  EXPECT_TRUE(plan.InjectionActive());
}

TEST(FaultPlanTest, ApplySpecAllFillsEverySite) {
  FaultPlan plan;
  ASSERT_TRUE(plan.ApplySpec("all=0.125").ok());
  for (int i = 0; i < kNumFaultSites; ++i) {
    EXPECT_DOUBLE_EQ(plan.rate(static_cast<FaultSite>(i)), 0.125);
  }
}

TEST(FaultPlanTest, ApplySpecAllThenOverride) {
  FaultPlan plan;
  ASSERT_TRUE(plan.ApplySpec("all=0.5,meter=0").ok());
  EXPECT_DOUBLE_EQ(plan.rate(FaultSite::kMeterDropout), 0.0);
  EXPECT_DOUBLE_EQ(plan.rate(FaultSite::kWrite), 0.5);
}

TEST(FaultPlanTest, ApplySpecRejectsMalformedEntries) {
  FaultPlan plan;
  EXPECT_EQ(plan.ApplySpec("map").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(plan.ApplySpec("map=zebra").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(plan.ApplySpec("map=1.5").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(plan.ApplySpec("map=-0.1").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(plan.ApplySpec("warp=0.5").code(), ErrorCode::kInvalidArgument);
}

TEST(FaultPlanTest, ApplySpecIgnoresEmptyEntries) {
  FaultPlan plan;
  ASSERT_TRUE(plan.ApplySpec(",map=0.5,,").ok());
  EXPECT_DOUBLE_EQ(plan.rate(FaultSite::kMap), 0.5);
}

TEST(FaultPlanTest, FromOptionsAppliesUniformRateThenSpec) {
  FaultOptions options;
  options.seed = 77;
  options.rate = 0.1;
  options.spec = "meter=0.9";
  StatusOr<FaultPlan> plan = FaultPlan::FromOptions(options);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->seed, 77u);
  EXPECT_DOUBLE_EQ(plan->rate(FaultSite::kWrite), 0.1);
  EXPECT_DOUBLE_EQ(plan->rate(FaultSite::kMeterDropout), 0.9);
}

TEST(FaultPlanTest, FromOptionsValidates) {
  FaultOptions options;
  options.rate = 1.5;
  EXPECT_EQ(FaultPlan::FromOptions(options).status().code(),
            ErrorCode::kInvalidArgument);
  options.rate = 0.0;
  options.watchdog_sec = -1.0;
  EXPECT_EQ(FaultPlan::FromOptions(options).status().code(),
            ErrorCode::kInvalidArgument);
  options.watchdog_sec = 0.0;
  options.spec = "bogus=1";
  EXPECT_EQ(FaultPlan::FromOptions(options).status().code(),
            ErrorCode::kInvalidArgument);
}

TEST(FaultOptionsTest, ActivityPredicates) {
  FaultOptions options;
  EXPECT_FALSE(options.InjectionActive());
  EXPECT_FALSE(options.ResilienceActive());
  options.watchdog_sec = 1.0;
  EXPECT_FALSE(options.InjectionActive());
  EXPECT_TRUE(options.ResilienceActive());
  options.watchdog_sec = 0.0;
  options.rate = 0.01;
  EXPECT_TRUE(options.InjectionActive());
  EXPECT_TRUE(options.ResilienceActive());
  options.rate = 0.0;
  options.spec = "map=1";
  EXPECT_TRUE(options.InjectionActive());
}

}  // namespace
}  // namespace malisim::fault
