// Shared plumbing for the figure-reproduction binaries: flag parsing,
// running both precisions, the paper-vs-model comparison rendering, and
// the --bench-json BENCH record emission (obs/bench_report.h).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bench/paper_reference.h"
#include "harness/experiment.h"
#include "harness/figures.h"
#include "obs/recorder.h"
#include "sim/device.h"
#include "sim/tuner.h"

namespace malisim::bench {

struct BenchOptions {
  bool run_fp32 = true;
  bool run_fp64 = true;
  bool csv = false;
  std::uint64_t seed = 42;
  /// Host threads for the simulation engine (results are identical for any
  /// value; see ExperimentConfig::sim_threads).
  int threads = 1;
  /// KIR execution engine (--kir-exec=interp|bytecode). Results are
  /// identical for either engine; bytecode is the fast default.
  KirExec kir_exec = KirExec::kBytecode;
  hpc::ProblemSizes sizes;
  /// When non-empty, a Chrome trace of the runs is written here.
  std::string trace_path;
  /// When non-empty, a schema-versioned BENCH record (malisim-bench-v1) of
  /// the run is written here for malisim-bench regression comparison.
  /// Byte-identical for any --threads value.
  std::string bench_json;
  /// Backend the OpenCL variants run on (--device=mali|a15|hetero). The
  /// default reproduces the paper figures byte-for-byte; "hetero" adds the
  /// Hetero co-execution column and splits every NDRange across both.
  sim::BackendKind device = sim::BackendKind::kMali;
  /// GPU share per NDRange on the hetero backend (--hetero-ratio=X):
  /// 0.0 = all-A15, 1.0 = all-Mali, negative = self-tuning.
  double hetero_ratio = -1.0;
  /// Fault injection and resilience (DESIGN.md §8). Defaults (all off)
  /// reproduce the golden figures byte-for-byte.
  FaultOptions fault;
  /// Autotuning (--tune[=time|energy|edp]): run sim::Tuner over every
  /// benchmark's §III space before each sweep and drive the OpenCL-opt
  /// column with the winners (DESIGN.md §12). Off by default — golden
  /// figures never see the tuner. Default objective: energy.
  bool tune = false;
  sim::Objective tune_objective = sim::Objective::kEnergy;
  /// Persistent winner cache for --tune (--tune-cache=PATH): loaded before
  /// tuning, saved after. Empty = tune from scratch each run.
  std::string tune_cache;
};

/// Parses --fp32 / --fp64 (run only that precision), --csv, --seed=N,
/// --threads=N (host threads for the simulation engine),
/// --kir-exec=interp|bytecode (KIR execution engine; exits with status 2
/// on an unknown name), --quick (shrunken
/// problem sizes for CI smoke runs), --trace=PATH (Chrome trace of the
/// runs), --bench-json=PATH (machine-comparable BENCH record of the run),
/// --device=mali|a15|hetero (backend for the OpenCL variants; exits with
/// status 2 on an unknown name), --hetero-ratio=X (GPU split share on the
/// hetero backend), and the fault-injection knobs: --fault-seed=N, --fault-rate=P
/// (uniform per-site trip probability), --fault-spec=site=rate[,...]
/// (per-site overrides; "all" = every site), --watchdog=SEC (per-kernel
/// modelled-time budget), --tune[=time|energy|edp] (autotune the §III
/// space and drive the OpenCL-opt column with the winners; exits with
/// status 2 on an unknown objective), --tune-cache=PATH (persistent
/// tuning-winner cache), and --log-level=debug|info|warn|error|off
/// (overrides MALISIM_LOG_LEVEL; exits with status 2 on an unknown
/// level).
BenchOptions ParseOptions(int argc, char** argv);

/// One completed precision sweep plus the recorder that observed it (the
/// recorder is only attached when options.bench_json is set).
struct SweepData {
  bool fp64 = false;
  std::vector<harness::BenchmarkResults> results;
  std::shared_ptr<obs::Recorder> recorder;
  /// Measured host wall-clock for the sweep. Feeds only the record's
  /// sim_throughput_host section, which is excluded from the byte-identity
  /// contract.
  double host_sec = 0.0;
};

/// Runs all nine benchmarks at one precision. `recorder`, when non-null,
/// is attached to the harness for the sweep.
StatusOr<std::vector<harness::BenchmarkResults>> RunSweep(
    const BenchOptions& options, bool fp64,
    obs::Recorder* recorder = nullptr);

/// Runs one precision sweep, attaching a fresh recorder when
/// options.bench_json is set, and appends the sweep to *sweeps. Non-OK on
/// harness failure.
Status RunSweepInto(const BenchOptions& options, bool fp64,
                    std::vector<SweepData>* sweeps);

/// Writes the BENCH record for `sweeps` to options.bench_json: one cell
/// per (benchmark, variant, precision), paper-reference deltas for every
/// figure the paper reports, and the aggregated metrics snapshot
/// (per-kernel time histograms, per-rail energy, fault counters) under a
/// "fp32"/"fp64" prefix per sweep. No-op when options.bench_json is empty.
Status WriteBenchJson(const BenchOptions& options,
                      const std::string& bench_name,
                      const std::vector<SweepData>& sweeps);

/// Appends a paper-vs-model comparison table for the given metric.
std::string CompareWithPaper(
    const std::vector<harness::BenchmarkResults>& results,
    const std::map<std::string, PaperRow>& paper,
    double (harness::BenchmarkResults::*metric)(hpc::Variant) const,
    int precision);

}  // namespace malisim::bench
