// Shared plumbing for the figure-reproduction binaries: flag parsing,
// running both precisions, and the paper-vs-model comparison rendering.
#pragma once

#include <string>
#include <vector>

#include "bench/paper_reference.h"
#include "harness/experiment.h"
#include "harness/figures.h"

namespace malisim::bench {

struct BenchOptions {
  bool run_fp32 = true;
  bool run_fp64 = true;
  bool csv = false;
  std::uint64_t seed = 42;
  /// Host threads for the simulation engine (results are identical for any
  /// value; see ExperimentConfig::sim_threads).
  int threads = 1;
  hpc::ProblemSizes sizes;
  /// When non-empty, a Chrome trace of the runs is written here.
  std::string trace_path;
  /// Fault injection and resilience (DESIGN.md §8). Defaults (all off)
  /// reproduce the golden figures byte-for-byte.
  FaultOptions fault;
};

/// Parses --fp32 / --fp64 (run only that precision), --csv, --seed=N,
/// --threads=N (host threads for the simulation engine), --quick (shrunken
/// problem sizes for CI smoke runs), --trace=PATH (Chrome trace of the
/// runs), and the fault-injection knobs: --fault-seed=N, --fault-rate=P
/// (uniform per-site trip probability), --fault-spec=site=rate[,...]
/// (per-site overrides; "all" = every site), --watchdog=SEC (per-kernel
/// modelled-time budget).
BenchOptions ParseOptions(int argc, char** argv);

/// Runs all nine benchmarks at one precision.
StatusOr<std::vector<harness::BenchmarkResults>> RunSweep(
    const BenchOptions& options, bool fp64);

/// Appends a paper-vs-model comparison table for the given metric.
std::string CompareWithPaper(
    const std::vector<harness::BenchmarkResults>& results,
    const std::map<std::string, PaperRow>& paper,
    double (harness::BenchmarkResults::*metric)(hpc::Variant) const,
    int precision);

}  // namespace malisim::bench
