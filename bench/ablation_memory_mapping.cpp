// Ablation A1 — §III-A "Memory allocation and mapping".
//
// The paper: on the Mali's unified memory, buffers created with
// CL_MEM_ALLOC_HOST_PTR and accessed via clEnqueueMapBuffer/Unmap avoid all
// copies; wrapping malloc memory with CL_MEM_USE_HOST_PTR forces the host
// to move data with clEnqueueWrite/ReadBuffer. This bench runs the same
// element-wise kernel under both host-code styles and reports the modelled
// end-to-end time (transfers + kernel).
//
// Usage: ablation_memory_mapping [--csv]
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/table.h"
#include "kir/builder.h"
#include "ocl/runtime.h"

namespace {

using namespace malisim;

kir::Program ScaleKernel() {
  kir::KernelBuilder kb("scale");
  auto in = kb.ArgBuffer("in", kir::ScalarType::kF32, kir::ArgKind::kBufferRO);
  auto out = kb.ArgBuffer("out", kir::ScalarType::kF32, kir::ArgKind::kBufferWO);
  kir::Val gid = kb.GlobalId(0);
  kb.Store(out, gid, kb.Load(in, gid) * 2.0);
  return *kb.Build();
}

struct Result {
  double transfer_in_sec = 0;
  double kernel_sec = 0;
  double transfer_out_sec = 0;
  double total() const { return transfer_in_sec + kernel_sec + transfer_out_sec; }
};

Result RunCopyStyle(std::uint64_t n) {
  ocl::Context ctx;
  std::vector<float> host_in(n, 1.0f), host_out(n, 0.0f);
  const std::uint64_t bytes = n * 4;
  // malloc-backed buffers: the GPU cannot address them, the driver keeps a
  // shadow and the app must copy explicitly.
  auto in = ctx.CreateBuffer(ocl::kMemReadOnly | ocl::kMemUseHostPtr, bytes,
                             host_in.data());
  auto out = ctx.CreateBuffer(ocl::kMemWriteOnly | ocl::kMemUseHostPtr, bytes,
                              host_out.data());
  MALI_CHECK(in.ok() && out.ok());

  Result r;
  auto write = ctx.queue().EnqueueWriteBuffer(**in, host_in.data(), bytes);
  MALI_CHECK(write.ok());
  r.transfer_in_sec = write->seconds;

  std::vector<kir::Program> kernels;
  kernels.push_back(ScaleKernel());
  auto prog = ctx.CreateProgram(std::move(kernels));
  MALI_CHECK(prog->Build().ok());
  auto kernel = ctx.CreateKernel(prog, "scale");
  MALI_CHECK(kernel.ok());
  MALI_CHECK((*kernel)->SetArgBuffer(0, *in).ok());
  MALI_CHECK((*kernel)->SetArgBuffer(1, *out).ok());
  const std::uint64_t global[1] = {n};
  const std::uint64_t local[1] = {128};
  auto event = ctx.queue().EnqueueNDRange(**kernel, 1, global, local);
  MALI_CHECK(event.ok());
  r.kernel_sec = event->seconds;

  auto read = ctx.queue().EnqueueReadBuffer(**out, host_out.data(), bytes);
  MALI_CHECK(read.ok());
  r.transfer_out_sec = read->seconds;
  return r;
}

Result RunMapStyle(std::uint64_t n) {
  ocl::Context ctx;
  const std::uint64_t bytes = n * 4;
  auto in = ctx.CreateBuffer(ocl::kMemReadOnly | ocl::kMemAllocHostPtr, bytes);
  auto out = ctx.CreateBuffer(ocl::kMemWriteOnly | ocl::kMemAllocHostPtr, bytes);
  MALI_CHECK(in.ok() && out.ok());

  Result r;
  ocl::Event map_event;
  auto mapped = ctx.queue().MapBuffer(**in, &map_event);
  MALI_CHECK(mapped.ok());
  for (std::uint64_t i = 0; i < n; ++i) static_cast<float*>(*mapped)[i] = 1.0f;
  MALI_CHECK(ctx.queue().UnmapBuffer(**in, *mapped).ok());
  r.transfer_in_sec = map_event.seconds;  // cache maintenance only

  std::vector<kir::Program> kernels;
  kernels.push_back(ScaleKernel());
  auto prog = ctx.CreateProgram(std::move(kernels));
  MALI_CHECK(prog->Build().ok());
  auto kernel = ctx.CreateKernel(prog, "scale");
  MALI_CHECK(kernel.ok());
  MALI_CHECK((*kernel)->SetArgBuffer(0, *in).ok());
  MALI_CHECK((*kernel)->SetArgBuffer(1, *out).ok());
  const std::uint64_t global[1] = {n};
  const std::uint64_t local[1] = {128};
  auto event = ctx.queue().EnqueueNDRange(**kernel, 1, global, local);
  MALI_CHECK(event.ok());
  r.kernel_sec = event->seconds;

  ocl::Event unmap_event;
  auto mapped_out = ctx.queue().MapBuffer(**out, &unmap_event);
  MALI_CHECK(mapped_out.ok());
  MALI_CHECK(ctx.queue().UnmapBuffer(**out, *mapped_out).ok());
  r.transfer_out_sec = unmap_event.seconds;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::string(argv[1]) == "--csv";
  malisim::Table table({"elements", "style", "transfer-in (ms)", "kernel (ms)",
                        "transfer-out (ms)", "total (ms)", "map speedup"});
  std::printf("== Ablation A1: §III-A memory allocation & mapping ==\n");
  for (std::uint64_t n : {1u << 16, 1u << 18, 1u << 20, 1u << 22}) {
    const Result copy = RunCopyStyle(n);
    const Result map = RunMapStyle(n);
    for (int style = 0; style < 2; ++style) {
      const Result& r = style == 0 ? copy : map;
      table.BeginRow();
      table.AddCell(std::to_string(n));
      table.AddCell(style == 0 ? "USE_HOST_PTR + copy" : "ALLOC_HOST_PTR + map");
      table.AddNumber(r.transfer_in_sec * 1e3, 3);
      table.AddNumber(r.kernel_sec * 1e3, 3);
      table.AddNumber(r.transfer_out_sec * 1e3, 3);
      table.AddNumber(r.total() * 1e3, 3);
      if (style == 0) {
        table.AddCell("1.00");
      } else {
        table.AddNumber(copy.total() / map.total(), 2);
      }
    }
  }
  std::printf("%s\n", csv ? table.ToCsv().c_str() : table.ToAscii().c_str());
  std::printf(
      "paper expectation: the map path eliminates the copies entirely; the\n"
      "advantage grows with buffer size as the kernel cost is amortized.\n");
  return 0;
}
