// google-benchmark microbenchmarks of the simulator itself: interpreter
// instruction throughput, cache-model probe rate, and end-to-end device
// simulation rate. These guard the tool's own performance (a full figure
// sweep interprets ~10^9 instructions), not the modelled hardware.
#include <benchmark/benchmark.h>

#include <optional>
#include <vector>

#include "cpu/a15_device.h"
#include "kir/builder.h"
#include "kir/interp.h"
#include "mali/compiler.h"
#include "mali/t604_device.h"
#include "obs/export.h"
#include "obs/obs_options.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "power/power_model.h"
#include "sim/cache.h"

namespace {

using namespace malisim;

kir::Program ArithLoopKernel() {
  kir::KernelBuilder kb("arith_loop");
  auto out = kb.ArgBuffer("out", kir::ScalarType::kF32, kir::ArgKind::kBufferWO);
  kir::Val n = kb.ArgScalar("n", kir::ScalarType::kI32);
  kir::Val x = kb.Var(kir::F32(), "x");
  kb.Assign(x, kb.ConstF(kir::F32(), 1.0));
  kb.For("i", kb.ConstI(kir::I32(), 0), n, 1, [&](kir::Val) {
    kb.Assign(x, kb.Fma(x, kb.ConstF(kir::F32(), 0.5), kb.ConstF(kir::F32(), 0.25)));
  });
  kb.Store(out, kb.ConstI(kir::I32(), 0), x);
  return *kb.Build();
}

void BM_InterpreterArithLoop(benchmark::State& state) {
  const kir::Program p = ArithLoopKernel();
  const std::int32_t trips = static_cast<std::int32_t>(state.range(0));
  float out = 0;
  for (auto _ : state) {
    kir::Bindings b;
    b.buffers = {{reinterpret_cast<std::byte*>(&out), 0x1000, 4}};
    b.scalars = {kir::ScalarValue::I32V(trips)};
    auto run = kir::RunProgram(p, kir::LaunchConfig{}, std::move(b));
    benchmark::DoNotOptimize(run->ops.Total());
  }
  // ~3 instructions per trip (fma + loop bookkeeping).
  state.SetItemsProcessed(state.iterations() * trips * 3);
}
BENCHMARK(BM_InterpreterArithLoop)->Arg(1000)->Arg(100000);

void BM_CacheProbe(benchmark::State& state) {
  sim::CacheModel cache(sim::CacheConfig{1 << 20, 64, 16, true});
  std::uint64_t addr = 0;
  for (auto _ : state) {
    addr = (addr + 64) & ((1 << 26) - 1);
    benchmark::DoNotOptimize(cache.Access(addr, 4, false).misses);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheProbe);

void BM_MaliDeviceVecAdd(benchmark::State& state) {
  kir::KernelBuilder kb("vecadd4");
  auto a = kb.ArgBuffer("a", kir::ScalarType::kF32, kir::ArgKind::kBufferRO);
  auto c = kb.ArgBuffer("c", kir::ScalarType::kF32, kir::ArgKind::kBufferWO);
  kir::Val base = kb.Binary(kir::Opcode::kMul, kb.GlobalId(0),
                            kb.ConstI(kir::I32(), 4));
  kb.Store(c, base, kb.Load(a, base, 0, 4) + 1.0);
  const kir::Program p = *kb.Build();
  auto compiled =
      mali::CompileForMali(p, mali::MaliTimingParams(), mali::MaliCompilerParams());

  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  std::vector<float> in(n, 1.0f), out_data(n, 0.0f);
  mali::MaliT604Device device;
  kir::LaunchConfig config;
  config.global_size = {n / 4, 1, 1};
  config.local_size = {128, 1, 1};
  for (auto _ : state) {
    kir::Bindings b;
    b.buffers = {
        {reinterpret_cast<std::byte*>(in.data()), 0x100000, n * 4},
        {reinterpret_cast<std::byte*>(out_data.data()), 0x900000, n * 4}};
    auto run = device.Run(*compiled, config, std::move(b));
    benchmark::DoNotOptimize(run->seconds);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MaliDeviceVecAdd)->Arg(1 << 14)->Arg(1 << 18);

void BM_A15DeviceLoop(benchmark::State& state) {
  const kir::Program p = ArithLoopKernel();
  cpu::CortexA15Device device;
  float out = 0;
  for (auto _ : state) {
    kir::Bindings b;
    b.buffers = {{reinterpret_cast<std::byte*>(&out), 0x1000, 4}};
    b.scalars = {kir::ScalarValue::I32V(static_cast<std::int32_t>(state.range(0)))};
    kir::LaunchConfig config;
    auto run = device.Run(p, config, std::move(b), 1);
    benchmark::DoNotOptimize(run->seconds);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 3);
}
BENCHMARK(BM_A15DeviceLoop)->Arg(100000);

/// Per-work-item compute loop: interpretation heavily dominates the
/// (serial) cache replay, so this is where host-thread scaling shows.
kir::Program PerItemLoopKernel(std::int32_t trips) {
  kir::KernelBuilder kb("item_loop");
  auto out = kb.ArgBuffer("out", kir::ScalarType::kF32, kir::ArgKind::kBufferWO);
  kir::Val x = kb.Var(kir::F32(), "x");
  kb.Assign(x, kb.Convert(kb.GlobalId(0), kir::ScalarType::kF32));
  kb.For("i", kb.ConstI(kir::I32(), 0), kb.ConstI(kir::I32(), trips), 1,
         [&](kir::Val) {
           kb.Assign(x, kb.Fma(x, kb.ConstF(kir::F32(), 0.5),
                               kb.ConstF(kir::F32(), 0.25)));
         });
  kb.Store(out, kb.GlobalId(0), x);
  return *kb.Build();
}

/// Thread-count sweep of the parallel Mali engine (arg0 = host threads).
/// Results are bit-identical across the sweep; only wall time changes.
void BM_MaliEngineThreadSweep(benchmark::State& state) {
  const kir::Program p = PerItemLoopKernel(512);
  auto compiled = mali::CompileForMali(p, mali::MaliTimingParams(),
                                       mali::MaliCompilerParams());
  const std::uint64_t n = 1 << 14;
  std::vector<float> out_data(n, 0.0f);
  mali::MaliT604Device device;
  SimOptions options;
  options.threads = static_cast<int>(state.range(0));
  device.set_sim_options(options);
  kir::LaunchConfig config;
  config.global_size = {n, 1, 1};
  config.local_size = {128, 1, 1};
  for (auto _ : state) {
    kir::Bindings b;
    b.buffers = {{reinterpret_cast<std::byte*>(out_data.data()), 0x100000, n * 4}};
    auto run = device.Run(*compiled, config, std::move(b));
    benchmark::DoNotOptimize(run->seconds);
  }
  state.SetItemsProcessed(state.iterations() * n * 512);
}
BENCHMARK(BM_MaliEngineThreadSweep)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

/// Same sweep for a memory-heavy kernel: replay of the recorded access
/// streams bounds the speedup (Amdahl), so this tracks the overhead side.
void BM_MaliEngineThreadSweepVecAdd(benchmark::State& state) {
  kir::KernelBuilder kb("vecadd_sweep");
  auto a = kb.ArgBuffer("a", kir::ScalarType::kF32, kir::ArgKind::kBufferRO);
  auto c = kb.ArgBuffer("c", kir::ScalarType::kF32, kir::ArgKind::kBufferWO);
  kb.Store(c, kb.GlobalId(0), kb.Load(a, kb.GlobalId(0), 0, 1) + 1.0);
  const kir::Program p = *kb.Build();
  auto compiled = mali::CompileForMali(p, mali::MaliTimingParams(),
                                       mali::MaliCompilerParams());
  const std::uint64_t n = 1 << 18;
  std::vector<float> in(n, 1.0f), out_data(n, 0.0f);
  mali::MaliT604Device device;
  SimOptions options;
  options.threads = static_cast<int>(state.range(0));
  device.set_sim_options(options);
  kir::LaunchConfig config;
  config.global_size = {n, 1, 1};
  config.local_size = {128, 1, 1};
  for (auto _ : state) {
    kir::Bindings b;
    b.buffers = {
        {reinterpret_cast<std::byte*>(in.data()), 0x100000, n * 4},
        {reinterpret_cast<std::byte*>(out_data.data()), 0x900000, n * 4}};
    auto run = device.Run(*compiled, config, std::move(b));
    benchmark::DoNotOptimize(run->seconds);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MaliEngineThreadSweepVecAdd)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

/// Thread-count sweep of the parallel A15 engine (2 modelled cores).
void BM_A15EngineThreadSweep(benchmark::State& state) {
  const kir::Program p = PerItemLoopKernel(512);
  const std::uint64_t n = 1 << 14;
  std::vector<float> out_data(n, 0.0f);
  cpu::CortexA15Device device;
  SimOptions options;
  options.threads = static_cast<int>(state.range(0));
  device.set_sim_options(options);
  kir::LaunchConfig config;
  config.global_size = {n, 1, 1};
  config.local_size = {64, 1, 1};
  for (auto _ : state) {
    kir::Bindings b;
    b.buffers = {{reinterpret_cast<std::byte*>(out_data.data()), 0x100000, n * 4}};
    auto run = device.Run(p, config, std::move(b), cpu::CortexA15Device::kMaxCores);
    benchmark::DoNotOptimize(run->seconds);
  }
  state.SetItemsProcessed(state.iterations() * n * 512);
}
BENCHMARK(BM_A15EngineThreadSweep)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

/// Instrumentation-overhead sweep: the same Mali device run with
/// observability off (arg 0), counters only (arg 1), and counters + trace
/// export per iteration (arg 2). The counter Q (ISSUE acceptance): the
/// counter path must stay within 15% of the uninstrumented rate — compare
/// the items_per_second of modes 0 and 1, or the obs_mode counter in the
/// JSON output. Mode 2 additionally prices the export sinks (BuildTrace +
/// ToJson per iteration), which real profiling runs pay once, not per
/// kernel.
void BM_MaliDeviceObsMode(benchmark::State& state) {
  const kir::Program p = PerItemLoopKernel(256);
  auto compiled = mali::CompileForMali(p, mali::MaliTimingParams(),
                                       mali::MaliCompilerParams());
  const std::uint64_t n = 1 << 14;
  std::vector<float> out_data(n, 0.0f);
  mali::MaliT604Device device;
  kir::LaunchConfig config;
  config.global_size = {n, 1, 1};
  config.local_size = {128, 1, 1};

  const int mode = static_cast<int>(state.range(0));
  obs::ObsOptions options;
  options.trace = mode >= 2;
  const power::PowerModel model;

  std::uint64_t kernels_recorded = 0;
  for (auto _ : state) {
    // A fresh recorder per iteration keeps the record set (and the mode-2
    // trace build) proportional to one kernel launch instead of growing
    // with the iteration count.
    std::optional<obs::Recorder> recorder;
    if (mode >= 1) {
      recorder.emplace(options);
      device.set_recorder(&*recorder);
    }
    kir::Bindings b;
    b.buffers = {
        {reinterpret_cast<std::byte*>(out_data.data()), 0x100000, n * 4}};
    auto run = device.Run(*compiled, config, std::move(b));
    benchmark::DoNotOptimize(run->seconds);
    if (mode >= 2) {
      obs::TraceBuilder trace;
      obs::BuildTrace(*recorder, model, &trace);
      benchmark::DoNotOptimize(trace.ToJson().size());
    }
    if (recorder.has_value()) {
      kernels_recorded += recorder->kernels().size();
      device.set_recorder(nullptr);
    }
  }
  state.SetItemsProcessed(state.iterations() * n * 256);
  state.counters["obs_mode"] = mode;
  state.counters["kernels_recorded"] = static_cast<double>(kernels_recorded);
}
BENCHMARK(BM_MaliDeviceObsMode)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

BENCHMARK_MAIN();
