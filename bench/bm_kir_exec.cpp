// Head-to-head microbenchmark of the two KIR execution engines: the
// reference tree-walking interpreter (`--kir-exec=interp`) versus the
// register-based fused bytecode VM (`--kir-exec=bytecode`, the default).
// The three kernels mirror the hottest shapes in the figure sweeps — a
// dmmm-style fma reduction, an nbody-style inverse-sqrt force loop, and a
// conv-style vectorised tap accumulation — so items/sec here tracks the
// sim_throughput the full benchmarks see. Both engines produce bit-identical
// modelled results (pinned by tests/kir/vm_diff_fuzz_test); only host-side
// speed differs, and the ISSUE acceptance bar is bytecode >= 3x interp on
// these interpreter-bound shapes.
// A plain run is a google-benchmark binary; `--bench-json=PATH` instead
// emits the standard schema-versioned BENCH record (one sim_throughput
// sweep per kernel x engine) so malisim-bench can gate the VM's floor.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/version.h"
#include "kir/builder.h"
#include "kir/interp.h"
#include "obs/bench_report.h"

namespace {

using namespace malisim;

constexpr std::uint64_t kItems = 256;   // work items per launch
constexpr std::uint64_t kLocal = 64;    // work-group size
constexpr std::int32_t kTrips = 256;    // inner-loop trip count

// dmmm inner product, float4-vectorized like the paper's OpenCL-opt
// variant: acc4 = fma(vload4(a, k), vload4(b, k), acc4) over k.
kir::Program DmmmKernel() {
  kir::KernelBuilder kb("bm_dmmm");
  auto a = kb.ArgBuffer("a", kir::ScalarType::kF32, kir::ArgKind::kBufferRO);
  auto b = kb.ArgBuffer("b", kir::ScalarType::kF32, kir::ArgKind::kBufferRO);
  auto c = kb.ArgBuffer("c", kir::ScalarType::kF32, kir::ArgKind::kBufferWO);
  kir::Val gid = kb.GlobalId(0);
  kir::Val acc = kb.Var(kir::F32(4), "acc");
  kb.Assign(acc, kb.ConstF(kir::F32(4), 0.0));
  kb.For("k", kb.ConstI(kir::I32(), 0), kb.ConstI(kir::I32(), kTrips), 4,
         [&](kir::Val k) {
           kb.Assign(acc, kb.Fma(kb.Load(a, k, 0, 4), kb.Load(b, k, 0, 4),
                                 acc));
         });
  kb.Store(c, gid, kb.VSum(acc));
  return *kb.Build();
}

// dmmm inner product, scalar like the paper's unoptimized OpenCL baseline:
// acc += a[k] * b[k] one element per trip. The most interpreter-bound shape
// in the suite — no vector math to amortize the per-instruction overhead.
kir::Program DmmmScalarKernel() {
  kir::KernelBuilder kb("bm_dmmm_base");
  auto a = kb.ArgBuffer("a", kir::ScalarType::kF32, kir::ArgKind::kBufferRO);
  auto b = kb.ArgBuffer("b", kir::ScalarType::kF32, kir::ArgKind::kBufferRO);
  auto c = kb.ArgBuffer("c", kir::ScalarType::kF32, kir::ArgKind::kBufferWO);
  kir::Val gid = kb.GlobalId(0);
  kir::Val acc = kb.Var(kir::F32(), "acc");
  kb.Assign(acc, kb.ConstF(kir::F32(), 0.0));
  kb.For("k", kb.ConstI(kir::I32(), 0), kb.ConstI(kir::I32(), kTrips), 1,
         [&](kir::Val k) {
           kb.Assign(acc, kb.Fma(kb.Load(a, k), kb.Load(b, k), acc));
         });
  kb.Store(c, gid, acc);
  return *kb.Build();
}

// nbody force accumulation over float4 position chunks:
// dx4 = vload4(pos, j) - xi4; acc4 += dx4 / sqrt(dx4*dx4 + eps).
kir::Program NbodyKernel() {
  kir::KernelBuilder kb("bm_nbody");
  auto pos = kb.ArgBuffer("pos", kir::ScalarType::kF32, kir::ArgKind::kBufferRO);
  auto out = kb.ArgBuffer("out", kir::ScalarType::kF32, kir::ArgKind::kBufferWO);
  kir::Val gid = kb.GlobalId(0);
  kir::Val xi = kb.Splat(kb.Load(pos, gid), 4);
  kir::Val eps = kb.ConstF(kir::F32(4), 1e-3);  // softening, loop-invariant
  kir::Val acc = kb.Var(kir::F32(4), "acc");
  kb.Assign(acc, kb.ConstF(kir::F32(4), 0.0));
  kb.For("j", kb.ConstI(kir::I32(), 0), kb.ConstI(kir::I32(), kTrips), 4,
         [&](kir::Val j) {
           kir::Val dx = kb.Load(pos, j, 0, 4) - xi;
           kir::Val dist = kb.Sqrt(kb.Fma(dx, dx, eps));
           kb.Assign(acc, acc + kb.Binary(kir::Opcode::kDiv, dx, dist));
         });
  kb.Store(out, gid, kb.VSum(acc));
  return *kb.Build();
}

// conv tap loop on 4-wide vectors: vacc = fma(v, splat(w[t]), vacc).
kir::Program ConvVecKernel() {
  kir::KernelBuilder kb("bm_conv");
  auto in = kb.ArgBuffer("in", kir::ScalarType::kF32, kir::ArgKind::kBufferRO);
  auto w = kb.ArgBuffer("w", kir::ScalarType::kF32, kir::ArgKind::kBufferRO);
  auto out = kb.ArgBuffer("out", kir::ScalarType::kF32, kir::ArgKind::kBufferWO);
  kir::Val gid = kb.GlobalId(0);
  kir::Val v = kb.Splat(kb.Load(in, gid), 4);
  kir::Val vacc = kb.Var(kir::F32(4), "vacc");
  kb.Assign(vacc, kb.ConstF(kir::F32(4), 0.0));
  kb.For("t", kb.ConstI(kir::I32(), 0), kb.ConstI(kir::I32(), kTrips), 1,
         [&](kir::Val t) {
           kb.Assign(vacc, kb.Fma(v, kb.Splat(kb.Load(w, t), 4), vacc));
         });
  kb.Store(out, gid, kb.VSum(vacc));
  return *kb.Build();
}

void RunEngine(benchmark::State& state, const kir::Program& p,
               std::size_t num_ro, KirExec engine) {
  std::vector<float> ro(1024, 1.0f);
  std::vector<float> wo(1024, 0.0f);
  kir::LaunchConfig config;
  config.global_size = {kItems, 1, 1};
  config.local_size = {kLocal, 1, 1};
  std::uint64_t ops = 0;
  for (auto _ : state) {
    kir::Bindings b;
    for (std::size_t i = 0; i < num_ro; ++i) {
      b.buffers.push_back({reinterpret_cast<std::byte*>(ro.data()),
                           0x100000 + 0x10000 * i, ro.size() * 4});
    }
    b.buffers.push_back({reinterpret_cast<std::byte*>(wo.data()), 0x900000,
                         wo.size() * 4});
    auto run = kir::RunProgram(p, config, std::move(b), engine);
    if (!run.ok()) {
      state.SkipWithError(run.status().ToString().c_str());
      return;
    }
    ops = run->ops.Total();
    benchmark::DoNotOptimize(ops);
  }
  // items/sec == simulated KIR instructions per host second, the number the
  // full sweeps call sim_throughput.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ops));
}

void BM_Dmmm(benchmark::State& state, KirExec engine) {
  RunEngine(state, DmmmKernel(), 2, engine);
}
void BM_DmmmBase(benchmark::State& state, KirExec engine) {
  RunEngine(state, DmmmScalarKernel(), 2, engine);
}
void BM_Nbody(benchmark::State& state, KirExec engine) {
  RunEngine(state, NbodyKernel(), 1, engine);
}
void BM_ConvVec(benchmark::State& state, KirExec engine) {
  RunEngine(state, ConvVecKernel(), 2, engine);
}

BENCHMARK_CAPTURE(BM_Dmmm, interp, KirExec::kInterp);
BENCHMARK_CAPTURE(BM_Dmmm, bytecode, KirExec::kBytecode);
BENCHMARK_CAPTURE(BM_DmmmBase, interp, KirExec::kInterp);
BENCHMARK_CAPTURE(BM_DmmmBase, bytecode, KirExec::kBytecode);
BENCHMARK_CAPTURE(BM_Nbody, interp, KirExec::kInterp);
BENCHMARK_CAPTURE(BM_Nbody, bytecode, KirExec::kBytecode);
BENCHMARK_CAPTURE(BM_ConvVec, interp, KirExec::kInterp);
BENCHMARK_CAPTURE(BM_ConvVec, bytecode, KirExec::kBytecode);

// --bench-json mode: a fixed-repetition sweep per kernel x engine, emitted
// as sim_throughput entries through the standard BENCH record writer. The
// deterministic totals (work_items / opcodes / launches) obey the record's
// byte-identity contract; only the host_* rates carry wall-clock.
int EmitBenchJson(const std::string& path) {
  constexpr int kLaunches = 16;
  struct Shape {
    const char* name;
    kir::Program program;
    std::size_t num_ro;
  };
  const Shape shapes[] = {{"dmmm", DmmmKernel(), 2},
                          {"dmmm_base", DmmmScalarKernel(), 2},
                          {"nbody", NbodyKernel(), 1},
                          {"conv", ConvVecKernel(), 2}};
  std::vector<obs::SimThroughput> sweeps;
  for (const Shape& shape : shapes) {
    for (const KirExec engine : {KirExec::kInterp, KirExec::kBytecode}) {
      std::vector<float> ro(1024, 1.0f);
      std::vector<float> wo(1024, 0.0f);
      kir::LaunchConfig config;
      config.global_size = {kItems, 1, 1};
      config.local_size = {kLocal, 1, 1};
      obs::SimThroughput t;
      t.sweep = std::string(shape.name) +
                (engine == KirExec::kInterp ? "/interp" : "/bytecode");
      const auto start = std::chrono::steady_clock::now();
      for (int i = 0; i < kLaunches; ++i) {
        kir::Bindings b;
        for (std::size_t r = 0; r < shape.num_ro; ++r) {
          b.buffers.push_back({reinterpret_cast<std::byte*>(ro.data()),
                               0x100000 + 0x10000 * r, ro.size() * 4});
        }
        b.buffers.push_back({reinterpret_cast<std::byte*>(wo.data()),
                             0x900000, wo.size() * 4});
        auto run = kir::RunProgram(shape.program, config, std::move(b), engine);
        if (!run.ok()) {
          std::fprintf(stderr, "%s: %s\n", t.sweep.c_str(),
                       run.status().ToString().c_str());
          return 1;
        }
        t.opcodes += run->ops.Total();
        t.work_items += run->work_items;
        ++t.launches;
      }
      t.host_sec = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
      if (t.host_sec > 0) {
        t.work_items_per_host_sec = static_cast<double>(t.work_items) / t.host_sec;
        t.opcodes_per_host_sec = static_cast<double>(t.opcodes) / t.host_sec;
      }
      sweeps.push_back(t);
    }
  }
  obs::BenchReportMeta meta;
  meta.name = "bm_kir_exec";
  meta.git_sha = GitSha();
  // No fault plan applies at the bare-executor level; provenance only.
  meta.fault_plan_hash = "0000000000000000";
  meta.options = {{"launches", std::to_string(kLaunches)},
                  {"trips", std::to_string(kTrips)}};
  const Status written =
      obs::WriteBenchReport(meta, {}, {}, obs::MetricsSnapshot{}, path, sweeps);
  if (!written.ok()) {
    std::fprintf(stderr, "bench-json error: %s\n", written.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "BENCH record written to %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--bench-json=", 0) == 0) {
      return EmitBenchJson(arg.substr(13));
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
