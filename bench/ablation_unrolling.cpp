// Ablation A4 — §III-B "Loop Unrolling".
//
// The paper: unrolling "usually leads to an increase in the performance on
// relatively long loops", but "in case the number of iterations is not a
// perfect multiple of the vector size, the overhead due to the correct
// handling of the last iterations of the loop has to be considered", and
// "code replication can also lead to performance degradation".
//
// This bench sweeps the unroll factor of a dot-product loop, for a trip
// count that divides evenly and one that leaves a remainder.
//
// Usage: ablation_unrolling [--csv]
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.h"
#include "kir/builder.h"
#include "ocl/runtime.h"

namespace {

using namespace malisim;

kir::Program PolyKernel(int unroll, std::int64_t trip) {
  // Horner-style polynomial evaluation: one fma per iteration, no loads —
  // the loop-control overhead is the whole story, which is what unrolling
  // removes. (A load-heavy loop is LS-pipe bound and unrolling is moot.)
  kir::KernelBuilder kb("poly_u" + std::to_string(unroll) + "_t" +
                        std::to_string(trip));
  auto x = kb.ArgBuffer("x", kir::ScalarType::kF32, kir::ArgKind::kBufferRO,
                        true, true);
  auto out = kb.ArgBuffer("out", kir::ScalarType::kF32,
                          kir::ArgKind::kBufferWO, true, false);
  kir::Val gid = kb.GlobalId(0);
  kir::Val xv = kb.Load(x, gid);
  kir::Val c = kb.ConstF(kir::F32(), 0.9999);
  kir::Val acc = kb.Var(kir::F32(), "acc");
  kb.Assign(acc, xv);
  auto body = [&](kir::Val) { kb.Assign(acc, kb.Fma(acc, c, xv)); };
  kir::Val zero = kb.ConstI(kir::I32(), 0);
  kir::Val end = kb.ConstI(kir::I32(), trip);
  if (unroll > 1) {
    kb.ForUnrolled("i", zero, end, 1, unroll, body);
  } else {
    kb.For("i", zero, end, 1, body);
  }
  kb.Store(out, gid, acc);
  return *kb.Build();
}

double Run(const kir::Program& source, std::uint64_t items) {
  ocl::Context ctx;
  auto x = ctx.CreateBuffer(ocl::kMemReadWrite | ocl::kMemAllocHostPtr, items * 4);
  auto out = ctx.CreateBuffer(ocl::kMemReadWrite | ocl::kMemAllocHostPtr, items * 4);
  MALI_CHECK(x.ok() && out.ok());
  std::vector<kir::Program> kernels;
  kernels.push_back(source);
  auto prog = ctx.CreateProgram(std::move(kernels));
  MALI_CHECK(prog->Build().ok());
  auto kernel = ctx.CreateKernel(prog, source.name);
  MALI_CHECK(kernel.ok());
  MALI_CHECK((*kernel)->SetArgBuffer(0, *x).ok());
  MALI_CHECK((*kernel)->SetArgBuffer(1, *out).ok());
  const std::uint64_t global[1] = {items};
  const std::uint64_t local[1] = {128};
  auto event = ctx.queue().EnqueueNDRange(**kernel, 1, global, local);
  MALI_CHECK(event.ok());
  return event->seconds * 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::string(argv[1]) == "--csv";
  const std::uint64_t items = 65536;
  std::printf("== Ablation A4: §III-B loop unrolling (polynomial loop) ==\n");
  malisim::Table table({"unroll", "trip=256 (ms)", "trip=250, remainder (ms)"});
  for (int unroll : {1, 2, 4, 8, 16}) {
    table.BeginRow();
    table.AddCell(std::to_string(unroll));
    table.AddNumber(Run(PolyKernel(unroll, 256), items), 3);
    table.AddNumber(Run(PolyKernel(unroll, 250), items), 3);
  }
  std::printf("%s\n", csv ? table.ToCsv().c_str() : table.ToAscii().c_str());
  std::printf(
      "paper expectation: unrolling trims loop-control overhead; the\n"
      "non-multiple trip count pays a remainder-loop tax at high factors.\n");
  return 0;
}
