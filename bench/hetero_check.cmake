# End-to-end checks of the heterogeneous co-execution backend, run by ctest:
#   1. --device=hetero --hetero-ratio=1 must reproduce the pure-Mali figures
#      of merit (every shared cell metric equal within 1e-6 relative),
#   2. --device=hetero --hetero-ratio=0 must reproduce the pure-A15 figures
#      of merit the same way, and
#   3. a self-tuned hetero run must stay within the regression threshold of
#      the committed results/baseline_hetero.json.
# Endpoint runs are --fp32: the hetero context keeps the Mali compiler
# configuration (fp64 erratum), so amcd/fp64 is unavailable under hetero but
# available under --device=a15 — comparing fp32 keeps the cell sets aligned.
# Aggregated counters/histograms/gauges and the sim_throughput sections are
# excluded from the endpoint equality check (huge prefix thresholds): the
# hetero run records the extra Hetero-column launches and meter windows on
# top of the shared variants, and the _host rates are wall-clock.
# Driven via -DFIG2=... -DBENCH=... -DOUT_DIR=... -DBASELINE=... -P this-file.
foreach(var FIG2 BENCH OUT_DIR BASELINE)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "hetero_check: -D${var}=... is required")
  endif()
endforeach()

file(MAKE_DIRECTORY "${OUT_DIR}")
set(neutral_aggregates
  "--threshold-spec=counter/=1e18,hist/=1e18,gauge/=1e18,sim_throughput/=1e18,sim_throughput_host/=1e18")

function(run_fig2 out_json)
  execute_process(
    COMMAND "${FIG2}" --quick --threads=1 "--bench-json=${out_json}" ${ARGN}
    RESULT_VARIABLE rc OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "fig2_performance ${ARGN} failed (exit ${rc})")
  endif()
endfunction()

function(expect_match baseline candidate what)
  execute_process(
    COMMAND "${BENCH}" "--baseline=${baseline}" "--candidate=${candidate}"
      --threshold=0.000001 "${neutral_aggregates}"
    RESULT_VARIABLE rc OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "${what}: malisim-bench exited ${rc}, want 0 — the hetero endpoint "
      "does not reproduce the single-backend figures of merit")
  endif()
endfunction()

run_fig2("${OUT_DIR}/mali_fp32.json" --fp32)
run_fig2("${OUT_DIR}/a15_fp32.json" --fp32 --device=a15)
run_fig2("${OUT_DIR}/hetero_r1.json" --fp32 --device=hetero --hetero-ratio=1)
run_fig2("${OUT_DIR}/hetero_r0.json" --fp32 --device=hetero --hetero-ratio=0)

expect_match("${OUT_DIR}/mali_fp32.json" "${OUT_DIR}/hetero_r1.json"
  "hetero ratio=1 vs pure Mali")
expect_match("${OUT_DIR}/a15_fp32.json" "${OUT_DIR}/hetero_r0.json"
  "hetero ratio=0 vs pure A15")

# Self-tuned hetero run (both precisions) against the committed baseline,
# with the same 5% gate the default-device CI step uses.
run_fig2("${OUT_DIR}/hetero_auto.json" --device=hetero)
execute_process(
  COMMAND "${BENCH}" "--baseline=${BASELINE}"
    "--candidate=${OUT_DIR}/hetero_auto.json" --threshold=0.05
  RESULT_VARIABLE rc_base OUTPUT_QUIET)
if(NOT rc_base EQUAL 0)
  message(FATAL_ERROR
    "self-tuned hetero run regressed against results/baseline_hetero.json "
    "(malisim-bench exit ${rc_base})")
endif()

message(STATUS
  "hetero_check: ratio endpoints match single backends, baseline gate OK")
