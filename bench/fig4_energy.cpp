// Regenerates Fig. 4 of the paper: energy-to-solution of each version
// normalized to the Serial version, per benchmark, in single (4a) and
// double (4b) precision.
//
// Usage: fig4_energy [--fp32|--fp64] [--csv] [--quick] [--seed=N]
//                    [--bench-json=PATH]
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace mb = malisim::bench;
namespace mh = malisim::harness;

namespace {

int RunPrecision(const mb::BenchOptions& options, bool fp64,
                 std::vector<mb::SweepData>* sweeps) {
  const malisim::Status run = mb::RunSweepInto(options, fp64, sweeps);
  if (!run.ok()) {
    std::fprintf(stderr, "error: %s\n", run.ToString().c_str());
    return 1;
  }
  const std::vector<mh::BenchmarkResults>& results = sweeps->back().results;
  const char* sub =
      fp64 ? "Fig. 4(b) double-precision" : "Fig. 4(a) single-precision";
  const malisim::Table table = mh::Fig4Energy(results);
  if (options.csv) {
    std::printf("# %s energy-to-solution normalized to Serial\n%s\n", sub,
                table.ToCsv().c_str());
    return 0;
  }
  std::printf("%s\n",
              mh::RenderFigure(
                  std::string(sub) + ": energy-to-solution normalized to Serial",
                  table, results)
                  .c_str());
  if (!fp64) {
    std::printf("paper vs model:\n%s\n",
                mb::CompareWithPaper(results, mb::Fig4aEnergy(),
                                     &mh::BenchmarkResults::EnergyVsSerial, 2)
                    .c_str());
  }
  const mh::Summary summary = mh::ComputeSummary(results);
  std::printf(
      "summary (%s): OpenMP speedup %.2fx (paper ~1.7x SP), OpenMP power "
      "%.2fx (paper ~1.31x SP), OpenCL energy %.2f (paper ~0.56), Opt "
      "speedup %.2fx, Opt energy %.2f (paper 0.28 SP / 0.36 DP)\n\n",
      fp64 ? "fp64" : "fp32", summary.openmp_avg_speedup,
      summary.openmp_avg_power, summary.opencl_avg_energy,
      summary.openclopt_avg_speedup, summary.openclopt_avg_energy);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const mb::BenchOptions options = mb::ParseOptions(argc, argv);
  std::vector<mb::SweepData> sweeps;
  int rc = 0;
  if (options.run_fp32) rc |= RunPrecision(options, false, &sweeps);
  if (options.run_fp64) rc |= RunPrecision(options, true, &sweeps);
  if (rc == 0) {
    const malisim::Status written =
        mb::WriteBenchJson(options, "fig4_energy", sweeps);
    if (!written.ok()) {
      std::fprintf(stderr, "bench-json error: %s\n",
                   written.ToString().c_str());
      rc = 1;
    }
  }
  return rc;
}
