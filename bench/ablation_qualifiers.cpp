// Ablation A5 — §III-B "Directives and Type Qualifiers".
//
// The paper: "the use of the const keyword allows the compiler to make more
// assumptions", and "the restrict qualifier ... enables the compiler to
// assume that pointers point to different locations helping to limit the
// effects of pointer aliasing". The model grants the kernel compiler a
// scheduling bonus when the aliasing/constness guarantees are present.
//
// Usage: ablation_qualifiers [--csv]
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.h"
#include "kir/builder.h"
#include "ocl/runtime.h"

namespace {

using namespace malisim;

kir::Program MatMulKernel(bool use_restrict, bool use_const) {
  std::string name = "dmmm";
  if (use_restrict) name += "_restrict";
  if (use_const) name += "_const";
  kir::KernelBuilder kb(name);
  auto a = kb.ArgBuffer("a", kir::ScalarType::kF32, kir::ArgKind::kBufferRO,
                        use_restrict, use_const);
  auto b = kb.ArgBuffer("b", kir::ScalarType::kF32, kir::ArgKind::kBufferRO,
                        use_restrict, use_const);
  auto c = kb.ArgBuffer("c", kir::ScalarType::kF32, kir::ArgKind::kBufferWO,
                        use_restrict, false);
  kir::Val n = kb.ArgScalar("n", kir::ScalarType::kI32);
  kir::Val i = kb.GlobalId(1);
  kir::Val j4 = kb.Binary(kir::Opcode::kMul, kb.GlobalId(0),
                          kb.ConstI(kir::I32(), 4));
  kir::Val row = kb.Binary(kir::Opcode::kMul, i, n);
  kir::Val acc = kb.Var(kir::F32(4), "acc");
  kb.Assign(acc, kb.ConstF(kir::F32(4), 0.0));
  kb.For("k", kb.ConstI(kir::I32(), 0), n, 1, [&](kir::Val k) {
    kir::Val av = kb.Splat(kb.Load(a, kb.Binary(kir::Opcode::kAdd, row, k)), 4);
    kir::Val bv = kb.Load(
        b, kb.Binary(kir::Opcode::kAdd, kb.Binary(kir::Opcode::kMul, k, n), j4),
        0, 4);
    kb.Assign(acc, kb.Fma(av, bv, acc));
  });
  kb.Store(c, kb.Binary(kir::Opcode::kAdd, row, j4), acc);
  return *kb.Build();
}

double Run(const kir::Program& source, std::uint64_t n) {
  ocl::Context ctx;
  auto a = ctx.CreateBuffer(ocl::kMemReadWrite | ocl::kMemAllocHostPtr, n * n * 4);
  auto b = ctx.CreateBuffer(ocl::kMemReadWrite | ocl::kMemAllocHostPtr, n * n * 4);
  auto c = ctx.CreateBuffer(ocl::kMemReadWrite | ocl::kMemAllocHostPtr, n * n * 4);
  MALI_CHECK(a.ok() && b.ok() && c.ok());
  std::vector<kir::Program> kernels;
  kernels.push_back(source);
  auto prog = ctx.CreateProgram(std::move(kernels));
  MALI_CHECK(prog->Build().ok());
  auto kernel = ctx.CreateKernel(prog, source.name);
  MALI_CHECK(kernel.ok());
  MALI_CHECK((*kernel)->SetArgBuffer(0, *a).ok());
  MALI_CHECK((*kernel)->SetArgBuffer(1, *b).ok());
  MALI_CHECK((*kernel)->SetArgBuffer(2, *c).ok());
  MALI_CHECK((*kernel)->SetArgI32(3, static_cast<std::int32_t>(n)).ok());
  const std::uint64_t global[2] = {n / 4, n};
  const std::uint64_t local[2] = {16, 16};
  auto event = ctx.queue().EnqueueNDRange(**kernel, 2, global, local);
  MALI_CHECK(event.ok());
  return event->seconds * 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::string(argv[1]) == "--csv";
  const std::uint64_t n = 192;
  std::printf("== Ablation A5: §III-B const/restrict qualifiers (dmmm %llux%llu) ==\n",
              static_cast<unsigned long long>(n), static_cast<unsigned long long>(n));
  const double base = Run(MatMulKernel(false, false), n);
  malisim::Table table({"qualifiers", "time (ms)", "speedup"});
  struct Case {
    const char* label;
    bool restrict_q, const_q;
  };
  for (const Case c : {Case{"none", false, false},
                       Case{"const", false, true},
                       Case{"restrict", true, false},
                       Case{"const + restrict", true, true}}) {
    const double ms = Run(MatMulKernel(c.restrict_q, c.const_q), n);
    table.BeginRow();
    table.AddCell(c.label);
    table.AddNumber(ms, 3);
    table.AddNumber(base / ms, 3);
  }
  std::printf("%s\n", csv ? table.ToCsv().c_str() : table.ToAscii().c_str());
  std::printf(
      "paper expectation: a modest but real gain once the compiler may\n"
      "assume no aliasing (restrict) and read-only inputs (const).\n");
  return 0;
}
