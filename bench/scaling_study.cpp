// Extension study — problem-size scaling (beyond the paper).
//
// The paper keeps each benchmark's problem size constant (§IV-D) and so
// reports a single operating point. This study sweeps the size for three
// representative benchmarks and reports where the GPU versions start to
// pay off: at small sizes the fixed driver/launch and Job-Manager costs
// dominate and the Serial CPU wins; the crossover is part of the full
// "should I offload?" answer an SoC programmer needs.
//
// Usage: scaling_study [--csv]
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.h"
#include "harness/experiment.h"

namespace {

using namespace malisim;

struct Point {
  std::string size_label;
  double speedup_cl = 0;
  double speedup_opt = 0;
  double energy_opt = 0;
};

Point RunPoint(const std::string& bench, const hpc::ProblemSizes& sizes,
               const std::string& label) {
  harness::ExperimentConfig config;
  config.sizes = sizes;
  config.repetitions = 3;
  harness::ExperimentRunner runner(config);
  auto results = runner.RunBenchmark(bench);
  MALI_CHECK(results.ok());
  Point p;
  p.size_label = label;
  p.speedup_cl = results->SpeedupVsSerial(hpc::Variant::kOpenCL);
  p.speedup_opt = results->SpeedupVsSerial(hpc::Variant::kOpenCLOpt);
  p.energy_opt = results->EnergyVsSerial(hpc::Variant::kOpenCLOpt);
  return p;
}

void Sweep(const std::string& bench,
           const std::vector<std::pair<std::string, hpc::ProblemSizes>>& points,
           bool csv) {
  std::printf("-- %s --\n", bench.c_str());
  Table table({"size", "OpenCL speedup", "Opt speedup", "Opt energy vs Serial"});
  for (const auto& [label, sizes] : points) {
    const Point p = RunPoint(bench, sizes, label);
    table.BeginRow();
    table.AddCell(p.size_label);
    table.AddNumber(p.speedup_cl, 2);
    table.AddNumber(p.speedup_opt, 2);
    table.AddNumber(p.energy_opt, 3);
  }
  std::printf("%s\n", csv ? table.ToCsv().c_str() : table.ToAscii().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::string(argv[1]) == "--csv";
  std::printf("== Extension: problem-size scaling (GPU payoff crossovers) ==\n\n");

  {
    std::vector<std::pair<std::string, hpc::ProblemSizes>> points;
    for (std::uint32_t n : {32u, 64u, 128u, 192u, 256u}) {
      hpc::ProblemSizes sizes;
      sizes.dmmm_n = n;
      points.push_back({std::to_string(n) + "^3", sizes});
    }
    Sweep("dmmm", points, csv);
  }
  {
    std::vector<std::pair<std::string, hpc::ProblemSizes>> points;
    for (std::uint32_t shift : {12u, 14u, 16u, 18u, 20u}) {
      hpc::ProblemSizes sizes;
      sizes.vecop_n = 1u << shift;
      points.push_back({"2^" + std::to_string(shift), sizes});
    }
    Sweep("vecop", points, csv);
  }
  {
    std::vector<std::pair<std::string, hpc::ProblemSizes>> points;
    for (std::uint32_t n : {256u, 512u, 1024u, 2048u}) {
      hpc::ProblemSizes sizes;
      sizes.nbody_n = n;
      points.push_back({std::to_string(n) + " bodies", sizes});
    }
    Sweep("nbody", points, csv);
  }
  std::printf(
      "reading: at small sizes the ~45 us kernel-launch overhead and the\n"
      "Job-Manager dispatch dominate and offloading loses; compute-dense\n"
      "kernels (dmmm, nbody) cross over far earlier than streaming ones.\n");
  return 0;
}
