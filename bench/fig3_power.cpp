// Regenerates Fig. 3 of the paper: board power consumption of each version
// normalized to the Serial version, per benchmark, in single (3a) and
// double (3b) precision, from the component power model driven by the
// modelled utilizations and sampled by the virtual Yokogawa WT230.
//
// Usage: fig3_power [--fp32|--fp64] [--csv] [--quick] [--seed=N]
//                   [--bench-json=PATH]
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace mb = malisim::bench;
namespace mh = malisim::harness;

namespace {

int RunPrecision(const mb::BenchOptions& options, bool fp64,
                 std::vector<mb::SweepData>* sweeps) {
  const malisim::Status run = mb::RunSweepInto(options, fp64, sweeps);
  if (!run.ok()) {
    std::fprintf(stderr, "error: %s\n", run.ToString().c_str());
    return 1;
  }
  const std::vector<mh::BenchmarkResults>& results = sweeps->back().results;
  const char* sub =
      fp64 ? "Fig. 3(b) double-precision" : "Fig. 3(a) single-precision";
  const malisim::Table table = mh::Fig3Power(results);
  if (options.csv) {
    std::printf("# %s power normalized to Serial\n%s\n", sub,
                table.ToCsv().c_str());
    return 0;
  }
  std::printf("%s\n",
              mh::RenderFigure(std::string(sub) + ": power normalized to Serial",
                               table, results)
                  .c_str());
  if (!fp64) {
    std::printf("paper vs model:\n%s\n",
                mb::CompareWithPaper(results, mb::Fig3aPower(),
                                     &mh::BenchmarkResults::PowerVsSerial, 2)
                    .c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const mb::BenchOptions options = mb::ParseOptions(argc, argv);
  std::vector<mb::SweepData> sweeps;
  int rc = 0;
  if (options.run_fp32) rc |= RunPrecision(options, false, &sweeps);
  if (options.run_fp64) rc |= RunPrecision(options, true, &sweeps);
  if (rc == 0) {
    const malisim::Status written =
        mb::WriteBenchJson(options, "fig3_power", sweeps);
    if (!written.ok()) {
      std::fprintf(stderr, "bench-json error: %s\n",
                   written.ToString().c_str());
      rc = 1;
    }
  }
  return rc;
}
