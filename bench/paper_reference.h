// Reference values transcribed from the paper's §V text and Figs. 2-4.
// Bars without a number in the text are approximate reads of the figures
// (marked by the comments); NaN = not reported / not applicable.
#pragma once

#include <cmath>
#include <limits>
#include <map>
#include <string>

namespace malisim::bench {

inline constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

struct PaperRow {
  double openmp;      // speedup / ratio vs Serial
  double opencl;
  double opencl_opt;
};

/// Fig. 2(a): single-precision speedup over Serial.
inline const std::map<std::string, PaperRow>& Fig2aSpeedup() {
  static const std::map<std::string, PaperRow> rows = {
      //            OpenMP  OpenCL  Opt
      {"spmv",   {1.7,  0.8,  1.25}},   // CL approximate (text: degradation)
      {"vecop",  {1.2,  0.9,  2.5}},    // CL/Opt approximate from figure
      {"hist",   {1.8,  0.8,  3.0}},    // approximate
      {"3dstc",  {1.8,  1.4,  3.4}},    // Opt approximate (2-4 band)
      {"red",    {1.7,  2.1,  3.0}},    // Opt approximate (2-4 band)
      {"amcd",   {1.9,  4.1,  4.7}},
      {"nbody",  {1.9,  17.2, 20.0}},
      {"2dcon",  {1.7,  3.6,  24.0}},
      {"dmmm",   {1.7,  6.2,  25.5}},
  };
  return rows;
}

/// Fig. 2(b): double-precision speedup over Serial. amcd GPU rows are
/// absent (compiler erratum).
inline const std::map<std::string, PaperRow>& Fig2bSpeedup() {
  static const std::map<std::string, PaperRow> rows = {
      {"spmv",   {1.7,  0.8,  1.5}},    // Opt "below 2x"
      {"vecop",  {1.2,  1.5,  1.8}},    // Opt "below 2x"
      {"hist",   {1.8,  0.9,  3.0}},
      {"3dstc",  {1.8,  1.6,  3.4}},
      {"red",    {1.7,  1.7,  1.9}},    // Opt "below 2x"
      {"amcd",   {1.9,  kNaN, kNaN}},
      {"nbody",  {1.9,  9.3,  10.0}},
      {"2dcon",  {1.7,  3.5,  9.6}},
      {"dmmm",   {1.7,  8.9,  30.0}},
  };
  return rows;
}

/// Fig. 3(a): single-precision power normalized to Serial. Only the values
/// the text states explicitly; the rest are approximate figure reads.
inline const std::map<std::string, PaperRow>& Fig3aPower() {
  static const std::map<std::string, PaperRow> rows = {
      {"spmv",   {1.30, 0.87, 0.88}},
      {"vecop",  {1.23, 0.93, 0.95}},
      {"hist",   {1.30, 0.81, 1.05}},   // Opt: "significant power increase"
      {"3dstc",  {1.30, 1.05, 1.05}},
      {"red",    {1.30, 1.10, 1.10}},
      {"amcd",   {1.35, 1.22, 1.22}},
      {"nbody",  {1.45, 1.15, 1.15}},
      {"2dcon",  {1.30, 1.10, 1.10}},
      {"dmmm",   {1.30, 1.22, 1.05}},   // Opt: "significant power reduction"
  };
  return rows;
}

/// Fig. 4(a): single-precision energy-to-solution normalized to Serial.
/// Text anchors: OpenMP avg 0.80; CL red 0.49, CL nbody 0.07; Opt spmv
/// 0.66, Opt dmmm 0.04; averages CL 0.56, Opt 0.28.
inline const std::map<std::string, PaperRow>& Fig4aEnergy() {
  static const std::map<std::string, PaperRow> rows = {
      {"spmv",   {0.80, 0.95, 0.66}},
      {"vecop",  {0.85, 0.90, 0.45}},
      {"hist",   {0.75, 0.90, 0.40}},
      {"3dstc",  {0.75, 0.85, 0.35}},
      {"red",    {0.80, 0.49, 0.35}},
      {"amcd",   {0.75, 0.28, 0.25}},
      {"nbody",  {0.80, 0.07, 0.06}},
      {"2dcon",  {0.80, 0.30, 0.05}},
      {"dmmm",   {0.80, 0.20, 0.04}},
  };
  return rows;
}

}  // namespace malisim::bench
