// Ablation A8 — §III-B "Memory Spaces": local-memory tiling on Mali.
//
// The paper: "dedicated GPUs from AMD and NVIDIA present an on-chip memory
// ... The OpenCL implementations map the local memory space to the on-chip
// memory, making the exploitation of memory locality at code level one of
// the most important factors ... Differently, Mali GPUs have a unified
// memory system where local memory is physically mapped to the global
// memory. For this reason traditional code locality optimizations are not
// required".
//
// This bench runs a matrix multiply three ways: the naive direct kernel,
// the desktop-GPU idiom (stage tiles of A and B into __local arrays behind
// barriers), and the Mali idiom the paper actually recommends instead —
// register blocking with float4 vectors, no __local at all (§III-B
// "Vectorization"). The comparison to make is desktop-idiom vs Mali-idiom:
// __local staging recovers some of the naive kernel's cache misses, but
// the register/vector version beats it while being simpler — locality
// tricks through __local are "not required".
//
// Usage: ablation_local_memory [--csv]
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.h"
#include "kir/builder.h"
#include "ocl/runtime.h"

namespace {

using namespace malisim;

constexpr int kTile = 16;  // work-group is kTile x kTile

/// Direct: C[i,j] accumulated straight from global A and B.
kir::Program DirectKernel() {
  kir::KernelBuilder kb("mm_direct");
  auto a = kb.ArgBuffer("a", kir::ScalarType::kF32, kir::ArgKind::kBufferRO,
                        true, true);
  auto b = kb.ArgBuffer("b", kir::ScalarType::kF32, kir::ArgKind::kBufferRO,
                        true, true);
  auto c = kb.ArgBuffer("c", kir::ScalarType::kF32, kir::ArgKind::kBufferWO,
                        true, false);
  kir::Val n = kb.ArgScalar("n", kir::ScalarType::kI32);
  kir::Val i = kb.GlobalId(1);
  kir::Val j = kb.GlobalId(0);
  kir::Val row = kb.Binary(kir::Opcode::kMul, i, n);
  kir::Val acc = kb.Var(kir::F32(), "acc");
  kb.Assign(acc, kb.ConstF(kir::F32(), 0.0));
  kb.For("k", kb.ConstI(kir::I32(), 0), n, 1, [&](kir::Val k) {
    kir::Val av = kb.Load(a, kb.Binary(kir::Opcode::kAdd, row, k));
    kir::Val bv = kb.Load(
        b, kb.Binary(kir::Opcode::kAdd, kb.Binary(kir::Opcode::kMul, k, n), j));
    kb.Assign(acc, kb.Fma(av, bv, acc));
  });
  kb.Store(c, kb.Binary(kir::Opcode::kAdd, row, j), acc);
  return *kb.Build();
}

/// Staged: the canonical CUDA/desktop-OpenCL tiled kernel, with __local
/// tiles for A and B refreshed every kTile steps behind barriers.
kir::Program TiledKernel() {
  kir::KernelBuilder kb("mm_local_tiled");
  auto a = kb.ArgBuffer("a", kir::ScalarType::kF32, kir::ArgKind::kBufferRO,
                        true, true);
  auto b = kb.ArgBuffer("b", kir::ScalarType::kF32, kir::ArgKind::kBufferRO,
                        true, true);
  auto c = kb.ArgBuffer("c", kir::ScalarType::kF32, kir::ArgKind::kBufferWO,
                        true, false);
  kir::Val n = kb.ArgScalar("n", kir::ScalarType::kI32);
  auto tile_a = kb.LocalArray("tile_a", kir::ScalarType::kF32, kTile * kTile);
  auto tile_b = kb.LocalArray("tile_b", kir::ScalarType::kF32, kTile * kTile);

  kir::Val li = kb.LocalId(1);
  kir::Val lj = kb.LocalId(0);
  kir::Val gi = kb.GlobalId(1);
  kir::Val gj = kb.GlobalId(0);
  kir::Val tiles = kb.Binary(kir::Opcode::kIDiv, n, kb.ConstI(kir::I32(), kTile));
  kir::Val tile_c = kb.ConstI(kir::I32(), kTile);
  kir::Val acc = kb.Var(kir::F32(), "acc");
  kb.Assign(acc, kb.ConstF(kir::F32(), 0.0));
  kir::Val local_idx =
      kb.Binary(kir::Opcode::kAdd, kb.Binary(kir::Opcode::kMul, li, tile_c), lj);

  kb.For("t", kb.ConstI(kir::I32(), 0), tiles, 1, [&](kir::Val t) {
    // Stage one kTile x kTile tile of A and of B.
    kir::Val kbase = kb.Binary(kir::Opcode::kMul, t, tile_c);
    kir::Val a_idx = kb.Binary(
        kir::Opcode::kAdd, kb.Binary(kir::Opcode::kMul, gi, n),
        kb.Binary(kir::Opcode::kAdd, kbase, lj));
    kir::Val b_idx = kb.Binary(
        kir::Opcode::kAdd,
        kb.Binary(kir::Opcode::kMul, kb.Binary(kir::Opcode::kAdd, kbase, li), n),
        gj);
    kb.Store(tile_a, local_idx, kb.Load(a, a_idx));
    kb.Store(tile_b, local_idx, kb.Load(b, b_idx));
    kb.Barrier();
    kb.For("k", kb.ConstI(kir::I32(), 0), tile_c, 1, [&](kir::Val k) {
      kir::Val av = kb.Load(
          tile_a, kb.Binary(kir::Opcode::kAdd,
                            kb.Binary(kir::Opcode::kMul, li, tile_c), k));
      kir::Val bv = kb.Load(
          tile_b, kb.Binary(kir::Opcode::kAdd,
                            kb.Binary(kir::Opcode::kMul, k, tile_c), lj));
      kb.Assign(acc, kb.Fma(av, bv, acc));
    });
    kb.Barrier();
  });
  kb.Store(c, kb.Binary(kir::Opcode::kAdd, kb.Binary(kir::Opcode::kMul, gi, n), gj),
           acc);
  return *kb.Build();
}

/// The Mali idiom (the paper's dmmm Opt shape): four outputs per work-item
/// with a float4 accumulator, straight from global memory.
kir::Program RegisterKernel() {
  kir::KernelBuilder kb("mm_register_vec4");
  auto a = kb.ArgBuffer("a", kir::ScalarType::kF32, kir::ArgKind::kBufferRO,
                        true, true);
  auto b = kb.ArgBuffer("b", kir::ScalarType::kF32, kir::ArgKind::kBufferRO,
                        true, true);
  auto c = kb.ArgBuffer("c", kir::ScalarType::kF32, kir::ArgKind::kBufferWO,
                        true, false);
  kir::Val n = kb.ArgScalar("n", kir::ScalarType::kI32);
  kir::Val i = kb.GlobalId(1);
  kir::Val j4 = kb.Binary(kir::Opcode::kMul, kb.GlobalId(0),
                          kb.ConstI(kir::I32(), 4));
  kir::Val row = kb.Binary(kir::Opcode::kMul, i, n);
  kir::Val acc = kb.Var(kir::F32(4), "acc");
  kb.Assign(acc, kb.ConstF(kir::F32(4), 0.0));
  kb.For("k", kb.ConstI(kir::I32(), 0), n, 1, [&](kir::Val k) {
    kir::Val av = kb.Splat(kb.Load(a, kb.Binary(kir::Opcode::kAdd, row, k)), 4);
    kir::Val bv = kb.Load(
        b, kb.Binary(kir::Opcode::kAdd, kb.Binary(kir::Opcode::kMul, k, n), j4),
        0, 4);
    kb.Assign(acc, kb.Fma(av, bv, acc));
  });
  kb.Store(c, kb.Binary(kir::Opcode::kAdd, row, j4), acc);
  return *kb.Build();
}

double Run(const kir::Program& source, std::uint64_t n, bool quarter_dim0) {
  ocl::Context ctx;
  auto a = *ctx.CreateBuffer(ocl::kMemReadWrite | ocl::kMemAllocHostPtr, n * n * 4);
  auto b = *ctx.CreateBuffer(ocl::kMemReadWrite | ocl::kMemAllocHostPtr, n * n * 4);
  auto c = *ctx.CreateBuffer(ocl::kMemReadWrite | ocl::kMemAllocHostPtr, n * n * 4);
  std::vector<kir::Program> kernels;
  kernels.push_back(source);
  auto prog = ctx.CreateProgram(std::move(kernels));
  MALI_CHECK(prog->Build().ok());
  auto kernel = *ctx.CreateKernel(prog, source.name);
  MALI_CHECK(kernel->SetArgBuffer(0, a).ok());
  MALI_CHECK(kernel->SetArgBuffer(1, b).ok());
  MALI_CHECK(kernel->SetArgBuffer(2, c).ok());
  MALI_CHECK(kernel->SetArgI32(3, static_cast<std::int32_t>(n)).ok());
  const std::uint64_t global[2] = {quarter_dim0 ? n / 4 : n, n};
  const std::uint64_t local[2] = {kTile, kTile};
  auto event = ctx.queue().EnqueueNDRange(*kernel, 2, global, local);
  MALI_CHECK(event.ok());
  return event->seconds * 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::string(argv[1]) == "--csv";
  std::printf("== Ablation A8: §III-B local-memory tiling on unified memory ==\n");
  malisim::Table table({"n", "naive direct (ms)", "__local tiled (ms)",
                        "register/vec4 (ms)", "best idiom"});
  for (std::uint64_t n : {64u, 128u, 192u}) {
    const double direct = Run(DirectKernel(), n, false);
    const double tiled = Run(TiledKernel(), n, false);
    const double reg = Run(RegisterKernel(), n, true);
    table.BeginRow();
    table.AddCell(std::to_string(n));
    table.AddNumber(direct, 3);
    table.AddNumber(tiled, 3);
    table.AddNumber(reg, 3);
    table.AddCell(reg < tiled ? "register (no __local)" : "__local");
  }
  std::printf("%s\n", csv ? table.ToCsv().c_str() : table.ToAscii().c_str());
  std::printf(
      "paper expectation: on Mali, __local staging is not the lever it is\n"
      "on desktop GPUs (local memory IS global memory); the recommended\n"
      "register/vector idiom wins without any locality machinery —\n"
      "\"traditional code locality optimizations are not required\".\n");
  return 0;
}
