// Ablation A7 — §III-A "Load distribution": global work size.
//
// The paper quotes the Mali OpenCL Developer Guide: "the optimal global
// work size can be calculated as the device maximum work-group size
// multiplied by the number of shader cores multiplied by a constant. This
// constant for the Mali-T604 is four or eight. More generally, the global
// work size must be in the order of several thousands to maximize the GPU
// resources utilization."
//
// This bench fixes the total work (a grid-stride kernel over n elements)
// and sweeps the number of work-items it is spread over, marking the
// guide's recommended points (256 x 4 x {4, 8}).
//
// Usage: ablation_global_size [--csv]
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.h"
#include "kir/builder.h"
#include "ocl/runtime.h"

namespace {

using namespace malisim;

/// Fixed total work spread over a variable number of work-items, each
/// handling a contiguous chunk (KIR loop steps are immediates, so the
/// chunked distribution stands in for the usual grid-stride form).
kir::Program ChunkKernel() {
  kir::KernelBuilder kb("chunked_saxpy");
  auto x = kb.ArgBuffer("x", kir::ScalarType::kF32, kir::ArgKind::kBufferRO,
                        true, true);
  auto y = kb.ArgBuffer("y", kir::ScalarType::kF32, kir::ArgKind::kBufferRW,
                        true, false);
  kir::Val n = kb.ArgScalar("n", kir::ScalarType::kI32);
  kir::Val gid = kb.GlobalId(0);
  kir::Val threads = kb.GlobalSize(0);
  kir::Val one = kb.ConstI(kir::I32(), 1);
  kir::Val chunk = kb.Binary(
      kir::Opcode::kIDiv,
      kb.Binary(kir::Opcode::kSub, kb.Binary(kir::Opcode::kAdd, n, threads), one),
      threads);
  kir::Val start = kb.Binary(kir::Opcode::kMul, gid, chunk);
  kir::Val end = kb.Min(kb.Binary(kir::Opcode::kAdd, start, chunk), n);
  kir::Val a = kb.ConstF(kir::F32(), 1.5);
  kb.For("i", start, end, 1, [&](kir::Val i) {
    kb.Store(y, i, kb.Fma(a, kb.Load(x, i), kb.Load(y, i)));
  });
  return *kb.Build();
}

double Run(const kir::Program& source, std::uint64_t items, std::uint64_t n) {
  ocl::Context ctx;
  auto x = ctx.CreateBuffer(ocl::kMemReadWrite | ocl::kMemAllocHostPtr, n * 4);
  auto y = ctx.CreateBuffer(ocl::kMemReadWrite | ocl::kMemAllocHostPtr, n * 4);
  MALI_CHECK(x.ok() && y.ok());
  std::vector<kir::Program> kernels;
  kernels.push_back(source);
  auto prog = ctx.CreateProgram(std::move(kernels));
  MALI_CHECK(prog->Build().ok());
  auto kernel = ctx.CreateKernel(prog, source.name);
  MALI_CHECK(kernel.ok());
  MALI_CHECK((*kernel)->SetArgBuffer(0, *x).ok());
  MALI_CHECK((*kernel)->SetArgBuffer(1, *y).ok());
  MALI_CHECK((*kernel)->SetArgI32(2, static_cast<std::int32_t>(n)).ok());
  const std::uint64_t global[1] = {items};
  const std::uint64_t local[1] = {std::min<std::uint64_t>(items, 256)};
  auto event = ctx.queue().EnqueueNDRange(**kernel, 1, global, local);
  MALI_CHECK(event.ok());
  return event->seconds * 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::string(argv[1]) == "--csv";
  const std::uint64_t n = 1 << 21;  // total elements (fixed work)
  const kir::Program kernel = ChunkKernel();
  std::printf(
      "== Ablation A7: §III-A global work size (fixed work: %llu elements) ==\n",
      static_cast<unsigned long long>(n));
  malisim::Table table({"work-items", "time (ms)", "note"});
  for (std::uint64_t items : {16u, 64u, 256u, 1024u, 4096u, 8192u, 16384u,
                              65536u}) {
    std::string note;
    if (items == 256 * 4 * 4) note = "guide: max_wg x cores x 4";
    if (items == 256 * 4 * 8) note = "guide: max_wg x cores x 8";
    table.BeginRow();
    table.AddCell(std::to_string(items));
    table.AddNumber(Run(kernel, items, n), 3);
    table.AddCell(note);
  }
  std::printf("%s\n", csv ? table.ToCsv().c_str() : table.ToAscii().c_str());
  std::printf(
      "paper expectation: utilization saturates once the launch is 'in the\n"
      "order of several thousands' of work-items; tiny launches starve the\n"
      "four cores and the latency-hiding thread pool.\n");
  return 0;
}
