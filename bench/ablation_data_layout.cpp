// Ablation A6 — §III-B "Data Organization": AOS vs SOA.
//
// The paper: "Typically in application code data is packed in an Array of
// Structures (AOS) ... Although this representation is the most natural,
// it typically executes poorly in vector register ... A more efficient
// data-packing approach is Structure Of Arrays (SOA) ... that would
// facilitate the application of vector instructions increasing the code
// performance." It also explains why nbody's optimized version gained
// little: the AOS layout was kept.
//
// This bench computes per-point magnitudes of 3D vectors under three
// treatments: scalar AOS, vectorized AOS (vload4 + lane transpose — the
// gather tax), and vectorized SOA (three clean vload4s).
//
// Usage: ablation_data_layout [--csv]
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.h"
#include "kir/builder.h"
#include "ocl/runtime.h"

namespace {

using namespace malisim;

/// out[i] = rsqrt(x_i^2 + y_i^2 + z_i^2 + eps), points in AOS [x,y,z,w].
kir::Program AosScalar() {
  kir::KernelBuilder kb("aos_scalar");
  auto pts = kb.ArgBuffer("pts", kir::ScalarType::kF32, kir::ArgKind::kBufferRO,
                          true, true);
  auto out = kb.ArgBuffer("out", kir::ScalarType::kF32, kir::ArgKind::kBufferWO,
                          true, false);
  kir::Val gid = kb.GlobalId(0);
  kir::Val base = kb.Binary(kir::Opcode::kMul, gid, kb.ConstI(kir::I32(), 4));
  kir::Val x = kb.Load(pts, base, 0);
  kir::Val y = kb.Load(pts, base, 1);
  kir::Val z = kb.Load(pts, base, 2);
  kir::Val eps = kb.ConstF(kir::F32(), 1e-3);
  kir::Val r2 = kb.Fma(x, x, kb.Fma(y, y, kb.Fma(z, z, eps)));
  kb.Store(out, gid, kb.Rsqrt(r2));
  return *kb.Build();
}

/// Four points per work-item from AOS data: four vload4 of whole points
/// plus a 4x4 lane transpose (extract/insert) before the vector math.
kir::Program AosVector() {
  kir::KernelBuilder kb("aos_vector");
  auto pts = kb.ArgBuffer("pts", kir::ScalarType::kF32, kir::ArgKind::kBufferRO,
                          true, true);
  auto out = kb.ArgBuffer("out", kir::ScalarType::kF32, kir::ArgKind::kBufferWO,
                          true, false);
  kir::Val gid = kb.GlobalId(0);
  kir::Val base = kb.Binary(kir::Opcode::kMul, gid, kb.ConstI(kir::I32(), 16));
  kir::Val p0 = kb.Load(pts, base, 0, 4);
  kir::Val p1 = kb.Load(pts, base, 4, 4);
  kir::Val p2 = kb.Load(pts, base, 8, 4);
  kir::Val p3 = kb.Load(pts, base, 12, 4);
  kir::Val zero4 = kb.ConstF(kir::F32(4), 0.0);
  auto gather = [&](int lane) {
    kir::Val g = zero4;
    g = kb.Insert(g, 0, kb.Extract(p0, lane));
    g = kb.Insert(g, 1, kb.Extract(p1, lane));
    g = kb.Insert(g, 2, kb.Extract(p2, lane));
    g = kb.Insert(g, 3, kb.Extract(p3, lane));
    return g;
  };
  kir::Val x = gather(0), y = gather(1), z = gather(2);
  kir::Val eps = kb.ConstF(kir::F32(4), 1e-3);
  kir::Val r2 = kb.Fma(x, x, kb.Fma(y, y, kb.Fma(z, z, eps)));
  kir::Val out_base = kb.Binary(kir::Opcode::kMul, gid, kb.ConstI(kir::I32(), 4));
  kb.Store(out, out_base, kb.Rsqrt(r2));
  return *kb.Build();
}

/// Four points per work-item from SOA data: three contiguous vload4s.
kir::Program SoaVector() {
  kir::KernelBuilder kb("soa_vector");
  auto xs = kb.ArgBuffer("xs", kir::ScalarType::kF32, kir::ArgKind::kBufferRO,
                         true, true);
  auto ys = kb.ArgBuffer("ys", kir::ScalarType::kF32, kir::ArgKind::kBufferRO,
                         true, true);
  auto zs = kb.ArgBuffer("zs", kir::ScalarType::kF32, kir::ArgKind::kBufferRO,
                         true, true);
  auto out = kb.ArgBuffer("out", kir::ScalarType::kF32, kir::ArgKind::kBufferWO,
                          true, false);
  kir::Val gid = kb.GlobalId(0);
  kir::Val base = kb.Binary(kir::Opcode::kMul, gid, kb.ConstI(kir::I32(), 4));
  kir::Val x = kb.Load(xs, base, 0, 4);
  kir::Val y = kb.Load(ys, base, 0, 4);
  kir::Val z = kb.Load(zs, base, 0, 4);
  kir::Val eps = kb.ConstF(kir::F32(4), 1e-3);
  kir::Val r2 = kb.Fma(x, x, kb.Fma(y, y, kb.Fma(z, z, eps)));
  kb.Store(out, base, kb.Rsqrt(r2));
  return *kb.Build();
}

double Run(const kir::Program& source, std::uint64_t items, int num_buffers,
           std::uint64_t elems_per_buffer) {
  ocl::Context ctx;
  std::vector<std::shared_ptr<ocl::Buffer>> bufs;
  for (int i = 0; i < num_buffers; ++i) {
    bufs.push_back(*ctx.CreateBuffer(ocl::kMemReadWrite | ocl::kMemAllocHostPtr,
                                     elems_per_buffer * 4));
  }
  std::vector<kir::Program> kernels;
  kernels.push_back(source);
  auto prog = ctx.CreateProgram(std::move(kernels));
  MALI_CHECK(prog->Build().ok());
  auto kernel = ctx.CreateKernel(prog, source.name);
  MALI_CHECK(kernel.ok());
  for (int i = 0; i < num_buffers; ++i) {
    MALI_CHECK((*kernel)
                   ->SetArgBuffer(static_cast<std::uint32_t>(i),
                                  bufs[static_cast<std::size_t>(i)])
                   .ok());
  }
  const std::uint64_t global[1] = {items};
  const std::uint64_t local[1] = {128};
  auto event = ctx.queue().EnqueueNDRange(**kernel, 1, global, local);
  MALI_CHECK(event.ok());
  return event->seconds * 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::string(argv[1]) == "--csv";
  const std::uint64_t n = 1 << 20;  // points
  std::printf("== Ablation A6: §III-B data organization, %llu 3D points ==\n",
              static_cast<unsigned long long>(n));
  const double aos_s = Run(AosScalar(), n, 2, n * 4);
  const double aos_v = Run(AosVector(), n / 4, 2, n * 4);
  const double soa_v = Run(SoaVector(), n / 4, 4, n);
  malisim::Table table({"layout / code", "time (ms)", "speedup"});
  table.AddRow({"AOS, scalar", malisim::FormatDouble(aos_s, 3), "1.000"});
  table.AddRow({"AOS, vectorized (transpose)", malisim::FormatDouble(aos_v, 3),
                malisim::FormatDouble(aos_s / aos_v, 3)});
  table.AddRow({"SOA, vectorized", malisim::FormatDouble(soa_v, 3),
                malisim::FormatDouble(aos_s / soa_v, 3)});
  std::printf("%s\n", csv ? table.ToCsv().c_str() : table.ToAscii().c_str());
  std::printf(
      "paper expectation: AOS 'executes poorly in vector register and\n"
      "requires significant loop unrolling'; SOA 'facilitates the\n"
      "application of vector instructions' — and explains nbody's small\n"
      "Opt gain (its AOS layout was kept).\n");
  return 0;
}
