// Benchmark characterization — the measured version of the paper's §IV-A
// prose ("stresses the memory bandwidth", "useful as metric to measure
// load imbalance", ...). For each benchmark's naive GPU version this prints
// the dynamic operation mix, arithmetic intensity, access sequentiality,
// atomics rate and work-group imbalance, so the §V performance discussion
// can be traced back to measured workload properties.
//
// Usage: benchmark_characteristics [--csv] [--fp64]
#include <cstdio>
#include <algorithm>
#include <map>
#include <memory>
#include <string>

#include "common/table.h"
#include "hpc/benchmark.h"

namespace {

using namespace malisim;

double Share(const kir::OpHistogram& ops, kir::OpClass c) {
  const double total = static_cast<double>(ops.Total());
  return total > 0 ? 100.0 * static_cast<double>(ops.TotalClass(c)) / total
                   : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  bool fp64 = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--csv") csv = true;
    if (arg == "--fp64") fp64 = true;
  }

  const std::map<std::string, std::string> axis = {
      {"spmv", "load imbalance"},
      {"vecop", "memory bandwidth"},
      {"hist", "atomics + reduction"},
      {"3dstc", "regular strides"},
      {"red", "parallel->sequential"},
      {"amcd", "independent chains"},
      {"nbody", "special functions"},
      {"2dcon", "spatial locality"},
      {"dmmm", "data reuse + compute"},
  };

  std::printf("== Benchmark characteristics (naive GPU versions, %s) ==\n",
              fp64 ? "fp64" : "fp32");
  Table table({"benchmark", "lane-ops/DRAM byte", "special %", "mem %",
               "control %", "seq", "imbalance", "atomics/item",
               "paper's axis (§IV-A)"});

  for (const std::string& name : hpc::RegisteredBenchmarks()) {
    hpc::ProblemSizes sizes;
    std::unique_ptr<hpc::Benchmark> bench = hpc::CreateBenchmark(name, sizes);
    MALI_CHECK(bench != nullptr);
    MALI_CHECK(bench->Setup(fp64, 42).ok());
    cpu::CortexA15Device cpu_device;
    ocl::Context gpu_context;
    hpc::Devices devices{&cpu_device, &gpu_context};
    auto outcome = bench->Run(hpc::Variant::kOpenCL, devices);

    table.BeginRow();
    table.AddCell(name);
    if (!outcome.ok()) {
      for (int col = 0; col < 7; ++col) table.AddMissing();
      table.AddCell(axis.at(name) + " (GPU build fails in fp64)");
      continue;
    }
    const kir::WorkGroupRun& run = outcome->run;
    const double arith_lane_ops = static_cast<double>(
        run.ops.TotalLaneOps(kir::OpClass::kArithSimple) +
        run.ops.TotalLaneOps(kir::OpClass::kArithMul) +
        run.ops.TotalLaneOps(kir::OpClass::kArithSpecial));
    const double dram_bytes = static_cast<double>(outcome->profile.dram_bytes);
    table.AddNumber(dram_bytes > 0 ? arith_lane_ops / dram_bytes : 0.0, 2);
    table.AddNumber(Share(run.ops, kir::OpClass::kArithSpecial), 1);
    table.AddNumber(Share(run.ops, kir::OpClass::kLoad) +
                        Share(run.ops, kir::OpClass::kStore),
                    1);
    table.AddNumber(Share(run.ops, kir::OpClass::kControl), 1);
    // Ratio stats sum across merged launches; re-average.
    const double launches = std::max(1.0, outcome->stats.Get("ocl.launches"));
    table.AddNumber(outcome->stats.Get("mali.seq_fraction") / launches, 2);
    table.AddNumber(run.imbalance_factor(), 2);
    table.AddNumber(run.work_items > 0
                        ? static_cast<double>(run.atomics) /
                              static_cast<double>(run.work_items)
                        : 0.0,
                    2);
    table.AddCell(axis.at(name));
  }
  std::printf("%s\n", csv ? table.ToCsv().c_str() : table.ToAscii().c_str());
  std::printf(
      "reading: spmv's imbalance, vecop's near-zero intensity, hist's\n"
      "1 atomic/item, nbody's special-function share and dmmm's high\n"
      "intensity are the §IV-A claims, measured.\n");
  return 0;
}
