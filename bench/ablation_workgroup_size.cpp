// Ablation A2 — §III-A "Load distribution": work-group size sweep.
//
// The paper: "the optimal global work size can be calculated as the device
// maximum work-group size multiplied by the number of shader cores
// multiplied by a constant", and letting the driver pick the local size
// (local = NULL) is risky: "we noticed some performance degradation and we
// strongly suggest to manually tune the local work size parameter".
//
// This bench sweeps the local size for a compute kernel and a memory
// kernel, and marks what the driver heuristic would have picked.
//
// Usage: ablation_workgroup_size [--csv]
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.h"
#include "kir/builder.h"
#include "ocl/runtime.h"

namespace {

using namespace malisim;

kir::Program ComputeKernel() {
  // Per-item polynomial loop: arithmetic-pipe bound.
  kir::KernelBuilder kb("poly");
  auto out = kb.ArgBuffer("out", kir::ScalarType::kF32, kir::ArgKind::kBufferWO);
  kir::Val gid = kb.GlobalId(0);
  kir::Val x = kb.Convert(gid, kir::ScalarType::kF32) * 1e-4;
  kir::Val acc = kb.Var(kir::F32(), "acc");
  kb.Assign(acc, x);
  kb.For("i", kb.ConstI(kir::I32(), 0), kb.ConstI(kir::I32(), 32), 1,
         [&](kir::Val) { kb.Assign(acc, kb.Fma(acc, x, x)); });
  kb.Store(out, gid, acc);
  return *kb.Build();
}

kir::Program StreamKernel() {
  kir::KernelBuilder kb("stream");
  auto in = kb.ArgBuffer("in", kir::ScalarType::kF32, kir::ArgKind::kBufferRO);
  auto out = kb.ArgBuffer("out", kir::ScalarType::kF32, kir::ArgKind::kBufferWO);
  kir::Val gid = kb.GlobalId(0);
  kb.Store(out, gid, kb.Load(in, gid) + 1.0);
  return *kb.Build();
}

double RunWith(const kir::Program& source, std::uint64_t n,
               const std::uint64_t* local) {
  ocl::Context ctx;
  auto in = ctx.CreateBuffer(ocl::kMemReadWrite | ocl::kMemAllocHostPtr, n * 4);
  auto out = ctx.CreateBuffer(ocl::kMemReadWrite | ocl::kMemAllocHostPtr, n * 4);
  MALI_CHECK(in.ok() && out.ok());
  std::vector<kir::Program> kernels;
  kernels.push_back(source);
  auto prog = ctx.CreateProgram(std::move(kernels));
  MALI_CHECK(prog->Build().ok());
  auto kernel = ctx.CreateKernel(prog, source.name);
  MALI_CHECK(kernel.ok());
  std::uint32_t slot = 0;
  for (const kir::ArgDecl& arg : source.args) {
    if (arg.kind == kir::ArgKind::kScalar) continue;
    MALI_CHECK((*kernel)->SetArgBuffer(slot, slot == 0 && source.args.size() > 1
                                                 ? *in
                                                 : *out)
                   .ok());
    ++slot;
  }
  const std::uint64_t global[1] = {n};
  auto event = ctx.queue().EnqueueNDRange(**kernel, 1, global, local);
  MALI_CHECK(event.ok());
  return event->seconds;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::string(argv[1]) == "--csv";
  const std::uint64_t n = 1 << 20;
  std::printf("== Ablation A2: §III-A work-group size tuning (n = %llu) ==\n",
              static_cast<unsigned long long>(n));

  malisim::Table table({"local size", "compute kernel (ms)", "stream kernel (ms)"});
  const kir::Program compute = ComputeKernel();
  const kir::Program stream = StreamKernel();
  for (std::uint64_t ls : {4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    const std::uint64_t local[1] = {ls};
    table.BeginRow();
    table.AddCell(std::to_string(ls));
    table.AddNumber(RunWith(compute, n, local) * 1e3, 3);
    table.AddNumber(RunWith(stream, n, local) * 1e3, 3);
  }
  table.BeginRow();
  table.AddCell("driver (NULL)");
  table.AddNumber(RunWith(compute, n, nullptr) * 1e3, 3);
  table.AddNumber(RunWith(stream, n, nullptr) * 1e3, 3);
  std::printf("%s\n", csv ? table.ToCsv().c_str() : table.ToAscii().c_str());
  std::printf(
      "paper expectation: small groups pay heavy Job-Manager dispatch; the\n"
      "driver's NULL pick (<=64) is measurably worse than a tuned 128-256.\n");
  return 0;
}
