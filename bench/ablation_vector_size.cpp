// Ablation A3 — §III-B "Vectorization" and "Vector Sizes".
//
// The paper: convert scalar code to vector types, reducing the number of
// work-items; then "experiment with different vector sizes (e.g. size of 4,
// 8, 16)" because "the best achievable performance is not bound to a
// particular vector size" — wider types can improve scheduling but raise
// register pressure (lower occupancy).
//
// This bench runs an element-wise multiply-add at widths 1/2/4/8/16 and a
// dot-product-style reduction at the same widths, reporting modelled time
// and the occupancy the register allocator achieved.
//
// Usage: ablation_vector_size [--csv]
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.h"
#include "kir/builder.h"
#include "ocl/runtime.h"

namespace {

using namespace malisim;

kir::Program AxpyKernel(std::uint8_t lanes) {
  kir::KernelBuilder kb("axpy_v" + std::to_string(lanes));
  auto x = kb.ArgBuffer("x", kir::ScalarType::kF32, kir::ArgKind::kBufferRO,
                        true, true);
  auto y = kb.ArgBuffer("y", kir::ScalarType::kF32, kir::ArgKind::kBufferRW,
                        true, false);
  kir::Val gid = kb.GlobalId(0);
  kir::Val base =
      kb.Binary(kir::Opcode::kMul, gid, kb.ConstI(kir::I32(), lanes));
  kir::Val a = kb.ConstF(kir::F32(lanes), 1.5);
  kir::Val xv = kb.Load(x, base, 0, lanes);
  kir::Val yv = kb.Load(y, base, 0, lanes);
  kb.Store(y, base, kb.Fma(a, xv, yv));
  return *kb.Build();
}

/// Wide-accumulator dot-product chunk per work-item: register pressure
/// grows with the width (several live vectors).
kir::Program DotKernel(std::uint8_t lanes) {
  kir::KernelBuilder kb("dot_v" + std::to_string(lanes));
  auto x = kb.ArgBuffer("x", kir::ScalarType::kF32, kir::ArgKind::kBufferRO,
                        true, true);
  auto y = kb.ArgBuffer("y", kir::ScalarType::kF32, kir::ArgKind::kBufferRO,
                        true, true);
  auto out = kb.ArgBuffer("out", kir::ScalarType::kF32, kir::ArgKind::kBufferWO,
                          true, false);
  kir::Val n = kb.ArgScalar("n", kir::ScalarType::kI32);
  kir::Val gid = kb.GlobalId(0);
  kir::Val threads = kb.GlobalSize(0);
  kir::Val chunk = kb.Binary(kir::Opcode::kIDiv, n, threads);
  kir::Val start = kb.Binary(kir::Opcode::kMul, gid, chunk);
  kir::Val end = kb.Binary(kir::Opcode::kAdd, start, chunk);
  // Two accumulators of the sweep width, software-pipelined by 2.
  kir::Val acc0 = kb.Var(kir::F32(lanes), "acc0");
  kir::Val acc1 = kb.Var(kir::F32(lanes), "acc1");
  kb.Assign(acc0, kb.ConstF(kir::F32(lanes), 0.0));
  kb.Assign(acc1, kb.ConstF(kir::F32(lanes), 0.0));
  kb.For("i", start, end, 2 * lanes, [&](kir::Val i) {
    kir::Val i2 = kb.Binary(kir::Opcode::kAdd, i, kb.ConstI(kir::I32(), lanes));
    kb.Assign(acc0, kb.Fma(kb.Load(x, i, 0, lanes), kb.Load(y, i, 0, lanes), acc0));
    kb.Assign(acc1, kb.Fma(kb.Load(x, i2, 0, lanes), kb.Load(y, i2, 0, lanes), acc1));
  });
  kb.Store(out, gid, kb.VSum(acc0 + acc1));
  return *kb.Build();
}

struct RunResult {
  double ms = 0;
  double threads_per_core = 0;
};

RunResult Run(const kir::Program& source, std::uint64_t items,
              std::uint64_t buf_elems, bool has_n, std::uint64_t n_value) {
  ocl::Context ctx;
  auto x = ctx.CreateBuffer(ocl::kMemReadWrite | ocl::kMemAllocHostPtr,
                            buf_elems * 4);
  auto y = ctx.CreateBuffer(ocl::kMemReadWrite | ocl::kMemAllocHostPtr,
                            buf_elems * 4);
  auto out = ctx.CreateBuffer(ocl::kMemReadWrite | ocl::kMemAllocHostPtr,
                              items * 4 + 64);
  MALI_CHECK(x.ok() && y.ok() && out.ok());
  std::vector<kir::Program> kernels;
  kernels.push_back(source);
  auto prog = ctx.CreateProgram(std::move(kernels));
  MALI_CHECK(prog->Build().ok());
  auto kernel = ctx.CreateKernel(prog, source.name);
  MALI_CHECK(kernel.ok());
  MALI_CHECK((*kernel)->SetArgBuffer(0, *x).ok());
  MALI_CHECK((*kernel)->SetArgBuffer(1, *y).ok());
  std::uint32_t next = 2;
  if (source.num_buffer_args() == 3) {
    MALI_CHECK((*kernel)->SetArgBuffer(next++, *out).ok());
  }
  if (has_n) {
    MALI_CHECK(
        (*kernel)->SetArgI32(next, static_cast<std::int32_t>(n_value)).ok());
  }
  const std::uint64_t global[1] = {items};
  const std::uint64_t local[1] = {128};
  auto event = ctx.queue().EnqueueNDRange(**kernel, 1, global, local);
  MALI_CHECK(event.ok());
  RunResult r;
  r.ms = event->seconds * 1e3;
  r.threads_per_core = event->stats.Get("mali.threads_per_core");
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::string(argv[1]) == "--csv";
  const std::uint64_t n = 1 << 20;
  std::printf("== Ablation A3: §III-B vector size sweep (n = %llu) ==\n",
              static_cast<unsigned long long>(n));
  malisim::Table table({"width", "axpy (ms)", "axpy threads/core",
                        "dot (ms)", "dot threads/core"});
  for (std::uint8_t lanes : {1, 2, 4, 8, 16}) {
    const RunResult axpy = Run(AxpyKernel(lanes), n / lanes, n, false, 0);
    const RunResult dot =
        Run(DotKernel(lanes), 1024, n, true, n);
    table.BeginRow();
    table.AddCell(lanes == 1 ? "scalar" : "float" + std::to_string(lanes));
    table.AddNumber(axpy.ms, 3);
    table.AddNumber(axpy.threads_per_core, 0);
    table.AddNumber(dot.ms, 3);
    table.AddNumber(dot.threads_per_core, 0);
  }
  std::printf("%s\n", csv ? table.ToCsv().c_str() : table.ToAscii().c_str());
  std::printf(
      "paper expectation: float4 matches the 128-bit pipes; wider types can\n"
      "win or lose depending on register pressure (threads/core drops).\n");
  return 0;
}
