// Regenerates the paper's §V-D headline: "single-precision and
// double-precision OpenCL Opt benchmarks achieve a speedup of 8.7x over the
// corresponding Serial benchmarks running on the Cortex-A15 core, while
// consuming only 32% of the energy."
//
// Usage: fig_summary [--quick] [--seed=N] [--bench-json=PATH]
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace mb = malisim::bench;
namespace mh = malisim::harness;

int main(int argc, char** argv) {
  const mb::BenchOptions options = mb::ParseOptions(argc, argv);
  std::vector<mb::SweepData> sweeps;
  const malisim::Status sp_run = mb::RunSweepInto(options, false, &sweeps);
  if (!sp_run.ok()) {
    std::fprintf(stderr, "error: %s\n", sp_run.ToString().c_str());
    return 1;
  }
  const malisim::Status dp_run = mb::RunSweepInto(options, true, &sweeps);
  if (!dp_run.ok()) {
    std::fprintf(stderr, "error: %s\n", dp_run.ToString().c_str());
    return 1;
  }
  const std::vector<mh::BenchmarkResults>& sp = sweeps[0].results;
  const std::vector<mh::BenchmarkResults>& dp = sweeps[1].results;
  const mh::Summary ssp = mh::ComputeSummary(sp);
  const mh::Summary sdp = mh::ComputeSummary(dp);
  const mh::Headline headline = mh::ComputeHeadline(sp, dp);

  std::printf("== Paper §V-D summary, paper vs model ==\n");
  std::printf("%-46s %8s %8s\n", "statistic", "paper", "model");
  std::printf("%-46s %8s %8.2f\n", "OpenMP avg speedup (SP)", "1.70", ssp.openmp_avg_speedup);
  std::printf("%-46s %8s %8.2f\n", "OpenMP avg power vs Serial (SP)", "1.31", ssp.openmp_avg_power);
  std::printf("%-46s %8s %8.2f\n", "OpenCL avg energy vs Serial (SP)", "0.56", ssp.opencl_avg_energy);
  std::printf("%-46s %8s %8.2f\n", "OpenCL avg energy vs Serial (DP)", "0.56", sdp.opencl_avg_energy);
  std::printf("%-46s %8s %8.2f\n", "OpenCL Opt avg energy vs Serial (SP)", "0.28", ssp.openclopt_avg_energy);
  std::printf("%-46s %8s %8.2f\n", "OpenCL Opt avg energy vs Serial (DP)", "0.36", sdp.openclopt_avg_energy);
  std::printf("%-46s %8s %8.2f\n", "OpenCL Opt avg speedup (SP+DP, headline)", "8.70", headline.avg_speedup);
  std::printf("%-46s %8s %8.2f\n", "OpenCL Opt avg energy (SP+DP, headline)", "0.32", headline.avg_energy);
  const malisim::Status written =
      mb::WriteBenchJson(options, "fig_summary", sweeps);
  if (!written.ok()) {
    std::fprintf(stderr, "bench-json error: %s\n", written.ToString().c_str());
    return 1;
  }
  return 0;
}
