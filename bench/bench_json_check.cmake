# End-to-end check of the BENCH record contract, run by ctest:
#   1. fig2_performance --quick --bench-json at --threads=1 and --threads=4
#      must emit byte-identical records (host parallelism is excluded from
#      the record by design),
#   2. malisim-bench comparing the record against itself must exit 0, and
#   3. an explicit --device=mali run must be byte-identical to the default
#      run — the backend refactor must not perturb the default record.
# Driven via -DFIG2=... -DBENCH=... -DOUT_DIR=... -P this-file.
#
# The measured-host throughput fields (sim_throughput_host: host_sec and
# the rates derived from it) are wall-clock and explicitly EXCLUDED from
# the byte-identity contract (obs/bench_report.h): they are zeroed here
# before every compare. Everything else — including the deterministic
# sim_throughput totals — must match byte for byte.
foreach(var FIG2 BENCH OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "bench_json_check: -D${var}=... is required")
  endif()
endforeach()

function(mask_host_fields in out)
  file(READ "${in}" contents)
  foreach(field host_sec work_items_per_host_sec opcodes_per_host_sec
          host_sec_per_modelled_sec)
    string(REGEX REPLACE "\"${field}\":[^,}]*" "\"${field}\":0" contents
      "${contents}")
  endforeach()
  file(WRITE "${out}" "${contents}")
endfunction()

file(MAKE_DIRECTORY "${OUT_DIR}")
set(json_t1 "${OUT_DIR}/bench_t1.json")
set(json_t4 "${OUT_DIR}/bench_t4.json")

execute_process(
  COMMAND "${FIG2}" --quick --threads=1 "--bench-json=${json_t1}"
  RESULT_VARIABLE rc1 OUTPUT_QUIET)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "fig2_performance --threads=1 failed (exit ${rc1})")
endif()

execute_process(
  COMMAND "${FIG2}" --quick --threads=4 "--bench-json=${json_t4}"
  RESULT_VARIABLE rc4 OUTPUT_QUIET)
if(NOT rc4 EQUAL 0)
  message(FATAL_ERROR "fig2_performance --threads=4 failed (exit ${rc4})")
endif()

mask_host_fields("${json_t1}" "${json_t1}.masked")
mask_host_fields("${json_t4}" "${json_t4}.masked")
execute_process(
  COMMAND "${CMAKE_COMMAND}" -E compare_files
    "${json_t1}.masked" "${json_t4}.masked"
  RESULT_VARIABLE identical)
if(NOT identical EQUAL 0)
  message(FATAL_ERROR
    "BENCH records differ across --threads=1/4: ${json_t1} vs ${json_t4} — "
    "the byte-identity contract (obs/bench_report.h) is broken")
endif()

execute_process(
  COMMAND "${BENCH}" "--baseline=${json_t1}.masked"
    "--candidate=${json_t4}.masked"
  RESULT_VARIABLE self_compare OUTPUT_QUIET)
if(NOT self_compare EQUAL 0)
  message(FATAL_ERROR
    "malisim-bench self-compare exited ${self_compare}, want 0")
endif()

set(json_mali "${OUT_DIR}/bench_mali.json")
execute_process(
  COMMAND "${FIG2}" --quick --threads=1 --device=mali
    "--bench-json=${json_mali}"
  RESULT_VARIABLE rc_mali OUTPUT_QUIET)
if(NOT rc_mali EQUAL 0)
  message(FATAL_ERROR "fig2_performance --device=mali failed (exit ${rc_mali})")
endif()
mask_host_fields("${json_mali}" "${json_mali}.masked")
execute_process(
  COMMAND "${CMAKE_COMMAND}" -E compare_files
    "${json_t1}.masked" "${json_mali}.masked"
  RESULT_VARIABLE mali_identical)
if(NOT mali_identical EQUAL 0)
  message(FATAL_ERROR
    "BENCH record with explicit --device=mali differs from the default run: "
    "${json_t1} vs ${json_mali} — the default-device byte-identity contract "
    "is broken")
endif()

message(STATUS "bench_json_check: records byte-identical, self-compare OK")
