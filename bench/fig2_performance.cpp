// Regenerates Fig. 2 of the paper: speedup of OpenMP / OpenCL / OpenCL Opt
// over the Serial version, for all nine benchmarks, in single precision
// (Fig. 2a) and double precision (Fig. 2b). Prints the model's tables and
// a side-by-side comparison with the paper's reported values.
//
// Usage: fig2_performance [--fp32|--fp64] [--csv] [--quick] [--seed=N]
//                         [--bench-json=PATH]
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "harness/trace.h"

namespace mb = malisim::bench;
namespace mh = malisim::harness;

namespace {

int RunPrecision(const mb::BenchOptions& options, bool fp64,
                 std::vector<mb::SweepData>* sweeps) {
  const malisim::Status run = mb::RunSweepInto(options, fp64, sweeps);
  if (!run.ok()) {
    std::fprintf(stderr, "error: %s\n", run.ToString().c_str());
    return 1;
  }
  const std::vector<mh::BenchmarkResults>& results = sweeps->back().results;
  const char* sub = fp64 ? "Fig. 2(b) double-precision" : "Fig. 2(a) single-precision";
  if (!options.trace_path.empty()) {
    mh::TraceBuilder trace;
    for (const mh::BenchmarkResults& r : results) trace.AddBenchmark(r);
    const std::string path =
        options.trace_path + (fp64 ? ".fp64.json" : ".fp32.json");
    const malisim::Status written = trace.WriteTo(path);
    if (written.ok()) {
      std::fprintf(stderr, "trace written to %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "trace error: %s\n", written.ToString().c_str());
    }
  }
  const malisim::Table table = mh::Fig2Speedup(results);
  if (options.csv) {
    std::printf("# %s speedup over Serial\n%s\n", sub, table.ToCsv().c_str());
    return 0;
  }
  std::printf("%s\n", mh::RenderFigure(std::string(sub) + ": speedup over Serial",
                                       table, results)
                          .c_str());
  std::printf("paper vs model:\n%s\n",
              mb::CompareWithPaper(results,
                                   fp64 ? mb::Fig2bSpeedup() : mb::Fig2aSpeedup(),
                                   &mh::BenchmarkResults::SpeedupVsSerial, 2)
                  .c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const mb::BenchOptions options = mb::ParseOptions(argc, argv);
  std::vector<mb::SweepData> sweeps;
  int rc = 0;
  if (options.run_fp32) rc |= RunPrecision(options, false, &sweeps);
  if (options.run_fp64) rc |= RunPrecision(options, true, &sweeps);
  if (rc == 0) {
    const malisim::Status written =
        mb::WriteBenchJson(options, "fig2_performance", sweeps);
    if (!written.ok()) {
      std::fprintf(stderr, "bench-json error: %s\n",
                   written.ToString().c_str());
      rc = 1;
    }
  }
  return rc;
}
