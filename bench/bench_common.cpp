#include "bench/bench_common.h"

#include <cstdlib>
#include <cstring>

#include "common/log.h"
#include "common/table.h"

namespace malisim::bench {

BenchOptions ParseOptions(int argc, char** argv) {
  // All figure binaries honour MALISIM_LOG_LEVEL (debug/info/warn/error/off).
  InitLogLevelFromEnv();
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fp32") {
      options.run_fp64 = false;
    } else if (arg == "--fp64") {
      options.run_fp32 = false;
    } else if (arg == "--csv") {
      options.csv = true;
    } else if (arg.rfind("--trace=", 0) == 0) {
      options.trace_path = arg.substr(8);
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--threads=", 0) == 0) {
      options.threads =
          static_cast<int>(std::strtol(arg.c_str() + 10, nullptr, 10));
      if (options.threads < 0) options.threads = 0;  // 0 = all host cores
    } else if (arg.rfind("--fault-seed=", 0) == 0) {
      options.fault.seed = std::strtoull(arg.c_str() + 13, nullptr, 10);
    } else if (arg.rfind("--fault-rate=", 0) == 0) {
      options.fault.rate = std::strtod(arg.c_str() + 13, nullptr);
    } else if (arg.rfind("--fault-spec=", 0) == 0) {
      options.fault.spec = arg.substr(13);
    } else if (arg.rfind("--watchdog=", 0) == 0) {
      options.fault.watchdog_sec = std::strtod(arg.c_str() + 11, nullptr);
    } else if (arg == "--quick") {
      // Shrunken sizes: same code paths, seconds-scale total runtime.
      options.sizes.spmv_rows = 2048;
      options.sizes.vecop_n = 1u << 17;
      options.sizes.hist_n = 1u << 17;
      options.sizes.stencil_dim = 32;
      options.sizes.red_n = 1u << 17;
      options.sizes.amcd_chains = 128;
      options.sizes.amcd_atoms = 24;
      options.sizes.amcd_steps = 32;
      options.sizes.nbody_n = 512;
      options.sizes.conv_dim = 128;
      options.sizes.dmmm_n = 96;
    }
  }
  return options;
}

StatusOr<std::vector<harness::BenchmarkResults>> RunSweep(
    const BenchOptions& options, bool fp64) {
  harness::ExperimentConfig config;
  config.sizes = options.sizes;
  config.fp64 = fp64;
  config.seed = options.seed;
  config.sim_threads = options.threads;
  config.fault = options.fault;
  harness::ExperimentRunner runner(config);
  return runner.RunAll();
}

std::string CompareWithPaper(
    const std::vector<harness::BenchmarkResults>& results,
    const std::map<std::string, PaperRow>& paper,
    double (harness::BenchmarkResults::*metric)(hpc::Variant) const,
    int precision) {
  Table table({"benchmark", "paper OpenMP", "model OpenMP", "paper OpenCL",
               "model OpenCL", "paper Opt", "model Opt"});
  for (const harness::BenchmarkResults& r : results) {
    auto it = paper.find(r.name);
    if (it == paper.end()) continue;
    const PaperRow& row = it->second;
    table.BeginRow();
    table.AddCell(r.name);
    auto add_pair = [&](double paper_v, hpc::Variant v) {
      if (std::isnan(paper_v)) {
        table.AddMissing();
      } else {
        table.AddNumber(paper_v, precision);
      }
      const double model_v = (r.*metric)(v);
      if (model_v <= 0.0) {
        table.AddMissing();
      } else {
        table.AddNumber(model_v, precision);
      }
    };
    add_pair(row.openmp, hpc::Variant::kOpenMP);
    add_pair(row.opencl, hpc::Variant::kOpenCL);
    add_pair(row.opencl_opt, hpc::Variant::kOpenCLOpt);
  }
  return table.ToAscii();
}

}  // namespace malisim::bench
