#include "bench/bench_common.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <vector>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/log.h"
#include "common/table.h"
#include "common/version.h"
#include "fault/fault_plan.h"
#include "obs/bench_report.h"
#include "obs/host_prof.h"
#include "obs/metrics.h"
#include "harness/tuning.h"
#include "power/power_model.h"

namespace malisim::bench {

BenchOptions ParseOptions(int argc, char** argv) {
  // All figure binaries honour MALISIM_LOG_LEVEL (debug/info/warn/error/off).
  InitLogLevelFromEnv();
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fp32") {
      options.run_fp64 = false;
    } else if (arg == "--fp64") {
      options.run_fp32 = false;
    } else if (arg == "--csv") {
      options.csv = true;
    } else if (arg.rfind("--trace=", 0) == 0) {
      options.trace_path = arg.substr(8);
    } else if (arg.rfind("--bench-json=", 0) == 0) {
      options.bench_json = arg.substr(13);
    } else if (arg.rfind("--device=", 0) == 0) {
      if (!sim::ParseBackend(arg.substr(9), &options.device)) {
        std::fprintf(stderr, "unknown --device '%s' (mali|a15|hetero)\n",
                     arg.c_str() + 9);
        std::exit(2);
      }
    } else if (arg.rfind("--hetero-ratio=", 0) == 0) {
      options.hetero_ratio = std::strtod(arg.c_str() + 15, nullptr);
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--threads=", 0) == 0) {
      options.threads =
          static_cast<int>(std::strtol(arg.c_str() + 10, nullptr, 10));
      if (options.threads < 0) options.threads = 0;  // 0 = all host cores
    } else if (arg.rfind("--kir-exec=", 0) == 0) {
      const std::string engine = arg.substr(11);
      if (engine == "interp") {
        options.kir_exec = KirExec::kInterp;
      } else if (engine == "bytecode") {
        options.kir_exec = KirExec::kBytecode;
      } else {
        std::fprintf(stderr, "unknown --kir-exec '%s' (interp|bytecode)\n",
                     engine.c_str());
        std::exit(2);
      }
    } else if (arg.rfind("--fault-seed=", 0) == 0) {
      options.fault.seed = std::strtoull(arg.c_str() + 13, nullptr, 10);
    } else if (arg.rfind("--fault-rate=", 0) == 0) {
      options.fault.rate = std::strtod(arg.c_str() + 13, nullptr);
    } else if (arg.rfind("--fault-spec=", 0) == 0) {
      options.fault.spec = arg.substr(13);
    } else if (arg.rfind("--watchdog=", 0) == 0) {
      options.fault.watchdog_sec = std::strtod(arg.c_str() + 11, nullptr);
    } else if (arg == "--tune") {
      options.tune = true;
    } else if (arg.rfind("--tune=", 0) == 0) {
      options.tune = true;
      if (!sim::ParseObjective(arg.substr(7), &options.tune_objective)) {
        std::fprintf(stderr, "unknown --tune objective '%s' (time|energy|edp)\n",
                     arg.c_str() + 7);
        std::exit(2);
      }
    } else if (arg.rfind("--tune-cache=", 0) == 0) {
      options.tune_cache = arg.substr(13);
    } else if (arg.rfind("--log-level=", 0) == 0) {
      // After InitLogLevelFromEnv above, so the flag wins over the env var.
      if (!ApplyLogLevelFlag(arg.substr(12))) {
        std::fprintf(stderr,
                     "unknown --log-level '%s' (debug|info|warn|error|off)\n",
                     arg.c_str() + 12);
        std::exit(2);
      }
    } else if (arg == "--quick") {
      options.sizes = hpc::ProblemSizes::Quick();
    }
  }
  return options;
}

StatusOr<std::vector<harness::BenchmarkResults>> RunSweep(
    const BenchOptions& options, bool fp64, obs::Recorder* recorder) {
  harness::ExperimentConfig config;
  config.sizes = options.sizes;
  config.fp64 = fp64;
  config.seed = options.seed;
  config.sim_threads = options.threads;
  config.kir_exec = options.kir_exec;
  config.device = options.device;
  config.hetero_ratio = options.hetero_ratio;
  config.fault = options.fault;
  config.recorder = recorder;

  if (options.tune) {
    // Autotune every benchmark's §III space up front; winners drive the
    // OpenCL-opt column through RunTuned. A failed search (e.g. every
    // amcd FP64 candidate hitting the compiler erratum) keeps the paper
    // kernel for that benchmark — the missing bar stays missing.
    obs::HostProf::PhaseSpan tune_span(
        recorder != nullptr ? recorder->host_prof() : nullptr,
        obs::HostPhase::kTune);
    sim::TuningCache cache;
    if (!options.tune_cache.empty()) {
      cache = sim::TuningCache::LoadFileOrEmpty(options.tune_cache);
    }
    for (const std::string& name : hpc::RegisteredBenchmarks()) {
      harness::TuningRequest request;
      request.benchmark = name;
      request.sizes = options.sizes;
      request.fp64 = fp64;
      request.seed = options.seed;
      request.device = options.device;
      request.fault = options.fault;
      request.tuner.objective = options.tune_objective;
      request.tuner.seed = options.seed;
      request.tuner.threads = options.threads;
      request.cache = options.tune_cache.empty() ? nullptr : &cache;
      StatusOr<harness::TuningReport> report =
          harness::TuneBenchmark(request);
      if (!report.ok()) {
        MALI_LOG_WARN("tuning %s (%s) failed: %s; keeping the paper kernel",
                      name.c_str(), fp64 ? "fp64" : "fp32",
                      report.status().ToString().c_str());
        continue;
      }
      config.tuned_configs[name] = report->result.best;
      MALI_LOG_INFO("tuned %s (%s): %s%s", name.c_str(),
                    fp64 ? "fp64" : "fp32",
                    report->result.best.CanonicalKey().c_str(),
                    report->result.from_cache ? " [cache]" : "");
    }
    if (!options.tune_cache.empty()) {
      const Status saved = cache.SaveFile(options.tune_cache);
      if (!saved.ok()) {
        MALI_LOG_WARN("could not save tuning cache %s: %s",
                      options.tune_cache.c_str(),
                      saved.ToString().c_str());
      }
    }
  }

  harness::ExperimentRunner runner(config);
  return runner.RunAll();
}

Status RunSweepInto(const BenchOptions& options, bool fp64,
                    std::vector<SweepData>* sweeps) {
  SweepData sweep;
  sweep.fp64 = fp64;
  if (!options.bench_json.empty()) {
    sweep.recorder = std::make_shared<obs::Recorder>();
  }
  const auto host_start = std::chrono::steady_clock::now();
  auto results = RunSweep(options, fp64, sweep.recorder.get());
  sweep.host_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    host_start)
          .count();
  if (!results.ok()) return results.status();
  sweep.results = std::move(*results);
  sweeps->push_back(std::move(sweep));
  return Status::Ok();
}

std::string CompareWithPaper(
    const std::vector<harness::BenchmarkResults>& results,
    const std::map<std::string, PaperRow>& paper,
    double (harness::BenchmarkResults::*metric)(hpc::Variant) const,
    int precision) {
  Table table({"benchmark", "paper OpenMP", "model OpenMP", "paper OpenCL",
               "model OpenCL", "paper Opt", "model Opt"});
  for (const harness::BenchmarkResults& r : results) {
    auto it = paper.find(r.name);
    if (it == paper.end()) continue;
    const PaperRow& row = it->second;
    table.BeginRow();
    table.AddCell(r.name);
    auto add_pair = [&](double paper_v, hpc::Variant v) {
      if (std::isnan(paper_v)) {
        table.AddMissing();
      } else {
        table.AddNumber(paper_v, precision);
      }
      const double model_v = (r.*metric)(v);
      if (model_v <= 0.0) {
        table.AddMissing();
      } else {
        table.AddNumber(model_v, precision);
      }
    };
    add_pair(row.openmp, hpc::Variant::kOpenMP);
    add_pair(row.opencl, hpc::Variant::kOpenCL);
    add_pair(row.opencl_opt, hpc::Variant::kOpenCLOpt);
  }
  return table.ToAscii();
}

namespace {

/// Short slug for paper-delta keys: "openmp" / "opencl" / "opencl_opt".
const char* VariantSlug(hpc::Variant v) {
  switch (v) {
    case hpc::Variant::kSerial:
      return "serial";
    case hpc::Variant::kOpenMP:
      return "openmp";
    case hpc::Variant::kOpenCL:
      return "opencl";
    case hpc::Variant::kOpenCLOpt:
      return "opencl_opt";
    case hpc::Variant::kHetero:
      return "hetero";
  }
  return "unknown";
}

void AppendCells(const SweepData& sweep, std::vector<obs::BenchCell>* cells) {
  const char* precision = sweep.fp64 ? "fp64" : "fp32";
  for (const harness::BenchmarkResults& r : sweep.results) {
    for (hpc::Variant v : hpc::kAllVariantsWithHetero) {
      const harness::VariantResult& vr = r.Get(v);
      // A hetero cell that was never stood up (single-device run) is not a
      // measurement — skipping it keeps default records byte-identical to
      // pre-hetero builds.
      if (v == hpc::Variant::kHetero && !vr.available &&
          vr.unavailable_reason.empty()) {
        continue;
      }
      obs::BenchCell cell;
      cell.benchmark = r.name;
      cell.variant = std::string(hpc::VariantName(v));
      cell.precision = precision;
      cell.available = vr.available;
      cell.unavailable_reason = vr.unavailable_reason;
      if (vr.available) {
        cell.seconds = vr.seconds;
        cell.power_mean_w = vr.power_mean_w;
        cell.power_stddev_w = vr.power_stddev_w;
        cell.energy_j = vr.energy_j;
        cell.edp_js = vr.energy_j * vr.seconds;
        cell.speedup_vs_serial = r.SpeedupVsSerial(v);
        cell.power_vs_serial = r.PowerVsSerial(v);
        cell.energy_vs_serial = r.EnergyVsSerial(v);
        cell.failed_repetitions = vr.failed_repetitions;
        cell.degraded_to = vr.degraded_to;
        cell.validated = vr.validated;
      }
      cells->push_back(std::move(cell));
    }
  }
}

void AppendPaperDeltas(
    const SweepData& sweep, const std::string& figure,
    const std::map<std::string, PaperRow>& paper,
    double (harness::BenchmarkResults::*metric)(hpc::Variant) const,
    std::vector<obs::PaperDelta>* deltas) {
  const char* precision = sweep.fp64 ? "fp64" : "fp32";
  for (const harness::BenchmarkResults& r : sweep.results) {
    const auto it = paper.find(r.name);
    if (it == paper.end()) continue;
    const struct {
      double paper_v;
      hpc::Variant v;
    } pairs[] = {{it->second.openmp, hpc::Variant::kOpenMP},
                 {it->second.opencl, hpc::Variant::kOpenCL},
                 {it->second.opencl_opt, hpc::Variant::kOpenCLOpt}};
    for (const auto& p : pairs) {
      if (std::isnan(p.paper_v)) continue;
      const double model_v = (r.*metric)(p.v);
      if (model_v <= 0.0) continue;
      deltas->push_back({figure + "/" + r.name + "/" + VariantSlug(p.v) +
                             "/" + precision,
                         p.paper_v, model_v});
    }
  }
}

std::string U64(std::uint64_t v) { return std::to_string(v); }

/// Order-independent sums over the sweep's kernel records (deterministic
/// half of the sim_throughput record) plus the measured host rates.
obs::SimThroughput ComputeThroughput(const SweepData& sweep) {
  obs::SimThroughput t;
  t.sweep = sweep.fp64 ? "fp64" : "fp32";
  // Kernel record order may vary with host thread count, so the modelled
  // total is summed in sorted order to keep it byte-identical.
  std::vector<double> modelled;
  for (const obs::KernelRecord& k : sweep.recorder->kernels()) {
    t.work_items += k.work_items;
    for (std::uint64_t n : k.opcode_counts) t.opcodes += n;
    ++t.launches;
    modelled.push_back(k.seconds);
  }
  std::sort(modelled.begin(), modelled.end());
  for (double sec : modelled) t.modelled_sec += sec;
  t.host_sec = sweep.host_sec;
  if (sweep.host_sec > 0.0) {
    t.work_items_per_host_sec =
        static_cast<double>(t.work_items) / sweep.host_sec;
    t.opcodes_per_host_sec = static_cast<double>(t.opcodes) / sweep.host_sec;
  }
  if (t.modelled_sec > 0.0) {
    t.host_sec_per_modelled_sec = sweep.host_sec / t.modelled_sec;
  }
  return t;
}

}  // namespace

Status WriteBenchJson(const BenchOptions& options,
                      const std::string& bench_name,
                      const std::vector<SweepData>& sweeps) {
  if (options.bench_json.empty()) return Status::Ok();

  StatusOr<fault::FaultPlan> plan = fault::FaultPlan::FromOptions(options.fault);
  if (!plan.ok()) return plan.status();

  obs::BenchReportMeta meta;
  meta.name = bench_name;
  meta.git_sha = GitSha();
  {
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016" PRIx64, plan->Hash());
    meta.fault_plan_hash = hex;
  }
  // Everything that shapes the modelled numbers — and nothing that must
  // not (host threads, output paths): the record is byte-identical across
  // --threads by contract.
  meta.options = {
      {"seed", U64(options.seed)},
      {"fault_seed", U64(options.fault.seed)},
      {"fault_rate", FormatDouble(options.fault.rate, 6)},
      {"fault_spec", options.fault.spec},
      {"watchdog_sec", FormatDouble(options.fault.watchdog_sec, 6)},
      {"sizes",
       "spmv_rows=" + U64(options.sizes.spmv_rows) +
           ",spmv_nnz=" + U64(options.sizes.spmv_avg_nnz_per_row) +
           ",vecop_n=" + U64(options.sizes.vecop_n) +
           ",hist_n=" + U64(options.sizes.hist_n) +
           ",hist_bins=" + U64(options.sizes.hist_bins) +
           ",stencil_dim=" + U64(options.sizes.stencil_dim) +
           ",red_n=" + U64(options.sizes.red_n) +
           ",amcd_chains=" + U64(options.sizes.amcd_chains) +
           ",amcd_atoms=" + U64(options.sizes.amcd_atoms) +
           ",amcd_steps=" + U64(options.sizes.amcd_steps) +
           ",nbody_n=" + U64(options.sizes.nbody_n) +
           ",conv_dim=" + U64(options.sizes.conv_dim) +
           ",dmmm_n=" + U64(options.sizes.dmmm_n)},
  };
  // Backend keys only appear off the default device, so records emitted by
  // historical builds and by this build's default runs stay byte-identical.
  if (options.device != sim::BackendKind::kMali) {
    meta.options.emplace_back("device",
                              std::string(sim::BackendName(options.device)));
    meta.options.emplace_back("hetero_ratio",
                              FormatDouble(options.hetero_ratio, 6));
  }
  // Same non-default-only rule for the engine: both engines produce
  // byte-identical records, but the key only appears when --kir-exec was
  // explicitly set off the default.
  if (options.kir_exec != KirExec::kBytecode) {
    meta.options.emplace_back("kir_exec", "interp");
  }

  std::vector<obs::BenchCell> cells;
  std::vector<obs::PaperDelta> deltas;
  std::vector<obs::SimThroughput> throughput;
  obs::MetricsAggregator aggregator;
  const power::PowerModel model;
  for (const SweepData& sweep : sweeps) {
    AppendCells(sweep, &cells);
    AppendPaperDeltas(sweep, sweep.fp64 ? "fig2b" : "fig2a",
                      sweep.fp64 ? Fig2bSpeedup() : Fig2aSpeedup(),
                      &harness::BenchmarkResults::SpeedupVsSerial, &deltas);
    if (!sweep.fp64) {
      AppendPaperDeltas(sweep, "fig3a", Fig3aPower(),
                        &harness::BenchmarkResults::PowerVsSerial, &deltas);
      AppendPaperDeltas(sweep, "fig4a", Fig4aEnergy(),
                        &harness::BenchmarkResults::EnergyVsSerial, &deltas);
    }
    if (sweep.recorder != nullptr) {
      sweep.recorder->Seal();  // producers are done; flush contract
      aggregator.IngestRecorder(*sweep.recorder, model,
                                sweep.fp64 ? "fp64" : "fp32");
      throughput.push_back(ComputeThroughput(sweep));
    }
  }

  return obs::WriteBenchReport(meta, cells, deltas, aggregator.Finalize(),
                               options.bench_json, throughput);
}

}  // namespace malisim::bench
