// malisim-serve: fault-tolerant sim-as-a-service batch front end
// (DESIGN.md §14).
//
// Accepts a batch of jobs — a JSONL job file (--jobs) or the built-in
// deterministic load driver (--load-driver=N) — and pushes them through
// the ServeEngine: sharded bounded admission queues (backpressure sheds
// the newest arrival with a typed Overloaded status), per-rung circuit
// breakers over the degradation ladder, per-job modelled-time deadlines
// wired into the watchdog, and retry-with-backoff capped by the remaining
// deadline budget. SIGINT triggers a graceful drain: in-flight and queued
// jobs finish, new ones shed, and the final report still accounts for
// every submission.
//
// Exit codes: 0 = drained with the zero-lost-jobs invariant intact,
// 1 = invariant violated or an output file could not be written,
// 2 = bad flags or unreadable job file.
//
// Live telemetry (--telemetry-out=PATH): streams schema-versioned
// "malisim-telemetry-v1" JSONL snapshots (one per modelled-time window)
// while the run is in flight, plus an atomically-replaced Prometheus-style
// exposition at PATH.prom and tail-exemplar Perfetto traces next to the
// stream. Watch live with `malisim-top PATH`. Declarative SLOs
// (--slo-spec=) are evaluated per window with two-window burn rates;
// transitions land in the report and the JSONL stream.
//
// Usage:
//   malisim-serve [--jobs=FILE.jsonl | --load-driver=N]
//                 [--workers=N] [--shards=N] [--queue-depth=N]
//                 [--deadline=SEC] [--watchdog=SEC]
//                 [--fault-seed=N] [--fault-rate=R] [--fault-spec=SPEC]
//                 [--breaker-threshold=N] [--breaker-cooldown=N]
//                 [--seed=N] [--autotune] [--tune-cache=PATH]
//                 [--report=PATH] [--no-results] [--bench-json=PATH]
//                 [--telemetry-out=PATH] [--telemetry-window-sec=S]
//                 [--telemetry-exemplars=N] [--slo-spec=SPEC]
//                 [--log-level=LEVEL]
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/status.h"
#include "common/version.h"
#include "fault/fault_plan.h"
#include "obs/bench_report.h"
#include "obs/recorder.h"
#include "obs/telemetry.h"
#include "serve/engine.h"
#include "serve/job.h"
#include "sim/tuner.h"

namespace malisim {
namespace {

struct ServeToolOptions {
  std::string jobs_path;
  int load_driver = 200;
  std::uint64_t seed = 42;
  serve::ServeOptions engine;
  std::string tune_cache_path;
  std::string report_path;
  bool include_results = true;
  std::string bench_json_path;
  std::string telemetry_out;
  std::string slo_spec;
  obs::TelemetryOptions telemetry;
};

[[noreturn]] void Usage(const char* bad_flag) {
  std::fprintf(
      stderr,
      "unknown flag '%s'\n"
      "usage: malisim-serve [--jobs=FILE.jsonl | --load-driver=N]\n"
      "                     [--workers=N] [--shards=N] [--queue-depth=N]\n"
      "                     [--deadline=SEC] [--watchdog=SEC]\n"
      "                     [--fault-seed=N] [--fault-rate=R]\n"
      "                     [--fault-spec=SPEC] [--breaker-threshold=N]\n"
      "                     [--breaker-cooldown=N] [--seed=N] [--autotune]\n"
      "                     [--tune-cache=PATH] [--report=PATH]\n"
      "                     [--no-results] [--bench-json=PATH]\n"
      "                     [--telemetry-out=PATH]\n"
      "                     [--telemetry-window-sec=S]\n"
      "                     [--telemetry-exemplars=N] [--slo-spec=SPEC]\n"
      "                     [--log-level=LEVEL]\n",
      bad_flag);
  std::exit(2);
}

ServeToolOptions ParseArgs(int argc, char** argv) {
  ServeToolOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--jobs=", 0) == 0) {
      options.jobs_path = arg.substr(7);
    } else if (arg.rfind("--load-driver=", 0) == 0) {
      options.load_driver =
          static_cast<int>(std::strtol(arg.c_str() + 14, nullptr, 10));
    } else if (arg.rfind("--workers=", 0) == 0) {
      options.engine.workers_per_shard =
          static_cast<int>(std::strtol(arg.c_str() + 10, nullptr, 10));
    } else if (arg.rfind("--shards=", 0) == 0) {
      options.engine.shards =
          static_cast<int>(std::strtol(arg.c_str() + 9, nullptr, 10));
    } else if (arg.rfind("--queue-depth=", 0) == 0) {
      options.engine.queue_depth = static_cast<std::size_t>(
          std::strtoull(arg.c_str() + 14, nullptr, 10));
    } else if (arg.rfind("--deadline=", 0) == 0) {
      options.engine.default_deadline_sec =
          std::strtod(arg.c_str() + 11, nullptr);
    } else if (arg.rfind("--watchdog=", 0) == 0) {
      options.engine.fault.watchdog_sec =
          std::strtod(arg.c_str() + 11, nullptr);
    } else if (arg.rfind("--fault-seed=", 0) == 0) {
      options.engine.fault.seed =
          std::strtoull(arg.c_str() + 13, nullptr, 10);
    } else if (arg.rfind("--fault-rate=", 0) == 0) {
      options.engine.fault.rate = std::strtod(arg.c_str() + 13, nullptr);
    } else if (arg.rfind("--fault-spec=", 0) == 0) {
      options.engine.fault.spec = arg.substr(13);
    } else if (arg.rfind("--breaker-threshold=", 0) == 0) {
      options.engine.breaker.failure_threshold =
          static_cast<int>(std::strtol(arg.c_str() + 20, nullptr, 10));
    } else if (arg.rfind("--breaker-cooldown=", 0) == 0) {
      options.engine.breaker.open_cooldown =
          static_cast<int>(std::strtol(arg.c_str() + 19, nullptr, 10));
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg == "--autotune") {
      options.engine.autotune = true;
    } else if (arg.rfind("--tune-cache=", 0) == 0) {
      options.tune_cache_path = arg.substr(13);
    } else if (arg.rfind("--report=", 0) == 0) {
      options.report_path = arg.substr(9);
    } else if (arg == "--no-results") {
      options.include_results = false;
    } else if (arg.rfind("--bench-json=", 0) == 0) {
      options.bench_json_path = arg.substr(13);
    } else if (arg.rfind("--telemetry-out=", 0) == 0) {
      options.telemetry_out = arg.substr(16);
    } else if (arg.rfind("--telemetry-window-sec=", 0) == 0) {
      options.telemetry.window_sec = std::strtod(arg.c_str() + 23, nullptr);
    } else if (arg.rfind("--telemetry-exemplars=", 0) == 0) {
      options.telemetry.exemplars_per_window =
          static_cast<int>(std::strtol(arg.c_str() + 22, nullptr, 10));
    } else if (arg.rfind("--slo-spec=", 0) == 0) {
      options.slo_spec = arg.substr(11);
    } else if (arg.rfind("--log-level=", 0) == 0) {
      if (!ApplyLogLevelFlag(arg.substr(12))) {
        std::fprintf(stderr,
                     "unknown --log-level '%s' (debug|info|warn|error|off)\n",
                     arg.c_str() + 12);
        std::exit(2);
      }
    } else {
      Usage(arg.c_str());
    }
  }
  return options;
}

/// SIGINT sets a flag; the submission loop notices and begins the drain
/// from normal (non-signal) context, where mutexes are legal.
std::atomic<bool> g_interrupted{false};
void HandleSigint(int) { g_interrupted.store(true); }

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return InternalError("cannot open '" + path + "' for writing");
  out << content;
  out.flush();
  if (!out) return InternalError("short write to '" + path + "'");
  return Status::Ok();
}

Status WriteBenchRecord(const ServeToolOptions& options,
                        const serve::ServeReport& report) {
  obs::BenchReportMeta meta;
  meta.name = "malisim_serve";
  meta.git_sha = GitSha();
  StatusOr<fault::FaultPlan> plan =
      fault::FaultPlan::FromOptions(options.engine.fault);
  if (plan.ok()) {
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(plan->Hash()));
    meta.fault_plan_hash = buf;
  }
  meta.options = {
      {"deadline_sec", std::to_string(options.engine.default_deadline_sec)},
      {"fault_rate", std::to_string(options.engine.fault.rate)},
      {"fault_seed", std::to_string(options.engine.fault.seed)},
      {"fault_spec", options.engine.fault.spec},
      {"jobs", options.jobs_path.empty()
                   ? "load-driver:" + std::to_string(options.load_driver)
                   : options.jobs_path},
      {"queue_depth", std::to_string(options.engine.queue_depth)},
      {"seed", std::to_string(options.seed)},
      {"shards", std::to_string(options.engine.shards)},
      {"workers", std::to_string(options.engine.workers_per_shard)},
  };
  return obs::WriteBenchReport(meta, {}, {}, report.metrics,
                               options.bench_json_path);
}

int Main(int argc, char** argv) {
  InitLogLevelFromEnv();
  const ServeToolOptions options = ParseArgs(argc, argv);

  std::vector<serve::JobSpec> jobs;
  if (!options.jobs_path.empty()) {
    std::ifstream in(options.jobs_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot read job file '%s'\n",
                   options.jobs_path.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    StatusOr<std::vector<serve::JobSpec>> parsed =
        serve::ParseJobFile(text.str());
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 2;
    }
    jobs = *std::move(parsed);
  } else {
    jobs = serve::GenerateLoad(options.load_driver, options.seed);
  }

  serve::ServeOptions engine_options = options.engine;
  sim::TuningCache tune_cache;
  if (!options.tune_cache_path.empty()) {
    tune_cache = sim::TuningCache::LoadFileOrEmpty(options.tune_cache_path);
    engine_options.tune_cache = &tune_cache;
  }

  // Telemetry plane: constructed before (destroyed after) the engine.
  obs::Recorder recorder;
  obs::FileTelemetrySink telemetry_sink;
  std::unique_ptr<obs::TelemetryPlane> telemetry;
  if (!options.slo_spec.empty() && options.telemetry_out.empty()) {
    std::fprintf(stderr, "--slo-spec requires --telemetry-out\n");
    return 2;
  }
  if (!options.telemetry_out.empty()) {
    obs::TelemetryOptions topts = options.telemetry;
    if (!options.slo_spec.empty()) {
      StatusOr<obs::SloSpec> slo = obs::SloSpec::Parse(options.slo_spec);
      if (!slo.ok()) {
        std::fprintf(stderr, "--slo-spec: %s\n",
                     slo.status().ToString().c_str());
        return 2;
      }
      topts.slo = *std::move(slo);
    }
    const Status opened = telemetry_sink.Open(options.telemetry_out);
    if (!opened.ok()) {
      std::fprintf(stderr, "%s\n", opened.ToString().c_str());
      return 1;
    }
    topts.recorder = &recorder;
    telemetry = std::make_unique<obs::TelemetryPlane>(topts, &telemetry_sink);
    engine_options.telemetry = telemetry.get();
  }

  std::signal(SIGINT, HandleSigint);
  serve::ServeEngine engine(engine_options);
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;
  bool drained_early = false;
  for (const serve::JobSpec& job : jobs) {
    if (g_interrupted.load() && !drained_early) {
      MALI_LOG_WARN("SIGINT: draining (queued jobs finish, new ones shed)");
      engine.BeginShutdown();
      drained_early = true;
    }
    if (engine.Submit(job).ok()) {
      ++accepted;
    } else {
      ++shed;
    }
  }
  if (g_interrupted.load() && !drained_early) engine.BeginShutdown();

  serve::ServeReport report = engine.Drain();
  std::printf("%s", report.ToText().c_str());
  std::printf("submission: %llu accepted, %llu shed at admission\n",
              static_cast<unsigned long long>(accepted),
              static_cast<unsigned long long>(shed));

  int exit_code = report.Consistent() ? 0 : 1;
  if (telemetry != nullptr) {
    const obs::TelemetryTotals totals = telemetry->Totals();
    std::printf(
        "telemetry: %llu window(s), %llu exemplar(s), %llu SLO breach(es)/"
        "%llu recover(ies) -> %s (+ %s)\n",
        static_cast<unsigned long long>(totals.windows),
        static_cast<unsigned long long>(totals.exemplars),
        static_cast<unsigned long long>(totals.slo_breaches),
        static_cast<unsigned long long>(totals.slo_recoveries),
        options.telemetry_out.c_str(), telemetry_sink.prom_path().c_str());
    if (const std::uint64_t late = recorder.late_records(); late > 0) {
      std::printf(
          "WARNING: %llu record(s) arrived after the recorder was sealed — "
          "exports taken at drain may be missing events "
          "(serve/obs/late_records)\n",
          static_cast<unsigned long long>(late));
    }
    if (!telemetry_sink.status().ok()) {
      std::fprintf(stderr, "telemetry write failed: %s\n",
                   telemetry_sink.status().ToString().c_str());
      exit_code = 1;
    }
  }
  if (!options.tune_cache_path.empty()) {
    const Status saved = tune_cache.SaveFile(options.tune_cache_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "could not save tuning cache %s: %s\n",
                   options.tune_cache_path.c_str(),
                   saved.ToString().c_str());
      exit_code = 1;
    }
  }
  if (!options.report_path.empty()) {
    const Status written = WriteFile(options.report_path,
                                     report.ToJson(options.include_results));
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      exit_code = 1;
    }
  }
  if (!options.bench_json_path.empty()) {
    const Status written = WriteBenchRecord(options, report);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      exit_code = 1;
    }
  }
  return exit_code;
}

}  // namespace
}  // namespace malisim

int main(int argc, char** argv) { return malisim::Main(argc, argv); }
