// malisim-prof: the Streamline-style profiler front-end.
//
// Runs the selected benchmarks with an observability recorder attached,
// prints a profile report (hot opcodes, cache hit rates, pipe bottleneck,
// energy breakdown) and writes the machine-readable artifacts into the
// output directory:
//
//   profile_trace.json    Chrome/Perfetto trace: per-shader-core kernel
//                         spans with nested work-group slices, the host
//                         command queue, and a per-rail power counter track
//                         (load in https://ui.perfetto.dev)
//   profile_metrics.json  full metrics dump, schema "malisim-prof-v1"
//   profile_metrics.csv   one row per (kernel launch, modelled core)
//   profile_power.csv     the sampled power timeline, one row per sample
//   profile_hotspots.collapsed  (--hotspots only) collapsed-stack dump of
//                         the host-side self-profile, ready for
//                         flamegraph.pl / speedscope
//
// Usage:
//   malisim-prof [--fp64] [--quick] [--benchmarks=a,b,c] [--out=DIR]
//                [--power-hz=N] [--seed=N] [--repetitions=N] [--no-trace]
//                [--hotspots] [--prof-mode=sampled|exact] [--prof-period=N]
//
// --hotspots turns on the host-side self-profiler (obs/host_prof.h): the
// run additionally prints a ranked host-time table (phases, interpreter
// opcodes, kernel basic blocks) with the attributed fraction of wall time,
// and writes the collapsed-stack file above. Host wall-clock numbers stay
// strictly out of every modelled artifact.
//
// Benchmarks run serially (sim_threads implied 1 for the export path):
// parallel RunAll records kernel/segment order nondeterministically, and
// the trace layout derives from record order. The modelled numbers are
// identical either way; only this tool's track layout needs the order.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/status.h"
#include "harness/experiment.h"
#include "hpc/benchmark.h"
#include "obs/export.h"
#include "obs/host_prof.h"
#include "obs/metrics.h"
#include "obs/obs_options.h"
#include "obs/power_sampler.h"
#include "obs/recorder.h"
#include "power/power_model.h"

namespace malisim {
namespace {

struct ProfOptions {
  bool fp64 = false;
  bool quick = false;
  bool trace = true;
  /// Print the compact per-kernel percentile summary (p50/p90/p99/max of
  /// modelled launch time) instead of the full text report.
  bool summary = false;
  double power_hz = 10.0;
  std::uint64_t seed = 42;
  int repetitions = 5;
  /// Host-side self-profiling (--hotspots): ranked host-time report and
  /// the collapsed-stack artifact. --prof-mode=exact forces period 1
  /// (exact per-opcode tally); sampled mode reads the clock once per
  /// --prof-period executed instructions.
  bool hotspots = false;
  bool prof_exact = false;
  std::uint32_t prof_period = 256;
  /// KIR execution engine (--kir-exec=interp|bytecode). Modelled numbers
  /// are identical; interp is useful to compare hotspot profiles against
  /// the bytecode VM.
  KirExec kir_exec = KirExec::kBytecode;
  std::string out_dir = "results";
  std::vector<std::string> benchmarks;  // empty = all registered
  /// Fault-injection knobs; injected faults and resilience actions show
  /// up in the report's fault-event table and the metrics JSON.
  FaultOptions fault;
};

void PrintUsage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--fp64] [--quick] [--benchmarks=a,b,c] [--out=DIR]\n"
      "          [--power-hz=N] [--seed=N] [--repetitions=N] [--no-trace]\n"
      "          [--summary] [--hotspots] [--prof-mode=sampled|exact]\n"
      "          [--prof-period=N] [--kir-exec=interp|bytecode]\n"
      "          [--log-level=LEVEL] [--fault-seed=N]\n"
      "          [--fault-rate=P] [--fault-spec=SPEC] [--watchdog=SEC]\n"
      "\n"
      "Profiles the paper benchmarks on the modelled Exynos 5250 and writes\n"
      "profile_trace.json / profile_metrics.{json,csv} / profile_power.csv\n"
      "into DIR (default: results). Known benchmarks:\n  ",
      argv0);
  for (const std::string& name : hpc::RegisteredBenchmarks()) {
    std::fprintf(stderr, " %s", name.c_str());
  }
  std::fprintf(stderr, "\n");
}

std::vector<std::string> SplitCsv(const std::string& list) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > start) out.push_back(list.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

bool ParseArgs(int argc, char** argv, ProfOptions* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fp64") {
      options->fp64 = true;
    } else if (arg == "--fp32") {
      options->fp64 = false;
    } else if (arg == "--quick") {
      options->quick = true;
    } else if (arg == "--no-trace") {
      options->trace = false;
    } else if (arg == "--summary") {
      options->summary = true;
    } else if (arg == "--hotspots") {
      options->hotspots = true;
    } else if (arg.rfind("--prof-mode=", 0) == 0) {
      const std::string mode = arg.substr(12);
      if (mode == "exact") {
        options->prof_exact = true;
      } else if (mode == "sampled") {
        options->prof_exact = false;
      } else {
        std::fprintf(stderr,
                     "malisim-prof: unknown --prof-mode '%s' (sampled|exact)\n",
                     mode.c_str());
        return false;
      }
    } else if (arg.rfind("--prof-period=", 0) == 0) {
      const long period = std::strtol(arg.c_str() + 14, nullptr, 10);
      if (period < 1) {
        std::fprintf(stderr, "malisim-prof: --prof-period must be >= 1\n");
        return false;
      }
      options->prof_period = static_cast<std::uint32_t>(period);
    } else if (arg.rfind("--kir-exec=", 0) == 0) {
      const std::string engine = arg.substr(11);
      if (engine == "interp") {
        options->kir_exec = KirExec::kInterp;
      } else if (engine == "bytecode") {
        options->kir_exec = KirExec::kBytecode;
      } else {
        std::fprintf(stderr,
                     "malisim-prof: unknown --kir-exec '%s' "
                     "(interp|bytecode)\n",
                     engine.c_str());
        return false;
      }
    } else if (arg.rfind("--log-level=", 0) == 0) {
      // main() ran InitLogLevelFromEnv first, so the flag wins over the env.
      if (!ApplyLogLevelFlag(arg.substr(12))) {
        std::fprintf(stderr,
                     "malisim-prof: unknown --log-level '%s' "
                     "(debug|info|warn|error|off)\n",
                     arg.c_str() + 12);
        return false;
      }
    } else if (arg.rfind("--benchmarks=", 0) == 0) {
      options->benchmarks = SplitCsv(arg.substr(13));
    } else if (arg.rfind("--out=", 0) == 0) {
      options->out_dir = arg.substr(6);
    } else if (arg.rfind("--power-hz=", 0) == 0) {
      options->power_hz = std::strtod(arg.c_str() + 11, nullptr);
      if (options->power_hz <= 0.0) {
        std::fprintf(stderr, "malisim-prof: --power-hz must be > 0\n");
        return false;
      }
    } else if (arg.rfind("--seed=", 0) == 0) {
      options->seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--repetitions=", 0) == 0) {
      options->repetitions =
          static_cast<int>(std::strtol(arg.c_str() + 14, nullptr, 10));
      if (options->repetitions < 1) options->repetitions = 1;
    } else if (arg.rfind("--fault-seed=", 0) == 0) {
      options->fault.seed = std::strtoull(arg.c_str() + 13, nullptr, 10);
    } else if (arg.rfind("--fault-rate=", 0) == 0) {
      options->fault.rate = std::strtod(arg.c_str() + 13, nullptr);
    } else if (arg.rfind("--fault-spec=", 0) == 0) {
      options->fault.spec = arg.substr(13);
    } else if (arg.rfind("--watchdog=", 0) == 0) {
      options->fault.watchdog_sec = std::strtod(arg.c_str() + 11, nullptr);
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(argv[0]);
      return false;
    } else {
      std::fprintf(stderr, "malisim-prof: unknown flag '%s'\n", arg.c_str());
      PrintUsage(argv[0]);
      return false;
    }
  }
  return true;
}

int Run(const ProfOptions& options) {
  harness::ExperimentConfig config;
  config.fp64 = options.fp64;
  config.seed = options.seed;
  config.repetitions = options.repetitions;
  config.fault = options.fault;
  config.kir_exec = options.kir_exec;
  if (options.quick) config.sizes = hpc::ProblemSizes::Quick();

  obs::ObsOptions obs_options;
  obs_options.enabled = true;
  obs_options.counters = true;
  obs_options.trace = options.trace;
  obs_options.power_hz = options.power_hz;
  obs_options.host_prof = options.hotspots;
  obs_options.host_prof_exact = options.prof_exact;
  obs_options.host_prof_period = options.prof_period;
  obs::Recorder recorder(obs_options);
  config.recorder = &recorder;

  harness::ExperimentRunner runner(config);
  std::vector<std::string> names = options.benchmarks;
  if (names.empty()) names = hpc::RegisteredBenchmarks();

  const auto host_start = std::chrono::steady_clock::now();
  for (const std::string& name : names) {
    std::printf("profiling %s (%s)...\n", name.c_str(),
                options.fp64 ? "fp64" : "fp32");
    auto result = runner.RunBenchmark(name);
    if (!result.ok()) {
      std::fprintf(stderr, "malisim-prof: %s failed: %s\n", name.c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
  }
  const double wall_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    host_start)
          .count();

  // Flush contract (obs/recorder.h): all benchmarks ran to completion
  // above, so seal the recorder before any export reads it. A record
  // landing after this point would be counted and logged instead of
  // silently missing from some of the artifacts.
  recorder.Seal();

  // The exporters need the same power model the harness measured with.
  const power::PowerModel model(config.power);

  if (options.summary) {
    std::printf("\n%s", obs::SummaryReport(recorder, model).c_str());
  } else {
    std::printf("\n%s", obs::TextReport(recorder, model).c_str());
  }

  if (options.hotspots && recorder.host_prof() != nullptr) {
    const obs::HostProf& prof = *recorder.host_prof();
    const obs::HostProf::Snapshot snapshot = prof.TakeSnapshot();
    std::printf("\n%s", obs::HostProf::HotspotsTable(snapshot, wall_sec).c_str());
    std::printf(
        "host time attributed: %.1f%% of %.3f s wall "
        "(profiler self-cost ~%.2f%% of interp time, mode=%s period=%u)\n",
        100.0 * prof.AttributedFraction(wall_sec), wall_sec,
        100.0 * prof.SampleOverheadFraction(),
        options.prof_exact ? "exact" : "sampled", prof.period());
  }

  std::error_code ec;
  std::filesystem::create_directories(options.out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "malisim-prof: cannot create %s: %s\n",
                 options.out_dir.c_str(), ec.message().c_str());
    return 1;
  }
  const std::string base = options.out_dir + "/";

  struct Artifact {
    std::string path;
    Status status;
  };
  std::vector<Artifact> written;
  if (options.trace) {
    written.push_back(
        {base + "profile_trace.json",
         obs::WritePerfettoTrace(recorder, model, base + "profile_trace.json")});
  }
  written.push_back(
      {base + "profile_metrics.json",
       obs::WriteMetricsJson(recorder, model, base + "profile_metrics.json")});
  written.push_back(
      {base + "profile_metrics.csv",
       obs::WriteKernelMetricsCsv(recorder, base + "profile_metrics.csv")});
  const obs::PowerSampler sampler(&model, options.power_hz);
  const obs::PowerTimeline timeline =
      sampler.Render(recorder.power_segments());
  written.push_back(
      {base + "profile_power.csv",
       obs::WritePowerTimelineCsv(timeline, base + "profile_power.csv")});
  if (options.hotspots && recorder.host_prof() != nullptr) {
    const std::string path = base + "profile_hotspots.collapsed";
    const std::string text =
        obs::HostProf::Collapsed(recorder.host_prof()->TakeSnapshot());
    Status status = Status::Ok();
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      status = Status(ErrorCode::kInternal, "cannot open " + path);
    } else {
      std::fputs(text.c_str(), f);
      std::fclose(f);
    }
    written.push_back({path, status});
  }

  bool ok = true;
  std::printf("\nArtifacts:\n");
  for (const Artifact& a : written) {
    if (a.status.ok()) {
      std::printf("  %s\n", a.path.c_str());
    } else {
      std::fprintf(stderr, "  FAILED %s: %s\n", a.path.c_str(),
                   a.status.ToString().c_str());
      ok = false;
    }
  }
  if (options.trace && ok) {
    std::printf("\nOpen profile_trace.json in https://ui.perfetto.dev "
                "(pid 1 = modelled SoC, pid 2 = power meter).\n");
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace malisim

int main(int argc, char** argv) {
  malisim::InitLogLevelFromEnv();
  malisim::ProfOptions options;
  if (!malisim::ParseArgs(argc, argv, &options)) return 2;
  return malisim::Run(options);
}
