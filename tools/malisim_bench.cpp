// malisim-bench: regression detection over BENCH_*.json records.
//
// Loads a baseline and a candidate record (emitted by the figure binaries
// via --bench-json=PATH), computes per-metric relative deltas with
// direction-aware verdicts (a slower kernel is a regression, a faster one
// an improvement, a changed fault count is reported but never a verdict),
// prints a ranked report and exits non-zero when any metric regressed
// beyond its threshold — that exit code is what gates CI.
//
// Usage:
//   malisim-bench --baseline=results/baseline.json --candidate=BENCH.json
//                 [--threshold=0.05] [--threshold-spec=prefix=val[,...]]
//                 [--json] [--top=N]
//
// Exit codes: 0 = no regressions, 1 = regressions found, 2 = usage or
// load error.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/log.h"
#include "common/status.h"
#include "obs/bench_report.h"

namespace malisim {
namespace {

struct CliOptions {
  std::string baseline;
  std::string candidate;
  obs::CompareOptions compare;
  bool json = false;
  std::size_t top = 25;
};

void PrintUsage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --baseline=PATH --candidate=PATH [--threshold=0.05]\n"
      "          [--threshold-spec=prefix=val[,...]] [--json] [--top=N]\n"
      "          [--log-level=LEVEL]\n"
      "\n"
      "Compares two malisim-bench-v1 records and exits 1 when any metric\n"
      "regressed beyond its relative threshold. --threshold-spec overrides\n"
      "the threshold for metrics matching a name prefix, longest match\n"
      "wins, e.g. --threshold-spec=hist/=0.10,cell/dmmm/=0.02\n"
      "Measured-host throughput metrics (sim_throughput_host/) default to\n"
      "a loose 3.0 threshold — they are wall-clock, not modelled — which\n"
      "any --threshold-spec entry for that prefix overrides.\n",
      argv0);
}

bool ParseThresholdSpec(const std::string& spec, obs::CompareOptions* out) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.rfind('=');
    if (eq == std::string::npos || eq == 0) {
      std::fprintf(stderr,
                   "malisim-bench: threshold-spec entry '%s' is not of the "
                   "form prefix=value\n",
                   entry.c_str());
      return false;
    }
    char* end = nullptr;
    const std::string value_text = entry.substr(eq + 1);
    const double value = std::strtod(value_text.c_str(), &end);
    if (end == value_text.c_str() || *end != '\0' || value < 0.0) {
      std::fprintf(stderr,
                   "malisim-bench: threshold '%s' is not a number >= 0\n",
                   value_text.c_str());
      return false;
    }
    out->prefix_thresholds.emplace_back(entry.substr(0, eq), value);
  }
  return true;
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  // Default loose thresholds for the measured-host sections: those numbers
  // are wall-clock (machine- and load-dependent), so only a 3x swing is
  // worth flagging. Flattened metric names carry their category prefix
  // (gauge/, counter/, hist/), so each category needs its own entry.
  // Prepended so any user --threshold-spec entry with the same or a longer
  // prefix wins (ThresholdFor prefers the later, longer match).
  for (const char* category : {"gauge/", "counter/", "hist/"}) {
    options->compare.prefix_thresholds.emplace_back(
        std::string(category) + "sim_throughput_host/", 3.0);
    options->compare.prefix_thresholds.emplace_back(
        std::string(category) + "serve_host/", 3.0);
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--baseline=", 0) == 0) {
      options->baseline = arg.substr(11);
    } else if (arg.rfind("--candidate=", 0) == 0) {
      options->candidate = arg.substr(12);
    } else if (arg.rfind("--threshold=", 0) == 0) {
      char* end = nullptr;
      options->compare.threshold = std::strtod(arg.c_str() + 12, &end);
      if (end == arg.c_str() + 12 || *end != '\0' ||
          options->compare.threshold < 0.0) {
        std::fprintf(stderr,
                     "malisim-bench: --threshold must be a number >= 0\n");
        return false;
      }
    } else if (arg.rfind("--threshold-spec=", 0) == 0) {
      if (!ParseThresholdSpec(arg.substr(17), &options->compare)) {
        return false;
      }
    } else if (arg == "--json") {
      options->json = true;
    } else if (arg.rfind("--log-level=", 0) == 0) {
      // main() ran InitLogLevelFromEnv first, so the flag wins over the env.
      if (!ApplyLogLevelFlag(arg.substr(12))) {
        std::fprintf(stderr,
                     "malisim-bench: unknown --log-level '%s' "
                     "(debug|info|warn|error|off)\n",
                     arg.c_str() + 12);
        return false;
      }
    } else if (arg.rfind("--top=", 0) == 0) {
      const long n = std::strtol(arg.c_str() + 6, nullptr, 10);
      options->top = n < 1 ? 1 : static_cast<std::size_t>(n);
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(argv[0]);
      return false;
    } else {
      std::fprintf(stderr, "malisim-bench: unknown flag '%s'\n", arg.c_str());
      PrintUsage(argv[0]);
      return false;
    }
  }
  if (options->baseline.empty() || options->candidate.empty()) {
    std::fprintf(stderr,
                 "malisim-bench: --baseline and --candidate are required\n");
    PrintUsage(argv[0]);
    return false;
  }
  return true;
}

int Run(const CliOptions& options) {
  StatusOr<obs::ParsedBenchReport> baseline =
      obs::LoadBenchReport(options.baseline);
  if (!baseline.ok()) {
    std::fprintf(stderr, "malisim-bench: %s\n",
                 baseline.status().ToString().c_str());
    return 2;
  }
  StatusOr<obs::ParsedBenchReport> candidate =
      obs::LoadBenchReport(options.candidate);
  if (!candidate.ok()) {
    std::fprintf(stderr, "malisim-bench: %s\n",
                 candidate.status().ToString().c_str());
    return 2;
  }

  const obs::BenchComparison comparison =
      obs::CompareBenchReports(*baseline, *candidate, options.compare);
  if (options.json) {
    std::fputs(obs::ComparisonJson(comparison).c_str(), stdout);
  } else {
    std::printf("baseline:  %s (%s, git %s)\n", options.baseline.c_str(),
                baseline->name.c_str(), baseline->git_sha.c_str());
    std::printf("candidate: %s (%s, git %s)\n", options.candidate.c_str(),
                candidate->name.c_str(), candidate->git_sha.c_str());
    std::fputs(obs::ComparisonText(comparison, options.top).c_str(), stdout);
  }
  return comparison.HasRegressions() ? 1 : 0;
}

}  // namespace
}  // namespace malisim

int main(int argc, char** argv) {
  malisim::InitLogLevelFromEnv();
  malisim::CliOptions options;
  if (!malisim::ParseArgs(argc, argv, &options)) return 2;
  return malisim::Run(options);
}
