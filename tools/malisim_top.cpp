// malisim-top: watch CLI over the live telemetry stream malisim-serve
// writes with --telemetry-out= (schema "malisim-telemetry-v1", one JSON
// snapshot per modelled-time window, appended as the run progresses).
//
// Modes:
//   malisim-top FILE.jsonl            follow: re-render on every new
//                                     snapshot until interrupted
//   malisim-top --once FILE.jsonl     render the newest snapshot and exit
//   malisim-top --check FILE.jsonl    validate the whole stream against
//                                     the schema (CI smoke): every line
//                                     parses, schema tag matches, window
//                                     indices strictly increase, per-state
//                                     counts sum to the window's job count
//
// Exit codes: 0 = ok, 1 = invalid stream (--check) or unreadable file,
// 2 = bad flags.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "common/table.h"

namespace malisim {
namespace {

constexpr std::string_view kSchema = "malisim-telemetry-v1";

const char* const kStates[] = {"ok", "degraded", "shed", "deadline-exceeded",
                               "failed"};

struct TopOptions {
  std::string path;
  bool once = false;
  bool check = false;
  int interval_ms = 500;
};

[[noreturn]] void Usage(const char* bad_flag) {
  std::fprintf(stderr,
               "unknown flag or missing file '%s'\n"
               "usage: malisim-top [--once | --check] [--interval-ms=N] "
               "FILE.jsonl\n",
               bad_flag);
  std::exit(2);
}

TopOptions ParseArgs(int argc, char** argv) {
  TopOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--once") {
      options.once = true;
    } else if (arg == "--check") {
      options.check = true;
    } else if (arg.rfind("--interval-ms=", 0) == 0) {
      options.interval_ms =
          static_cast<int>(std::strtol(arg.c_str() + 14, nullptr, 10));
      if (options.interval_ms < 1) options.interval_ms = 1;
    } else if (!arg.empty() && arg.front() == '-') {
      Usage(arg.c_str());
    } else {
      options.path = arg;
    }
  }
  if (options.path.empty()) Usage("(no telemetry file)");
  return options;
}

/// Splits the stream into complete lines (a partial trailing line — the
/// writer flushes per line, but a reader can still race the append — is
/// ignored until it gains its newline).
std::vector<std::string> CompleteLines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) break;
    if (nl > pos) lines.push_back(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return lines;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream text;
  text << in.rdbuf();
  *out = text.str();
  return true;
}

/// Validates one snapshot line; empty string = valid.
std::string CheckLine(const JsonValue& snap, std::uint64_t* prev_window,
                      bool first) {
  if (!snap.is_object()) return "not a JSON object";
  if (snap.StringOr("schema", "") != kSchema) {
    return "schema is not '" + std::string(kSchema) + "'";
  }
  const JsonValue* window = snap.Find("window");
  if (window == nullptr || !window->is_number()) return "missing window";
  const auto w = static_cast<std::uint64_t>(window->number_value);
  if (!first && w <= *prev_window) {
    return "window " + std::to_string(w) + " does not increase on " +
           std::to_string(*prev_window);
  }
  *prev_window = w;
  const JsonValue* states = snap.Find("states");
  if (states == nullptr || !states->is_object()) return "missing states";
  double sum = 0.0;
  for (const char* state : kStates) {
    const JsonValue* c = states->Find(state);
    if (c == nullptr || !c->is_number()) {
      return std::string("states lacks '") + state + "'";
    }
    sum += c->number_value;
  }
  if (sum != snap.NumberOr("jobs", -1.0)) {
    return "per-state counts do not sum to jobs";
  }
  if (snap.Find("latency") == nullptr || snap.Find("tenants") == nullptr ||
      snap.Find("cum") == nullptr) {
    return "missing latency/tenants/cum section";
  }
  return "";
}

int Check(const TopOptions& options) {
  std::string text;
  if (!ReadFile(options.path, &text)) {
    std::fprintf(stderr, "cannot read '%s'\n", options.path.c_str());
    return 1;
  }
  const std::vector<std::string> lines = CompleteLines(text);
  std::uint64_t prev_window = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    StatusOr<JsonValue> snap = ParseJson(lines[i]);
    if (!snap.ok()) {
      std::fprintf(stderr, "%s:%zu: %s\n", options.path.c_str(), i + 1,
                   snap.status().ToString().c_str());
      return 1;
    }
    const std::string error = CheckLine(*snap, &prev_window, i == 0);
    if (!error.empty()) {
      std::fprintf(stderr, "%s:%zu: %s\n", options.path.c_str(), i + 1,
                   error.c_str());
      return 1;
    }
  }
  std::printf("%s: %zu snapshot(s) conform to %s\n", options.path.c_str(),
              lines.size(), std::string(kSchema).c_str());
  return 0;
}

void RenderObjectCounts(const JsonValue* object, const char* heading,
                        std::string* out) {
  if (object == nullptr || !object->is_object() || object->members.empty()) {
    return;
  }
  *out += heading;
  bool first = true;
  for (const auto& [key, value] : object->members) {
    *out += first ? " " : ", ";
    first = false;
    *out += key + " " +
            (value.is_number() ? FormatDouble(value.number_value, 0)
                               : value.string_value);
  }
  *out += '\n';
}

std::string Render(const JsonValue& snap, const std::string& path,
                   std::size_t snapshots) {
  std::string out;
  out += "=== malisim-top · " + path + " · snapshot " +
         std::to_string(snapshots) + " ===\n";
  out += "window " + FormatDouble(snap.NumberOr("window", 0.0), 0) + " (t " +
         FormatDouble(snap.NumberOr("t_start_sec", 0.0), 2) + " - " +
         FormatDouble(snap.NumberOr("t_end_sec", 0.0), 2) +
         " modelled s): " + FormatDouble(snap.NumberOr("jobs", 0.0), 0) +
         " job(s)\n";
  if (const JsonValue* states = snap.Find("states"); states != nullptr) {
    out += "states:";
    for (const char* state : kStates) {
      out += std::string(" ") + state + " " +
             FormatDouble(states->NumberOr(state, 0.0), 0);
    }
    out += '\n';
  }
  if (const JsonValue* latency = snap.Find("latency");
      latency != nullptr && latency->NumberOr("count", 0.0) > 0.0) {
    out += "latency (consumed modelled sec): p50 " +
           FormatDouble(latency->NumberOr("p50", 0.0), 4) + "  p90 " +
           FormatDouble(latency->NumberOr("p90", 0.0), 4) + "  p99 " +
           FormatDouble(latency->NumberOr("p99", 0.0), 4) + "  max " +
           FormatDouble(latency->NumberOr("max", 0.0), 4) + '\n';
  }
  RenderObjectCounts(snap.Find("completed_on"), "completed on:", &out);
  if (const JsonValue* tenants = snap.Find("tenants");
      tenants != nullptr && tenants->is_object() &&
      !tenants->members.empty()) {
    Table table({"tenant", "jobs", "ok", "degraded", "shed", "deadline",
                 "failed", "shed%", "miss%", "p50 s", "p99 s"});
    for (const auto& [tenant, row] : tenants->members) {
      table.BeginRow();
      table.AddCell(tenant);
      table.AddCell(FormatDouble(row.NumberOr("jobs", 0.0), 0));
      table.AddCell(FormatDouble(row.NumberOr("ok", 0.0), 0));
      table.AddCell(FormatDouble(row.NumberOr("degraded", 0.0), 0));
      table.AddCell(FormatDouble(row.NumberOr("shed", 0.0), 0));
      table.AddCell(FormatDouble(row.NumberOr("deadline-exceeded", 0.0), 0));
      table.AddCell(FormatDouble(row.NumberOr("failed", 0.0), 0));
      table.AddCell(FormatDouble(row.NumberOr("shed_ratio", 0.0) * 100.0, 1));
      table.AddCell(
          FormatDouble(row.NumberOr("deadline_miss_ratio", 0.0) * 100.0, 1));
      table.AddCell(FormatDouble(row.NumberOr("p50_sec", 0.0), 4));
      table.AddCell(FormatDouble(row.NumberOr("p99_sec", 0.0), 4));
    }
    out += table.ToAscii();
  }
  if (const JsonValue* breakers = snap.Find("breakers");
      breakers != nullptr && breakers->is_object() &&
      !breakers->members.empty()) {
    out += "breakers:";
    for (const auto& [rung, state] : breakers->members) {
      out += " " + rung + "=" + state.string_value;
    }
    out += '\n';
  }
  if (const JsonValue* slo = snap.Find("slo");
      slo != nullptr && slo->is_array() && !slo->array.empty()) {
    Table table({"objective", "short", "long", "state"});
    for (const JsonValue& row : slo->array) {
      table.BeginRow();
      table.AddCell(row.StringOr("objective", "?"));
      table.AddCell(FormatDouble(row.NumberOr("short", 0.0), 4));
      table.AddCell(FormatDouble(row.NumberOr("long", 0.0), 4));
      const JsonValue* breached = row.Find("breached");
      table.AddCell(breached != nullptr && breached->bool_value ? "BREACHED"
                                                                : "ok");
    }
    out += "slo:\n" + table.ToAscii();
  }
  if (const JsonValue* events = snap.Find("events");
      events != nullptr && events->is_array()) {
    for (const JsonValue& event : events->array) {
      out += "event: " + event.StringOr("action", "?") + " " +
             event.StringOr("objective", "?") + '\n';
    }
  }
  if (const JsonValue* cum = snap.Find("cum"); cum != nullptr) {
    out += "cumulative: " + FormatDouble(cum->NumberOr("jobs", 0.0), 0) +
           " job(s) over " + FormatDouble(cum->NumberOr("windows", 0.0), 0) +
           " window(s), " + FormatDouble(cum->NumberOr("exemplars", 0.0), 0) +
           " exemplar(s), " +
           FormatDouble(cum->NumberOr("slo_breaches", 0.0), 0) +
           " SLO breach(es)\n";
  }
  return out;
}

int RenderOnce(const TopOptions& options) {
  std::string text;
  if (!ReadFile(options.path, &text)) {
    std::fprintf(stderr, "cannot read '%s'\n", options.path.c_str());
    return 1;
  }
  const std::vector<std::string> lines = CompleteLines(text);
  if (lines.empty()) {
    std::printf("%s: no complete snapshots yet\n", options.path.c_str());
    return 0;
  }
  StatusOr<JsonValue> snap = ParseJson(lines.back());
  if (!snap.ok()) {
    std::fprintf(stderr, "%s: %s\n", options.path.c_str(),
                 snap.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", Render(*snap, options.path, lines.size()).c_str());
  return 0;
}

int Follow(const TopOptions& options) {
  std::size_t rendered = 0;
  for (;;) {
    std::string text;
    if (ReadFile(options.path, &text)) {
      const std::vector<std::string> lines = CompleteLines(text);
      if (lines.size() != rendered && !lines.empty()) {
        StatusOr<JsonValue> snap = ParseJson(lines.back());
        if (snap.ok()) {
          rendered = lines.size();
          // ANSI clear + home; falls out harmlessly on dumb terminals.
          std::printf("\x1b[2J\x1b[H%s",
                      Render(*snap, options.path, lines.size()).c_str());
          std::fflush(stdout);
        }
      }
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options.interval_ms));
  }
}

int Main(int argc, char** argv) {
  const TopOptions options = ParseArgs(argc, argv);
  if (options.check) return Check(options);
  if (options.once) return RenderOnce(options);
  return Follow(options);
}

}  // namespace
}  // namespace malisim

int main(int argc, char** argv) { return malisim::Main(argc, argv); }
