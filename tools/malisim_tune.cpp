// malisim-tune: the autotuner front-end (DESIGN.md §12).
//
// Runs sim::Tuner over the §III optimization space of each selected
// benchmark, prints the winning-configuration table — winner, paper
// hand-pick, score under the chosen objective, search accounting — and
// optionally writes a schema-versioned JSON record ("malisim-tune-v1") of
// the run for machine comparison.
//
// Usage:
//   malisim-tune [--objective=time|energy|edp] [--benchmarks=a,b,c]
//                [--fp64] [--quick] [--seed=N] [--threads=N]
//                [--tune-cache=PATH] [--json=PATH]
//                [--device=mali|a15|hetero]
//
// Everything is deterministic: same flags, byte-identical table and JSON
// for any --threads value (CI cmp-checks two runs). The tuning cache is
// loaded before and saved after the run; a corrupt cache file degrades to
// an empty one with a warning, never an abort.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/log.h"
#include "common/status.h"
#include "common/table.h"
#include "common/version.h"
#include "harness/tuning.h"
#include "hpc/benchmark.h"
#include "hpc/problem_sizes.h"
#include "sim/tuner.h"

namespace malisim {
namespace {

struct TuneToolOptions {
  sim::Objective objective = sim::Objective::kEnergy;
  bool fp64 = false;
  std::uint64_t seed = 42;
  int threads = 1;
  hpc::ProblemSizes sizes;
  std::string cache_path;
  std::string json_path;
  sim::BackendKind device = sim::BackendKind::kMali;
  std::vector<std::string> benchmarks;  // empty = all registered
};

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > pos) out.push_back(s.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

TuneToolOptions ParseArgs(int argc, char** argv) {
  TuneToolOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--objective=", 0) == 0) {
      if (!sim::ParseObjective(arg.substr(12), &options.objective)) {
        std::fprintf(stderr, "unknown --objective '%s' (time|energy|edp)\n",
                     arg.c_str() + 12);
        std::exit(2);
      }
    } else if (arg == "--fp64") {
      options.fp64 = true;
    } else if (arg == "--quick") {
      options.sizes = hpc::ProblemSizes::Quick();
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--threads=", 0) == 0) {
      options.threads =
          static_cast<int>(std::strtol(arg.c_str() + 10, nullptr, 10));
      if (options.threads < 1) options.threads = 1;
    } else if (arg.rfind("--tune-cache=", 0) == 0) {
      options.cache_path = arg.substr(13);
    } else if (arg.rfind("--json=", 0) == 0) {
      options.json_path = arg.substr(7);
    } else if (arg.rfind("--log-level=", 0) == 0) {
      // Main() ran InitLogLevelFromEnv first, so the flag wins over the env.
      if (!ApplyLogLevelFlag(arg.substr(12))) {
        std::fprintf(stderr,
                     "unknown --log-level '%s' (debug|info|warn|error|off)\n",
                     arg.c_str() + 12);
        std::exit(2);
      }
    } else if (arg.rfind("--benchmarks=", 0) == 0) {
      options.benchmarks = SplitCsv(arg.substr(13));
    } else if (arg.rfind("--device=", 0) == 0) {
      if (!sim::ParseBackend(arg.substr(9), &options.device)) {
        std::fprintf(stderr, "unknown --device '%s' (mali|a15|hetero)\n",
                     arg.c_str() + 9);
        std::exit(2);
      }
    } else {
      std::fprintf(
          stderr,
          "unknown flag '%s'\n"
          "usage: malisim-tune [--objective=time|energy|edp] [--fp64]\n"
          "                    [--quick] [--seed=N] [--threads=N]\n"
          "                    [--benchmarks=a,b,c] [--tune-cache=PATH]\n"
          "                    [--json=PATH] [--device=mali|a15|hetero]\n"
          "                    [--log-level=LEVEL]\n",
          arg.c_str());
      std::exit(2);
    }
  }
  return options;
}

struct TuneRow {
  std::string benchmark;
  bool ok = false;
  std::string failure;
  harness::TuningReport report;
};

int Main(int argc, char** argv) {
  InitLogLevelFromEnv();
  const TuneToolOptions options = ParseArgs(argc, argv);
  std::vector<std::string> names = options.benchmarks;
  if (names.empty()) names = hpc::RegisteredBenchmarks();

  sim::TuningCache cache;
  if (!options.cache_path.empty()) {
    cache = sim::TuningCache::LoadFileOrEmpty(options.cache_path);
  }

  std::vector<TuneRow> rows;
  for (const std::string& name : names) {
    harness::TuningRequest request;
    request.benchmark = name;
    request.sizes = options.sizes;
    request.fp64 = options.fp64;
    request.seed = options.seed;
    request.device = options.device;
    request.tuner.objective = options.objective;
    request.tuner.seed = options.seed;
    request.tuner.threads = options.threads;
    request.cache = options.cache_path.empty() ? nullptr : &cache;

    TuneRow row;
    row.benchmark = name;
    StatusOr<harness::TuningReport> report = harness::TuneBenchmark(request);
    if (report.ok()) {
      row.ok = true;
      row.report = *std::move(report);
    } else {
      row.failure = report.status().ToString();
    }
    rows.push_back(std::move(row));
  }

  // The winning-configuration table. The "paper §III" column is the
  // hand-picked configuration the tuner's winner is measured against.
  Table table({"benchmark", "winner", "paper §III",
               std::string("score (") +
                   std::string(sim::ObjectiveName(options.objective)) + ")",
               "seconds", "energy J", "searched", "skipped", "source"});
  for (const TuneRow& row : rows) {
    table.BeginRow();
    table.AddCell(row.benchmark);
    if (!row.ok) {
      table.AddCell(row.failure);
      for (int i = 0; i < 6; ++i) table.AddMissing();
      table.AddCell("failed");
      continue;
    }
    const sim::TunerResult& r = row.report.result;
    table.AddCell(r.best.CanonicalKey());
    table.AddCell(row.report.paper_config.CanonicalKey());
    table.AddNumber(r.best_score, 6);
    table.AddNumber(r.best_measurement.seconds, 6);
    table.AddNumber(r.best_measurement.energy_j, 6);
    table.AddCell(std::to_string(r.evaluated) + "/" +
                  std::to_string(r.space_size));
    table.AddCell(std::to_string(r.skipped));
    table.AddCell(r.from_cache ? "cache"
                               : (r.exhaustive ? "exhaustive" : "hill-climb"));
  }
  std::printf("malisim-tune: §III autotuning, objective=%s, %s, seed=%llu\n",
              std::string(sim::ObjectiveName(options.objective)).c_str(),
              options.fp64 ? "fp64" : "fp32",
              static_cast<unsigned long long>(options.seed));
  std::printf("%s", table.ToAscii().c_str());

  if (!options.cache_path.empty()) {
    const Status saved = cache.SaveFile(options.cache_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "could not save tuning cache %s: %s\n",
                   options.cache_path.c_str(), saved.ToString().c_str());
      return 1;
    }
  }

  if (!options.json_path.empty()) {
    JsonWriter w;
    w.BeginObject();
    w.Key("schema");
    w.String("malisim-tune-v1");
    w.Key("git_sha");
    w.String(GitSha());
    w.Key("objective");
    w.String(std::string(sim::ObjectiveName(options.objective)));
    w.Key("precision");
    w.String(options.fp64 ? "fp64" : "fp32");
    w.Key("seed");
    w.Number(static_cast<std::uint64_t>(options.seed));
    w.Key("benchmarks");
    w.BeginArray();
    for (const TuneRow& row : rows) {
      w.BeginObject();
      w.Key("name");
      w.String(row.benchmark);
      w.Key("ok");
      w.Bool(row.ok);
      if (!row.ok) {
        w.Key("failure");
        w.String(row.failure);
      } else {
        const sim::TunerResult& r = row.report.result;
        w.Key("winner");
        w.String(r.best.CanonicalKey());
        w.Key("paper_config");
        w.String(row.report.paper_config.CanonicalKey());
        w.Key("score");
        w.Number(r.best_score);
        w.Key("seconds");
        w.Number(r.best_measurement.seconds);
        w.Key("energy_j");
        w.Number(r.best_measurement.energy_j);
        w.Key("space_size");
        w.Number(r.space_size);
        w.Key("evaluated");
        w.Number(r.evaluated);
        w.Key("skipped");
        w.Number(r.skipped);
        w.Key("exhaustive");
        w.Bool(r.exhaustive);
        w.Key("from_cache");
        w.Bool(r.from_cache);
        w.Key("cache_key");
        w.String(row.report.cache_key);
      }
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    std::FILE* f = std::fopen(options.json_path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "could not open %s\n", options.json_path.c_str());
      return 1;
    }
    std::fputs(w.str().c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s\n", options.json_path.c_str());
  }

  // Any benchmark that failed for a reason other than the modelled
  // erratum space (NotFound = every candidate failed, e.g. amcd FP64) is
  // still a successful tool run; an unknown benchmark name is not.
  for (const TuneRow& row : rows) {
    if (!row.ok && row.failure.find("unknown benchmark") != std::string::npos) {
      return 2;
    }
  }
  return 0;
}

}  // namespace
}  // namespace malisim

int main(int argc, char** argv) { return malisim::Main(argc, argv); }
