// Image-blur demo: applies a 5x5 Gaussian-ish blur to a synthetic image
// with a naive kernel and with the full §III-B optimization stack
// (vectorization via sliding windows, register blocking, tuned work-group
// size, restrict/const), printing the optimization walk the paper's 2dcon
// benchmark takes — each step's modelled time and the cumulative speedup.
//
//   $ ./convolution_filter [dim]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/prng.h"
#include "kir/builder.h"
#include "ocl/runtime.h"

using namespace malisim;

namespace {

constexpr int kTaps = 5;
constexpr int kHalo = kTaps / 2;

enum class Style {
  kNaive,           // scalar, driver-picked work-group size
  kTunedWg,         // scalar + tuned work-group size
  kRowVector,       // + float4 row loads with vsum
  kRegisterBlocked, // + 4x4 output tiles with slide-window reuse
};

kir::Program BuildKernel(Style style, bool qualified) {
  kir::KernelBuilder kb("blur_" + std::to_string(static_cast<int>(style)));
  auto in = kb.ArgBuffer("in", kir::ScalarType::kF32, kir::ArgKind::kBufferRO,
                         qualified, qualified);
  auto filt = kb.ArgBuffer("filt", kir::ScalarType::kF32,
                           kir::ArgKind::kBufferRO, qualified, qualified);
  auto out = kb.ArgBuffer("out", kir::ScalarType::kF32,
                          kir::ArgKind::kBufferWO, qualified, false);
  kir::Val d = kb.ArgScalar("d", kir::ScalarType::kI32);
  kir::Val halo = kb.ConstI(kir::I32(), kHalo);
  kir::Val hi = kb.Binary(kir::Opcode::kSub, d, halo);

  auto scalar_point = [&](kir::Val x, kir::Val y) {
    kir::Val acc = kb.Var(kir::F32(), "acc");
    kb.Assign(acc, kb.ConstF(kir::F32(), 0.0));
    for (int r = 0; r < kTaps; ++r) {
      kir::Val row = kb.Binary(kir::Opcode::kAdd, y,
                               kb.ConstI(kir::I32(), r - kHalo));
      kir::Val idx0 = kb.Binary(kir::Opcode::kAdd,
                                kb.Binary(kir::Opcode::kMul, row, d), x);
      for (int t = 0; t < kTaps; ++t) {
        kb.Assign(acc, kb.Fma(kb.Load(filt, kb.ConstI(kir::I32(), r * kTaps + t)),
                              kb.Load(in, idx0, t - kHalo), acc));
      }
    }
    kb.Store(out, kb.Binary(kir::Opcode::kAdd,
                            kb.Binary(kir::Opcode::kMul, y, d), x),
             acc);
  };

  auto rowvec_point = [&](kir::Val x, kir::Val y) {
    kir::Val acc4 = kb.Var(kir::F32(4), "acc4");
    kir::Val accs = kb.Var(kir::F32(), "accs");
    kb.Assign(acc4, kb.ConstF(kir::F32(4), 0.0));
    kb.Assign(accs, kb.ConstF(kir::F32(), 0.0));
    for (int r = 0; r < kTaps; ++r) {
      kir::Val row = kb.Binary(kir::Opcode::kAdd, y,
                               kb.ConstI(kir::I32(), r - kHalo));
      kir::Val idx0 = kb.Binary(kir::Opcode::kAdd,
                                kb.Binary(kir::Opcode::kMul, row, d), x);
      kb.Assign(acc4,
                kb.Fma(kb.Load(filt, kb.ConstI(kir::I32(), r * kTaps), 0, 4),
                       kb.Load(in, idx0, -kHalo, 4), acc4));
      kb.Assign(accs,
                kb.Fma(kb.Load(filt, kb.ConstI(kir::I32(), r * kTaps + 4)),
                       kb.Load(in, idx0, kHalo), accs));
    }
    kb.Store(out, kb.Binary(kir::Opcode::kAdd,
                            kb.Binary(kir::Opcode::kMul, y, d), x),
             kb.VSum(acc4) + accs);
  };

  if (style == Style::kRegisterBlocked) {
    kir::Val x4 = kb.Binary(kir::Opcode::kMul, kb.GlobalId(0),
                            kb.ConstI(kir::I32(), 4));
    kir::Val y4 = kb.Binary(kir::Opcode::kMul, kb.GlobalId(1),
                            kb.ConstI(kir::I32(), 4));
    kir::Val tile_hi = kb.Binary(kir::Opcode::kSub, d,
                                 kb.ConstI(kir::I32(), kHalo + 4 + 1));
    kir::Val inside = kb.CmpGe(x4, halo) & kb.CmpLe(x4, tile_hi) &
                      kb.CmpGe(y4, halo) & kb.CmpLe(y4, tile_hi);
    kb.If(inside, [&] {
      std::vector<kir::Val> wtap(kTaps * kTaps);
      for (int i = 0; i < kTaps * kTaps; ++i) {
        wtap[static_cast<std::size_t>(i)] =
            kb.Load(filt, kb.ConstI(kir::I32(), i));
      }
      std::vector<kir::Val> acc(4);
      for (int o = 0; o < 4; ++o) {
        acc[static_cast<std::size_t>(o)] = kb.Var(kir::F32(4), "acc");
        kb.Assign(acc[static_cast<std::size_t>(o)], kb.ConstF(kir::F32(4), 0.0));
      }
      for (int ir = -kHalo; ir < 4 + kHalo; ++ir) {
        kir::Val row = kb.Binary(kir::Opcode::kAdd, y4,
                                 kb.ConstI(kir::I32(), ir));
        kir::Val idx0 = kb.Binary(kir::Opcode::kAdd,
                                  kb.Binary(kir::Opcode::kMul, row, d), x4);
        kir::Val lo = kb.Load(in, idx0, -kHalo, 4);
        kir::Val hi4 = kb.Load(in, idx0, -kHalo + 4, 4);
        for (int t = 0; t < kTaps; ++t) {
          kir::Val window = t == 0 ? lo : kb.Slide(lo, hi4, t);
          for (int o = 0; o < 4; ++o) {
            const int r = ir - o + kHalo;
            if (r < 0 || r >= kTaps) continue;
            kb.Assign(acc[static_cast<std::size_t>(o)],
                      kb.Fma(kb.Splat(wtap[static_cast<std::size_t>(r * kTaps + t)], 4),
                             window, acc[static_cast<std::size_t>(o)]));
          }
        }
      }
      for (int o = 0; o < 4; ++o) {
        kir::Val row = kb.Binary(kir::Opcode::kAdd, y4, kb.ConstI(kir::I32(), o));
        kb.Store(out, kb.Binary(kir::Opcode::kAdd,
                                kb.Binary(kir::Opcode::kMul, row, d), x4),
                 acc[static_cast<std::size_t>(o)]);
      }
    });
  } else {
    kir::Val x = kb.GlobalId(0);
    kir::Val y = kb.GlobalId(1);
    kir::Val inside = kb.CmpGe(x, halo) & kb.CmpLt(x, hi) & kb.CmpGe(y, halo) &
                      kb.CmpLt(y, hi);
    kb.If(inside, [&] {
      if (style == Style::kRowVector) {
        rowvec_point(x, y);
      } else {
        scalar_point(x, y);
      }
    });
  }
  return *kb.Build();
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t dim =
      argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 512;
  std::printf("5x5 blur of a %llux%llu image on the modelled Mali-T604\n\n",
              static_cast<unsigned long long>(dim),
              static_cast<unsigned long long>(dim));

  // Synthetic image and normalized blur filter.
  Xoshiro256 rng(7);
  std::vector<float> image(dim * dim);
  for (auto& p : image) p = static_cast<float>(rng.NextDouble());
  std::vector<float> filter(kTaps * kTaps);
  float fsum = 0;
  for (int i = 0; i < kTaps * kTaps; ++i) {
    const int r = i / kTaps - kHalo, c = i % kTaps - kHalo;
    filter[static_cast<std::size_t>(i)] =
        std::exp(-0.4f * static_cast<float>(r * r + c * c));
    fsum += filter[static_cast<std::size_t>(i)];
  }
  for (auto& w : filter) w /= fsum;

  struct Step {
    const char* label;
    Style style;
    bool qualified;
    bool tuned_wg;
  };
  const Step steps[] = {
      {"naive scalar, driver wg", Style::kNaive, false, false},
      {"+ tuned work-group", Style::kTunedWg, false, true},
      {"+ float4 row vectors", Style::kRowVector, false, true},
      {"+ 4x4 register blocking", Style::kRegisterBlocked, false, true},
      {"+ const/restrict", Style::kRegisterBlocked, true, true},
  };

  double baseline = 0;
  std::vector<float> reference;
  for (const Step& step : steps) {
    ocl::Context ctx;
    auto in = *ctx.CreateBuffer(ocl::kMemReadOnly | ocl::kMemAllocHostPtr,
                                image.size() * 4);
    auto filt = *ctx.CreateBuffer(ocl::kMemReadOnly | ocl::kMemAllocHostPtr,
                                  filter.size() * 4);
    auto out = *ctx.CreateBuffer(ocl::kMemWriteOnly | ocl::kMemAllocHostPtr,
                                 image.size() * 4);
    std::memcpy(in->device_storage(), image.data(), image.size() * 4);
    std::memcpy(filt->device_storage(), filter.data(), filter.size() * 4);

    std::vector<kir::Program> kernels;
    kernels.push_back(BuildKernel(step.style, step.qualified));
    const std::string name = kernels.front().name;
    auto prog = ctx.CreateProgram(std::move(kernels));
    MALI_CHECK(prog->Build().ok());
    auto kernel = *ctx.CreateKernel(prog, name);
    MALI_CHECK(kernel->SetArgBuffer(0, in).ok());
    MALI_CHECK(kernel->SetArgBuffer(1, filt).ok());
    MALI_CHECK(kernel->SetArgBuffer(2, out).ok());
    MALI_CHECK(kernel->SetArgI32(3, static_cast<std::int32_t>(dim)).ok());

    std::uint64_t global[2] = {dim, dim};
    const std::uint64_t tuned[2] = {32, 8};
    const std::uint64_t tuned_tile[2] = {16, 16};
    const std::uint64_t* local = nullptr;
    if (step.style == Style::kRegisterBlocked) {
      global[0] = dim / 4;
      global[1] = dim / 4;
      local = tuned_tile;
    } else if (step.tuned_wg) {
      local = tuned;
    }
    auto event = ctx.queue().EnqueueNDRange(*kernel, 2, global, local);
    MALI_CHECK(event.ok());

    // Verify interior pixels against the first (naive) run.
    std::vector<float> result(image.size());
    std::memcpy(result.data(), out->device_storage(), result.size() * 4);
    if (reference.empty()) {
      reference = result;
      baseline = event->seconds;
    } else {
      // The register-blocked kernel skips partial edge tiles (kept simple
      // here; the benchmark library's version has an edge fallback), so
      // compare the deep interior that every version computes.
      for (std::size_t y = 8; y + 8 < dim; ++y) {
        for (std::size_t x = 8; x + 8 < dim; ++x) {
          const float a = result[y * dim + x], b = reference[y * dim + x];
          MALI_CHECK(std::fabs(a - b) < 1e-4f);
        }
      }
    }
    std::printf("%-26s %8.3f ms   %5.2fx\n", step.label, event->seconds * 1e3,
                baseline / event->seconds);
  }
  std::printf("\nall versions produce the same blurred image (checked).\n");
  return 0;
}
