// Work-group autotuner: the programmatic version of the paper's §III-A
// advice ("we strongly suggest to manually tune the local work size
// parameter"). Sweeps every legal power-of-two local size for a kernel,
// reports the curve, and compares the winner against the driver's pick.
//
//   $ ./autotune_wgsize
#include <cstdio>
#include <string>
#include <vector>

#include "kir/builder.h"
#include "ocl/runtime.h"

using namespace malisim;

namespace {

struct Candidate {
  std::uint64_t local_size;
  double seconds;
};

/// Runs `source` over `n` items at the given local size (0 = driver pick).
double TimeOnce(const kir::Program& source, std::uint64_t n,
                std::uint64_t local_size) {
  ocl::Context ctx;
  auto in = *ctx.CreateBuffer(ocl::kMemReadWrite | ocl::kMemAllocHostPtr, n * 4);
  auto out = *ctx.CreateBuffer(ocl::kMemReadWrite | ocl::kMemAllocHostPtr, n * 4);
  std::vector<kir::Program> kernels;
  kernels.push_back(source);
  auto prog = ctx.CreateProgram(std::move(kernels));
  MALI_CHECK(prog->Build().ok());
  auto kernel = *ctx.CreateKernel(prog, source.name);
  MALI_CHECK(kernel->SetArgBuffer(0, in).ok());
  MALI_CHECK(kernel->SetArgBuffer(1, out).ok());
  const std::uint64_t global[1] = {n};
  const std::uint64_t local[1] = {local_size};
  auto event = ctx.queue().EnqueueNDRange(*kernel, 1, global,
                                          local_size == 0 ? nullptr : local);
  MALI_CHECK(event.ok());
  return event->seconds;
}

kir::Program MixedKernel() {
  // A medium-intensity kernel: some arithmetic, some memory — the kind
  // whose optimum is not obvious up front.
  kir::KernelBuilder kb("mixed");
  auto in = kb.ArgBuffer("in", kir::ScalarType::kF32, kir::ArgKind::kBufferRO);
  auto out = kb.ArgBuffer("out", kir::ScalarType::kF32, kir::ArgKind::kBufferWO);
  kir::Val gid = kb.GlobalId(0);
  kir::Val x = kb.Load(in, gid);
  kir::Val acc = kb.Var(kir::F32(), "acc");
  kb.Assign(acc, x);
  kb.For("i", kb.ConstI(kir::I32(), 0), kb.ConstI(kir::I32(), 8), 1,
         [&](kir::Val) { kb.Assign(acc, kb.Fma(acc, x, x)); });
  kb.Store(out, gid, kb.Rsqrt(kb.Abs(acc) + 1.0));
  return *kb.Build();
}

}  // namespace

int main() {
  const std::uint64_t n = 1 << 20;
  const kir::Program source = MixedKernel();
  std::printf("autotuning local size for kernel '%s' over %llu work-items\n\n",
              source.name.c_str(), static_cast<unsigned long long>(n));

  std::vector<Candidate> curve;
  for (std::uint64_t ls = 1; ls <= 256; ls *= 2) {
    curve.push_back({ls, TimeOnce(source, n, ls)});
  }
  const double driver = TimeOnce(source, n, 0);

  const Candidate* best = &curve.front();
  for (const Candidate& c : curve) {
    if (c.seconds < best->seconds) best = &c;
  }
  for (const Candidate& c : curve) {
    std::string bar(static_cast<std::size_t>(60.0 * best->seconds / c.seconds),
                    '#');
    std::printf("  local %4llu : %8.3f ms  %s%s\n",
                static_cast<unsigned long long>(c.local_size),
                c.seconds * 1e3, bar.c_str(), &c == best ? "  <= best" : "");
  }
  std::printf("  driver pick: %8.3f ms\n\n", driver * 1e3);
  std::printf("tuned local size %llu beats the driver heuristic by %.2fx\n",
              static_cast<unsigned long long>(best->local_size),
              driver / best->seconds);
  return 0;
}
