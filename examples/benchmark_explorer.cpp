// Benchmark explorer: runs one paper benchmark in any of its four versions
// and dumps the full model breakdown — modelled time, per-core pipe cycles,
// cache misses, imbalance, occupancy, power components. This is the tool to
// reach for when asking "why is this variant this fast?".
//
//   $ ./benchmark_explorer                 # list benchmarks
//   $ ./benchmark_explorer dmmm            # all four versions
//   $ ./benchmark_explorer dmmm openclopt --fp64
#include <cstdio>
#include <cstring>
#include <string>

#include "harness/experiment.h"

using namespace malisim;

namespace {

void PrintVariant(const std::string& bench,
                  const harness::VariantResult& result, hpc::Variant v) {
  std::printf("---- %s / %s ----\n", bench.c_str(),
              std::string(hpc::VariantName(v)).c_str());
  if (!result.available) {
    std::printf("  unavailable: %s\n\n", result.unavailable_reason.c_str());
    return;
  }
  std::printf("  time        : %.4f ms (modelled)\n", result.seconds * 1e3);
  std::printf("  power       : %.3f W  (sigma %.4f W over repetitions)\n",
              result.power_mean_w, result.power_stddev_w);
  std::printf("  energy      : %.3f mJ\n", result.energy_j * 1e3);
  std::printf("  validated   : %s (max rel err %.2e)\n",
              result.validated ? "yes" : "NO", result.max_rel_error);
  if (!result.note.empty()) std::printf("  note        : %s\n", result.note.c_str());
  std::printf("  model breakdown:\n");
  for (const auto& entry : result.stats.Entries()) {
    std::printf("    %-34s %.6g\n", entry.name.c_str(), entry.value);
  }
  std::printf("\n");
}

int Usage() {
  std::printf("usage: benchmark_explorer <benchmark> [variant] [--fp64] [--seed=N]\n");
  std::printf("benchmarks:");
  for (const std::string& name : hpc::RegisteredBenchmarks()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\nvariants: serial openmp opencl openclopt (default: all)\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string bench = argv[1];
  std::string variant_filter;
  harness::ExperimentConfig config;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fp64") {
      config.fp64 = true;
    } else if (arg.rfind("--seed=", 0) == 0) {
      config.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else {
      variant_filter = arg;
    }
  }

  harness::ExperimentRunner runner(config);
  auto results = runner.RunBenchmark(bench);
  if (!results.ok()) {
    std::fprintf(stderr, "error: %s\n", results.status().ToString().c_str());
    return Usage();
  }

  for (hpc::Variant v : hpc::kAllVariants) {
    std::string vname(hpc::VariantName(v));
    for (char& ch : vname) ch = static_cast<char>(std::tolower(ch));
    vname.erase(std::remove(vname.begin(), vname.end(), ' '), vname.end());
    if (!variant_filter.empty() && vname != variant_filter) continue;
    PrintVariant(bench, results->Get(v), v);
  }

  const auto& serial = results->Get(hpc::Variant::kSerial);
  if (variant_filter.empty() && serial.available) {
    std::printf("== normalized to Serial ==\n");
    for (hpc::Variant v : hpc::kAllVariants) {
      if (!results->Get(v).available) continue;
      std::printf("  %-11s speedup %6.2fx   power %5.2fx   energy %5.3f\n",
                  std::string(hpc::VariantName(v)).c_str(),
                  results->SpeedupVsSerial(v), results->PowerVsSerial(v),
                  results->EnergyVsSerial(v));
    }
  }
  return 0;
}
