// kirc — the offline kernel compiler CLI (the model's `malisc`).
//
// Reads a kernel in KIR text form, runs the driver pass pipeline and the
// Mali kernel compiler, and reports diagnostics, register allocation,
// occupancy and the static pipe balance. Optionally re-emits the
// normalized text form (-S) — kirc and the in-memory builder produce
// interchangeable kernels.
//
//   $ ./kirc path/to/kernel.kir [-S] [--no-opt]
//   $ ./kirc - < kernel.kir
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "kir/parse.h"
#include "kir/passes.h"
#include "kir/program.h"
#include "mali/compiler.h"

using namespace malisim;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "kirc: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool emit_text = false;
  bool optimize = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-S") {
      emit_text = true;
    } else if (arg == "--no-opt") {
      optimize = false;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: kirc <file.kir|-> [-S] [--no-opt]\n");
    return 2;
  }

  std::string source;
  if (path == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    source = ss.str();
  } else {
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "kirc: cannot open '%s'\n", path.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << file.rdbuf();
    source = ss.str();
  }

  StatusOr<kir::Program> parsed = kir::ParseProgram(source);
  if (!parsed.ok()) return Fail(parsed.status());
  kir::Program program = *std::move(parsed);
  std::printf("kernel '%s': parsed %zu instructions, %u args, %zu locals\n",
              program.name.c_str(), program.code.size(), program.num_args(),
              program.locals.size());

  if (optimize) {
    const int folded = *kir::ConstantFold(&program);
    const int removed = *kir::DeadCodeElim(&program);
    std::printf("driver passes : %d constants folded, %d dead instructions\n",
                folded, removed);
  }

  const kir::ProgramFeatures features = kir::AnalyzeFeatures(program);
  std::printf("features      : loop depth %u, widest reg %u B%s%s%s%s\n",
              features.max_loop_depth, features.max_vector_bytes,
              features.has_atomics ? ", atomics" : "",
              features.has_barrier ? ", barrier" : "",
              features.has_f64 ? ", fp64" : "",
              features.has_f64_special ? ", fp64-special" : "");

  const mali::MaliTimingParams timing;
  StatusOr<mali::CompiledKernel> compiled =
      mali::CompileForMali(program, timing, mali::MaliCompilerParams());
  if (!compiled.ok()) {
    std::printf("mali compile  : FAILED — %s\n",
                compiled.status().ToString().c_str());
    return 1;
  }
  std::printf("registers     : %u B live/work-item (budget %u B)%s\n",
              compiled->live_reg_bytes, timing.max_thread_reg_bytes,
              compiled->exceeds_resources ? "  ** CL_OUT_OF_RESOURCES **" : "");
  std::printf("occupancy     : %u threads/core\n", compiled->threads_per_core);
  if (compiled->sched_factor < 1.0) {
    std::printf("qualifiers    : scheduling bonus x%.2f\n",
                compiled->sched_factor);
  }

  if (emit_text) {
    std::printf("---- normalized form ----\n%s", kir::ToText(program).c_str());
  }
  return compiled->exceeds_resources ? 3 : 0;
}
