// N-body simulation demo: runs a multi-step gravitational simulation on the
// modelled SoC, comparing the Serial CPU path against the optimized GPU
// path step by step, and prints an energy ledger — the paper's motivating
// scenario (HPC workloads on an embedded SoC) as a runnable program.
//
//   $ ./nbody_sim [bodies] [steps]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <vector>

#include "common/prng.h"
#include "cpu/a15_device.h"
#include "kir/builder.h"
#include "ocl/runtime.h"
#include "power/power_model.h"

using namespace malisim;

namespace {

/// Hand-rolled chunk loop (same shape as the benchmark library's helper,
/// repeated here so the example is self-contained).
void EmitChunked(kir::KernelBuilder& kb, kir::Val n,
                 const std::function<void(kir::Val)>& body) {
  kir::Val gid = kb.GlobalId(0);
  kir::Val threads = kb.GlobalSize(0);
  kir::Val one = kb.ConstI(kir::I32(), 1);
  kir::Val chunk = kb.Binary(
      kir::Opcode::kIDiv,
      kb.Binary(kir::Opcode::kSub, kb.Binary(kir::Opcode::kAdd, n, threads), one),
      threads);
  kir::Val start = kb.Binary(kir::Opcode::kMul, gid, chunk);
  kir::Val end = kb.Min(kb.Binary(kir::Opcode::kAdd, start, chunk), n);
  kb.For("i", start, end, 1, body);
}

/// One integration step, scalar, chunked over CPU threads when cpu=true.
kir::Program StepKernel(bool cpu) {
  kir::KernelBuilder kb(cpu ? "nbody_step_cpu" : "nbody_step_gpu");
  auto pos = kb.ArgBuffer("pos", kir::ScalarType::kF32, kir::ArgKind::kBufferRO,
                          true, true);
  auto vel = kb.ArgBuffer("vel", kir::ScalarType::kF32, kir::ArgKind::kBufferRO,
                          true, true);
  auto new_pos = kb.ArgBuffer("new_pos", kir::ScalarType::kF32,
                              kir::ArgKind::kBufferWO, true, false);
  auto new_vel = kb.ArgBuffer("new_vel", kir::ScalarType::kF32,
                              kir::ArgKind::kBufferWO, true, false);
  kir::Val n = kb.ArgScalar("n", kir::ScalarType::kI32);

  auto body = [&](kir::Val i) {
    kir::Val four = kb.ConstI(kir::I32(), 4);
    kir::Val bi = kb.Binary(kir::Opcode::kMul, i, four);
    kir::Val xi = kb.Load(pos, bi, 0);
    kir::Val yi = kb.Load(pos, bi, 1);
    kir::Val zi = kb.Load(pos, bi, 2);
    kir::Val eps = kb.ConstF(kir::F32(), 0.05);
    kir::Val dt = kb.ConstF(kir::F32(), 0.005);
    kir::Val ax = kb.Var(kir::F32(), "ax");
    kir::Val ay = kb.Var(kir::F32(), "ay");
    kir::Val az = kb.Var(kir::F32(), "az");
    kir::Val zero = kb.ConstF(kir::F32(), 0.0);
    kb.Assign(ax, zero);
    kb.Assign(ay, zero);
    kb.Assign(az, zero);
    kb.For("j", kb.ConstI(kir::I32(), 0), n, 1, [&](kir::Val j) {
      kir::Val bj = kb.Binary(kir::Opcode::kMul, j, four);
      kir::Val dx = kb.Load(pos, bj, 0) - xi;
      kir::Val dy = kb.Load(pos, bj, 1) - yi;
      kir::Val dz = kb.Load(pos, bj, 2) - zi;
      kir::Val mj = kb.Load(pos, bj, 3);
      kir::Val r2 = kb.Fma(dx, dx, kb.Fma(dy, dy, kb.Fma(dz, dz, eps)));
      kir::Val inv = kb.Rsqrt(r2);
      kir::Val w = mj * inv * inv * inv;
      kb.Assign(ax, kb.Fma(w, dx, ax));
      kb.Assign(ay, kb.Fma(w, dy, ay));
      kb.Assign(az, kb.Fma(w, dz, az));
    });
    kir::Val vx = kb.Fma(dt, ax, kb.Load(vel, bi, 0));
    kir::Val vy = kb.Fma(dt, ay, kb.Load(vel, bi, 1));
    kir::Val vz = kb.Fma(dt, az, kb.Load(vel, bi, 2));
    kb.Store(new_vel, bi, vx, 0);
    kb.Store(new_vel, bi, vy, 1);
    kb.Store(new_vel, bi, vz, 2);
    kb.Store(new_pos, bi, kb.Fma(dt, vx, xi), 0);
    kb.Store(new_pos, bi, kb.Fma(dt, vy, yi), 1);
    kb.Store(new_pos, bi, kb.Fma(dt, vz, zi), 2);
    kb.Store(new_pos, bi, kb.Load(pos, bi, 3), 3);
  };

  if (cpu) {
    EmitChunked(kb, n, body);
  } else {
    body(kb.GlobalId(0));
  }
  return *kb.Build();
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t n = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 1024;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 4;
  std::printf("N-body: %u bodies, %d steps, on the modelled Exynos 5250\n\n", n,
              steps);

  // Initial conditions: a random cluster.
  Xoshiro256 rng(2014);
  std::vector<float> pos(n * 4), vel(n * 4, 0.0f);
  for (std::uint32_t i = 0; i < n; ++i) {
    pos[i * 4 + 0] = static_cast<float>(rng.NextDouble(-1, 1));
    pos[i * 4 + 1] = static_cast<float>(rng.NextDouble(-1, 1));
    pos[i * 4 + 2] = static_cast<float>(rng.NextDouble(-1, 1));
    pos[i * 4 + 3] = static_cast<float>(rng.NextDouble(0.1, 1.0));
  }

  power::PowerModel power;

  // ---- Serial on one Cortex-A15 ----
  double cpu_sec = 0.0, cpu_joules = 0.0;
  {
    std::vector<float> p = pos, v = vel, p2(n * 4), v2(n * 4);
    cpu::CortexA15Device device;
    kir::Program kernel = StepKernel(/*cpu=*/true);
    for (int s = 0; s < steps; ++s) {
      kir::Bindings b;
      b.buffers = {
          {reinterpret_cast<std::byte*>(p.data()), 0x100000, p.size() * 4},
          {reinterpret_cast<std::byte*>(v.data()), 0x200000, v.size() * 4},
          {reinterpret_cast<std::byte*>(p2.data()), 0x300000, p2.size() * 4},
          {reinterpret_cast<std::byte*>(v2.data()), 0x400000, v2.size() * 4}};
      b.scalars = {kir::ScalarValue::I32V(static_cast<std::int32_t>(n))};
      kir::LaunchConfig config;  // 1 work-item = Serial
      auto run = device.Run(kernel, config, std::move(b), 1);
      MALI_CHECK(run.ok());
      cpu_sec += run->seconds;
      cpu_joules += power.Energy(run->profile);
      std::swap(p, p2);
      std::swap(v, v2);
    }
  }

  // ---- Optimized on the Mali-T604 via tinycl ----
  double gpu_sec = 0.0, gpu_joules = 0.0;
  std::vector<float> gpu_final(n * 4);
  {
    ocl::Context ctx;
    auto bp = *ctx.CreateBuffer(ocl::kMemReadWrite | ocl::kMemAllocHostPtr, n * 16);
    auto bv = *ctx.CreateBuffer(ocl::kMemReadWrite | ocl::kMemAllocHostPtr, n * 16);
    auto bp2 = *ctx.CreateBuffer(ocl::kMemReadWrite | ocl::kMemAllocHostPtr, n * 16);
    auto bv2 = *ctx.CreateBuffer(ocl::kMemReadWrite | ocl::kMemAllocHostPtr, n * 16);
    std::memcpy(*ctx.queue().MapBuffer(*bp), pos.data(), n * 16);
    MALI_CHECK(ctx.queue().UnmapBuffer(*bp, bp->device_storage()).ok());

    std::vector<kir::Program> kernels;
    kernels.push_back(StepKernel(/*cpu=*/false));
    auto prog = ctx.CreateProgram(std::move(kernels));
    MALI_CHECK(prog->Build().ok());
    auto kernel = *ctx.CreateKernel(prog, "nbody_step_gpu");

    for (int s = 0; s < steps; ++s) {
      MALI_CHECK(kernel->SetArgBuffer(0, s % 2 ? bp2 : bp).ok());
      MALI_CHECK(kernel->SetArgBuffer(1, s % 2 ? bv2 : bv).ok());
      MALI_CHECK(kernel->SetArgBuffer(2, s % 2 ? bp : bp2).ok());
      MALI_CHECK(kernel->SetArgBuffer(3, s % 2 ? bv : bv2).ok());
      MALI_CHECK(kernel->SetArgI32(4, static_cast<std::int32_t>(n)).ok());
      const std::uint64_t global[1] = {n};
      const std::uint64_t local[1] = {64};
      auto event = ctx.queue().EnqueueNDRange(*kernel, 1, global, local);
      MALI_CHECK(event.ok());
      gpu_sec += event->seconds;
      gpu_joules += power.Energy(event->profile);
      std::printf("  step %d: %.3f ms on GPU\n", s, event->seconds * 1e3);
    }
    auto& final_buf = steps % 2 ? *bp2 : *bp;
    void* mapped = *ctx.queue().MapBuffer(final_buf);
    std::memcpy(gpu_final.data(), mapped, n * 16);
    MALI_CHECK(ctx.queue().UnmapBuffer(final_buf, mapped).ok());
  }

  std::printf("\n%-22s %12s %12s\n", "", "Serial CPU", "Mali GPU");
  std::printf("%-22s %9.2f ms %9.2f ms\n", "simulated time", cpu_sec * 1e3,
              gpu_sec * 1e3);
  std::printf("%-22s %9.2f mJ %9.2f mJ\n", "energy-to-solution",
              cpu_joules * 1e3, gpu_joules * 1e3);
  std::printf("%-22s %12s %9.2fx\n", "speedup", "1.00x", cpu_sec / gpu_sec);
  std::printf("%-22s %12s %9.0f%%\n", "energy vs Serial", "100%",
              100.0 * gpu_joules / cpu_joules);
  std::printf("\ncentre of mass drift: %.4f (sanity check)\n",
              std::fabs(gpu_final[0] - pos[0]));
  return 0;
}
