// Kernel inspector: the moral equivalent of ARM's `malisc` offline shader
// compiler for this model. Feeds a selection of kernels through the driver
// pass pipeline and the Mali kernel compiler, then prints for each:
// disassembly, static features, register allocation, occupancy, the
// static pipe-slot balance (is it arithmetic- or load/store-bound?), and
// any build diagnostics — including the FP64 erratum and
// CL_OUT_OF_RESOURCES verdicts.
//
//   $ ./kernel_inspector [--disasm]
#include <cstdio>
#include <string>
#include <vector>

#include "kir/builder.h"
#include "kir/passes.h"
#include "kir/program.h"
#include "mali/compiler.h"
#include "mali/t604_params.h"

using namespace malisim;

namespace {

kir::Program VecAdd() {
  kir::KernelBuilder kb("vec_add_f32x4");
  auto a = kb.ArgBuffer("a", kir::ScalarType::kF32, kir::ArgKind::kBufferRO,
                        true, true);
  auto b = kb.ArgBuffer("b", kir::ScalarType::kF32, kir::ArgKind::kBufferRO,
                        true, true);
  auto c = kb.ArgBuffer("c", kir::ScalarType::kF32, kir::ArgKind::kBufferWO,
                        true, false);
  kir::Val base =
      kb.Binary(kir::Opcode::kMul, kb.GlobalId(0), kb.ConstI(kir::I32(), 4));
  kb.Store(c, base, kb.Load(a, base, 0, 4) + kb.Load(b, base, 0, 4));
  return *kb.Build();
}

kir::Program WideAccumulators(bool fp64) {
  kir::KernelBuilder kb(fp64 ? "wide_acc_f64" : "wide_acc_f32");
  const kir::ScalarType ft = fp64 ? kir::ScalarType::kF64 : kir::ScalarType::kF32;
  auto in = kb.ArgBuffer("in", ft, kir::ArgKind::kBufferRO);
  auto out = kb.ArgBuffer("out", ft, kir::ArgKind::kBufferWO);
  kir::Val zero = kb.ConstI(kir::I32(), 0);
  std::vector<kir::Val> accs;
  for (int i = 0; i < 10; ++i) accs.push_back(kb.Load(in, zero, i * 8, 8));
  kir::Val sum = accs[0];
  for (int i = 1; i < 10; ++i) sum = sum + accs[static_cast<std::size_t>(i)];
  kb.Store(out, zero, sum);
  return *kb.Build();
}

kir::Program MetropolisShape(bool fp64) {
  kir::KernelBuilder kb(fp64 ? "metropolis_f64" : "metropolis_f32");
  const kir::ScalarType ft = fp64 ? kir::ScalarType::kF64 : kir::ScalarType::kF32;
  auto buf = kb.ArgBuffer("state", ft, kir::ArgKind::kBufferRW);
  kir::Val n = kb.ConstI(kir::I32(), 64);
  kb.For("t", kb.ConstI(kir::I32(), 0), n, 1, [&](kir::Val t) {
    kir::Val p = kb.Exp(kb.Load(buf, t));
    kb.If(kb.CmpLt(t, kb.ConstI(kir::I32(), 32)),
          [&] { kb.Store(buf, t, p); });
  });
  return *kb.Build();
}

kir::Program FoldableConstants() {
  kir::KernelBuilder kb("foldable");
  auto out = kb.ArgBuffer("out", kir::ScalarType::kF32, kir::ArgKind::kBufferWO);
  kir::Val a = kb.ConstF(kir::F32(), 3.0);
  kir::Val b = kb.ConstF(kir::F32(), 4.0);
  kir::Val unused = a * a;  // dead
  (void)unused;
  kb.Store(out, kb.ConstI(kir::I32(), 0), (a + b) * b);
  return *kb.Build();
}

void Inspect(kir::Program program, bool disasm) {
  std::printf("================================================================\n");
  std::printf("kernel '%s'\n", program.name.c_str());
  const std::size_t before = program.code.size();
  const int folded = *kir::ConstantFold(&program);
  const int removed = *kir::DeadCodeElim(&program);
  std::printf("  driver passes  : %zu -> %zu instructions (%d folded, %d dead)\n",
              before, program.code.size(), folded, removed);

  const kir::ProgramFeatures features = kir::AnalyzeFeatures(program);
  std::printf("  static features: loop depth %u, widest register %u B%s%s%s\n",
              features.max_loop_depth, features.max_vector_bytes,
              features.has_atomics ? ", atomics" : "",
              features.has_barrier ? ", barrier" : "",
              features.has_f64 ? ", fp64" : "");

  const mali::MaliTimingParams timing;
  auto compiled =
      mali::CompileForMali(program, timing, mali::MaliCompilerParams());
  if (!compiled.ok()) {
    std::printf("  BUILD FAILED   : %s\n", compiled.status().ToString().c_str());
    return;
  }
  std::printf("  registers      : %u B live/work-item (budget %u B)%s\n",
              compiled->live_reg_bytes, timing.max_thread_reg_bytes,
              compiled->exceeds_resources
                  ? "  ** CL_OUT_OF_RESOURCES at enqueue **"
                  : "");
  std::printf("  occupancy      : %u threads/core (max %u)\n",
              compiled->threads_per_core, timing.max_threads_per_core);
  if (compiled->sched_factor < 1.0) {
    std::printf("  qualifiers     : restrict/const scheduling bonus x%.2f\n",
                compiled->sched_factor);
  }

  // Static pipe balance from the instruction mix (per work-item, assuming
  // every loop body executes once — a static estimate, like malisc's).
  double arith_slots = 0, ls_slots = 0;
  for (const kir::Instr& in : program.code) {
    const kir::OpClass c = kir::ClassifyOpcode(in.op);
    const double bytes = in.type.bytes();
    const double chunks = std::max(1.0, bytes / timing.pipe_width_bytes);
    switch (c) {
      case kir::OpClass::kArithSimple:
        arith_slots += chunks * timing.slots_arith;
        break;
      case kir::OpClass::kArithMul:
        arith_slots += chunks * timing.slots_mul;
        break;
      case kir::OpClass::kArithSpecial:
        arith_slots += chunks * timing.slots_special_f32;
        break;
      case kir::OpClass::kBroadcast:
        arith_slots += timing.slots_broadcast;
        break;
      case kir::OpClass::kControl:
        arith_slots += timing.slots_control;
        break;
      case kir::OpClass::kLoad:
      case kir::OpClass::kStore:
        ls_slots += std::max(timing.slots_ls_min, bytes / timing.ls_bytes_per_slot);
        break;
      case kir::OpClass::kAtomic:
        ls_slots += timing.slots_atomic;
        break;
      default:
        break;
    }
  }
  const double arith_cycles = arith_slots / timing.arith_pipes_per_core;
  std::printf("  pipe balance   : %.1f arith cycles vs %.1f LS cycles -> %s-bound\n",
              arith_cycles, ls_slots,
              arith_cycles > ls_slots ? "arithmetic" : "load/store");

  if (disasm) {
    std::printf("  disassembly:\n%s", kir::ToText(program).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool disasm = argc > 1 && std::string(argv[1]) == "--disasm";
  Inspect(VecAdd(), disasm);
  Inspect(FoldableConstants(), disasm);
  Inspect(WideAccumulators(false), disasm);
  Inspect(WideAccumulators(true), disasm);
  Inspect(MetropolisShape(false), disasm);
  Inspect(MetropolisShape(true), disasm);
  return 0;
}
