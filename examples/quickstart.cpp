// Quickstart: the complete tinycl workflow in one file.
//
// Builds a vector-add kernel in the KIR DSL (the stand-in for OpenCL C),
// creates zero-copy buffers the recommended way (CL_MEM_ALLOC_HOST_PTR +
// map/unmap, paper §III-A), launches it on the modelled Mali-T604, and
// prints the modelled execution time, board power, and energy.
//
//   $ ./quickstart
#include <cstdio>
#include <vector>

#include "kir/builder.h"
#include "ocl/runtime.h"
#include "power/power_model.h"

using namespace malisim;

int main() {
  constexpr std::uint64_t kN = 1 << 20;

  // 1. Write the kernel. This is the moral equivalent of:
  //      __kernel void vec_add(__global const float* restrict a,
  //                            __global const float* restrict b,
  //                            __global float* restrict c) {
  //        size_t i = get_global_id(0) * 4;
  //        vstore4(vload4(0, a + i) + vload4(0, b + i), 0, c + i);
  //      }
  kir::KernelBuilder kb("vec_add");
  auto a = kb.ArgBuffer("a", kir::ScalarType::kF32, kir::ArgKind::kBufferRO,
                        /*is_restrict=*/true, /*is_const=*/true);
  auto b = kb.ArgBuffer("b", kir::ScalarType::kF32, kir::ArgKind::kBufferRO,
                        true, true);
  auto c = kb.ArgBuffer("c", kir::ScalarType::kF32, kir::ArgKind::kBufferWO,
                        true, false);
  kir::Val base =
      kb.Binary(kir::Opcode::kMul, kb.GlobalId(0), kb.ConstI(kir::I32(), 4));
  kb.Store(c, base, kb.Load(a, base, 0, 4) + kb.Load(b, base, 0, 4));
  kir::Program source = *kb.Build();

  // 2. Create a context (the modelled Exynos 5250 GPU side) and buffers.
  ocl::Context ctx;
  std::printf("device: %s\n", ocl::Context::kDeviceName);
  auto buf_a =
      *ctx.CreateBuffer(ocl::kMemReadOnly | ocl::kMemAllocHostPtr, kN * 4);
  auto buf_b =
      *ctx.CreateBuffer(ocl::kMemReadOnly | ocl::kMemAllocHostPtr, kN * 4);
  auto buf_c =
      *ctx.CreateBuffer(ocl::kMemWriteOnly | ocl::kMemAllocHostPtr, kN * 4);

  // 3. Fill the inputs through the zero-copy map path.
  for (const auto& [buf, value] :
       {std::pair{buf_a, 1.0f}, std::pair{buf_b, 2.0f}}) {
    void* mapped = *ctx.queue().MapBuffer(*buf);
    for (std::uint64_t i = 0; i < kN; ++i) {
      static_cast<float*>(mapped)[i] = value;
    }
    MALI_CHECK(ctx.queue().UnmapBuffer(*buf, mapped).ok());
  }

  // 4. Build the program (this is where the modelled driver compiles,
  //    register-allocates, and would report the FP64 erratum) and launch.
  auto program = ctx.CreateProgram([&] {
    std::vector<kir::Program> kernels;
    kernels.push_back(std::move(source));
    return kernels;
  }());
  MALI_CHECK(program->Build().ok());
  std::printf("build log:\n%s", program->build_log().c_str());

  auto kernel = *ctx.CreateKernel(program, "vec_add");
  MALI_CHECK(kernel->SetArgBuffer(0, buf_a).ok());
  MALI_CHECK(kernel->SetArgBuffer(1, buf_b).ok());
  MALI_CHECK(kernel->SetArgBuffer(2, buf_c).ok());

  const std::uint64_t global[1] = {kN / 4};
  const std::uint64_t local[1] = {128};  // manually tuned (paper §III-A)
  ocl::Event event = *ctx.queue().EnqueueNDRange(*kernel, 1, global, local);

  // 5. Verify through the map path and report the modelled cost.
  void* result = *ctx.queue().MapBuffer(*buf_c);
  for (std::uint64_t i = 0; i < kN; ++i) {
    MALI_CHECK(static_cast<float*>(result)[i] == 3.0f);
  }
  MALI_CHECK(ctx.queue().UnmapBuffer(*buf_c, result).ok());

  power::PowerModel power;
  const double watts = power.AveragePower(event.profile);
  std::printf("kernel time : %.3f ms (modelled)\n", event.seconds * 1e3);
  std::printf("board power : %.2f W (modelled)\n", watts);
  std::printf("energy      : %.2f mJ\n", watts * event.seconds * 1e3);
  std::printf("dram traffic: %.1f MiB\n",
              static_cast<double>(event.profile.dram_bytes) / (1 << 20));
  std::printf("result verified: c[i] == 3.0 for all %llu elements\n",
              static_cast<unsigned long long>(kN));
  return 0;
}
