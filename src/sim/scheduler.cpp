#include "sim/scheduler.h"

#include <algorithm>
#include <queue>
#include <utility>

namespace malisim::sim {

std::string_view CmdKindName(CmdKind kind) {
  switch (kind) {
    case CmdKind::kWrite:
      return "write";
    case CmdKind::kRead:
      return "read";
    case CmdKind::kCopy:
      return "copy";
    case CmdKind::kFill:
      return "fill";
    case CmdKind::kMap:
      return "map";
    case CmdKind::kUnmap:
      return "unmap";
    case CmdKind::kKernel:
      return "kernel";
    case CmdKind::kBarrier:
      return "barrier";
  }
  return "<bad>";
}

std::string_view LaneName(int lane) {
  switch (lane) {
    case kLaneHost:
      return "host";
    case kLaneCompute:
      return "compute";
    case kLaneTransfer:
      return "transfer";
    default:
      return "lane";
  }
}

EventId EventGraph::Add(CmdKind kind, std::string label, double seconds,
                        int lane, std::span<const EventId> deps) {
  EventNode node;
  node.id = static_cast<EventId>(nodes_.size());
  node.kind = kind;
  node.label = std::move(label);
  node.seconds = seconds;
  node.lane = lane;
  node.deps.assign(deps.begin(), deps.end());
  num_lanes_ = std::max(num_lanes_, lane + 1);
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

void EventGraph::Clear() {
  nodes_.clear();
  num_lanes_ = 0;
}

StatusOr<ScheduleResult> ScheduleEvents(const EventGraph& graph) {
  const std::vector<EventNode>& nodes = graph.nodes();
  const std::size_t n = nodes.size();

  ScheduleResult result;
  result.lane_busy_sec.assign(
      static_cast<std::size_t>(std::max(graph.num_lanes(), 1)), 0.0);
  if (n == 0) return result;

  std::vector<std::uint32_t> pending_deps(n, 0);
  std::vector<std::vector<EventId>> successors(n);
  for (const EventNode& node : nodes) {
    for (const EventId dep : node.deps) {
      if (dep >= n) {
        return InvalidArgumentError("event graph: node " +
                                    std::to_string(node.id) +
                                    " depends on unknown event " +
                                    std::to_string(dep));
      }
      ++pending_deps[node.id];
      successors[dep].push_back(node.id);
    }
    result.serial_sec += node.seconds;
  }

  // Min-heap of dependency-ready nodes, keyed (dependency-ready time, id):
  // the deterministic retirement order the header documents.
  using Ready = std::pair<double, EventId>;
  std::priority_queue<Ready, std::vector<Ready>, std::greater<Ready>> ready;
  std::vector<double> dep_ready_sec(n, 0.0);  // max finish over deps
  std::vector<double> finish_sec(n, 0.0);
  std::vector<double> cp_sec(n, 0.0);         // critical path ending at node
  std::vector<double> lane_free(result.lane_busy_sec.size(), 0.0);

  for (const EventNode& node : nodes) {
    if (pending_deps[node.id] == 0) ready.push({0.0, node.id});
  }

  result.order.reserve(n);
  while (!ready.empty()) {
    const EventId id = ready.top().second;
    ready.pop();
    const EventNode& node = nodes[id];

    // A chained node's dependency-ready time always dominates its lane's
    // free time, so chains accumulate finish times as a plain sequential
    // sum — bit-identical to the eager queue's total_seconds().
    const double start = std::max(dep_ready_sec[id],
                                  lane_free[static_cast<std::size_t>(node.lane)]);
    const double finish = start + node.seconds;
    finish_sec[id] = finish;
    lane_free[static_cast<std::size_t>(node.lane)] = finish;
    result.lane_busy_sec[static_cast<std::size_t>(node.lane)] += node.seconds;
    result.makespan_sec = std::max(result.makespan_sec, finish);
    cp_sec[id] += node.seconds;
    result.critical_path_sec = std::max(result.critical_path_sec, cp_sec[id]);
    result.order.push_back({id, start, finish});

    for (const EventId succ : successors[id]) {
      dep_ready_sec[succ] = std::max(dep_ready_sec[succ], finish);
      cp_sec[succ] = std::max(cp_sec[succ], cp_sec[id]);
      if (--pending_deps[succ] == 0) {
        ready.push({dep_ready_sec[succ], succ});
      }
    }
  }

  if (result.order.size() != n) {
    return InvalidArgumentError(
        "event graph: dependency cycle — scheduled " +
        std::to_string(result.order.size()) + " of " + std::to_string(n) +
        " events");
  }
  return result;
}

std::vector<bool> CriticalPathNodes(const EventGraph& graph) {
  const std::vector<EventNode>& nodes = graph.nodes();
  const std::size_t n = nodes.size();
  std::vector<bool> critical(n, false);
  if (n == 0) return critical;

  // Longest dependency chain ending at each node. Dependencies always
  // point at earlier ids (append-only graph), so a single forward pass in
  // id order sees every dep before its dependents.
  std::vector<double> cp_end(n, 0.0);
  for (const EventNode& node : nodes) {
    double best = 0.0;
    for (const EventId dep : node.deps) {
      if (dep < n) best = std::max(best, cp_end[dep]);
    }
    cp_end[node.id] = best + node.seconds;
  }

  // Walk back from the chain's end, always stepping to the predecessor
  // that carries the longest sub-chain (lowest id on ties).
  EventId tail = 0;
  for (EventId id = 1; id < n; ++id) {
    if (cp_end[id] > cp_end[tail]) tail = id;
  }
  EventId cur = tail;
  while (true) {
    critical[cur] = true;
    const EventNode& node = nodes[cur];
    if (node.deps.empty()) break;
    EventId best_dep = kNullEvent;
    double best = -1.0;
    for (const EventId dep : node.deps) {
      if (dep >= n) continue;
      if (cp_end[dep] > best ||
          (cp_end[dep] == best && (best_dep == kNullEvent || dep < best_dep))) {
        best = cp_end[dep];
        best_dep = dep;
      }
    }
    if (best_dep == kNullEvent) break;
    cur = best_dep;
  }
  return critical;
}

}  // namespace malisim::sim
