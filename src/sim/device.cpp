#include "sim/device.h"

namespace malisim::sim {

std::string_view BackendName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kMali:
      return "mali-t604";
    case BackendKind::kA15:
      return "cortex-a15";
    case BackendKind::kHetero:
      return "hetero";
  }
  return "<bad>";
}

bool ParseBackend(std::string_view name, BackendKind* out) {
  if (name == "mali" || name == "mali-t604" || name == "gpu") {
    *out = BackendKind::kMali;
    return true;
  }
  if (name == "a15" || name == "cortex-a15" || name == "cpu") {
    *out = BackendKind::kA15;
    return true;
  }
  if (name == "hetero") {
    *out = BackendKind::kHetero;
    return true;
  }
  return false;
}

}  // namespace malisim::sim
