// HeteroDevice: CPU+GPU co-execution backend. Splits one NDRange across two
// sim::Device backends by a tunable work-group ratio and merges their
// timing/power/energy accounting per rail — the Racing-to-Idle-style
// configuration where both the Mali and the A15 chew on the same kernel.
//
// Split model: the row-major linearized group range [0, G) is cut at
// round(ratio * G); the GPU backend executes [0, split) and the CPU backend
// [split, G) via kir::LaunchConfig's group sub-range, so the kernel-visible
// geometry (GlobalSize, GlobalId) is untouched and kernels that derive
// per-item work from the global size stay functionally identical. Both
// backends share the host buffer storage (unified memory), and the
// functional halves run sequentially in a fixed order, so results are
// deterministic and bit-identical under replay.
//
// Time model: the devices run concurrently in modelled time, so the merged
// launch takes max(gpu_sec, cpu_sec). The merged activity profile rescales
// each side's busy fractions into the merged window
// (busy' = busy * side_sec / merged_sec), which conserves busy-seconds —
// and therefore per-rail energy — exactly (up to the [0,1] clamp); the
// ratio-sweep test asserts the conservation within Kahan tolerance.
//
// Ratio semantics: ratio is the GPU share of work-groups. 1.0 forwards the
// launch verbatim to the GPU backend and 0.0 to the CPU backend, so those
// endpoints reproduce the single-backend numbers bit-for-bit. A negative
// ratio (the default) enables self-tuning: the first launch of each kernel
// splits by the backends' modelled throughput hints, and every split launch
// updates a per-kernel ratio from the measured per-group rates
// r = gpu_rate / (gpu_rate + cpu_rate). Deterministic: same launches, same
// ratios.
#pragma once

#include <map>
#include <string>

#include "sim/device.h"

namespace malisim::sim {

struct HeteroConfig {
  /// GPU share of work-groups in [0,1]; negative = self-tuning.
  double ratio = -1.0;
};

class HeteroDevice final : public Device {
 public:
  /// Neither pointer is owned; both must outlive the HeteroDevice.
  HeteroDevice(Device* gpu, Device* cpu, HeteroConfig config = {});

  const DeviceCaps& caps() const override { return caps_; }
  StatusOr<DeviceRunResult> RunKernel(const KernelHandle& kernel,
                                      const kir::LaunchConfig& config,
                                      kir::Bindings bindings) override;
  void FlushCaches() override;
  void set_sim_options(const SimOptions& options) override;
  void set_recorder(obs::Recorder* recorder) override;
  void set_fault_injector(fault::FaultInjector* injector) override;

  /// Static GPU share in [0,1]; negative re-enables self-tuning.
  void set_ratio(double ratio) { config_.ratio = ratio; }
  double ratio() const { return config_.ratio; }

  /// The split the next launch of `kernel` would use (static ratio, tuned
  /// ratio, or the throughput-hint seed).
  double CurrentRatio(const std::string& kernel) const;

 private:
  Device* gpu_;
  Device* cpu_;
  HeteroConfig config_;
  DeviceCaps caps_;
  /// Kept only for host-profiling phase spans; the sub-devices own the
  /// actual record emission.
  obs::Recorder* recorder_ = nullptr;
  /// Self-tuned GPU share per kernel name, updated after every split run.
  std::map<std::string, double> tuned_ratio_;
};

}  // namespace malisim::sim
