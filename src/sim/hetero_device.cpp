#include "sim/hetero_device.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "kir/program.h"
#include "obs/recorder.h"

namespace malisim::sim {

namespace {

// Tags both sub-devices "hetero" for the duration of one hetero launch and
// restores the plain scope on exit. Scoped per call because ocl::Context
// shares its Mali/A15 device instances between direct dispatch and the
// embedded HeteroDevice — a permanent tag would mislabel plain launches.
class RecordScopeTag {
 public:
  RecordScopeTag(Device* gpu, Device* cpu) : gpu_(gpu), cpu_(cpu) {
    gpu_->set_record_scope("hetero");
    cpu_->set_record_scope("hetero");
  }
  ~RecordScopeTag() {
    gpu_->set_record_scope({});
    cpu_->set_record_scope({});
  }
  RecordScopeTag(const RecordScopeTag&) = delete;
  RecordScopeTag& operator=(const RecordScopeTag&) = delete;

 private:
  Device* gpu_;
  Device* cpu_;
};

}  // namespace

HeteroDevice::HeteroDevice(Device* gpu, Device* cpu, HeteroConfig config)
    : gpu_(gpu), cpu_(cpu), config_(config) {
  const DeviceCaps& g = gpu_->caps();
  const DeviceCaps& c = cpu_->caps();
  caps_.name = "Hetero (" + g.name + " + " + c.name + ")";
  caps_.kind = BackendKind::kHetero;
  caps_.compute_units = g.compute_units + c.compute_units;
  caps_.max_work_group_size =
      std::min(g.max_work_group_size, c.max_work_group_size);
  caps_.fp64 = g.fp64 && c.fp64;
  caps_.clock_hz = std::max(g.clock_hz, c.clock_hz);
  caps_.unified_memory = g.unified_memory && c.unified_memory;
  caps_.throughput_hint = g.throughput_hint + c.throughput_hint;
}

double HeteroDevice::CurrentRatio(const std::string& kernel) const {
  if (config_.ratio >= 0.0) return std::min(config_.ratio, 1.0);
  const auto it = tuned_ratio_.find(kernel);
  if (it != tuned_ratio_.end()) return it->second;
  const double g = gpu_->caps().throughput_hint;
  const double c = cpu_->caps().throughput_hint;
  if (g > 0.0 && c > 0.0) return g / (g + c);
  return 0.5;
}

StatusOr<DeviceRunResult> HeteroDevice::RunKernel(
    const KernelHandle& kernel, const kir::LaunchConfig& config,
    kir::Bindings bindings) {
  if (kernel.source == nullptr) {
    return InvalidArgumentError("hetero: RunKernel needs a source kernel");
  }
  RecordScopeTag scope_tag(gpu_, cpu_);
  const std::string& name = kernel.source->name;
  const std::uint64_t base = config.group_begin;
  const std::uint64_t range_end = config.group_range_end();
  const std::uint64_t active = config.active_groups();
  const double ratio = CurrentRatio(name);
  const std::uint64_t split = std::min<std::uint64_t>(
      active,
      static_cast<std::uint64_t>(
          std::llround(ratio * static_cast<double>(active))));

  // Endpoint forwarding: an all-GPU or all-CPU split runs the launch
  // verbatim on that backend, so ratio 1.0 / 0.0 reproduce the pure
  // single-backend records bit-for-bit (status text included).
  if (split == active) {
    StatusOr<DeviceRunResult> run =
        gpu_->RunKernel(kernel, config, std::move(bindings));
    if (!run.ok()) return run.status();
    run->stats.Set("hetero.ratio", 1.0);
    run->stats.Set("hetero.gpu_groups", static_cast<double>(active));
    run->stats.Set("hetero.cpu_groups", 0.0);
    run->stats.Set("hetero.launches", 1.0);
    return run;
  }
  if (split == 0) {
    StatusOr<DeviceRunResult> run =
        cpu_->RunKernel(kernel, config, std::move(bindings));
    if (!run.ok()) return run.status();
    run->stats.Set("hetero.ratio", 0.0);
    run->stats.Set("hetero.gpu_groups", 0.0);
    run->stats.Set("hetero.cpu_groups", static_cast<double>(active));
    run->stats.Set("hetero.launches", 1.0);
    return run;
  }

  // Split launch: disjoint group sub-ranges over unchanged geometry. The
  // GPU half always executes first — functional state is shared (unified
  // memory) and the fixed order keeps replay bit-identical.
  kir::LaunchConfig gpu_config = config;
  gpu_config.group_begin = base;
  gpu_config.group_end = base + split;
  kir::LaunchConfig cpu_config = config;
  cpu_config.group_begin = base + split;
  cpu_config.group_end = range_end;

  StatusOr<DeviceRunResult> gpu_run =
      gpu_->RunKernel(kernel, gpu_config, bindings);
  if (!gpu_run.ok()) {
    return Status(gpu_run.status().code(),
                  "hetero[" + std::string(BackendName(gpu_->caps().kind)) +
                      "]: " + std::string(gpu_run.status().message()));
  }
  StatusOr<DeviceRunResult> cpu_run =
      cpu_->RunKernel(kernel, cpu_config, std::move(bindings));
  if (!cpu_run.ok()) {
    return Status(cpu_run.status().code(),
                  "hetero[" + std::string(BackendName(cpu_->caps().kind)) +
                      "]: " + std::string(cpu_run.status().message()));
  }

  // Concurrent-in-modelled-time merge: the launch retires when the slower
  // side does; busy fractions rescale into the merged window so
  // busy-seconds (and therefore per-rail energy) are conserved.
  obs::HostProf::PhaseSpan merge_span(
      recorder_ != nullptr ? recorder_->host_prof() : nullptr,
      obs::HostPhase::kMerge);
  DeviceRunResult merged;
  merged.seconds = std::max(gpu_run->seconds, cpu_run->seconds);
  const double g_sec = gpu_run->profile.seconds;
  const double c_sec = cpu_run->profile.seconds;
  merged.profile.seconds = merged.seconds;
  const double window = merged.seconds > 0.0 ? merged.seconds : 1.0;
  for (int i = 0; i < power::kNumA15Cores; ++i) {
    merged.profile.cpu_busy[i] =
        std::clamp((gpu_run->profile.cpu_busy[i] * g_sec +
                    cpu_run->profile.cpu_busy[i] * c_sec) /
                       window,
                   0.0, 1.0);
  }
  for (int i = 0; i < power::kNumMaliCores; ++i) {
    merged.profile.gpu_core_busy[i] =
        std::clamp((gpu_run->profile.gpu_core_busy[i] * g_sec +
                    cpu_run->profile.gpu_core_busy[i] * c_sec) /
                       window,
                   0.0, 1.0);
  }
  merged.profile.gpu_on = gpu_run->profile.gpu_on || cpu_run->profile.gpu_on;
  merged.profile.dram_bytes =
      gpu_run->profile.dram_bytes + cpu_run->profile.dram_bytes;

  merged.run.MergeFrom(gpu_run->run);
  merged.run.MergeFrom(cpu_run->run);
  merged.stats.MergeFrom(gpu_run->stats);
  merged.stats.MergeFrom(cpu_run->stats);
  merged.stats.Set("hetero.ratio", ratio);
  merged.stats.Set("hetero.gpu_groups", static_cast<double>(split));
  merged.stats.Set("hetero.cpu_groups", static_cast<double>(active - split));
  merged.stats.Set("hetero.gpu_sec", gpu_run->seconds);
  merged.stats.Set("hetero.cpu_sec", cpu_run->seconds);
  merged.stats.Set("hetero.launches", 1.0);

  // Self-tuning: measured per-group rates decide the next launch's split.
  if (config_.ratio < 0.0 && gpu_run->seconds > 0.0 &&
      cpu_run->seconds > 0.0) {
    const double gpu_rate = static_cast<double>(split) / gpu_run->seconds;
    const double cpu_rate =
        static_cast<double>(active - split) / cpu_run->seconds;
    if (gpu_rate + cpu_rate > 0.0) {
      tuned_ratio_[name] = gpu_rate / (gpu_rate + cpu_rate);
    }
  }
  return merged;
}

void HeteroDevice::FlushCaches() {
  gpu_->FlushCaches();
  cpu_->FlushCaches();
}

void HeteroDevice::set_sim_options(const SimOptions& options) {
  gpu_->set_sim_options(options);
  cpu_->set_sim_options(options);
}

void HeteroDevice::set_recorder(obs::Recorder* recorder) {
  recorder_ = recorder;
  gpu_->set_recorder(recorder);
  cpu_->set_recorder(recorder);
}

void HeteroDevice::set_fault_injector(fault::FaultInjector* injector) {
  gpu_->set_fault_injector(injector);
  cpu_->set_fault_injector(injector);
}

}  // namespace malisim::sim
