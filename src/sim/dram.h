// Analytic DDR3L-1600 DRAM model (Arndale board: 2 GB, 12.8 GB/s peak over
// a 2x32-bit @ 800 MHz interface on the Exynos 5250).
//
// The model is bandwidth/latency based rather than bank-cycle accurate:
// a transfer of N line-sized bursts takes max(first-word latency,
// N * line_bytes / effective_bandwidth). Effective bandwidth degrades for
// scattered (low row-buffer locality) traffic; device models report the
// sequential fraction of their miss streams.
#pragma once

#include <cstdint>

#include "common/status.h"

namespace malisim::sim {

struct DramConfig {
  double peak_bandwidth_bytes_per_sec = 12.8e9;  // DDR3L-1600, 64-bit total
  /// Achievable fraction of peak for perfectly streaming traffic.
  double streaming_efficiency = 0.80;
  /// Achievable fraction of peak for fully scattered line fills
  /// (row misses dominate).
  double scattered_efficiency = 0.35;
  double first_word_latency_sec = 90e-9;  // CAS + controller + interconnect
  std::uint32_t line_bytes = 64;
};

struct DramStats {
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t bursts = 0;

  std::uint64_t total_bytes() const { return bytes_read + bytes_written; }
};

class DramModel {
 public:
  explicit DramModel(const DramConfig& config);

  /// Time to move `lines` cache lines with the given sequentiality in
  /// [0, 1]; 1.0 = perfect streaming. Also accrues traffic statistics.
  double TransferTime(std::uint64_t read_lines, std::uint64_t write_lines,
                      double sequential_fraction);

  /// Effective bandwidth (bytes/sec) for a given sequential fraction.
  double EffectiveBandwidth(double sequential_fraction) const;

  const DramConfig& config() const { return config_; }
  const DramStats& stats() const { return stats_; }
  void ResetStats() { stats_ = DramStats{}; }

 private:
  DramConfig config_;
  DramStats stats_;
};

}  // namespace malisim::sim
