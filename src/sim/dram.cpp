#include "sim/dram.h"

#include <algorithm>

namespace malisim::sim {

DramModel::DramModel(const DramConfig& config) : config_(config) {
  MALI_CHECK_MSG(config.peak_bandwidth_bytes_per_sec > 0, "bad bandwidth");
  MALI_CHECK_MSG(config.streaming_efficiency > 0 &&
                     config.streaming_efficiency <= 1.0,
                 "bad streaming efficiency");
  MALI_CHECK_MSG(config.scattered_efficiency > 0 &&
                     config.scattered_efficiency <= config.streaming_efficiency,
                 "bad scattered efficiency");
}

double DramModel::EffectiveBandwidth(double sequential_fraction) const {
  const double f = std::clamp(sequential_fraction, 0.0, 1.0);
  const double efficiency = config_.scattered_efficiency +
                            f * (config_.streaming_efficiency -
                                 config_.scattered_efficiency);
  return efficiency * config_.peak_bandwidth_bytes_per_sec;
}

double DramModel::TransferTime(std::uint64_t read_lines,
                               std::uint64_t write_lines,
                               double sequential_fraction) {
  const std::uint64_t lines = read_lines + write_lines;
  if (lines == 0) return 0.0;
  const std::uint64_t read_bytes = read_lines * config_.line_bytes;
  const std::uint64_t write_bytes = write_lines * config_.line_bytes;
  stats_.bytes_read += read_bytes;
  stats_.bytes_written += write_bytes;
  stats_.bursts += lines;

  const double bytes = static_cast<double>(read_bytes + write_bytes);
  const double bw_time = bytes / EffectiveBandwidth(sequential_fraction);
  return std::max(bw_time, config_.first_word_latency_sec);
}

}  // namespace malisim::sim
