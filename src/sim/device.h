// sim::Device — the backend abstraction every execution target implements.
//
// Before this interface existed the stack hard-wired its two devices:
// ocl::Context talked to mali::MaliT604Device directly and the harness
// instantiated cpu::CortexA15Device on the side. A Device is anything that
// can execute a KIR kernel over an NDRange and account for it: it exposes
// capabilities (DeviceCaps), runs kernels through a uniform entry point
// (RunKernel over an opaque KernelHandle), and accepts the cross-cutting
// hooks (SimOptions, obs::Recorder, fault::FaultInjector). The concrete
// models — MaliT604Device, CortexA15Device and the co-execution
// HeteroDevice — all implement it, so the OCL runtime, the harness and the
// fault ladder dispatch on BackendKind instead of special-casing the pair.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/sim_options.h"
#include "common/stats.h"
#include "common/status.h"
#include "kir/exec_types.h"
#include "power/profile.h"

namespace malisim::obs {
class Recorder;
}  // namespace malisim::obs

namespace malisim::fault {
class FaultInjector;
}  // namespace malisim::fault

namespace malisim::kir {
struct Program;
}  // namespace malisim::kir

namespace malisim::sim {

/// The one backend-identity enum for the whole stack. ocl::DeviceType is an
/// alias of this; metric keys, CLI flags and Status annotations all
/// round-trip through BackendName/ParseBackend.
enum class BackendKind : std::uint8_t { kMali, kA15, kHetero };

inline constexpr BackendKind kAllBackendKinds[] = {
    BackendKind::kMali, BackendKind::kA15, BackendKind::kHetero};

/// Canonical backend name: "mali-t604", "cortex-a15", "hetero". These are
/// the device strings obs::KernelRecord carries and the per-backend metric
/// prefixes ("kernel_time_sec/<backend>/<kernel>") use.
std::string_view BackendName(BackendKind kind);

/// Inverse of BackendName. Also accepts the short CLI spellings "mali" and
/// "a15". False on unknown names.
bool ParseBackend(std::string_view name, BackendKind* out);

/// clGetDeviceInfo-shaped capability record.
struct DeviceCaps {
  std::string name;                       // human-readable model name
  BackendKind kind = BackendKind::kMali;
  std::uint32_t compute_units = 0;
  std::uint64_t max_work_group_size = 0;
  bool fp64 = true;                       // Full Profile on every backend
  double clock_hz = 0.0;
  /// Memory domain: true when the device addresses the same DRAM as the
  /// host (the Exynos 5250 is fully unified; a discrete backend would
  /// model explicit transfer domains here).
  bool unified_memory = true;
  /// Rough modelled work-group throughput (groups/sec for a nominal
  /// group), used only to seed HeteroDevice's self-tuning split before the
  /// first measurement exists. Never feeds a modelled time.
  double throughput_hint = 0.0;
};

/// Opaque per-backend kernel handle. `source` is always set; `compiled` is
/// the backend-specific artifact (the Mali backend expects a
/// mali::CompiledKernel*; the A15 interprets the source directly and
/// ignores it). Keeping the compiled form opaque is what lets sim avoid a
/// dependency on the Mali compiler.
struct KernelHandle {
  const kir::Program* source = nullptr;
  const void* compiled = nullptr;
};

/// Uniform result of one kernel execution on any backend: modelled time,
/// the activity profile for per-rail power/energy attribution, functional
/// counts, and the backend's stat breakdown.
struct DeviceRunResult {
  double seconds = 0.0;
  power::ActivityProfile profile;
  kir::WorkGroupRun run;
  StatRegistry stats;
};

class Device {
 public:
  virtual ~Device() = default;

  virtual const DeviceCaps& caps() const = 0;

  /// Executes the kernel over `config`'s active group range
  /// ([config.group_begin, config.group_end), full NDRange by default) and
  /// models elapsed time and activity. The per-kernel timing/power
  /// accounting contract: `profile.seconds == seconds`, and busy fractions
  /// are power-relevant utilization over that window.
  virtual StatusOr<DeviceRunResult> RunKernel(const KernelHandle& kernel,
                                              const kir::LaunchConfig& config,
                                              kir::Bindings bindings) = 0;

  /// Models a cold start; caches stay warm across RunKernel calls.
  virtual void FlushCaches() = 0;

  /// Host-side engine options (serial vs record/replay parallel execution).
  /// Modelled results are bit-identical for any thread count.
  virtual void set_sim_options(const SimOptions& options) = 0;

  /// Observability hook (nullptr detaches). Strictly read-only with
  /// respect to the simulation: modelled seconds/power never depend on it.
  virtual void set_recorder(obs::Recorder* recorder) = 0;

  /// Fault-injection hook (nullptr detaches). Backends without modelled
  /// fault sites (the A15) keep the default no-op.
  virtual void set_fault_injector(fault::FaultInjector* injector) {
    (void)injector;
  }

  /// Execution-scope tag stamped onto every obs::KernelRecord this device
  /// emits ("" = plain launch). HeteroDevice tags its sub-devices
  /// "hetero" so exporters can give the sub-launches their own trace
  /// lanes. Purely observational — never read by the timing model.
  virtual void set_record_scope(std::string_view scope) { (void)scope; }
};

}  // namespace malisim::sim
