// Set-associative write-back cache model with true-LRU replacement.
//
// The model is functional-free: it tracks only tags and dirty bits to
// classify accesses as hits/misses and to count writebacks. Both device
// models drive it with the (simulated) addresses produced by the KIR
// interpreter, so locality effects — the heart of several paper
// optimizations (data reuse in dmmm/2dcon, strided stencils, SOA layout) —
// are captured rather than assumed.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace malisim::sim {

struct CacheConfig {
  std::uint64_t size_bytes = 0;
  std::uint32_t line_bytes = 64;
  std::uint32_t associativity = 8;
  bool write_allocate = true;

  std::uint64_t num_sets() const {
    return size_bytes / (static_cast<std::uint64_t>(line_bytes) * associativity);
  }
};

/// Outcome of one (possibly line-spanning) access.
struct CacheAccessResult {
  std::uint32_t lines_touched = 0;
  std::uint32_t misses = 0;
  std::uint32_t writebacks = 0;  // dirty evictions caused by this access
};

struct CacheStats {
  std::uint64_t accesses = 0;   // line-granular probe count
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writebacks = 0;

  double hit_rate() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(hits) / static_cast<double>(accesses);
  }
};

class CacheModel {
 public:
  explicit CacheModel(const CacheConfig& config);

  /// Probes every line overlapped by [addr, addr+size). Write misses
  /// allocate when configured (write-allocate + write-back), otherwise they
  /// are counted as misses that bypass the cache.
  CacheAccessResult Access(std::uint64_t addr, std::uint32_t size, bool is_write);

  /// Invalidate everything (e.g. between benchmark repetitions); dirty lines
  /// are counted as writebacks.
  void Flush();

  const CacheConfig& config() const { return config_; }
  const CacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CacheStats{}; }

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t lru_stamp = 0;
    bool valid = false;
    bool dirty = false;
  };

  /// Probe a single line address; returns true on hit.
  bool ProbeLine(std::uint64_t line_addr, bool is_write, std::uint32_t* writebacks);

  CacheConfig config_;
  std::uint64_t set_mask_;
  std::uint32_t line_shift_;
  std::uint64_t next_stamp_ = 1;
  std::vector<Line> lines_;  // sets * ways, row-major by set
  CacheStats stats_;
};

}  // namespace malisim::sim
