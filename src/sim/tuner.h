// sim::Tuner — the autotuning search engine over the paper's §III
// optimization space.
//
// The paper hand-picks one operating point per benchmark (work-group size,
// vector width, unroll factor, buffer strategy); the tuner searches that
// space automatically. A benchmark (or any other client) declares a
// TuningSpace — named integer axes plus an optional validity predicate —
// and an evaluation callback that runs one candidate configuration and
// reports its modelled time and energy. The engine picks the winner under a
// selectable objective (time, energy, or energy-delay product):
//
//  * Exhaustive search when the space is small (every valid point is
//    evaluated; the winner provably matches-or-beats any hand-picked
//    configuration in the space).
//  * A seeded, deterministic hill-climb with restarts for large spaces:
//    random restart points from a xoshiro256++ stream, coordinate-step
//    neighborhoods, batch evaluation of each neighborhood.
//
// Candidate evaluations fan out over the PR 1 thread pool through
// RunOrderedPipeline: bodies run concurrently, but every search-state
// update (best-so-far, memo table, trajectory) happens in strictly
// increasing candidate order on the calling thread. Together with
// deterministic tie-breaking (first enumerated wins) this makes the full
// search trajectory — not just the winner — bit-identical for any host
// thread count, the same contract the device engines keep.
//
// Failed evaluations (build failures, injected faults, resource
// exhaustion) are skipped-and-counted, never winners: a search in which no
// candidate succeeds returns NotFound rather than a poisoned result.
//
// TuningCache persists winners as JSON ("malisim-tune-cache-v1"),
// content-addressed by a caller-supplied key derived from the kernel
// fingerprint, the DeviceCaps of the target backend, the objective and the
// space signature (TuningCacheKey). Corrupt or truncated cache files are
// rejected gracefully — a warning through the MALISIM_LOG_LEVEL logger and
// an empty cache, never an abort.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "sim/device.h"

namespace malisim::sim {

/// What the search minimizes. kEdp is the energy-delay product E*t, the
/// battery-versus-deadline compromise objective.
enum class Objective : std::uint8_t { kTime, kEnergy, kEdp };

inline constexpr Objective kAllObjectives[] = {Objective::kTime,
                                               Objective::kEnergy,
                                               Objective::kEdp};

/// Canonical objective name: "time", "energy", "edp".
std::string_view ObjectiveName(Objective objective);

/// Inverse of ObjectiveName. False on unknown names.
bool ParseObjective(std::string_view name, Objective* out);

/// One named integer knob and its ordered candidate values. Non-integer
/// knobs are encoded: booleans as {0,1}, the hetero GPU share as permille.
struct TuningAxis {
  std::string name;
  std::vector<std::int64_t> values;
};

/// One point of a TuningSpace: an axis-ordered (name, value) assignment.
struct TuningConfig {
  std::vector<std::pair<std::string, std::int64_t>> values;

  /// Value of axis `name`, or `fallback` when the config has no such axis
  /// (benchmarks use fallbacks so optional axes degrade to the paper
  /// defaults).
  std::int64_t Get(std::string_view name, std::int64_t fallback) const;
  bool Has(std::string_view name) const;
  void Set(std::string_view name, std::int64_t value);

  /// Stable textual form "a=1,b=128" in axis order — the identity used for
  /// memoization, tie-breaking, trajectories and the cache format.
  std::string CanonicalKey() const;

  bool operator==(const TuningConfig& other) const {
    return values == other.values;
  }
};

/// A declarative search space: axes plus an optional validity predicate
/// for cross-axis constraints (e.g. wg_x*wg_y*wg_z <= max work-group size).
struct TuningSpace {
  std::vector<TuningAxis> axes;
  /// Nullptr = every combination is valid.
  std::function<bool(const TuningConfig&)> valid;

  /// Product of axis sizes (valid and invalid points alike); 0 for an
  /// empty axis list or any empty axis.
  std::uint64_t Size() const;
  /// Mixed-radix decode of `index` in [0, Size()): axis 0 varies slowest.
  TuningConfig At(std::uint64_t index) const;
  bool IsValid(const TuningConfig& config) const;
  /// "axis:v1|v2,axis2:v1" — the space's identity for cache keys.
  std::string Signature() const;
};

/// What one candidate evaluation reports back: modelled seconds of the
/// measured region and modelled energy-to-solution over it.
struct TuningMeasurement {
  double seconds = 0.0;
  double energy_j = 0.0;
};

/// The scalar the search minimizes for `objective`.
double ObjectiveScore(Objective objective, const TuningMeasurement& m);

/// Evaluates one candidate. Called concurrently from pool workers when the
/// tuner runs threaded, so the callback must be self-contained (fresh
/// devices per call) and deterministic — same config, same measurement.
/// A non-OK status marks the candidate skipped (degraded/faulted), not
/// fatal to the search.
using TuningEvalFn =
    std::function<StatusOr<TuningMeasurement>(const TuningConfig&)>;

struct TunerOptions {
  Objective objective = Objective::kTime;
  /// Seed for the hill-climb restart stream. Exhaustive search ignores it.
  std::uint64_t seed = 42;
  /// Host threads for candidate fan-out; 1 = inline evaluation.
  int threads = 1;
  /// RunOrderedPipeline lookahead beyond the replay cursor.
  int replay_window = 16;
  /// Spaces with Size() <= this are searched exhaustively.
  std::uint64_t exhaustive_limit = 512;
  /// Hill-climb restarts and per-restart step budget (large spaces only).
  int restarts = 4;
  int max_steps = 24;
};

/// One replay-ordered evaluation record. `ok == false` is a skipped
/// candidate (its score is meaningless).
struct TuningTrajectoryPoint {
  std::string config_key;
  double score = 0.0;
  bool ok = false;
};

struct TunerResult {
  TuningConfig best;
  TuningMeasurement best_measurement;
  double best_score = 0.0;
  /// Search accounting.
  std::uint64_t space_size = 0;
  std::uint64_t evaluated = 0;   // unique candidates that measured OK
  std::uint64_t skipped = 0;     // unique candidates whose eval failed
  bool exhaustive = false;
  /// True when the winner came straight from a TuningCache and no
  /// candidate was evaluated.
  bool from_cache = false;
  /// Every unique evaluation in replay order — the deterministic search
  /// trajectory the cross-thread-count tests compare bit-for-bit.
  std::vector<TuningTrajectoryPoint> trajectory;
};

class Tuner {
 public:
  explicit Tuner(const TunerOptions& options) : options_(options) {}

  /// Searches `space`, minimizing the objective over `eval` measurements.
  /// InvalidArgument for an empty space; NotFound when no candidate
  /// evaluates successfully (every point skipped or invalid).
  StatusOr<TunerResult> Search(const TuningSpace& space,
                               const TuningEvalFn& eval) const;

  const TunerOptions& options() const { return options_; }

 private:
  TunerOptions options_;
};

/// FNV-1a 64-bit hash, the content-address primitive for fingerprints and
/// cache keys.
std::uint64_t Fnv1a64(std::string_view text);

/// Canonical capability string entering the cache key: a configuration
/// change on the modelled device (clock, core count, work-group limit)
/// invalidates cached winners.
std::string DeviceCapsKey(const DeviceCaps& caps);

/// Content address of one tuning problem: hex FNV-1a over the kernel
/// fingerprint, the device capability string, the objective and the space
/// signature.
std::string TuningCacheKey(std::string_view kernel_fingerprint,
                           const DeviceCaps& caps, Objective objective,
                           const TuningSpace& space);

/// One persisted winner.
struct TuningCacheEntry {
  std::string config_key;       // winner's CanonicalKey()
  std::string objective;        // ObjectiveName at insert time
  double score = 0.0;
  double seconds = 0.0;
  double energy_j = 0.0;
};

/// Persistent winner cache. Serialization is deterministic (entries sorted
/// by key) so two identical tuning runs write byte-identical files — CI
/// `cmp`s them.
class TuningCache {
 public:
  bool Lookup(const std::string& key, TuningCacheEntry* out) const;
  void Insert(const std::string& key, TuningCacheEntry entry);
  std::size_t size() const { return entries_.size(); }

  /// "malisim-tune-cache-v1" JSON document.
  std::string Serialize() const;
  /// Strict parse of Serialize() output; InvalidArgument on anything else.
  static StatusOr<TuningCache> Deserialize(std::string_view text);

  /// Loads `path`. A missing file is an empty cache (first run); a corrupt
  /// or truncated file is rejected gracefully — MALI_LOG_WARN and an empty
  /// cache, with Ok status either way.
  static TuningCache LoadFileOrEmpty(const std::string& path);

  /// Crash- and concurrency-safe save. The document is written to a
  /// sibling temp file and rename(2)d over `path`, so readers only ever
  /// see a complete document (never a torn write). Writers serialize on a
  /// best-effort `path`.lock file; a lock older than ~60 s is presumed
  /// left by a crashed writer and stolen, and a writer that cannot get the
  /// lock at all still performs the atomic replace (last writer wins,
  /// never corruption). On-disk entries absent from this cache are merged
  /// into the written document so concurrent writers with disjoint keys
  /// lose nothing; this cache's own entries take precedence.
  Status SaveFile(const std::string& path) const;

  const std::map<std::string, TuningCacheEntry>& entries() const {
    return entries_;
  }

 private:
  std::map<std::string, TuningCacheEntry> entries_;
};

/// Reconstructs the TuningConfig a cache entry's config_key denotes,
/// resolving axis values against `space` (axes absent from the key keep
/// their first value). InvalidArgument when the key names an axis value
/// outside the space.
StatusOr<TuningConfig> ConfigFromKey(const TuningSpace& space,
                                     std::string_view config_key);

}  // namespace malisim::sim
