#include "sim/memory_system.h"

#include <algorithm>

namespace malisim::sim {

namespace {
constexpr std::uint64_t kNoLine = ~0ULL;
}  // namespace

MemoryHierarchy::MemoryHierarchy(const HierarchyConfig& config)
    : config_(config), l2_(config.l2) {
  MALI_CHECK_MSG(config.num_cores > 0, "need at least one core");
  if (config_.has_l1) {
    MALI_CHECK_MSG(config.l1.line_bytes == config.l2.line_bytes,
                   "mixed line sizes are not modelled");
    l1s_.reserve(config_.num_cores);
    for (std::uint32_t c = 0; c < config_.num_cores; ++c) {
      l1s_.emplace_back(config_.l1);
    }
  }
  fill_history_.assign(
      static_cast<std::size_t>(config_.num_cores) * kStreamHistory, kNoLine);
  fill_history_pos_.assign(config_.num_cores, 0);
}

AccessOutcome MemoryHierarchy::Access(std::uint32_t core, std::uint64_t addr,
                                      std::uint32_t size, bool is_write) {
  MALI_CHECK(core < config_.num_cores);
  AccessOutcome outcome;

  std::uint64_t first_line = addr / config_.l2.line_bytes;
  std::uint64_t last_line = size == 0 ? first_line
                                      : (addr + size - 1) / config_.l2.line_bytes;
  outcome.lines_touched =
      size == 0 ? 0 : static_cast<std::uint32_t>(last_line - first_line + 1);
  if (size == 0) return outcome;

  const std::uint32_t line_bytes = config_.l2.line_bytes;
  for (std::uint64_t line = first_line; line <= last_line; ++line) {
    const std::uint64_t line_addr = line * line_bytes;
    bool probe_l2 = true;
    if (config_.has_l1) {
      const CacheAccessResult r =
          l1s_[core].Access(line_addr, line_bytes, is_write);
      if (r.misses == 0) {
        probe_l2 = false;
      } else {
        ++outcome.l1_misses;
      }
      // L1 writebacks land in the L2 (write-back hierarchy); model them as
      // L2 write probes without inflating the program's demand stream.
      for (std::uint32_t wb = 0; wb < r.writebacks; ++wb) {
        const CacheAccessResult wb_r = l2_.Access(line_addr, line_bytes, true);
        writeback_lines_ += wb_r.writebacks;
      }
    } else {
      ++outcome.l1_misses;  // no L1: every access reaches L2
    }

    if (probe_l2) {
      const CacheAccessResult r = l2_.Access(line_addr, line_bytes, is_write);
      writeback_lines_ += r.writebacks;
      if (r.misses > 0) {
        ++outcome.l2_misses;
        ++fill_lines_;
        std::uint64_t* history = &fill_history_[core * kStreamHistory];
        bool sequential = false;
        int replace = fill_history_pos_[core];
        for (int h = 0; h < kStreamHistory; ++h) {
          if (history[h] != kNoLine && line == history[h] + 1) {
            sequential = true;
            replace = h;  // extend this stream's tracking slot
            break;
          }
        }
        if (sequential) {
          ++sequential_fills_;
        } else {
          fill_history_pos_[core] = (replace + 1) % kStreamHistory;
        }
        history[replace] = line;
      }
    }
  }
  return outcome;
}

double MemoryHierarchy::sequential_fraction() const {
  if (fill_lines_ == 0) return 1.0;
  return static_cast<double>(sequential_fills_) /
         static_cast<double>(fill_lines_);
}

const CacheModel& MemoryHierarchy::l1(std::uint32_t core) const {
  MALI_CHECK(config_.has_l1 && core < l1s_.size());
  return l1s_[core];
}

void MemoryHierarchy::Flush() {
  for (CacheModel& l1 : l1s_) l1.Flush();
  l2_.Flush();
  std::fill(fill_history_.begin(), fill_history_.end(), kNoLine);
}

void MemoryHierarchy::ResetStats() {
  for (CacheModel& l1 : l1s_) l1.ResetStats();
  l2_.ResetStats();
  fill_lines_ = 0;
  writeback_lines_ = 0;
  sequential_fills_ = 0;
  std::fill(fill_history_.begin(), fill_history_.end(), kNoLine);
}

}  // namespace malisim::sim
