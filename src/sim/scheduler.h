// Event-graph scheduler: the modelled-time half of the async command queue.
//
// Enqueued commands become nodes of a DAG (EventGraph) with explicit
// dependencies and a `lane` — the modelled execution engine the command
// occupies (host memcpy engine, device compute, device copy engine).
// ScheduleEvents retires ready nodes deterministically onto their lanes,
// overlapping independent kernels/transfers in modelled time the way the
// real driver overlaps them in wall time.
//
// Two invariants the tests lean on:
//  * A chain (every node depending on the previous one) schedules to a
//    makespan exactly equal to the sum of node durations, accumulated in
//    node order — bit-identical to the eager queue's total_seconds().
//    This is what makes the async refactor provably behavior-preserving on
//    dependency-linearizable graphs.
//  * Scheduling is a pure function of the graph: same nodes, same deps,
//    same result, on every host and thread count.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace malisim::sim {

using EventId = std::uint32_t;
inline constexpr EventId kNullEvent = 0xFFFF'FFFFu;

/// What a node models; mirrors ocl::Event::Kind plus device-side commands.
enum class CmdKind : std::uint8_t {
  kWrite,
  kRead,
  kCopy,
  kFill,
  kMap,
  kUnmap,
  kKernel,
  kBarrier,
};

std::string_view CmdKindName(CmdKind kind);

/// Modelled execution engines. Lane 0 is the host (A15 doing driver work
/// and memcpys); lane 1 is the context's compute backend; lane 2 is the
/// device-side copy/fill engine, which is what lets a transfer overlap a
/// kernel.
inline constexpr int kLaneHost = 0;
inline constexpr int kLaneCompute = 1;
inline constexpr int kLaneTransfer = 2;

std::string_view LaneName(int lane);

struct EventNode {
  EventId id = kNullEvent;
  CmdKind kind = CmdKind::kKernel;
  std::string label;       // kernel name, or empty for transfers
  double seconds = 0.0;    // modelled duration of the command
  int lane = kLaneHost;
  std::vector<EventId> deps;
};

/// Append-only DAG of command nodes. Dependencies must point at existing
/// (earlier) nodes, which structurally rules out cycles at build time; the
/// scheduler still validates.
class EventGraph {
 public:
  EventId Add(CmdKind kind, std::string label, double seconds, int lane,
              std::span<const EventId> deps);

  const std::vector<EventNode>& nodes() const { return nodes_; }
  std::size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }
  /// Highest lane index used, plus one (0 for an empty graph).
  int num_lanes() const { return num_lanes_; }
  void Clear();

 private:
  std::vector<EventNode> nodes_;
  int num_lanes_ = 0;
};

struct ScheduledEvent {
  EventId id = kNullEvent;
  double start_sec = 0.0;
  double finish_sec = 0.0;
};

struct ScheduleResult {
  /// Modelled completion time of the whole graph.
  double makespan_sec = 0.0;
  /// What the eager in-order queue would have charged: the plain sum of
  /// node durations in insertion order.
  double serial_sec = 0.0;
  /// Longest dependency path (lanes ignored) — the lower bound no amount
  /// of overlap can beat.
  double critical_path_sec = 0.0;
  /// Nodes in retirement order with their modelled start/finish times.
  std::vector<ScheduledEvent> order;
  /// Busy seconds per lane (indexed by lane).
  std::vector<double> lane_busy_sec;
};

/// Deterministic list scheduling: among dependency-ready nodes, the one
/// with the earliest dependency-ready time retires first (node id breaks
/// ties), onto its lane's timeline — a node starts at
/// max(deps' finish, lane free). InvalidArgument on a dependency cycle or
/// an unknown dependency id.
StatusOr<ScheduleResult> ScheduleEvents(const EventGraph& graph);

/// Marks the nodes of one longest dependency chain (the chain whose length
/// is ScheduleResult::critical_path_sec): out[id] is true for members.
/// Pure function of the graph; ties break toward the lowest node id, so
/// the marking is deterministic. Exporters use it to highlight the causal
/// spine of an async run. Empty vector for an empty graph.
std::vector<bool> CriticalPathNodes(const EventGraph& graph);

}  // namespace malisim::sim
