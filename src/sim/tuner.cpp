#include "sim/tuner.h"

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <optional>
#include <sstream>
#include <thread>

#ifndef _WIN32
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "common/json.h"
#include "common/log.h"
#include "common/prng.h"
#include "common/thread_pool.h"

namespace malisim::sim {

std::string_view ObjectiveName(Objective objective) {
  switch (objective) {
    case Objective::kTime:
      return "time";
    case Objective::kEnergy:
      return "energy";
    case Objective::kEdp:
      return "edp";
  }
  return "?";
}

bool ParseObjective(std::string_view name, Objective* out) {
  for (const Objective o : kAllObjectives) {
    if (name == ObjectiveName(o)) {
      *out = o;
      return true;
    }
  }
  return false;
}

std::int64_t TuningConfig::Get(std::string_view name,
                               std::int64_t fallback) const {
  for (const auto& [axis, value] : values) {
    if (axis == name) return value;
  }
  return fallback;
}

bool TuningConfig::Has(std::string_view name) const {
  for (const auto& [axis, value] : values) {
    if (axis == name) return true;
  }
  return false;
}

void TuningConfig::Set(std::string_view name, std::int64_t value) {
  for (auto& [axis, existing] : values) {
    if (axis == name) {
      existing = value;
      return;
    }
  }
  values.emplace_back(std::string(name), value);
}

std::string TuningConfig::CanonicalKey() const {
  std::string out;
  for (const auto& [axis, value] : values) {
    if (!out.empty()) out += ',';
    out += axis;
    out += '=';
    out += std::to_string(value);
  }
  return out;
}

std::uint64_t TuningSpace::Size() const {
  if (axes.empty()) return 0;
  std::uint64_t size = 1;
  for (const TuningAxis& axis : axes) {
    if (axis.values.empty()) return 0;
    size *= axis.values.size();
  }
  return size;
}

TuningConfig TuningSpace::At(std::uint64_t index) const {
  // Mixed-radix decode with axis 0 as the most significant digit, so
  // exhaustive enumeration sweeps the last axis fastest — the order a
  // nest of for-loops over the axes would produce.
  TuningConfig config;
  config.values.resize(axes.size());
  for (std::size_t i = axes.size(); i-- > 0;) {
    const TuningAxis& axis = axes[i];
    const std::uint64_t radix = axis.values.size();
    config.values[i] = {axis.name,
                        axis.values[static_cast<std::size_t>(index % radix)]};
    index /= radix;
  }
  return config;
}

bool TuningSpace::IsValid(const TuningConfig& config) const {
  return valid == nullptr || valid(config);
}

std::string TuningSpace::Signature() const {
  std::string out;
  for (const TuningAxis& axis : axes) {
    if (!out.empty()) out += ',';
    out += axis.name;
    out += ':';
    for (std::size_t i = 0; i < axis.values.size(); ++i) {
      if (i > 0) out += '|';
      out += std::to_string(axis.values[i]);
    }
  }
  return out;
}

double ObjectiveScore(Objective objective, const TuningMeasurement& m) {
  switch (objective) {
    case Objective::kTime:
      return m.seconds;
    case Objective::kEnergy:
      return m.energy_j;
    case Objective::kEdp:
      return m.energy_j * m.seconds;
  }
  return m.seconds;
}

namespace {

/// Shared search bookkeeping. Mutated only in replay order (the pipeline's
/// calling-thread stage), which is what makes the trajectory — and every
/// tie-break — independent of the host thread count.
struct SearchState {
  const Objective objective;
  /// CanonicalKey -> score of a successful eval, or nullopt for a skipped
  /// candidate. Doubles as the dedupe table: a config is evaluated once.
  std::map<std::string, std::optional<double>> memo;
  TunerResult result;
  bool have_best = false;

  explicit SearchState(Objective obj) : objective(obj) {}

  double ScoreOrInf(const std::string& key) const {
    const auto it = memo.find(key);
    if (it == memo.end() || !it->second.has_value()) {
      return std::numeric_limits<double>::infinity();
    }
    return *it->second;
  }

  void Record(const TuningConfig& config,
              const StatusOr<TuningMeasurement>& measured) {
    const std::string key = config.CanonicalKey();
    TuningTrajectoryPoint point;
    point.config_key = key;
    if (measured.ok()) {
      const double score = ObjectiveScore(objective, *measured);
      point.ok = true;
      point.score = score;
      memo[key] = score;
      ++result.evaluated;
      // Strict improvement only: on a tie the first-evaluated config wins,
      // which is deterministic because Record runs in replay order.
      if (!have_best || score < result.best_score) {
        have_best = true;
        result.best = config;
        result.best_measurement = *measured;
        result.best_score = score;
      }
    } else {
      memo[key] = std::nullopt;
      ++result.skipped;
    }
    result.trajectory.push_back(std::move(point));
  }
};

/// Evaluates every not-yet-memoized config of `batch` (deduped, batch
/// order preserved) across the pool, recording results in replay order.
void EvaluateBatch(ThreadPool* pool, int window,
                   const std::vector<TuningConfig>& batch,
                   const TuningEvalFn& eval, SearchState* state) {
  std::vector<const TuningConfig*> todo;
  {
    std::map<std::string, bool> in_batch;
    for (const TuningConfig& config : batch) {
      const std::string key = config.CanonicalKey();
      if (state->memo.count(key) != 0 || in_batch.count(key) != 0) continue;
      in_batch[key] = true;
      todo.push_back(&config);
    }
  }
  if (todo.empty()) return;
  std::vector<std::optional<StatusOr<TuningMeasurement>>> results(todo.size());
  // Task bodies never fail the pipeline: a failed eval is a skipped
  // candidate, recorded as such during replay.
  const Status status = RunOrderedPipeline(
      pool, todo.size(), static_cast<std::size_t>(std::max(1, window)),
      [&](std::size_t i) {
        results[i] = eval(*todo[i]);
        return Status::Ok();
      },
      [&](std::size_t i) {
        state->Record(*todo[i], *results[i]);
        return Status::Ok();
      });
  MALI_CHECK_MSG(status.ok(), "tuner evaluation pipeline failed");
}

std::size_t AxisValueIndex(const TuningAxis& axis, std::int64_t value) {
  for (std::size_t i = 0; i < axis.values.size(); ++i) {
    if (axis.values[i] == value) return i;
  }
  return 0;
}

/// All single-axis ±1-step moves from `config`, validity-filtered, in a
/// deterministic order (axis order; step down before step up).
std::vector<TuningConfig> Neighbors(const TuningSpace& space,
                                    const TuningConfig& config) {
  std::vector<TuningConfig> out;
  for (std::size_t a = 0; a < space.axes.size(); ++a) {
    const TuningAxis& axis = space.axes[a];
    const std::size_t at = AxisValueIndex(axis, config.values[a].second);
    for (const int step : {-1, +1}) {
      const std::int64_t next = static_cast<std::int64_t>(at) + step;
      if (next < 0 || next >= static_cast<std::int64_t>(axis.values.size())) {
        continue;
      }
      TuningConfig neighbor = config;
      neighbor.values[a].second = axis.values[static_cast<std::size_t>(next)];
      if (space.IsValid(neighbor)) out.push_back(std::move(neighbor));
    }
  }
  return out;
}

/// A valid config drawn from `rng`, falling back to a linear scan from a
/// random offset when rejection sampling keeps missing (sparse validity).
std::optional<TuningConfig> SampleValid(const TuningSpace& space,
                                        std::uint64_t size, Xoshiro256& rng) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    TuningConfig config = space.At(rng.NextBounded(size));
    if (space.IsValid(config)) return config;
  }
  const std::uint64_t start = rng.NextBounded(size);
  for (std::uint64_t i = 0; i < size; ++i) {
    TuningConfig config = space.At((start + i) % size);
    if (space.IsValid(config)) return config;
  }
  return std::nullopt;
}

}  // namespace

StatusOr<TunerResult> Tuner::Search(const TuningSpace& space,
                                    const TuningEvalFn& eval) const {
  const std::uint64_t size = space.Size();
  if (size == 0) {
    return InvalidArgumentError("tuning space is empty");
  }

  std::optional<ThreadPool> pool;
  if (options_.threads > 1) pool.emplace(options_.threads);
  ThreadPool* pool_ptr = pool.has_value() ? &*pool : nullptr;

  SearchState state(options_.objective);
  state.result.space_size = size;

  if (size <= options_.exhaustive_limit) {
    state.result.exhaustive = true;
    std::vector<TuningConfig> all;
    all.reserve(static_cast<std::size_t>(size));
    for (std::uint64_t i = 0; i < size; ++i) {
      TuningConfig config = space.At(i);
      if (space.IsValid(config)) all.push_back(std::move(config));
    }
    EvaluateBatch(pool_ptr, options_.replay_window, all, eval, &state);
  } else {
    // Seeded hill-climb with restarts. The rng stream feeds only the
    // restart points; every other decision (neighbor order, tie-breaks,
    // memo hits) is a pure function of the space, so the trajectory is a
    // function of (seed, space, objective) alone.
    Xoshiro256 rng(options_.seed);
    for (int restart = 0; restart < std::max(1, options_.restarts);
         ++restart) {
      std::optional<TuningConfig> start = SampleValid(space, size, rng);
      if (!start.has_value()) break;  // no valid point exists
      TuningConfig current = *std::move(start);
      EvaluateBatch(pool_ptr, options_.replay_window, {current}, eval,
                    &state);
      for (int step = 0; step < std::max(1, options_.max_steps); ++step) {
        const std::vector<TuningConfig> neighbors = Neighbors(space, current);
        if (neighbors.empty()) break;
        EvaluateBatch(pool_ptr, options_.replay_window, neighbors, eval,
                      &state);
        const double current_score = state.ScoreOrInf(current.CanonicalKey());
        const TuningConfig* best_neighbor = nullptr;
        double best_neighbor_score =
            std::numeric_limits<double>::infinity();
        for (const TuningConfig& neighbor : neighbors) {
          const double score = state.ScoreOrInf(neighbor.CanonicalKey());
          // Strict < keeps the earliest neighbor on ties — deterministic
          // because the neighbor order is.
          if (score < best_neighbor_score) {
            best_neighbor_score = score;
            best_neighbor = &neighbor;
          }
        }
        if (best_neighbor == nullptr ||
            best_neighbor_score >= current_score) {
          break;  // local minimum (or an all-failed neighborhood)
        }
        current = *best_neighbor;
      }
    }
  }

  if (!state.have_best) {
    return NotFoundError(
        "tuning found no viable configuration (" +
        std::to_string(state.result.skipped) + " candidate(s) skipped)");
  }
  return std::move(state.result);
}

std::uint64_t Fnv1a64(std::string_view text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string DeviceCapsKey(const DeviceCaps& caps) {
  // throughput_hint is deliberately absent: it seeds the hetero split's
  // self-tuning but never feeds a modelled time, so it cannot change a
  // tuning winner.
  std::string out = caps.name;
  out += '|';
  out += BackendName(caps.kind);
  out += "|cu=" + std::to_string(caps.compute_units);
  out += "|wg=" + std::to_string(caps.max_work_group_size);
  out += std::string("|fp64=") + (caps.fp64 ? "1" : "0");
  out += "|clock=" + JsonNumber(caps.clock_hz);
  out += std::string("|unified=") + (caps.unified_memory ? "1" : "0");
  return out;
}

std::string TuningCacheKey(std::string_view kernel_fingerprint,
                           const DeviceCaps& caps, Objective objective,
                           const TuningSpace& space) {
  std::string text(kernel_fingerprint);
  text += '\n';
  text += DeviceCapsKey(caps);
  text += '\n';
  text += ObjectiveName(objective);
  text += '\n';
  text += space.Signature();
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(Fnv1a64(text)));
  return std::string(buf);
}

bool TuningCache::Lookup(const std::string& key,
                         TuningCacheEntry* out) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  *out = it->second;
  return true;
}

void TuningCache::Insert(const std::string& key, TuningCacheEntry entry) {
  entries_[key] = std::move(entry);
}

std::string TuningCache::Serialize() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema");
  w.String("malisim-tune-cache-v1");
  w.Key("entries");
  w.BeginObject();
  for (const auto& [key, entry] : entries_) {  // std::map: sorted, stable
    w.Key(key);
    w.BeginObject();
    w.Key("config");
    w.String(entry.config_key);
    w.Key("objective");
    w.String(entry.objective);
    w.Key("score");
    w.Number(entry.score);
    w.Key("seconds");
    w.Number(entry.seconds);
    w.Key("energy_j");
    w.Number(entry.energy_j);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.str() + "\n";
}

StatusOr<TuningCache> TuningCache::Deserialize(std::string_view text) {
  StatusOr<JsonValue> root = ParseJson(text);
  if (!root.ok()) return root.status();
  if (!root->is_object()) {
    return InvalidArgumentError("tuning cache: root is not an object");
  }
  if (root->StringOr("schema", "") != "malisim-tune-cache-v1") {
    return InvalidArgumentError("tuning cache: unknown schema '" +
                                root->StringOr("schema", "<missing>") + "'");
  }
  const JsonValue* entries = root->Find("entries");
  if (entries == nullptr || !entries->is_object()) {
    return InvalidArgumentError("tuning cache: missing entries object");
  }
  TuningCache cache;
  for (const auto& [key, value] : entries->members) {
    if (!value.is_object()) {
      return InvalidArgumentError("tuning cache: entry '" + key +
                                  "' is not an object");
    }
    const JsonValue* config = value.Find("config");
    const JsonValue* objective = value.Find("objective");
    if (config == nullptr || !config->is_string() || objective == nullptr ||
        !objective->is_string()) {
      return InvalidArgumentError("tuning cache: entry '" + key +
                                  "' lacks config/objective strings");
    }
    TuningCacheEntry entry;
    entry.config_key = config->string_value;
    entry.objective = objective->string_value;
    entry.score = value.NumberOr("score", 0.0);
    entry.seconds = value.NumberOr("seconds", 0.0);
    entry.energy_j = value.NumberOr("energy_j", 0.0);
    cache.entries_[key] = std::move(entry);
  }
  return cache;
}

TuningCache TuningCache::LoadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    // First run: no cache yet. Not a warning — the save after the search
    // creates it.
    return TuningCache();
  }
  std::ostringstream text;
  text << in.rdbuf();
  StatusOr<TuningCache> cache = Deserialize(text.str());
  if (!cache.ok()) {
    MALI_LOG_WARN("ignoring corrupt tuning cache %s: %s", path.c_str(),
                  cache.status().ToString().c_str());
    return TuningCache();
  }
  return *std::move(cache);
}

namespace {

/// Best-effort inter-process writer lock: a `path`.lock file created with
/// O_CREAT|O_EXCL. Returns true when the lock was acquired (caller must
/// unlink it). A lock file older than kStaleLockSec is presumed abandoned
/// by a crashed writer and stolen. Never blocks indefinitely: after the
/// retry budget the caller proceeds without the lock — the temp+rename
/// protocol keeps the file uncorrupted either way, the lock only narrows
/// the window where two writers race on last-writer-wins.
constexpr double kStaleLockSec = 60.0;

bool AcquireCacheLock(const std::string& lock_path) {
#ifdef _WIN32
  (void)lock_path;
  return false;
#else
  for (int attempt = 0; attempt < 200; ++attempt) {
    const int fd =
        ::open(lock_path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd >= 0) {
      ::close(fd);
      return true;
    }
    if (errno != EEXIST) return false;  // unwritable dir: skip locking
    struct stat st {};
    if (::stat(lock_path.c_str(), &st) == 0) {
      const auto now = std::chrono::system_clock::now();
      const double age_sec =
          std::chrono::duration<double>(
              now.time_since_epoch())
              .count() -
          static_cast<double>(st.st_mtime);
      if (age_sec > kStaleLockSec) {
        MALI_LOG_WARN("stealing stale tuning-cache lock %s (age %.0fs)",
                      lock_path.c_str(), age_sec);
        ::unlink(lock_path.c_str());
        continue;  // retry the O_EXCL create
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
#endif
}

void ReleaseCacheLock(const std::string& lock_path) {
#ifndef _WIN32
  ::unlink(lock_path.c_str());
#endif
}

}  // namespace

Status TuningCache::SaveFile(const std::string& path) const {
  const std::string lock_path = path + ".lock";
  const bool locked = AcquireCacheLock(lock_path);
  if (!locked) {
    MALI_LOG_WARN(
        "writing tuning cache %s without the writer lock (held or "
        "unavailable); replace is still atomic",
        path.c_str());
  }

  // Merge-on-save: keep on-disk winners for keys this process never
  // touched, so concurrent writers with disjoint workloads lose nothing.
  TuningCache merged = LoadFileOrEmpty(path);
  for (const auto& [key, entry] : entries_) {
    merged.entries_[key] = entry;
  }

  // Temp file in the same directory so rename(2) stays within one
  // filesystem and is atomic.
#ifndef _WIN32
  const std::string tmp_path =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
#else
  const std::string tmp_path = path + ".tmp";
#endif
  Status result = Status::Ok();
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      result = InternalError("cannot open tuning cache temp '" + tmp_path +
                             "' for writing");
    } else {
      out << merged.Serialize();
      out.flush();
      if (!out) {
        result = InternalError("short write to tuning cache temp '" +
                               tmp_path + "'");
      }
    }
  }
  if (result.ok() && std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    result = InternalError("cannot rename '" + tmp_path + "' over '" + path +
                           "'");
  }
  if (!result.ok()) std::remove(tmp_path.c_str());
  if (locked) ReleaseCacheLock(lock_path);
  return result;
}

StatusOr<TuningConfig> ConfigFromKey(const TuningSpace& space,
                                     std::string_view config_key) {
  // Start from every axis at its first value so axes the key omits (an
  // older space revision) keep a defined, in-space assignment.
  TuningConfig config;
  for (const TuningAxis& axis : space.axes) {
    if (axis.values.empty()) {
      return InvalidArgumentError("axis '" + axis.name + "' is empty");
    }
    config.values.emplace_back(axis.name, axis.values.front());
  }
  std::string_view rest = config_key;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view pair =
        comma == std::string_view::npos ? rest : rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view()
                                           : rest.substr(comma + 1);
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      return InvalidArgumentError("malformed config key token '" +
                                  std::string(pair) + "'");
    }
    const std::string_view name = pair.substr(0, eq);
    const std::string_view digits = pair.substr(eq + 1);
    std::int64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(digits.data(), digits.data() + digits.size(), value);
    if (ec != std::errc() || ptr != digits.data() + digits.size()) {
      return InvalidArgumentError("malformed config value in '" +
                                  std::string(pair) + "'");
    }
    bool found = false;
    for (std::size_t a = 0; a < space.axes.size(); ++a) {
      if (space.axes[a].name != name) continue;
      if (std::find(space.axes[a].values.begin(), space.axes[a].values.end(),
                    value) == space.axes[a].values.end()) {
        return InvalidArgumentError("config value " + std::string(pair) +
                                    " is outside the tuning space");
      }
      config.values[a].second = value;
      found = true;
      break;
    }
    if (!found) {
      return InvalidArgumentError("config axis '" + std::string(name) +
                                  "' is not in the tuning space");
    }
  }
  if (!space.IsValid(config)) {
    return InvalidArgumentError("cached config '" + std::string(config_key) +
                                "' violates the space constraint");
  }
  return config;
}

}  // namespace malisim::sim
