#include "sim/cache.h"

#include <bit>

namespace malisim::sim {

CacheModel::CacheModel(const CacheConfig& config) : config_(config) {
  MALI_CHECK_MSG(config.line_bytes > 0 && std::has_single_bit(config.line_bytes),
                 "cache line size must be a power of two");
  MALI_CHECK_MSG(config.associativity > 0, "associativity must be positive");
  const std::uint64_t sets = config.num_sets();
  MALI_CHECK_MSG(sets > 0 && std::has_single_bit(sets),
                 "cache set count must be a positive power of two");
  set_mask_ = sets - 1;
  line_shift_ = static_cast<std::uint32_t>(std::countr_zero(config.line_bytes));
  lines_.resize(sets * config.associativity);
}

CacheAccessResult CacheModel::Access(std::uint64_t addr, std::uint32_t size,
                                     bool is_write) {
  CacheAccessResult result;
  if (size == 0) return result;
  const std::uint64_t first_line = addr >> line_shift_;
  const std::uint64_t last_line = (addr + size - 1) >> line_shift_;
  for (std::uint64_t line = first_line; line <= last_line; ++line) {
    ++result.lines_touched;
    ++stats_.accesses;
    std::uint32_t writebacks = 0;
    if (ProbeLine(line, is_write, &writebacks)) {
      ++stats_.hits;
    } else {
      ++result.misses;
      ++stats_.misses;
    }
    result.writebacks += writebacks;
    stats_.writebacks += writebacks;
  }
  return result;
}

bool CacheModel::ProbeLine(std::uint64_t line_addr, bool is_write,
                           std::uint32_t* writebacks) {
  const std::uint64_t set = line_addr & set_mask_;
  const std::uint64_t tag = line_addr >> std::countr_zero(set_mask_ + 1);
  Line* set_lines = &lines_[set * config_.associativity];

  // Hit path.
  for (std::uint32_t w = 0; w < config_.associativity; ++w) {
    Line& line = set_lines[w];
    if (line.valid && line.tag == tag) {
      line.lru_stamp = next_stamp_++;
      line.dirty = line.dirty || is_write;
      return true;
    }
  }

  // Miss. Non-allocating writes bypass the cache entirely.
  if (is_write && !config_.write_allocate) return false;

  // Choose victim: an invalid way if present, otherwise LRU.
  Line* victim = &set_lines[0];
  for (std::uint32_t w = 0; w < config_.associativity; ++w) {
    Line& line = set_lines[w];
    if (!line.valid) {
      victim = &line;
      break;
    }
    if (line.lru_stamp < victim->lru_stamp) victim = &line;
  }
  if (victim->valid && victim->dirty) ++*writebacks;
  victim->valid = true;
  victim->tag = tag;
  victim->dirty = is_write;
  victim->lru_stamp = next_stamp_++;
  return false;
}

void CacheModel::Flush() {
  for (Line& line : lines_) {
    if (line.valid && line.dirty) ++stats_.writebacks;
    line = Line{};
  }
  next_stamp_ = 1;
}

}  // namespace malisim::sim
