// Composable memory hierarchy: optional per-core L1s in front of a shared L2,
// plus bookkeeping of the L2 miss stream (line counts and sequentiality) that
// the DRAM model converts into transfer time.
//
// Instances:
//   Cortex-A15: 2 cores x 32 KB L1-D  ->  1 MB shared L2  -> DRAM
//   Mali-T604:  4 cores x 16 KB L1    ->  1 MB shared L2 (SCU-coherent) -> DRAM
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/cache.h"
#include "sim/dram.h"

namespace malisim::sim {

struct HierarchyConfig {
  bool has_l1 = true;
  std::uint32_t num_cores = 1;
  CacheConfig l1;
  CacheConfig l2;
};

/// Classification of one access as it percolates down the hierarchy.
struct AccessOutcome {
  std::uint32_t lines_touched = 0;
  std::uint32_t l1_misses = 0;
  std::uint32_t l2_misses = 0;
};

class MemoryHierarchy {
 public:
  explicit MemoryHierarchy(const HierarchyConfig& config);

  /// Runs [addr, addr+size) through core `core`'s L1 (if any) and the shared
  /// L2. Only L1 misses probe the L2, mirroring an inclusive hierarchy.
  AccessOutcome Access(std::uint32_t core, std::uint64_t addr,
                       std::uint32_t size, bool is_write);

  /// Lines fetched from DRAM (L2 read misses) since the last reset.
  std::uint64_t dram_fill_lines() const { return fill_lines_; }
  /// Dirty lines written back to DRAM since the last reset.
  std::uint64_t dram_writeback_lines() const { return writeback_lines_; }
  /// Fraction of DRAM fills that were line-sequential with the previous
  /// fill from the same core (row-buffer locality proxy), in [0, 1].
  double sequential_fraction() const;

  /// Total bytes moved to/from DRAM.
  std::uint64_t dram_bytes() const {
    return (fill_lines_ + writeback_lines_) * l2_.config().line_bytes;
  }

  const CacheModel& l2() const { return l2_; }
  const CacheModel& l1(std::uint32_t core) const;

  /// Invalidate all levels and reset miss-stream statistics.
  void Flush();
  void ResetStats();

 private:
  HierarchyConfig config_;
  std::vector<CacheModel> l1s_;
  CacheModel l2_;

  std::uint64_t fill_lines_ = 0;
  std::uint64_t writeback_lines_ = 0;
  std::uint64_t sequential_fills_ = 0;
  /// Per-core history of recent fill lines: a fill is "sequential" when it
  /// extends any of the last kStreamHistory fills from the same core. This
  /// recognizes the multi-stream access patterns (a[i], b[i], c[i], ...)
  /// that hardware prefetchers and DRAM row buffers track in parallel.
  static constexpr int kStreamHistory = 8;
  std::vector<std::uint64_t> fill_history_;  // num_cores * kStreamHistory
  std::vector<int> fill_history_pos_;        // per core, next slot to replace
};

}  // namespace malisim::sim
