// Cortex-A15 device model: executes KIR programs on 1..2 modelled cores and
// produces modelled time, utilization and DRAM traffic.
//
// The paper's Serial version corresponds to Run(..., num_threads=1) and the
// OpenMP version to num_threads=2: work-groups are distributed in contiguous
// blocks (OpenMP schedule(static)) and a fork/join overhead is charged per
// parallel region.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/sim_options.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "cpu/a15_params.h"
#include "kir/exec_types.h"
#include "kir/interp.h"
#include "kir/program.h"
#include "power/profile.h"
#include "sim/device.h"
#include "sim/memory_system.h"

namespace malisim::obs {
class Recorder;
}  // namespace malisim::obs

namespace malisim::cpu {

struct CpuRunResult {
  /// Modelled wall time of the parallel region.
  double seconds = 0.0;
  /// Activity profile for the power model (covers `seconds`).
  power::ActivityProfile profile;
  /// Functional execution counts aggregated over all cores.
  kir::WorkGroupRun run;
  /// Detailed breakdown (cycles per class, miss counts, ...).
  StatRegistry stats;
};

class CortexA15Device : public sim::Device {
 public:
  explicit CortexA15Device(const A15TimingParams& timing = A15TimingParams(),
                           const A15MemoryConfig& memory = A15MemoryConfig());

  /// Executes the config's active group sub-range (the full NDRange by
  /// default) on `num_threads` cores (1 or 2 on the Exynos 5250) and models
  /// the elapsed time. Caches stay warm across calls; use FlushCaches() to
  /// model a cold start.
  StatusOr<CpuRunResult> Run(const kir::Program& program,
                             const kir::LaunchConfig& config,
                             kir::Bindings bindings, int num_threads);

  // --- sim::Device ------------------------------------------------------
  const sim::DeviceCaps& caps() const override { return caps_; }
  /// The uniform backend entry point: runs `kernel.source` on all modelled
  /// A15 cores (the OpenMP configuration). `kernel.compiled` is ignored —
  /// the CPU path interprets KIR directly.
  StatusOr<sim::DeviceRunResult> RunKernel(
      const sim::KernelHandle& kernel, const kir::LaunchConfig& config,
      kir::Bindings bindings) override;
  void FlushCaches() override { hierarchy_.Flush(); }

  /// Host-side execution options; see MaliT604Device::set_sim_options for
  /// the determinism contract. `num_threads` above selects the *modelled*
  /// A15 core count; SimOptions::threads selects host workers and never
  /// changes modelled results.
  void set_sim_options(const SimOptions& options) override {
    options_ = options;
  }
  const SimOptions& sim_options() const { return options_; }

  /// Attaches an observability recorder (nullptr detaches); see
  /// MaliT604Device::set_recorder for the read-only contract.
  void set_recorder(obs::Recorder* recorder) override {
    recorder_ = recorder;
  }

  /// Execution-scope tag stamped onto emitted KernelRecords (see
  /// sim::Device::set_record_scope).
  void set_record_scope(std::string_view scope) override {
    record_scope_ = std::string(scope);
  }

  static constexpr int kMaxCores = power::kNumA15Cores;

 private:
  /// Functional results for one modelled core, produced by the execution
  /// phase (serial or parallel) and consumed by the timing phase.
  struct CoreAggregate {
    kir::WorkGroupRun run;
    std::uint64_t l1_misses = 0;
    std::uint64_t l2_misses = 0;
    std::uint64_t groups = 0;
    /// Per-opcode dynamic counts; only filled while a recorder is attached.
    std::array<std::uint64_t, kir::kNumOpcodeValues> opcode_tally{};
  };

  /// Record/replay execution across `host_threads` pool workers. `bytecode`
  /// is the shared VM compilation when `engine` is kBytecode (null under
  /// the interpreter).
  Status RunGroupsParallel(
      const kir::Program& program, const kir::LaunchConfig& config,
      const kir::Bindings& bindings, std::uint64_t local_bytes,
      int num_threads, int host_threads, KirExec engine,
      std::shared_ptr<const kir::vm::CompiledProgram> bytecode,
      std::vector<CoreAggregate>* agg);

  A15TimingParams timing_;
  sim::DeviceCaps caps_;
  sim::MemoryHierarchy hierarchy_;
  sim::DramModel dram_;
  SimOptions options_;
  obs::Recorder* recorder_ = nullptr;
  std::string record_scope_;
  std::unique_ptr<ThreadPool> pool_;
  // Scratch backing for kernels with __local arrays (one region per core).
  std::vector<std::unique_ptr<std::byte[]>> scratch_;
  std::uint64_t scratch_bytes_ = 0;
};

}  // namespace malisim::cpu
