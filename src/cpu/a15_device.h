// Cortex-A15 device model: executes KIR programs on 1..2 modelled cores and
// produces modelled time, utilization and DRAM traffic.
//
// The paper's Serial version corresponds to Run(..., num_threads=1) and the
// OpenMP version to num_threads=2: work-groups are distributed in contiguous
// blocks (OpenMP schedule(static)) and a fork/join overhead is charged per
// parallel region.
#pragma once

#include <cstdint>
#include <memory>

#include "common/stats.h"
#include "cpu/a15_params.h"
#include "kir/exec_types.h"
#include "kir/interp.h"
#include "kir/program.h"
#include "power/profile.h"
#include "sim/memory_system.h"

namespace malisim::cpu {

struct CpuRunResult {
  /// Modelled wall time of the parallel region.
  double seconds = 0.0;
  /// Activity profile for the power model (covers `seconds`).
  power::ActivityProfile profile;
  /// Functional execution counts aggregated over all cores.
  kir::WorkGroupRun run;
  /// Detailed breakdown (cycles per class, miss counts, ...).
  StatRegistry stats;
};

class CortexA15Device {
 public:
  explicit CortexA15Device(const A15TimingParams& timing = A15TimingParams(),
                           const A15MemoryConfig& memory = A15MemoryConfig());

  /// Executes the NDRange on `num_threads` cores (1 or 2 on the Exynos 5250)
  /// and models the elapsed time. Caches stay warm across calls; use
  /// FlushCaches() to model a cold start.
  StatusOr<CpuRunResult> Run(const kir::Program& program,
                             const kir::LaunchConfig& config,
                             kir::Bindings bindings, int num_threads);

  void FlushCaches() { hierarchy_.Flush(); }

  static constexpr int kMaxCores = power::kNumA15Cores;

 private:
  A15TimingParams timing_;
  sim::MemoryHierarchy hierarchy_;
  sim::DramModel dram_;
  // Scratch backing for kernels with __local arrays (one region per core).
  std::vector<std::unique_ptr<std::byte[]>> scratch_;
  std::uint64_t scratch_bytes_ = 0;
};

}  // namespace malisim::cpu
