#include "cpu/a15_device.h"

#include <algorithm>
#include <cmath>

#include "common/aligned_buffer.h"
#include "kir/vm/bytecode.h"
#include "obs/recorder.h"

namespace malisim::cpu {
namespace {

/// Simulated address range reserved for per-core __local scratch. Real
/// hardware has no CPU-side local memory; this simply keeps scratch
/// addresses disjoint from buffer addresses in the unified address space.
constexpr std::uint64_t kScratchSimBase = 0x7f00'0000'0000ULL;
constexpr std::uint64_t kScratchStride = 16ULL << 20;  // 16 MiB per core

/// Memory sink binding one core's accesses to the shared hierarchy.
class CoreSink final : public kir::MemorySink {
 public:
  CoreSink(sim::MemoryHierarchy* hierarchy, std::uint32_t core)
      : hierarchy_(hierarchy), core_(core) {}

  void OnAccess(std::uint64_t addr, std::uint32_t bytes, bool is_write) override {
    const sim::AccessOutcome out = hierarchy_->Access(core_, addr, bytes, is_write);
    l1_misses += out.l1_misses;
    l2_misses += out.l2_misses;
  }

  std::uint64_t l1_misses = 0;
  std::uint64_t l2_misses = 0;

 private:
  sim::MemoryHierarchy* hierarchy_;
  std::uint32_t core_;
};

double ClassCycles(const A15TimingParams& t, const kir::OpHistogram& ops) {
  // Compensated sum for the same reason as the Mali model's CountSlots.
  KahanSum cycles;
  ops.ForEach([&](kir::OpClass c, kir::ScalarType st, std::uint8_t lanes,
                  std::uint64_t n) {
    // Scalar pipeline: vector-typed ops decompose into `lanes` scalar ops
    // (no usable FP SIMD — paper §IV-B).
    const double scalar_ops = static_cast<double>(n) * lanes;
    switch (c) {
      case kir::OpClass::kArithSimple:
      case kir::OpClass::kBroadcast:  // a plain register copy on the CPU
        cycles += scalar_ops * t.cycles_arith;
        break;
      case kir::OpClass::kArithMul:
        cycles += scalar_ops * t.cycles_mul;
        break;
      case kir::OpClass::kArithSpecial:
        if (st == kir::ScalarType::kF64) {
          cycles += scalar_ops * t.cycles_special_f64;
        } else if (st == kir::ScalarType::kF32) {
          cycles += scalar_ops * t.cycles_special_f32;
        } else {
          cycles += scalar_ops * t.cycles_special_int;
        }
        break;
      case kir::OpClass::kLoad:
        // A vector load is one instruction but `lanes` elements; the LSU
        // moves up to one 64-bit chunk per cycle.
        cycles += static_cast<double>(n) *
                  std::max(1.0, lanes * kir::ScalarBytes(st) / 8.0) *
                  t.cycles_load;
        break;
      case kir::OpClass::kStore:
        cycles += static_cast<double>(n) *
                  std::max(1.0, lanes * kir::ScalarBytes(st) / 8.0) *
                  t.cycles_store;
        break;
      case kir::OpClass::kAtomic:
        cycles += static_cast<double>(n) * t.cycles_atomic;
        break;
      case kir::OpClass::kControl:
        cycles += static_cast<double>(n) * t.cycles_control;
        break;
      case kir::OpClass::kBarrier:
        cycles += static_cast<double>(n) * 40.0;  // pthread-style sync
        break;
      case kir::OpClass::kNumClasses:
        break;
    }
  });
  return cycles.value();
}

}  // namespace

CortexA15Device::CortexA15Device(const A15TimingParams& timing,
                                 const A15MemoryConfig& memory)
    : timing_(timing),
      hierarchy_(sim::HierarchyConfig{/*has_l1=*/true,
                                      /*num_cores=*/kMaxCores, memory.l1,
                                      memory.l2}),
      dram_(memory.dram) {
  caps_.name = "Cortex-A15 MP2 (modelled)";
  caps_.kind = sim::BackendKind::kA15;
  caps_.compute_units = kMaxCores;
  caps_.max_work_group_size = 256;
  caps_.fp64 = true;
  caps_.clock_hz = timing_.clock_hz;
  caps_.unified_memory = true;  // Exynos 5250: one DRAM for CPU and GPU
  caps_.throughput_hint =
      timing_.clock_hz * static_cast<double>(kMaxCores);
}

StatusOr<sim::DeviceRunResult> CortexA15Device::RunKernel(
    const sim::KernelHandle& kernel, const kir::LaunchConfig& config,
    kir::Bindings bindings) {
  if (kernel.source == nullptr) {
    return InvalidArgumentError(
        "cortex-a15: RunKernel needs the kernel's KIR program");
  }
  StatusOr<CpuRunResult> run =
      Run(*kernel.source, config, std::move(bindings), kMaxCores);
  if (!run.ok()) return run.status();
  return sim::DeviceRunResult{run->seconds, run->profile,
                              std::move(run->run), std::move(run->stats)};
}

StatusOr<CpuRunResult> CortexA15Device::Run(const kir::Program& program,
                                            const kir::LaunchConfig& config,
                                            kir::Bindings bindings,
                                            int num_threads) {
  if (num_threads < 1 || num_threads > kMaxCores) {
    return InvalidArgumentError("A15 device supports 1.." +
                                std::to_string(kMaxCores) + " threads");
  }
  hierarchy_.ResetStats();
  dram_.ResetStats();

  // Size per-core __local scratch if the kernel declares local arrays.
  std::uint64_t local_bytes = 0;
  for (const kir::LocalArrayDecl& local : program.locals) {
    local_bytes += static_cast<std::uint64_t>(local.elems) *
                   kir::ScalarBytes(local.elem);
  }
  if (local_bytes > scratch_bytes_ || scratch_.empty()) {
    scratch_.clear();
    for (int c = 0; c < kMaxCores; ++c) {
      scratch_.push_back(std::make_unique<std::byte[]>(local_bytes + 64));
    }
    scratch_bytes_ = local_bytes;
  }

  const std::uint64_t active_groups = config.active_groups();
  const auto group_dims = config.num_groups();

  CpuRunResult result;
  double max_core_sec = 0.0;
  double busy_cycles_total[kMaxCores] = {};
  double core_sec[kMaxCores] = {};
  std::vector<CoreAggregate> agg(static_cast<std::size_t>(num_threads));

  // Phase 1 — functional execution + cache simulation per modelled core.
  // As on the Mali device, host-time attribution samples the interpreter
  // only on the serial engine path; the execute span covers both paths.
  obs::HostProf* host_prof =
      recorder_ != nullptr ? recorder_->host_prof() : nullptr;
  obs::InterpProfile interp_prof(host_prof, program, num_threads);
  const int host_threads = options_.ResolvedThreads();
  const KirExec engine = options_.kir_exec;
  // The CPU path has no build step, so the VM compile happens per Run; it
  // is a few microseconds against milliseconds of execution.
  std::shared_ptr<const kir::vm::CompiledProgram> bytecode;
  if (engine == KirExec::kBytecode) {
    obs::HostProf::PhaseSpan vm_span(host_prof, obs::HostPhase::kVmCompile);
    StatusOr<std::shared_ptr<const kir::vm::CompiledProgram>> compiled =
        kir::vm::CompileProgram(program);
    if (!compiled.ok()) return compiled.status();
    bytecode = *std::move(compiled);
  }
  {
    obs::HostProf::PhaseSpan execute_span(host_prof,
                                          obs::HostPhase::kExecute);
    if (host_threads <= 1) {
      // Spans are per-thread; only the serial path may nest vm/exec here.
      obs::HostProf::PhaseSpan vm_exec_span(
          engine == KirExec::kBytecode ? host_prof : nullptr,
          obs::HostPhase::kVmExec);
      for (int t = 0; t < num_threads; ++t) {
        // Contiguous block of the active group sub-range, row-major order
        // (OpenMP static schedule).
        const std::uint64_t begin =
            config.group_begin + active_groups * t / num_threads;
        const std::uint64_t end =
            config.group_begin + active_groups * (t + 1) / num_threads;

        kir::Bindings core_bindings = bindings;
        core_bindings.local_scratch = {
            scratch_[t].get(), kScratchSimBase + t * kScratchStride,
            local_bytes + 64};

        StatusOr<kir::Executor> executor = kir::Executor::Create(
            &program, config, std::move(core_bindings), engine, bytecode);
        if (!executor.ok()) return executor.status();
        if (recorder_ != nullptr && recorder_->counters_enabled()) {
          executor->set_opcode_tally(agg[t].opcode_tally.data());
        }
        executor->set_host_time(interp_prof.sink(t));

        CoreSink sink(&hierarchy_, static_cast<std::uint32_t>(t));
        for (std::uint64_t g = begin; g < end; ++g) {
          const std::uint64_t gx = g % group_dims[0];
          const std::uint64_t gy = (g / group_dims[0]) % group_dims[1];
          const std::uint64_t gz = g / (group_dims[0] * group_dims[1]);
          MALI_RETURN_IF_ERROR(
              executor->RunGroup({gx, gy, gz}, &sink, &agg[t].run));
        }
        agg[t].groups = end - begin;
        agg[t].l1_misses = sink.l1_misses;
        agg[t].l2_misses = sink.l2_misses;
      }
    } else {
      MALI_RETURN_IF_ERROR(RunGroupsParallel(program, config, bindings,
                                             local_bytes, num_threads,
                                             host_threads, engine, bytecode,
                                             &agg));
    }
  }
  interp_prof.Merge(program.name);

  // Phase 2 — timing model over the per-core aggregates.
  obs::HostProf::PhaseSpan merge_span(host_prof, obs::HostPhase::kMerge);
  const bool recording = recorder_ != nullptr && recorder_->counters_enabled();
  std::vector<obs::CoreKernelCounters> core_counters(
      recording ? static_cast<std::size_t>(num_threads) : 0);
  for (int t = 0; t < num_threads; ++t) {
    const kir::WorkGroupRun& core_run = agg[t].run;
    const std::uint64_t core_l1_misses = agg[t].l1_misses;
    const std::uint64_t core_l2_misses = agg[t].l2_misses;

    const double issue_cycles = ClassCycles(timing_, core_run.ops);
    const double l2_hit_stall =
        static_cast<double>(core_l1_misses - core_l2_misses) *
        timing_.l2_hit_cycles;
    // DRAM stall: sequential misses are mostly prefetched away; scattered
    // ones overlap only up to the core's miss-level parallelism.
    const double seqf = hierarchy_.sequential_fraction();
    const double exposed_latency_per_miss =
        timing_.dram_latency_sec *
        (seqf * (1.0 - timing_.prefetch_seq_hiding) +
         (1.0 - seqf) / timing_.scattered_mlp);
    const double dram_stall_sec =
        static_cast<double>(core_l2_misses) * exposed_latency_per_miss;

    const double cycles = issue_cycles + l2_hit_stall;
    // A single A15 cannot pull more than per_core_stream_bw from DRAM
    // (limited outstanding misses / prefetch depth).
    const double core_dram_bytes = static_cast<double>(core_l2_misses) *
                                   hierarchy_.l2().config().line_bytes;
    const double core_bw_floor_sec =
        core_dram_bytes / timing_.per_core_stream_bw;
    core_sec[t] = std::max(cycles / timing_.clock_hz + dram_stall_sec,
                           core_bw_floor_sec);
    busy_cycles_total[t] = issue_cycles;
    max_core_sec = std::max(max_core_sec, core_sec[t]);

    if (recording) {
      obs::CoreKernelCounters& cc = core_counters[static_cast<std::size_t>(t)];
      cc.groups = agg[t].groups;
      cc.l1_misses = core_l1_misses;
      cc.l2_misses = core_l2_misses;
      // Scalar in-order issue: everything lands in the arith pipe slot.
      cc.arith_cycles = issue_cycles;
      cc.stall_sec = l2_hit_stall / timing_.clock_hz + dram_stall_sec;
      cc.busy_sec = issue_cycles / timing_.clock_hz;
      cc.core_sec = core_sec[t];
      cc.imbalance = core_run.imbalance_factor();
    }

    result.run.MergeFrom(core_run);
    result.stats.Increment("cpu.core" + std::to_string(t) + ".issue_cycles",
                           issue_cycles);
    result.stats.Increment("cpu.core" + std::to_string(t) + ".l1_misses",
                           static_cast<double>(core_l1_misses));
    result.stats.Increment("cpu.core" + std::to_string(t) + ".l2_misses",
                           static_cast<double>(core_l2_misses));
  }

  // DRAM bandwidth floor across all cores' traffic.
  const double dram_sec = dram_.TransferTime(hierarchy_.dram_fill_lines(),
                                             hierarchy_.dram_writeback_lines(),
                                             hierarchy_.sequential_fraction());
  double seconds = std::max(max_core_sec, dram_sec);
  if (num_threads > 1) {
    seconds = seconds / timing_.omp_parallel_efficiency +
              timing_.omp_region_overhead_sec;
  }
  if (seconds <= 0.0) seconds = 1.0 / timing_.clock_hz;

  result.seconds = seconds;
  result.profile.seconds = seconds;
  for (int t = 0; t < num_threads; ++t) {
    result.profile.cpu_busy[t] =
        std::clamp(busy_cycles_total[t] / timing_.clock_hz / seconds, 0.0, 1.0);
  }
  result.profile.gpu_on = false;
  result.profile.dram_bytes = hierarchy_.dram_bytes();

  result.stats.Set("cpu.seconds", seconds);
  result.stats.Set("cpu.dram_bytes",
                   static_cast<double>(hierarchy_.dram_bytes()));
  result.stats.Set("cpu.dram_bw_floor_sec", dram_sec);
  result.stats.Set("cpu.seq_fraction", hierarchy_.sequential_fraction());

  if (recording) {
    obs::KernelRecord record;
    record.kernel = program.name;
    record.device = "cortex-a15";
    record.scope = record_scope_;
    record.seconds = seconds;
    record.cores = std::move(core_counters);
    for (const CoreAggregate& a : agg) {
      for (std::size_t op = 0; op < record.opcode_counts.size(); ++op) {
        record.opcode_counts[op] += a.opcode_tally[op];
      }
    }
    record.ops = result.run.ops;
    record.loads = result.run.loads;
    record.stores = result.run.stores;
    record.load_bytes = result.run.load_bytes;
    record.store_bytes = result.run.store_bytes;
    record.atomics = result.run.atomics;
    record.barriers_crossed = result.run.barriers_crossed;
    record.work_items = result.run.work_items;
    record.dram_bytes = hierarchy_.dram_bytes();
    record.dram_bw_floor_sec = dram_sec;
    if (dram_sec >= max_core_sec) {
      record.bottleneck = "dram-bandwidth";
    } else {
      double worst = 0.0;
      bool stall_bound = false;
      for (const obs::CoreKernelCounters& cc : record.cores) {
        if (cc.core_sec > worst) {
          worst = cc.core_sec;
          stall_bound = cc.stall_sec > cc.busy_sec;
        }
      }
      record.bottleneck = stall_bound ? "memory-latency" : "cpu-issue";
    }
    record.profile = result.profile;
    recorder_->AddKernel(std::move(record));
  }
  return result;
}

Status CortexA15Device::RunGroupsParallel(
    const kir::Program& program, const kir::LaunchConfig& config,
    const kir::Bindings& bindings, std::uint64_t local_bytes, int num_threads,
    int host_threads, KirExec engine,
    std::shared_ptr<const kir::vm::CompiledProgram> bytecode,
    std::vector<CoreAggregate>* agg) {
  const std::uint64_t active_groups = config.active_groups();
  const auto group_dims = config.num_groups();

  // One task = (modelled core, contiguous sub-block of its static-schedule
  // block). Tasks are ordered core-major, sub-blocks ascending, so replay
  // in task order reproduces the serial engine's cache access order.
  struct GroupTask {
    int core = 0;
    std::uint64_t begin = 0;  // absolute row-major group indices
    std::uint64_t end = 0;
  };
  const std::uint64_t chunks_per_core = std::max<std::uint64_t>(
      1, (4 * static_cast<std::uint64_t>(host_threads) +
          static_cast<std::uint64_t>(num_threads) - 1) /
             static_cast<std::uint64_t>(num_threads));
  std::vector<GroupTask> tasks;
  for (int t = 0; t < num_threads; ++t) {
    const std::uint64_t begin =
        config.group_begin + active_groups * t / num_threads;
    const std::uint64_t end =
        config.group_begin + active_groups * (t + 1) / num_threads;
    const std::uint64_t block = end - begin;
    const std::uint64_t chunks = std::min<std::uint64_t>(
        chunks_per_core, std::max<std::uint64_t>(block, 1));
    for (std::uint64_t k = 0; k < chunks; ++k) {
      tasks.push_back(
          {t, begin + block * k / chunks, begin + block * (k + 1) / chunks});
    }
  }

  if (pool_ == nullptr || pool_->num_workers() != host_threads) {
    pool_ = std::make_unique<ThreadPool>(host_threads);
  }

  std::vector<std::vector<kir::MemEvent>> task_events(tasks.size());
  std::vector<kir::WorkGroupRun> task_runs(tasks.size());
  std::vector<std::vector<std::byte>> task_scratch(tasks.size());
  // Per-task opcode tallies; merged per modelled core during replay.
  const bool recording = recorder_ != nullptr && recorder_->counters_enabled();
  std::vector<std::array<std::uint64_t, kir::kNumOpcodeValues>> task_tallies(
      recording ? tasks.size() : 0);

  auto run_task = [&](std::size_t i) -> Status {
    const GroupTask& task = tasks[i];
    kir::Bindings task_bindings = bindings;
    // Private zeroed __local backing at the modelled core's scratch address.
    task_scratch[i].assign(local_bytes + 64, std::byte{0});
    task_bindings.local_scratch = {task_scratch[i].data(),
                                   kScratchSimBase + task.core * kScratchStride,
                                   local_bytes + 64};
    StatusOr<kir::Executor> executor = kir::Executor::Create(
        &program, config, std::move(task_bindings), engine, bytecode);
    if (!executor.ok()) return executor.status();
    if (recording) executor->set_opcode_tally(task_tallies[i].data());

    kir::RecordingMemorySink sink(&task_events[i]);
    for (std::uint64_t g = task.begin; g < task.end; ++g) {
      const std::uint64_t gx = g % group_dims[0];
      const std::uint64_t gy = (g / group_dims[0]) % group_dims[1];
      const std::uint64_t gz = g / (group_dims[0] * group_dims[1]);
      MALI_RETURN_IF_ERROR(executor->RunGroup({gx, gy, gz}, &sink, &task_runs[i]));
    }
    return Status::Ok();
  };

  auto replay_task = [&](std::size_t i) -> Status {
    const GroupTask& task = tasks[i];
    CoreAggregate& a = (*agg)[static_cast<std::size_t>(task.core)];
    const auto core = static_cast<std::uint32_t>(task.core);
    for (const kir::MemEvent& e : task_events[i]) {
      if (e.kind == kir::MemEvent::kAtomic) {
        const sim::AccessOutcome rd =
            hierarchy_.Access(core, e.addr, e.bytes, /*is_write=*/false);
        const sim::AccessOutcome wr =
            hierarchy_.Access(core, e.addr, e.bytes, /*is_write=*/true);
        a.l1_misses += rd.l1_misses + wr.l1_misses;
        a.l2_misses += rd.l2_misses + wr.l2_misses;
      } else {
        const sim::AccessOutcome out = hierarchy_.Access(
            core, e.addr, e.bytes, e.kind == kir::MemEvent::kWrite);
        a.l1_misses += out.l1_misses;
        a.l2_misses += out.l2_misses;
      }
    }
    a.run.MergeFrom(task_runs[i]);
    a.groups += task.end - task.begin;
    if (recording) {
      for (std::size_t op = 0; op < a.opcode_tally.size(); ++op) {
        a.opcode_tally[op] += task_tallies[i][op];
      }
    }
    // Release buffered state as the replay cursor passes.
    task_events[i] = {};
    task_scratch[i] = {};
    return Status::Ok();
  };

  return RunOrderedPipeline(pool_.get(), tasks.size(),
                            static_cast<std::size_t>(options_.ResolvedWindow()),
                            run_task, replay_task);
}

}  // namespace malisim::cpu
