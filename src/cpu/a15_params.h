// Timing parameters of the Cortex-A15 core model (Exynos 5250: dual A15 @
// 1.7 GHz, 32 KB L1-D per core, 1 MB shared L2, DDR3L-1600).
//
// The model is throughput-based: each executed KIR operation charges its
// class's reciprocal-throughput cycles; cache misses add stall cycles on
// top, with a hardware-prefetcher term that hides most of the latency of
// line-sequential miss streams (the A15's L2 prefetcher is effective on
// streaming code, which is why a single A15 gets respectable STREAM numbers
// and why the paper's memory-bound benchmarks don't collapse on the CPU).
//
// Values are representative of A15 r2 instruction tables (scalar VFP: no
// FP SIMD is used — paper §IV-B: the Serial/OpenMP codes are not vectorized
// because the A15 lacks a double-precision NEON unit and GCC did not
// auto-vectorize) and were calibrated jointly with the Mali parameters
// against the paper's Fig. 2 ratios; see EXPERIMENTS.md.
#pragma once

#include "sim/cache.h"
#include "sim/dram.h"

namespace malisim::cpu {

struct A15TimingParams {
  double clock_hz = 1.7e9;

  // Reciprocal throughput in cycles per scalar operation. Vector-typed KIR
  // ops (which the CPU-side kernels do not normally use) cost lanes x this.
  double cycles_arith = 0.55;        // ~2-wide sustained simple-ALU issue
  double cycles_mul = 1.3;           // fp mul / mla pipeline (hazards)
  double cycles_special_f32 = 22.0;  // vdiv.f32/vsqrt.f32 & libm kernels
  double cycles_special_f64 = 34.0;  // vdiv.f64/vsqrt.f64 & libm kernels
  double cycles_special_int = 9.0;   // sdiv via iterative divider
  double cycles_load = 1.15;         // L1 hit (AGU + bank conflicts)
  double cycles_store = 1.0;
  double cycles_control = 0.7;       // loop/branch bookkeeping per op
  double cycles_atomic = 18.0;       // ldrex/strex + DMB round trip

  // Memory system stalls.
  double l2_hit_cycles = 14.0;       // L1 miss, L2 hit
  double dram_latency_sec = 90e-9;   // L2 miss to first word
  /// Fraction of DRAM latency hidden for perfectly line-sequential miss
  /// streams (hardware prefetcher + non-blocking loads).
  double prefetch_seq_hiding = 0.88;
  /// Outstanding-miss parallelism for scattered misses.
  double scattered_mlp = 2.2;
  /// Streaming bandwidth a single A15 sustains (limited MLP / prefetch
  /// depth). The Exynos 5250 memory path is weak: measured STREAM numbers
  /// on the chip are ~2.5 GB/s single-core, well below the DDR3L peak —
  /// this cap, together with the shared-controller efficiency below, is
  /// what makes the paper's memory-bound OpenMP results sublinear
  /// (vecop: 1.2x on two cores).
  double per_core_stream_bw = 2.6e9;

  // OpenMP runtime costs (GCC libgomp on 2 cores).
  double omp_region_overhead_sec = 15e-6;
  /// Parallel efficiency of the 2-core run beyond the bandwidth effects:
  /// per-iteration fork/join barriers and static-schedule imbalance (the
  /// paper's OpenMP speedups top out at 1.9x even for compute-bound codes).
  double omp_parallel_efficiency = 0.95;
};

/// Cache/DRAM geometry of the CPU side of the SoC. The DRAM efficiencies
/// reflect the CPU cluster's view of the weak 5250 memory controller
/// (~3.2 GB/s streaming for the pair), not the raw DDR3L-1600 peak.
struct A15MemoryConfig {
  sim::CacheConfig l1{/*size_bytes=*/32 * 1024, /*line_bytes=*/64,
                      /*associativity=*/2, /*write_allocate=*/true};
  sim::CacheConfig l2{/*size_bytes=*/1024 * 1024, /*line_bytes=*/64,
                      /*associativity=*/16, /*write_allocate=*/true};
  sim::DramConfig dram{/*peak_bandwidth_bytes_per_sec=*/12.8e9,
                       /*streaming_efficiency=*/0.375,
                       /*scattered_efficiency=*/0.15,
                       /*first_word_latency_sec=*/90e-9,
                       /*line_bytes=*/64};
};

}  // namespace malisim::cpu
