#include "power/power_meter.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"
#include "fault/injector.h"

namespace malisim::power {

PowerMeter::PowerMeter(const PowerMeterParams& params, std::uint64_t seed)
    : params_(params), rng_(seed) {
  MALI_CHECK(params.sampling_hz > 0);
  MALI_CHECK(params.relative_accuracy >= 0);
}

PowerMeter::Measurement PowerMeter::Measure(double true_watts, double seconds) {
  MALI_CHECK(seconds >= 0);
  const std::size_t n = std::max<std::size_t>(
      1, static_cast<std::size_t>(seconds * params_.sampling_hz));
  RunningStat stat;
  std::size_t dropped = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (fault_injector_ != nullptr && fault_injector_->DropMeterSample()) {
      // Dropped reading: the meter missed the tick entirely, so the
      // accuracy-noise RNG does not advance either.
      ++dropped;
      continue;
    }
    const double noise =
        rng_.NextGaussian() * params_.relative_accuracy * true_watts;
    stat.Add(true_watts + noise);
  }
  Measurement m;
  m.mean_watts = stat.mean();
  m.stddev_watts = stat.stddev();
  m.samples = n - dropped;
  m.dropped = dropped;
  m.duration_sec = seconds;
  m.energy_joules = m.mean_watts * seconds;
  return m;
}

}  // namespace malisim::power
