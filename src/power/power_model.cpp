#include "power/power_model.h"

#include <algorithm>

#include "common/status.h"

namespace malisim::power {

PowerModel::PowerModel(const PowerParams& params) : params_(params) {
  MALI_CHECK(params.board_static_w >= 0);
  MALI_CHECK(params.a15_core_active_w >= params.a15_core_idle_w);
  MALI_CHECK(params.mali_core_active_w >= params.mali_core_idle_w);
}

double PowerModel::Scale(double util, double floor) const {
  const double u = std::clamp(util, 0.0, 1.0);
  if (u == 0.0) return 0.0;  // fully idle: no dynamic power at all
  const double knee = std::max(params_.stall_floor_knee, 1e-9);
  const double effective_floor = floor * std::min(u / knee, 1.0);
  return effective_floor + (1.0 - effective_floor) * u;
}

double PowerModel::CpuPower(const ActivityProfile& profile) const {
  double watts = 0.0;
  for (double busy : profile.cpu_busy) {
    watts += params_.a15_core_idle_w;
    watts += (params_.a15_core_active_w - params_.a15_core_idle_w) *
             Scale(busy, params_.a15_stall_floor);
  }
  return watts;
}

double PowerModel::GpuPower(const ActivityProfile& profile) const {
  if (!profile.gpu_on) return 0.0;
  double watts = params_.mali_shared_w;
  for (double busy : profile.gpu_core_busy) {
    watts += params_.mali_core_idle_w;
    watts += (params_.mali_core_active_w - params_.mali_core_idle_w) *
             Scale(busy, params_.mali_stall_floor);
  }
  return watts;
}

double PowerModel::DramPower(const ActivityProfile& profile) const {
  if (profile.seconds <= 0.0) return 0.0;
  const double bytes_per_sec =
      static_cast<double>(profile.dram_bytes) / profile.seconds;
  return params_.dram_energy_per_byte * bytes_per_sec;
}

double PowerModel::AveragePower(const ActivityProfile& profile) const {
  return params_.board_static_w + CpuPower(profile) + GpuPower(profile) +
         DramPower(profile);
}

double PowerModel::Energy(const ActivityProfile& profile) const {
  return AveragePower(profile) * profile.seconds;
}

}  // namespace malisim::power
