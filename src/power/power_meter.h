// Virtual Yokogawa WT230 power meter (paper §IV-D: 10 Hz sampling, 0.1 %
// accuracy). Samples a piecewise-constant power trace, adding per-sample
// gaussian accuracy noise, and reports mean and standard deviation — the
// statistics the paper derives from 20 repetitions of each benchmark.
#pragma once

#include <cstdint>
#include <vector>

#include "common/prng.h"
#include "common/stats.h"

namespace malisim::power {

struct PowerMeterParams {
  double sampling_hz = 10.0;
  /// 1-sigma relative accuracy (WT230: 0.1 % of reading).
  double relative_accuracy = 0.001;
};

class PowerMeter {
 public:
  explicit PowerMeter(const PowerMeterParams& params = PowerMeterParams(),
                      std::uint64_t seed = 0x59a4c0);

  struct Measurement {
    double mean_watts = 0.0;
    double stddev_watts = 0.0;
    std::size_t samples = 0;
    double duration_sec = 0.0;
    double energy_joules = 0.0;  // mean * duration
  };

  /// Measures an interval of duration `seconds` at constant `true_watts`.
  /// At least one sample is taken even for very short intervals (the real
  /// methodology stretches the run so the meter gets enough samples; the
  /// harness does the same by scaling iteration counts).
  Measurement Measure(double true_watts, double seconds);

 private:
  PowerMeterParams params_;
  Xoshiro256 rng_;
};

}  // namespace malisim::power
