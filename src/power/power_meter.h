// Virtual Yokogawa WT230 power meter (paper §IV-D: 10 Hz sampling, 0.1 %
// accuracy). Samples a piecewise-constant power trace, adding per-sample
// gaussian accuracy noise, and reports mean and standard deviation — the
// statistics the paper derives from 20 repetitions of each benchmark.
#pragma once

#include <cstdint>
#include <vector>

#include "common/prng.h"
#include "common/stats.h"

namespace malisim::fault {
class FaultInjector;
}  // namespace malisim::fault

namespace malisim::power {

struct PowerMeterParams {
  double sampling_hz = 10.0;
  /// 1-sigma relative accuracy (WT230: 0.1 % of reading).
  double relative_accuracy = 0.001;
};

class PowerMeter {
 public:
  explicit PowerMeter(const PowerMeterParams& params = PowerMeterParams(),
                      std::uint64_t seed = 0x59a4c0);

  struct Measurement {
    double mean_watts = 0.0;
    double stddev_watts = 0.0;
    std::size_t samples = 0;   // samples actually captured
    std::size_t dropped = 0;   // samples lost to injected dropouts
    double duration_sec = 0.0;
    double energy_joules = 0.0;  // mean * duration
  };

  /// Attaches a fault injector (nullptr detaches) for modelled WT230
  /// sample dropouts (a flaky GPIB/serial link). The dropout decisions use
  /// the injector's own stream — the meter's accuracy-noise RNG never
  /// advances for a dropped sample, so a zero dropout rate is
  /// bit-identical to no injector at all.
  void set_fault_injector(fault::FaultInjector* injector) {
    fault_injector_ = injector;
  }

  /// Measures an interval of duration `seconds` at constant `true_watts`.
  /// At least one sample is scheduled even for very short intervals (the
  /// real methodology stretches the run so the meter gets enough samples;
  /// the harness does the same by scaling iteration counts). Injected
  /// dropouts may still leave `samples == 0` — a failed repetition the
  /// harness skips and records.
  Measurement Measure(double true_watts, double seconds);

 private:
  PowerMeterParams params_;
  Xoshiro256 rng_;
  fault::FaultInjector* fault_injector_ = nullptr;
};

}  // namespace malisim::power
