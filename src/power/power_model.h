// Component power model of the Arndale board (Samsung Exynos 5250).
//
// Board power = static rail + per-A15-core power + GPU block power + DRAM
// dynamic power. Per-core dynamic power scales with utilization through an
// "active-but-stalled" floor: an out-of-order A15 that is stalled on memory
// still burns a large fraction of its active power, while the fine-grained
// multithreaded Mali clock-gates stalled pipes far more aggressively. These
// two floors are what reproduce the paper's Fig. 3 observation that
// memory-bound OpenCL runs (spmv/vecop/hist) draw *less* board power than
// the Serial CPU runs, while compute-bound ones draw up to ~22% more.
//
// Constants are calibrated against the figure *ratios* reported in the
// paper (OpenMP avg +31% over Serial, OpenCL avg +7%, per-benchmark spread)
// — see EXPERIMENTS.md; absolute watts are representative of an Arndale
// board (3-6 W) but are not measurements.
#pragma once

#include "power/profile.h"

namespace malisim::power {

struct PowerParams {
  // Static board consumption: regulators, peripherals, DRAM background.
  double board_static_w = 2.10;

  // Cortex-A15 @ 1.7 GHz.
  double a15_core_active_w = 1.30;   // fully-issuing core
  double a15_core_idle_w = 0.10;     // WFI / clock-gated
  double a15_stall_floor = 0.65;     // fraction of active power burnt when
                                     // busy-but-stalled (OoO window, clocks)

  // Mali-T604 @ 533 MHz.
  double mali_core_active_w = 0.50;  // one fully-utilized shader core
  double mali_core_idle_w = 0.02;    // powered but idle core
  double mali_shared_w = 0.10;       // job manager + MMU + L2 when GPU on
  double mali_stall_floor = 0.05;    // stalled pipes clock-gate aggressively

  /// Utilizations below the knee scale the stall floor in proportionally:
  /// a core that is 2% busy (the host polling clFinish) must not be charged
  /// the busy-but-stalled floor of a core that is continuously stalled.
  double stall_floor_knee = 0.15;

  // DRAM dynamic energy per byte moved (~0.15 W per GB/s of traffic).
  double dram_energy_per_byte = 0.15e-9;
};

class PowerModel {
 public:
  explicit PowerModel(const PowerParams& params = PowerParams());

  /// Average board power (watts) over the profiled interval.
  double AveragePower(const ActivityProfile& profile) const;

  /// Energy (joules) of the interval: AveragePower * seconds.
  double Energy(const ActivityProfile& profile) const;

  /// Individual components, for reporting / tests.
  double CpuPower(const ActivityProfile& profile) const;
  double GpuPower(const ActivityProfile& profile) const;
  double DramPower(const ActivityProfile& profile) const;

  const PowerParams& params() const { return params_; }

 private:
  /// Utilization -> dynamic scale with a stall floor: a core that is "on"
  /// for the run draws floor + (1-floor)*util of its active delta; below
  /// the knee the floor fades out linearly.
  double Scale(double util, double floor) const;

  PowerParams params_;
};

}  // namespace malisim::power
