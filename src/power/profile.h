// Activity profile: what the SoC was doing during a modelled interval.
// Produced by the device models, consumed by the power model. All "busy"
// values are time-average utilizations in [0, 1] over the interval.
#pragma once

#include <array>
#include <cstdint>

namespace malisim::power {

inline constexpr int kNumA15Cores = 2;   // Exynos 5250: dual Cortex-A15
inline constexpr int kNumMaliCores = 4;  // quad-core Mali-T604

struct ActivityProfile {
  double seconds = 0.0;
  /// Issue-slot utilization per A15 core (0 = power-gated idle).
  std::array<double, kNumA15Cores> cpu_busy = {0.0, 0.0};
  /// Whether the GPU block is powered at all during the interval.
  bool gpu_on = false;
  /// Pipe utilization per Mali shader core.
  std::array<double, kNumMaliCores> gpu_core_busy = {0.0, 0.0, 0.0, 0.0};
  /// Total DRAM traffic in the interval (drives DRAM dynamic power).
  std::uint64_t dram_bytes = 0;
};

}  // namespace malisim::power
