// Types shared between the KIR interpreter and the device timing models:
// launch geometry, argument bindings, the per-class operation histogram that
// drives pipe-occupancy costing, and the memory sink through which the
// interpreter streams simulated addresses into the cache models.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "kir/opcode.h"
#include "kir/types.h"

namespace malisim::kir {

/// OpenCL NDRange geometry. Unused dimensions must be 1.
struct LaunchConfig {
  std::uint32_t work_dim = 1;
  std::array<std::uint64_t, 3> global_size = {1, 1, 1};
  std::array<std::uint64_t, 3> local_size = {1, 1, 1};
  /// Work-group sub-range [group_begin, group_range_end()) over the
  /// row-major linearized group index, for co-execution backends that
  /// split one NDRange across devices. group_end == 0 means "through the
  /// last group". The kernel-visible geometry — global sizes, GlobalSize,
  /// GlobalId — is unchanged; the range only selects which groups this
  /// device executes, so kernels that chunk work by the global size stay
  /// functionally identical under a split.
  std::uint64_t group_begin = 0;
  std::uint64_t group_end = 0;

  std::uint64_t total_work_items() const {
    return global_size[0] * global_size[1] * global_size[2];
  }
  std::uint64_t work_group_size() const {
    return local_size[0] * local_size[1] * local_size[2];
  }
  std::array<std::uint64_t, 3> num_groups() const {
    return {global_size[0] / local_size[0], global_size[1] / local_size[1],
            global_size[2] / local_size[2]};
  }
  std::uint64_t total_groups() const {
    const auto g = num_groups();
    return g[0] * g[1] * g[2];
  }
  /// One past the last group this device executes.
  std::uint64_t group_range_end() const {
    return group_end == 0 ? total_groups() : group_end;
  }
  /// Groups in the active sub-range (== total_groups() by default).
  std::uint64_t active_groups() const {
    return group_range_end() - group_begin;
  }
  /// Work-items in the active sub-range, for occupancy modelling.
  std::uint64_t active_work_items() const {
    return active_groups() * work_group_size();
  }
  /// True when every global size is a positive multiple of its local size
  /// and the group sub-range is non-empty and within the grid.
  bool IsValid() const;
};

/// A buffer argument binding: real host storage plus the address the access
/// carries in the simulated (unified) address space.
struct BufferBinding {
  std::byte* host = nullptr;
  std::uint64_t sim_addr = 0;
  std::uint64_t size_bytes = 0;
};

/// A scalar argument value.
struct ScalarValue {
  ScalarType type = ScalarType::kI32;
  double f = 0.0;
  std::int64_t i = 0;

  static ScalarValue I32V(std::int32_t v);
  static ScalarValue I64V(std::int64_t v);
  static ScalarValue F32V(float v);
  static ScalarValue F64V(double v);
};

inline ScalarValue ScalarValue::I32V(std::int32_t v) {
  return {ScalarType::kI32, 0.0, v};
}
inline ScalarValue ScalarValue::I64V(std::int64_t v) {
  return {ScalarType::kI64, 0.0, v};
}
inline ScalarValue ScalarValue::F32V(float v) {
  return {ScalarType::kF32, static_cast<double>(v), 0};
}
inline ScalarValue ScalarValue::F64V(double v) {
  return {ScalarType::kF64, v, 0};
}

/// All bindings for one launch. `local_scratch` backs the program's __local
/// arrays for the work-group currently executing; the device model points it
/// at a per-core arena (on the Mali, local memory *is* global memory —
/// paper §III-B "Memory Spaces" — so the scratch has a simulated address and
/// goes through the caches like any other access).
struct Bindings {
  std::vector<BufferBinding> buffers;   // one per buffer arg, in decl order
  std::vector<ScalarValue> scalars;     // one per scalar arg, in decl order
  BufferBinding local_scratch;          // sized >= sum of local array bytes
};

/// Histogram of executed operations, indexed (OpClass, ScalarType, lanes).
/// The device models convert entries into pipe slots: e.g. on the Mali a
/// f32x4 multiply is one 128-bit arithmetic-pipe slot while four scalar f32
/// multiplies are four slots — the vectorization payoff of §III-B.
class OpHistogram {
 public:
  static constexpr int kSize =
      kNumOpClasses * kNumScalarTypes * kNumLaneClasses;

  static constexpr int Index(OpClass c, ScalarType t, int lane_idx) {
    return (static_cast<int>(c) * kNumScalarTypes + static_cast<int>(t)) *
               kNumLaneClasses +
           lane_idx;
  }

  void AddAt(int index, std::uint64_t n = 1) { counts_[index] += n; }
  void SubAt(int index, std::uint64_t n = 1) { counts_[index] -= n; }
  void Add(OpClass c, ScalarType t, std::uint8_t lanes, std::uint64_t n = 1) {
    AddAt(Index(c, t, LaneIndex(lanes)), n);
  }

  std::uint64_t Get(OpClass c, ScalarType t, std::uint8_t lanes) const {
    return counts_[Index(c, t, LaneIndex(lanes))];
  }

  /// Sum of instruction counts in a class, over all types and widths.
  std::uint64_t TotalClass(OpClass c) const;
  /// Sum over everything.
  std::uint64_t Total() const;
  /// Lane-ops in a class (each vecN instruction counts N).
  std::uint64_t TotalLaneOps(OpClass c) const;

  void MergeFrom(const OpHistogram& other);
  void Clear() { counts_.fill(0); }

  /// Visit non-zero entries.
  template <typename Fn>  // Fn(OpClass, ScalarType, lanes, count)
  void ForEach(Fn&& fn) const {
    static constexpr std::uint8_t kLanesForIndex[kNumLaneClasses] = {1, 2, 4, 8, 16};
    for (int c = 0; c < kNumOpClasses; ++c) {
      for (int t = 0; t < kNumScalarTypes; ++t) {
        for (int l = 0; l < kNumLaneClasses; ++l) {
          const std::uint64_t n =
              counts_[(c * kNumScalarTypes + t) * kNumLaneClasses + l];
          if (n != 0) {
            fn(static_cast<OpClass>(c), static_cast<ScalarType>(t),
               kLanesForIndex[l], n);
          }
        }
      }
    }
  }

 private:
  std::array<std::uint64_t, kSize> counts_{};
};

/// Aggregated result of executing one work-group (or many, when merged).
struct WorkGroupRun {
  OpHistogram ops;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t load_bytes = 0;
  std::uint64_t store_bytes = 0;
  std::uint64_t atomics = 0;
  std::uint64_t barriers_crossed = 0;  // per work-group, not per item
  std::uint64_t work_items = 0;
  /// Load-imbalance bookkeeping (paper §IV-A: spmv "is useful as metric to
  /// measure performance in cases of load imbalance"): a work-group retires
  /// only when its heaviest work-item finishes, so the effective issue work
  /// is max-per-item x group size rather than the sum.
  std::uint64_t item_weight_sum = 0;    // total instructions over all items
  std::uint64_t weighted_group_cost = 0;  // sum over groups: max_item * items

  /// >= 1; ratio by which intra-group imbalance inflates issue time.
  double imbalance_factor() const {
    if (item_weight_sum == 0) return 1.0;
    return static_cast<double>(weighted_group_cost) /
           static_cast<double>(item_weight_sum);
  }

  void MergeFrom(const WorkGroupRun& other);
};

/// Receives every simulated memory access, in program order per work-item.
/// Device models implement this on top of their cache hierarchies.
class MemorySink {
 public:
  virtual ~MemorySink() = default;
  virtual void OnAccess(std::uint64_t addr, std::uint32_t bytes, bool is_write) = 0;
  /// Atomics are read-modify-write; default forwards as read + write.
  virtual void OnAtomic(std::uint64_t addr, std::uint32_t bytes) {
    OnAccess(addr, bytes, false);
    OnAccess(addr, bytes, true);
  }
  /// True when every event is ignored (NullMemorySink): executors may then
  /// elide the per-access virtual dispatch entirely. The modelled counters
  /// in WorkGroupRun are accumulated by the executor, never the sink, so
  /// eliding changes nothing observable.
  virtual bool discards_events() const { return false; }
};

/// Sink that drops everything (pure functional runs in tests).
class NullMemorySink final : public MemorySink {
 public:
  void OnAccess(std::uint64_t, std::uint32_t, bool) override {}
  bool discards_events() const override { return true; }
};

/// One buffered memory access, as recorded by the parallel engine's
/// functional phase and replayed into the cache models in canonical order.
/// Atomics are kept as a single event so replay can reproduce the device
/// models' contention accounting, not just the read+write pair.
struct MemEvent {
  enum Kind : std::uint8_t { kRead = 0, kWrite = 1, kAtomic = 2 };
  std::uint64_t addr = 0;
  std::uint32_t bytes = 0;
  std::uint8_t kind = kRead;
};

/// Sink that appends every access to an event buffer instead of probing a
/// cache model. This is the functional half of the parallel engine's
/// functional/timing split: work-groups execute concurrently against
/// recording sinks, and the order-dependent cache hierarchy consumes the
/// buffered streams serially afterwards.
class RecordingMemorySink final : public MemorySink {
 public:
  explicit RecordingMemorySink(std::vector<MemEvent>* events)
      : events_(events) {}

  void OnAccess(std::uint64_t addr, std::uint32_t bytes, bool is_write) override {
    events_->push_back(
        {addr, bytes, is_write ? MemEvent::kWrite : MemEvent::kRead});
  }
  void OnAtomic(std::uint64_t addr, std::uint32_t bytes) override {
    events_->push_back({addr, bytes, MemEvent::kAtomic});
  }

 private:
  std::vector<MemEvent>* events_;
};

}  // namespace malisim::kir
