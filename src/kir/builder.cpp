#include "kir/builder.h"

#include <utility>

namespace malisim::kir {

KernelBuilder::KernelBuilder(std::string name) {
  program_.name = std::move(name);
}

BufferRef KernelBuilder::ArgBuffer(const std::string& name, ScalarType elem,
                                   ArgKind kind, bool is_restrict,
                                   bool is_const) {
  MALI_CHECK_MSG(!built_, "builder already consumed");
  MALI_CHECK_MSG(kind != ArgKind::kScalar, "use ArgScalar for scalars");
  const std::uint8_t slot =
      static_cast<std::uint8_t>(program_.num_buffer_args());
  MALI_CHECK_MSG(program_.locals.empty(),
                 "declare all buffer args before local arrays");
  program_.args.push_back({name, kind, elem, is_restrict, is_const});
  return BufferRef{this, slot, elem};
}

Val KernelBuilder::ArgScalar(const std::string& name, ScalarType type) {
  MALI_CHECK_MSG(!built_, "builder already consumed");
  program_.args.push_back({name, ArgKind::kScalar, type, false, false});
  const RegId reg = NewReg(Type(type, 1), name);
  Instr& in = Emit(Opcode::kArg);
  in.dst = reg;
  in.type = Type(type, 1);
  in.imm = num_scalar_args_++;
  return Val(this, reg, Type(type, 1));
}

BufferRef KernelBuilder::LocalArray(const std::string& name, ScalarType elem,
                                    std::uint32_t elems) {
  MALI_CHECK_MSG(!built_, "builder already consumed");
  const std::uint8_t slot = static_cast<std::uint8_t>(
      program_.num_buffer_args() + program_.locals.size());
  program_.locals.push_back({name, elem, elems});
  return BufferRef{this, slot, elem};
}

Val KernelBuilder::ConstI(Type type, std::int64_t value) {
  const RegId reg = NewReg(type);
  Instr& in = Emit(Opcode::kConstI);
  in.dst = reg;
  in.type = type;
  in.imm = value;
  return Val(this, reg, type);
}

Val KernelBuilder::ConstF(Type type, double value) {
  MALI_CHECK_MSG(IsFloat(type.scalar), "ConstF needs a float type");
  const RegId reg = NewReg(type);
  Instr& in = Emit(Opcode::kConstF);
  in.dst = reg;
  in.type = type;
  in.fimm = value;
  return Val(this, reg, type);
}

Val KernelBuilder::Builtin(Opcode op, int dim) {
  MALI_CHECK(dim >= 0 && dim < 3);
  const RegId reg = NewReg(I32());
  Instr& in = Emit(op);
  in.dst = reg;
  in.type = I32();
  in.imm = dim;
  return Val(this, reg, I32());
}

Val KernelBuilder::GlobalId(int dim) { return Builtin(Opcode::kGlobalId, dim); }
Val KernelBuilder::LocalId(int dim) { return Builtin(Opcode::kLocalId, dim); }
Val KernelBuilder::GroupId(int dim) { return Builtin(Opcode::kGroupId, dim); }
Val KernelBuilder::GlobalSize(int dim) { return Builtin(Opcode::kGlobalSize, dim); }
Val KernelBuilder::LocalSize(int dim) { return Builtin(Opcode::kLocalSize, dim); }
Val KernelBuilder::NumGroups(int dim) { return Builtin(Opcode::kNumGroups, dim); }

Val KernelBuilder::Var(Type type, const std::string& name) {
  const RegId reg = NewReg(type, name);
  return Val(this, reg, type);
}

void KernelBuilder::Assign(Val var, Val value) {
  CheckOwned(var);
  CheckOwned(value);
  MALI_CHECK_MSG(var.type() == value.type(), "Assign type mismatch");
  Instr& in = Emit(Opcode::kMov);
  in.dst = var.reg();
  in.type = var.type();
  in.a = value.reg();
}

Val KernelBuilder::Binary(Opcode op, Val a, Val b) {
  CheckOwned(a);
  CheckOwned(b);
  MALI_CHECK_MSG(a.type() == b.type(), "binary op type mismatch");
  const RegId reg = NewReg(a.type());
  Instr& in = Emit(op);
  in.dst = reg;
  in.type = a.type();
  in.a = a.reg();
  in.b = b.reg();
  return Val(this, reg, a.type());
}

Val KernelBuilder::Unary(Opcode op, Val a) {
  CheckOwned(a);
  const RegId reg = NewReg(a.type());
  Instr& in = Emit(op);
  in.dst = reg;
  in.type = a.type();
  in.a = a.reg();
  return Val(this, reg, a.type());
}

Val KernelBuilder::Fma(Val a, Val b, Val c) {
  CheckOwned(a);
  MALI_CHECK_MSG(a.type() == b.type() && a.type() == c.type(),
                 "fma type mismatch");
  const RegId reg = NewReg(a.type());
  Instr& in = Emit(Opcode::kFma);
  in.dst = reg;
  in.type = a.type();
  in.a = a.reg();
  in.b = b.reg();
  in.c = c.reg();
  return Val(this, reg, a.type());
}

Val KernelBuilder::Shl(Val a, int amount) {
  CheckOwned(a);
  const RegId reg = NewReg(a.type());
  Instr& in = Emit(Opcode::kShl);
  in.dst = reg;
  in.type = a.type();
  in.a = a.reg();
  in.imm = amount;
  return Val(this, reg, a.type());
}

Val KernelBuilder::Shr(Val a, int amount) {
  CheckOwned(a);
  const RegId reg = NewReg(a.type());
  Instr& in = Emit(Opcode::kShr);
  in.dst = reg;
  in.type = a.type();
  in.a = a.reg();
  in.imm = amount;
  return Val(this, reg, a.type());
}

Val KernelBuilder::Splat(Val scalar, std::uint8_t lanes) {
  CheckOwned(scalar);
  MALI_CHECK(IsValidLanes(lanes));
  const Type type(scalar.type().scalar, lanes);
  const RegId reg = NewReg(type);
  Instr& in = Emit(Opcode::kSplat);
  in.dst = reg;
  in.type = type;
  in.a = scalar.reg();
  return Val(this, reg, type);
}

Val KernelBuilder::Extract(Val vec, int lane) {
  CheckOwned(vec);
  const Type type(vec.type().scalar, 1);
  const RegId reg = NewReg(type);
  Instr& in = Emit(Opcode::kExtract);
  in.dst = reg;
  in.type = type;
  in.a = vec.reg();
  in.imm = lane;
  return Val(this, reg, type);
}

Val KernelBuilder::Insert(Val vec, int lane, Val scalar) {
  CheckOwned(vec);
  CheckOwned(scalar);
  const RegId reg = NewReg(vec.type());
  Instr& in = Emit(Opcode::kInsert);
  in.dst = reg;
  in.type = vec.type();
  in.a = vec.reg();
  in.b = scalar.reg();
  in.imm = lane;
  return Val(this, reg, vec.type());
}

Val KernelBuilder::VSum(Val vec) {
  CheckOwned(vec);
  const Type type(vec.type().scalar, 1);
  const RegId reg = NewReg(type);
  Instr& in = Emit(Opcode::kVSum);
  in.dst = reg;
  in.type = type;
  in.a = vec.reg();
  return Val(this, reg, type);
}

Val KernelBuilder::Slide(Val a, Val b, int amount) {
  CheckOwned(a);
  CheckOwned(b);
  MALI_CHECK_MSG(a.type() == b.type(), "slide type mismatch");
  const RegId reg = NewReg(a.type());
  Instr& in = Emit(Opcode::kSlide);
  in.dst = reg;
  in.type = a.type();
  in.a = a.reg();
  in.b = b.reg();
  in.imm = amount;
  return Val(this, reg, a.type());
}

Val KernelBuilder::Convert(Val v, ScalarType to) {
  CheckOwned(v);
  const Type type(to, v.type().lanes);
  const RegId reg = NewReg(type);
  Instr& in = Emit(Opcode::kConvert);
  in.dst = reg;
  in.type = type;
  in.a = v.reg();
  return Val(this, reg, type);
}

Val KernelBuilder::Compare(Opcode op, Val a, Val b) {
  CheckOwned(a);
  CheckOwned(b);
  MALI_CHECK_MSG(a.type() == b.type(), "compare type mismatch");
  const Type type = I32(a.type().lanes);
  const RegId reg = NewReg(type);
  Instr& in = Emit(op);
  in.dst = reg;
  in.type = type;
  in.a = a.reg();
  in.b = b.reg();
  return Val(this, reg, type);
}

Val KernelBuilder::Select(Val cond, Val if_true, Val if_false) {
  CheckOwned(cond);
  MALI_CHECK_MSG(if_true.type() == if_false.type(), "select type mismatch");
  const RegId reg = NewReg(if_true.type());
  Instr& in = Emit(Opcode::kSelect);
  in.dst = reg;
  in.type = if_true.type();
  in.a = cond.reg();
  in.b = if_true.reg();
  in.c = if_false.reg();
  return Val(this, reg, if_true.type());
}

Val KernelBuilder::Load(BufferRef buf, Val index, std::int64_t offset,
                        std::uint8_t lanes) {
  MALI_CHECK_MSG(buf.kb == this, "buffer from another builder");
  CheckOwned(index);
  const Type type(buf.elem, lanes);
  const RegId reg = NewReg(type);
  Instr& in = Emit(Opcode::kLoad);
  in.dst = reg;
  in.type = type;
  in.a = index.reg();
  in.slot = buf.slot;
  in.imm = offset;
  return Val(this, reg, type);
}

void KernelBuilder::Store(BufferRef buf, Val index, Val value,
                          std::int64_t offset) {
  MALI_CHECK_MSG(buf.kb == this, "buffer from another builder");
  CheckOwned(index);
  CheckOwned(value);
  Instr& in = Emit(Opcode::kStore);
  in.type = value.type();
  in.a = value.reg();
  in.b = index.reg();
  in.slot = buf.slot;
  in.imm = offset;
}

void KernelBuilder::AtomicAdd(BufferRef buf, Val index, Val value,
                              std::int64_t offset) {
  MALI_CHECK_MSG(buf.kb == this, "buffer from another builder");
  CheckOwned(index);
  CheckOwned(value);
  Instr& in = Emit(Opcode::kAtomicAddI32);
  in.type = I32();
  in.a = value.reg();
  in.b = index.reg();
  in.slot = buf.slot;
  in.imm = offset;
}

void KernelBuilder::Barrier() { Emit(Opcode::kBarrier); }

void KernelBuilder::For(const std::string& var_name, Val start, Val end,
                        std::int64_t step,
                        const std::function<void(Val)>& body) {
  CheckOwned(start);
  CheckOwned(end);
  const RegId var = NewReg(I32(), var_name);
  Instr& in = Emit(Opcode::kLoopBegin);
  in.dst = var;
  in.type = I32();
  in.a = start.reg();
  in.b = end.reg();
  in.imm = step;
  body(Val(this, var, I32()));
  Emit(Opcode::kLoopEnd);
}

void KernelBuilder::For(const std::string& var_name, std::int64_t start,
                        Val end, std::int64_t step,
                        const std::function<void(Val)>& body) {
  For(var_name, ConstI(I32(), start), end, step, body);
}

void KernelBuilder::ForUnrolled(const std::string& var_name, Val start,
                                Val end, std::int64_t step, int factor,
                                const std::function<void(Val)>& body) {
  MALI_CHECK_MSG(factor >= 1, "unroll factor must be >= 1");
  MALI_CHECK_MSG(step == 1, "ForUnrolled supports unit step only");
  if (factor == 1) {
    For(var_name, start, end, step, body);
    return;
  }
  // The standard hand-unrolled OpenCL pattern:
  //   main_end = end - (end - start) % factor;
  //   for (i = start; i < main_end; i += factor) { body(i) ... body(i+f-1); }
  //   for (i = main_end; i < end; ++i) body(i);          // remainder
  // (§III-B: "the overhead due to the correct handling of the last
  // iterations of the loop has to be considered").
  Val span = Binary(Opcode::kSub, end, start);
  Val rem = Binary(Opcode::kIRem, span, ConstI(I32(), factor));
  Val main_end = Binary(Opcode::kSub, end, rem);

  const RegId var = NewReg(I32(), var_name);
  Instr& in = Emit(Opcode::kLoopBegin);
  in.dst = var;
  in.type = I32();
  in.a = start.reg();
  in.b = main_end.reg();
  in.imm = factor;
  const Val iv(this, var, I32());
  for (int k = 0; k < factor; ++k) {
    Val idx = k == 0 ? iv : Binary(Opcode::kAdd, iv, ConstI(I32(), k));
    body(idx);
  }
  Emit(Opcode::kLoopEnd);

  For(var_name + "_rem", main_end, end, 1, body);
}

void KernelBuilder::If(Val cond, const std::function<void()>& then_body,
                       const std::function<void()>& else_body) {
  CheckOwned(cond);
  Instr& in = Emit(Opcode::kIfBegin);
  in.type = I32();
  in.a = cond.reg();
  then_body();
  if (else_body) {
    Emit(Opcode::kElse);
    else_body();
  }
  Emit(Opcode::kIfEnd);
}

StatusOr<Program> KernelBuilder::Build() {
  MALI_CHECK_MSG(!built_, "builder already consumed");
  built_ = true;
  MALI_RETURN_IF_ERROR(program_.Finalize());
  MALI_RETURN_IF_ERROR(Verify(program_));
  return std::move(program_);
}

RegId KernelBuilder::NewReg(Type type, const std::string& name) {
  MALI_CHECK_MSG(program_.regs.size() < 0xFFFF, "register file exhausted");
  program_.regs.push_back({type, name});
  return static_cast<RegId>(program_.regs.size() - 1);
}

Instr& KernelBuilder::Emit(Opcode op) {
  MALI_CHECK_MSG(!built_, "builder already consumed");
  program_.code.emplace_back();
  program_.code.back().op = op;
  return program_.code.back();
}

void KernelBuilder::CheckOwned(Val v) const {
  MALI_CHECK_MSG(v.valid() && v.builder() == this,
                 "value from another builder");
}

// --- operator sugar ---

namespace {

Val MaterializeConst(Val like, double c) {
  KernelBuilder* kb = like.builder();
  const Type t = like.type();
  if (IsFloat(t.scalar)) return kb->ConstF(t, c);
  return kb->ConstI(t, static_cast<std::int64_t>(c));
}

}  // namespace

Val operator+(Val a, Val b) { return a.builder()->Binary(Opcode::kAdd, a, b); }
Val operator-(Val a, Val b) { return a.builder()->Binary(Opcode::kSub, a, b); }
Val operator*(Val a, Val b) { return a.builder()->Binary(Opcode::kMul, a, b); }
Val operator/(Val a, Val b) { return a.builder()->Binary(Opcode::kDiv, a, b); }
Val operator+(Val a, double c) { return a + MaterializeConst(a, c); }
Val operator-(Val a, double c) { return a - MaterializeConst(a, c); }
Val operator*(Val a, double c) { return a * MaterializeConst(a, c); }
Val operator/(Val a, double c) { return a / MaterializeConst(a, c); }
Val operator+(double c, Val b) { return MaterializeConst(b, c) + b; }
Val operator*(double c, Val b) { return MaterializeConst(b, c) * b; }
Val operator-(double c, Val b) { return MaterializeConst(b, c) - b; }
Val operator-(Val a) { return a.builder()->Unary(Opcode::kNeg, a); }
Val operator&(Val a, Val b) { return a.builder()->Binary(Opcode::kAnd, a, b); }
Val operator|(Val a, Val b) { return a.builder()->Binary(Opcode::kOr, a, b); }
Val operator^(Val a, Val b) { return a.builder()->Binary(Opcode::kXor, a, b); }

}  // namespace malisim::kir
