// The engine-selecting kir::Executor facade and the RunProgram helpers.
//
// Out of line (and out of interp.cpp) because this is the only translation
// unit in the library that needs both engines: the facade header only
// forward-declares the bytecode types.
#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "kir/interp.h"
#include "kir/vm/vm.h"

namespace malisim::kir {

Executor::Executor() = default;
Executor::Executor(Executor&&) noexcept = default;
Executor& Executor::operator=(Executor&&) noexcept = default;
Executor::~Executor() = default;

StatusOr<Executor> Executor::Create(
    const Program* program, LaunchConfig config, Bindings bindings,
    KirExec engine, std::shared_ptr<const vm::CompiledProgram> bytecode) {
  MALI_CHECK(program != nullptr);
  Executor e;
  if (engine == KirExec::kInterp) {
    StatusOr<InterpExecutor> interp =
        InterpExecutor::Create(program, config, std::move(bindings));
    if (!interp.ok()) return interp.status();
    e.interp_ = std::make_unique<InterpExecutor>(*std::move(interp));
    return StatusOr<Executor>(std::move(e));
  }
  if (bytecode == nullptr) {
    StatusOr<std::shared_ptr<const vm::CompiledProgram>> compiled =
        vm::CompileProgram(*program);
    if (!compiled.ok()) return compiled.status();
    bytecode = *std::move(compiled);
  }
  StatusOr<vm::VmExecutor> bvm = vm::VmExecutor::Create(
      program, std::move(bytecode), config, std::move(bindings));
  if (!bvm.ok()) return bvm.status();
  e.bytecode_ = std::make_unique<vm::VmExecutor>(*std::move(bvm));
  return StatusOr<Executor>(std::move(e));
}

Status Executor::RunGroup(const std::array<std::uint64_t, 3>& group_id,
                          MemorySink* sink, WorkGroupRun* out) {
  return interp_ != nullptr ? interp_->RunGroup(group_id, sink, out)
                            : bytecode_->RunGroup(group_id, sink, out);
}

Status Executor::RunAllGroups(MemorySink* sink, WorkGroupRun* out) {
  return interp_ != nullptr ? interp_->RunAllGroups(sink, out)
                            : bytecode_->RunAllGroups(sink, out);
}

const LaunchConfig& Executor::config() const {
  return interp_ != nullptr ? interp_->config() : bytecode_->config();
}

void Executor::set_opcode_tally(std::uint64_t* tally) {
  if (interp_ != nullptr) {
    interp_->set_opcode_tally(tally);
  } else {
    bytecode_->set_opcode_tally(tally);
  }
}

void Executor::set_host_time(HostTimeSink* sink) {
  if (interp_ != nullptr) {
    interp_->set_host_time(sink);
  } else {
    bytecode_->set_host_time(sink);
  }
}

StatusOr<WorkGroupRun> RunProgram(const Program& program, LaunchConfig config,
                                  Bindings bindings, KirExec engine) {
  StatusOr<Executor> executor =
      Executor::Create(&program, config, std::move(bindings), engine);
  if (!executor.ok()) return executor.status();
  WorkGroupRun run;
  NullMemorySink sink;
  MALI_RETURN_IF_ERROR(executor->RunAllGroups(&sink, &run));
  return run;
}

StatusOr<WorkGroupRun> RunProgramParallel(const Program& program,
                                          LaunchConfig config,
                                          const Bindings& bindings,
                                          int threads, KirExec engine) {
  if (threads < 1) return InvalidArgumentError("threads must be >= 1");
  // Validate once up front so misuse fails identically to RunProgram, and
  // compile the bytecode once so every chunk shares it.
  MALI_RETURN_IF_ERROR(ValidateLaunch(program, config, bindings));
  std::shared_ptr<const vm::CompiledProgram> bytecode;
  if (engine == KirExec::kBytecode) {
    StatusOr<std::shared_ptr<const vm::CompiledProgram>> compiled =
        vm::CompileProgram(program);
    if (!compiled.ok()) return compiled.status();
    bytecode = *std::move(compiled);
  }

  const auto group_dims = config.num_groups();
  const std::uint64_t total_groups = config.total_groups();
  // Contiguous row-major chunks; each runs in a private executor. Chunk
  // boundaries never affect results: counts merge with integer addition
  // and the null sink drops the access streams.
  const std::uint64_t num_chunks =
      std::min<std::uint64_t>(total_groups,
                              static_cast<std::uint64_t>(threads) * 4);
  std::vector<WorkGroupRun> chunk_runs(num_chunks);
  std::vector<std::vector<std::byte>> chunk_scratch(num_chunks);

  ThreadPool pool(threads);
  auto run_chunk = [&](std::size_t i) -> Status {
    Bindings chunk_bindings = bindings;
    if (bindings.local_scratch.host != nullptr) {
      // Private __local backing per chunk (same simulated address), so
      // chunks never race on scratch contents.
      chunk_scratch[i].assign(bindings.local_scratch.size_bytes,
                              std::byte{0});
      chunk_bindings.local_scratch.host = chunk_scratch[i].data();
    }
    StatusOr<Executor> executor = Executor::Create(
        &program, config, std::move(chunk_bindings), engine, bytecode);
    if (!executor.ok()) return executor.status();
    NullMemorySink sink;
    const std::uint64_t begin = total_groups * i / num_chunks;
    const std::uint64_t end = total_groups * (i + 1) / num_chunks;
    for (std::uint64_t g = begin; g < end; ++g) {
      const std::uint64_t gx = g % group_dims[0];
      const std::uint64_t gy = (g / group_dims[0]) % group_dims[1];
      const std::uint64_t gz = g / (group_dims[0] * group_dims[1]);
      MALI_RETURN_IF_ERROR(
          executor->RunGroup({gx, gy, gz}, &sink, &chunk_runs[i]));
    }
    return Status::Ok();
  };

  WorkGroupRun run;
  MALI_RETURN_IF_ERROR(RunOrderedPipeline(
      &pool, num_chunks, num_chunks, run_chunk, [&](std::size_t i) {
        run.MergeFrom(chunk_runs[i]);
        chunk_runs[i] = WorkGroupRun();
        return Status::Ok();
      }));
  return run;
}

}  // namespace malisim::kir
