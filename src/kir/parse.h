// Parser for the textual KIR form produced by ToText() — the assembler half
// of the disassembler. Enables kernels as standalone text assets and exact
// round-trip testing of the IR surface:
//
//   kernel scale(in const f32* restrict src, out f32* dst, i32 n)
//     local f32 tile[64]
//     0: arg %n:i32 0
//     1: global_id r3:i32 0
//     2: load r4:f32x4, r3:i32 slot=0 off=0
//     ...
//
// Instruction indices at line starts are accepted and ignored (they are
// regenerated); control-flow matches are re-resolved by Finalize(). The
// parsed program is finalized and verified before being returned.
#pragma once

#include <string_view>

#include "common/status.h"
#include "kir/program.h"

namespace malisim::kir {

/// Parses one kernel. Returns InvalidArgument with a line-numbered message
/// on malformed input; the result always passes Verify().
StatusOr<Program> ParseProgram(std::string_view text);

}  // namespace malisim::kir
