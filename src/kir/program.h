// KIR program representation.
//
// A Program is the IR form of one OpenCL kernel: a flat instruction list
// with structured control flow (matched loop/if markers), a typed virtual
// register file, and declarations for its arguments (buffers and scalars)
// and __local scratch arrays. Programs are built with KernelBuilder,
// checked by Verify(), and executed by the interpreter in interp.h.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "kir/opcode.h"
#include "kir/types.h"

namespace malisim::kir {

/// Register id. Register 0 is reserved as "none".
using RegId = std::uint16_t;
inline constexpr RegId kNoReg = 0;

/// One decoded instruction. Fixed-size for interpreter locality.
struct Instr {
  Opcode op = Opcode::kMov;
  Type type;              // type of dst (or of the stored value for kStore)
  RegId dst = kNoReg;
  RegId a = kNoReg;
  RegId b = kNoReg;
  RegId c = kNoReg;
  std::uint8_t slot = 0;  // memory object slot for load/store/atomic
  std::int64_t imm = 0;   // element offset / lane index / dim / step / arg slot
  double fimm = 0.0;      // kConstF immediate
  // Filled in by Program::Finalize():
  std::uint32_t match = 0;  // matching control instruction index
};

enum class ArgKind : std::uint8_t { kBufferRO, kBufferWO, kBufferRW, kScalar };

struct ArgDecl {
  std::string name;
  ArgKind kind = ArgKind::kBufferRW;
  ScalarType elem = ScalarType::kF32;  // element type (buffers) / value type
  bool is_restrict = false;  // kernel author's promise: no aliasing (paper §III-B)
  bool is_const = false;     // const qualifier on the pointed-to data
};

/// __local array declaration; one allocation per work-group at launch.
struct LocalArrayDecl {
  std::string name;
  ScalarType elem = ScalarType::kF32;
  std::uint32_t elems = 0;
};

struct RegInfo {
  Type type;
  std::string name;  // for disassembly; may be empty
};

class Program {
 public:
  std::string name;
  std::vector<ArgDecl> args;
  std::vector<LocalArrayDecl> locals;
  std::vector<RegInfo> regs;  // index 0 is the reserved null register
  std::vector<Instr> code;

  Program() { regs.push_back({Type{}, "<none>"}); }

  std::uint32_t num_args() const { return static_cast<std::uint32_t>(args.size()); }
  std::uint32_t num_buffer_args() const;
  /// Memory object slots: buffer args first, then local arrays.
  std::uint32_t num_slots() const {
    return num_buffer_args() + static_cast<std::uint32_t>(locals.size());
  }

  bool finalized() const { return finalized_; }
  bool has_barrier() const { return has_barrier_; }
  /// Per-work-item bytes of live register state, the input to the Mali
  /// occupancy / CL_OUT_OF_RESOURCES model (sum over declared registers).
  std::uint32_t register_bytes() const { return register_bytes_; }

  /// Resolves structured control flow (loop/if match indices), computes
  /// register footprint and barrier presence. Must be called once after
  /// construction and again after any pass that rewrites code.
  Status Finalize();

 private:
  bool finalized_ = false;
  bool has_barrier_ = false;
  std::uint32_t register_bytes_ = 0;
};

/// Structural and type validation; returns the first violation found.
Status Verify(const Program& program);

/// Disassembly listing for debugging and golden tests.
std::string ToText(const Program& program);

}  // namespace malisim::kir
