// KIR opcodes and their classification for the device timing models.
#pragma once

#include <cstdint>
#include <string_view>

namespace malisim::kir {

enum class Opcode : std::uint8_t {
  // Immediates and launch parameters.
  kConstI,      // dst <- integer immediate, broadcast to all lanes
  kConstF,      // dst <- float immediate, broadcast
  kArg,         // dst <- scalar launch argument [imm = arg slot]
  // Work-item built-ins (OpenCL get_global_id etc.); imm = dimension.
  kGlobalId,
  kLocalId,
  kGroupId,
  kGlobalSize,
  kLocalSize,
  kNumGroups,
  // Data movement.
  kMov,         // dst <- a
  kSplat,       // vector dst <- scalar a broadcast
  kExtract,     // scalar dst <- a.lane[imm]
  kInsert,      // dst <- a with lane[imm] := scalar b
  kVSum,        // scalar dst <- horizontal sum of a's lanes
  kSlide,       // dst[l] <- concat(a,b)[l + imm] (NEON vext-style window)
  // Arithmetic (per-lane).
  kAdd,
  kSub,
  kMul,
  kDiv,
  kIDiv,        // integer division (C semantics, truncating)
  kIRem,        // integer remainder
  kMin,
  kMax,
  kFma,         // dst <- a * b + c
  kNeg,
  kAbs,
  kFloor,
  // Special functions (per-lane, float only).
  kSqrt,
  kRsqrt,
  kExp,
  kLog,
  kSin,
  kCos,
  // Bitwise / shifts (integer types).
  kAnd,
  kOr,
  kXor,
  kNot,
  kShl,         // shift amount = imm
  kShr,         // logical shift right, amount = imm
  // Comparisons: produce an i32 mask register (per-lane 0 / 1).
  kCmpLt,
  kCmpLe,
  kCmpEq,
  kCmpNe,
  kSelect,      // dst <- cond(a, per-lane) ? b : c
  kConvert,     // dst <- static_cast of a, lane-wise
  // Memory. imm = element offset added to the index register.
  kLoad,        // dst <- slot[ index + imm ... + lanes )
  kStore,       // slot[ index + imm ... ) <- a
  kAtomicAddI32,  // atomic int add into slot[index + imm]; no result
  kBarrier,     // work-group barrier
  // Structured control flow.
  kLoopBegin,   // var := a (start); loop while var < b (end); step = imm
  kLoopEnd,
  kIfBegin,     // enter if a.lane0 != 0
  kElse,
  kIfEnd,
  kNumOpcodes,
};

inline constexpr int kNumOpcodeValues = static_cast<int>(Opcode::kNumOpcodes);

std::string_view OpcodeName(Opcode op);

/// Buckets the timing models charge for. The split mirrors the Mali tri-pipe:
/// arithmetic-pipe work (simple / multiply / special-function), load-store
/// pipe work (load / store / atomic) and sequencing overhead (control).
enum class OpClass : std::uint8_t {
  kArithSimple = 0,  // add/sub/min/max/mov/logic/cmp/select/convert/lane ops
  kArithMul,         // mul, fma
  kArithSpecial,     // div, sqrt, rsqrt, exp, log, sin, cos
  kBroadcast,        // splat: scalar-operand broadcast (free-ish on Mali)
  kLoad,
  kStore,
  kAtomic,
  kControl,          // loop/if bookkeeping, builtins, immediates
  kBarrier,
  kNumClasses,
};

inline constexpr int kNumOpClasses = static_cast<int>(OpClass::kNumClasses);

std::string_view OpClassName(OpClass c);

OpClass ClassifyOpcode(Opcode op);

}  // namespace malisim::kir
