#include "kir/passes.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace malisim::kir {
namespace {

struct WriteCounts {
  std::vector<std::uint32_t> writes;
  std::vector<std::uint32_t> reads;
};

WriteCounts CountAccesses(const Program& p) {
  WriteCounts wc;
  wc.writes.assign(p.regs.size(), 0);
  wc.reads.assign(p.regs.size(), 0);
  for (const Instr& in : p.code) {
    if (in.dst != kNoReg) ++wc.writes[in.dst];
    if (in.a != kNoReg) ++wc.reads[in.a];
    if (in.b != kNoReg) ++wc.reads[in.b];
    if (in.c != kNoReg) ++wc.reads[in.c];
  }
  return wc;
}

bool HasSideEffects(Opcode op) {
  switch (op) {
    case Opcode::kStore:
    case Opcode::kAtomicAddI32:
    case Opcode::kBarrier:
    case Opcode::kLoopBegin:
    case Opcode::kLoopEnd:
    case Opcode::kIfBegin:
    case Opcode::kElse:
    case Opcode::kIfEnd:
      return true;
    default:
      return false;
  }
}

/// A known scalar constant value per register (lane-uniform constants only,
/// which is all kConstI/kConstF produce).
struct ConstInfo {
  bool known = false;
  bool is_float = false;
  double f = 0.0;
  std::int64_t i = 0;
};

}  // namespace

StatusOr<int> ConstantFold(Program* program) {
  MALI_CHECK(program != nullptr);
  int folded_total = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    const WriteCounts wc = CountAccesses(*program);
    std::vector<ConstInfo> consts(program->regs.size());
    for (const Instr& in : program->code) {
      if ((in.op == Opcode::kConstI || in.op == Opcode::kConstF) &&
          wc.writes[in.dst] == 1) {
        ConstInfo& ci = consts[in.dst];
        ci.known = true;
        ci.is_float = in.op == Opcode::kConstF;
        ci.f = in.fimm;
        ci.i = in.imm;
      }
    }

    for (Instr& in : program->code) {
      if (in.dst == kNoReg || wc.writes[in.dst] != 1) continue;
      const bool binary = in.op == Opcode::kAdd || in.op == Opcode::kSub ||
                          in.op == Opcode::kMul || in.op == Opcode::kDiv ||
                          in.op == Opcode::kIDiv || in.op == Opcode::kIRem;
      if (!binary) continue;
      const ConstInfo& ca = consts[in.a];
      const ConstInfo& cb = consts[in.b];
      if (!ca.known || !cb.known) continue;

      if (IsFloat(in.type.scalar)) {
        const double a = ca.is_float ? ca.f : static_cast<double>(ca.i);
        const double b = cb.is_float ? cb.f : static_cast<double>(cb.i);
        double r = 0.0;
        switch (in.op) {
          case Opcode::kAdd: r = a + b; break;
          case Opcode::kSub: r = a - b; break;
          case Opcode::kMul: r = a * b; break;
          case Opcode::kDiv: r = a / b; break;
          default: continue;  // integer-only ops cannot have a float dst
        }
        const Type t = in.type;
        const RegId dst = in.dst;
        in = Instr{};
        in.op = Opcode::kConstF;
        in.type = t;
        in.fimm = r;
        in.dst = dst;
      } else {
        const std::int64_t a = ca.is_float ? static_cast<std::int64_t>(ca.f) : ca.i;
        const std::int64_t b = cb.is_float ? static_cast<std::int64_t>(cb.f) : cb.i;
        if ((in.op == Opcode::kDiv || in.op == Opcode::kIDiv ||
             in.op == Opcode::kIRem) &&
            b == 0) {
          continue;  // leave the fault to runtime
        }
        std::int64_t r = 0;
        switch (in.op) {
          case Opcode::kAdd: r = a + b; break;
          case Opcode::kSub: r = a - b; break;
          case Opcode::kMul: r = a * b; break;
          case Opcode::kDiv:
          case Opcode::kIDiv: r = a / b; break;
          case Opcode::kIRem: r = a % b; break;
          default: continue;
        }
        const Type t = in.type;
        const RegId dst = in.dst;
        in = Instr{};
        in.op = Opcode::kConstI;
        in.type = t;
        in.imm = r;
        in.dst = dst;
      }
      ++folded_total;
      changed = true;
    }
    if (changed) {
      // Re-resolve control matches invalidated by rewrites (none move, but
      // keep the invariant that passes leave a finalized program).
      MALI_RETURN_IF_ERROR(program->Finalize());
    }
  }
  MALI_RETURN_IF_ERROR(program->Finalize());
  return folded_total;
}

StatusOr<int> DeadCodeElim(Program* program) {
  MALI_CHECK(program != nullptr);
  int removed_total = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    const WriteCounts wc = CountAccesses(*program);
    std::vector<Instr> kept;
    kept.reserve(program->code.size());
    for (const Instr& in : program->code) {
      const bool dead = !HasSideEffects(in.op) && in.op != Opcode::kLoad &&
                        in.dst != kNoReg && wc.reads[in.dst] == 0;
      // Loads are kept: they can fault and they touch the memory system;
      // a real compiler may not prove them dead either.
      if (dead) {
        ++removed_total;
        changed = true;
      } else {
        kept.push_back(in);
      }
    }
    program->code = std::move(kept);
  }
  MALI_RETURN_IF_ERROR(program->Finalize());
  return removed_total;
}

std::uint32_t MaxLiveRegisterBytes(const Program& program) {
  const std::size_t n = program.code.size();
  const std::size_t nregs = program.regs.size();
  constexpr std::uint32_t kUnset = ~0u;
  std::vector<std::uint32_t> first_def(nregs, kUnset);
  std::vector<std::uint32_t> last_use(nregs, 0);

  auto note_def = [&](RegId r, std::uint32_t i) {
    if (r == kNoReg) return;
    if (first_def[r] == kUnset) first_def[r] = i;
    last_use[r] = std::max(last_use[r], i);
  };
  auto note_use = [&](RegId r, std::uint32_t i) {
    if (r == kNoReg) return;
    last_use[r] = std::max(last_use[r], i);
  };

  for (std::uint32_t i = 0; i < n; ++i) {
    const Instr& in = program.code[i];
    note_use(in.a, i);
    note_use(in.b, i);
    note_use(in.c, i);
    note_def(in.dst, i);
    if (in.op == Opcode::kLoopEnd) {
      // The loop variable and the end bound are read at the back edge.
      const Instr& begin = program.code[in.match];
      note_use(begin.dst, i);
      note_use(begin.b, i);
    }
  }

  // Widen intervals across loops: a register defined before a loop and last
  // used inside it stays live for the whole loop (it is needed on every
  // iteration).
  for (std::uint32_t i = 0; i < n; ++i) {
    const Instr& in = program.code[i];
    if (in.op != Opcode::kLoopBegin) continue;
    const std::uint32_t begin = i;
    const std::uint32_t end = in.match;
    for (std::size_t r = 1; r < nregs; ++r) {
      if (first_def[r] == kUnset) continue;
      if (first_def[r] < begin && last_use[r] > begin && last_use[r] < end) {
        last_use[r] = end;
      }
    }
  }

  // Sweep: +bytes at first def, -bytes after last use.
  std::vector<std::int64_t> delta(n + 2, 0);
  for (std::size_t r = 1; r < nregs; ++r) {
    if (first_def[r] == kUnset) continue;
    const std::int64_t bytes = program.regs[r].type.bytes();
    delta[first_def[r]] += bytes;
    delta[last_use[r] + 1] -= bytes;
  }
  std::int64_t live = 0;
  std::int64_t peak = 0;
  for (std::size_t i = 0; i < delta.size(); ++i) {
    live += delta[i];
    peak = std::max(peak, live);
  }
  return static_cast<std::uint32_t>(peak);
}

ProgramFeatures AnalyzeFeatures(const Program& program) {
  ProgramFeatures f;
  f.static_instructions = static_cast<std::uint32_t>(program.code.size());
  f.has_barrier = program.has_barrier();

  for (const RegInfo& reg : program.regs) {
    f.max_vector_bytes = std::max(f.max_vector_bytes, reg.type.bytes());
  }

  std::uint32_t loop_depth = 0;
  std::uint32_t if_depth_in_loop = 0;
  // Track whether the innermost open loop contains data-dependent control
  // flow together with an f64 special function (the erratum shape).
  std::vector<bool> loop_has_if;
  std::vector<bool> loop_has_f64_special;

  for (const Instr& in : program.code) {
    switch (in.op) {
      case Opcode::kLoopBegin:
        ++loop_depth;
        f.max_loop_depth = std::max(f.max_loop_depth, loop_depth);
        loop_has_if.push_back(false);
        loop_has_f64_special.push_back(false);
        break;
      case Opcode::kLoopEnd:
        if (!loop_has_if.empty()) {
          if (loop_has_if.back() && loop_has_f64_special.back()) {
            f.has_f64_special_in_divergent_loop = true;
          }
          // Inner-loop findings propagate to the enclosing loop.
          if (loop_has_if.size() >= 2) {
            loop_has_if[loop_has_if.size() - 2] =
                loop_has_if[loop_has_if.size() - 2] || loop_has_if.back();
            loop_has_f64_special[loop_has_f64_special.size() - 2] =
                loop_has_f64_special[loop_has_f64_special.size() - 2] ||
                loop_has_f64_special.back();
          }
          loop_has_if.pop_back();
          loop_has_f64_special.pop_back();
        }
        --loop_depth;
        break;
      case Opcode::kIfBegin:
        if (!loop_has_if.empty()) loop_has_if.back() = true;
        ++if_depth_in_loop;
        break;
      case Opcode::kIfEnd:
        if (if_depth_in_loop > 0) --if_depth_in_loop;
        break;
      case Opcode::kAtomicAddI32:
        f.has_atomics = true;
        break;
      default:
        break;
    }
    if (in.type.scalar == ScalarType::kF64) {
      f.has_f64 = true;
      if (ClassifyOpcode(in.op) == OpClass::kArithSpecial) {
        f.has_f64_special = true;
        if (!loop_has_f64_special.empty()) loop_has_f64_special.back() = true;
      }
    }
  }
  return f;
}

}  // namespace malisim::kir
