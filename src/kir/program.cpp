#include "kir/program.h"

#include <vector>

namespace malisim::kir {

std::uint32_t Program::num_buffer_args() const {
  std::uint32_t n = 0;
  for (const ArgDecl& arg : args) {
    if (arg.kind != ArgKind::kScalar) ++n;
  }
  return n;
}

Status Program::Finalize() {
  has_barrier_ = false;
  register_bytes_ = 0;
  for (std::size_t r = 1; r < regs.size(); ++r) {
    register_bytes_ += regs[r].type.bytes();
  }

  // Match structured control flow with a stack of open constructs.
  struct Open {
    Opcode op;
    std::uint32_t index;
    std::uint32_t else_index;  // for if constructs; 0 = none
  };
  std::vector<Open> stack;
  for (std::uint32_t i = 0; i < code.size(); ++i) {
    Instr& instr = code[i];
    switch (instr.op) {
      case Opcode::kBarrier:
        has_barrier_ = true;
        break;
      case Opcode::kLoopBegin:
      case Opcode::kIfBegin:
        stack.push_back({instr.op, i, 0});
        break;
      case Opcode::kElse: {
        if (stack.empty() || stack.back().op != Opcode::kIfBegin) {
          return InvalidArgumentError("else without open if at instruction " +
                                      std::to_string(i));
        }
        if (stack.back().else_index != 0) {
          return InvalidArgumentError("duplicate else at instruction " +
                                      std::to_string(i));
        }
        stack.back().else_index = i;
        break;
      }
      case Opcode::kLoopEnd: {
        if (stack.empty() || stack.back().op != Opcode::kLoopBegin) {
          return InvalidArgumentError("endloop without open loop at " +
                                      std::to_string(i));
        }
        const Open open = stack.back();
        stack.pop_back();
        code[open.index].match = i;
        instr.match = open.index;
        break;
      }
      case Opcode::kIfEnd: {
        if (stack.empty() || stack.back().op != Opcode::kIfBegin) {
          return InvalidArgumentError("endif without open if at " +
                                      std::to_string(i));
        }
        const Open open = stack.back();
        stack.pop_back();
        // if jumps to else+1 (when false) or endif+1; else jumps to endif.
        code[open.index].match =
            open.else_index != 0 ? open.else_index : i;
        if (open.else_index != 0) code[open.else_index].match = i;
        instr.match = open.index;
        break;
      }
      default:
        break;
    }
  }
  if (!stack.empty()) {
    return InvalidArgumentError("unterminated control construct opened at " +
                                std::to_string(stack.back().index));
  }
  finalized_ = true;
  return Status::Ok();
}

}  // namespace malisim::kir
