// Textual disassembly of KIR programs. The format round-trips through
// ParseProgram (kir/parse.h), so floating immediates print losslessly.
#include <cstdio>
#include <string>

#include "kir/program.h"

namespace malisim::kir {
namespace {

std::string RegName(const Program& p, RegId r) {
  if (r == kNoReg) return "_";
  const RegInfo& info = p.regs[r];
  std::string out = info.name.empty() ? "r" + std::to_string(r) : "%" + info.name;
  out += ":" + info.type.ToString();
  return out;
}

}  // namespace

std::string Type::ToString() const {
  std::string out = ScalarTypeName(scalar);
  if (lanes > 1) out += "x" + std::to_string(lanes);
  return out;
}

std::string ScalarTypeName(ScalarType t) {
  switch (t) {
    case ScalarType::kF32:
      return "f32";
    case ScalarType::kF64:
      return "f64";
    case ScalarType::kI32:
      return "i32";
    case ScalarType::kI64:
      return "i64";
  }
  return "?";
}

std::string ToText(const Program& p) {
  std::string out = "kernel " + p.name + "(";
  for (std::size_t i = 0; i < p.args.size(); ++i) {
    if (i > 0) out += ", ";
    const ArgDecl& arg = p.args[i];
    switch (arg.kind) {
      case ArgKind::kBufferRO:
        out += "in ";
        break;
      case ArgKind::kBufferWO:
        out += "out ";
        break;
      case ArgKind::kBufferRW:
        out += "inout ";
        break;
      case ArgKind::kScalar:
        break;
    }
    if (arg.is_const) out += "const ";
    out += ScalarTypeName(arg.elem);
    if (arg.kind != ArgKind::kScalar) out += "*";
    if (arg.is_restrict) out += " restrict";
    out += " " + arg.name;
  }
  out += ")\n";
  for (const LocalArrayDecl& local : p.locals) {
    out += "  local " + ScalarTypeName(local.elem) + " " + local.name + "[" +
           std::to_string(local.elems) + "]\n";
  }

  int indent = 1;
  for (std::size_t i = 0; i < p.code.size(); ++i) {
    const Instr& in = p.code[i];
    if (in.op == Opcode::kLoopEnd || in.op == Opcode::kIfEnd ||
        in.op == Opcode::kElse) {
      --indent;
    }
    out += std::string(static_cast<std::size_t>(indent) * 2, ' ');
    out += std::to_string(i) + ": " + std::string(OpcodeName(in.op));
    if (in.dst != kNoReg) out += " " + RegName(p, in.dst);
    if (in.a != kNoReg) out += (in.dst != kNoReg ? ", " : " ") + RegName(p, in.a);
    if (in.b != kNoReg) out += ", " + RegName(p, in.b);
    if (in.c != kNoReg) out += ", " + RegName(p, in.c);
    switch (in.op) {
      case Opcode::kConstF: {
        char buf[64];
        std::snprintf(buf, sizeof(buf), " %.17g", in.fimm);
        out += buf;
        break;
      }
      case Opcode::kConstI:
      case Opcode::kArg:
      case Opcode::kGlobalId:
      case Opcode::kLocalId:
      case Opcode::kGroupId:
      case Opcode::kGlobalSize:
      case Opcode::kLocalSize:
      case Opcode::kNumGroups:
      case Opcode::kShl:
      case Opcode::kShr:
      case Opcode::kExtract:
      case Opcode::kInsert:
      case Opcode::kSlide:
        out += " " + std::to_string(in.imm);
        break;
      case Opcode::kLoad:
      case Opcode::kStore:
      case Opcode::kAtomicAddI32:
        out += " slot=" + std::to_string(in.slot) +
               " off=" + std::to_string(in.imm);
        break;
      case Opcode::kLoopBegin:
        out += " step=" + std::to_string(in.imm);
        break;
      default:
        break;
    }
    out += "\n";
    if (in.op == Opcode::kLoopBegin || in.op == Opcode::kIfBegin ||
        in.op == Opcode::kElse) {
      ++indent;
    }
  }
  return out;
}

}  // namespace malisim::kir
