// Fluent builder for KIR programs.
//
// Benchmarks author their OpenCL kernels through this DSL; it plays the role
// OpenCL C source plays in the paper. Manual optimizations (vectorization,
// unrolling, SOA layout, qualifier hints) are expressed here, exactly as the
// paper's §III describes them as *source-level* transformations, while the
// device-side kernel compiler (src/mali) handles register allocation and
// resource limits.
//
//   KernelBuilder kb("vec_add");
//   auto x = kb.ArgBuffer("x", ScalarType::kF32, ArgKind::kBufferRO);
//   auto y = kb.ArgBuffer("y", ScalarType::kF32, ArgKind::kBufferRO);
//   auto out = kb.ArgBuffer("out", ScalarType::kF32, ArgKind::kBufferWO);
//   auto gid = kb.GlobalId(0);
//   kb.Store(out, gid, kb.Load(x, gid) + kb.Load(y, gid));
//   Program p = kb.Build().value();
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"
#include "kir/program.h"

namespace malisim::kir {

class KernelBuilder;

/// Handle to a virtual register. Cheap to copy. Arithmetic operators emit
/// instructions into the owning builder.
class Val {
 public:
  Val() = default;
  Val(KernelBuilder* kb, RegId reg, Type type) : kb_(kb), reg_(reg), type_(type) {}

  bool valid() const { return kb_ != nullptr; }
  RegId reg() const { return reg_; }
  Type type() const { return type_; }
  KernelBuilder* builder() const { return kb_; }

 private:
  KernelBuilder* kb_ = nullptr;
  RegId reg_ = kNoReg;
  Type type_;
};

/// Handle to a memory object (buffer argument or __local array).
struct BufferRef {
  KernelBuilder* kb = nullptr;
  std::uint8_t slot = 0;
  ScalarType elem = ScalarType::kF32;
};

class KernelBuilder {
 public:
  explicit KernelBuilder(std::string name);

  // --- declarations (must precede code emission for args) ---
  BufferRef ArgBuffer(const std::string& name, ScalarType elem,
                      ArgKind kind = ArgKind::kBufferRW,
                      bool is_restrict = false, bool is_const = false);
  /// Scalar kernel argument; materialized into a register at the top.
  Val ArgScalar(const std::string& name, ScalarType type);
  /// __local array shared by the work-group.
  BufferRef LocalArray(const std::string& name, ScalarType elem,
                       std::uint32_t elems);

  // --- constants and built-ins ---
  Val ConstI(Type type, std::int64_t value);
  Val ConstF(Type type, double value);
  Val GlobalId(int dim = 0);
  Val LocalId(int dim = 0);
  Val GroupId(int dim = 0);
  Val GlobalSize(int dim = 0);
  Val LocalSize(int dim = 0);
  Val NumGroups(int dim = 0);

  // --- mutable variables (loop-carried values) ---
  Val Var(Type type, const std::string& name);
  void Assign(Val var, Val value);

  // --- arithmetic ---
  Val Binary(Opcode op, Val a, Val b);
  Val Unary(Opcode op, Val a);
  Val Fma(Val a, Val b, Val c);
  Val Min(Val a, Val b) { return Binary(Opcode::kMin, a, b); }
  Val Max(Val a, Val b) { return Binary(Opcode::kMax, a, b); }
  Val Sqrt(Val a) { return Unary(Opcode::kSqrt, a); }
  Val Rsqrt(Val a) { return Unary(Opcode::kRsqrt, a); }
  Val Exp(Val a) { return Unary(Opcode::kExp, a); }
  Val Log(Val a) { return Unary(Opcode::kLog, a); }
  Val Sin(Val a) { return Unary(Opcode::kSin, a); }
  Val Cos(Val a) { return Unary(Opcode::kCos, a); }
  Val Abs(Val a) { return Unary(Opcode::kAbs, a); }
  Val Floor(Val a) { return Unary(Opcode::kFloor, a); }
  Val Shl(Val a, int amount);
  Val Shr(Val a, int amount);

  // --- lane manipulation ---
  Val Splat(Val scalar, std::uint8_t lanes);
  Val Extract(Val vec, int lane);
  Val Insert(Val vec, int lane, Val scalar);
  Val VSum(Val vec);
  /// Sliding window over two same-width vectors: result lane l is
  /// concat(a, b)[l + amount] — the NEON vext idiom optimized stencil /
  /// convolution kernels use to reuse one wide row load for several taps.
  Val Slide(Val a, Val b, int amount);
  Val Convert(Val v, ScalarType to);

  // --- comparison / select (masks are i32 with matching lanes) ---
  Val CmpLt(Val a, Val b) { return Compare(Opcode::kCmpLt, a, b); }
  Val CmpLe(Val a, Val b) { return Compare(Opcode::kCmpLe, a, b); }
  Val CmpEq(Val a, Val b) { return Compare(Opcode::kCmpEq, a, b); }
  Val CmpNe(Val a, Val b) { return Compare(Opcode::kCmpNe, a, b); }
  Val CmpGt(Val a, Val b) { return Compare(Opcode::kCmpLt, b, a); }
  Val CmpGe(Val a, Val b) { return Compare(Opcode::kCmpLe, b, a); }
  Val Select(Val cond, Val if_true, Val if_false);

  // --- memory ---
  /// Loads `lanes` consecutive `elem`-typed values starting at element index
  /// `index + offset`. lanes > 1 is an OpenCL vloadN.
  Val Load(BufferRef buf, Val index, std::int64_t offset = 0,
           std::uint8_t lanes = 1);
  void Store(BufferRef buf, Val index, Val value, std::int64_t offset = 0);
  void AtomicAdd(BufferRef buf, Val index, Val value, std::int64_t offset = 0);
  void Barrier();

  // --- control flow ---
  /// for (i32 i = start; i < end; i += step) body(i)
  void For(const std::string& var_name, Val start, Val end, std::int64_t step,
           const std::function<void(Val)>& body);
  void For(const std::string& var_name, std::int64_t start, Val end,
           std::int64_t step, const std::function<void(Val)>& body);
  /// Manually unrolled loop: the body is emitted `factor` times per main-loop
  /// iteration (i, i+step, ..., i+(factor-1)*step) followed by a remainder
  /// loop — the §III-B "loop unrolling" optimization, code replication and
  /// register-pressure growth included.
  void ForUnrolled(const std::string& var_name, Val start, Val end,
                   std::int64_t step, int factor,
                   const std::function<void(Val)>& body);
  void If(Val cond, const std::function<void()>& then_body,
          const std::function<void()>& else_body = nullptr);

  /// Finalizes and verifies. The builder must not be reused afterwards.
  StatusOr<Program> Build();

  /// Number of instructions emitted so far (used by tests).
  std::size_t code_size() const { return program_.code.size(); }

 private:
  friend class Val;
  Val Compare(Opcode op, Val a, Val b);
  RegId NewReg(Type type, const std::string& name = "");
  Instr& Emit(Opcode op);
  Val Builtin(Opcode op, int dim);
  void CheckOwned(Val v) const;

  Program program_;
  std::uint32_t num_scalar_args_ = 0;
  bool built_ = false;
};

// Operator sugar. Mixed Val/arithmetic-constant operands materialize a
// matching-typed constant.
Val operator+(Val a, Val b);
Val operator-(Val a, Val b);
Val operator*(Val a, Val b);
Val operator/(Val a, Val b);
Val operator+(Val a, double c);
Val operator-(Val a, double c);
Val operator*(Val a, double c);
Val operator/(Val a, double c);
Val operator+(double c, Val b);
Val operator*(double c, Val b);
Val operator-(double c, Val b);
Val operator-(Val a);
Val operator&(Val a, Val b);
Val operator|(Val a, Val b);
Val operator^(Val a, Val b);

}  // namespace malisim::kir
