// Driver-side IR passes and analyses.
//
// The ARM OpenCL driver compiles kernels at runtime (paper §II-B); tinycl
// models that step with a small pass pipeline (constant folding, dead-code
// elimination) plus the analyses the Mali kernel compiler needs for its
// resource checks (register pressure, feature detection for the documented
// FP64 compiler erratum).
#pragma once

#include <cstdint>

#include "common/status.h"
#include "kir/program.h"

namespace malisim::kir {

/// Folds arithmetic on compile-time constants. Only registers that are
/// written exactly once are treated as constants (the IR is not SSA).
/// Returns the number of instructions rewritten. Re-finalizes the program.
StatusOr<int> ConstantFold(Program* program);

/// Removes side-effect-free instructions whose results are never read.
/// Returns the number of instructions removed. Re-finalizes the program.
StatusOr<int> DeadCodeElim(Program* program);

/// Static program features consumed by the Mali kernel compiler model.
struct ProgramFeatures {
  std::uint32_t static_instructions = 0;
  std::uint32_t max_loop_depth = 0;
  std::uint32_t max_vector_bytes = 0;    // widest register in bytes
  bool has_atomics = false;
  bool has_barrier = false;
  bool has_f64 = false;
  bool has_f64_special = false;          // f64 div/sqrt/exp/log/sin/cos
  /// FP64 special function lexically inside a loop that also contains
  /// data-dependent control flow — the code shape of the amcd benchmark's
  /// Metropolis loop, which the 2013 ARM kernel compiler failed to compile
  /// (paper §V-A: "a compiler issue that does not allow the correct
  /// termination of the compilation phase ... in double precision").
  bool has_f64_special_in_divergent_loop = false;
};

ProgramFeatures AnalyzeFeatures(const Program& program);

/// Peak live register footprint in bytes, from a linear-scan liveness over
/// [first-def, last-use] intervals (intervals are widened to the end of any
/// loop they are live across, approximating loop-carried lifetimes). This is
/// the register-allocation result the Mali kernel compiler model uses for
/// thread occupancy and CL_OUT_OF_RESOURCES decisions: wide-vector FP64
/// kernels (the paper's optimized nbody/2dcon in double precision) blow the
/// per-thread budget here.
std::uint32_t MaxLiveRegisterBytes(const Program& program);

}  // namespace malisim::kir
