// KIR bytecode: the compile-once, run-many execution format (DESIGN.md §16).
//
// A verified kir::Program is lowered once by CompileProgram() into a flat
// stream of pre-decoded VInstrs — operands resolved to compacted register
// ids, scalar types burned into the opcode (no per-step type switch),
// structured control flow (loop/if markers) resolved to absolute branch
// targets, hot adjacent pairs fused into superinstructions (compare+branch,
// trailing-move absorption, reduction back-edges, load+consumer), and
// load/store element sizes strength-reduced to shifts.
// The VmExecutor in vm.h then dispatches the stream with a single dense
// switch per instruction.
//
// Accounting contract: the bytecode never loses source-level identity.
// Every VInstr carries side tables mapping it back to the source program —
// `src_pc` (the source instruction index, used by the HostTimeSink sampling
// profiler so per-opcode/per-block attribution stays in source terms) and a
// `tally_begin`/`tally_slots` span listing the source opcodes and histogram
// indices the VInstr stands for (one entry normally, one per fused source
// instruction otherwise). Executing bytecode therefore produces bit-identical
// OpHistograms, per-opcode tallies, step weights and memory-access streams
// to the reference interpreter; the `ctest -L kirvm` differential suite
// pins exactly that.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "kir/opcode.h"
#include "kir/program.h"
#include "kir/types.h"

namespace malisim::kir::vm {

/// Expands to the four per-scalar-type variants of one bytecode op, in
/// ScalarType order (kF32, kF64, kI32, kI64) so dispatch selection is
/// `base + static_cast<int>(scalar)`.
#define MALISIM_VM_TYPED4(name) name##F32, name##F64, name##I32, name##I64

/// Bytecode opcodes. Typed groups are laid out consecutively so the
/// compiler selects a variant with integer arithmetic:
///  - 4-type groups (MALISIM_VM_TYPED4): base + ScalarType
///  - float pairs  (…F32, …F64):        base + (scalar == kF64)
///  - int pairs    (…I32, …I64):        base + (scalar == kI64)
enum class VOp : std::uint8_t {
  kNop = 0,  // source kIfEnd: counted, no effect
  kConst,    // dst <- const_pool[target], access_bytes wide (kConstI/kConstF)
  kCtx,      // dst.i32[0] <- work-item ctx word [imm]; 0-2 global, 3-5 local,
             // 6-8 group id
  kLaunch,   // dst.i32[0] <- launch word [imm]; 0-2 global size, 3-5 local
             // size, 6-8 num groups
  kMov,      // dst <- a (full register copy)
  kCvt,      // dst <- convert(a); aux8 = (from_scalar << 2) | to_scalar
  MALISIM_VM_TYPED4(kArg),  // dst lane 0 <- scalar arg [imm]
  MALISIM_VM_TYPED4(kAdd),
  MALISIM_VM_TYPED4(kSub),
  MALISIM_VM_TYPED4(kMul),
  MALISIM_VM_TYPED4(kDiv),  // integer variants fault on zero divisors
  kIDivI32, kIDivI64,
  kIRemI32, kIRemI64,
  MALISIM_VM_TYPED4(kMin),  // fmin/fmax on floats, std::min/max on ints
  MALISIM_VM_TYPED4(kMax),
  kFmaF32, kFmaF64,
  MALISIM_VM_TYPED4(kNeg),
  MALISIM_VM_TYPED4(kAbs),
  kFloorF32, kFloorF64,
  kSqrtF32, kSqrtF64,
  kRsqrtF32, kRsqrtF64,
  kExpF32, kExpF64,
  kLogF32, kLogF64,
  kSinF32, kSinF64,
  kCosF32, kCosF64,
  kAndI32, kAndI64,
  kOrI32, kOrI64,
  kXorI32, kXorI64,
  kNotI32, kNotI64,
  kShlI32, kShlI64,  // shift amount in imm, via unsigned intermediates
  kShrI32, kShrI64,
  // Lane-wise compares producing an i32 mask; the type suffix is the
  // *source* operand type (the interp's MALI_CMP_ALL_TYPES contract).
  MALISIM_VM_TYPED4(kCmpLt),
  MALISIM_VM_TYPED4(kCmpLe),
  MALISIM_VM_TYPED4(kCmpEq),
  MALISIM_VM_TYPED4(kCmpNe),
  // Fused scalar compare + kIfBegin: branch to `target` when the condition
  // is FALSE. Counts as two source instructions (see TallySlot / weight).
  MALISIM_VM_TYPED4(kCmpBrLt),
  MALISIM_VM_TYPED4(kCmpBrLe),
  MALISIM_VM_TYPED4(kCmpBrEq),
  MALISIM_VM_TYPED4(kCmpBrNe),
  MALISIM_VM_TYPED4(kSelect),   // dst[l] = a.i32[l] ? b[l] : c[l]
  MALISIM_VM_TYPED4(kSplat),    // dst[l] = a[0]
  MALISIM_VM_TYPED4(kExtract),  // dst[0] = a[imm]
  MALISIM_VM_TYPED4(kInsert),   // dst = a; dst[imm] = b[0]
  MALISIM_VM_TYPED4(kSlide),    // dst[l] = concat(a, b)[l + imm]
  MALISIM_VM_TYPED4(kVSum),     // dst[0] = sum over aux8 source lanes of a
  kLoad,          // dst <- slot[a.i32[0] + imm]; offset = elem << aux8
  kStore,         // slot[b.i32[0] + imm] <- a
  kAtomicAddI32,  // slot[b.i32[0] + imm] +=atomic a.i32[0]
  kBarrier,       // phase boundary; zero step weight (interp parity)
  kLoopBegin,     // dst.i32[0] = a.i32[0]; if >= b.i32[0] jump target
  kLoopEnd,       // dst.i32[0] += imm; if < b.i32[0] jump target (dst/b/imm
                  // copied from the matching kLoopBegin at compile time)
  kJump,          // unconditional jump to target (source kElse)
  kBrZero,        // if a.i32[0] == 0 jump target (unfused kIfBegin)
  // Fused reduction back-edge: the arithmetic op (dst/a/b/c as usual),
  // then the matching kLoopEnd's counter step and conditional jump. The
  // loop counter and bound registers are packed into access_bytes
  // (counter | bound << 16); imm is the counter step, target the back-edge.
  kFmaLoopEndF32, kFmaLoopEndF64,
  kAddLoopEndF32, kAddLoopEndF64,
  // Fused load + consumer: the load executes first exactly like kLoad
  // (slot/aux8/imm/access_bytes; index register and destination packed
  // into target as idx | dst << 16), writing its destination register,
  // then the consumer (dst/a/b/c as usual) runs reading the register
  // file — so it sees the loaded value no matter which operand slot(s)
  // reference it.
  kLoadFmaF32, kLoadFmaF64,
  kLoadAddF32, kLoadAddF64,
  kLoadSubF32, kLoadSubF64,
  kLoadMulF32, kLoadMulF64,
  kLoadSplatF32, kLoadSplatF64,
  // The whole tail of a dense reduction body in one dispatch: load, fma,
  // (absorbed move,) counter step and conditional back-edge. Load side as
  // the kLoad* group above (idx | dst << 16 in target; byte count
  // recomputed as lanes << aux8 since the load and fma widths match);
  // back-edge side as the k*LoopEnd group (counter | bound << 16 in
  // access_bytes); imm packs the counter step (low half) and the branch
  // target vpc (high half). Only formed for zero-offset loads.
  kLoadFmaLoopEndF32, kLoadFmaLoopEndF64,
  kNumVOps,
};

#undef MALISIM_VM_TYPED4

/// One pre-decoded bytecode instruction. 32 bytes, fixed-size for dispatch
/// locality (same motivation as kir::Instr, minus the fields the compiler
/// already burned into `op`).
struct VInstr {
  VOp op = VOp::kNop;
  std::uint8_t lanes = 1;
  std::uint8_t slot = 0;  // memory slot index (load/store/atomic)
  std::uint8_t aux8 = 0;  // elem-size shift (mem) / src lanes (vsum) /
                          // (from << 2) | to (cvt)
  RegId dst = kNoReg;
  RegId a = kNoReg;
  RegId b = kNoReg;
  RegId c = kNoReg;
  std::uint32_t target = 0;       // branch target vpc / const-pool index /
                                  // fused-load idx | dst << 16
  std::uint32_t access_bytes = 0; // lanes * elem bytes (mem ops, kConst) /
                                  // fused-back-edge counter | bound << 16
  std::uint8_t weight = 1;  // source steps per execution (== the weight
                            // side table; carried inline so the dispatch
                            // loop pays no extra cache line for it)
  std::int64_t imm = 0;  // elem offset / lane idx / shift / arg slot / step
};
static_assert(sizeof(VInstr) == 32, "VInstr should stay one half cache line");

/// One source instruction a VInstr stands for, in source execution order.
/// Expanding a VInstr execution count through its TallySlot span reproduces
/// the interpreter's OpHistogram and per-opcode tally exactly.
struct TallySlot {
  std::int32_t hist_idx = 0;  // OpHistogram::Index of the source instruction
  Opcode op = Opcode::kMov;   // source opcode (per-opcode tally key)
};

/// The immutable result of CompileProgram(). Shareable across executors and
/// threads (and memoized by mali::CompileCache): nothing here is mutated by
/// execution.
struct CompiledProgram {
  std::string name;             // source program name (fault messages)
  std::uint32_t source_len = 0; // source code size; executors sanity-check
                                // the bytecode matches their program
  std::uint32_t num_regs = 0;   // compacted register-file size, slot 0
                                // reserved (kNoReg), like the source file
  bool has_barrier = false;

  std::vector<VInstr> code;
  std::vector<RegValue> const_pool;  // pre-broadcast kConstI/kConstF values

  // Side tables, indexed by vpc (see file comment).
  std::vector<std::uint32_t> src_pc;  // source pc (fused ops: the first)
  std::vector<std::uint8_t> weight;   // source steps per execution: one per
                                      // fused source instr, 0 for barriers
  std::vector<std::uint32_t> tally_begin;  // code.size()+1 offsets into
  std::vector<TallySlot> tally_slots;      // ...this flat span store
};

/// Lowers a finalized program into bytecode. Pure function of the program:
/// the result may be cached under any key that pins the program's contents.
StatusOr<std::shared_ptr<const CompiledProgram>> CompileProgram(
    const Program& program);

}  // namespace malisim::kir::vm
