// Lowers a finalized kir::Program into the bytecode format of bytecode.h.
//
// Passes, in order:
//   1. branch-target scan — structured control flow only ever jumps to
//      match / match+1, so the target set is exact;
//   2. def/use census — gates compare-and-branch and trailing-move fusion
//      on the intermediate register being single-def single-use (the fused
//      forms never materialize it);
//   3. lowering — one VInstr per source instruction, with adjacent hot
//      pairs collapsed into superinstructions (cmp+kIfBegin, load+consumer,
//      op+trailing kMov, float fma/add+kLoopEnd back edges — chains like
//      fma+mov+loop-end collapse to one dispatch), scalar types burned into
//      the opcode, constants pre-broadcast into the pool, load/store element
//      sizes strength-reduced to shifts, side tables recording the
//      source-pc / weight / tally mapping;
//   4. branch patching — source targets rewritten through the src→vpc map;
//   5. register compaction — referenced registers renumbered densely so the
//      per-item register file (and the barrier path's per-group memset)
//      shrinks to what the bytecode actually touches.
#include "kir/vm/bytecode.h"

#include <bit>
#include <cstring>
#include <utility>

#include "kir/exec_types.h"

namespace malisim::kir::vm {
namespace {

/// Variant selection over the consecutive typed opcode groups (bytecode.h).
VOp Typed4(VOp f32_base, ScalarType t) {
  return static_cast<VOp>(static_cast<int>(f32_base) + static_cast<int>(t));
}
/// Float pair: anything non-f32 takes the f64 variant — exactly the
/// interpreter's `scalar == kF32 ? ... : ...` branch shape.
VOp FloatPair(VOp f32_base, ScalarType t) {
  return static_cast<VOp>(static_cast<int>(f32_base) +
                          (t != ScalarType::kF32 ? 1 : 0));
}
/// Int pair: anything non-i32 takes the i64 variant (interp parity again).
VOp IntPair(VOp i32_base, ScalarType t) {
  return static_cast<VOp>(static_cast<int>(i32_base) +
                          (t != ScalarType::kI32 ? 1 : 0));
}

bool IsCmp(Opcode op) {
  return op == Opcode::kCmpLt || op == Opcode::kCmpLe ||
         op == Opcode::kCmpEq || op == Opcode::kCmpNe;
}

/// Ops whose only effect is writing a value into their destination
/// register. A trailing single-use kMov after one of these can be absorbed
/// by retargeting the destination (the temp is then never materialized,
/// exactly like the fused compare's mask register). Registers are typed, so
/// readers only ever observe the op's written lanes — the absorbed copy's
/// high-lane bytes are dead either way.
bool IsValueOp(Opcode op) {
  switch (op) {
    case Opcode::kStore:
    case Opcode::kAtomicAddI32:
    case Opcode::kBarrier:
    case Opcode::kLoopBegin:
    case Opcode::kLoopEnd:
    case Opcode::kIfBegin:
    case Opcode::kElse:
    case Opcode::kIfEnd:
    case Opcode::kNumOpcodes:
      return false;
    default:
      return true;
  }
}

/// Fused load+consumer selection: the float-pair base VOp for a consumer
/// that reads the just-loaded register, or kNumVOps when the pair does not
/// fuse. `ld` is the kLoad, `c` the instruction after it.
VOp LoadConsumerBase(const Instr& ld, const Instr& c) {
  const ScalarType t = c.type.scalar;
  if (t != ScalarType::kF32 && t != ScalarType::kF64) return VOp::kNumVOps;
  switch (c.op) {
    case Opcode::kFma:
      if (c.a == ld.dst || c.b == ld.dst || c.c == ld.dst) {
        return VOp::kLoadFmaF32;
      }
      return VOp::kNumVOps;
    case Opcode::kAdd:
      return c.a == ld.dst || c.b == ld.dst ? VOp::kLoadAddF32
                                            : VOp::kNumVOps;
    case Opcode::kSub:
      return c.a == ld.dst || c.b == ld.dst ? VOp::kLoadSubF32
                                            : VOp::kNumVOps;
    case Opcode::kMul:
      return c.a == ld.dst || c.b == ld.dst ? VOp::kLoadMulF32
                                            : VOp::kNumVOps;
    case Opcode::kSplat:
      return c.a == ld.dst ? VOp::kLoadSplatF32 : VOp::kNumVOps;
    default:
      return VOp::kNumVOps;
  }
}

bool IsBackedgeFused(VOp op) {
  return (op >= VOp::kFmaLoopEndF32 && op <= VOp::kAddLoopEndF64) ||
         op == VOp::kLoadFmaLoopEndF32 || op == VOp::kLoadFmaLoopEndF64;
}
bool IsLoadFused(VOp op) {
  return op >= VOp::kLoadFmaF32 && op <= VOp::kLoadFmaLoopEndF64;
}

VOp CmpBase(Opcode op) {
  switch (op) {
    case Opcode::kCmpLt: return VOp::kCmpLtF32;
    case Opcode::kCmpLe: return VOp::kCmpLeF32;
    case Opcode::kCmpEq: return VOp::kCmpEqF32;
    default: return VOp::kCmpNeF32;
  }
}

VOp CmpBrBase(Opcode op) {
  switch (op) {
    case Opcode::kCmpLt: return VOp::kCmpBrLtF32;
    case Opcode::kCmpLe: return VOp::kCmpBrLeF32;
    case Opcode::kCmpEq: return VOp::kCmpBrEqF32;
    default: return VOp::kCmpBrNeF32;
  }
}

int HistIdx(const Instr& in) {
  return OpHistogram::Index(ClassifyOpcode(in.op), in.type.scalar,
                            LaneIndex(in.type.lanes));
}

/// Pre-broadcasts a kConstI / kConstF immediate exactly as the interpreter
/// materializes it per step.
RegValue BroadcastConst(const Instr& in) {
  RegValue v;
  std::memset(&v, 0, sizeof(v));
  const int lanes = in.type.lanes;
  if (in.op == Opcode::kConstF) {
    if (in.type.scalar == ScalarType::kF32) {
      for (int l = 0; l < lanes; ++l) v.f32[l] = static_cast<float>(in.fimm);
    } else {
      for (int l = 0; l < lanes; ++l) v.f64[l] = in.fimm;
    }
    return v;
  }
  switch (in.type.scalar) {
    case ScalarType::kF32:
      for (int l = 0; l < lanes; ++l) v.f32[l] = static_cast<float>(in.imm);
      break;
    case ScalarType::kF64:
      for (int l = 0; l < lanes; ++l) v.f64[l] = static_cast<double>(in.imm);
      break;
    case ScalarType::kI32:
      for (int l = 0; l < lanes; ++l)
        v.i32[l] = static_cast<std::int32_t>(in.imm);
      break;
    case ScalarType::kI64:
      for (int l = 0; l < lanes; ++l) v.i64[l] = in.imm;
      break;
  }
  return v;
}

}  // namespace

StatusOr<std::shared_ptr<const CompiledProgram>> CompileProgram(
    const Program& program) {
  if (!program.finalized()) {
    return FailedPreconditionError("program not finalized: " + program.name);
  }
  const std::uint32_t n = static_cast<std::uint32_t>(program.code.size());
  const std::size_t num_src_regs = program.regs.size();

  // Pass 1+2: branch targets and the mask-register census.
  std::vector<char> is_target(n + 1, 0);
  std::vector<std::uint32_t> defs(num_src_regs, 0);
  std::vector<std::uint32_t> uses(num_src_regs, 0);
  for (const Instr& in : program.code) {
    if (in.dst >= num_src_regs || in.a >= num_src_regs ||
        in.b >= num_src_regs || in.c >= num_src_regs) {
      return InternalError("register id out of range in kernel '" +
                           program.name + "'");
    }
    ++defs[in.dst];
    ++uses[in.a];
    ++uses[in.b];
    ++uses[in.c];
    switch (in.op) {
      case Opcode::kLoopBegin:
      case Opcode::kLoopEnd:
      case Opcode::kIfBegin:
      case Opcode::kElse: {
        if (in.match > n) {
          return InternalError("malformed control flow in kernel '" +
                               program.name + "'");
        }
        // kElse jumps to its kIfEnd itself (which executes and is counted);
        // everything else jumps past its matching marker.
        is_target[in.op == Opcode::kElse ? in.match : in.match + 1] = 1;
        if (in.op == Opcode::kLoopEnd) {
          // The loop variable and bound live across the back edge; the
          // kLoopEnd reads (and steps) them through the begin instruction.
          const Instr& begin = program.code[in.match];
          ++uses[begin.dst];
          ++uses[begin.b];
        }
        break;
      }
      default:
        break;
    }
  }

  auto cp = std::make_shared<CompiledProgram>();
  cp->name = program.name;
  cp->source_len = n;
  cp->has_barrier = program.has_barrier();
  cp->code.reserve(n);
  cp->src_pc.reserve(n);
  cp->weight.reserve(n);
  cp->tally_begin.reserve(n + 1);
  cp->tally_slots.reserve(n + (n / 8));

  // Slot element sizes (buffer args in decl order, then locals), matching
  // the executor slot tables.
  std::vector<std::uint8_t> slot_shift;
  for (const ArgDecl& arg : program.args) {
    if (arg.kind == ArgKind::kScalar) continue;
    slot_shift.push_back(static_cast<std::uint8_t>(
        std::countr_zero(ScalarBytes(arg.elem))));
  }
  for (const LocalArrayDecl& local : program.locals) {
    slot_shift.push_back(static_cast<std::uint8_t>(
        std::countr_zero(ScalarBytes(local.elem))));
  }

  struct Patch {
    std::uint32_t vidx;
    std::uint32_t src_target;
  };
  std::vector<Patch> patches;
  std::vector<std::uint32_t> vpc_of(n + 1, 0);

  // Pass 3: lowering.
  for (std::uint32_t i = 0; i < n;) {
    const Instr& in = program.code[i];
    const std::uint32_t vpc = static_cast<std::uint32_t>(cp->code.size());
    vpc_of[i] = vpc;
    cp->tally_begin.push_back(
        static_cast<std::uint32_t>(cp->tally_slots.size()));
    cp->src_pc.push_back(i);

    VInstr v;
    v.lanes = in.type.lanes;
    v.dst = in.dst;
    v.a = in.a;
    v.b = in.b;
    v.c = in.c;
    v.imm = in.imm;
    std::uint8_t weight = 1;
    cp->tally_slots.push_back(
        {static_cast<std::int32_t>(HistIdx(in)), in.op});

    // Fusion: a single-def single-use scalar compare feeding the very next
    // kIfBegin (which nothing branches to) folds into one compare-and-branch.
    if (IsCmp(in.op) && in.type.lanes == 1 && in.dst != kNoReg &&
        i + 1 < n && program.code[i + 1].op == Opcode::kIfBegin &&
        program.code[i + 1].a == in.dst && defs[in.dst] == 1 &&
        uses[in.dst] == 1 && !is_target[i + 1]) {
      const Instr& br = program.code[i + 1];
      v.op = Typed4(CmpBrBase(in.op), program.regs[in.a].type.scalar);
      v.dst = kNoReg;  // the mask is never materialized
      v.c = kNoReg;
      v.target = 0;
      patches.push_back({vpc, br.match + 1});
      weight = 2;
      v.weight = weight;
      cp->tally_slots.push_back(
          {static_cast<std::int32_t>(HistIdx(br)), br.op});
      vpc_of[i + 1] = vpc;
      cp->code.push_back(v);
      cp->weight.push_back(weight);
      i += 2;
      continue;
    }

    // Fusion: a load whose very next instruction (not a branch target)
    // consumes the loaded register folds into one load+consumer
    // superinstruction. The load half keeps its own register writes, so no
    // liveness gate is needed — the consumer reads the register file and
    // sees the fresh value in whichever operand slot(s) name it.
    std::uint32_t consumed = 1;
    bool fused_load = false;
    if (in.op == Opcode::kLoad && i + 1 < n && !is_target[i + 1]) {
      const Instr& c = program.code[i + 1];
      const VOp base = LoadConsumerBase(in, c);
      if (base != VOp::kNumVOps) {
        if (in.slot >= slot_shift.size()) {
          return InternalError("memory slot out of range in kernel '" +
                               program.name + "'");
        }
        v.op = FloatPair(base, c.type.scalar);
        v.lanes = c.type.lanes;
        v.dst = c.dst;
        v.a = c.a;
        v.b = c.b;
        v.c = c.c;
        v.slot = in.slot;
        v.aux8 = slot_shift[in.slot];
        v.access_bytes =
            ScalarBytes(in.type.scalar) * static_cast<std::uint32_t>(in.type.lanes);
        v.target = static_cast<std::uint32_t>(in.a) |
                   (static_cast<std::uint32_t>(in.dst) << 16);
        weight = 2;
        cp->tally_slots.push_back(
            {static_cast<std::int32_t>(HistIdx(c)), c.op});
        vpc_of[i + 1] = vpc;
        fused_load = true;
        consumed = 2;
      }
    }

    if (!fused_load) switch (in.op) {
      case Opcode::kConstI:
      case Opcode::kConstF:
        v.op = VOp::kConst;
        v.target = static_cast<std::uint32_t>(cp->const_pool.size());
        v.access_bytes =
            ScalarBytes(in.type.scalar) * static_cast<std::uint32_t>(v.lanes);
        cp->const_pool.push_back(BroadcastConst(in));
        break;
      case Opcode::kArg:
        v.op = Typed4(VOp::kArgF32, in.type.scalar);
        break;
      case Opcode::kGlobalId:
        v.op = VOp::kCtx;
        break;
      case Opcode::kLocalId:
        v.op = VOp::kCtx;
        v.imm = in.imm + 3;
        break;
      case Opcode::kGroupId:
        v.op = VOp::kCtx;
        v.imm = in.imm + 6;
        break;
      case Opcode::kGlobalSize:
        v.op = VOp::kLaunch;
        break;
      case Opcode::kLocalSize:
        v.op = VOp::kLaunch;
        v.imm = in.imm + 3;
        break;
      case Opcode::kNumGroups:
        v.op = VOp::kLaunch;
        v.imm = in.imm + 6;
        break;
      case Opcode::kMov:
        v.op = VOp::kMov;
        break;
      case Opcode::kAdd:
        v.op = Typed4(VOp::kAddF32, in.type.scalar);
        break;
      case Opcode::kSub:
        v.op = Typed4(VOp::kSubF32, in.type.scalar);
        break;
      case Opcode::kMul:
        v.op = Typed4(VOp::kMulF32, in.type.scalar);
        break;
      case Opcode::kDiv:
        v.op = Typed4(VOp::kDivF32, in.type.scalar);
        break;
      case Opcode::kIDiv:
        v.op = IntPair(VOp::kIDivI32, in.type.scalar);
        break;
      case Opcode::kIRem:
        v.op = IntPair(VOp::kIRemI32, in.type.scalar);
        break;
      case Opcode::kMin:
        v.op = Typed4(VOp::kMinF32, in.type.scalar);
        break;
      case Opcode::kMax:
        v.op = Typed4(VOp::kMaxF32, in.type.scalar);
        break;
      case Opcode::kFma:
        v.op = FloatPair(VOp::kFmaF32, in.type.scalar);
        break;
      case Opcode::kNeg:
        v.op = Typed4(VOp::kNegF32, in.type.scalar);
        break;
      case Opcode::kAbs:
        v.op = Typed4(VOp::kAbsF32, in.type.scalar);
        break;
      case Opcode::kFloor:
      case Opcode::kSqrt:
      case Opcode::kRsqrt:
      case Opcode::kExp:
      case Opcode::kLog:
      case Opcode::kSin:
      case Opcode::kCos: {
        const ScalarType t = in.type.scalar;
        if (t != ScalarType::kF32 && t != ScalarType::kF64) {
          // The interpreter faults here at run time; a verified program can
          // never reach it, so surfacing it at compile time loses nothing.
          return InternalError("float-only op on integer register");
        }
        VOp base = VOp::kFloorF32;
        switch (in.op) {
          case Opcode::kFloor: base = VOp::kFloorF32; break;
          case Opcode::kSqrt: base = VOp::kSqrtF32; break;
          case Opcode::kRsqrt: base = VOp::kRsqrtF32; break;
          case Opcode::kExp: base = VOp::kExpF32; break;
          case Opcode::kLog: base = VOp::kLogF32; break;
          case Opcode::kSin: base = VOp::kSinF32; break;
          default: base = VOp::kCosF32; break;
        }
        v.op = FloatPair(base, t);
        break;
      }
      case Opcode::kAnd:
        v.op = IntPair(VOp::kAndI32, in.type.scalar);
        break;
      case Opcode::kOr:
        v.op = IntPair(VOp::kOrI32, in.type.scalar);
        break;
      case Opcode::kXor:
        v.op = IntPair(VOp::kXorI32, in.type.scalar);
        break;
      case Opcode::kNot:
        v.op = IntPair(VOp::kNotI32, in.type.scalar);
        break;
      case Opcode::kShl:
        v.op = IntPair(VOp::kShlI32, in.type.scalar);
        break;
      case Opcode::kShr:
        v.op = IntPair(VOp::kShrI32, in.type.scalar);
        break;
      case Opcode::kCmpLt:
      case Opcode::kCmpLe:
      case Opcode::kCmpEq:
      case Opcode::kCmpNe:
        v.op = Typed4(CmpBase(in.op), program.regs[in.a].type.scalar);
        break;
      case Opcode::kSelect:
        v.op = Typed4(VOp::kSelectF32, in.type.scalar);
        break;
      case Opcode::kConvert:
        v.op = VOp::kCvt;
        v.aux8 = static_cast<std::uint8_t>(
            (static_cast<int>(program.regs[in.a].type.scalar) << 2) |
            static_cast<int>(in.type.scalar));
        break;
      case Opcode::kSplat:
        v.op = Typed4(VOp::kSplatF32, in.type.scalar);
        break;
      case Opcode::kExtract:
        v.op = Typed4(VOp::kExtractF32, in.type.scalar);
        break;
      case Opcode::kInsert:
        v.op = Typed4(VOp::kInsertF32, in.type.scalar);
        break;
      case Opcode::kSlide:
        v.op = Typed4(VOp::kSlideF32, in.type.scalar);
        break;
      case Opcode::kVSum:
        v.op = Typed4(VOp::kVSumF32, in.type.scalar);
        v.aux8 = program.regs[in.a].type.lanes;
        break;
      case Opcode::kLoad:
      case Opcode::kStore:
      case Opcode::kAtomicAddI32:
        v.op = in.op == Opcode::kLoad    ? VOp::kLoad
               : in.op == Opcode::kStore ? VOp::kStore
                                         : VOp::kAtomicAddI32;
        v.slot = in.slot;
        if (in.slot >= slot_shift.size()) {
          return InternalError("memory slot out of range in kernel '" +
                               program.name + "'");
        }
        v.aux8 = slot_shift[in.slot];
        v.access_bytes =
            ScalarBytes(in.type.scalar) * static_cast<std::uint32_t>(v.lanes);
        break;
      case Opcode::kBarrier:
        v.op = VOp::kBarrier;
        weight = 0;  // the interpreter counts barriers in the histogram and
                     // tally but not in step weights (RunToBarrier parity)
        break;
      case Opcode::kLoopBegin:
        v.op = VOp::kLoopBegin;
        patches.push_back({vpc, in.match + 1});
        break;
      case Opcode::kLoopEnd: {
        const Instr& begin = program.code[in.match];
        v.op = VOp::kLoopEnd;
        v.dst = begin.dst;
        v.b = begin.b;
        v.imm = begin.imm;
        patches.push_back({vpc, in.match + 1});
        break;
      }
      case Opcode::kIfBegin:
        v.op = VOp::kBrZero;
        patches.push_back({vpc, in.match + 1});
        break;
      case Opcode::kElse:
        v.op = VOp::kJump;
        patches.push_back({vpc, in.match});
        break;
      case Opcode::kIfEnd:
        v.op = VOp::kNop;
        break;
      case Opcode::kNumOpcodes:
        return InternalError("invalid opcode");
    }

    // Fusion: absorb a trailing kMov of a single-def single-use result by
    // retargeting the destination — the builder's Assign() emits exactly
    // this `op temp; mov var <- temp` shape around every loop-carried
    // update, so reductions collapse by one dispatch per trip.
    if ((fused_load || IsValueOp(in.op)) && v.dst != kNoReg &&
        i + consumed < n && !is_target[i + consumed]) {
      const Instr& mv = program.code[i + consumed];
      if (mv.op == Opcode::kMov && mv.a == v.dst && defs[v.dst] == 1 &&
          uses[v.dst] == 1) {
        v.dst = mv.dst;
        ++weight;
        cp->tally_slots.push_back(
            {static_cast<std::int32_t>(HistIdx(mv)), mv.op});
        vpc_of[i + consumed] = vpc;
        ++consumed;
      }
    }

    // Fusion: a float fma/add or load+fma (possibly with its move absorbed
    // above) immediately followed by its loop's kLoopEnd folds the back
    // edge in — one dispatch then covers the whole tail of a reduction
    // loop body. The counter/bound registers ride in access_bytes (unused
    // for arith; recomputable for the load side). Load+fma additionally
    // needs imm for the step/target packing, so only zero-offset loads
    // qualify.
    if ((v.op == VOp::kFmaF32 || v.op == VOp::kFmaF64 ||
         v.op == VOp::kAddF32 || v.op == VOp::kAddF64 ||
         ((v.op == VOp::kLoadFmaF32 || v.op == VOp::kLoadFmaF64) &&
          v.imm == 0 &&
          v.access_bytes ==
              (static_cast<std::uint32_t>(v.lanes) << v.aux8))) &&
        i + consumed < n && !is_target[i + consumed] &&
        program.code[i + consumed].op == Opcode::kLoopEnd) {
      const Instr& le = program.code[i + consumed];
      const Instr& begin = program.code[le.match];
      switch (v.op) {
        case VOp::kFmaF32: v.op = VOp::kFmaLoopEndF32; break;
        case VOp::kFmaF64: v.op = VOp::kFmaLoopEndF64; break;
        case VOp::kAddF32: v.op = VOp::kAddLoopEndF32; break;
        case VOp::kAddF64: v.op = VOp::kAddLoopEndF64; break;
        case VOp::kLoadFmaF32: v.op = VOp::kLoadFmaLoopEndF32; break;
        default: v.op = VOp::kLoadFmaLoopEndF64; break;
      }
      v.access_bytes = static_cast<std::uint32_t>(begin.dst) |
                       (static_cast<std::uint32_t>(begin.b) << 16);
      if (v.op == VOp::kLoadFmaLoopEndF32 ||
          v.op == VOp::kLoadFmaLoopEndF64) {
        // Step in the low half (same i32 truncation as kLoopEnd), branch
        // target patched into the high half in pass 4.
        v.imm = static_cast<std::int64_t>(
            static_cast<std::uint32_t>(begin.imm));
      } else {
        v.imm = begin.imm;
      }
      patches.push_back({vpc, le.match + 1});
      ++weight;
      cp->tally_slots.push_back(
          {static_cast<std::int32_t>(HistIdx(le)), le.op});
      vpc_of[i + consumed] = vpc;
      ++consumed;
    }

    v.weight = weight;
    cp->code.push_back(v);
    cp->weight.push_back(weight);
    i += consumed;
  }
  vpc_of[n] = static_cast<std::uint32_t>(cp->code.size());
  cp->tally_begin.push_back(
      static_cast<std::uint32_t>(cp->tally_slots.size()));

  // Pass 4: patch branch targets through the src→vpc map. kLoadFmaLoopEnd*
  // keeps its load registers in `target`, so its branch rides in the high
  // half of imm instead.
  for (const Patch& p : patches) {
    VInstr& v = cp->code[p.vidx];
    if (v.op == VOp::kLoadFmaLoopEndF32 || v.op == VOp::kLoadFmaLoopEndF64) {
      v.imm |= static_cast<std::int64_t>(vpc_of[p.src_target]) << 32;
    } else {
      v.target = vpc_of[p.src_target];
    }
  }

  // Pass 5: dense register renumbering (register 0 stays the null reg).
  // Fused superinstructions carry two extra register ids packed into a
  // spare 32-bit field (see bytecode.h); those participate like any other
  // operand.
  std::vector<char> used(num_src_regs, 0);
  for (const VInstr& v : cp->code) {
    used[v.dst] = used[v.a] = used[v.b] = used[v.c] = 1;
    // kLoadFmaLoopEnd* is both load- and back-edge-fused: all four packed
    // register ids participate.
    if (IsBackedgeFused(v.op)) {
      used[v.access_bytes & 0xffff] = used[v.access_bytes >> 16] = 1;
    }
    if (IsLoadFused(v.op)) {
      used[v.target & 0xffff] = used[v.target >> 16] = 1;
    }
  }
  std::vector<RegId> remap(num_src_regs, kNoReg);
  RegId next = 1;
  for (std::size_t r = 1; r < num_src_regs; ++r) {
    if (used[r]) remap[r] = next++;
  }
  for (VInstr& v : cp->code) {
    v.dst = remap[v.dst];
    v.a = remap[v.a];
    v.b = remap[v.b];
    v.c = remap[v.c];
    if (IsBackedgeFused(v.op)) {
      v.access_bytes =
          static_cast<std::uint32_t>(remap[v.access_bytes & 0xffff]) |
          (static_cast<std::uint32_t>(remap[v.access_bytes >> 16]) << 16);
    }
    if (IsLoadFused(v.op)) {
      v.target = static_cast<std::uint32_t>(remap[v.target & 0xffff]) |
                 (static_cast<std::uint32_t>(remap[v.target >> 16]) << 16);
    }
  }
  cp->num_regs = next;

  return std::shared_ptr<const CompiledProgram>(std::move(cp));
}

}  // namespace malisim::kir::vm
