// Dispatch-loop executor for compiled KIR bytecode (bytecode.h).
//
// Drop-in engine behind the kir::Executor facade (interp.h): same launch
// validation, same RunGroup/RunAllGroups surface, same opcode-tally and
// host-time hooks, and — by the accounting contract in bytecode.h —
// bit-identical results, histograms, tallies, step weights and memory-access
// streams to the reference interpreter. The speed comes from executing the
// pre-decoded stream with one dense switch per instruction and deferring
// all histogram/tally work to a per-instruction execution counter that is
// expanded through the compile-time side tables once per work-group.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "kir/exec_types.h"
#include "kir/interp.h"
#include "kir/program.h"
#include "kir/vm/bytecode.h"

namespace malisim::kir::vm {

class VmExecutor {
 public:
  /// Validates geometry and bindings exactly like the interpreter, plus a
  /// sanity check that `code` was compiled from `program`. Both must
  /// outlive the executor; `code` is shared (it is immutable).
  static StatusOr<VmExecutor> Create(
      const Program* program, std::shared_ptr<const CompiledProgram> code,
      LaunchConfig config, Bindings bindings);

  /// Executes one work-group; merges results into `out` (interp contract).
  /// Deferred per-instruction counts are flushed into `out` on every exit,
  /// including faults, so partial counts match the interpreter's.
  Status RunGroup(const std::array<std::uint64_t, 3>& group_id,
                  MemorySink* sink, WorkGroupRun* out);

  /// Executes every work-group in row-major group order.
  Status RunAllGroups(MemorySink* sink, WorkGroupRun* out);

  const LaunchConfig& config() const { return config_; }
  const CompiledProgram& compiled() const { return *code_; }

  /// Per-*source*-opcode tally hook (see InterpExecutor::set_opcode_tally);
  /// fused bytecode ops contribute to every source opcode they stand for.
  void set_opcode_tally(std::uint64_t* tally) { opcode_tally_ = tally; }

  /// Host-time sampling hook (see HostTimeSink). Attribution stays in
  /// source terms: ticks record the *source* pc of the live bytecode
  /// instruction, so per-opcode and per-basic-block profiles keep their
  /// interpreter meaning.
  void set_host_time(HostTimeSink* sink) { host_time_ = sink; }

 private:
  struct Slot {
    std::byte* host = nullptr;
    std::uint64_t sim_addr = 0;
    std::uint64_t size_bytes = 0;
  };

  /// Work-item context words, laid out to match VOp::kCtx immediates:
  /// [0..2] global id, [3..5] local id, [6..8] group id.
  struct ItemCtx {
    std::int32_t v[9];
  };

  enum class StopReason { kDone, kBarrier };

  VmExecutor(const Program* program,
             std::shared_ptr<const CompiledProgram> code, LaunchConfig config,
             Bindings bindings);

  ItemCtx MakeCtx(const std::array<std::uint64_t, 3>& group_id,
                  std::uint64_t t) const;

  Status RunGroupFast(const std::array<std::uint64_t, 3>& group_id,
                      MemorySink* sink, WorkGroupRun* out);
  Status RunGroupPhased(const std::array<std::uint64_t, 3>& group_id,
                        MemorySink* sink, WorkGroupRun* out);

  /// Runs one work-item from *pc until completion, fault, or barrier.
  StatusOr<StopReason> RunItem(const ItemCtx& ctx, RegValue* regs,
                               std::uint32_t* pc, MemorySink* sink,
                               WorkGroupRun* out);
  /// kProf gates the host-time countdown; kNullSink elides the per-access
  /// virtual sink dispatch when the sink discards events (RunProgram's
  /// functional runs) — both are specialized out of the hot loop.
  template <bool kProf, bool kNullSink>
  StatusOr<StopReason> RunItemImpl(const ItemCtx& ctx, RegValue* regs,
                                   std::uint32_t* pc, MemorySink* sink,
                                   WorkGroupRun* out);

  /// Expands the deferred per-instruction execution counts through the
  /// tally side tables into the histogram and opcode tally, then zeroes
  /// them. Called on every RunGroup exit.
  void FlushCounts(WorkGroupRun* out);

  static constexpr std::uint32_t kNoFault = ~std::uint32_t{0};

  const Program* p_;
  std::shared_ptr<const CompiledProgram> code_;
  std::uint64_t steps_executed_ = 0;  // source-step weights (interp parity)
  /// vpc of the instruction that faulted, or kNoFault. FlushCounts backs
  /// out what the interpreter never counted: the faulted access's traffic,
  /// and the tally slots of fused source steps after the faulting first
  /// one (see FlushCounts).
  std::uint32_t fault_vpc_ = kNoFault;
  LaunchConfig config_;
  Bindings bindings_;
  std::vector<Slot> slots_;
  std::int32_t launch_v_[9];  // kLaunch words: global/local size, num groups
  std::uint32_t num_regs_ = 0;  // compacted register-file size
  std::vector<RegValue> reg_arena_;
  std::vector<std::uint64_t> vcount_;  // deferred per-vpc execution counts
  // Barrier-path scratch, hoisted to construction (one allocation per
  // executor instead of three per work-group).
  std::vector<std::uint32_t> barrier_pcs_;
  std::vector<ItemCtx> barrier_ctxs_;
  std::vector<std::uint64_t> barrier_weights_;
  std::uint64_t* opcode_tally_ = nullptr;
  HostTimeSink* host_time_ = nullptr;
};

}  // namespace malisim::kir::vm
