#include "kir/vm/vm.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>

namespace malisim::kir::vm {

StatusOr<VmExecutor> VmExecutor::Create(
    const Program* program, std::shared_ptr<const CompiledProgram> code,
    LaunchConfig config, Bindings bindings) {
  MALI_CHECK(program != nullptr && code != nullptr);
  MALI_RETURN_IF_ERROR(ValidateLaunch(*program, config, bindings));
  if (code->source_len != program->code.size() ||
      code->name != program->name) {
    return InternalError("bytecode does not match program '" + program->name +
                         "'");
  }
  return VmExecutor(program, std::move(code), config, std::move(bindings));
}

VmExecutor::VmExecutor(const Program* program,
                       std::shared_ptr<const CompiledProgram> code,
                       LaunchConfig config, Bindings bindings)
    : p_(program),
      code_(std::move(code)),
      config_(config),
      bindings_(std::move(bindings)) {
  num_regs_ = code_->num_regs;

  // Slot table: buffer args first, then locals carved out of the scratch —
  // identical to the interpreter (the bytecode burned the element sizes).
  std::size_t buf_idx = 0;
  for (const ArgDecl& arg : p_->args) {
    if (arg.kind == ArgKind::kScalar) continue;
    const BufferBinding& b = bindings_.buffers[buf_idx++];
    slots_.push_back({b.host, b.sim_addr, b.size_bytes});
  }
  std::uint64_t local_off = 0;
  for (const LocalArrayDecl& local : p_->locals) {
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(local.elems) * ScalarBytes(local.elem);
    slots_.push_back({bindings_.local_scratch.host + local_off,
                      bindings_.local_scratch.sim_addr + local_off, bytes});
    local_off += bytes;
  }

  const auto groups = config_.num_groups();
  for (int d = 0; d < 3; ++d) {
    launch_v_[d] = static_cast<std::int32_t>(config_.global_size[d]);
    launch_v_[3 + d] = static_cast<std::int32_t>(config_.local_size[d]);
    launch_v_[6 + d] = static_cast<std::int32_t>(groups[d]);
  }

  vcount_.assign(code_->code.size(), 0);

  const std::uint64_t wg =
      code_->has_barrier ? config_.work_group_size() : 1;
  reg_arena_.resize(wg * num_regs_);
  if (code_->has_barrier) {
    barrier_pcs_.resize(wg);
    barrier_weights_.resize(wg);
    barrier_ctxs_.reserve(wg);
  }
}

VmExecutor::ItemCtx VmExecutor::MakeCtx(
    const std::array<std::uint64_t, 3>& group_id, std::uint64_t t) const {
  ItemCtx ctx;
  const std::uint64_t l0 = config_.local_size[0];
  const std::uint64_t l1 = config_.local_size[1];
  const std::uint64_t local[3] = {t % l0, (t / l0) % l1, t / (l0 * l1)};
  for (int d = 0; d < 3; ++d) {
    ctx.v[d] = static_cast<std::int32_t>(
        group_id[d] * config_.local_size[d] + local[d]);
    ctx.v[3 + d] = static_cast<std::int32_t>(local[d]);
    ctx.v[6 + d] = static_cast<std::int32_t>(group_id[d]);
  }
  return ctx;
}

Status VmExecutor::RunGroup(const std::array<std::uint64_t, 3>& group_id,
                            MemorySink* sink, WorkGroupRun* out) {
  MALI_CHECK(sink != nullptr && out != nullptr);
  const auto groups = config_.num_groups();
  for (int d = 0; d < 3; ++d) {
    if (group_id[d] >= groups[d]) {
      return OutOfRangeError("group id out of range");
    }
  }
  const Status st = code_->has_barrier ? RunGroupPhased(group_id, sink, out)
                                       : RunGroupFast(group_id, sink, out);
  // Flush on faults too: the interpreter counts every instruction it
  // reached (including the faulting one), and so do the deferred counts.
  FlushCounts(out);
  return st;
}

Status VmExecutor::RunAllGroups(MemorySink* sink, WorkGroupRun* out) {
  const auto groups = config_.num_groups();
  for (std::uint64_t gz = 0; gz < groups[2]; ++gz) {
    for (std::uint64_t gy = 0; gy < groups[1]; ++gy) {
      for (std::uint64_t gx = 0; gx < groups[0]; ++gx) {
        MALI_RETURN_IF_ERROR(RunGroup({gx, gy, gz}, sink, out));
      }
    }
  }
  return Status::Ok();
}

Status VmExecutor::RunGroupFast(const std::array<std::uint64_t, 3>& group_id,
                                MemorySink* sink, WorkGroupRun* out) {
  const std::uint64_t wg = config_.work_group_size();
  RegValue* regs = reg_arena_.data();
  std::uint64_t max_item_weight = 0;
  const std::uint64_t group_start = steps_executed_;
  for (std::uint64_t t = 0; t < wg; ++t) {
    std::memset(static_cast<void*>(regs), 0, sizeof(RegValue) * num_regs_);
    const ItemCtx ctx = MakeCtx(group_id, t);
    const std::uint64_t item_start = steps_executed_;
    std::uint32_t pc = 0;
    StatusOr<StopReason> stop = RunItem(ctx, regs, &pc, sink, out);
    if (!stop.ok()) return stop.status();
    if (*stop == StopReason::kBarrier) {
      return InternalError("barrier reached outside phased execution");
    }
    max_item_weight = std::max(max_item_weight, steps_executed_ - item_start);
    ++out->work_items;
  }
  out->item_weight_sum += steps_executed_ - group_start;
  out->weighted_group_cost += max_item_weight * wg;
  return Status::Ok();
}

Status VmExecutor::RunGroupPhased(const std::array<std::uint64_t, 3>& group_id,
                                  MemorySink* sink, WorkGroupRun* out) {
  const std::uint64_t wg = config_.work_group_size();
  std::memset(static_cast<void*>(reg_arena_.data()), 0,
              sizeof(RegValue) * reg_arena_.size());
  std::fill(barrier_pcs_.begin(), barrier_pcs_.end(), 0u);
  std::fill(barrier_weights_.begin(), barrier_weights_.end(),
            std::uint64_t{0});
  barrier_ctxs_.clear();
  for (std::uint64_t t = 0; t < wg; ++t) {
    barrier_ctxs_.push_back(MakeCtx(group_id, t));
  }

  const std::uint64_t group_start = steps_executed_;
  bool done = false;
  while (!done) {
    std::uint64_t finished = 0;
    std::uint64_t at_barrier = 0;
    for (std::uint64_t t = 0; t < wg; ++t) {
      RegValue* regs = reg_arena_.data() + t * num_regs_;
      const std::uint64_t item_start = steps_executed_;
      StatusOr<StopReason> stop =
          RunItem(barrier_ctxs_[t], regs, &barrier_pcs_[t], sink, out);
      barrier_weights_[t] += steps_executed_ - item_start;
      if (!stop.ok()) return stop.status();
      if (*stop == StopReason::kDone) {
        ++finished;
      } else {
        ++at_barrier;
      }
    }
    if (at_barrier > 0 && finished > 0) {
      return InvalidArgumentError(
          "barrier divergence in kernel '" + p_->name +
          "': not all work-items reach the same barrier");
    }
    if (at_barrier > 0) ++out->barriers_crossed;
    done = finished == wg;
  }
  out->work_items += wg;
  std::uint64_t max_item_weight = 0;
  for (std::uint64_t w : barrier_weights_) {
    max_item_weight = std::max(max_item_weight, w);
  }
  out->item_weight_sum += steps_executed_ - group_start;
  out->weighted_group_cost += max_item_weight * wg;
  return Status::Ok();
}

StatusOr<VmExecutor::StopReason> VmExecutor::RunItem(const ItemCtx& ctx,
                                                     RegValue* regs,
                                                     std::uint32_t* pc,
                                                     MemorySink* sink,
                                                     WorkGroupRun* out) {
  if (sink->discards_events()) {
    return host_time_ != nullptr
               ? RunItemImpl<true, true>(ctx, regs, pc, sink, out)
               : RunItemImpl<false, true>(ctx, regs, pc, sink, out);
  }
  return host_time_ != nullptr
             ? RunItemImpl<true, false>(ctx, regs, pc, sink, out)
             : RunItemImpl<false, false>(ctx, regs, pc, sink, out);
}

namespace {

/// memcpy with the common access widths pinned to constants so the copies
/// inline to plain moves instead of a libc call with a runtime size.
inline void CopyBytes(void* dst, const void* src, std::uint32_t n) {
  switch (n) {
    case 4: std::memcpy(dst, src, 4); break;
    case 8: std::memcpy(dst, src, 8); break;
    case 16: std::memcpy(dst, src, 16); break;
    case 32: std::memcpy(dst, src, 32); break;
    case 64: std::memcpy(dst, src, 64); break;
    default: std::memcpy(dst, src, n); break;
  }
}

/// Lane loop with constant-trip fast paths. lanes==1 (scalar index math,
/// loop counters) and lanes==4 (the paper's preferred float4 width) are by
/// far the hottest shapes; pinning their trip counts lets the compiler
/// drop the loop entirely (1) or unroll + vectorize (4). `body` sees `l`.
/// Semantics are identical to the plain runtime-trip loop for every width.
#define MALISIM_VM_LANES(body)                                               \
  do {                                                                       \
    if (lanes == 1) {                                                        \
      const int l = 0;                                                       \
      body;                                                                  \
    } else if (lanes == 4) {                                                 \
      for (int l = 0; l < 4; ++l) { body; }                                  \
    } else {                                                                 \
      for (int l = 0; l < lanes; ++l) { body; }                              \
    }                                                                        \
  } while (0)

/// Lane-wise binary operator over all four scalar types.
#define MALISIM_VM_BIN(NAME, OPR)                                            \
  case VOp::NAME##F32:                                                       \
    MALISIM_VM_LANES(D.f32[l] = A.f32[l] OPR B.f32[l]);                      \
    break;                                                                   \
  case VOp::NAME##F64:                                                       \
    MALISIM_VM_LANES(D.f64[l] = A.f64[l] OPR B.f64[l]);                      \
    break;                                                                   \
  case VOp::NAME##I32:                                                       \
    MALISIM_VM_LANES(D.i32[l] = A.i32[l] OPR B.i32[l]);                      \
    break;                                                                   \
  case VOp::NAME##I64:                                                       \
    MALISIM_VM_LANES(D.i64[l] = A.i64[l] OPR B.i64[l]);                      \
    break;

/// Lane-wise binary function (min/max style, distinct float/int funcs).
#define MALISIM_VM_BIN_FN(NAME, FFN, IFN)                                    \
  case VOp::NAME##F32:                                                       \
    MALISIM_VM_LANES(D.f32[l] = FFN(A.f32[l], B.f32[l]));                    \
    break;                                                                   \
  case VOp::NAME##F64:                                                       \
    MALISIM_VM_LANES(D.f64[l] = FFN(A.f64[l], B.f64[l]));                    \
    break;                                                                   \
  case VOp::NAME##I32:                                                       \
    MALISIM_VM_LANES(D.i32[l] = IFN(A.i32[l], B.i32[l]));                    \
    break;                                                                   \
  case VOp::NAME##I64:                                                       \
    MALISIM_VM_LANES(D.i64[l] = IFN(A.i64[l], B.i64[l]));                    \
    break;

/// Lane-wise float unary function pair.
#define MALISIM_VM_UN_F(NAME, FN32, FN64)                                    \
  case VOp::NAME##F32:                                                       \
    MALISIM_VM_LANES(D.f32[l] = FN32(A.f32[l]));                             \
    break;                                                                   \
  case VOp::NAME##F64:                                                       \
    MALISIM_VM_LANES(D.f64[l] = FN64(A.f64[l]));                             \
    break;

/// Lane-wise integer bitwise binary operator pair.
#define MALISIM_VM_BIN_I(NAME, OPR)                                          \
  case VOp::NAME##I32:                                                       \
    MALISIM_VM_LANES(D.i32[l] = A.i32[l] OPR B.i32[l]);                      \
    break;                                                                   \
  case VOp::NAME##I64:                                                       \
    MALISIM_VM_LANES(D.i64[l] = A.i64[l] OPR B.i64[l]);                      \
    break;

/// Lane-wise comparison into an i32 mask, per source type.
#define MALISIM_VM_CMP(NAME, OPR)                                            \
  case VOp::NAME##F32:                                                       \
    MALISIM_VM_LANES(D.i32[l] = A.f32[l] OPR B.f32[l]);                      \
    break;                                                                   \
  case VOp::NAME##F64:                                                       \
    MALISIM_VM_LANES(D.i32[l] = A.f64[l] OPR B.f64[l]);                      \
    break;                                                                   \
  case VOp::NAME##I32:                                                       \
    MALISIM_VM_LANES(D.i32[l] = A.i32[l] OPR B.i32[l]);                      \
    break;                                                                   \
  case VOp::NAME##I64:                                                       \
    MALISIM_VM_LANES(D.i32[l] = A.i64[l] OPR B.i64[l]);                      \
    break;

/// Fused scalar compare-and-branch: jump when the condition is FALSE.
/// (Step weights come from the dispatch-time `steps += weight`.)
#define MALISIM_VM_CMPBR(NAME, OPR)                                          \
  case VOp::NAME##F32:                                                       \
    if (!(A.f32[0] OPR B.f32[0])) next = in.target;                          \
    break;                                                                   \
  case VOp::NAME##F64:                                                       \
    if (!(A.f64[0] OPR B.f64[0])) next = in.target;                          \
    break;                                                                   \
  case VOp::NAME##I32:                                                       \
    if (!(A.i32[0] OPR B.i32[0])) next = in.target;                          \
    break;                                                                   \
  case VOp::NAME##I64:                                                       \
    if (!(A.i64[0] OPR B.i64[0])) next = in.target;                          \
    break;

/// Lane-wise typed cases for splat/extract/insert/select/slide/vsum.
#define MALISIM_VM_TYPED_CASES(NAME, F32_BODY, F64_BODY, I32_BODY, I64_BODY) \
  case VOp::NAME##F32: F32_BODY break;                                       \
  case VOp::NAME##F64: F64_BODY break;                                       \
  case VOp::NAME##I32: I32_BODY break;                                       \
  case VOp::NAME##I64: I64_BODY break;

/// Fused arithmetic + loop back-edge: BODY, then the matching kLoopEnd's
/// counter step and conditional jump. Counter and bound register ids are
/// packed into access_bytes (bytecode.h).
#define MALISIM_VM_BACKEDGE(NAME, BODY)                                      \
  case VOp::NAME: {                                                          \
    BODY;                                                                    \
    RegValue& cnt = regs[in.access_bytes & 0xffff];                          \
    cnt.i32[0] += static_cast<std::int32_t>(in.imm);                         \
    if (cnt.i32[0] < regs[in.access_bytes >> 16].i32[0]) next = in.target;   \
    break;                                                                   \
  }

/// Fused load + consumer: a full kLoad (index register and load destination
/// packed into target, bytecode.h), then the consumer BODY over D/A/B/C.
#define MALISIM_VM_LOADOP(NAME, BODY)                                        \
  case VOp::NAME: {                                                          \
    const Slot& slot = slots[in.slot];                                       \
    const std::int64_t elem =                                                \
        static_cast<std::int64_t>(regs[in.target & 0xffff].i32[0]) + in.imm; \
    const std::uint64_t off = static_cast<std::uint64_t>(elem) << in.aux8;   \
    if (elem < 0 || off + in.access_bytes > slot.size_bytes) {               \
      MALISIM_VM_FAULT(OutOfRangeError(                                      \
          "load out of bounds in kernel '" + p_->name + "' (element " +      \
          std::to_string(elem) + ")"));                                      \
    }                                                                        \
    CopyBytes(regs[in.target >> 16].raw, slot.host + off, in.access_bytes);  \
    if constexpr (!kNullSink) {                                              \
      sink->OnAccess(slot.sim_addr + off, in.access_bytes, false);           \
    }                                                                        \
    BODY;                                                                    \
    break;                                                                   \
  }

/// The triple fusion: a zero-offset kLoad (byte count = lanes << aux8,
/// since load and consumer widths match by construction), the consumer
/// BODY, then the loop back-edge. imm packs step | branch-target << 32
/// (bytecode.h).
#define MALISIM_VM_LOADBACKEDGE(NAME, BODY)                                  \
  case VOp::NAME: {                                                          \
    const Slot& slot = slots[in.slot];                                       \
    const std::uint32_t bytes = static_cast<std::uint32_t>(in.lanes)         \
                                << in.aux8;                                  \
    const std::int64_t elem =                                                \
        static_cast<std::int64_t>(regs[in.target & 0xffff].i32[0]);          \
    const std::uint64_t off = static_cast<std::uint64_t>(elem) << in.aux8;   \
    if (elem < 0 || off + bytes > slot.size_bytes) {                         \
      MALISIM_VM_FAULT(OutOfRangeError(                                      \
          "load out of bounds in kernel '" + p_->name + "' (element " +      \
          std::to_string(elem) + ")"));                                      \
    }                                                                        \
    CopyBytes(regs[in.target >> 16].raw, slot.host + off, bytes);            \
    if constexpr (!kNullSink) {                                              \
      sink->OnAccess(slot.sim_addr + off, bytes, false);                     \
    }                                                                        \
    BODY;                                                                    \
    RegValue& cnt = regs[in.access_bytes & 0xffff];                          \
    cnt.i32[0] += static_cast<std::int32_t>(in.imm);                         \
    if (cnt.i32[0] < regs[in.access_bytes >> 16].i32[0]) {                   \
      next = static_cast<std::uint32_t>(                                     \
          static_cast<std::uint64_t>(in.imm) >> 32);                         \
    }                                                                        \
    break;                                                                   \
  }

}  // namespace

template <bool kProf, bool kNullSink>
StatusOr<VmExecutor::StopReason> VmExecutor::RunItemImpl(
    const ItemCtx& ctx, RegValue* regs, std::uint32_t* pc, MemorySink* sink,
    WorkGroupRun* out) {
  (void)sink;  // unused in the kNullSink specialization
  (void)out;   // all accounting is deferred to FlushCounts
  const CompiledProgram& cp = *code_;
  const VInstr* const code = cp.code.data();
  const std::uint32_t end = static_cast<std::uint32_t>(cp.code.size());
  std::uint64_t* const vcount = vcount_.data();
  // Hoisted member pointers: every store through `out` or the slot host
  // memory could alias `this` as far as the compiler knows, forcing the
  // vector data pointers to be reloaded each iteration. Const locals pin
  // them in registers for the whole item.
  const Slot* const slots = slots_.data();
  const RegValue* const cpool = cp.const_pool.data();
  const ScalarValue* const scalars = bindings_.scalars.data();
  std::uint64_t steps = 0;
  std::uint32_t vpc = *pc;

// Runtime fault: commit the step count and suspension point, then surface
// the error. The interpreter counts the faulting source step (count-before-
// execute) but never reaches the later steps of a fused pair, so the
// dispatch-time `steps += weight` is trimmed back to 1 for this
// instruction; FlushCounts likewise backs the unreached tally slots (and
// any memory-traffic counters) out via fault_vpc_.
#define MALISIM_VM_FAULT(expr)                                  \
  do {                                                          \
    steps_executed_ += steps - (in.weight - std::uint64_t{1});  \
    fault_vpc_ = vpc;                                           \
    *pc = vpc;                                                  \
    return (expr);                                              \
  } while (0)

  while (vpc < end) {
    const VInstr& in = code[vpc];
    ++vcount[vpc];
    steps += in.weight;
    if constexpr (kProf) {
      // Sampling stays in source terms: the tick records the live
      // instruction's *source* pc, so op/block attribution matches the
      // interpreter's (fused instructions attribute to their compare).
      if (--host_time_->countdown == 0) {
        HostTimeSinkTick(host_time_, *p_, cp.src_pc[vpc]);
      }
    }
    RegValue& D = regs[in.dst];
    const RegValue& A = regs[in.a];
    const RegValue& B = regs[in.b];
    const RegValue& C = regs[in.c];
    const int lanes = in.lanes;
    std::uint32_t next = vpc + 1;
    switch (in.op) {
      case VOp::kNop:
        break;
      case VOp::kConst:
        CopyBytes(D.raw, cpool[in.target].raw, in.access_bytes);
        break;
      case VOp::kCtx:
        D.i32[0] = ctx.v[in.imm];
        break;
      case VOp::kLaunch:
        D.i32[0] = launch_v_[in.imm];
        break;
      case VOp::kMov:
        D = A;
        break;
      case VOp::kCvt: {
        const ScalarType from = static_cast<ScalarType>(in.aux8 >> 2);
        const ScalarType to = static_cast<ScalarType>(in.aux8 & 3);
        for (int l = 0; l < lanes; ++l) {
          double fv = 0.0;
          std::int64_t iv = 0;
          bool is_float_src = true;
          switch (from) {
            case ScalarType::kF32: fv = static_cast<double>(A.f32[l]); break;
            case ScalarType::kF64: fv = A.f64[l]; break;
            case ScalarType::kI32: iv = A.i32[l]; is_float_src = false; break;
            case ScalarType::kI64: iv = A.i64[l]; is_float_src = false; break;
          }
          switch (to) {
            case ScalarType::kF32:
              D.f32[l] = is_float_src ? static_cast<float>(fv)
                                      : static_cast<float>(iv);
              break;
            case ScalarType::kF64:
              D.f64[l] = is_float_src ? fv : static_cast<double>(iv);
              break;
            case ScalarType::kI32:
              D.i32[l] = is_float_src ? static_cast<std::int32_t>(fv)
                                      : static_cast<std::int32_t>(iv);
              break;
            case ScalarType::kI64:
              D.i64[l] = is_float_src ? static_cast<std::int64_t>(fv) : iv;
              break;
          }
        }
        break;
      }
      case VOp::kArgF32:
        D.f32[0] =
            static_cast<float>(scalars[static_cast<std::size_t>(in.imm)].f);
        break;
      case VOp::kArgF64:
        D.f64[0] = scalars[static_cast<std::size_t>(in.imm)].f;
        break;
      case VOp::kArgI32:
        D.i32[0] = static_cast<std::int32_t>(
            scalars[static_cast<std::size_t>(in.imm)].i);
        break;
      case VOp::kArgI64:
        D.i64[0] = scalars[static_cast<std::size_t>(in.imm)].i;
        break;
      MALISIM_VM_BIN(kAdd, +)
      MALISIM_VM_BIN(kSub, -)
      MALISIM_VM_BIN(kMul, *)
      case VOp::kDivF32:
        MALISIM_VM_LANES(D.f32[l] = A.f32[l] / B.f32[l]);
        break;
      case VOp::kDivF64:
        MALISIM_VM_LANES(D.f64[l] = A.f64[l] / B.f64[l]);
        break;
      case VOp::kDivI32:
      case VOp::kIDivI32:
        for (int l = 0; l < lanes; ++l) {
          if (B.i32[l] == 0) {
            MALISIM_VM_FAULT(InvalidArgumentError("integer division by zero"));
          }
          D.i32[l] = A.i32[l] / B.i32[l];
        }
        break;
      case VOp::kDivI64:
      case VOp::kIDivI64:
        for (int l = 0; l < lanes; ++l) {
          if (B.i64[l] == 0) {
            MALISIM_VM_FAULT(InvalidArgumentError("integer division by zero"));
          }
          D.i64[l] = A.i64[l] / B.i64[l];
        }
        break;
      case VOp::kIRemI32:
        for (int l = 0; l < lanes; ++l) {
          if (B.i32[l] == 0) {
            MALISIM_VM_FAULT(InvalidArgumentError("integer division by zero"));
          }
          D.i32[l] = A.i32[l] % B.i32[l];
        }
        break;
      case VOp::kIRemI64:
        for (int l = 0; l < lanes; ++l) {
          if (B.i64[l] == 0) {
            MALISIM_VM_FAULT(InvalidArgumentError("integer division by zero"));
          }
          D.i64[l] = A.i64[l] % B.i64[l];
        }
        break;
      MALISIM_VM_BIN_FN(kMin, std::fmin, std::min)
      MALISIM_VM_BIN_FN(kMax, std::fmax, std::max)
      case VOp::kFmaF32:
        MALISIM_VM_LANES(D.f32[l] = A.f32[l] * B.f32[l] + C.f32[l]);
        break;
      case VOp::kFmaF64:
        MALISIM_VM_LANES(D.f64[l] = A.f64[l] * B.f64[l] + C.f64[l]);
        break;
      case VOp::kNegF32:
        MALISIM_VM_LANES(D.f32[l] = -A.f32[l]);
        break;
      case VOp::kNegF64:
        MALISIM_VM_LANES(D.f64[l] = -A.f64[l]);
        break;
      case VOp::kNegI32:
        MALISIM_VM_LANES(D.i32[l] = -A.i32[l]);
        break;
      case VOp::kNegI64:
        MALISIM_VM_LANES(D.i64[l] = -A.i64[l]);
        break;
      case VOp::kAbsF32:
        MALISIM_VM_LANES(D.f32[l] = std::fabs(A.f32[l]));
        break;
      case VOp::kAbsF64:
        MALISIM_VM_LANES(D.f64[l] = std::fabs(A.f64[l]));
        break;
      case VOp::kAbsI32:
        MALISIM_VM_LANES(D.i32[l] = std::abs(A.i32[l]));
        break;
      case VOp::kAbsI64:
        MALISIM_VM_LANES(D.i64[l] = std::llabs(A.i64[l]));
        break;
      MALISIM_VM_UN_F(kFloor, std::floor, std::floor)
      MALISIM_VM_UN_F(kSqrt, std::sqrt, std::sqrt)
      MALISIM_VM_UN_F(kRsqrt, 1.0f / std::sqrt, 1.0 / std::sqrt)
      MALISIM_VM_UN_F(kExp, std::exp, std::exp)
      MALISIM_VM_UN_F(kLog, std::log, std::log)
      MALISIM_VM_UN_F(kSin, std::sin, std::sin)
      MALISIM_VM_UN_F(kCos, std::cos, std::cos)
      MALISIM_VM_BIN_I(kAnd, &)
      MALISIM_VM_BIN_I(kOr, |)
      MALISIM_VM_BIN_I(kXor, ^)
      case VOp::kNotI32:
        MALISIM_VM_LANES(D.i32[l] = ~A.i32[l]);
        break;
      case VOp::kNotI64:
        MALISIM_VM_LANES(D.i64[l] = ~A.i64[l]);
        break;
      case VOp::kShlI32:
        MALISIM_VM_LANES(D.i32[l] = static_cast<std::int32_t>(
                             static_cast<std::uint32_t>(A.i32[l]) << in.imm));
        break;
      case VOp::kShlI64:
        MALISIM_VM_LANES(D.i64[l] = static_cast<std::int64_t>(
                             static_cast<std::uint64_t>(A.i64[l]) << in.imm));
        break;
      case VOp::kShrI32:
        MALISIM_VM_LANES(D.i32[l] = static_cast<std::int32_t>(
                             static_cast<std::uint32_t>(A.i32[l]) >> in.imm));
        break;
      case VOp::kShrI64:
        MALISIM_VM_LANES(D.i64[l] = static_cast<std::int64_t>(
                             static_cast<std::uint64_t>(A.i64[l]) >> in.imm));
        break;
      MALISIM_VM_CMP(kCmpLt, <)
      MALISIM_VM_CMP(kCmpLe, <=)
      MALISIM_VM_CMP(kCmpEq, ==)
      MALISIM_VM_CMP(kCmpNe, !=)
      MALISIM_VM_CMPBR(kCmpBrLt, <)
      MALISIM_VM_CMPBR(kCmpBrLe, <=)
      MALISIM_VM_CMPBR(kCmpBrEq, ==)
      MALISIM_VM_CMPBR(kCmpBrNe, !=)
      MALISIM_VM_TYPED_CASES(kSelect,
          { MALISIM_VM_LANES(D.f32[l] = A.i32[l] ? B.f32[l] : C.f32[l]); },
          { MALISIM_VM_LANES(D.f64[l] = A.i32[l] ? B.f64[l] : C.f64[l]); },
          { MALISIM_VM_LANES(D.i32[l] = A.i32[l] ? B.i32[l] : C.i32[l]); },
          { MALISIM_VM_LANES(D.i64[l] = A.i32[l] ? B.i64[l] : C.i64[l]); })
      MALISIM_VM_TYPED_CASES(kSplat,
          { MALISIM_VM_LANES(D.f32[l] = A.f32[0]); },
          { MALISIM_VM_LANES(D.f64[l] = A.f64[0]); },
          { MALISIM_VM_LANES(D.i32[l] = A.i32[0]); },
          { MALISIM_VM_LANES(D.i64[l] = A.i64[0]); })
      MALISIM_VM_TYPED_CASES(kExtract,
          { D.f32[0] = A.f32[in.imm]; },
          { D.f64[0] = A.f64[in.imm]; },
          { D.i32[0] = A.i32[in.imm]; },
          { D.i64[0] = A.i64[in.imm]; })
      MALISIM_VM_TYPED_CASES(kInsert,
          { D = A; D.f32[in.imm] = B.f32[0]; },
          { D = A; D.f64[in.imm] = B.f64[0]; },
          { D = A; D.i32[in.imm] = B.i32[0]; },
          { D = A; D.i64[in.imm] = B.i64[0]; })
      case VOp::kSlideF32: {
        const int shift = static_cast<int>(in.imm);
        RegValue tmp;  // allow dst aliasing a or b
        for (int l = 0; l < lanes; ++l) {
          const int s = l + shift;
          tmp.f32[l] = s < lanes ? A.f32[s] : B.f32[s - lanes];
        }
        for (int l = 0; l < lanes; ++l) D.f32[l] = tmp.f32[l];
        break;
      }
      case VOp::kSlideF64: {
        const int shift = static_cast<int>(in.imm);
        RegValue tmp;
        for (int l = 0; l < lanes; ++l) {
          const int s = l + shift;
          tmp.f64[l] = s < lanes ? A.f64[s] : B.f64[s - lanes];
        }
        for (int l = 0; l < lanes; ++l) D.f64[l] = tmp.f64[l];
        break;
      }
      case VOp::kSlideI32: {
        const int shift = static_cast<int>(in.imm);
        RegValue tmp;
        for (int l = 0; l < lanes; ++l) {
          const int s = l + shift;
          tmp.i32[l] = s < lanes ? A.i32[s] : B.i32[s - lanes];
        }
        for (int l = 0; l < lanes; ++l) D.i32[l] = tmp.i32[l];
        break;
      }
      case VOp::kSlideI64: {
        const int shift = static_cast<int>(in.imm);
        RegValue tmp;
        for (int l = 0; l < lanes; ++l) {
          const int s = l + shift;
          tmp.i64[l] = s < lanes ? A.i64[s] : B.i64[s - lanes];
        }
        for (int l = 0; l < lanes; ++l) D.i64[l] = tmp.i64[l];
        break;
      }
      MALISIM_VM_TYPED_CASES(kVSum,
          { float s = 0.0f;
            for (int l = 0; l < in.aux8; ++l) s += A.f32[l];
            D.f32[0] = s; },
          { double s = 0.0;
            for (int l = 0; l < in.aux8; ++l) s += A.f64[l];
            D.f64[0] = s; },
          { std::int32_t s = 0;
            for (int l = 0; l < in.aux8; ++l) s += A.i32[l];
            D.i32[0] = s; },
          { std::int64_t s = 0;
            for (int l = 0; l < in.aux8; ++l) s += A.i64[l];
            D.i64[0] = s; })
      case VOp::kLoad: {
        const Slot& slot = slots[in.slot];
        const std::int64_t elem =
            static_cast<std::int64_t>(A.i32[0]) + in.imm;
        const std::uint64_t off = static_cast<std::uint64_t>(elem) << in.aux8;
        if (elem < 0 || off + in.access_bytes > slot.size_bytes) {
          MALISIM_VM_FAULT(OutOfRangeError(
              "load out of bounds in kernel '" + p_->name + "' (element " +
              std::to_string(elem) + ")"));
        }
        CopyBytes(D.raw, slot.host + off, in.access_bytes);
        if constexpr (!kNullSink) {
          sink->OnAccess(slot.sim_addr + off, in.access_bytes, false);
        }
        break;
      }
      case VOp::kStore: {
        const Slot& slot = slots[in.slot];
        const std::int64_t elem =
            static_cast<std::int64_t>(B.i32[0]) + in.imm;
        const std::uint64_t off = static_cast<std::uint64_t>(elem) << in.aux8;
        if (elem < 0 || off + in.access_bytes > slot.size_bytes) {
          MALISIM_VM_FAULT(OutOfRangeError(
              "store out of bounds in kernel '" + p_->name + "' (element " +
              std::to_string(elem) + ")"));
        }
        CopyBytes(slot.host + off, A.raw, in.access_bytes);
        if constexpr (!kNullSink) {
          sink->OnAccess(slot.sim_addr + off, in.access_bytes, true);
        }
        break;
      }
      case VOp::kAtomicAddI32: {
        const Slot& slot = slots[in.slot];
        const std::int64_t elem =
            static_cast<std::int64_t>(B.i32[0]) + in.imm;
        const std::uint64_t off = static_cast<std::uint64_t>(elem) << in.aux8;
        if (elem < 0 || off + 4 > slot.size_bytes) {
          MALISIM_VM_FAULT(OutOfRangeError(
              "atomic out of bounds in kernel '" + p_->name + "'"));
        }
        // Real atomic RMW (see the interpreter): work-groups may execute on
        // concurrent host threads and integer addition commutes, so the
        // final image is bit-identical for every interleaving.
        std::atomic_ref<std::int32_t>(
            *reinterpret_cast<std::int32_t*>(slot.host + off))
            .fetch_add(A.i32[0], std::memory_order_relaxed);
        if constexpr (!kNullSink) {
          sink->OnAtomic(slot.sim_addr + off, 4);
        }
        break;
      }
      case VOp::kBarrier:
        // Counted in the deferred histogram/tally but not in step weights
        // (the interpreter's RunToBarrier intercepts barriers before Step;
        // the compiler gave barriers weight 0).
        steps_executed_ += steps;
        *pc = vpc + 1;
        return StopReason::kBarrier;
      case VOp::kLoopBegin:
        D.i32[0] = A.i32[0];
        if (D.i32[0] >= B.i32[0]) next = in.target;
        break;
      case VOp::kLoopEnd:
        D.i32[0] += static_cast<std::int32_t>(in.imm);
        if (D.i32[0] < B.i32[0]) next = in.target;
        break;
      case VOp::kJump:
        next = in.target;
        break;
      case VOp::kBrZero:
        if (A.i32[0] == 0) next = in.target;
        break;
      // Fused reduction back-edges: the arithmetic op, then the loop
      // counter step and conditional jump (register/field layout in
      // bytecode.h). Executing the halves in source order keeps every
      // register-aliasing corner identical to the unfused sequence.
      MALISIM_VM_BACKEDGE(kFmaLoopEndF32,
          MALISIM_VM_LANES(D.f32[l] = A.f32[l] * B.f32[l] + C.f32[l]))
      MALISIM_VM_BACKEDGE(kFmaLoopEndF64,
          MALISIM_VM_LANES(D.f64[l] = A.f64[l] * B.f64[l] + C.f64[l]))
      MALISIM_VM_BACKEDGE(kAddLoopEndF32,
          MALISIM_VM_LANES(D.f32[l] = A.f32[l] + B.f32[l]))
      MALISIM_VM_BACKEDGE(kAddLoopEndF64,
          MALISIM_VM_LANES(D.f64[l] = A.f64[l] + B.f64[l]))
      // Fused load+consumer: the load half executes exactly like kLoad
      // (writing its destination register and streaming the access), then
      // the consumer half reads the register file — D/A/B/C are references,
      // so any operand naming the loaded register sees the fresh value.
      MALISIM_VM_LOADOP(kLoadFmaF32,
          MALISIM_VM_LANES(D.f32[l] = A.f32[l] * B.f32[l] + C.f32[l]))
      MALISIM_VM_LOADOP(kLoadFmaF64,
          MALISIM_VM_LANES(D.f64[l] = A.f64[l] * B.f64[l] + C.f64[l]))
      MALISIM_VM_LOADOP(kLoadAddF32,
          MALISIM_VM_LANES(D.f32[l] = A.f32[l] + B.f32[l]))
      MALISIM_VM_LOADOP(kLoadAddF64,
          MALISIM_VM_LANES(D.f64[l] = A.f64[l] + B.f64[l]))
      MALISIM_VM_LOADOP(kLoadSubF32,
          MALISIM_VM_LANES(D.f32[l] = A.f32[l] - B.f32[l]))
      MALISIM_VM_LOADOP(kLoadSubF64,
          MALISIM_VM_LANES(D.f64[l] = A.f64[l] - B.f64[l]))
      MALISIM_VM_LOADOP(kLoadMulF32,
          MALISIM_VM_LANES(D.f32[l] = A.f32[l] * B.f32[l]))
      MALISIM_VM_LOADOP(kLoadMulF64,
          MALISIM_VM_LANES(D.f64[l] = A.f64[l] * B.f64[l]))
      MALISIM_VM_LOADOP(kLoadSplatF32,
          MALISIM_VM_LANES(D.f32[l] = A.f32[0]))
      MALISIM_VM_LOADOP(kLoadSplatF64,
          MALISIM_VM_LANES(D.f64[l] = A.f64[0]))
      MALISIM_VM_LOADBACKEDGE(kLoadFmaLoopEndF32,
          MALISIM_VM_LANES(D.f32[l] = A.f32[l] * B.f32[l] + C.f32[l]))
      MALISIM_VM_LOADBACKEDGE(kLoadFmaLoopEndF64,
          MALISIM_VM_LANES(D.f64[l] = A.f64[l] * B.f64[l] + C.f64[l]))
      case VOp::kNumVOps:
        MALISIM_VM_FAULT(InternalError("invalid vm opcode"));
      default:
        // Every VOp the compiler emits has a case above; telling the
        // compiler so removes the jump-table range check from the hot loop.
        __builtin_unreachable();
    }
    vpc = next;
  }
  steps_executed_ += steps;
  *pc = vpc;
  return StopReason::kDone;
#undef MALISIM_VM_FAULT
}

#undef MALISIM_VM_LANES
#undef MALISIM_VM_BACKEDGE
#undef MALISIM_VM_LOADOP
#undef MALISIM_VM_LOADBACKEDGE
#undef MALISIM_VM_BIN
#undef MALISIM_VM_BIN_FN
#undef MALISIM_VM_UN_F
#undef MALISIM_VM_BIN_I
#undef MALISIM_VM_CMP
#undef MALISIM_VM_CMPBR
#undef MALISIM_VM_TYPED_CASES

void VmExecutor::FlushCounts(WorkGroupRun* out) {
  const CompiledProgram& cp = *code_;
  for (std::size_t v = 0; v < vcount_.size(); ++v) {
    const std::uint64_t c = vcount_[v];
    if (c == 0) continue;
    vcount_[v] = 0;
    // Memory-traffic counters are deferred like the histogram: the hot loop
    // only bumps vcount, and the per-site totals expand here. The faulted
    // access (if any) is backed out below — the interpreter counts an
    // out-of-bounds access in the histogram (count-before-execute) but not
    // in loads/stores/bytes, and the deferred totals must match exactly.
    const VInstr& in = cp.code[v];
    switch (in.op) {
      case VOp::kLoad:
      case VOp::kLoadFmaF32:
      case VOp::kLoadFmaF64:
      case VOp::kLoadAddF32:
      case VOp::kLoadAddF64:
      case VOp::kLoadSubF32:
      case VOp::kLoadSubF64:
      case VOp::kLoadMulF32:
      case VOp::kLoadMulF64:
      case VOp::kLoadSplatF32:
      case VOp::kLoadSplatF64:
        out->loads += c;
        out->load_bytes += c * in.access_bytes;
        break;
      case VOp::kLoadFmaLoopEndF32:
      case VOp::kLoadFmaLoopEndF64:
        // access_bytes holds the loop registers here; the load width is
        // lanes << aux8 (bytecode.h).
        out->loads += c;
        out->load_bytes += c * (static_cast<std::uint64_t>(in.lanes) << in.aux8);
        break;
      case VOp::kStore:
        out->stores += c;
        out->store_bytes += c * in.access_bytes;
        break;
      case VOp::kAtomicAddI32:
        out->atomics += c;
        break;
      default:
        break;
    }
    for (std::uint32_t s = cp.tally_begin[v]; s < cp.tally_begin[v + 1];
         ++s) {
      const TallySlot& slot = cp.tally_slots[s];
      out->ops.AddAt(slot.hist_idx, c);
      if (opcode_tally_ != nullptr) {
        opcode_tally_[static_cast<std::size_t>(slot.op)] += c;
      }
    }
  }
  if (fault_vpc_ != kNoFault) {
    // A fused instruction only ever faults in its first source step (loads
    // and integer divides lead their pairs; the absorbed mov / back-edge /
    // consumer halves cannot fault). The interpreter therefore counted the
    // first source step only — back the unreached tally slots out, and the
    // traffic of a faulted access with them.
    const VInstr& in = cp.code[fault_vpc_];
    switch (in.op) {
      case VOp::kLoad:
      case VOp::kLoadFmaF32:
      case VOp::kLoadFmaF64:
      case VOp::kLoadAddF32:
      case VOp::kLoadAddF64:
      case VOp::kLoadSubF32:
      case VOp::kLoadSubF64:
      case VOp::kLoadMulF32:
      case VOp::kLoadMulF64:
      case VOp::kLoadSplatF32:
      case VOp::kLoadSplatF64:
        --out->loads;
        out->load_bytes -= in.access_bytes;
        break;
      case VOp::kLoadFmaLoopEndF32:
      case VOp::kLoadFmaLoopEndF64:
        --out->loads;
        out->load_bytes -= static_cast<std::uint64_t>(in.lanes) << in.aux8;
        break;
      case VOp::kStore:
        --out->stores;
        out->store_bytes -= in.access_bytes;
        break;
      case VOp::kAtomicAddI32:
        --out->atomics;
        break;
      default:  // arithmetic faults (division by zero) carry no traffic
        break;
    }
    for (std::uint32_t s = cp.tally_begin[fault_vpc_] + 1;
         s < cp.tally_begin[fault_vpc_ + 1]; ++s) {
      const TallySlot& slot = cp.tally_slots[s];
      out->ops.SubAt(slot.hist_idx);
      if (opcode_tally_ != nullptr) {
        --opcode_tally_[static_cast<std::size_t>(slot.op)];
      }
    }
    fault_vpc_ = kNoFault;
  }
}

}  // namespace malisim::kir::vm
