#include "kir/parse.h"

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace malisim::kir {
namespace {

/// Operand shape of an opcode, mirroring what ToText() emits.
struct Signature {
  bool has_dst = false;
  int num_srcs = 0;
  enum class Extra { kNone, kImm, kFimm, kMem, kStep } extra = Extra::kNone;
};

Signature SignatureOf(Opcode op) {
  using E = Signature::Extra;
  switch (op) {
    case Opcode::kConstI:
      return {true, 0, E::kImm};
    case Opcode::kConstF:
      return {true, 0, E::kFimm};
    case Opcode::kArg:
    case Opcode::kGlobalId:
    case Opcode::kLocalId:
    case Opcode::kGroupId:
    case Opcode::kGlobalSize:
    case Opcode::kLocalSize:
    case Opcode::kNumGroups:
      return {true, 0, E::kImm};
    case Opcode::kMov:
    case Opcode::kNeg:
    case Opcode::kAbs:
    case Opcode::kFloor:
    case Opcode::kSqrt:
    case Opcode::kRsqrt:
    case Opcode::kExp:
    case Opcode::kLog:
    case Opcode::kSin:
    case Opcode::kCos:
    case Opcode::kNot:
    case Opcode::kSplat:
    case Opcode::kVSum:
    case Opcode::kConvert:
      return {true, 1, E::kNone};
    case Opcode::kExtract:
    case Opcode::kShl:
    case Opcode::kShr:
      return {true, 1, E::kImm};
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDiv:
    case Opcode::kIDiv:
    case Opcode::kIRem:
    case Opcode::kMin:
    case Opcode::kMax:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kCmpLt:
    case Opcode::kCmpLe:
    case Opcode::kCmpEq:
    case Opcode::kCmpNe:
      return {true, 2, E::kNone};
    case Opcode::kInsert:
    case Opcode::kSlide:
      return {true, 2, E::kImm};
    case Opcode::kFma:
    case Opcode::kSelect:
      return {true, 3, E::kNone};
    case Opcode::kLoad:
      return {true, 1, E::kMem};
    case Opcode::kStore:
    case Opcode::kAtomicAddI32:
      return {false, 2, E::kMem};
    case Opcode::kLoopBegin:
      return {true, 2, E::kStep};
    case Opcode::kIfBegin:
      return {false, 1, E::kNone};
    case Opcode::kBarrier:
    case Opcode::kLoopEnd:
    case Opcode::kElse:
    case Opcode::kIfEnd:
    case Opcode::kNumOpcodes:
      return {false, 0, E::kNone};
  }
  return {};
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<Program> Run() {
    std::vector<std::string> lines = SplitLines();
    std::size_t i = 0;
    while (i < lines.size() && Trim(lines[i]).empty()) ++i;
    if (i == lines.size()) return Err(0, "empty input");
    MALI_RETURN_IF_ERROR(ParseHeader(Trim(lines[i]), i + 1));
    ++i;
    for (; i < lines.size(); ++i) {
      const std::string line = Trim(lines[i]);
      if (line.empty()) continue;
      if (line.rfind("local ", 0) == 0) {
        MALI_RETURN_IF_ERROR(ParseLocal(line, i + 1));
      } else {
        MALI_RETURN_IF_ERROR(ParseInstruction(line, i + 1));
      }
    }
    MALI_RETURN_IF_ERROR(program_.Finalize());
    MALI_RETURN_IF_ERROR(Verify(program_));
    return std::move(program_);
  }

 private:
  static Status Err(std::size_t line, const std::string& what) {
    return InvalidArgumentError("kir parse error at line " +
                                std::to_string(line) + ": " + what);
  }

  std::vector<std::string> SplitLines() const {
    std::vector<std::string> lines;
    std::string current;
    for (char ch : text_) {
      if (ch == '\n') {
        lines.push_back(current);
        current.clear();
      } else {
        current += ch;
      }
    }
    if (!current.empty()) lines.push_back(current);
    return lines;
  }

  static std::string Trim(const std::string& s) {
    std::size_t begin = s.find_first_not_of(" \t\r");
    if (begin == std::string::npos) return "";
    std::size_t end = s.find_last_not_of(" \t\r");
    return s.substr(begin, end - begin + 1);
  }

  static std::vector<std::string> SplitWs(const std::string& s) {
    std::vector<std::string> out;
    std::string current;
    for (char ch : s) {
      if (ch == ' ' || ch == '\t') {
        if (!current.empty()) {
          out.push_back(current);
          current.clear();
        }
      } else {
        current += ch;
      }
    }
    if (!current.empty()) out.push_back(current);
    return out;
  }

  static StatusOr<ScalarType> ParseScalarType(const std::string& token,
                                              std::size_t line) {
    if (token == "f32") return ScalarType::kF32;
    if (token == "f64") return ScalarType::kF64;
    if (token == "i32") return ScalarType::kI32;
    if (token == "i64") return ScalarType::kI64;
    return Err(line, "unknown scalar type '" + token + "'");
  }

  static StatusOr<Type> ParseType(const std::string& token, std::size_t line) {
    const std::size_t x = token.find('x');
    std::string scalar_part = token;
    std::uint8_t lanes = 1;
    if (x != std::string::npos) {
      scalar_part = token.substr(0, x);
      const long parsed = std::strtol(token.c_str() + x + 1, nullptr, 10);
      lanes = static_cast<std::uint8_t>(parsed);
      if (!IsValidLanes(lanes)) {
        return Err(line, "bad lane count in type '" + token + "'");
      }
    }
    StatusOr<ScalarType> scalar = ParseScalarType(scalar_part, line);
    if (!scalar.ok()) return scalar.status();
    return Type(*scalar, lanes);
  }

  Status ParseHeader(const std::string& line, std::size_t lineno) {
    if (line.rfind("kernel ", 0) != 0) {
      return Err(lineno, "expected 'kernel NAME(...)'");
    }
    const std::size_t open = line.find('(');
    const std::size_t close = line.rfind(')');
    if (open == std::string::npos || close == std::string::npos || close < open) {
      return Err(lineno, "malformed kernel signature");
    }
    program_.name = Trim(line.substr(7, open - 7));
    const std::string args = line.substr(open + 1, close - open - 1);

    // Split on commas (types never contain commas).
    std::vector<std::string> parts;
    std::string current;
    for (char ch : args) {
      if (ch == ',') {
        parts.push_back(Trim(current));
        current.clear();
      } else {
        current += ch;
      }
    }
    if (!Trim(current).empty()) parts.push_back(Trim(current));

    for (const std::string& part : parts) {
      if (part.empty()) return Err(lineno, "empty argument");
      MALI_RETURN_IF_ERROR(ParseArg(part, lineno));
    }
    return Status::Ok();
  }

  Status ParseArg(const std::string& part, std::size_t lineno) {
    std::vector<std::string> tokens = SplitWs(part);
    ArgDecl decl;
    std::size_t pos = 0;
    bool is_buffer = false;
    if (tokens[pos] == "in") {
      decl.kind = ArgKind::kBufferRO;
      is_buffer = true;
      ++pos;
    } else if (tokens[pos] == "out") {
      decl.kind = ArgKind::kBufferWO;
      is_buffer = true;
      ++pos;
    } else if (tokens[pos] == "inout") {
      decl.kind = ArgKind::kBufferRW;
      is_buffer = true;
      ++pos;
    }
    if (pos < tokens.size() && tokens[pos] == "const") {
      decl.is_const = true;
      ++pos;
    }
    if (pos >= tokens.size()) return Err(lineno, "truncated argument");
    std::string type_token = tokens[pos++];
    if (!type_token.empty() && type_token.back() == '*') {
      type_token.pop_back();
      is_buffer = true;
    } else if (is_buffer) {
      return Err(lineno, "buffer argument missing '*'");
    }
    StatusOr<ScalarType> elem = ParseScalarType(type_token, lineno);
    if (!elem.ok()) return elem.status();
    decl.elem = *elem;
    if (!is_buffer) decl.kind = ArgKind::kScalar;
    if (pos < tokens.size() && tokens[pos] == "restrict") {
      decl.is_restrict = true;
      ++pos;
    }
    if (pos >= tokens.size()) return Err(lineno, "argument missing a name");
    decl.name = tokens[pos++];
    if (pos != tokens.size()) return Err(lineno, "trailing tokens in argument");
    program_.args.push_back(decl);
    return Status::Ok();
  }

  Status ParseLocal(const std::string& line, std::size_t lineno) {
    // local TYPE NAME[N]
    std::vector<std::string> tokens = SplitWs(line);
    if (tokens.size() != 3) return Err(lineno, "malformed local declaration");
    StatusOr<ScalarType> elem = ParseScalarType(tokens[1], lineno);
    if (!elem.ok()) return elem.status();
    const std::string& decl = tokens[2];
    const std::size_t open = decl.find('[');
    if (open == std::string::npos || decl.back() != ']') {
      return Err(lineno, "local declaration needs NAME[count]");
    }
    LocalArrayDecl local;
    local.name = decl.substr(0, open);
    local.elem = *elem;
    local.elems = static_cast<std::uint32_t>(
        std::strtoul(decl.c_str() + open + 1, nullptr, 10));
    if (local.elems == 0) return Err(lineno, "zero-sized local array");
    program_.locals.push_back(local);
    return Status::Ok();
  }

  /// "r5:f32x4" or "%acc:f32" -> register id, creating it on first sight.
  StatusOr<RegId> ParseReg(std::string token, std::size_t lineno) {
    if (!token.empty() && token.back() == ',') token.pop_back();
    const std::size_t colon = token.rfind(':');
    if (colon == std::string::npos || colon == 0) {
      return Err(lineno, "malformed register '" + token + "'");
    }
    const std::string key = token.substr(0, colon);
    StatusOr<Type> type = ParseType(token.substr(colon + 1), lineno);
    if (!type.ok()) return type.status();

    auto it = regs_.find(key);
    if (it != regs_.end()) {
      if (program_.regs[it->second].type != *type) {
        return Err(lineno, "register '" + key + "' re-used at a different type");
      }
      return it->second;
    }
    if (program_.regs.size() >= 0xFFFF) return Err(lineno, "too many registers");
    std::string name = key[0] == '%' ? key.substr(1) : "";
    program_.regs.push_back({*type, name});
    const RegId id = static_cast<RegId>(program_.regs.size() - 1);
    regs_.emplace(key, id);
    return id;
  }

  Status ParseInstruction(std::string line, std::size_t lineno) {
    // Strip an optional leading "N:" index.
    const std::size_t colon = line.find(':');
    if (colon != std::string::npos &&
        line.find_first_not_of("0123456789") == colon) {
      line = Trim(line.substr(colon + 1));
    }
    std::vector<std::string> tokens = SplitWs(line);
    if (tokens.empty()) return Err(lineno, "empty instruction");

    // Opcode lookup by printed name.
    Opcode op = Opcode::kNumOpcodes;
    for (int candidate = 0; candidate < kNumOpcodeValues; ++candidate) {
      if (OpcodeName(static_cast<Opcode>(candidate)) == tokens[0]) {
        op = static_cast<Opcode>(candidate);
        break;
      }
    }
    if (op == Opcode::kNumOpcodes) {
      return Err(lineno, "unknown opcode '" + tokens[0] + "'");
    }

    const Signature sig = SignatureOf(op);
    Instr instr;
    instr.op = op;
    std::size_t pos = 1;
    if (sig.has_dst) {
      if (pos >= tokens.size()) return Err(lineno, "missing destination");
      StatusOr<RegId> reg = ParseReg(tokens[pos++], lineno);
      if (!reg.ok()) return reg.status();
      instr.dst = *reg;
    }
    RegId* srcs[3] = {&instr.a, &instr.b, &instr.c};
    for (int s = 0; s < sig.num_srcs; ++s) {
      if (pos >= tokens.size()) return Err(lineno, "missing source operand");
      StatusOr<RegId> reg = ParseReg(tokens[pos++], lineno);
      if (!reg.ok()) return reg.status();
      *srcs[s] = *reg;
    }

    using E = Signature::Extra;
    switch (sig.extra) {
      case E::kNone:
        break;
      case E::kImm:
        if (pos >= tokens.size()) return Err(lineno, "missing immediate");
        instr.imm = std::strtoll(tokens[pos++].c_str(), nullptr, 10);
        break;
      case E::kFimm:
        if (pos >= tokens.size()) return Err(lineno, "missing float immediate");
        instr.fimm = std::strtod(tokens[pos++].c_str(), nullptr);
        break;
      case E::kMem: {
        for (const char* field : {"slot=", "off="}) {
          if (pos >= tokens.size() || tokens[pos].rfind(field, 0) != 0) {
            return Err(lineno, std::string("expected ") + field);
          }
          const long long value =
              std::strtoll(tokens[pos].c_str() + std::string(field).size(),
                           nullptr, 10);
          if (std::string(field) == "slot=") {
            instr.slot = static_cast<std::uint8_t>(value);
          } else {
            instr.imm = value;
          }
          ++pos;
        }
        break;
      }
      case E::kStep:
        if (pos >= tokens.size() || tokens[pos].rfind("step=", 0) != 0) {
          return Err(lineno, "loop missing step=");
        }
        instr.imm = std::strtoll(tokens[pos++].c_str() + 5, nullptr, 10);
        break;
    }
    if (pos != tokens.size()) {
      return Err(lineno, "trailing tokens after '" + tokens[0] + "'");
    }

    // Reconstruct instr.type the way the builder sets it.
    if (instr.dst != kNoReg) {
      instr.type = program_.regs[instr.dst].type;
    } else if (op == Opcode::kStore || op == Opcode::kAtomicAddI32) {
      instr.type = program_.regs[instr.a].type;
    } else if (op == Opcode::kIfBegin) {
      instr.type = I32();
    }
    program_.code.push_back(instr);
    return Status::Ok();
  }

  std::string_view text_;
  Program program_;
  std::map<std::string, RegId> regs_;
};

}  // namespace

StatusOr<Program> ParseProgram(std::string_view text) {
  return Parser(text).Run();
}

}  // namespace malisim::kir
