#include "kir/opcode.h"

namespace malisim::kir {

std::string_view OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kConstI: return "const.i";
    case Opcode::kConstF: return "const.f";
    case Opcode::kArg: return "arg";
    case Opcode::kGlobalId: return "global_id";
    case Opcode::kLocalId: return "local_id";
    case Opcode::kGroupId: return "group_id";
    case Opcode::kGlobalSize: return "global_size";
    case Opcode::kLocalSize: return "local_size";
    case Opcode::kNumGroups: return "num_groups";
    case Opcode::kMov: return "mov";
    case Opcode::kSplat: return "splat";
    case Opcode::kExtract: return "extract";
    case Opcode::kInsert: return "insert";
    case Opcode::kVSum: return "vsum";
    case Opcode::kSlide: return "slide";
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kDiv: return "div";
    case Opcode::kIDiv: return "idiv";
    case Opcode::kIRem: return "irem";
    case Opcode::kMin: return "min";
    case Opcode::kMax: return "max";
    case Opcode::kFma: return "fma";
    case Opcode::kNeg: return "neg";
    case Opcode::kAbs: return "abs";
    case Opcode::kFloor: return "floor";
    case Opcode::kSqrt: return "sqrt";
    case Opcode::kRsqrt: return "rsqrt";
    case Opcode::kExp: return "exp";
    case Opcode::kLog: return "log";
    case Opcode::kSin: return "sin";
    case Opcode::kCos: return "cos";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kNot: return "not";
    case Opcode::kShl: return "shl";
    case Opcode::kShr: return "shr";
    case Opcode::kCmpLt: return "cmp.lt";
    case Opcode::kCmpLe: return "cmp.le";
    case Opcode::kCmpEq: return "cmp.eq";
    case Opcode::kCmpNe: return "cmp.ne";
    case Opcode::kSelect: return "select";
    case Opcode::kConvert: return "convert";
    case Opcode::kLoad: return "load";
    case Opcode::kStore: return "store";
    case Opcode::kAtomicAddI32: return "atomic_add.i32";
    case Opcode::kBarrier: return "barrier";
    case Opcode::kLoopBegin: return "loop";
    case Opcode::kLoopEnd: return "endloop";
    case Opcode::kIfBegin: return "if";
    case Opcode::kElse: return "else";
    case Opcode::kIfEnd: return "endif";
    case Opcode::kNumOpcodes: break;
  }
  return "<bad>";
}

std::string_view OpClassName(OpClass c) {
  switch (c) {
    case OpClass::kArithSimple: return "arith";
    case OpClass::kArithMul: return "mul";
    case OpClass::kArithSpecial: return "special";
    case OpClass::kBroadcast: return "broadcast";
    case OpClass::kLoad: return "load";
    case OpClass::kStore: return "store";
    case OpClass::kAtomic: return "atomic";
    case OpClass::kControl: return "control";
    case OpClass::kBarrier: return "barrier";
    case OpClass::kNumClasses: break;
  }
  return "<bad>";
}

OpClass ClassifyOpcode(Opcode op) {
  switch (op) {
    case Opcode::kMul:
    case Opcode::kFma:
      return OpClass::kArithMul;
    case Opcode::kDiv:
    case Opcode::kIDiv:
    case Opcode::kIRem:
    case Opcode::kSqrt:
    case Opcode::kRsqrt:
    case Opcode::kExp:
    case Opcode::kLog:
    case Opcode::kSin:
    case Opcode::kCos:
      return OpClass::kArithSpecial;
    case Opcode::kLoad:
      return OpClass::kLoad;
    case Opcode::kStore:
      return OpClass::kStore;
    case Opcode::kAtomicAddI32:
      return OpClass::kAtomic;
    case Opcode::kSplat:
      return OpClass::kBroadcast;
    case Opcode::kBarrier:
      return OpClass::kBarrier;
    case Opcode::kConstI:
    case Opcode::kConstF:
    case Opcode::kArg:
    case Opcode::kGlobalId:
    case Opcode::kLocalId:
    case Opcode::kGroupId:
    case Opcode::kGlobalSize:
    case Opcode::kLocalSize:
    case Opcode::kNumGroups:
    case Opcode::kLoopBegin:
    case Opcode::kLoopEnd:
    case Opcode::kIfBegin:
    case Opcode::kElse:
    case Opcode::kIfEnd:
      return OpClass::kControl;
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMin:
    case Opcode::kMax:
    case Opcode::kNeg:
    case Opcode::kAbs:
    case Opcode::kFloor:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kNot:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kCmpLt:
    case Opcode::kCmpLe:
    case Opcode::kCmpEq:
    case Opcode::kCmpNe:
    case Opcode::kSelect:
    case Opcode::kConvert:
    case Opcode::kMov:
    case Opcode::kExtract:
    case Opcode::kInsert:
    case Opcode::kVSum:
    case Opcode::kSlide:
      return OpClass::kArithSimple;
    case Opcode::kNumOpcodes:
      break;
  }
  return OpClass::kControl;
}

}  // namespace malisim::kir
