// Type system of the KIR kernel IR.
//
// KIR mirrors the OpenCL C type universe the paper's kernels use: the four
// scalar types the Mali-T604 supports natively (fp32, fp64, int32, int64 —
// the T604 is the first embedded GPU with hardware fp64 and 64-bit integers)
// and their vector forms of 2/4/8/16 lanes, matching OpenCL's floatN/doubleN.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"

namespace malisim::kir {

enum class ScalarType : std::uint8_t { kF32 = 0, kF64, kI32, kI64 };
inline constexpr int kNumScalarTypes = 4;

inline constexpr bool IsFloat(ScalarType t) {
  return t == ScalarType::kF32 || t == ScalarType::kF64;
}
inline constexpr bool IsInt(ScalarType t) { return !IsFloat(t); }

inline constexpr std::uint32_t ScalarBytes(ScalarType t) {
  switch (t) {
    case ScalarType::kF32:
    case ScalarType::kI32:
      return 4;
    case ScalarType::kF64:
    case ScalarType::kI64:
      return 8;
  }
  return 0;
}

std::string ScalarTypeName(ScalarType t);

/// Maximum vector width (OpenCL float16 / double16).
inline constexpr std::uint8_t kMaxLanes = 16;

/// Index 0..4 for lane counts 1,2,4,8,16 (used by histogram tables).
inline constexpr int LaneIndex(std::uint8_t lanes) {
  switch (lanes) {
    case 1:
      return 0;
    case 2:
      return 1;
    case 4:
      return 2;
    case 8:
      return 3;
    case 16:
      return 4;
  }
  return -1;
}
inline constexpr int kNumLaneClasses = 5;

inline constexpr bool IsValidLanes(std::uint8_t lanes) {
  return LaneIndex(lanes) >= 0;
}

/// A (scalar, lanes) pair: f32x4 is OpenCL float4, and so on.
struct Type {
  ScalarType scalar = ScalarType::kF32;
  std::uint8_t lanes = 1;

  constexpr Type() = default;
  constexpr Type(ScalarType s, std::uint8_t l) : scalar(s), lanes(l) {}

  constexpr bool operator==(const Type&) const = default;

  constexpr bool is_scalar() const { return lanes == 1; }
  constexpr std::uint32_t bytes() const { return ScalarBytes(scalar) * lanes; }

  std::string ToString() const;
};

inline constexpr Type F32(std::uint8_t lanes = 1) { return {ScalarType::kF32, lanes}; }
inline constexpr Type F64(std::uint8_t lanes = 1) { return {ScalarType::kF64, lanes}; }
inline constexpr Type I32(std::uint8_t lanes = 1) { return {ScalarType::kI32, lanes}; }
inline constexpr Type I64(std::uint8_t lanes = 1) { return {ScalarType::kI64, lanes}; }

/// Floating type of the requested precision: Float(false)=f32, Float(true)=f64.
/// Benchmarks use this to build SP and DP kernel variants from one source.
inline constexpr Type FloatType(bool fp64, std::uint8_t lanes = 1) {
  return {fp64 ? ScalarType::kF64 : ScalarType::kF32, lanes};
}

/// Storage for one virtual register value: the widest case is 16 x 8-byte
/// lanes. Lanes beyond the register's type are kept zeroed.
union RegValue {
  float f32[kMaxLanes];
  double f64[kMaxLanes];
  std::int32_t i32[kMaxLanes];
  std::int64_t i64[kMaxLanes];
  std::uint8_t raw[kMaxLanes * 8];
};
static_assert(sizeof(RegValue) == 128);

}  // namespace malisim::kir
