#include "kir/exec_types.h"

namespace malisim::kir {

bool LaunchConfig::IsValid() const {
  if (work_dim < 1 || work_dim > 3) return false;
  for (int d = 0; d < 3; ++d) {
    if (global_size[d] == 0 || local_size[d] == 0) return false;
    if (global_size[d] % local_size[d] != 0) return false;
    if (static_cast<std::uint32_t>(d) >= work_dim &&
        (global_size[d] != 1 || local_size[d] != 1)) {
      return false;
    }
  }
  if (group_end != 0 && group_end > total_groups()) return false;
  if (group_begin >= group_range_end()) return false;
  return true;
}

std::uint64_t OpHistogram::TotalClass(OpClass c) const {
  std::uint64_t total = 0;
  const int base = static_cast<int>(c) * kNumScalarTypes * kNumLaneClasses;
  for (int i = 0; i < kNumScalarTypes * kNumLaneClasses; ++i) {
    total += counts_[base + i];
  }
  return total;
}

std::uint64_t OpHistogram::Total() const {
  std::uint64_t total = 0;
  for (std::uint64_t c : counts_) total += c;
  return total;
}

std::uint64_t OpHistogram::TotalLaneOps(OpClass c) const {
  static constexpr std::uint8_t kLanesForIndex[kNumLaneClasses] = {1, 2, 4, 8, 16};
  std::uint64_t total = 0;
  const int base = static_cast<int>(c) * kNumScalarTypes * kNumLaneClasses;
  for (int t = 0; t < kNumScalarTypes; ++t) {
    for (int l = 0; l < kNumLaneClasses; ++l) {
      total += counts_[base + t * kNumLaneClasses + l] * kLanesForIndex[l];
    }
  }
  return total;
}

void OpHistogram::MergeFrom(const OpHistogram& other) {
  for (int i = 0; i < kSize; ++i) counts_[i] += other.counts_[i];
}

void WorkGroupRun::MergeFrom(const WorkGroupRun& other) {
  ops.MergeFrom(other.ops);
  loads += other.loads;
  stores += other.stores;
  load_bytes += other.load_bytes;
  store_bytes += other.store_bytes;
  atomics += other.atomics;
  barriers_crossed += other.barriers_crossed;
  work_items += other.work_items;
  item_weight_sum += other.item_weight_sum;
  weighted_group_cost += other.weighted_group_cost;
}

}  // namespace malisim::kir
