// Structural / type verifier for KIR programs. Run by KernelBuilder::Build
// and by the device-side kernel compilers before execution.
#include <string>
#include <vector>

#include "kir/program.h"

namespace malisim::kir {
namespace {

struct SlotInfo {
  ScalarType elem;
  ArgKind kind;  // locals behave as kBufferRW
};

std::vector<SlotInfo> CollectSlots(const Program& p) {
  std::vector<SlotInfo> slots;
  for (const ArgDecl& arg : p.args) {
    if (arg.kind != ArgKind::kScalar) slots.push_back({arg.elem, arg.kind});
  }
  for (const LocalArrayDecl& local : p.locals) {
    slots.push_back({local.elem, ArgKind::kBufferRW});
  }
  return slots;
}

Status Fail(std::uint32_t index, const Instr& instr, const std::string& what) {
  return InvalidArgumentError("instruction " + std::to_string(index) + " (" +
                              std::string(OpcodeName(instr.op)) + "): " + what);
}

}  // namespace

Status Verify(const Program& p) {
  if (!p.finalized()) {
    return FailedPreconditionError("program '" + p.name + "' not finalized");
  }
  const std::vector<SlotInfo> slots = CollectSlots(p);
  const std::uint32_t num_regs = static_cast<std::uint32_t>(p.regs.size());

  // Scalar args listed for kArg slot validation.
  std::vector<const ArgDecl*> scalar_args;
  for (const ArgDecl& arg : p.args) {
    if (arg.kind == ArgKind::kScalar) scalar_args.push_back(&arg);
  }

  std::vector<bool> defined(num_regs, false);

  auto reg_type = [&](RegId r) { return p.regs[r].type; };
  auto check_reg = [&](RegId r) { return r != kNoReg && r < num_regs; };
  auto check_use = [&](RegId r) { return check_reg(r) && defined[r]; };

  for (std::uint32_t i = 0; i < p.code.size(); ++i) {
    const Instr& in = p.code[i];
    const Type dt = in.dst != kNoReg && in.dst < num_regs ? reg_type(in.dst) : Type{};

    auto require = [&](bool cond, const std::string& what) -> Status {
      if (!cond) return Fail(i, in, what);
      return Status::Ok();
    };
    auto def_dst = [&]() -> Status {
      if (!check_reg(in.dst)) return Fail(i, in, "bad dst register");
      defined[in.dst] = true;
      return Status::Ok();
    };

    switch (in.op) {
      case Opcode::kConstI:
        MALI_RETURN_IF_ERROR(def_dst());
        MALI_RETURN_IF_ERROR(require(IsInt(dt.scalar) || IsFloat(dt.scalar),
                                     "const into untyped register"));
        break;
      case Opcode::kConstF:
        MALI_RETURN_IF_ERROR(def_dst());
        MALI_RETURN_IF_ERROR(require(IsFloat(dt.scalar), "const.f into integer register"));
        break;
      case Opcode::kArg: {
        MALI_RETURN_IF_ERROR(def_dst());
        MALI_RETURN_IF_ERROR(require(
            in.imm >= 0 && static_cast<std::size_t>(in.imm) < scalar_args.size(),
            "scalar arg slot out of range"));
        MALI_RETURN_IF_ERROR(require(dt.is_scalar(), "arg loads are scalar"));
        MALI_RETURN_IF_ERROR(require(
            scalar_args[static_cast<std::size_t>(in.imm)]->elem == dt.scalar,
            "arg type mismatch"));
        break;
      }
      case Opcode::kGlobalId:
      case Opcode::kLocalId:
      case Opcode::kGroupId:
      case Opcode::kGlobalSize:
      case Opcode::kLocalSize:
      case Opcode::kNumGroups:
        MALI_RETURN_IF_ERROR(def_dst());
        MALI_RETURN_IF_ERROR(require(dt == kir::I32(), "builtins produce scalar i32"));
        MALI_RETURN_IF_ERROR(require(in.imm >= 0 && in.imm < 3, "dimension out of range"));
        break;
      case Opcode::kMov:
      case Opcode::kNeg:
      case Opcode::kAbs:
        MALI_RETURN_IF_ERROR(require(check_use(in.a), "undefined source"));
        MALI_RETURN_IF_ERROR(def_dst());
        MALI_RETURN_IF_ERROR(require(reg_type(in.a) == dt, "type mismatch"));
        break;
      case Opcode::kFloor:
      case Opcode::kSqrt:
      case Opcode::kRsqrt:
      case Opcode::kExp:
      case Opcode::kLog:
      case Opcode::kSin:
      case Opcode::kCos:
        MALI_RETURN_IF_ERROR(require(check_use(in.a), "undefined source"));
        MALI_RETURN_IF_ERROR(def_dst());
        MALI_RETURN_IF_ERROR(require(reg_type(in.a) == dt, "type mismatch"));
        MALI_RETURN_IF_ERROR(require(IsFloat(dt.scalar), "float-only op"));
        break;
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kMul:
      case Opcode::kDiv:
      case Opcode::kMin:
      case Opcode::kMax:
        MALI_RETURN_IF_ERROR(require(check_use(in.a) && check_use(in.b),
                                     "undefined source"));
        MALI_RETURN_IF_ERROR(def_dst());
        MALI_RETURN_IF_ERROR(require(reg_type(in.a) == dt && reg_type(in.b) == dt,
                                     "operand type mismatch"));
        break;
      case Opcode::kFma:
        MALI_RETURN_IF_ERROR(require(
            check_use(in.a) && check_use(in.b) && check_use(in.c),
            "undefined source"));
        MALI_RETURN_IF_ERROR(def_dst());
        MALI_RETURN_IF_ERROR(require(IsFloat(dt.scalar), "fma is float-only"));
        MALI_RETURN_IF_ERROR(require(reg_type(in.a) == dt && reg_type(in.b) == dt &&
                                         reg_type(in.c) == dt,
                                     "operand type mismatch"));
        break;
      case Opcode::kAnd:
      case Opcode::kOr:
      case Opcode::kXor:
      case Opcode::kIDiv:
      case Opcode::kIRem:
        MALI_RETURN_IF_ERROR(require(check_use(in.a) && check_use(in.b),
                                     "undefined source"));
        MALI_RETURN_IF_ERROR(def_dst());
        MALI_RETURN_IF_ERROR(require(IsInt(dt.scalar), "integer-only op on float"));
        MALI_RETURN_IF_ERROR(require(reg_type(in.a) == dt && reg_type(in.b) == dt,
                                     "operand type mismatch"));
        break;
      case Opcode::kNot:
        MALI_RETURN_IF_ERROR(require(check_use(in.a), "undefined source"));
        MALI_RETURN_IF_ERROR(def_dst());
        MALI_RETURN_IF_ERROR(require(IsInt(dt.scalar), "bitwise op on float"));
        MALI_RETURN_IF_ERROR(require(reg_type(in.a) == dt, "type mismatch"));
        break;
      case Opcode::kShl:
      case Opcode::kShr:
        MALI_RETURN_IF_ERROR(require(check_use(in.a), "undefined source"));
        MALI_RETURN_IF_ERROR(def_dst());
        MALI_RETURN_IF_ERROR(require(IsInt(dt.scalar), "shift on float"));
        MALI_RETURN_IF_ERROR(require(reg_type(in.a) == dt, "type mismatch"));
        MALI_RETURN_IF_ERROR(require(
            in.imm >= 0 &&
                in.imm < static_cast<std::int64_t>(ScalarBytes(dt.scalar)) * 8,
            "shift amount out of range"));
        break;
      case Opcode::kCmpLt:
      case Opcode::kCmpLe:
      case Opcode::kCmpEq:
      case Opcode::kCmpNe: {
        MALI_RETURN_IF_ERROR(require(check_use(in.a) && check_use(in.b),
                                     "undefined source"));
        MALI_RETURN_IF_ERROR(def_dst());
        const Type at = reg_type(in.a);
        MALI_RETURN_IF_ERROR(require(at == reg_type(in.b), "operand type mismatch"));
        MALI_RETURN_IF_ERROR(require(dt == kir::I32(at.lanes),
                                     "compare result must be i32 mask"));
        break;
      }
      case Opcode::kSelect: {
        MALI_RETURN_IF_ERROR(require(
            check_use(in.a) && check_use(in.b) && check_use(in.c),
            "undefined source"));
        MALI_RETURN_IF_ERROR(def_dst());
        MALI_RETURN_IF_ERROR(require(reg_type(in.a) == kir::I32(dt.lanes),
                                     "select cond must be i32 mask"));
        MALI_RETURN_IF_ERROR(require(reg_type(in.b) == dt && reg_type(in.c) == dt,
                                     "operand type mismatch"));
        break;
      }
      case Opcode::kConvert:
        MALI_RETURN_IF_ERROR(require(check_use(in.a), "undefined source"));
        MALI_RETURN_IF_ERROR(def_dst());
        MALI_RETURN_IF_ERROR(require(reg_type(in.a).lanes == dt.lanes,
                                     "convert changes lane count"));
        break;
      case Opcode::kSplat:
        MALI_RETURN_IF_ERROR(require(check_use(in.a), "undefined source"));
        MALI_RETURN_IF_ERROR(def_dst());
        MALI_RETURN_IF_ERROR(require(reg_type(in.a).is_scalar(), "splat source must be scalar"));
        MALI_RETURN_IF_ERROR(require(reg_type(in.a).scalar == dt.scalar,
                                     "splat scalar type mismatch"));
        break;
      case Opcode::kExtract:
        MALI_RETURN_IF_ERROR(require(check_use(in.a), "undefined source"));
        MALI_RETURN_IF_ERROR(def_dst());
        MALI_RETURN_IF_ERROR(require(dt.is_scalar(), "extract dst must be scalar"));
        MALI_RETURN_IF_ERROR(require(reg_type(in.a).scalar == dt.scalar,
                                     "extract scalar type mismatch"));
        MALI_RETURN_IF_ERROR(require(
            in.imm >= 0 && in.imm < reg_type(in.a).lanes, "lane out of range"));
        break;
      case Opcode::kInsert:
        MALI_RETURN_IF_ERROR(require(check_use(in.a) && check_use(in.b),
                                     "undefined source"));
        MALI_RETURN_IF_ERROR(def_dst());
        MALI_RETURN_IF_ERROR(require(reg_type(in.a) == dt, "insert base type mismatch"));
        MALI_RETURN_IF_ERROR(require(
            reg_type(in.b) == Type(dt.scalar, 1), "insert value must be scalar"));
        MALI_RETURN_IF_ERROR(require(in.imm >= 0 && in.imm < dt.lanes,
                                     "lane out of range"));
        break;
      case Opcode::kSlide:
        MALI_RETURN_IF_ERROR(require(check_use(in.a) && check_use(in.b),
                                     "undefined source"));
        MALI_RETURN_IF_ERROR(def_dst());
        MALI_RETURN_IF_ERROR(require(reg_type(in.a) == dt && reg_type(in.b) == dt,
                                     "slide operand type mismatch"));
        MALI_RETURN_IF_ERROR(require(in.imm >= 0 && in.imm <= dt.lanes,
                                     "slide amount out of range"));
        break;
      case Opcode::kVSum:
        MALI_RETURN_IF_ERROR(require(check_use(in.a), "undefined source"));
        MALI_RETURN_IF_ERROR(def_dst());
        MALI_RETURN_IF_ERROR(require(dt.is_scalar(), "vsum dst must be scalar"));
        MALI_RETURN_IF_ERROR(require(reg_type(in.a).scalar == dt.scalar,
                                     "vsum scalar type mismatch"));
        break;
      case Opcode::kLoad: {
        MALI_RETURN_IF_ERROR(require(check_use(in.a), "undefined index"));
        MALI_RETURN_IF_ERROR(def_dst());
        MALI_RETURN_IF_ERROR(require(in.slot < slots.size(), "slot out of range"));
        MALI_RETURN_IF_ERROR(require(reg_type(in.a) == kir::I32(),
                                     "index must be scalar i32"));
        MALI_RETURN_IF_ERROR(require(slots[in.slot].elem == dt.scalar,
                                     "load element type mismatch"));
        MALI_RETURN_IF_ERROR(require(slots[in.slot].kind != ArgKind::kBufferWO,
                                     "load from write-only buffer"));
        break;
      }
      case Opcode::kStore: {
        MALI_RETURN_IF_ERROR(require(check_use(in.a) && check_use(in.b),
                                     "undefined value/index"));
        MALI_RETURN_IF_ERROR(require(in.slot < slots.size(), "slot out of range"));
        MALI_RETURN_IF_ERROR(require(reg_type(in.b) == kir::I32(),
                                     "index must be scalar i32"));
        MALI_RETURN_IF_ERROR(require(slots[in.slot].elem == reg_type(in.a).scalar,
                                     "store element type mismatch"));
        MALI_RETURN_IF_ERROR(require(slots[in.slot].kind != ArgKind::kBufferRO,
                                     "store to read-only buffer"));
        break;
      }
      case Opcode::kAtomicAddI32:
        MALI_RETURN_IF_ERROR(require(check_use(in.a) && check_use(in.b),
                                     "undefined value/index"));
        MALI_RETURN_IF_ERROR(require(in.slot < slots.size(), "slot out of range"));
        MALI_RETURN_IF_ERROR(require(reg_type(in.a) == kir::I32() &&
                                         reg_type(in.b) == kir::I32(),
                                     "atomic operands must be scalar i32"));
        MALI_RETURN_IF_ERROR(require(slots[in.slot].elem == ScalarType::kI32,
                                     "atomic target must be i32 buffer"));
        MALI_RETURN_IF_ERROR(require(slots[in.slot].kind != ArgKind::kBufferRO,
                                     "atomic to read-only buffer"));
        break;
      case Opcode::kBarrier:
        break;
      case Opcode::kLoopBegin:
        MALI_RETURN_IF_ERROR(require(check_use(in.a) && check_use(in.b),
                                     "undefined loop bounds"));
        MALI_RETURN_IF_ERROR(def_dst());
        MALI_RETURN_IF_ERROR(require(dt == kir::I32(), "loop var must be scalar i32"));
        MALI_RETURN_IF_ERROR(require(reg_type(in.a) == kir::I32() &&
                                         reg_type(in.b) == kir::I32(),
                                     "loop bounds must be scalar i32"));
        MALI_RETURN_IF_ERROR(require(in.imm > 0, "loop step must be positive"));
        break;
      case Opcode::kIfBegin:
        MALI_RETURN_IF_ERROR(require(check_use(in.a), "undefined condition"));
        MALI_RETURN_IF_ERROR(require(reg_type(in.a) == kir::I32(),
                                     "if condition must be scalar i32"));
        break;
      case Opcode::kLoopEnd:
      case Opcode::kElse:
      case Opcode::kIfEnd:
        break;
      case Opcode::kNumOpcodes:
        return Fail(i, in, "invalid opcode");
    }
  }
  return Status::Ok();
}

}  // namespace malisim::kir
